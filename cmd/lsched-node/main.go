// Command lsched-node runs one cluster worker: a live engine behind a
// plan pool, a hot-swappable policy slot the coordinator pushes
// checkpoints into, and the ClusterNode RPC surface
// (Submit/Health/Install/Drain) mounted on an rpcsched server. Point
// cmd/lsched-cluster at a fleet of these.
//
// Usage:
//
//	lsched-node -listen :7070 -id node-0
//	lsched-node -listen :7071 -id node-1 -bench tpch -sf 0.05 -obs :9091
//
// The node starts serving the -sched heuristic; a coordinator running
// with -store/-sync rolls learned policy checkpoints out to it, and
// each install swaps the serving scheduler without pausing dispatch.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/frontdoor"
	"repro/internal/heuristics"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/provenance"
	"repro/internal/rpcsched"
	"repro/internal/serving"
	"repro/internal/workload"
)

func benchPlans(bench string, sf float64) ([]*plan.Plan, error) {
	switch bench {
	case "tpch":
		return workload.TPCH(sf), nil
	case "ssb":
		return workload.SSB(sf), nil
	case "job":
		return workload.JOB(), nil
	}
	return nil, fmt.Errorf("unknown benchmark %q", bench)
}

func main() {
	listen := flag.String("listen", ":7070", "ClusterNode RPC address")
	obsAddr := flag.String("obs", "", "observability address (/metrics, /policy, ...), e.g. :9091")
	id := flag.String("id", "", "node identity in health reports and provenance (default node-<listen>)")
	bench := flag.String("bench", "ssb", "benchmark backing the synthetic catalog: tpch, ssb, or job")
	sf := flag.Float64("sf", 0.1, "benchmark scale factor (ignored for job)")
	schedName := flag.String("sched", "fair", "initial scheduler before any rollout: fair or quickstep")
	threads := flag.Int("threads", 4, "live engine worker threads")
	seed := flag.Int64("seed", 1, "seed for the catalog and the rollout loader's agent")
	ioTimeout := flag.Duration("io-timeout", 30*time.Second, "per-connection RPC I/O deadline (0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	provOut := flag.String("provenance-out", "", "record decisions to this trace file (node-stamped; merge across nodes for lsched-policyctl explain)")
	flag.Parse()

	if *id == "" {
		*id = "node-" + *listen
	}
	plans, err := benchPlans(*bench, *sf)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := workload.SyntheticCatalog(plans, 2048, 8, *seed)
	if err != nil {
		log.Fatal(err)
	}
	reg := metrics.NewRegistry()
	live := engine.NewLive(catalog, engine.LiveConfig{Threads: *threads, Metrics: reg})
	if err := live.Validate(plans); err != nil {
		log.Fatal(err)
	}
	var initial engine.Scheduler
	switch *schedName {
	case "fair":
		initial = heuristics.Fair{}
	case "quickstep":
		initial = heuristics.Quickstep{}
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}
	hot := serving.NewHotAgent(initial, 0)
	hot.Instrument(reg)

	rec := provenance.NewRecorder(provenance.Options{})
	rec.Instrument(reg)
	var provFile *os.File
	if *provOut != "" {
		provFile, err = os.Create(*provOut)
		if err != nil {
			log.Fatal(err)
		}
		rec.AttachSink(provFile, 256)
	}

	pool, err := frontdoor.NewPlanPool(frontdoor.NewEngineBackend(live, hot), plans)
	if err != nil {
		log.Fatal(err)
	}
	node, err := cluster.NewNode(cluster.NodeOptions{
		ID:         *id,
		Backend:    pool,
		Hot:        hot,
		Loader:     serving.LSchedLoader(lsched.DefaultOptions(*seed)),
		Provenance: rec,
		Metrics:    reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The rpcsched base service shares the hot slot, so remote scheduler
	// clients and routed cluster queries see the same serving policy.
	srv, err := rpcsched.NewServer(hot, rpcsched.ServerOptions{IOTimeout: *ioTimeout})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.MountNode(srv, node); err != nil {
		log.Fatal(err)
	}

	if *obsAddr != "" {
		o := obs.NewServer(obs.Options{
			Metrics: reg,
			Policy: func() any {
				return map[string]any{"node": *id, "serving_version": node.PolicyVersion()}
			},
			Health: func() obs.HealthStatus {
				hr := node.Health()
				st := obs.HealthStatus{Ready: !hr.Draining, Engine: "up", PolicyVersion: hr.PolicyVersion}
				if hr.Draining {
					st.Draining = true
					st.Detail = "node draining"
				}
				return st
			},
		})
		addr, err := o.Start(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer o.Close()
		log.Printf("observability on http://%s (/metrics /policy /healthz)", addr)
	}

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		log.Printf("node %s on %s (%d plans from %s sf=%g, %s initial policy, %d threads)",
			*id, lis.Addr(), len(plans), *bench, *sf, initial.Name(), *threads)
		if err := srv.Serve(lis); err != nil {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining (timeout %v)...", *drain)
	if !node.Drain(*drain) {
		log.Printf("drain timed out; exiting with queries in flight")
	}
	if err := srv.Shutdown(*drain); err != nil {
		log.Printf("rpc shutdown: %v", err)
	}
	if provFile != nil {
		if err := rec.Flush(); err != nil {
			log.Printf("provenance flush: %v", err)
		}
		provFile.Close()
	}
	hr := node.Health()
	log.Printf("final: completed=%d failed=%d serving_version=%d", hr.Completed, hr.Failed, hr.PolicyVersion)
}
