// Command lsched-policyctl inspects and operates a policy checkpoint
// store: the human end of the policy lifecycle (the automatic end is
// the serving promoter).
//
// Usage:
//
//	lsched-policyctl -store ./policies list
//	lsched-policyctl -store ./policies show 3
//	lsched-policyctl -store ./policies promote 3
//	lsched-policyctl -store ./policies rollback
//	lsched-policyctl -store ./policies gc -retain 5
//	lsched-policyctl -trace trace.bin explain 42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/policystore"
	"repro/internal/provenance"
)

func main() {
	storeDir := flag.String("store", "", "policy store directory (required except for explain)")
	tracePath := flag.String("trace", "", "recorded decision trace for explain (from -provenance-out)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	args := flag.Args()
	// explain reads a recorded trace, not the store.
	if args[0] == "explain" {
		if *tracePath == "" || len(args) != 2 {
			fatal(fmt.Errorf("explain needs -trace FILE and a query ID"))
		}
		qid, err := strconv.ParseInt(args[1], 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad query ID %q", args[1]))
		}
		cmdExplain(*tracePath, qid)
		return
	}
	if *storeDir == "" {
		usage()
		os.Exit(2)
	}
	store, err := policystore.Open(*storeDir)
	if err != nil {
		fatal(err)
	}
	switch args[0] {
	case "list":
		cmdList(store)
	case "show":
		if len(args) != 2 {
			fatal(fmt.Errorf("show needs a version number"))
		}
		cmdShow(store, parseVersion(args[1]))
	case "promote":
		if len(args) != 2 {
			fatal(fmt.Errorf("promote needs a version number"))
		}
		v := parseVersion(args[1])
		if err := store.Promote(v); err != nil {
			fatal(err)
		}
		fmt.Printf("promoted v%d\n", v)
	case "rollback":
		v, err := store.Rollback()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rolled back; active is now v%d\n", v)
	case "gc":
		fs := flag.NewFlagSet("gc", flag.ExitOnError)
		retain := fs.Int("retain", 5, "newest loadable versions to keep (active and previous always survive)")
		fs.Parse(args[1:]) //nolint:errcheck — ExitOnError
		removed, err := store.GC(*retain)
		if err != nil {
			fatal(err)
		}
		if len(removed) == 0 {
			fmt.Println("nothing to remove")
			return
		}
		sort.Ints(removed)
		for _, v := range removed {
			fmt.Printf("removed v%d\n", v)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func cmdList(store *policystore.Store) {
	manifests, err := store.List()
	if err != nil {
		fatal(err)
	}
	active, _ := store.Active() //nolint:errcheck — 0 when unset
	if len(manifests) == 0 {
		fmt.Println("store is empty")
		return
	}
	fmt.Printf("%-9s %-20s %-14s %-7s %-10s %s\n", "VERSION", "CREATED", "SOURCE", "PARENT", "SCORE", "ACTIVE")
	for _, m := range manifests {
		mark := ""
		if m.Version == active {
			mark = "*"
		}
		score := "-"
		if s, ok := m.Metrics["sim_score"]; ok {
			score = fmt.Sprintf("%.3f", s)
		}
		parent := "-"
		if m.Parent != 0 {
			parent = fmt.Sprintf("v%d", m.Parent)
		}
		fmt.Printf("%-9s %-20s %-14s %-7s %-10s %s\n",
			fmt.Sprintf("v%d", m.Version),
			time.Unix(m.CreatedAtUnix, 0).UTC().Format("2006-01-02 15:04:05"),
			orDash(m.Source), parent, score, mark)
	}
}

func cmdShow(store *policystore.Store, v int) {
	ck, err := store.Get(v)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(ck.Manifest, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
}

// cmdExplain renders every recorded decision for one query ID from a
// flight-recorder trace: what the policy saw (features), what it
// scored, what it chose vs the heuristic counterfactual, and how the
// query turned out.
func cmdExplain(path string, queryID int64) {
	recs, err := provenance.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	matched := 0
	for _, r := range recs {
		if r.QueryID != queryID {
			continue
		}
		matched++
		fmt.Printf("seq %d  %s  query %d", r.Seq, r.Kind, r.QueryID)
		if r.Tenant != "" {
			fmt.Printf("  tenant %s", r.Tenant)
		}
		if r.NodeID != "" {
			fmt.Printf("  node %s", r.NodeID)
		}
		fmt.Printf("  policy v%d  %s\n", r.PolicyVersion,
			time.Unix(0, r.UnixNanos).UTC().Format("2006-01-02 15:04:05.000"))
		agree := "disagrees with"
		if r.Action == r.Heuristic {
			agree = "agrees with"
		}
		fmt.Printf("  action %d (arg %d), %s heuristic %d\n", r.Action, r.ActionArg, agree, r.Heuristic)
		fmt.Printf("  scores   %s\n", floatList(r.Scores))
		fmt.Printf("  features %s\n", floatList(r.Features))
		switch {
		case !r.Outcome.Joined:
			fmt.Println("  outcome  (not joined)")
		case r.Outcome.Shed:
			fmt.Println("  outcome  shed")
		case r.Outcome.Rejected:
			fmt.Println("  outcome  rejected")
		default:
			met := "missed deadline"
			if r.Outcome.DeadlineMet {
				met = "met deadline"
			}
			fmt.Printf("  outcome  latency %.4fs, %s, dur err %+.4f, mem err %+.1f\n",
				r.Outcome.LatencySecs, met, r.Outcome.DurPredErr, r.Outcome.MemPredErr)
		}
	}
	if matched == 0 {
		fmt.Printf("no records for query %d (%d records in trace)\n", queryID, len(recs))
	}
}

func floatList(vs []float64) string {
	if len(vs) == 0 {
		return "[]"
	}
	out := "["
	for i, v := range vs {
		if i > 0 {
			out += " "
		}
		out += strconv.FormatFloat(v, 'g', 5, 64)
	}
	return out + "]"
}

func parseVersion(s string) int {
	if len(s) > 1 && s[0] == 'v' {
		s = s[1:]
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		fatal(fmt.Errorf("bad version %q (want e.g. 3 or v3)", s))
	}
	return v
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: lsched-policyctl -store DIR COMMAND

commands:
  list               list stored versions (active marked *)
  show VERSION       print a version's manifest as JSON
  promote VERSION    make VERSION the active policy
  rollback           re-activate the previously active version
  gc [-retain N]     remove old versions (default keeps newest 5,
                     plus the active and previous versions)
  explain QUERYID    render every recorded decision for a query from a
                     -trace flight-recorder file (features, scores,
                     chosen vs heuristic action, joined outcome)
`)
}
