// Command lsched-demo schedules one workload under a chosen scheduler
// and prints the scheduling trace: every decision (execution root,
// pipeline degree, thread grant) and the resulting per-query durations.
//
// Usage:
//
//	lsched-demo -bench ssb -queries 6 -sched quickstep
//	lsched-demo -bench tpch -queries 8 -sched lsched -model tpch.model
//	lsched-demo -bench ssb -queries 6 -metrics          # snapshot at exit
//	lsched-demo -bench ssb -queries 6 -listen :9090     # live endpoints
//	lsched-demo -bench ssb -queries 6 -trace-out demo.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// tracer wraps a scheduler and logs its decisions.
type tracer struct {
	inner engine.Scheduler
	n     int
}

func (t *tracer) Name() string { return t.inner.Name() }

func (t *tracer) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	ds := t.inner.OnEvent(st, ev)
	for _, d := range ds {
		if d.RootOpID < 0 {
			continue
		}
		t.n++
		if t.n <= 40 {
			q := st.Query(d.QueryID)
			name := "?"
			if q != nil {
				name = q.Plan.QueryName
			}
			fmt.Printf("t=%9.3f %-12s q%-3d (%s) root=op%-3d pipeline=%d threads=%d\n",
				st.Now, ev.Kind, d.QueryID, name, d.RootOpID, d.PipelineDepth, d.Threads)
		}
	}
	return ds
}

func main() {
	bench := flag.String("bench", "ssb", "benchmark: tpch, ssb, or job")
	queries := flag.Int("queries", 6, "number of queries")
	threads := flag.Int("threads", 16, "worker threads")
	schedName := flag.String("sched", "quickstep", "scheduler: lsched, fifo, fair, quickstep, criticalpath")
	model := flag.String("model", "", "checkpoint for -sched lsched (untrained if omitted)")
	seed := flag.Int64("seed", 1, "seed")
	withMetrics := flag.Bool("metrics", false, "instrument the run and print a metrics+trace snapshot at exit")
	metricsFormat := flag.String("metrics-format", "text", "snapshot format: json or text")
	listen := flag.String("listen", "", "serve live observability endpoints (/metrics, /metrics.json, /trace, /queries, /timeseries, /debug/pprof/) on this address during the run, e.g. :9090")
	traceOut := flag.String("trace-out", "", "write the run's trace as Chrome trace-event JSON to this file at exit (load in Perfetto / chrome://tracing)")
	flag.Parse()

	pool, err := core.NewPool(core.Benchmark(*bench), *seed)
	if err != nil {
		log.Fatal(err)
	}
	var sched engine.Scheduler
	switch *schedName {
	case "lsched":
		agent := core.NewAgent(core.DefaultAgentOptions(*seed))
		if *model != "" {
			data, err := os.ReadFile(*model)
			if err != nil {
				log.Fatal(err)
			}
			if err := agent.Restore(data); err != nil {
				log.Fatal(err)
			}
		}
		agent.SetGreedy(true)
		sched = agent
	case "fifo":
		sched = core.FIFO{}
	case "fair":
		sched = core.Fair{}
	case "quickstep":
		sched = core.Quickstep{}
	case "criticalpath":
		sched = core.CriticalPath{}
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}

	rng := rand.New(rand.NewSource(*seed))
	arrivals := core.Streaming(pool.Test, *queries, 0.5, rng)
	simCfg := core.SimConfig{Threads: *threads, Seed: *seed, NoiseFrac: 0.1}
	if *withMetrics || *listen != "" || *traceOut != "" {
		simCfg.Metrics = metrics.NewRegistry()
		simCfg.Trace = metrics.NewTracer(0)
		if agent, ok := sched.(*core.Agent); ok {
			agent.Instrument(simCfg.Metrics)
		}
	}
	var srv *obs.Server
	if *listen != "" {
		srv = obs.NewServer(obs.Options{Metrics: simCfg.Metrics, Trace: simCfg.Trace})
		addr, err := srv.Start(*listen)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: serving http://%s/ (metrics, trace, queries, timeseries, pprof)\n", addr)
	}
	sim := core.NewSim(simCfg)
	tr := &tracer{inner: sched}
	res, err := sim.Run(tr, arrivals)
	if err != nil {
		log.Fatal(err)
	}
	if tr.n > 40 {
		fmt.Printf("... (%d more decisions)\n", tr.n-40)
	}
	fmt.Printf("\n%d queries completed; makespan %.2f; avg duration %.2f\n",
		len(res.Durations), res.Makespan, res.AvgDuration())
	ids := make([]int, 0, len(res.Durations))
	for id := range res.Durations {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fmt.Printf("  query %-3d duration %10.2f\n", id, res.Durations[id])
	}
	if *traceOut != "" {
		data, err := obs.ChromeTraceJSON(simCfg.Trace.Events())
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "observability: wrote trace to %s (open in Perfetto)\n", *traceOut)
	}
	if *withMetrics {
		exp := metrics.NewExport(simCfg.Metrics, simCfg.Trace)
		switch *metricsFormat {
		case "json":
			data, err := exp.JSON()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s\n", data)
		case "text":
			fmt.Printf("\n%s", exp.Text())
		default:
			log.Fatalf("unknown metrics format %q (json or text)", *metricsFormat)
		}
	}
}
