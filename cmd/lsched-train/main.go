// Command lsched-train trains an LSched (or Decima-baseline) scheduling
// model for a benchmark at configurable scale and writes the parameter
// checkpoint to disk, optionally transfer-initializing from a previous
// checkpoint.
//
// Usage:
//
//	lsched-train -bench tpch -episodes 2000 -out tpch.model
//	lsched-train -bench ssb -transfer-from tpch.model -out ssb.model
//	lsched-train -bench tpch -out tpch.model -listen :9090   # watch live
//	lsched-train -bench tpch -out tpch.model -store ./policies -store-every 100
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/decima"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policystore"
	"repro/internal/serving"
)

func main() {
	bench := flag.String("bench", "tpch", "benchmark: tpch, ssb, or job")
	episodes := flag.Int("episodes", 500, "training episodes")
	queries := flag.Int("queries", 20, "queries per training episode (episodes vary around this)")
	rollouts := flag.Int("rollouts", 1, "episodes collected concurrently per policy update (1 = sequential)")
	threads := flag.Int("threads", 60, "worker threads")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("out", "", "checkpoint output path (required)")
	storeDir := flag.String("store", "", "also publish checkpoints to this policy store directory (see lsched-policyctl)")
	storeEvery := flag.Int("store-every", 0, "with -store, publish an interim version every N episodes (0 = final only)")
	transferFrom := flag.String("transfer-from", "", "warm-start from this checkpoint with inner layers frozen")
	baseline := flag.Bool("decima", false, "train the Decima baseline instead of LSched")
	listen := flag.String("listen", "", "serve live observability endpoints (/metrics, /metrics.json, /trace, /queries, /timeseries, /debug/pprof/) on this address during training, e.g. :9090")
	traceOut := flag.String("trace-out", "", "write the training trace tail as Chrome trace-event JSON to this file at exit (load in Perfetto / chrome://tracing)")
	traceCap := flag.Int("trace-cap", metrics.DefaultTraceCapacity, "trace ring-buffer capacity (last N events retained)")
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	pool, err := core.NewPool(core.Benchmark(*bench), *seed)
	if err != nil {
		log.Fatal(err)
	}
	var store *policystore.Store
	if *storeDir != "" {
		store, err = policystore.Open(*storeDir)
		if err != nil {
			log.Fatal(err)
		}
	}

	var agent *core.Agent
	if *baseline {
		agent = decima.New(*seed)
	} else {
		agent = core.NewAgent(core.DefaultAgentOptions(*seed))
	}
	if *transferFrom != "" {
		data, err := os.ReadFile(*transferFrom)
		if err != nil {
			log.Fatal(err)
		}
		src := core.NewAgent(core.DefaultAgentOptions(*seed))
		if err := src.Restore(data); err != nil {
			log.Fatal(err)
		}
		if err := agent.TransferFrom(src); err != nil {
			log.Fatal(err)
		}
		fmt.Println("transfer-initialized; inner layers frozen")
	}

	cfg := core.DefaultTrainConfig(*seed)
	if *baseline {
		cfg = decima.TrainConfig(cfg)
	}
	cfg.Episodes = *episodes
	cfg.Rollouts = *rollouts
	cfg.SimCfg = core.SimConfig{Threads: *threads, NoiseFrac: 0.15}
	var reg *metrics.Registry
	var tr *metrics.Tracer
	if *listen != "" || *traceOut != "" {
		reg = metrics.NewRegistry()
		tr = metrics.NewTracer(*traceCap)
		cfg.SimCfg.Metrics = reg
		cfg.SimCfg.Trace = tr
		agent.Instrument(reg)
	}
	if *listen != "" {
		var policy func() any
		if store != nil {
			policy = serving.PolicyStatusProvider(store, nil)
		}
		srv := obs.NewServer(obs.Options{Metrics: reg, Trace: tr, Policy: policy})
		addr, err := srv.Start(*listen)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: serving http://%s/ (metrics, trace, queries, timeseries, pprof)\n", addr)
	}
	nq := *queries
	cfg.Workload = func(ep int, rng *rand.Rand) []core.Arrival {
		n := nq/2 + rng.Intn(nq)
		if ep%4 == 3 {
			return core.Batch(pool.Train, n, rng)
		}
		return core.Streaming(pool.Train, n, 0.2+rng.Float64()*2, rng)
	}
	start := time.Now()
	trainSummary := fmt.Sprintf("bench=%s episodes=%d queries=%d threads=%d seed=%d rollouts=%d decima=%v transfer=%q",
		*bench, *episodes, *queries, *threads, *seed, *rollouts, *baseline, *transferFrom)
	var lastReward, lastDur float64
	storeParent := 0
	cfg.OnEpisode = func(ep int, avgReward, avgDur float64) {
		lastReward, lastDur = avgReward, avgDur
		if (ep+1)%50 == 0 {
			fmt.Printf("episode %5d  avg reward %10.2f  avg duration %8.2f  (%v elapsed)\n",
				ep+1, avgReward, avgDur, time.Since(start).Round(time.Second))
		}
		if store != nil && *storeEvery > 0 && (ep+1)%*storeEvery == 0 && ep+1 < *episodes {
			data, err := agent.Checkpoint()
			if err != nil {
				log.Printf("policy store: checkpoint at episode %d: %v", ep+1, err)
				return
			}
			v, err := store.Put(policystore.PutOptions{
				Params:      data,
				Parent:      storeParent,
				Source:      "train-interim",
				TrainConfig: trainSummary,
				Metrics: map[string]float64{
					"episode": float64(ep + 1), "avg_reward": avgReward, "avg_duration": avgDur,
				},
			})
			if err != nil {
				log.Printf("policy store: put at episode %d: %v", ep+1, err)
				return
			}
			storeParent = v
		}
	}
	if _, err := lsched.Train(agent, cfg); err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		data, err := obs.ChromeTraceJSON(tr.Events())
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "observability: wrote trace to %s (open in Perfetto)\n", *traceOut)
	}

	data, err := agent.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d episodes in %v; checkpoint written to %s (%d bytes)\n",
		*episodes, time.Since(start).Round(time.Second), *out, len(data))
	if store != nil {
		v, err := store.Put(policystore.PutOptions{
			Params:      data,
			Parent:      storeParent,
			Source:      "train",
			TrainConfig: trainSummary,
			Metrics: map[string]float64{
				"episodes": float64(*episodes), "avg_reward": lastReward, "avg_duration": lastDur,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("policy store: published v%d to %s (promote with lsched-policyctl)\n", v, *storeDir)
	}
}
