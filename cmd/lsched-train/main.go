// Command lsched-train trains an LSched (or Decima-baseline) scheduling
// model for a benchmark at configurable scale and writes the parameter
// checkpoint to disk, optionally transfer-initializing from a previous
// checkpoint.
//
// Usage:
//
//	lsched-train -bench tpch -episodes 2000 -out tpch.model
//	lsched-train -bench ssb -transfer-from tpch.model -out ssb.model
//	lsched-train -bench tpch -out tpch.model -listen :9090   # watch live
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/decima"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/obs"
)

func main() {
	bench := flag.String("bench", "tpch", "benchmark: tpch, ssb, or job")
	episodes := flag.Int("episodes", 500, "training episodes")
	queries := flag.Int("queries", 20, "queries per training episode (episodes vary around this)")
	rollouts := flag.Int("rollouts", 1, "episodes collected concurrently per policy update (1 = sequential)")
	threads := flag.Int("threads", 60, "worker threads")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("out", "", "checkpoint output path (required)")
	transferFrom := flag.String("transfer-from", "", "warm-start from this checkpoint with inner layers frozen")
	baseline := flag.Bool("decima", false, "train the Decima baseline instead of LSched")
	listen := flag.String("listen", "", "serve live observability endpoints (/metrics, /metrics.json, /trace, /queries, /timeseries, /debug/pprof/) on this address during training, e.g. :9090")
	traceOut := flag.String("trace-out", "", "write the training trace tail as Chrome trace-event JSON to this file at exit (load in Perfetto / chrome://tracing)")
	traceCap := flag.Int("trace-cap", metrics.DefaultTraceCapacity, "trace ring-buffer capacity (last N events retained)")
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}

	pool, err := core.NewPool(core.Benchmark(*bench), *seed)
	if err != nil {
		log.Fatal(err)
	}

	var agent *core.Agent
	if *baseline {
		agent = decima.New(*seed)
	} else {
		agent = core.NewAgent(core.DefaultAgentOptions(*seed))
	}
	if *transferFrom != "" {
		data, err := os.ReadFile(*transferFrom)
		if err != nil {
			log.Fatal(err)
		}
		src := core.NewAgent(core.DefaultAgentOptions(*seed))
		if err := src.Restore(data); err != nil {
			log.Fatal(err)
		}
		if err := agent.TransferFrom(src); err != nil {
			log.Fatal(err)
		}
		fmt.Println("transfer-initialized; inner layers frozen")
	}

	cfg := core.DefaultTrainConfig(*seed)
	if *baseline {
		cfg = decima.TrainConfig(cfg)
	}
	cfg.Episodes = *episodes
	cfg.Rollouts = *rollouts
	cfg.SimCfg = core.SimConfig{Threads: *threads, NoiseFrac: 0.15}
	var reg *metrics.Registry
	var tr *metrics.Tracer
	if *listen != "" || *traceOut != "" {
		reg = metrics.NewRegistry()
		tr = metrics.NewTracer(*traceCap)
		cfg.SimCfg.Metrics = reg
		cfg.SimCfg.Trace = tr
		agent.Instrument(reg)
	}
	if *listen != "" {
		srv := obs.NewServer(obs.Options{Metrics: reg, Trace: tr})
		addr, err := srv.Start(*listen)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "observability: serving http://%s/ (metrics, trace, queries, timeseries, pprof)\n", addr)
	}
	nq := *queries
	cfg.Workload = func(ep int, rng *rand.Rand) []core.Arrival {
		n := nq/2 + rng.Intn(nq)
		if ep%4 == 3 {
			return core.Batch(pool.Train, n, rng)
		}
		return core.Streaming(pool.Train, n, 0.2+rng.Float64()*2, rng)
	}
	start := time.Now()
	cfg.OnEpisode = func(ep int, avgReward, avgDur float64) {
		if (ep+1)%50 == 0 {
			fmt.Printf("episode %5d  avg reward %10.2f  avg duration %8.2f  (%v elapsed)\n",
				ep+1, avgReward, avgDur, time.Since(start).Round(time.Second))
		}
	}
	if _, err := lsched.Train(agent, cfg); err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		data, err := obs.ChromeTraceJSON(tr.Events())
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "observability: wrote trace to %s (open in Perfetto)\n", *traceOut)
	}

	data, err := agent.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d episodes in %v; checkpoint written to %s (%d bytes)\n",
		*episodes, time.Since(start).Round(time.Second), *out, len(data))
}
