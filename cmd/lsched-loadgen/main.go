// Command lsched-loadgen drives the query front door with open-loop
// traffic: submissions are paced by the clock, never by completions —
// the regime where a missing admission controller lets queues grow
// without bound.
//
// Remote mode POSTs plan summaries to a running lsched-frontdoor:
//
//	lsched-loadgen -target http://localhost:8080/query -rate 200 -n 2000
//	lsched-loadgen -target ... -tenants 8 -latency-frac 0.7 -deadline 50ms
//
// With -targets, submissions round-robin across several ingresses (a
// fleet of front doors, or lsched-cluster coordinators):
//
//	lsched-loadgen -targets http://h1:8080/query,http://h2:8080/query -rate 400
//
// A/B mode (-ab) skips the network: it builds two identical in-process
// front doors over the live engine — one with the heuristic
// admit-everything baseline, one with the learned admission head — and
// replays the same seeded overload trace against each, reporting the
// p99 of admitted latency-sensitive queries and the shed rate side by
// side:
//
//	lsched-loadgen -ab -n 1500 -overload 2 -slots 4
//
// Sweep mode (-sweep) steps the offered load across several multiples
// of the sustainable rate and replays the trace per controller at each
// step, printing the overload curve — admitted latency-class p99 and
// drop rate versus offered load:
//
//	lsched-loadgen -sweep -n 1500 -sweep-loads 0.5,1,1.5,2,3 -slots 4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/frontdoor"
	"repro/internal/heuristics"
	"repro/internal/lsched"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	target := flag.String("target", "http://localhost:8080/query", "front door URL (remote mode)")
	targets := flag.String("targets", "", "comma-separated front door URLs; submissions round-robin across them (overrides -target)")
	ab := flag.Bool("ab", false, "in-process learned-vs-heuristic A/B instead of remote traffic")
	sweep := flag.Bool("sweep", false, "in-process stepped offered-load sweep per controller (overload curve)")
	sweepLoads := flag.String("sweep-loads", "0.5,1,1.5,2,3", "comma-separated offered-load multiples for -sweep")
	n := flag.Int("n", 1000, "queries to submit")
	rate := flag.Float64("rate", 100, "offered rate in queries/sec (remote mode)")
	overload := flag.Float64("overload", 2, "offered rate as a multiple of sustainable (-ab mode)")
	tenants := flag.Int("tenants", 4, "distinct tenants")
	latencyFrac := flag.Float64("latency-frac", 0.5, "fraction of queries in the latency SLO class")
	deadline := flag.Duration("deadline", 25*time.Millisecond, "latency-class deadline")
	bench := flag.String("bench", "ssb", "benchmark to sample plans from: tpch, ssb, or job")
	sf := flag.Float64("sf", 0.1, "benchmark scale factor")
	slots := flag.Int("slots", 4, "front door executor slots (-ab mode)")
	threads := flag.Int("threads", 4, "live engine worker threads (-ab mode)")
	shards := flag.Int("shards", 0, "admission shards for in-process front doors (0 = GOMAXPROCS)")
	singleLoop := flag.Bool("single-loop", false, "use the legacy single drain-loop admission core in-process")
	seed := flag.Int64("seed", 1, "trace seed")
	flag.Parse()

	plans := benchPlans(*bench, *sf)
	core := coreOptions{shards: *shards, singleLoop: *singleLoop}
	if *sweep {
		loads, err := parseLoads(*sweepLoads)
		if err != nil {
			log.Fatal(err)
		}
		runSweep(plans, *n, loads, *tenants, *latencyFrac, *deadline, *slots, *threads, *seed, core)
		return
	}
	if *ab {
		runAB(plans, *n, *overload, *tenants, *latencyFrac, *deadline, *slots, *threads, *seed, core)
		return
	}
	urls := []string{*target}
	if *targets != "" {
		urls = urls[:0]
		for _, u := range strings.Split(*targets, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			log.Fatal("-targets has no usable URLs")
		}
	}
	runRemote(urls, plans, *n, *rate, *tenants, *latencyFrac, *deadline, *seed)
}

func benchPlans(bench string, sf float64) []*plan.Plan {
	switch bench {
	case "tpch":
		return workload.TPCH(sf)
	case "ssb":
		return workload.SSB(sf)
	case "job":
		return workload.JOB()
	}
	log.Fatalf("unknown benchmark %q", bench)
	return nil
}

// coreOptions carries the admission-core knobs shared by every
// in-process front door the loadgen builds.
type coreOptions struct {
	shards     int
	singleLoop bool
}

func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var x float64
		if _, err := fmt.Sscanf(f, "%g", &x); err != nil || x <= 0 {
			return nil, fmt.Errorf("-sweep-loads: bad multiple %q", f)
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sweep-loads is empty")
	}
	return out, nil
}

// spec is one pre-generated trace entry, shared verbatim across A/B
// arms so both controllers see the same offered load.
type spec struct {
	tenant   string
	class    frontdoor.Class
	deadline time.Duration
	planIdx  int
}

func genTrace(plans []*plan.Plan, n, tenants int, latencyFrac float64, deadline time.Duration, seed int64) []spec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]spec, n)
	for i := range out {
		s := spec{
			tenant:  fmt.Sprintf("tenant-%d", rng.Intn(tenants)),
			class:   frontdoor.ClassThroughput,
			planIdx: rng.Intn(len(plans)),
		}
		if rng.Float64() < latencyFrac {
			s.class = frontdoor.ClassLatency
			s.deadline = deadline
		}
		out[i] = s
	}
	return out
}

// tally accumulates dispositions per SLO class.
type tally struct {
	mu        sync.Mutex
	admitted  [2]int
	shed      [2]int
	rejected  [2]int
	latencies [2][]time.Duration // admitted end-to-end latencies
}

func (t *tally) record(class frontdoor.Class, outcome, latencyMS float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch outcome {
	case 0:
		t.admitted[class]++
		t.latencies[class] = append(t.latencies[class], time.Duration(latencyMS*float64(time.Millisecond)))
	case 1:
		t.shed[class]++
	default:
		t.rejected[class]++
	}
}

func percentiles(ds []time.Duration) (p50, p95, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2], ds[len(ds)*95/100], ds[len(ds)*99/100]
}

func (t *tally) report(label string) {
	for _, c := range []frontdoor.Class{frontdoor.ClassLatency, frontdoor.ClassThroughput} {
		a, s, r := t.admitted[c], t.shed[c], t.rejected[c]
		total := a + s + r
		if total == 0 {
			continue
		}
		p50, p95, p99 := percentiles(t.latencies[c])
		fmt.Printf("%-10s %-10s admitted=%-5d shed=%-5d rejected=%-5d shed%%=%5.1f p50=%-10v p95=%-10v p99=%v\n",
			label, c, a, s, r, 100*float64(s+r)/float64(total), p50, p95, p99)
	}
}

// runRemote offers the trace to one or more front doors; with several
// targets, submissions round-robin across them (a poor man's client-side
// balancer for a fleet of lsched-frontdoor or lsched-cluster ingresses).
func runRemote(targets []string, plans []*plan.Plan, n int, rate float64, tenants int, latencyFrac float64, deadline time.Duration, seed int64) {
	trace := genTrace(plans, n, tenants, latencyFrac, deadline, seed)
	interval := time.Duration(float64(time.Second) / rate)
	var wg sync.WaitGroup
	var tl tally
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	for i, s := range trace {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		req := frontdoor.Request{
			Tenant:     s.tenant,
			Class:      s.class.String(),
			DeadlineMS: int64(s.deadline / time.Millisecond),
			Ops:        frontdoor.SummarizePlan(plans[s.planIdx]),
		}
		body, _ := json.Marshal(req)
		target := targets[i%len(targets)]
		wg.Add(1)
		go func(s spec) {
			defer wg.Done()
			resp, err := client.Post(target, "application/json", bytes.NewReader(body))
			if err != nil {
				tl.record(s.class, 2, 0)
				return
			}
			defer resp.Body.Close()
			var r frontdoor.Response
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				tl.record(s.class, 2, 0)
				return
			}
			switch r.Outcome {
			case "admitted":
				tl.record(s.class, 0, float64(r.LatencyMS))
			case "shed":
				tl.record(s.class, 1, 0)
			default:
				tl.record(s.class, 2, 0)
			}
		}(s)
	}
	wg.Wait()
	fmt.Printf("offered %d queries at %.0f q/s to %s in %v\n",
		n, rate, strings.Join(targets, ","), time.Since(start).Round(time.Millisecond))
	tl.report("remote")
}

// curvePoint extracts the latency-class overload-curve coordinates
// from a finished tally: admitted p99 and the drop fraction.
func (t *tally) curvePoint() (p99 time.Duration, dropPct float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := frontdoor.ClassLatency
	_, _, p99 = percentiles(t.latencies[c])
	total := t.admitted[c] + t.shed[c] + t.rejected[c]
	if total > 0 {
		dropPct = 100 * float64(t.shed[c]+t.rejected[c]) / float64(total)
	}
	return p99, dropPct
}

// liveArm builds one complete A/B arm: a fresh catalog-backed live
// engine plus a front door under the given controller.
func liveArm(plans []*plan.Plan, ctrl frontdoor.Controller, slots, threads int, seed int64, core coreOptions) *frontdoor.FrontDoor {
	catalog, err := workload.SyntheticCatalog(plans, 2048, 8, seed)
	if err != nil {
		log.Fatal(err)
	}
	live := engine.NewLive(catalog, engine.LiveConfig{Threads: threads})
	fd, err := frontdoor.New(frontdoor.Options{
		Backend:     frontdoor.NewEngineBackend(live, heuristics.Fair{}),
		Controller:  ctrl,
		MaxInFlight: slots,
		Shards:      core.shards,
		SingleLoop:  core.singleLoop,
	})
	if err != nil {
		log.Fatal(err)
	}
	return fd
}

// estimateService measures the mean live execution time of the traced
// plans by running a sample sequentially — the denominator for the
// sustainable rate.
func estimateService(plans []*plan.Plan, trace []spec, threads int, seed int64) time.Duration {
	catalog, err := workload.SyntheticCatalog(plans, 2048, 8, seed)
	if err != nil {
		log.Fatal(err)
	}
	live := engine.NewLive(catalog, engine.LiveConfig{Threads: threads})
	sample := 8
	if len(trace) < sample {
		sample = len(trace)
	}
	start := time.Now()
	for i := 0; i < sample; i++ {
		if _, err := live.RunOne(heuristics.Fair{}, plans[trace[i].planIdx].Clone()); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start) / time.Duration(sample)
}

// playTrace offers the trace to one front door open-loop at the given
// inter-arrival interval, waits for every ticket to resolve, drains the
// door, and returns the tally.
func playTrace(fd *frontdoor.FrontDoor, plans []*plan.Plan, trace []spec, interval time.Duration) *tally {
	var wg sync.WaitGroup
	var tl tally
	start := time.Now()
	for i, s := range trace {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		req := frontdoor.Request{
			Tenant:     s.tenant,
			Class:      s.class.String(),
			DeadlineMS: int64(s.deadline / time.Millisecond),
			Ops:        frontdoor.SummarizePlan(plans[s.planIdx]),
		}
		q, err := req.Validate()
		if err != nil {
			log.Fatal(err)
		}
		q.Payload = plans[s.planIdx].Clone()
		tk, err := fd.Submit(q)
		if err != nil {
			tl.record(s.class, 2, 0)
			continue
		}
		wg.Add(1)
		go func(s spec, tk *frontdoor.Ticket) {
			defer wg.Done()
			d := <-tk.Done()
			switch d.Outcome {
			case frontdoor.OutcomeAdmitted:
				tl.record(s.class, 0, float64(d.Latency)/float64(time.Millisecond))
			case frontdoor.OutcomeShed:
				tl.record(s.class, 1, 0)
			default:
				tl.record(s.class, 2, 0)
			}
		}(s, tk)
	}
	wg.Wait()
	if !fd.Shutdown(30 * time.Second) {
		log.Fatal("drain timed out")
	}
	return &tl
}

// abArms builds the two controllers every in-process mode compares.
// Fresh instances per call: controller state (the learned head's
// online updates) must not leak across arms or sweep steps.
func abArms(seed int64) []struct {
	name string
	ctrl frontdoor.Controller
} {
	return []struct {
		name string
		ctrl frontdoor.Controller
	}{
		{"heuristic", frontdoor.NewHeuristic()},
		{"learned", frontdoor.NewLearned(lsched.NewAdmissionHead(nn.NewParams(seed)))},
	}
}

func runAB(plans []*plan.Plan, n int, overload float64, tenants int, latencyFrac float64, deadline time.Duration, slots, threads int, seed int64, core coreOptions) {
	trace := genTrace(plans, n, tenants, latencyFrac, deadline, seed)
	service := estimateService(plans, trace, threads, seed)
	sustainable := float64(slots) / service.Seconds()
	interval := time.Duration(float64(time.Second) / (sustainable * overload))
	fmt.Printf("service≈%v, sustainable≈%.0f q/s, offering %.1fx (%d queries, %d tenants, %.0f%% latency-class, deadline %v)\n",
		service.Round(time.Microsecond), sustainable, overload, n, tenants, 100*latencyFrac, deadline)

	for _, arm := range abArms(seed) {
		fd := liveArm(plans, arm.ctrl, slots, threads, seed, core)
		playTrace(fd, plans, trace, interval).report(arm.name)
	}
}

// runSweep replays the same seeded trace at each offered-load multiple
// for each controller and prints the overload curve: latency-class p99
// and drop rate versus offered load. Each (arm, load) cell gets a fresh
// front door and a fresh controller so steps are independent.
func runSweep(plans []*plan.Plan, n int, loads []float64, tenants int, latencyFrac float64, deadline time.Duration, slots, threads int, seed int64, core coreOptions) {
	trace := genTrace(plans, n, tenants, latencyFrac, deadline, seed)
	service := estimateService(plans, trace, threads, seed)
	sustainable := float64(slots) / service.Seconds()
	fmt.Printf("service≈%v, sustainable≈%.0f q/s, sweeping %v (%d queries/step, %d tenants, %.0f%% latency-class, deadline %v)\n",
		service.Round(time.Microsecond), sustainable, loads, n, tenants, 100*latencyFrac, deadline)

	type point struct {
		p99  time.Duration
		drop float64
	}
	curves := map[string][]point{}
	var names []string
	for _, x := range loads {
		interval := time.Duration(float64(time.Second) / (sustainable * x))
		for _, arm := range abArms(seed) {
			fd := liveArm(plans, arm.ctrl, slots, threads, seed, core)
			tl := playTrace(fd, plans, trace, interval)
			tl.report(fmt.Sprintf("%s x%.1f", arm.name, x))
			p99, drop := tl.curvePoint()
			if _, seen := curves[arm.name]; !seen {
				names = append(names, arm.name)
			}
			curves[arm.name] = append(curves[arm.name], point{p99, drop})
		}
	}

	fmt.Printf("\noverload curve (latency class, admitted p99 / dropped %%):\n")
	fmt.Printf("%-8s", "load")
	for _, name := range names {
		fmt.Printf(" %22s", name)
	}
	fmt.Println()
	for i, x := range loads {
		fmt.Printf("%-8s", fmt.Sprintf("x%.1f", x))
		for _, name := range names {
			pt := curves[name][i]
			fmt.Printf(" %15v %5.1f%%", pt.p99.Round(10*time.Microsecond), pt.drop)
		}
		fmt.Println()
	}
}
