// Command lsched-bench regenerates the paper's tables and figures on
// the simulator substrate and prints them as text tables.
//
// Usage:
//
//	lsched-bench -fig 8              # one figure at quick scale
//	lsched-bench -fig all -scale paper
//	lsched-bench -fig 8 -metrics     # JSON metrics+trace snapshot at exit
//	lsched-bench -fig 8 -metrics -metrics-format text
//	lsched-bench -fig all -listen :9090         # watch the run live
//	lsched-bench -fig 8 -trace-out fig8.trace   # Perfetto span export
//	lsched-bench -fig 8 -store ./policies -policy latest   # eval a stored policy
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policystore"
	"repro/internal/provenance"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (1, 8, 9, 10, 11, 12, 13, 14, 15, or all)")
	scale := flag.String("scale", "quick", "experiment scale: quick or paper")
	seed := flag.Int64("seed", 1, "experiment seed")
	rollouts := flag.Int("rollouts", 1, "training episodes collected concurrently per policy update (1 = sequential)")
	withMetrics := flag.Bool("metrics", false, "instrument evaluation runs and print a metrics+trace snapshot at exit")
	metricsFormat := flag.String("metrics-format", "json", "snapshot format: json or text")
	traceCap := flag.Int("trace-cap", metrics.DefaultTraceCapacity, "trace ring-buffer capacity (last N events retained)")
	listen := flag.String("listen", "", "serve live observability endpoints (/metrics, /metrics.json, /trace, /queries, /timeseries, /debug/pprof/) on this address during the run, e.g. :9090")
	traceOut := flag.String("trace-out", "", "write the trace as Chrome trace-event JSON to this file at exit (load in Perfetto / chrome://tracing)")
	timeseriesOut := flag.String("timeseries-out", "", "write the wall-clock sampler's time series JSON to this file at exit")
	storeDir := flag.String("store", "", "policy store directory (with -policy)")
	policy := flag.String("policy", "", "evaluate this stored policy version (a number or \"latest\") as the LSched agent instead of training one; requires -store")
	provOut := flag.String("provenance-out", "", "record evaluation-run scheduling decisions (features, scores, joined outcomes) to this trace file")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick or paper)\n", *scale)
		os.Exit(2)
	}
	sc.Rollouts = *rollouts
	lab := experiments.NewLab(sc, *seed)
	if *withMetrics || *listen != "" || *traceOut != "" || *timeseriesOut != "" {
		lab.Metrics = metrics.NewRegistry()
		lab.Trace = metrics.NewTracer(*traceCap)
		// A live observer wants the long training phases visible too,
		// not just the evaluation runs.
		lab.WatchTraining = *listen != ""
	}
	var provFile *os.File
	if *provOut != "" {
		f, err := os.Create(*provOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		provFile = f
		lab.Provenance = provenance.NewRecorder(provenance.Options{})
		lab.Provenance.Instrument(lab.Metrics) // no-op when -metrics/-listen are off
		lab.Provenance.AttachSink(f, 256)
	}
	var srv *obs.Server
	var sampler *obs.Sampler
	if *listen != "" {
		srv = obs.NewServer(obs.Options{Metrics: lab.Metrics, Trace: lab.Trace})
		addr, err := srv.Start(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sampler = srv.Sampler()
		fmt.Fprintf(os.Stderr, "observability: serving http://%s/ (metrics, trace, queries, timeseries, pprof)\n", addr)
	} else if *timeseriesOut != "" {
		// Sample without serving, so the dump works headless.
		sampler = obs.NewSampler(lab.Metrics, 0, 0)
		sampler.Start()
	}

	if *policy != "" {
		if err := installStoredPolicy(lab, *storeDir, *policy, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = experiments.Figures()
	}
	for _, f := range figs {
		start := time.Now()
		tables, err := experiments.Run(lab, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("-- figure %s regenerated in %v --\n\n", f, time.Since(start).Round(time.Millisecond))
	}
	if *timeseriesOut != "" {
		sampler.Poll() // capture the final state before dumping
		if err := sampler.WriteFile(*timeseriesOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "observability: wrote time series to %s\n", *timeseriesOut)
	}
	if srv != nil {
		srv.Close()
	} else if sampler != nil {
		sampler.Stop()
	}
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut, lab.Trace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if provFile != nil {
		if err := lab.Provenance.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := provFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ps := lab.Provenance.Stats()
		fmt.Fprintf(os.Stderr, "provenance: recorded %d decisions (%d joined) to %s\n",
			ps.Recorded, ps.Joined, *provOut)
	}
	if *withMetrics {
		if err := printExport(lab.Metrics, lab.Trace, *metricsFormat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// installStoredPolicy restores a policy-store checkpoint and installs
// it as the lab's LSched agent for every benchmark, so the figure
// regenerators evaluate the stored policy instead of training one.
func installStoredPolicy(lab *experiments.Lab, storeDir, version string, seed int64) error {
	if storeDir == "" {
		return fmt.Errorf("-policy requires -store")
	}
	store, err := policystore.Open(storeDir)
	if err != nil {
		return err
	}
	var ck *policystore.Checkpoint
	if version == "latest" {
		ck, err = store.Latest()
	} else {
		var v int
		v, err = strconv.Atoi(version)
		if err != nil {
			return fmt.Errorf("-policy wants a version number or \"latest\", got %q", version)
		}
		ck, err = store.Get(v)
	}
	if err != nil {
		return err
	}
	for _, b := range []workload.Benchmark{workload.BenchTPCH, workload.BenchSSB, workload.BenchJOB} {
		agent := lsched.New(lsched.DefaultOptions(seed))
		if err := agent.Restore(ck.Params); err != nil {
			return fmt.Errorf("restore policy v%d: %w", ck.Manifest.Version, err)
		}
		agent.SetGreedy(true)
		lab.UseAgent(b, agent)
	}
	fmt.Fprintf(os.Stderr, "policy store: evaluating v%d from %s (source %q)\n",
		ck.Manifest.Version, storeDir, ck.Manifest.Source)
	return nil
}

// writeChromeTrace exports the trace ring as a Chrome trace-event file.
func writeChromeTrace(path string, tr *metrics.Tracer) error {
	events := tr.Events()
	data, err := obs.ChromeTraceJSON(events)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "observability: wrote %d trace events to %s (open in Perfetto)\n", len(events), path)
	return nil
}

// printExport dumps the run's metrics and trace in the chosen format.
func printExport(reg *metrics.Registry, tr *metrics.Tracer, format string) error {
	exp := metrics.NewExport(reg, tr)
	switch format {
	case "json":
		data, err := exp.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case "text":
		fmt.Print(exp.Text())
	default:
		return fmt.Errorf("unknown metrics format %q (json or text)", format)
	}
	return nil
}
