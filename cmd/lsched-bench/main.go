// Command lsched-bench regenerates the paper's tables and figures on
// the simulator substrate and prints them as text tables.
//
// Usage:
//
//	lsched-bench -fig 8              # one figure at quick scale
//	lsched-bench -fig all -scale paper
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (1, 8, 9, 10, 11, 12, 13, 14, 15, or all)")
	scale := flag.String("scale", "quick", "experiment scale: quick or paper")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick or paper)\n", *scale)
		os.Exit(2)
	}
	lab := experiments.NewLab(sc, *seed)

	figs := []string{*fig}
	if *fig == "all" {
		figs = experiments.Figures()
	}
	for _, f := range figs {
		start := time.Now()
		tables, err := experiments.Run(lab, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("-- figure %s regenerated in %v --\n\n", f, time.Since(start).Round(time.Millisecond))
	}
}
