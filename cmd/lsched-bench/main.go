// Command lsched-bench regenerates the paper's tables and figures on
// the simulator substrate and prints them as text tables.
//
// Usage:
//
//	lsched-bench -fig 8              # one figure at quick scale
//	lsched-bench -fig all -scale paper
//	lsched-bench -fig 8 -metrics     # JSON metrics+trace snapshot at exit
//	lsched-bench -fig 8 -metrics -metrics-format text
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (1, 8, 9, 10, 11, 12, 13, 14, 15, or all)")
	scale := flag.String("scale", "quick", "experiment scale: quick or paper")
	seed := flag.Int64("seed", 1, "experiment seed")
	withMetrics := flag.Bool("metrics", false, "instrument evaluation runs and print a metrics+trace snapshot at exit")
	metricsFormat := flag.String("metrics-format", "json", "snapshot format: json or text")
	traceCap := flag.Int("trace-cap", metrics.DefaultTraceCapacity, "trace ring-buffer capacity (last N events retained)")
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (quick or paper)\n", *scale)
		os.Exit(2)
	}
	lab := experiments.NewLab(sc, *seed)
	if *withMetrics {
		lab.Metrics = metrics.NewRegistry()
		lab.Trace = metrics.NewTracer(*traceCap)
	}

	figs := []string{*fig}
	if *fig == "all" {
		figs = experiments.Figures()
	}
	for _, f := range figs {
		start := time.Now()
		tables, err := experiments.Run(lab, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", f, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		fmt.Printf("-- figure %s regenerated in %v --\n\n", f, time.Since(start).Round(time.Millisecond))
	}
	if *withMetrics {
		if err := printExport(lab.Metrics, lab.Trace, *metricsFormat); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// printExport dumps the run's metrics and trace in the chosen format.
func printExport(reg *metrics.Registry, tr *metrics.Tracer, format string) error {
	exp := metrics.NewExport(reg, tr)
	switch format {
	case "json":
		data, err := exp.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case "text":
		fmt.Print(exp.Text())
	default:
		return fmt.Errorf("unknown metrics format %q (json or text)", format)
	}
	return nil
}
