// Command lsched-cluster runs the coordinator: it fronts a fleet of
// lsched-node workers with the admission front door, routes admitted
// queries by a pluggable policy (least predicted load by default),
// re-dispatches queued work off failed nodes, and — in central mode —
// watches a policystore and rolls promoted checkpoints out to every
// node's serving slot.
//
// Usage:
//
//	lsched-cluster -nodes 127.0.0.1:7070,127.0.0.1:7071 -listen :8080
//	lsched-cluster -nodes ... -policy round-robin -obs :9090
//	lsched-cluster -nodes ... -mode central -store ./policies -sync 10s
//
// Drive it with cmd/lsched-loadgen (-remote -targets http://host:8080).
// The /cluster endpoint on -obs shows per-node health, queue depths,
// and serving policy versions.
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/frontdoor"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/policystore"
	"repro/internal/rpcsched"
)

func main() {
	nodesFlag := flag.String("nodes", "", "comma-separated lsched-node RPC addresses (required)")
	listen := flag.String("listen", ":8080", "query ingress address (POST /query)")
	obsAddr := flag.String("obs", "", "observability address (/cluster, /frontdoor, ...), e.g. :9090")
	policyName := flag.String("policy", "least-loaded", "routing policy: least-loaded, round-robin, or tenant-hash")
	mode := flag.String("mode", "central", "policy distribution: central (coordinator pushes store checkpoints) or independent (nodes keep their own policies)")
	storeDir := flag.String("store", "", "policystore directory to watch in central mode")
	syncEvery := flag.Duration("sync", 10*time.Second, "central-mode rollout sync interval")
	controller := flag.String("controller", "learned", "admission controller: learned or heuristic")
	slots := flag.Int("slots", 16, "max concurrently executing queries across the cluster")
	shards := flag.Int("shards", 0, "admission shards, rounded up to a power of two (0 = GOMAXPROCS)")
	singleLoop := flag.Bool("single-loop", false, "use the legacy single drain-loop admission core (A/B baseline)")
	queueCap := flag.Int("queue-cap", 256, "per-tenant per-class admission queue bound")
	rate := flag.Float64("rate", 0, "per-tenant rate limit in queries/sec (0 disables)")
	burst := flag.Float64("burst", 0, "rate-limit burst (defaults to rate)")
	maxPerNode := flag.Int("max-per-node", 8, "concurrently dispatched queries per node")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "node health probe interval")
	budget := flag.Int("redispatch-budget", 3, "max routing attempts per query across node failures")
	seed := flag.Int64("seed", 1, "seed for the admission head")
	dialAttempts := flag.Int("dial-attempts", 10, "connection attempts per node at startup")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	flag.Parse()

	if *nodesFlag == "" {
		log.Fatal("lsched-cluster: -nodes is required")
	}
	policy, err := cluster.PolicyByName(*policyName)
	if err != nil {
		log.Fatal(err)
	}
	reg := metrics.NewRegistry()
	coord := cluster.New(cluster.Options{
		Policy:            policy,
		MaxPerNode:        *maxPerNode,
		HeartbeatInterval: *heartbeat,
		RedispatchBudget:  *budget,
		Metrics:           reg,
	})
	retry := rpcsched.RetryOptions{Attempts: *dialAttempts}
	for _, addr := range strings.Split(*nodesFlag, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		client, err := cluster.DialNode("tcp", addr, retry)
		if err != nil {
			log.Fatalf("dial node %s: %v", addr, err)
		}
		id := addr
		if hr, err := client.Health(); err == nil && hr.ID != "" {
			id = hr.ID // the node's self-reported identity
		}
		if err := coord.AddNode(id, client); err != nil {
			log.Fatal(err)
		}
		log.Printf("node %s at %s", id, addr)
	}
	if err := coord.Start(); err != nil {
		log.Fatal(err)
	}

	var stopWatch func()
	switch *mode {
	case "central":
		if *storeDir != "" {
			store, err := policystore.Open(*storeDir)
			if err != nil {
				log.Fatal(err)
			}
			stopWatch = coord.WatchPolicy(store, *syncEvery, func(err error) {
				log.Printf("rollout: %v", err)
			})
			log.Printf("central rollout: watching %s every %v", *storeDir, *syncEvery)
		}
	case "independent":
		// Nodes keep whatever policy they were started with (or learn
		// online); the coordinator only routes.
		log.Printf("independent mode: no policy distribution")
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	var ctrl frontdoor.Controller
	switch *controller {
	case "learned":
		ctrl = frontdoor.NewLearned(lsched.NewAdmissionHead(nn.NewParams(*seed)))
	case "heuristic":
		ctrl = frontdoor.NewHeuristic()
	default:
		log.Fatalf("unknown controller %q", *controller)
	}
	fd, err := frontdoor.New(frontdoor.Options{
		Backend:     coord,
		Controller:  ctrl,
		MaxInFlight: *slots,
		Shards:      *shards,
		SingleLoop:  *singleLoop,
		QueueCap:    *queueCap,
		Rate:        *rate,
		Burst:       *burst,
		Metrics:     reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *obsAddr != "" {
		o := obs.NewServer(obs.Options{
			Metrics:   reg,
			FrontDoor: fd.Status,
			Cluster:   func() any { return coord.Status() },
			Health: func() obs.HealthStatus {
				st := obs.HealthStatus{Ready: true, Engine: "cluster"}
				if fd.Draining() {
					st.Ready = false
					st.Draining = true
					st.Detail = "coordinator draining"
				}
				return st
			},
		})
		addr, err := o.Start(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer o.Close()
		log.Printf("observability on http://%s (/metrics /frontdoor /cluster /healthz)", addr)
	}

	mux := http.NewServeMux()
	mux.Handle("/query", fd.Handler())
	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Printf("cluster front door on %s (%s routing, %s admission, %d slots)",
			*listen, policy.Name(), ctrl.Name(), *slots)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining (timeout %v)...", *drain)
	if !fd.Shutdown(*drain) {
		log.Printf("front door drain timed out")
	}
	if stopWatch != nil {
		stopWatch()
	}
	if !coord.Close(*drain) {
		log.Printf("coordinator drain timed out")
	}
	srv.Close()
	fst := fd.Stats()
	cst := coord.Status()
	lost := cst.Routed - cst.Completed - cst.Failed
	log.Printf("final: submitted=%d admitted=%d shed=%d rejected=%d", fst.Submitted, fst.Admitted, fst.Shed, fst.Rejected)
	log.Printf("cluster: routed=%d completed=%d failed=%d redispatched=%d lost=%d",
		cst.Routed, cst.Completed, cst.Failed, cst.Redispatched, lost)
}
