// Command lsched-frontdoor serves the multi-tenant query front door
// over HTTP: clients POST plan summaries to /query, the admission
// controller (learned or heuristic) decides admit/defer/shed against
// per-tenant bounded queues and SLO classes, and admitted queries
// execute on the live engine over a synthetic benchmark catalog.
// Observability endpoints (per-tenant admission counters, per-class
// latency histograms, /frontdoor status) serve on a second address.
//
// Usage:
//
//	lsched-frontdoor -listen :8080 -obs :9090
//	lsched-frontdoor -controller heuristic -slots 4 -rate 50
//	lsched-frontdoor -bench tpch -sf 0.05 -sched quickstep
//
// Drive it with cmd/lsched-loadgen.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/frontdoor"
	"repro/internal/heuristics"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/provenance"
	"repro/internal/workload"
)

func benchPlans(bench string, sf float64) ([]*plan.Plan, error) {
	switch bench {
	case "tpch":
		return workload.TPCH(sf), nil
	case "ssb":
		return workload.SSB(sf), nil
	case "job":
		return workload.JOB(), nil
	}
	return nil, fmt.Errorf("unknown benchmark %q", bench)
}

func main() {
	listen := flag.String("listen", ":8080", "query ingress address (POST /query)")
	obsAddr := flag.String("obs", "", "observability address (/metrics, /frontdoor, ...), e.g. :9090")
	bench := flag.String("bench", "ssb", "benchmark backing the synthetic catalog: tpch, ssb, or job")
	sf := flag.Float64("sf", 0.1, "benchmark scale factor (ignored for job)")
	schedName := flag.String("sched", "fair", "execution scheduler: fair or quickstep")
	controller := flag.String("controller", "learned", "admission controller: learned or heuristic")
	slots := flag.Int("slots", 8, "max concurrently executing queries")
	shards := flag.Int("shards", 0, "admission shards, rounded up to a power of two (0 = GOMAXPROCS)")
	singleLoop := flag.Bool("single-loop", false, "use the legacy single drain-loop core instead of sharding (A/B baseline)")
	queueCap := flag.Int("queue-cap", 256, "per-tenant per-class queue bound")
	rate := flag.Float64("rate", 0, "per-tenant rate limit in queries/sec (0 disables)")
	burst := flag.Float64("burst", 0, "rate-limit burst (defaults to rate)")
	threads := flag.Int("threads", 4, "live engine worker threads")
	seed := flag.Int64("seed", 1, "seed for the catalog and admission head")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
	provOut := flag.String("provenance-out", "", "record admission decisions to this trace file (replayable; see lsched-policyctl explain)")
	flag.Parse()

	plans, err := benchPlans(*bench, *sf)
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := workload.SyntheticCatalog(plans, 2048, 8, *seed)
	if err != nil {
		log.Fatal(err)
	}
	reg := metrics.NewRegistry()
	live := engine.NewLive(catalog, engine.LiveConfig{Threads: *threads, Metrics: reg})
	if err := live.Validate(plans); err != nil {
		log.Fatal(err)
	}
	var sched engine.Scheduler
	switch *schedName {
	case "fair":
		sched = heuristics.Fair{}
	case "quickstep":
		sched = heuristics.Quickstep{}
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}

	var ctrl frontdoor.Controller
	switch *controller {
	case "learned":
		ctrl = frontdoor.NewLearned(lsched.NewAdmissionHead(nn.NewParams(*seed)))
	case "heuristic":
		ctrl = frontdoor.NewHeuristic()
	default:
		log.Fatalf("unknown controller %q", *controller)
	}

	// Decision provenance: flight recorder spilling to -provenance-out,
	// a self-calibrating drift detector over the admission features, and
	// per-tenant/class SLO burn tracking. All three serve via obs.
	rec := provenance.NewRecorder(provenance.Options{})
	rec.Instrument(reg)
	rec.SetFeatureNames(provenance.KindAdmit, lsched.AdmissionFeatureNames())
	drift := provenance.NewDriftDetector(provenance.DriftConfig{
		Names:      lsched.AdmissionFeatureNames(),
		RefSamples: 512, // no training-time snapshot: calibrate on the first live window
	})
	drift.Instrument(reg)
	rec.SetDrift(provenance.KindAdmit, drift)
	slo := provenance.NewSLOTracker(provenance.SLOConfig{})
	slo.Instrument(reg)
	var provFile *os.File
	if *provOut != "" {
		provFile, err = os.Create(*provOut)
		if err != nil {
			log.Fatal(err)
		}
		rec.AttachSink(provFile, 256)
	}

	pool, err := frontdoor.NewPlanPool(frontdoor.NewEngineBackend(live, sched), plans)
	if err != nil {
		log.Fatal(err)
	}
	fd, err := frontdoor.New(frontdoor.Options{
		Backend:     pool,
		Controller:  ctrl,
		MaxInFlight: *slots,
		Shards:      *shards,
		SingleLoop:  *singleLoop,
		QueueCap:    *queueCap,
		Rate:        *rate,
		Burst:       *burst,
		Metrics:     reg,
		Provenance:  rec,
		SLO:         slo,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *obsAddr != "" {
		o := obs.NewServer(obs.Options{
			Metrics:    reg,
			FrontDoor:  fd.Status,
			Provenance: rec,
			Drift:      drift,
			SLO:        slo,
			Health: func() obs.HealthStatus {
				st := obs.HealthStatus{Ready: true, Engine: "up"}
				if pv, ok := ctrl.(interface{ PolicyVersion() int }); ok {
					st.PolicyVersion = pv.PolicyVersion()
				}
				if fd.Draining() {
					st.Ready = false
					st.Draining = true
					st.Detail = "front door draining"
				}
				return st
			},
		})
		addr, err := o.Start(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer o.Close()
		log.Printf("observability on http://%s (/metrics /frontdoor /decisions /drift /slo /healthz)", addr)
	}

	mux := http.NewServeMux()
	mux.Handle("/query", fd.Handler())
	srv := &http.Server{Addr: *listen, Handler: mux}
	core := "single-loop"
	if st, ok := fd.Status().(frontdoor.StatusData); ok && len(st.Shards) > 0 {
		core = fmt.Sprintf("%d shards", len(st.Shards))
	}
	go func() {
		log.Printf("front door on %s (%d plans from %s sf=%g, %s scheduler, %s admission, %d slots, %s)",
			*listen, len(plans), *bench, *sf, sched.Name(), ctrl.Name(), *slots, core)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("draining (timeout %v)...", *drain)
	if !fd.Shutdown(*drain) {
		log.Printf("drain timed out; exiting with queries in flight")
	}
	srv.Close()
	if provFile != nil {
		if err := rec.Flush(); err != nil {
			log.Printf("provenance flush: %v", err)
		}
		if err := provFile.Close(); err != nil {
			log.Printf("provenance close: %v", err)
		}
		ps := rec.Stats()
		log.Printf("provenance: %d decisions recorded, %d joined, spilled to %s", ps.Recorded, ps.Joined, *provOut)
	}
	st := fd.Stats()
	log.Printf("final: submitted=%d admitted=%d shed=%d rejected=%d", st.Submitted, st.Admitted, st.Shed, st.Rejected)
}
