package rpcsched

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/engine"
)

// Service is the net/rpc receiver wrapping a local scheduler.
type Service struct {
	mu    sync.Mutex
	sched engine.Scheduler
}

// NewService wraps a scheduler for remote use.
func NewService(s engine.Scheduler) *Service {
	return &Service{sched: s}
}

// OnEvent is the RPC method: it decodes the engine state, invokes the
// wrapped scheduler, and returns its decisions. Calls are serialized —
// schedulers are single-threaded by the execution model (§5.1).
func (s *Service) OnEvent(req *EventRequest, reply *DecisionReply) error {
	st, err := decodeState(req.State)
	if err != nil {
		return err
	}
	ev := engine.Event{
		Kind:    engine.EventKind(req.Kind),
		Time:    req.Time,
		QueryID: req.QueryID,
		OpID:    req.OpID,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Decisions = s.sched.OnEvent(st, ev)
	return nil
}

// ServerOptions tunes the connection-serving behavior.
type ServerOptions struct {
	// IOTimeout bounds every read and write on a connection: a client
	// that goes silent mid-request, or stops draining responses, has
	// its connection closed after this long instead of wedging a server
	// goroutine forever. 0 disables deadlines (trusted local links,
	// net.Pipe tests).
	IOTimeout time.Duration
	// WriteChunk caps how many bytes are written under one deadline.
	// Large streaming responses are split into chunks with a fresh
	// deadline armed per chunk, so the deadline bounds *stall*, not
	// total transfer time: a slow-but-live client that keeps draining
	// survives, while a stalled one is still cut off after IOTimeout.
	// 0 selects DefaultWriteChunk; only meaningful with IOTimeout > 0.
	WriteChunk int
}

// DefaultWriteChunk is the per-deadline write granularity: small enough
// that a client draining at a few hundred KB/s completes every chunk
// within a sub-second IOTimeout, large enough to stay off the syscall
// hot path.
const DefaultWriteChunk = 32 << 10

// Server answers scheduler-RPC connections with graceful shutdown and
// optional per-connection I/O deadlines. The zero ServerOptions match
// the historical Serve behavior (no deadlines).
type Server struct {
	svc     *Service
	rpcSrv  *rpc.Server
	opts    ServerOptions
	pending Inflight

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	connWG sync.WaitGroup
}

// NewServer builds a server around a local scheduler.
func NewServer(sched engine.Scheduler, opts ServerOptions) (*Server, error) {
	svc := NewService(sched)
	rpcSrv := rpc.NewServer()
	if err := rpcSrv.RegisterName("LSched", svc); err != nil {
		return nil, err
	}
	if opts.WriteChunk <= 0 {
		opts.WriteChunk = DefaultWriteChunk
	}
	return &Server{svc: svc, rpcSrv: rpcSrv, opts: opts, conns: make(map[net.Conn]struct{})}, nil
}

// RegisterName exposes an additional RPC receiver on the server, letting
// higher layers (the query front door) answer on the same connections
// and inherit the graceful-shutdown drain and per-connection I/O
// deadlines. Calls to the extra service are tracked by the same
// in-flight counter as scheduler calls.
func (s *Server) RegisterName(name string, rcvr any) error {
	return s.rpcSrv.RegisterName(name, rcvr)
}

// Serve answers connections from lis until the listener closes (or
// Shutdown/Close is called). It returns nil on a clean close.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return fmt.Errorf("rpcsched: server already shut down")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return nil // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go func(conn net.Conn) {
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.connWG.Done()
			}()
			var rwc io.ReadWriteCloser = conn
			if s.opts.IOTimeout > 0 {
				rwc = deadlineConn{Conn: conn, timeout: s.opts.IOTimeout, chunk: s.opts.WriteChunk}
			}
			s.rpcSrv.ServeCodec(trackedCodec{ServerCodec: newGobCodec(rwc), pending: &s.pending})
		}(conn)
	}
}

// Shutdown stops the server gracefully: the listener closes (no new
// connections), in-flight scheduler calls are drained, and only then
// are the connections torn down. drainTimeout bounds the wait for
// in-flight calls (<= 0 waits indefinitely); past it the connections
// are closed anyway. It returns once every connection goroutine has
// exited.
func (s *Server) Shutdown(drainTimeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}

	// Drain: wait (bounded) for requests that are between header-read
	// and response-flush. The codec-level count means the responses of
	// drained calls have reached the socket before teardown.
	drained := s.pending.Wait(drainTimeout)

	// Tear down the (now idle, or past-deadline) connections and wait
	// for their serve goroutines.
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if drained {
		s.connWG.Wait()
		return nil
	}
	// A call overran the drain budget. Its goroutine cannot be
	// cancelled, and net/rpc's per-connection loop waits for its calls,
	// so waiting for the connection goroutines unbounded would inherit
	// the wedge. Give them one more drain budget, then return; a
	// still-stuck handler leaks until it returns on its own.
	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(drainTimeout):
	}
	return nil
}

// Close shuts down immediately: like Shutdown but without waiting for
// in-flight calls. It still waits for the connection goroutines, which
// exit once their calls return (closing a connection cannot cancel a
// scheduler call already executing).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.connWG.Wait()
	return nil
}

// deadlineConn arms a fresh deadline before every read and write, so a
// silent or non-draining peer errors the connection out instead of
// blocking a server goroutine forever.
type deadlineConn struct {
	net.Conn
	timeout time.Duration
	chunk   int
}

func (c deadlineConn) Read(p []byte) (int, error) {
	if err := c.Conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// Write streams p in chunks, re-arming the connection deadline — read
// side included — before each one. Two stale-deadline failure modes are
// fixed by this: (1) a single write deadline across a whole large
// response (the bufio flush of a big reply is one Write call) would kill
// a slow-but-live client mid-drain, so per-chunk deadlines bound *stall*
// rather than total transfer time; (2) while a response streams, net/rpc
// is concurrently parked in ReadRequestHeader for the next request under
// a read deadline armed before the response started — if that fires the
// serve loop tears the connection down under the in-flight reply, so
// every chunk pushes the read deadline forward as evidence the peer is
// live.
func (c deadlineConn) Write(p []byte) (int, error) {
	chunk := c.chunk
	if chunk <= 0 {
		chunk = DefaultWriteChunk
	}
	written := 0
	for written < len(p) {
		end := written + chunk
		if end > len(p) {
			end = len(p)
		}
		if err := c.Conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return written, err
		}
		n, err := c.Conn.Write(p[written:end])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// Serve registers the service and answers connections from lis until it
// closes. It returns after the listener is closed. It is the
// no-deadline convenience form of (*Server).Serve; use NewServer for
// graceful shutdown and I/O deadlines.
func Serve(lis net.Listener, sched engine.Scheduler) error {
	srv, err := NewServer(sched, ServerOptions{})
	if err != nil {
		return err
	}
	return srv.Serve(lis)
}

// ServeConn answers a single connection (handy for net.Pipe tests and
// in-process bridging).
func ServeConn(conn io.ReadWriteCloser, sched engine.Scheduler) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("LSched", NewService(sched)); err != nil {
		return err
	}
	srv.ServeConn(conn)
	return nil
}

// Client implements engine.Scheduler by forwarding every scheduling
// event to a remote Service.
type Client struct {
	name string
	rpc  *rpc.Client
}

// Dial connects to a remote scheduler service.
func Dial(network, address string) (*Client, error) {
	c, err := rpc.Dial(network, address)
	if err != nil {
		return nil, fmt.Errorf("rpcsched: dial: %w", err)
	}
	return &Client{name: "rpc://" + address, rpc: c}, nil
}

// RetryOptions tunes DialRetry's backoff schedule. The zero value
// selects the defaults noted per field.
type RetryOptions struct {
	// Attempts is the bounded attempt budget (default 5; values < 1
	// select the default — a single try is Attempts: 1).
	Attempts int
	// BaseDelay is the wait after the first failure (default 50ms);
	// subsequent waits double up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 2s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized (default
	// 0.5): the sleep is delay*(1-Jitter) + rand*delay*Jitter, so a
	// fleet of reconnecting coordinators does not thunder in lockstep.
	Jitter float64
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.Attempts < 1 {
		o.Attempts = 5
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	if o.Jitter <= 0 || o.Jitter > 1 {
		o.Jitter = 0.5
	}
	return o
}

// DialRetry dials with exponential backoff plus jitter under a bounded
// attempt budget, so a peer that is restarting (a rescheduled worker
// node, a coordinator failing over) is reconnected to instead of
// erroring the caller out on the first refused connection. It returns
// the last dial error once the budget is exhausted.
func DialRetry(network, address string, opts RetryOptions) (*Client, error) {
	o := opts.withDefaults()
	delay := o.BaseDelay
	var lastErr error
	for attempt := 0; attempt < o.Attempts; attempt++ {
		if attempt > 0 {
			sleep := time.Duration(float64(delay) * (1 - o.Jitter))
			sleep += time.Duration(rand.Int63n(int64(float64(delay)*o.Jitter) + 1))
			time.Sleep(sleep)
			if delay *= 2; delay > o.MaxDelay {
				delay = o.MaxDelay
			}
		}
		c, err := rpc.Dial(network, address)
		if err == nil {
			return &Client{name: "rpc://" + address, rpc: c}, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("rpcsched: dial %s (after %d attempts): %w", address, o.Attempts, lastErr)
}

// Call invokes an arbitrary service method on the connection — the
// scheduler server multiplexes extra receivers (the front door, cluster
// nodes) onto the same connections via RegisterName, and this is the
// client half of that arrangement.
func (c *Client) Call(serviceMethod string, args, reply any) error {
	return c.rpc.Call(serviceMethod, args, reply)
}

// NewClientConn builds a client over an existing connection.
func NewClientConn(conn io.ReadWriteCloser) *Client {
	return &Client{name: "rpc://conn", rpc: rpc.NewClient(conn)}
}

// Name implements engine.Scheduler.
func (c *Client) Name() string { return c.name }

// OnEvent implements engine.Scheduler. RPC failures surface as "no
// decisions": the engine keeps running with its previous grants, which
// is the same degraded mode the paper's prototype has when the agent
// process is unreachable.
func (c *Client) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	req := &EventRequest{
		Kind:    int(ev.Kind),
		Time:    ev.Time,
		QueryID: ev.QueryID,
		OpID:    ev.OpID,
		State:   encodeState(st),
	}
	var reply DecisionReply
	if err := c.rpc.Call("LSched.OnEvent", req, &reply); err != nil {
		return nil
	}
	return reply.Decisions
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rpc.Close() }
