package rpcsched

import (
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"

	"repro/internal/engine"
)

// Service is the net/rpc receiver wrapping a local scheduler.
type Service struct {
	mu    sync.Mutex
	sched engine.Scheduler
}

// NewService wraps a scheduler for remote use.
func NewService(s engine.Scheduler) *Service {
	return &Service{sched: s}
}

// OnEvent is the RPC method: it decodes the engine state, invokes the
// wrapped scheduler, and returns its decisions. Calls are serialized —
// schedulers are single-threaded by the execution model (§5.1).
func (s *Service) OnEvent(req *EventRequest, reply *DecisionReply) error {
	st, err := decodeState(req.State)
	if err != nil {
		return err
	}
	ev := engine.Event{
		Kind:    engine.EventKind(req.Kind),
		Time:    req.Time,
		QueryID: req.QueryID,
		OpID:    req.OpID,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	reply.Decisions = s.sched.OnEvent(st, ev)
	return nil
}

// Serve registers the service and answers connections from lis until it
// closes. It returns after the listener is closed.
func Serve(lis net.Listener, sched engine.Scheduler) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("LSched", NewService(sched)); err != nil {
		return err
	}
	for {
		conn, err := lis.Accept()
		if err != nil {
			return nil // listener closed
		}
		go srv.ServeConn(conn)
	}
}

// ServeConn answers a single connection (handy for net.Pipe tests and
// in-process bridging).
func ServeConn(conn io.ReadWriteCloser, sched engine.Scheduler) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("LSched", NewService(sched)); err != nil {
		return err
	}
	srv.ServeConn(conn)
	return nil
}

// Client implements engine.Scheduler by forwarding every scheduling
// event to a remote Service.
type Client struct {
	name string
	rpc  *rpc.Client
}

// Dial connects to a remote scheduler service.
func Dial(network, address string) (*Client, error) {
	c, err := rpc.Dial(network, address)
	if err != nil {
		return nil, fmt.Errorf("rpcsched: dial: %w", err)
	}
	return &Client{name: "rpc://" + address, rpc: c}, nil
}

// NewClientConn builds a client over an existing connection.
func NewClientConn(conn io.ReadWriteCloser) *Client {
	return &Client{name: "rpc://conn", rpc: rpc.NewClient(conn)}
}

// Name implements engine.Scheduler.
func (c *Client) Name() string { return c.name }

// OnEvent implements engine.Scheduler. RPC failures surface as "no
// decisions": the engine keeps running with its previous grants, which
// is the same degraded mode the paper's prototype has when the agent
// process is unreachable.
func (c *Client) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	req := &EventRequest{
		Kind:    int(ev.Kind),
		Time:    ev.Time,
		QueryID: ev.QueryID,
		OpID:    ev.OpID,
		State:   encodeState(st),
	}
	var reply DecisionReply
	if err := c.rpc.Call("LSched.OnEvent", req, &reply); err != nil {
		return nil
	}
	return reply.Decisions
}

// Close tears down the connection.
func (c *Client) Close() error { return c.rpc.Close() }
