package rpcsched

import (
	"math/rand"
	"net"
	"testing"

	"repro/internal/engine"
	"repro/internal/heuristics"
	"repro/internal/lsched"
	"repro/internal/workload"
)

func testWorkload(t *testing.T, n int) []engine.Arrival {
	t.Helper()
	pool, err := workload.NewPool(workload.BenchSSB, 31)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	return workload.Streaming(pool.Train, n, 0.5, rng)
}

// runOverPipe drives a workload with the scheduler living on the far
// side of a net.Pipe connection.
func runOverPipe(t *testing.T, remote engine.Scheduler, arrivals []engine.Arrival) *engine.SimResult {
	t.Helper()
	serverConn, clientConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ServeConn(serverConn, remote); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	client := NewClientConn(clientConn)
	defer func() {
		client.Close()
		<-done
	}()
	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 31, NoiseFrac: 0.1})
	res, err := sim.Run(client, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRemoteHeuristicMatchesLocal(t *testing.T) {
	arrivals := testWorkload(t, 6)
	remote := runOverPipe(t, heuristics.Fair{}, cloneArrivals(arrivals))

	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 31, NoiseFrac: 0.1})
	local, err := sim.Run(heuristics.Fair{}, cloneArrivals(arrivals))
	if err != nil {
		t.Fatal(err)
	}
	// A deterministic heuristic must take identical decisions whether it
	// is co-located or behind RPC, because the wire form carries the
	// full scheduler-visible state.
	if remote.Makespan != local.Makespan {
		t.Fatalf("remote makespan %v != local %v", remote.Makespan, local.Makespan)
	}
	for id := range local.Durations {
		if remote.Durations[id] != local.Durations[id] {
			t.Fatalf("query %d: remote %v, local %v", id, remote.Durations[id], local.Durations[id])
		}
	}
}

func TestRemoteLSchedAgentSchedules(t *testing.T) {
	agent := lsched.New(lsched.DefaultOptions(31))
	agent.SetGreedy(true)
	res := runOverPipe(t, agent, testWorkload(t, 5))
	if len(res.Durations) != 5 {
		t.Fatalf("remote agent completed %d of 5", len(res.Durations))
	}
	if res.SchedActions == 0 {
		t.Fatal("remote agent took no actions")
	}
}

func TestWireRoundTripPreservesState(t *testing.T) {
	// Capture a mid-execution state in wire form, decode it, and
	// compare the scheduler-visible views. The snapshot is taken while
	// queries are mid-flight (some operators active, some done).
	var ws WireState
	var wantQueries int
	var wantRoots []int
	capture := captureSched{onState: func(st *engine.State) {
		if wantQueries == 0 && len(st.Queries) >= 2 {
			ws = encodeState(st)
			wantQueries = len(st.Queries)
			for _, q := range st.Queries {
				wantRoots = append(wantRoots, len(q.SchedulableRoots()))
			}
		}
	}}
	sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 7})
	if _, err := sim.Run(capture, testWorkload(t, 3)); err != nil {
		t.Fatal(err)
	}
	if wantQueries == 0 {
		t.Fatal("never saw two concurrent queries; enlarge the workload")
	}
	decoded, err := decodeState(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded.Queries) != wantQueries {
		t.Fatalf("decoded %d queries, want %d", len(decoded.Queries), wantQueries)
	}
	for i, dq := range decoded.Queries {
		if got := len(dq.SchedulableRoots()); got != wantRoots[i] {
			t.Fatalf("query %d: %d schedulable roots after round trip, want %d", i, got, wantRoots[i])
		}
		if dq.Plan.NumOps() != len(ws.Queries[i].Ops) {
			t.Fatalf("query %d plan shape mismatch", i)
		}
	}
	if len(decoded.Threads) != len(ws.Threads) {
		t.Fatal("thread pool mismatch")
	}
}

type captureSched struct {
	onState func(*engine.State)
}

func (captureSched) Name() string { return "capture" }
func (c captureSched) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	c.onState(st)
	return heuristics.Fair{}.OnEvent(st, ev)
}

func cloneArrivals(in []engine.Arrival) []engine.Arrival {
	out := make([]engine.Arrival, len(in))
	for i, a := range in {
		out[i] = engine.Arrival{Plan: a.Plan.Clone(), At: a.At}
	}
	return out
}

func TestDialTCP(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	go Serve(lis, heuristics.Quickstep{})
	defer lis.Close()

	client, err := Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 9})
	res, err := sim.Run(client, testWorkload(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 4 {
		t.Fatalf("completed %d of 4 over TCP", len(res.Durations))
	}
}
