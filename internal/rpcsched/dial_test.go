package rpcsched

import (
	"net"
	"testing"
	"time"

	"repro/internal/heuristics"
)

// TestDialRetryConnectsToLateServer starts the server only after the
// first dial attempts have failed: DialRetry must keep trying within
// its budget and come back with a working client — the node-restart
// scenario a plain Dial turns into a dead cluster.
func TestDialRetryConnectsToLateServer(t *testing.T) {
	// Reserve an address, then close it so early attempts are refused.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	srvUp := make(chan *Server, 1)
	go func() {
		time.Sleep(120 * time.Millisecond)
		lis, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial below will fail the test
		}
		srv, err := NewServer(heuristics.FIFO{}, ServerOptions{})
		if err != nil {
			return
		}
		srvUp <- srv
		srv.Serve(lis) //nolint:errcheck
	}()

	c, err := DialRetry("tcp", addr, RetryOptions{Attempts: 10, BaseDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatalf("DialRetry against a late server: %v", err)
	}
	defer c.Close()
	select {
	case srv := <-srvUp:
		defer srv.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("server never came up")
	}
	// The connection must actually work, not just connect.
	if got := c.Name(); got != "rpc://"+addr {
		t.Fatalf("client name = %q", got)
	}
}

// TestDialRetryBoundedBudget pins the failure mode: with nothing
// listening, DialRetry returns the dial error after its attempt budget
// instead of retrying forever.
func TestDialRetryBoundedBudget(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	start := time.Now()
	_, err = DialRetry("tcp", addr, RetryOptions{Attempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 20 * time.Millisecond})
	if err == nil {
		t.Fatal("DialRetry succeeded against a dead address")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("3-attempt budget took %v; backoff is unbounded", elapsed)
	}
}
