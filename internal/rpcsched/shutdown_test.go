package rpcsched

import (
	"net"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/heuristics"
)

// startServer listens on loopback and serves sched until cleanup.
func startServer(t *testing.T, sched engine.Scheduler, opts ServerOptions) (*Server, string, chan error) {
	t.Helper()
	srv, err := NewServer(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(lis) }()
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String(), serveDone
}

// TestDeadConnectionTimesOut is the satellite requirement: a client that
// connects and then goes silent must have its connection closed by the
// per-connection I/O deadline instead of wedging a server goroutine.
func TestDeadConnectionTimesOut(t *testing.T) {
	const ioTimeout = 150 * time.Millisecond
	_, addr, _ := startServer(t, heuristics.Fair{}, ServerOptions{IOTimeout: ioTimeout})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Dead client: never send a request. The server's read deadline
	// must fire and hang up; we observe that as our read unblocking
	// with a closed/reset connection well before our own 5s guard.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	buf := make([]byte, 1)
	_, rerr := conn.Read(buf)
	elapsed := time.Since(start)
	if rerr == nil {
		t.Fatal("server sent data to a client that never issued a request")
	}
	if ne, ok := rerr.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server never hung up on the dead connection (local read guard fired after %v)", elapsed)
	}
	if elapsed > 10*ioTimeout {
		t.Fatalf("dead connection closed after %v; deadline is %v", elapsed, ioTimeout)
	}

	// The service itself is unharmed: a healthy client still schedules.
	client, err := Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 9})
	res, err := sim.Run(client, testWorkload(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 3 {
		t.Fatalf("completed %d of 3 after dead-connection reap", len(res.Durations))
	}
}

// gate is a scheduler that parks inside OnEvent until released, to pin
// a call in flight across a shutdown.
type gate struct {
	entered chan struct{}
	release chan struct{}
}

func (gate) Name() string { return "gate" }
func (g gate) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	g.entered <- struct{}{}
	<-g.release
	return nil
}

// TestShutdownDrainsInFlight holds a call open inside the scheduler,
// shuts down concurrently, and asserts the shutdown waits for the call
// and the caller still receives its reply.
func TestShutdownDrainsInFlight(t *testing.T) {
	sched := gate{entered: make(chan struct{}), release: make(chan struct{})}
	srv, addr, serveDone := startServer(t, sched, ServerOptions{})

	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	callDone := make(chan error, 1)
	go func() {
		var reply DecisionReply
		callDone <- rc.Call("LSched.OnEvent", &EventRequest{}, &reply)
	}()
	<-sched.entered // the call is now in flight server-side

	shutDone := make(chan struct{})
	go func() {
		srv.Shutdown(10 * time.Second)
		close(shutDone)
	}()
	select {
	case <-shutDone:
		t.Fatal("Shutdown returned while a call was still in flight")
	case <-time.After(100 * time.Millisecond):
	}

	close(sched.release)
	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call failed during graceful shutdown: %v", err)
	}
	select {
	case <-shutDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight call drained")
	}

	// The accept loop exited cleanly and the listener is gone.
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v after shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after shutdown")
	}
	if _, err := rpc.Dial("tcp", addr); err == nil {
		t.Fatal("new connection accepted after shutdown")
	}
}

// TestShutdownDrainTimeout: a call that never finishes must not hold
// Shutdown hostage past the drain budget.
func TestShutdownDrainTimeout(t *testing.T) {
	sched := gate{entered: make(chan struct{}), release: make(chan struct{})}
	srv, addr, _ := startServer(t, sched, ServerOptions{})
	defer close(sched.release) // unstick the parked handler at test end

	rc, err := rpc.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	go func() {
		var reply DecisionReply
		rc.Call("LSched.OnEvent", &EventRequest{}, &reply)
	}()
	<-sched.entered

	start := time.Now()
	if err := srv.Shutdown(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Shutdown took %v despite a 100ms drain budget", elapsed)
	}
}

// bigReply answers every event with a large decision list, so the gob
// response flushes as one multi-hundred-KB write.
type bigReply struct{ n int }

func (bigReply) Name() string { return "big" }
func (b bigReply) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	ds := make([]engine.Decision, b.n)
	for i := range ds {
		ds[i] = engine.Decision{QueryID: i, RootOpID: i % 257, PipelineDepth: i % 5, Threads: i % 31}
	}
	return ds
}

// pipeListener hands out pre-made in-memory connections: net.Pipe is
// synchronous and unbuffered, so the server's write pace is exactly the
// client's read pace — no kernel socket buffering to hide stalls behind,
// and no TCP window heuristics to make timing flaky.
type pipeListener struct {
	conns chan net.Conn
	once  sync.Once
}

func newPipeListener(conns ...net.Conn) *pipeListener {
	ch := make(chan net.Conn, len(conns))
	for _, c := range conns {
		ch <- c
	}
	return &pipeListener{conns: ch}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	c, ok := <-l.conns
	if !ok {
		return nil, net.ErrClosed
	}
	return c, nil
}
func (l *pipeListener) Close() error   { l.once.Do(func() { close(l.conns) }); return nil }
func (l *pipeListener) Addr() net.Addr { return &net.UnixAddr{Name: "pipe", Net: "unix"} }

// throttledConn reads in small sips with a pause after each one — a
// slow-but-live client: always making progress, never fast.
type throttledConn struct {
	net.Conn
	chunk int
	pause time.Duration
}

func (t *throttledConn) Read(p []byte) (int, error) {
	if len(p) > t.chunk {
		p = p[:t.chunk]
	}
	n, err := t.Conn.Read(p)
	time.Sleep(t.pause)
	return n, err
}

// TestSlowButLiveClientSurvivesLargeResponse is the regression test for
// the streaming-response deadline fix: a response much larger than the
// client can drain within one IOTimeout must still arrive intact,
// because the connection deadline is re-armed per write chunk (bounding
// stall time, not total transfer time, and keeping the parked
// next-request read from timing out under an in-flight reply). Before
// the fix the whole response ran under one stale deadline window and the
// server killed the connection mid-drain.
func TestSlowButLiveClientSurvivesLargeResponse(t *testing.T) {
	const ioTimeout = 200 * time.Millisecond
	const decisions = 40000 // ~500 KB of gob on the wire

	srv, err := NewServer(bigReply{n: decisions}, ServerOptions{IOTimeout: ioTimeout})
	if err != nil {
		t.Fatal(err)
	}
	srvConn, cliConn := net.Pipe()
	go srv.Serve(newPipeListener(srvConn)) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	// ~800 KB/s: the full response takes several IOTimeout windows, but
	// every individual write chunk drains well within one.
	client := NewClientConn(&throttledConn{Conn: cliConn, chunk: 8 << 10, pause: 10 * time.Millisecond})
	defer client.Close()

	start := time.Now()
	var reply DecisionReply
	if err := client.rpc.Call("LSched.OnEvent", &EventRequest{}, &reply); err != nil {
		t.Fatalf("slow-but-live client was cut off mid-response: %v", err)
	}
	elapsed := time.Since(start)
	if len(reply.Decisions) != decisions {
		t.Fatalf("got %d decisions, want %d", len(reply.Decisions), decisions)
	}
	if elapsed < ioTimeout {
		t.Logf("transfer finished in %v (< one %v deadline window); throttle too weak to exercise the re-arm path", elapsed, ioTimeout)
	}
}
