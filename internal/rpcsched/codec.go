package rpcsched

import (
	"bufio"
	"encoding/gob"
	"io"
	"net/rpc"
)

// gobCodec is the standard gob wire format for net/rpc (the same frames
// rpc.ServeConn and rpc.NewClient speak), implemented here so the
// server can wrap it with in-flight tracking.
type gobCodec struct {
	rwc io.ReadWriteCloser
	dec *gob.Decoder
	enc *gob.Encoder
	buf *bufio.Writer
}

func newGobCodec(rwc io.ReadWriteCloser) *gobCodec {
	buf := bufio.NewWriter(rwc)
	return &gobCodec{rwc: rwc, dec: gob.NewDecoder(rwc), enc: gob.NewEncoder(buf), buf: buf}
}

func (c *gobCodec) ReadRequestHeader(r *rpc.Request) error { return c.dec.Decode(r) }
func (c *gobCodec) ReadRequestBody(body any) error         { return c.dec.Decode(body) }

func (c *gobCodec) WriteResponse(r *rpc.Response, body any) error {
	if err := c.enc.Encode(r); err != nil {
		return err
	}
	if err := c.enc.Encode(body); err != nil {
		return err
	}
	return c.buf.Flush()
}

func (c *gobCodec) Close() error { return c.rwc.Close() }

// trackedCodec counts a request as in-flight from the moment its header
// is read until its response has been flushed to the connection. That
// window is what a graceful shutdown drains: when the count hits zero,
// every accepted request has had its response handed to the socket, so
// closing the connection cannot cut a reply in half.
type trackedCodec struct {
	rpc.ServerCodec
	pending *Inflight
}

func (c trackedCodec) ReadRequestHeader(r *rpc.Request) error {
	if err := c.ServerCodec.ReadRequestHeader(r); err != nil {
		return err
	}
	// net/rpc answers every request whose header was read — even a
	// body-decode failure gets an error response — so each add here is
	// balanced by the WriteResponse below.
	c.pending.Add()
	return nil
}

func (c trackedCodec) WriteResponse(r *rpc.Response, body any) error {
	defer c.pending.Done()
	return c.ServerCodec.WriteResponse(r, body)
}
