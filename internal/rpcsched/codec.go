package rpcsched

import (
	"bufio"
	"encoding/gob"
	"io"
	"net/rpc"
	"sync"
	"time"
)

// gobCodec is the standard gob wire format for net/rpc (the same frames
// rpc.ServeConn and rpc.NewClient speak), implemented here so the
// server can wrap it with in-flight tracking.
type gobCodec struct {
	rwc io.ReadWriteCloser
	dec *gob.Decoder
	enc *gob.Encoder
	buf *bufio.Writer
}

func newGobCodec(rwc io.ReadWriteCloser) *gobCodec {
	buf := bufio.NewWriter(rwc)
	return &gobCodec{rwc: rwc, dec: gob.NewDecoder(rwc), enc: gob.NewEncoder(buf), buf: buf}
}

func (c *gobCodec) ReadRequestHeader(r *rpc.Request) error { return c.dec.Decode(r) }
func (c *gobCodec) ReadRequestBody(body any) error         { return c.dec.Decode(body) }

func (c *gobCodec) WriteResponse(r *rpc.Response, body any) error {
	if err := c.enc.Encode(r); err != nil {
		return err
	}
	if err := c.enc.Encode(body); err != nil {
		return err
	}
	return c.buf.Flush()
}

func (c *gobCodec) Close() error { return c.rwc.Close() }

// trackedCodec counts a request as in-flight from the moment its header
// is read until its response has been flushed to the connection. That
// window is what a graceful shutdown drains: when the count hits zero,
// every accepted request has had its response handed to the socket, so
// closing the connection cannot cut a reply in half.
type trackedCodec struct {
	rpc.ServerCodec
	pending *inflight
}

func (c trackedCodec) ReadRequestHeader(r *rpc.Request) error {
	if err := c.ServerCodec.ReadRequestHeader(r); err != nil {
		return err
	}
	// net/rpc answers every request whose header was read — even a
	// body-decode failure gets an error response — so each add here is
	// balanced by the WriteResponse below.
	c.pending.add()
	return nil
}

func (c trackedCodec) WriteResponse(r *rpc.Response, body any) error {
	defer c.pending.done()
	return c.ServerCodec.WriteResponse(r, body)
}

// inflight is a drain-able counter. Unlike sync.WaitGroup it tolerates
// add() racing with wait() — new requests can still land on open
// connections while a shutdown is draining.
type inflight struct {
	mu   sync.Mutex
	n    int
	zero chan struct{} // non-nil while a waiter wants the zero signal
}

func (f *inflight) add() {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
}

func (f *inflight) done() {
	f.mu.Lock()
	f.n--
	if f.n == 0 && f.zero != nil {
		close(f.zero)
		f.zero = nil
	}
	f.mu.Unlock()
}

// wait blocks until the count reaches zero, or until timeout elapses
// (timeout <= 0 waits indefinitely). It reports whether the count
// actually drained.
func (f *inflight) wait(timeout time.Duration) bool {
	f.mu.Lock()
	if f.n == 0 {
		f.mu.Unlock()
		return true
	}
	if f.zero == nil {
		f.zero = make(chan struct{})
	}
	ch := f.zero
	f.mu.Unlock()
	if timeout <= 0 {
		<-ch
		return true
	}
	select {
	case <-ch:
		return true
	case <-time.After(timeout):
		return false
	}
}
