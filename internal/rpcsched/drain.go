package rpcsched

import (
	"sync"
	"time"
)

// Inflight is a drain-able in-flight counter: the unit of graceful
// shutdown here and in the layers built on this server (the query front
// door tracks its dispatched queries with one). Unlike sync.WaitGroup it
// tolerates Add racing with Wait — new work can still land while a
// shutdown is draining, and the waiter simply waits for the count to
// touch zero.
type Inflight struct {
	mu   sync.Mutex
	n    int
	zero chan struct{} // non-nil while a waiter wants the zero signal
}

// Add counts one unit of work as in flight.
func (f *Inflight) Add() {
	f.mu.Lock()
	f.n++
	f.mu.Unlock()
}

// Done retires one unit of work, signalling waiters at zero.
func (f *Inflight) Done() {
	f.mu.Lock()
	f.n--
	if f.n == 0 && f.zero != nil {
		close(f.zero)
		f.zero = nil
	}
	f.mu.Unlock()
}

// N returns the current in-flight count.
func (f *Inflight) N() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Wait blocks until the count reaches zero, or until timeout elapses
// (timeout <= 0 waits indefinitely). It reports whether the count
// actually drained.
func (f *Inflight) Wait(timeout time.Duration) bool {
	f.mu.Lock()
	if f.n == 0 {
		f.mu.Unlock()
		return true
	}
	if f.zero == nil {
		f.zero = make(chan struct{})
	}
	ch := f.zero
	f.mu.Unlock()
	if timeout <= 0 {
		<-ch
		return true
	}
	select {
	case <-ch:
		return true
	case <-time.After(timeout):
		return false
	}
}
