// Package rpcsched lets a database engine and a scheduler run in
// separate processes, mirroring the paper's deployment: the prototype's
// Quickstep (C++) engine talks to the LSched agent through an RPC
// interface (§7.1). Server wraps any engine.Scheduler behind net/rpc;
// Client implements engine.Scheduler by forwarding scheduling events to
// the remote side.
//
// Engine state crosses the wire in a self-contained form: plans are
// re-materialized on the scheduler side, so the remote agent extracts
// features from exactly the structures a co-located agent would see.
package rpcsched

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/plan"
)

// WireOp is one operator's wire form.
type WireOp struct {
	Type           int
	InputRelations []string
	Columns        []string
	EstBlocks      int
	Selectivity    float64
	CostFactor     float64
	// Runtime state.
	TotalWOs   int
	Dispatched int
	Completed  int
	Active     bool
	Pipelined  bool
	Done       bool
	// EstDuration/EstMemory carry the engine-side cost estimates so the
	// remote scheduler sees the same O-DUR/O-MEM features.
	EstDuration float64
	EstMemory   float64
}

// WireEdge is one plan edge's wire form.
type WireEdge struct {
	Child, Parent       int
	NonPipelineBreaking bool
}

// WireQuery is one running query's wire form.
type WireQuery struct {
	ID              int
	Name            string
	Arrival         float64
	AssignedThreads int
	Ops             []WireOp
	Edges           []WireEdge
}

// WireThread is one worker's wire form.
type WireThread struct {
	ID        int
	Busy      bool
	LastQuery int
}

// WireState is the scheduler-visible engine state on the wire.
type WireState struct {
	Now     float64
	Queries []WireQuery
	Threads []WireThread
}

// EventRequest is the RPC request: one scheduling event plus the state.
type EventRequest struct {
	Kind    int
	Time    float64
	QueryID int
	OpID    int
	State   WireState
}

// DecisionReply is the RPC response.
type DecisionReply struct {
	Decisions []engine.Decision
}

// encodeState converts live engine state to the wire form.
func encodeState(st *engine.State) WireState {
	ws := WireState{Now: st.Now}
	for _, q := range st.Queries {
		wq := WireQuery{
			ID:              q.ID,
			Name:            q.Plan.QueryName,
			Arrival:         q.Arrival,
			AssignedThreads: q.AssignedThreads,
		}
		for _, os := range q.OpStates {
			key := q.ID*1024 + os.Op.ID
			rem := os.Remaining()
			wq.Ops = append(wq.Ops, WireOp{
				Type:           int(os.Op.Type),
				InputRelations: os.Op.InputRelations,
				Columns:        os.Op.Columns,
				EstBlocks:      os.Op.EstBlocks,
				Selectivity:    os.Op.Selectivity,
				CostFactor:     os.Op.CostFactor,
				TotalWOs:       os.TotalWOs,
				Dispatched:     os.Dispatched,
				Completed:      os.Completed,
				Active:         os.Active,
				Pipelined:      os.Pipelined,
				Done:           os.Done,
				EstDuration:    st.Estimator.EstimateDuration(key, rem),
				EstMemory:      st.Estimator.EstimateMemory(key, rem),
			})
		}
		for _, e := range q.Plan.Edges {
			wq.Edges = append(wq.Edges, WireEdge{
				Child:               e.Child.ID,
				Parent:              e.Parent.ID,
				NonPipelineBreaking: e.NonPipelineBreaking,
			})
		}
		ws.Queries = append(ws.Queries, wq)
	}
	for _, t := range st.Threads {
		ws.Threads = append(ws.Threads, WireThread{ID: t.ID, Busy: t.Busy, LastQuery: t.LastQuery})
	}
	return ws
}

// decodeState reconstructs engine state on the scheduler side. The
// reconstructed cost estimator is primed so that the remote agent's
// O-DUR/O-MEM features equal the engine-side estimates.
func decodeState(ws WireState) (*engine.State, error) {
	st := &engine.State{
		Now:       ws.Now,
		Estimator: costmodel.NewEstimator(2, 1, 1),
	}
	for _, wq := range ws.Queries {
		b := plan.NewBuilder(wq.Name)
		ops := make([]*plan.Operator, len(wq.Ops))
		for i, wo := range wq.Ops {
			ops[i] = b.Add(&plan.Operator{
				Type:           plan.OpType(wo.Type),
				InputRelations: wo.InputRelations,
				Columns:        wo.Columns,
				EstBlocks:      wo.EstBlocks,
				Selectivity:    wo.Selectivity,
				CostFactor:     wo.CostFactor,
			})
		}
		for _, we := range wq.Edges {
			if we.Child < 0 || we.Child >= len(ops) || we.Parent < 0 || we.Parent >= len(ops) {
				return nil, fmt.Errorf("rpcsched: edge %d→%d out of range", we.Child, we.Parent)
			}
			b.Connect(ops[we.Child], ops[we.Parent], we.NonPipelineBreaking)
		}
		p, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("rpcsched: rebuilding plan %q: %w", wq.Name, err)
		}
		q := engine.NewQueryStateForWire(wq.ID, p, wq.Arrival, wq.AssignedThreads)
		for i, wo := range wq.Ops {
			os := q.OpStates[i]
			os.TotalWOs = wo.TotalWOs
			os.Dispatched = wo.Dispatched
			os.Completed = wo.Completed
			os.Active = wo.Active
			os.Pipelined = wo.Pipelined
			os.Done = wo.Done
			// Prime the estimator: one observation at the per-order
			// estimate reproduces the engine-side O-DUR/O-MEM feature.
			rem := wo.TotalWOs - wo.Completed
			if rem > 0 {
				st.Estimator.ObserveCompletion(wq.ID*1024+i, wo.EstDuration/float64(rem), wo.EstMemory/float64(rem))
			}
		}
		st.Queries = append(st.Queries, q)
	}
	for _, wt := range ws.Threads {
		st.Threads = append(st.Threads, engine.ThreadInfo{ID: wt.ID, Busy: wt.Busy, LastQuery: wt.LastQuery})
	}
	return st, nil
}
