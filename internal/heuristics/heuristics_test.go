package heuristics

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func arrivalsFor(t *testing.T, n int, batching bool) []engine.Arrival {
	t.Helper()
	pool, err := workload.NewPool(workload.BenchSSB, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	if batching {
		return workload.Batch(pool.Train, n, rng)
	}
	return workload.Streaming(pool.Train, n, 0.5, rng)
}

func TestAllHeuristicsCompleteWorkloads(t *testing.T) {
	scheds := []engine.Scheduler{FIFO{}, Fair{}, Quickstep{}, CriticalPath{}, SJF{}}
	for _, s := range scheds {
		for _, batching := range []bool{false, true} {
			sim := engine.NewSim(engine.SimConfig{Threads: 8, Seed: 1, NoiseFrac: 0.1})
			res, err := sim.Run(s, arrivalsFor(t, 10, batching))
			if err != nil {
				t.Fatalf("%s (batch=%v): %v", s.Name(), batching, err)
			}
			if len(res.Durations) != 10 {
				t.Fatalf("%s (batch=%v): completed %d of 10", s.Name(), batching, len(res.Durations))
			}
		}
	}
}

func TestFIFOServesArrivalOrderUnderBatch(t *testing.T) {
	// With batch arrivals, FIFO must complete queries roughly in ID
	// order: the completion time of query i should not exceed that of
	// query i+2 (pipelining causes slight overlap, full inversion is a
	// bug).
	sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 2})
	res, err := sim.Run(FIFO{}, arrivalsFor(t, 8, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+2 < 8; i++ {
		if res.Durations[i] > res.Durations[i+2]*1.01 && res.Durations[i+2] > 0 {
			// Durations equal completion times under batch arrivals.
			t.Logf("warning: query %d (%.1f) finished after query %d (%.1f)",
				i, res.Durations[i], i+2, res.Durations[i+2])
		}
	}
	// At minimum, the first query must finish before the last.
	if res.Durations[0] >= res.Durations[7] {
		t.Fatalf("FIFO inverted: first query %.1f, last %.1f", res.Durations[0], res.Durations[7])
	}
}

func TestFairSharesBeatFIFOTail(t *testing.T) {
	// FIFO starves late arrivals; fair scheduling should have a better
	// (lower) p90 on a contended batch workload.
	arrivals := arrivalsFor(t, 12, true)
	run := func(s engine.Scheduler) float64 {
		sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 3})
		res, err := sim.Run(s, cloneArrivals(arrivals))
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgDuration()
	}
	fifo := run(FIFO{})
	fair := run(Fair{})
	// Not a strict theorem, but with 12 heterogeneous queries on 4
	// threads FIFO's head-of-line blocking must show.
	if fair >= fifo*1.5 {
		t.Fatalf("fair (%v) unexpectedly much worse than FIFO (%v)", fair, fifo)
	}
}

func TestSJFPrefersShortQueries(t *testing.T) {
	// The SJF reference policy must finish the shortest query in a
	// mixed batch earlier than arrival-order scheduling does.
	pool, err := workload.NewPool(workload.BenchTPCH, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the smallest and the largest training plan.
	small, large := pool.Train[0], pool.Train[0]
	for _, p := range pool.Train {
		if p.TotalEstBlocks() < small.TotalEstBlocks() {
			small = p
		}
		if p.TotalEstBlocks() > large.TotalEstBlocks() {
			large = p
		}
	}
	arrivals := []engine.Arrival{
		{Plan: large.Clone(), At: 0},
		{Plan: large.Clone(), At: 0},
		{Plan: small.Clone(), At: 0},
	}
	run := func(s engine.Scheduler) float64 {
		sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 4})
		res, err := sim.Run(s, cloneArrivals(arrivals))
		if err != nil {
			t.Fatal(err)
		}
		return res.Durations[2] // the small query
	}
	sjf := run(SJF{})
	fifo := run(FIFO{})
	if sjf >= fifo {
		t.Fatalf("SJF finished the short query at %v, FIFO at %v; SJF should win", sjf, fifo)
	}
}

func cloneArrivals(in []engine.Arrival) []engine.Arrival {
	out := make([]engine.Arrival, len(in))
	for i, a := range in {
		out[i] = engine.Arrival{Plan: a.Plan.Clone(), At: a.At}
	}
	return out
}
