// Package heuristics implements the non-learned baseline schedulers the
// paper evaluates against: FIFO, carefully-tuned weighted fair
// scheduling, the Quickstep built-in priority scheduler, and the
// critical-path pipelining heuristic from the Fig. 1 example.
package heuristics

import (
	"sort"

	"repro/internal/engine"
)

// FIFO runs queries strictly in arrival order: the oldest incomplete
// query receives every thread and aggressive pipelining; later queries
// wait. This is the paper's worst baseline.
type FIFO struct{}

// Name implements engine.Scheduler.
func (FIFO) Name() string { return "FIFO" }

// OnEvent implements engine.Scheduler.
func (FIFO) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	if len(st.Queries) == 0 {
		return nil
	}
	q := st.Queries[0] // arrival order is maintained by the engine
	var ds []engine.Decision
	for _, root := range q.SchedulableRoots() {
		ds = append(ds, engine.Decision{
			QueryID:       q.ID,
			RootOpID:      root.ID,
			PipelineDepth: q.Plan.LongestPipelinePathFrom(root),
			Threads:       st.TotalThreads(),
		})
	}
	if len(ds) == 0 {
		// Nothing new to activate; keep the grant pinned to the head
		// query anyway.
		ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: -1, Threads: st.TotalThreads()})
	}
	return ds
}

// Fair is the carefully-tuned weighted fair scheduler: each running
// query's thread share is proportional to its remaining demand (large
// queries hold larger shares, the classical weighted max-min
// allocation), with conservative pipelining. Demand-proportional
// sharing keeps every query progressing but — unlike cost-aware
// prioritization — lets heavy queries crowd the pool, which is why the
// paper finds it trailing the learned schedulers.
type Fair struct {
	// PipelineDepth is the fixed pipeline degree (default 1).
	PipelineDepth int
}

// Name implements engine.Scheduler.
func (Fair) Name() string { return "Fair" }

// OnEvent implements engine.Scheduler.
func (f Fair) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	n := len(st.Queries)
	if n == 0 {
		return nil
	}
	depth := f.PipelineDepth
	if depth <= 0 {
		depth = 1
	}
	totalWork := 0
	for _, q := range st.Queries {
		totalWork += q.RemainingWork()
	}
	pool := st.TotalThreads()
	var ds []engine.Decision
	for _, q := range st.Queries {
		share := pool / n
		if totalWork > 0 {
			share = pool * q.RemainingWork() / totalWork
		}
		if share < 1 {
			share = 1
		}
		roots := q.SchedulableRoots()
		if len(roots) == 0 {
			ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: -1, Threads: share})
			continue
		}
		for _, root := range roots {
			ds = append(ds, engine.Decision{
				QueryID:       q.ID,
				RootOpID:      root.ID,
				PipelineDepth: depth,
				Threads:       share,
			})
		}
	}
	return ds
}

// Quickstep models the built-in Quickstep scheduler (Patel et al.,
// VLDB 2018): a probabilistic work-order policy where each query's
// share of the worker pool is proportional to its priority — equal by
// default, since priorities are user-assigned rather than cost-derived
// — with the engine's default pipelining. Like the real system, it has
// no cost model for ranking queries; that is exactly the knowledge the
// learned schedulers acquire.
type Quickstep struct {
	// PipelineDepth is the fixed pipeline degree (default 2).
	PipelineDepth int
}

// Name implements engine.Scheduler.
func (Quickstep) Name() string { return "Quickstep" }

// OnEvent implements engine.Scheduler.
func (qs Quickstep) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	n := len(st.Queries)
	if n == 0 {
		return nil
	}
	depth := qs.PipelineDepth
	if depth <= 0 {
		depth = 2
	}
	share := st.TotalThreads() / n
	if share < 1 {
		share = 1
	}
	var ds []engine.Decision
	for _, q := range st.Queries {
		roots := q.SchedulableRoots()
		if len(roots) == 0 {
			ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: -1, Threads: share})
			continue
		}
		for _, root := range roots {
			ds = append(ds, engine.Decision{
				QueryID:       q.ID,
				RootOpID:      root.ID,
				PipelineDepth: depth,
				Threads:       share,
			})
		}
	}
	return ds
}

// SJF is a cost-aware shortest-job-first reference policy: it ranks
// queries by remaining estimated work and grants exponentially decaying
// thread shares down the ranking. It is NOT one of the paper's
// baselines (no evaluated system has a cost-aware ranking heuristic);
// it exists as an upper reference for what a perfectly informed
// heuristic achieves on the simulator, used in tests and ablations.
type SJF struct {
	// PipelineDepth is the fixed pipeline degree (default 2).
	PipelineDepth int
}

// Name implements engine.Scheduler.
func (SJF) Name() string { return "SJF" }

// OnEvent implements engine.Scheduler.
func (s SJF) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	n := len(st.Queries)
	if n == 0 {
		return nil
	}
	depth := s.PipelineDepth
	if depth <= 0 {
		depth = 2
	}
	order := make([]*engine.QueryState, n)
	copy(order, st.Queries)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].RemainingWork() < order[j].RemainingWork()
	})
	grant := st.TotalThreads()
	var ds []engine.Decision
	for i, q := range order {
		share := grant >> uint(i+1)
		if share < 1 {
			share = 1
		}
		roots := q.SchedulableRoots()
		if len(roots) == 0 {
			ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: -1, Threads: share})
			continue
		}
		for _, root := range roots {
			ds = append(ds, engine.Decision{
				QueryID:       q.ID,
				RootOpID:      root.ID,
				PipelineDepth: depth,
				Threads:       share,
			})
		}
	}
	return ds
}

// CriticalPath is the classic critical-path pipelining heuristic from
// the paper's Fig. 1 example: at every event it activates, with maximal
// pipelining, the schedulable root whose downstream path carries the
// most remaining work, sharing threads equally among running queries.
type CriticalPath struct{}

// Name implements engine.Scheduler.
func (CriticalPath) Name() string { return "CriticalPath" }

// OnEvent implements engine.Scheduler.
func (CriticalPath) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	n := len(st.Queries)
	if n == 0 {
		return nil
	}
	share := st.TotalThreads() / n
	if share < 1 {
		share = 1
	}
	var ds []engine.Decision
	for _, q := range st.Queries {
		roots := q.SchedulableRoots()
		if len(roots) == 0 {
			continue
		}
		// Pick the root with the longest pipeline path (most aggregate
		// downstream work), pipeline it fully.
		best := roots[0]
		bestDepth := q.Plan.LongestPipelinePathFrom(best)
		for _, r := range roots[1:] {
			if d := q.Plan.LongestPipelinePathFrom(r); d > bestDepth {
				best, bestDepth = r, d
			}
		}
		ds = append(ds, engine.Decision{
			QueryID:       q.ID,
			RootOpID:      best.ID,
			PipelineDepth: bestDepth,
			Threads:       share,
		})
	}
	return ds
}
