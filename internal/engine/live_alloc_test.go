package engine

import (
	"testing"

	"repro/internal/storage"
)

// Allocation-budget regression tests, mirroring the provenance
// recorder's TestProvenanceRecordingAllocBudget: once the block pool
// and scratch buffers are warm, serving a query through the vectorized
// path must stay under a fixed allocations-per-run budget, so pooling
// regressions (a kernel quietly allocating per block again) fail CI
// instead of showing up as a throughput cliff later.

// allocBudgetCatalog is a small relation: 4 blocks so a query issues a
// handful of work orders per operator.
func allocBudgetCatalog(t testing.TB) *storage.Catalog {
	t.Helper()
	gen := storage.NewGenerator(42)
	rel, err := gen.Relation("t", 4*benchRows, benchRows, []storage.GenSpec{
		{Column: storage.Column{Name: "id", Type: storage.Int64Col}, Sequential: true},
		{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 128},
		{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	if err := cat.Register(rel); err != nil {
		t.Fatal(err)
	}
	return cat
}

// liveRunAllocBudget bounds one steady-state RunOne of the 4-block
// select->aggregate->finalize pipeline on the vectorized path. The
// budget covers the per-run bookkeeping that legitimately remains
// (liveRun, result maps, sim setup, plan clone) with modest headroom —
// op states, aggregate tables, estimator windows, events, and output
// blocks are all recycled; per-work-order and per-row allocations
// would blow through it immediately. Vector steady state measured
// ~100/op; the scalar path costs several hundred more.
const liveRunAllocBudget = 150

func TestLiveRunAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	cat := allocBudgetCatalog(t)
	lv := NewLive(cat, LiveConfig{Threads: 2})
	tmpl := benchLivePlan(4)
	// Warm the pool, scratch buffers, and hash/agg table capacities.
	for i := 0; i < 3; i++ {
		if _, err := lv.RunOne(greedyTestSched{depth: 2}, tmpl); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := lv.RunOne(greedyTestSched{depth: 2}, tmpl); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state RunOne: %.0f allocs/op (budget %d)", allocs, liveRunAllocBudget)
	if allocs > liveRunAllocBudget {
		t.Fatalf("steady-state RunOne allocates %.0f/op, budget %d", allocs, liveRunAllocBudget)
	}
}
