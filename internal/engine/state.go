package engine

import (
	"repro/internal/costmodel"
	"repro/internal/plan"
)

// OpState is the run-time state of one operator within a running query.
type OpState struct {
	Op *plan.Operator
	// TotalWOs is the number of work orders the operator will execute.
	TotalWOs int
	// Dispatched counts work orders handed to worker threads.
	Dispatched int
	// Completed counts finished work orders.
	Completed int
	// Active is true once a scheduling decision activated the operator
	// (as an execution root or as a pipelined consumer).
	Active bool
	// Pipelined is true when the operator was activated as part of a
	// pipeline rather than standalone.
	Pipelined bool
	// Done is true once all work orders completed.
	Done bool
}

// Remaining is the O-WO feature: work orders not yet completed.
func (s *OpState) Remaining() int { return s.TotalWOs - s.Completed }

// availableWOs returns how many work orders may be dispatched right now,
// honoring pipelined availability: a pipelined operator can only consume
// as far as its producers have progressed.
func (s *OpState) availableWOs(q *QueryState) int {
	if !s.Active || s.Done {
		return 0
	}
	limit := s.TotalWOs
	if s.Pipelined {
		// Tie availability to the slowest input's progress.
		for _, e := range s.Op.Children() {
			cs := q.OpStates[e.Child.ID]
			if cs.Done {
				continue
			}
			frac := float64(cs.Completed) / float64(cs.TotalWOs)
			if l := int(frac * float64(s.TotalWOs)); l < limit {
				limit = l
			}
		}
	}
	if limit < s.Dispatched {
		return 0
	}
	return limit - s.Dispatched
}

// QueryState is the run-time state of one query instance.
type QueryState struct {
	ID      int
	Plan    *plan.Plan
	Arrival float64
	// Completion is the engine time when the sink finished (0 while
	// running; queries always complete at time > 0).
	Completion float64
	// OpStates is indexed by operator ID.
	OpStates []*OpState
	// AssignedThreads is the current parallelism grant (Q-ATH).
	AssignedThreads int
	// activationOrder records the order operators were activated, used by
	// the dispatcher to favor older pipelines.
	activationOrder []int
}

// Done reports whether the query's sink has finished.
func (q *QueryState) Done() bool {
	return q.OpStates[q.Plan.Sink().ID].Done
}

// sideInputsReady reports whether every input of op other than via is
// complete — the precondition for extending a pipeline through op.
func (q *QueryState) sideInputsReady(op, via *plan.Operator) bool {
	for _, e := range op.Children() {
		if e.Child == via {
			continue
		}
		if !q.OpStates[e.Child.ID].Done {
			return false
		}
	}
	return true
}

// SchedulableRoots returns the operators that may be chosen as execution
// roots now: not done, not already active, and with every input operator
// fully executed.
func (q *QueryState) SchedulableRoots() []*plan.Operator {
	return q.AppendSchedulableRoots(nil)
}

// AppendSchedulableRoots is SchedulableRoots appending into dst — the
// allocation-free form used on the scheduler's per-event hot path.
func (q *QueryState) AppendSchedulableRoots(dst []*plan.Operator) []*plan.Operator {
	roots := dst
	for _, s := range q.OpStates {
		if s.Done || s.Active {
			continue
		}
		ready := true
		for _, e := range s.Op.Children() {
			if !q.OpStates[e.Child.ID].Done {
				ready = false
				break
			}
		}
		if ready {
			roots = append(roots, s.Op)
		}
	}
	return roots
}

// RemainingWork sums remaining work orders over all operators.
func (q *QueryState) RemainingWork() int {
	n := 0
	for _, s := range q.OpStates {
		n += s.Remaining()
	}
	return n
}

// CriticalPathBlocks returns the largest remaining per-operator block
// count along any root-to-sink path — the critical-path heuristic's
// priority signal.
func (q *QueryState) CriticalPathBlocks() int {
	memo := make([]int, len(q.OpStates))
	for i := range memo {
		memo[i] = -1
	}
	var walk func(op *plan.Operator) int
	walk = func(op *plan.Operator) int {
		if memo[op.ID] >= 0 {
			return memo[op.ID]
		}
		best := 0
		for _, e := range op.Children() {
			if d := walk(e.Child); d > best {
				best = d
			}
		}
		memo[op.ID] = best + q.OpStates[op.ID].Remaining()
		return memo[op.ID]
	}
	return walk(q.Plan.Sink())
}

// ThreadInfo is per-worker state visible to the scheduler (Q-LOC).
type ThreadInfo struct {
	ID int
	// Busy is true while the thread executes a work order.
	Busy bool
	// LastQuery is the query the thread most recently executed work for
	// (-1 when none), driving the thread-locality feature and discount.
	LastQuery int
}

// State is the scheduler-visible engine state at a scheduling event.
type State struct {
	// Now is the current engine time.
	Now float64
	// Queries holds all incomplete queries, in arrival order.
	Queries []*QueryState
	// Threads is the worker pool.
	Threads []ThreadInfo
	// Estimator provides the O-DUR / O-MEM estimates.
	Estimator *costmodel.Estimator
}

// FreeThreads counts idle workers.
func (st *State) FreeThreads() int {
	n := 0
	for _, t := range st.Threads {
		if !t.Busy {
			n++
		}
	}
	return n
}

// TotalThreads returns the pool size.
func (st *State) TotalThreads() int { return len(st.Threads) }

// Query finds a query by ID, or nil.
func (st *State) Query(id int) *QueryState {
	for _, q := range st.Queries {
		if q.ID == id {
			return q
		}
	}
	return nil
}

// LocalityVector returns, for query q, a 0/1 value per thread indicating
// whether that thread previously executed work for q (the Q-LOC feature).
func (st *State) LocalityVector(q *QueryState) []float64 {
	return st.AppendLocalityVector(make([]float64, 0, len(st.Threads)), q)
}

// AppendLocalityVector appends the Q-LOC vector to dst and returns the
// extended slice — the allocation-free form feature extractors use on
// the per-event hot path.
func (st *State) AppendLocalityVector(dst []float64, q *QueryState) []float64 {
	for _, t := range st.Threads {
		if t.LastQuery == q.ID {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// NewQueryStateForWire rebuilds a QueryState from externally transported
// fields; the RPC scheduler bridge uses it to re-materialize engine
// state on the scheduler side. Operator run-time state must be filled in
// by the caller.
func NewQueryStateForWire(id int, p *plan.Plan, arrival float64, assignedThreads int) *QueryState {
	q := newQueryState(id, p, arrival)
	if assignedThreads > 0 {
		q.AssignedThreads = assignedThreads
	}
	return q
}

// newQueryState instantiates run-time state for a plan arriving now.
func newQueryState(id int, p *plan.Plan, arrival float64) *QueryState {
	q := &QueryState{ID: id, Plan: p, Arrival: arrival, AssignedThreads: 1}
	q.OpStates = make([]*OpState, len(p.Ops))
	for i, op := range p.Ops {
		q.OpStates[i] = &OpState{Op: op, TotalWOs: op.EstBlocks}
	}
	return q
}
