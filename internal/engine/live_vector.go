package engine

import (
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The vectorized work-order runners. Each one is the block-at-a-time
// counterpart of a scalar runner in live.go: the kernel dispatch
// (predicate kind, column type) happens once per block in
// internal/exec, row loops are tight typed scans, intermediate row
// sets live in reusable selection vectors, and materialized outputs
// are gathered into blocks recycled through the run's BlockPool.

// emitPooled appends a pool-drawn output block to the operator's output
// list and records it for recycling at query completion.
func (lr *liveRun) emitPooled(st *liveOpState, out *storage.Block) {
	st.mu.Lock()
	st.outputs = append(st.outputs, out)
	st.pooled = append(st.pooled, out)
	st.mu.Unlock()
}

func (lr *liveRun) runSelectVector(pred plan.Predicate, col int, st *liveOpState, in *storage.Block) int {
	sc := lr.getScratch()
	sel := exec.Filter(pred, &in.Vectors[col], in.NumRows(), sc.Sel)
	sc.Sel = sel
	out := exec.Gather(lr.pool, in, sel)
	kept := len(sel)
	lr.putScratch(sc)
	lr.emitPooled(st, out)
	return kept
}

func (lr *liveRun) runProbeVector(build, st *liveOpState, in *storage.Block, col int) int {
	sc := lr.getScratch()
	sel := sc.Sel[:0]
	if build != nil {
		// Probe under the build-side lock, mirroring the scalar path:
		// the scheduler never overlaps build and probe work orders (the
		// edge is pipeline-breaking), but the lock keeps the executor
		// safe under any interleaving.
		build.mu.Lock()
		sel = build.vhash.ProbeBatch(in.Vectors[col].Ints, sc.Sel)
		build.mu.Unlock()
	}
	sc.Sel = sel
	out := exec.Gather(lr.pool, in, sel)
	matched := len(sel)
	lr.putScratch(sc)
	lr.emitPooled(st, out)
	return matched
}

func (lr *liveRun) runSortVector(st *liveOpState, in *storage.Block, col int) int {
	sc := lr.getScratch()
	pairs := exec.BuildPairs(in.Vectors[col].Ints, sc.Pairs)
	sc.Pairs = pairs
	exec.SortPairs(pairs)
	sel := exec.PairsToSel(pairs, sc.Sel)
	sc.Sel = sel
	out := exec.Gather(lr.pool, in, sel)
	lr.putScratch(sc)
	lr.emitPooled(st, out)
	return in.NumRows()
}
