package engine

import (
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
)

// The vectorized work-order runners. Each one is the block-at-a-time
// counterpart of a scalar runner in live.go: the kernel dispatch
// (predicate kind, column type) happens once per block in
// internal/exec, row loops are tight typed scans over ints, floats, or
// dictionary codes, intermediate row sets live in reusable selection
// vectors, and materialized outputs are gathered into blocks recycled
// through the run's BlockPool. Two block-level optimizations layer on
// top:
//
//   - Fusion: a Select whose single consumer is a blocking operator
//     that only reads its key column (Aggregate/Distinct/Window, or a
//     BuildHash nothing probes through — see fuseParent) gathers just
//     that column, skipping the wide materialization entirely.
//   - Morsels: large filters, probes, and sorts split into row-range
//     morsels over the shared selection vector when idle workers exist
//     (see live_morsel.go), stitched back in row order.
//
// Both paths keep a closure-free serial fallback so the common unsplit
// work order allocates nothing.

// emitPooled appends a pool-drawn output block to the operator's output
// list and records it for recycling at query completion.
func (lr *liveRun) emitPooled(st *liveOpState, out *storage.Block) {
	st.mu.Lock()
	st.outputs = append(st.outputs, out)
	st.pooled = append(st.pooled, out)
	st.mu.Unlock()
}

// mainChild returns the child whose outputs op draws its input blocks
// from (the last edge — see inputBlock), nil for leaves.
func mainChild(op *plan.Operator) *plan.Operator {
	ch := op.Children()
	if len(ch) == 0 {
		return nil
	}
	return ch[len(ch)-1].Child
}

// fuseParent decides whether a Select's projection can fuse into its
// consumer: the select then emits only the consumer's key column
// instead of materializing every column of the kept rows. Safe exactly
// when the select has one parent, that parent draws its main input
// from the select, and the parent never re-exposes the select's rows
// downstream:
//
//   - Aggregate/Distinct/Window consume blocks into aggregate state and
//     emit nothing, so nobody else ever reads the slim block.
//   - BuildHash appends its input to its outputs, which a sibling
//     operator could draw as ITS main input (inputBlock reads the last
//     child's outputs — probes often list the build last). Fusing is
//     only safe when no grandparent draws its main input from the
//     build.
func (lr *liveRun) fuseParent(op *plan.Operator) *plan.Operator {
	parents := op.Parents()
	if len(parents) != 1 {
		return nil
	}
	p := parents[0].Parent
	if mainChild(p) != op {
		return nil
	}
	switch p.Type {
	case plan.Aggregate, plan.Distinct, plan.Window:
		return p
	case plan.BuildHash:
		for _, e := range p.Parents() {
			if mainChild(e.Parent) == p {
				return nil
			}
		}
		return p
	}
	return nil
}

func (lr *liveRun) runSelectVector(q *QueryState, op *plan.Operator, pred plan.Predicate, col int, st *liveOpState, in *storage.Block) int {
	n := in.NumRows()
	sc := lr.getScratch()
	sel := exec.GrowSel(sc.Sel, n)
	sc.Sel = sel
	var kept []int
	if lr.splitParts(n) > 1 {
		var counts [maxMorselParts]int
		par := lr.runMorsels(n, func(p, lo, hi int) {
			counts[p] = len(exec.FilterRange(pred, &in.Vectors[col], lo, hi, sel[lo:hi]))
		})
		lr.notePar(q, op, par)
		kept = compactSel(sel, &counts, par, n)
	} else {
		kept = exec.FilterRange(pred, &in.Vectors[col], 0, n, sel)
	}
	var out *storage.Block
	if fp := lr.fuseParent(op); fp != nil && lr.live != nil {
		if kcol := keyColumn(fp, in); kcol >= 0 {
			// Fused select→consumer: gather only the consumer's key
			// column into a slim single-column block.
			schema := lr.live.fusedSchema(in.Schema, kcol)
			out = exec.GatherFused(lr.pool, in, schema, kcol, kept)
		}
	}
	if out == nil {
		out = lr.gatherAll(in, kept)
	}
	lr.putScratch(sc)
	lr.emitPooled(st, out)
	return len(kept)
}

// gatherAll materializes the selected rows of every column into a
// pooled block, splitting the copy across morsels when the selection is
// large (each morsel writes a disjoint output row range).
func (lr *liveRun) gatherAll(in *storage.Block, sel []int) *storage.Block {
	k := len(sel)
	out := lr.pool.GetLike(in, in.Schema, nil, k)
	out.Header.BlockID = in.Header.BlockID
	out.Header.Relation = in.Header.Relation
	if lr.splitParts(k) > 1 {
		lr.runMorsels(k, func(_, lo, hi int) {
			exec.GatherRange(out, in, nil, sel, lo, hi)
		})
	} else {
		exec.GatherRange(out, in, nil, sel, 0, k)
	}
	return out
}

func (lr *liveRun) runProbeVector(q *QueryState, op *plan.Operator, build, st *liveOpState, in *storage.Block, col int) int {
	n := in.NumRows()
	sc := lr.getScratch()
	keys, dict := keyVec(in, col)
	kept := sc.Sel[:0]
	if build != nil {
		// Probe under the build-side lock, mirroring the scalar path:
		// the scheduler never overlaps build and probe work orders (the
		// edge is pipeline-breaking), but the lock keeps the executor
		// safe under any interleaving.
		build.mu.Lock()
		tbl := build.vhash
		switch {
		case tbl == nil:
			// No table built (e.g. build side drew only empty blocks).
		case dict != nil || tbl.Dict() != nil:
			// String-keyed join: codes compare directly when both sides
			// share a dictionary, translate through the build dictionary
			// otherwise; a dict/int representation mismatch matches
			// nothing (ProbeDict handles all three).
			kept = tbl.ProbeDict(dict, keys, sc)
		case lr.splitParts(n) > 1:
			sel := exec.GrowSel(sc.Sel, n)
			sc.Sel = sel
			var counts [maxMorselParts]int
			par := lr.runMorsels(n, func(p, lo, hi int) {
				counts[p] = len(tbl.ProbeRange(keys, lo, hi, sel[lo:hi]))
			})
			lr.notePar(q, op, par)
			kept = compactSel(sel, &counts, par, n)
		default:
			// Radix-partitioned probe: scatter keys into cache-sized
			// partitions, probe each partition's table run, re-emit in
			// row order (falls back to the inline probe on small blocks).
			kept = tbl.ProbeBatchPartitioned(keys, sc)
		}
		build.mu.Unlock()
	}
	out := lr.gatherAll(in, kept)
	matched := len(kept)
	lr.putScratch(sc)
	lr.emitPooled(st, out)
	return matched
}

func (lr *liveRun) runSortVector(q *QueryState, op *plan.Operator, st *liveOpState, in *storage.Block, keys []int64) int {
	n := in.NumRows()
	sc := lr.getScratch()
	pairs := exec.BuildPairs(keys, sc.Pairs)
	sc.Pairs = pairs
	if lr.splitParts(n) > 1 {
		// Morsel sort: radix-sort disjoint runs concurrently, then merge.
		// The radix passes are stable and merging compares (key, row), so
		// the output is the same (key, row)-ordered permutation the
		// unsplit sort produces, for any morsel count.
		var bounds [maxMorselParts + 1]int
		par := lr.runMorsels(n, func(p, lo, hi int) {
			msc := lr.getScratch()
			msc.Pairs2 = exec.SortPairsScratch(pairs[lo:hi], msc.Pairs2)
			lr.putScratch(msc)
		})
		lr.notePar(q, op, par)
		if par > 1 {
			for p := 0; p <= par; p++ {
				bounds[p], _ = morselSpan(p, par, n)
			}
			sc.Pairs2 = exec.MergeRuns(pairs, bounds[:par+1], sc.Pairs2)
		}
	} else {
		sc.Pairs2 = exec.SortPairsScratch(pairs, sc.Pairs2)
	}
	sel := exec.PairsToSel(pairs, sc.Sel)
	sc.Sel = sel
	out := lr.gatherAll(in, sel)
	lr.putScratch(sc)
	lr.emitPooled(st, out)
	return n
}
