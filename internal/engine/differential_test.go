package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Differential tests: the retained scalar path and the vectorized
// kernel path must produce identical result blocks for every operator,
// across all three column types and every predicate kind. Select,
// probe, and sort compare exact row order (both paths are
// order-preserving; sort breaks key ties by row index on both paths);
// aggregate+finalize compares the group map, since finalize emits
// groups in state-iteration order.

// newDiffRun builds a bare liveRun on the given path with states wired
// for one query over plan p.
func newDiffRun(scalar bool, p *plan.Plan) (*liveRun, []*liveOpState) {
	lr := &liveRun{
		scalar: scalar,
		pool:   exec.NewBlockPool(),
		states: make(map[int][]*liveOpState),
	}
	sts := make([]*liveOpState, len(p.Ops))
	for i := range sts {
		sts[i] = &liveOpState{}
	}
	lr.states[0] = sts
	return lr, sts
}

// diffBlock generates one random mixed-type block: an int64 key column
// with duplicates and gaps, a float column, and a string column.
func diffBlock(rng *rand.Rand, rows int) *storage.Block {
	schema := storage.MustSchema(
		storage.Column{Name: "key", Type: storage.Int64Col},
		storage.Column{Name: "val", Type: storage.Float64Col},
		storage.Column{Name: "tag", Type: storage.StringCol},
	)
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	strs := make([]string, rows)
	for i := 0; i < rows; i++ {
		// Sparse key space: duplicates are common, many keys absent.
		ints[i] = int64(rng.Intn(40)) * 3
		floats[i] = rng.Float64() * 100
		strs[i] = fmt.Sprintf("v%d", rng.Intn(6))
	}
	return &storage.Block{
		Header:  storage.BlockHeader{BlockID: rng.Intn(100), Relation: "diff", Rows: rows},
		Schema:  schema,
		Vectors: []storage.ColumnVector{{Ints: ints}, {Floats: floats}, {Strings: strs}},
	}
}

// requireBlocksEqual fails the test unless a and b hold identical rows
// in identical order (schema compared structurally, not by pointer).
func requireBlocksEqual(t *testing.T, label string, a, b *storage.Block) {
	t.Helper()
	if a == nil || b == nil {
		if a != b {
			t.Fatalf("%s: one block nil (%v vs %v)", label, a, b)
		}
		return
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: %d rows vs %d rows", label, a.NumRows(), b.NumRows())
	}
	if a.Schema.NumColumns() != b.Schema.NumColumns() {
		t.Fatalf("%s: %d cols vs %d cols", label, a.Schema.NumColumns(), b.Schema.NumColumns())
	}
	for ci, col := range a.Schema.Columns {
		if b.Schema.Columns[ci].Type != col.Type {
			t.Fatalf("%s: column %d type mismatch", label, ci)
		}
		av, bv := &a.Vectors[ci], &b.Vectors[ci]
		for r := 0; r < a.NumRows(); r++ {
			switch col.Type {
			case storage.Int64Col:
				if av.Ints[r] != bv.Ints[r] {
					t.Fatalf("%s: col %d row %d: %d vs %d", label, ci, r, av.Ints[r], bv.Ints[r])
				}
			case storage.Float64Col:
				if av.Floats[r] != bv.Floats[r] {
					t.Fatalf("%s: col %d row %d: %v vs %v", label, ci, r, av.Floats[r], bv.Floats[r])
				}
			case storage.StringCol:
				if as, bs := stringAt(av, r), stringAt(bv, r); as != bs {
					t.Fatalf("%s: col %d row %d: %q vs %q", label, ci, r, as, bs)
				}
			}
		}
	}
}

// stringAt reads row r of a string column in either representation, so
// block comparisons are indifferent to dictionary coding.
func stringAt(v *storage.ColumnVector, r int) string {
	if v.Strings != nil {
		return v.Strings[r]
	}
	return v.Dict.Value(v.Codes[r])
}

// diffDict covers every tag value diffBlock emits; sharing one instance
// across blocks mirrors the storage layer's per-relation dictionary.
var diffDict = storage.NewDictionary([]string{"v0", "v1", "v2", "v3", "v4", "v5"})

// encodeTagWith rewrites a diffBlock's tag column to dictionary codes
// under the given dictionary, in place.
func encodeTagWith(b *storage.Block, dict *storage.Dictionary) *storage.Block {
	v := &b.Vectors[2]
	codes := make([]int64, len(v.Strings))
	for i, s := range v.Strings {
		c, ok := dict.Code(s)
		if !ok {
			panic("encodeTagWith: tag value missing from dictionary")
		}
		codes[i] = c
	}
	v.Codes, v.Dict, v.Strings = codes, dict, nil
	return b
}

// lastOutput pops the most recent output of an op state.
func lastOutput(st *liveOpState) *storage.Block {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.outputs) == 0 {
		return nil
	}
	return st.outputs[len(st.outputs)-1]
}

// diffPredicates enumerates every predicate kind over every column
// type, plus the fallback cases (no predicate, missing column).
func diffPredicates() []plan.Predicate {
	return []plan.Predicate{
		{Kind: plan.PredIntLess, Column: "key", Operand: 60},
		{Kind: plan.PredIntGreaterEq, Column: "key", Operand: 45},
		{Kind: plan.PredIntEq, Column: "key", Operand: 39},
		{Kind: plan.PredFloatLess, Column: "val", FOperand: 50},
		{Kind: plan.PredStringEq, Column: "tag", SOperand: "v3"},
		{Kind: plan.PredNone}, // selectivity fallback
		{Kind: plan.PredIntLess, Column: "nosuch", Operand: 10},    // missing column fallback
		{Kind: plan.PredIntLess, Column: "val", Operand: 10},       // type-mismatched column
		{Kind: plan.PredStringEq, Column: "key", SOperand: "v1"},   // string pred on int column
		{Kind: plan.PredIntEq, Column: "key", Operand: 1 << 40},    // matches nothing
		{Kind: plan.PredIntGreaterEq, Column: "key", Operand: -10}, // matches everything
	}
}

func TestDifferentialSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for pi, pred := range diffPredicates() {
		for _, rows := range []int{0, 1, 257, 1000} {
			in := diffBlock(rng, rows)
			op := &plan.Operator{Type: plan.Select, Pred: pred, Selectivity: 0.4, Columns: []string{"key"}}
			p := singleOpPlan(op)
			sLR, sSts := newDiffRun(true, p)
			vLR, vSts := newDiffRun(false, p)
			sKept := sLR.runSelect(nil, op, sSts[op.ID], in)
			vKept := vLR.runSelect(nil, op, vSts[op.ID], in)
			label := fmt.Sprintf("select pred#%d rows=%d", pi, rows)
			if sKept != vKept {
				t.Fatalf("%s: scalar kept %d, vector kept %d", label, sKept, vKept)
			}
			requireBlocksEqual(t, label, lastOutput(sSts[op.ID]), lastOutput(vSts[op.ID]))
		}
	}
}

// singleOpPlan wraps one operator in a minimal valid plan.
func singleOpPlan(op *plan.Operator) *plan.Plan {
	b := plan.NewBuilder("diff")
	b.Add(op)
	return b.MustBuild()
}

// joinDiffPlan builds scan -> build -> probe and returns (plan, build
// op, probe op).
func joinDiffPlan() (*plan.Plan, *plan.Operator, *plan.Operator) {
	b := plan.NewBuilder("diff-join")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	build := b.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
	b.ConnectAuto(scan, build)
	probe := b.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
	b.Connect(build, probe, false)
	return b.MustBuild(), build, probe
}

func TestDifferentialBuildProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for round := 0; round < 20; round++ {
		p, buildOp, probeOp := joinDiffPlan()
		sLR, sSts := newDiffRun(true, p)
		vLR, vSts := newDiffRun(false, p)
		q := newQueryState(0, p, 0)

		// Build from several blocks; the probe side shares only part of
		// the key space (diffBlock keys are multiples of 3 in [0,120)).
		for b := 0; b < 1+rng.Intn(3); b++ {
			blk := diffBlock(rng, rng.Intn(400))
			sRows := sLR.runBuild(buildOp, sSts[buildOp.ID], blk)
			vRows := vLR.runBuild(buildOp, vSts[buildOp.ID], blk)
			if sRows != vRows {
				t.Fatalf("round %d: build returned %d vs %d", round, sRows, vRows)
			}
		}
		for b := 0; b < 2; b++ {
			probeBlk := diffBlock(rng, rng.Intn(400))
			// Inject keys guaranteed absent from the build side.
			for i := range probeBlk.Vectors[0].Ints {
				if rng.Intn(4) == 0 {
					probeBlk.Vectors[0].Ints[i] = int64(1000 + rng.Intn(50))
				}
			}
			sm := sLR.runProbe(q, probeOp, sSts[probeOp.ID], probeBlk)
			vm := vLR.runProbe(q, probeOp, vSts[probeOp.ID], probeBlk)
			if sm != vm {
				t.Fatalf("round %d: probe matched %d vs %d", round, sm, vm)
			}
			requireBlocksEqual(t, fmt.Sprintf("probe round %d", round),
				lastOutput(sSts[probeOp.ID]), lastOutput(vSts[probeOp.ID]))
		}
	}
}

// aggDiffPlan builds scan -> aggregate -> finalize.
func aggDiffPlan() (*plan.Plan, *plan.Operator, *plan.Operator) {
	b := plan.NewBuilder("diff-agg")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	agg := b.Add(&plan.Operator{Type: plan.Aggregate, Columns: []string{"key"}})
	b.ConnectAuto(scan, agg)
	fin := b.Add(&plan.Operator{Type: plan.FinalizeAggregate})
	b.ConnectAuto(agg, fin)
	return b.MustBuild(), agg, fin
}

// groupsOf reads a finalize output block into a key->value map.
func groupsOf(t *testing.T, b *storage.Block) map[int64]float64 {
	t.Helper()
	if b == nil {
		t.Fatal("no finalize output")
	}
	m := make(map[int64]float64, b.NumRows())
	for i := 0; i < b.NumRows(); i++ {
		m[b.Vectors[0].Ints[i]] = b.Vectors[1].Floats[i]
	}
	return m
}

func TestDifferentialAggregateFinalize(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for round := 0; round < 20; round++ {
		p, aggOp, finOp := aggDiffPlan()
		sLR, sSts := newDiffRun(true, p)
		vLR, vSts := newDiffRun(false, p)
		q := newQueryState(0, p, 0)
		for b := 0; b < 1+rng.Intn(4); b++ {
			blk := diffBlock(rng, rng.Intn(500))
			sLR.runAggregate(aggOp, sSts[aggOp.ID], blk)
			vLR.runAggregate(aggOp, vSts[aggOp.ID], blk)
		}
		sG := sLR.runFinalize(q, finOp, sSts[finOp.ID])
		vG := vLR.runFinalize(q, finOp, vSts[finOp.ID])
		if sG != vG {
			t.Fatalf("round %d: finalize produced %d vs %d groups", round, sG, vG)
		}
		sM := groupsOf(t, lastOutput(sSts[finOp.ID]))
		vM := groupsOf(t, lastOutput(vSts[finOp.ID]))
		if len(sM) != len(vM) {
			t.Fatalf("round %d: %d vs %d groups", round, len(sM), len(vM))
		}
		for k, v := range sM {
			if vM[k] != v {
				t.Fatalf("round %d: group %d = %v scalar, %v vector", round, k, v, vM[k])
			}
		}
	}
}

func TestDifferentialSort(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	op := &plan.Operator{Type: plan.Sort, Columns: []string{"key"}}
	p := singleOpPlan(op)
	for _, rows := range []int{0, 1, 2, 100, 1000} {
		in := diffBlock(rng, rows)
		sLR, sSts := newDiffRun(true, p)
		vLR, vSts := newDiffRun(false, p)
		sLR.runSort(nil, op, sSts[op.ID], in)
		vLR.runSort(nil, op, vSts[op.ID], in)
		// Exact order: duplicate keys are broken by row index on both
		// paths, so the full permutation must agree.
		requireBlocksEqual(t, fmt.Sprintf("sort rows=%d", rows),
			lastOutput(sSts[op.ID]), lastOutput(vSts[op.ID]))
	}
}

// TestDifferentialFuzz drives randomized blocks through every kernel on
// both paths in one go: random sizes (including empty), duplicate and
// missing join keys, every predicate kind, mixed column types.
func TestDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	preds := diffPredicates()
	for round := 0; round < 60; round++ {
		rows := rng.Intn(600)
		if rng.Intn(10) == 0 {
			rows = 0
		}
		in := diffBlock(rng, rows)

		pred := preds[rng.Intn(len(preds))]
		if pred.Kind == plan.PredIntLess && rng.Intn(2) == 0 {
			pred.Operand = int64(rng.Intn(140))
		}
		selOp := &plan.Operator{Type: plan.Select, Pred: pred, Selectivity: rng.Float64(), Columns: []string{"key"}}
		selPlan := singleOpPlan(selOp)
		sLR, sSts := newDiffRun(true, selPlan)
		vLR, vSts := newDiffRun(false, selPlan)
		if sk, vk := sLR.runSelect(nil, selOp, sSts[0], in), vLR.runSelect(nil, selOp, vSts[0], in); sk != vk {
			t.Fatalf("round %d: select kept %d vs %d", round, sk, vk)
		}
		requireBlocksEqual(t, fmt.Sprintf("fuzz select %d", round), lastOutput(sSts[0]), lastOutput(vSts[0]))

		jp, buildOp, probeOp := joinDiffPlan()
		sJ, sJSts := newDiffRun(true, jp)
		vJ, vJSts := newDiffRun(false, jp)
		jq := newQueryState(0, jp, 0)
		buildBlk := diffBlock(rng, rng.Intn(300))
		sJ.runBuild(buildOp, sJSts[buildOp.ID], buildBlk)
		vJ.runBuild(buildOp, vJSts[buildOp.ID], buildBlk)
		if sm, vm := sJ.runProbe(jq, probeOp, sJSts[probeOp.ID], in), vJ.runProbe(jq, probeOp, vJSts[probeOp.ID], in); sm != vm {
			t.Fatalf("round %d: probe matched %d vs %d", round, sm, vm)
		}
		requireBlocksEqual(t, fmt.Sprintf("fuzz probe %d", round),
			lastOutput(sJSts[probeOp.ID]), lastOutput(vJSts[probeOp.ID]))

		ap, aggOp, finOp := aggDiffPlan()
		sA, sASts := newDiffRun(true, ap)
		vA, vASts := newDiffRun(false, ap)
		aq := newQueryState(0, ap, 0)
		sA.runAggregate(aggOp, sASts[aggOp.ID], in)
		vA.runAggregate(aggOp, vASts[aggOp.ID], in)
		sA.runFinalize(aq, finOp, sASts[finOp.ID])
		vA.runFinalize(aq, finOp, vASts[finOp.ID])
		sM := groupsOf(t, lastOutput(sASts[finOp.ID]))
		vM := groupsOf(t, lastOutput(vASts[finOp.ID]))
		if len(sM) != len(vM) {
			t.Fatalf("round %d: aggregate %d vs %d groups", round, len(sM), len(vM))
		}
		for k, v := range sM {
			if vM[k] != v {
				t.Fatalf("round %d: group %d = %v vs %v", round, k, v, vM[k])
			}
		}

		sortOp := &plan.Operator{Type: plan.Sort, Columns: []string{"key"}}
		sortPlan := singleOpPlan(sortOp)
		sS, sSSts := newDiffRun(true, sortPlan)
		vS, vSSts := newDiffRun(false, sortPlan)
		sS.runSort(nil, sortOp, sSSts[0], in)
		vS.runSort(nil, sortOp, vSSts[0], in)
		requireBlocksEqual(t, fmt.Sprintf("fuzz sort %d", round), lastOutput(sSSts[0]), lastOutput(vSSts[0]))
	}
}

// TestProbePrefersBuildHashChild is the regression test for the
// build-child selection bug: a probe whose child list carries another
// blocking child (a probe-side Sort) BEFORE the BuildHash must still
// probe the BuildHash's table. The old loop broke on the first blocking
// child and silently probed an empty state, matching nothing.
func TestProbePrefersBuildHashChild(t *testing.T) {
	for _, mode := range []string{"scalar", "vector"} {
		t.Run(mode, func(t *testing.T) {
			b := plan.NewBuilder("multi-child-probe")
			scan1 := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"probe"}})
			sortOp := b.Add(&plan.Operator{Type: plan.Sort, Columns: []string{"key"}})
			b.ConnectAuto(scan1, sortOp)
			scan2 := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"build"}})
			buildOp := b.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
			b.ConnectAuto(scan2, buildOp)
			probeOp := b.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
			// The sorted probe side connects first, so the Sort (blocking,
			// not a BuildHash) precedes the BuildHash in Children().
			b.Connect(sortOp, probeOp, false)
			b.Connect(buildOp, probeOp, false)
			p := b.MustBuild()

			if got := p.Ops[probeOp.ID].Children()[0].Child.Type; got != plan.Sort {
				t.Fatalf("test setup: first probe child is %v, want Sort", got)
			}

			lr, sts := newDiffRun(mode == "scalar", p)
			q := newQueryState(0, p, 0)
			keys := []int64{1, 2, 3, 4, 5, 6, 7, 8}
			schema := storage.MustSchema(storage.Column{Name: "key", Type: storage.Int64Col})
			blk := &storage.Block{
				Header:  storage.BlockHeader{Relation: "build", Rows: len(keys)},
				Schema:  schema,
				Vectors: []storage.ColumnVector{{Ints: keys}},
			}
			lr.runBuild(buildOp, sts[buildOp.ID], blk)
			// Every probe key was built, so every row must match.
			if matched := lr.runProbe(q, probeOp, sts[probeOp.ID], blk); matched != len(keys) {
				t.Fatalf("probe matched %d of %d rows: build-side child selection picked the wrong child", matched, len(keys))
			}
		})
	}
}

// --- Wave-2 differentials: dictionary strings, radix probe, morsels,
// fusion. Same contract as above: scalar and vector paths must agree
// exactly, for any morsel count.

func TestDifferentialSelectDictString(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for _, operand := range []string{"v3", "v0", "zzz"} {
		for _, rows := range []int{0, 1, 257, 1000} {
			in := encodeTagWith(diffBlock(rng, rows), diffDict)
			op := &plan.Operator{Type: plan.Select, Pred: plan.Predicate{Kind: plan.PredStringEq, Column: "tag", SOperand: operand}}
			p := singleOpPlan(op)
			sLR, sSts := newDiffRun(true, p)
			vLR, vSts := newDiffRun(false, p)
			sKept := sLR.runSelect(nil, op, sSts[op.ID], in)
			vKept := vLR.runSelect(nil, op, vSts[op.ID], in)
			label := fmt.Sprintf("dict select %q rows=%d", operand, rows)
			if sKept != vKept {
				t.Fatalf("%s: scalar kept %d, vector kept %d", label, sKept, vKept)
			}
			requireBlocksEqual(t, label, lastOutput(sSts[op.ID]), lastOutput(vSts[op.ID]))
		}
	}
}

func TestDifferentialSortDictKey(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	op := &plan.Operator{Type: plan.Sort, Columns: []string{"tag"}}
	p := singleOpPlan(op)
	for _, rows := range []int{0, 1, 2, 100, 1000} {
		in := encodeTagWith(diffBlock(rng, rows), diffDict)
		sLR, sSts := newDiffRun(true, p)
		vLR, vSts := newDiffRun(false, p)
		sLR.runSort(nil, op, sSts[op.ID], in)
		vLR.runSort(nil, op, vSts[op.ID], in)
		// The scalar path compares decoded strings, the vector path sorts
		// codes; the dictionary is sorted, so the exact permutation
		// (including row-index tie-breaks) must agree.
		requireBlocksEqual(t, fmt.Sprintf("dict sort rows=%d", rows),
			lastOutput(sSts[op.ID]), lastOutput(vSts[op.ID]))
	}
}

// dictJoinPlan is joinDiffPlan keyed on the string tag column.
func dictJoinPlan() (*plan.Plan, *plan.Operator, *plan.Operator) {
	b := plan.NewBuilder("diff-join-dict")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	build := b.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"tag"}})
	b.ConnectAuto(scan, build)
	probe := b.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"tag"}})
	b.Connect(build, probe, false)
	return b.MustBuild(), build, probe
}

func TestDifferentialBuildProbeDictKey(t *testing.T) {
	// probeDict deliberately assigns different codes to the same tag
	// values (extra entries shift every shared value's code), so a probe
	// comparing raw codes across dictionaries would match the wrong rows.
	probeDict := storage.NewDictionary([]string{"a0", "v0", "v1", "v2", "v3", "v4", "v5", "zz"})
	rng := rand.New(rand.NewSource(707))
	for round := 0; round < 10; round++ {
		for _, pd := range []*storage.Dictionary{diffDict, probeDict} {
			p, buildOp, probeOp := dictJoinPlan()
			sLR, sSts := newDiffRun(true, p)
			vLR, vSts := newDiffRun(false, p)
			q := newQueryState(0, p, 0)
			for b := 0; b < 1+rng.Intn(3); b++ {
				blk := encodeTagWith(diffBlock(rng, rng.Intn(400)), diffDict)
				// Drop some tag values from the build side so probes miss.
				for i := range blk.Vectors[2].Codes {
					if blk.Vectors[2].Codes[i] >= 4 {
						blk.Vectors[2].Codes[i] = 0
					}
				}
				sLR.runBuild(buildOp, sSts[buildOp.ID], blk)
				vLR.runBuild(buildOp, vSts[buildOp.ID], blk)
			}
			probeBlk := encodeTagWith(diffBlock(rng, rng.Intn(400)), pd)
			sm := sLR.runProbe(q, probeOp, sSts[probeOp.ID], probeBlk)
			vm := vLR.runProbe(q, probeOp, vSts[probeOp.ID], probeBlk)
			label := fmt.Sprintf("dict probe round %d shared=%v", round, pd == diffDict)
			if sm != vm {
				t.Fatalf("%s: scalar matched %d, vector matched %d", label, sm, vm)
			}
			requireBlocksEqual(t, label, lastOutput(sSts[probeOp.ID]), lastOutput(vSts[probeOp.ID]))
		}
	}
}

// TestDifferentialProbePartitioned pushes the probe batch past
// partitionedProbeMin so the vector path takes the radix-partitioned
// probe, and compares it against the scalar map probe.
func TestDifferentialProbePartitioned(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	p, buildOp, probeOp := joinDiffPlan()
	sLR, sSts := newDiffRun(true, p)
	vLR, vSts := newDiffRun(false, p)
	q := newQueryState(0, p, 0)
	buildBlk := diffBlock(rng, 2000)
	sLR.runBuild(buildOp, sSts[buildOp.ID], buildBlk)
	vLR.runBuild(buildOp, vSts[buildOp.ID], buildBlk)
	probeBlk := diffBlock(rng, 6000)
	for i := range probeBlk.Vectors[0].Ints {
		if rng.Intn(3) == 0 {
			probeBlk.Vectors[0].Ints[i] = int64(1000 + rng.Intn(100))
		}
	}
	sm := sLR.runProbe(q, probeOp, sSts[probeOp.ID], probeBlk)
	vm := vLR.runProbe(q, probeOp, vSts[probeOp.ID], probeBlk)
	if sm != vm {
		t.Fatalf("partitioned probe: scalar matched %d, vector matched %d", sm, vm)
	}
	requireBlocksEqual(t, "partitioned probe", lastOutput(sSts[probeOp.ID]), lastOutput(vSts[probeOp.ID]))
}

// newMorselRun builds a bare vector-path liveRun with morsel splitting
// forced on: a bound of morsels and a gate holding helpers tokens.
func newMorselRun(p *plan.Plan, morsels, helpers int) (*liveRun, []*liveOpState) {
	lr, sts := newDiffRun(false, p)
	lr.morsels = morsels
	lr.morselGate = make(chan struct{}, helpers)
	for i := 0; i < helpers; i++ {
		lr.morselGate <- struct{}{}
	}
	lr.morselSplits = &metrics.Counter{}
	lr.morselHelpers = &metrics.Counter{}
	return lr, sts
}

// TestDifferentialMorsels runs large select, probe, and sort work
// orders split across concurrent morsels and requires bit-identical
// output to the scalar path — including sort tie-breaks across morsel
// boundaries (diffBlock has 40 distinct keys over 40000 rows, so every
// key's run of duplicates spans several morsel ranges).
func TestDifferentialMorsels(t *testing.T) {
	const rows = 40000
	rng := rand.New(rand.NewSource(909))
	in := diffBlock(rng, rows)

	selOp := &plan.Operator{Type: plan.Select, Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "key", Operand: 60}}
	selPlan := singleOpPlan(selOp)
	sLR, sSts := newDiffRun(true, selPlan)
	mLR, mSts := newMorselRun(selPlan, 4, 3)
	if sk, mk := sLR.runSelect(nil, selOp, sSts[0], in), mLR.runSelect(nil, selOp, mSts[0], in); sk != mk {
		t.Fatalf("morsel select kept %d, scalar kept %d", mk, sk)
	}
	requireBlocksEqual(t, "morsel select", lastOutput(sSts[0]), lastOutput(mSts[0]))
	if mLR.morselSplits.Value() == 0 {
		t.Fatal("morsel select did not split: the differential exercised nothing")
	}

	jp, buildOp, probeOp := joinDiffPlan()
	sJ, sJSts := newDiffRun(true, jp)
	mJ, mJSts := newMorselRun(jp, 4, 3)
	jq := newQueryState(0, jp, 0)
	buildBlk := diffBlock(rng, 1500)
	sJ.runBuild(buildOp, sJSts[buildOp.ID], buildBlk)
	mJ.runBuild(buildOp, mJSts[buildOp.ID], buildBlk)
	if sm, mm := sJ.runProbe(jq, probeOp, sJSts[probeOp.ID], in), mJ.runProbe(jq, probeOp, mJSts[probeOp.ID], in); sm != mm {
		t.Fatalf("morsel probe matched %d, scalar matched %d", mm, sm)
	}
	requireBlocksEqual(t, "morsel probe", lastOutput(sJSts[probeOp.ID]), lastOutput(mJSts[probeOp.ID]))

	sortOp := &plan.Operator{Type: plan.Sort, Columns: []string{"key"}}
	sortPlan := singleOpPlan(sortOp)
	sS, sSSts := newDiffRun(true, sortPlan)
	for _, helpers := range []int{1, 2, 3} {
		mS, mSSts := newMorselRun(sortPlan, 4, helpers)
		sS.runSort(nil, sortOp, sSSts[0], in)
		mS.runSort(nil, sortOp, mSSts[0], in)
		requireBlocksEqual(t, fmt.Sprintf("morsel sort helpers=%d", helpers),
			lastOutput(sSSts[0]), lastOutput(mSSts[0]))
	}
}

// TestDifferentialFusedSelect pins the fusion decision and its
// semantics: a select feeding a sole Aggregate parent emits only the
// aggregate's key column, and the aggregate result over the slim
// blocks matches the scalar pipeline over full-width blocks. A select
// feeding a BuildHash whose probe draws its main input from the build
// must NOT fuse (the probe would read the slimmed block as its input).
func TestDifferentialFusedSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	in := diffBlock(rng, 2000)

	b := plan.NewBuilder("fused-agg")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	selOp := b.Add(&plan.Operator{Type: plan.Select, Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "key", Operand: 60}})
	b.ConnectAuto(scan, selOp)
	aggOp := b.Add(&plan.Operator{Type: plan.Aggregate, Columns: []string{"key"}})
	b.ConnectAuto(selOp, aggOp)
	finOp := b.Add(&plan.Operator{Type: plan.FinalizeAggregate})
	b.ConnectAuto(aggOp, finOp)
	p := b.MustBuild()

	sLR, sSts := newDiffRun(true, p)
	vLR, vSts := newDiffRun(false, p)
	// Fusion needs the engine's schema cache; wire a Live into the bare run.
	vLR.live = NewLive(nil, LiveConfig{Threads: 1})
	q := newQueryState(0, p, 0)

	sKept := sLR.runSelect(nil, selOp, sSts[selOp.ID], in)
	vKept := vLR.runSelect(nil, selOp, vSts[selOp.ID], in)
	if sKept != vKept {
		t.Fatalf("fused select kept %d, scalar kept %d", vKept, sKept)
	}
	slim := lastOutput(vSts[selOp.ID])
	if slim.Schema.NumColumns() != 1 {
		t.Fatalf("select feeding a sole aggregate emitted %d columns, want fused single column", slim.Schema.NumColumns())
	}
	sLR.runAggregate(aggOp, sSts[aggOp.ID], lastOutput(sSts[selOp.ID]))
	vLR.runAggregate(aggOp, vSts[aggOp.ID], slim)
	sLR.runFinalize(q, finOp, sSts[finOp.ID])
	vLR.runFinalize(q, finOp, vSts[finOp.ID])
	sM := groupsOf(t, lastOutput(sSts[finOp.ID]))
	vM := groupsOf(t, lastOutput(vSts[finOp.ID]))
	if len(sM) != len(vM) {
		t.Fatalf("fused pipeline: %d vs %d groups", len(vM), len(sM))
	}
	for k, v := range sM {
		if vM[k] != v {
			t.Fatalf("fused pipeline: group %d = %v vector, %v scalar", k, vM[k], v)
		}
	}

	// Unsafe shape: probe's main (last) child is the build, so the probe
	// would draw the select's slimmed block as its input. Must stay wide.
	b2 := plan.NewBuilder("unfusable-build")
	scan2 := b2.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	sel2 := b2.Add(&plan.Operator{Type: plan.Select, Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "key", Operand: 60}})
	b2.ConnectAuto(scan2, sel2)
	build2 := b2.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
	b2.ConnectAuto(sel2, build2)
	probe2 := b2.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
	b2.Connect(build2, probe2, false)
	p2 := b2.MustBuild()
	uLR, uSts := newDiffRun(false, p2)
	uLR.live = vLR.live
	uLR.runSelect(nil, sel2, uSts[sel2.ID], in)
	if got := lastOutput(uSts[sel2.ID]).Schema.NumColumns(); got != in.Schema.NumColumns() {
		t.Fatalf("select feeding a probed build emitted %d columns, want unfused %d", got, in.Schema.NumColumns())
	}

	// Safe build shape: the probe draws its main input elsewhere (the
	// build connects first), so the select→build edge may slim.
	b3 := plan.NewBuilder("fusable-build")
	scan3 := b3.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	sel3 := b3.Add(&plan.Operator{Type: plan.Select, Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "key", Operand: 60}})
	b3.ConnectAuto(scan3, sel3)
	build3 := b3.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
	b3.ConnectAuto(sel3, build3)
	scanP := b3.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"probe"}})
	probe3 := b3.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
	b3.Connect(build3, probe3, false)
	b3.ConnectAuto(scanP, probe3)
	p3 := b3.MustBuild()
	fLR, fSts := newDiffRun(false, p3)
	fLR.live = vLR.live
	fLR.runSelect(nil, sel3, fSts[sel3.ID], in)
	if got := lastOutput(fSts[sel3.ID]).Schema.NumColumns(); got != 1 {
		t.Fatalf("select feeding an un-probed build emitted %d columns, want fused single column", got)
	}
}
