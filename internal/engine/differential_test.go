package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Differential tests: the retained scalar path and the vectorized
// kernel path must produce identical result blocks for every operator,
// across all three column types and every predicate kind. Select,
// probe, and sort compare exact row order (both paths are
// order-preserving; sort breaks key ties by row index on both paths);
// aggregate+finalize compares the group map, since finalize emits
// groups in state-iteration order.

// newDiffRun builds a bare liveRun on the given path with states wired
// for one query over plan p.
func newDiffRun(scalar bool, p *plan.Plan) (*liveRun, []*liveOpState) {
	lr := &liveRun{
		scalar: scalar,
		pool:   exec.NewBlockPool(),
		states: make(map[int][]*liveOpState),
	}
	sts := make([]*liveOpState, len(p.Ops))
	for i := range sts {
		sts[i] = &liveOpState{}
	}
	lr.states[0] = sts
	return lr, sts
}

// diffBlock generates one random mixed-type block: an int64 key column
// with duplicates and gaps, a float column, and a string column.
func diffBlock(rng *rand.Rand, rows int) *storage.Block {
	schema := storage.MustSchema(
		storage.Column{Name: "key", Type: storage.Int64Col},
		storage.Column{Name: "val", Type: storage.Float64Col},
		storage.Column{Name: "tag", Type: storage.StringCol},
	)
	ints := make([]int64, rows)
	floats := make([]float64, rows)
	strs := make([]string, rows)
	for i := 0; i < rows; i++ {
		// Sparse key space: duplicates are common, many keys absent.
		ints[i] = int64(rng.Intn(40)) * 3
		floats[i] = rng.Float64() * 100
		strs[i] = fmt.Sprintf("v%d", rng.Intn(6))
	}
	return &storage.Block{
		Header:  storage.BlockHeader{BlockID: rng.Intn(100), Relation: "diff", Rows: rows},
		Schema:  schema,
		Vectors: []storage.ColumnVector{{Ints: ints}, {Floats: floats}, {Strings: strs}},
	}
}

// requireBlocksEqual fails the test unless a and b hold identical rows
// in identical order (schema compared structurally, not by pointer).
func requireBlocksEqual(t *testing.T, label string, a, b *storage.Block) {
	t.Helper()
	if a == nil || b == nil {
		if a != b {
			t.Fatalf("%s: one block nil (%v vs %v)", label, a, b)
		}
		return
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: %d rows vs %d rows", label, a.NumRows(), b.NumRows())
	}
	if a.Schema.NumColumns() != b.Schema.NumColumns() {
		t.Fatalf("%s: %d cols vs %d cols", label, a.Schema.NumColumns(), b.Schema.NumColumns())
	}
	for ci, col := range a.Schema.Columns {
		if b.Schema.Columns[ci].Type != col.Type {
			t.Fatalf("%s: column %d type mismatch", label, ci)
		}
		av, bv := &a.Vectors[ci], &b.Vectors[ci]
		for r := 0; r < a.NumRows(); r++ {
			switch col.Type {
			case storage.Int64Col:
				if av.Ints[r] != bv.Ints[r] {
					t.Fatalf("%s: col %d row %d: %d vs %d", label, ci, r, av.Ints[r], bv.Ints[r])
				}
			case storage.Float64Col:
				if av.Floats[r] != bv.Floats[r] {
					t.Fatalf("%s: col %d row %d: %v vs %v", label, ci, r, av.Floats[r], bv.Floats[r])
				}
			case storage.StringCol:
				if av.Strings[r] != bv.Strings[r] {
					t.Fatalf("%s: col %d row %d: %q vs %q", label, ci, r, av.Strings[r], bv.Strings[r])
				}
			}
		}
	}
}

// lastOutput pops the most recent output of an op state.
func lastOutput(st *liveOpState) *storage.Block {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.outputs) == 0 {
		return nil
	}
	return st.outputs[len(st.outputs)-1]
}

// diffPredicates enumerates every predicate kind over every column
// type, plus the fallback cases (no predicate, missing column).
func diffPredicates() []plan.Predicate {
	return []plan.Predicate{
		{Kind: plan.PredIntLess, Column: "key", Operand: 60},
		{Kind: plan.PredIntGreaterEq, Column: "key", Operand: 45},
		{Kind: plan.PredIntEq, Column: "key", Operand: 39},
		{Kind: plan.PredFloatLess, Column: "val", FOperand: 50},
		{Kind: plan.PredStringEq, Column: "tag", SOperand: "v3"},
		{Kind: plan.PredNone}, // selectivity fallback
		{Kind: plan.PredIntLess, Column: "nosuch", Operand: 10},    // missing column fallback
		{Kind: plan.PredIntLess, Column: "val", Operand: 10},       // type-mismatched column
		{Kind: plan.PredStringEq, Column: "key", SOperand: "v1"},   // string pred on int column
		{Kind: plan.PredIntEq, Column: "key", Operand: 1 << 40},    // matches nothing
		{Kind: plan.PredIntGreaterEq, Column: "key", Operand: -10}, // matches everything
	}
}

func TestDifferentialSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for pi, pred := range diffPredicates() {
		for _, rows := range []int{0, 1, 257, 1000} {
			in := diffBlock(rng, rows)
			op := &plan.Operator{Type: plan.Select, Pred: pred, Selectivity: 0.4, Columns: []string{"key"}}
			p := singleOpPlan(op)
			sLR, sSts := newDiffRun(true, p)
			vLR, vSts := newDiffRun(false, p)
			sKept := sLR.runSelect(op, sSts[op.ID], in)
			vKept := vLR.runSelect(op, vSts[op.ID], in)
			label := fmt.Sprintf("select pred#%d rows=%d", pi, rows)
			if sKept != vKept {
				t.Fatalf("%s: scalar kept %d, vector kept %d", label, sKept, vKept)
			}
			requireBlocksEqual(t, label, lastOutput(sSts[op.ID]), lastOutput(vSts[op.ID]))
		}
	}
}

// singleOpPlan wraps one operator in a minimal valid plan.
func singleOpPlan(op *plan.Operator) *plan.Plan {
	b := plan.NewBuilder("diff")
	b.Add(op)
	return b.MustBuild()
}

// joinDiffPlan builds scan -> build -> probe and returns (plan, build
// op, probe op).
func joinDiffPlan() (*plan.Plan, *plan.Operator, *plan.Operator) {
	b := plan.NewBuilder("diff-join")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	build := b.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
	b.ConnectAuto(scan, build)
	probe := b.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
	b.Connect(build, probe, false)
	return b.MustBuild(), build, probe
}

func TestDifferentialBuildProbe(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for round := 0; round < 20; round++ {
		p, buildOp, probeOp := joinDiffPlan()
		sLR, sSts := newDiffRun(true, p)
		vLR, vSts := newDiffRun(false, p)
		q := newQueryState(0, p, 0)

		// Build from several blocks; the probe side shares only part of
		// the key space (diffBlock keys are multiples of 3 in [0,120)).
		for b := 0; b < 1+rng.Intn(3); b++ {
			blk := diffBlock(rng, rng.Intn(400))
			sRows := sLR.runBuild(buildOp, sSts[buildOp.ID], blk)
			vRows := vLR.runBuild(buildOp, vSts[buildOp.ID], blk)
			if sRows != vRows {
				t.Fatalf("round %d: build returned %d vs %d", round, sRows, vRows)
			}
		}
		for b := 0; b < 2; b++ {
			probeBlk := diffBlock(rng, rng.Intn(400))
			// Inject keys guaranteed absent from the build side.
			for i := range probeBlk.Vectors[0].Ints {
				if rng.Intn(4) == 0 {
					probeBlk.Vectors[0].Ints[i] = int64(1000 + rng.Intn(50))
				}
			}
			sm := sLR.runProbe(q, probeOp, sSts[probeOp.ID], probeBlk)
			vm := vLR.runProbe(q, probeOp, vSts[probeOp.ID], probeBlk)
			if sm != vm {
				t.Fatalf("round %d: probe matched %d vs %d", round, sm, vm)
			}
			requireBlocksEqual(t, fmt.Sprintf("probe round %d", round),
				lastOutput(sSts[probeOp.ID]), lastOutput(vSts[probeOp.ID]))
		}
	}
}

// aggDiffPlan builds scan -> aggregate -> finalize.
func aggDiffPlan() (*plan.Plan, *plan.Operator, *plan.Operator) {
	b := plan.NewBuilder("diff-agg")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"diff"}})
	agg := b.Add(&plan.Operator{Type: plan.Aggregate, Columns: []string{"key"}})
	b.ConnectAuto(scan, agg)
	fin := b.Add(&plan.Operator{Type: plan.FinalizeAggregate})
	b.ConnectAuto(agg, fin)
	return b.MustBuild(), agg, fin
}

// groupsOf reads a finalize output block into a key->value map.
func groupsOf(t *testing.T, b *storage.Block) map[int64]float64 {
	t.Helper()
	if b == nil {
		t.Fatal("no finalize output")
	}
	m := make(map[int64]float64, b.NumRows())
	for i := 0; i < b.NumRows(); i++ {
		m[b.Vectors[0].Ints[i]] = b.Vectors[1].Floats[i]
	}
	return m
}

func TestDifferentialAggregateFinalize(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for round := 0; round < 20; round++ {
		p, aggOp, finOp := aggDiffPlan()
		sLR, sSts := newDiffRun(true, p)
		vLR, vSts := newDiffRun(false, p)
		q := newQueryState(0, p, 0)
		for b := 0; b < 1+rng.Intn(4); b++ {
			blk := diffBlock(rng, rng.Intn(500))
			sLR.runAggregate(aggOp, sSts[aggOp.ID], blk)
			vLR.runAggregate(aggOp, vSts[aggOp.ID], blk)
		}
		sG := sLR.runFinalize(q, finOp, sSts[finOp.ID])
		vG := vLR.runFinalize(q, finOp, vSts[finOp.ID])
		if sG != vG {
			t.Fatalf("round %d: finalize produced %d vs %d groups", round, sG, vG)
		}
		sM := groupsOf(t, lastOutput(sSts[finOp.ID]))
		vM := groupsOf(t, lastOutput(vSts[finOp.ID]))
		if len(sM) != len(vM) {
			t.Fatalf("round %d: %d vs %d groups", round, len(sM), len(vM))
		}
		for k, v := range sM {
			if vM[k] != v {
				t.Fatalf("round %d: group %d = %v scalar, %v vector", round, k, v, vM[k])
			}
		}
	}
}

func TestDifferentialSort(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	op := &plan.Operator{Type: plan.Sort, Columns: []string{"key"}}
	p := singleOpPlan(op)
	for _, rows := range []int{0, 1, 2, 100, 1000} {
		in := diffBlock(rng, rows)
		sLR, sSts := newDiffRun(true, p)
		vLR, vSts := newDiffRun(false, p)
		sLR.runSort(op, sSts[op.ID], in)
		vLR.runSort(op, vSts[op.ID], in)
		// Exact order: duplicate keys are broken by row index on both
		// paths, so the full permutation must agree.
		requireBlocksEqual(t, fmt.Sprintf("sort rows=%d", rows),
			lastOutput(sSts[op.ID]), lastOutput(vSts[op.ID]))
	}
}

// TestDifferentialFuzz drives randomized blocks through every kernel on
// both paths in one go: random sizes (including empty), duplicate and
// missing join keys, every predicate kind, mixed column types.
func TestDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	preds := diffPredicates()
	for round := 0; round < 60; round++ {
		rows := rng.Intn(600)
		if rng.Intn(10) == 0 {
			rows = 0
		}
		in := diffBlock(rng, rows)

		pred := preds[rng.Intn(len(preds))]
		if pred.Kind == plan.PredIntLess && rng.Intn(2) == 0 {
			pred.Operand = int64(rng.Intn(140))
		}
		selOp := &plan.Operator{Type: plan.Select, Pred: pred, Selectivity: rng.Float64(), Columns: []string{"key"}}
		selPlan := singleOpPlan(selOp)
		sLR, sSts := newDiffRun(true, selPlan)
		vLR, vSts := newDiffRun(false, selPlan)
		if sk, vk := sLR.runSelect(selOp, sSts[0], in), vLR.runSelect(selOp, vSts[0], in); sk != vk {
			t.Fatalf("round %d: select kept %d vs %d", round, sk, vk)
		}
		requireBlocksEqual(t, fmt.Sprintf("fuzz select %d", round), lastOutput(sSts[0]), lastOutput(vSts[0]))

		jp, buildOp, probeOp := joinDiffPlan()
		sJ, sJSts := newDiffRun(true, jp)
		vJ, vJSts := newDiffRun(false, jp)
		jq := newQueryState(0, jp, 0)
		buildBlk := diffBlock(rng, rng.Intn(300))
		sJ.runBuild(buildOp, sJSts[buildOp.ID], buildBlk)
		vJ.runBuild(buildOp, vJSts[buildOp.ID], buildBlk)
		if sm, vm := sJ.runProbe(jq, probeOp, sJSts[probeOp.ID], in), vJ.runProbe(jq, probeOp, vJSts[probeOp.ID], in); sm != vm {
			t.Fatalf("round %d: probe matched %d vs %d", round, sm, vm)
		}
		requireBlocksEqual(t, fmt.Sprintf("fuzz probe %d", round),
			lastOutput(sJSts[probeOp.ID]), lastOutput(vJSts[probeOp.ID]))

		ap, aggOp, finOp := aggDiffPlan()
		sA, sASts := newDiffRun(true, ap)
		vA, vASts := newDiffRun(false, ap)
		aq := newQueryState(0, ap, 0)
		sA.runAggregate(aggOp, sASts[aggOp.ID], in)
		vA.runAggregate(aggOp, vASts[aggOp.ID], in)
		sA.runFinalize(aq, finOp, sASts[finOp.ID])
		vA.runFinalize(aq, finOp, vASts[finOp.ID])
		sM := groupsOf(t, lastOutput(sASts[finOp.ID]))
		vM := groupsOf(t, lastOutput(vASts[finOp.ID]))
		if len(sM) != len(vM) {
			t.Fatalf("round %d: aggregate %d vs %d groups", round, len(sM), len(vM))
		}
		for k, v := range sM {
			if vM[k] != v {
				t.Fatalf("round %d: group %d = %v vs %v", round, k, v, vM[k])
			}
		}

		sortOp := &plan.Operator{Type: plan.Sort, Columns: []string{"key"}}
		sortPlan := singleOpPlan(sortOp)
		sS, sSSts := newDiffRun(true, sortPlan)
		vS, vSSts := newDiffRun(false, sortPlan)
		sS.runSort(sortOp, sSSts[0], in)
		vS.runSort(sortOp, vSSts[0], in)
		requireBlocksEqual(t, fmt.Sprintf("fuzz sort %d", round), lastOutput(sSSts[0]), lastOutput(vSSts[0]))
	}
}

// TestProbePrefersBuildHashChild is the regression test for the
// build-child selection bug: a probe whose child list carries another
// blocking child (a probe-side Sort) BEFORE the BuildHash must still
// probe the BuildHash's table. The old loop broke on the first blocking
// child and silently probed an empty state, matching nothing.
func TestProbePrefersBuildHashChild(t *testing.T) {
	for _, mode := range []string{"scalar", "vector"} {
		t.Run(mode, func(t *testing.T) {
			b := plan.NewBuilder("multi-child-probe")
			scan1 := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"probe"}})
			sortOp := b.Add(&plan.Operator{Type: plan.Sort, Columns: []string{"key"}})
			b.ConnectAuto(scan1, sortOp)
			scan2 := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"build"}})
			buildOp := b.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
			b.ConnectAuto(scan2, buildOp)
			probeOp := b.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
			// The sorted probe side connects first, so the Sort (blocking,
			// not a BuildHash) precedes the BuildHash in Children().
			b.Connect(sortOp, probeOp, false)
			b.Connect(buildOp, probeOp, false)
			p := b.MustBuild()

			if got := p.Ops[probeOp.ID].Children()[0].Child.Type; got != plan.Sort {
				t.Fatalf("test setup: first probe child is %v, want Sort", got)
			}

			lr, sts := newDiffRun(mode == "scalar", p)
			q := newQueryState(0, p, 0)
			keys := []int64{1, 2, 3, 4, 5, 6, 7, 8}
			schema := storage.MustSchema(storage.Column{Name: "key", Type: storage.Int64Col})
			blk := &storage.Block{
				Header:  storage.BlockHeader{Relation: "build", Rows: len(keys)},
				Schema:  schema,
				Vectors: []storage.ColumnVector{{Ints: keys}},
			}
			lr.runBuild(buildOp, sts[buildOp.ID], blk)
			// Every probe key was built, so every row must match.
			if matched := lr.runProbe(q, probeOp, sts[probeOp.ID], blk); matched != len(keys) {
				t.Fatalf("probe matched %d of %d rows: build-side child selection picked the wrong child", matched, len(keys))
			}
		})
	}
}
