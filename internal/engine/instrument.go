package engine

import (
	"repro/internal/metrics"
	"repro/internal/plan"
)

// simInstruments caches the engine's instrument handles so the hot
// paths (dispatch, completion) never touch the registry's lock. When
// metrics are disabled every field is nil and each operation reduces to
// one nil check — the zero-overhead fast path the benchmarks verify.
type simInstruments struct {
	// dispatched / completed count work orders through their lifecycle;
	// a lossless instrumentation keeps both equal to Result.WorkOrders
	// at the end of a run.
	dispatched *metrics.Counter
	completed  *metrics.Counter
	// admitted / finished count query lifecycle transitions.
	admitted *metrics.Counter
	finished *metrics.Counter
	// decisions counts root-activating scheduler decisions; triggers
	// counts scheduling events delivered to the scheduler (§5.2).
	decisions *metrics.Counter
	triggers  *metrics.Counter
	// queueDepth / freeThreads / poolSize are sampled at every
	// scheduler invocation.
	queueDepth  *metrics.Gauge
	freeThreads *metrics.Gauge
	poolSize    *metrics.Gauge
	// queryLatency distributes (completion − arrival) per query.
	queryLatency *metrics.Histogram
	// opLatency distributes work-order durations by operator type.
	opLatency [plan.NumOpTypes]*metrics.Histogram
}

// newSimInstruments registers the engine's instruments; with a nil
// registry it returns all-nil (no-op) handles.
func newSimInstruments(reg *metrics.Registry) *simInstruments {
	si := &simInstruments{}
	if reg == nil {
		return si
	}
	si.dispatched = reg.Counter("engine_workorders_dispatched")
	si.completed = reg.Counter("engine_workorders_completed")
	si.admitted = reg.Counter("engine_queries_admitted")
	si.finished = reg.Counter("engine_queries_finished")
	si.decisions = reg.Counter("engine_sched_decisions")
	si.triggers = reg.Counter("engine_sched_triggers")
	si.queueDepth = reg.Gauge("engine_queue_depth")
	si.freeThreads = reg.Gauge("engine_free_threads")
	si.poolSize = reg.Gauge("engine_pool_size")
	si.queryLatency = reg.Histogram("engine_query_latency", nil)
	for t := 0; t < plan.NumOpTypes; t++ {
		si.opLatency[t] = reg.Histogram("engine_wo_latency_"+plan.OpType(t).String(), nil)
	}
	return si
}

// trace records one event on the configured tracer at the current
// engine time. It is a method (rather than inlined Record calls) so
// the disabled path costs one nil check and never builds the event.
func (s *Sim) trace(kind metrics.EventKind, query, op, thread int, value float64, label string) {
	if s.cfg.Trace == nil {
		return
	}
	s.cfg.Trace.Record(metrics.Event{
		Kind:   kind,
		Time:   s.state.Now,
		Query:  query,
		Op:     op,
		Thread: thread,
		Value:  value,
		Label:  label,
	})
}
