package engine

import (
	"testing"

	"repro/internal/metrics"
)

// TestLiveScalarMatchesVectorEndToEnd runs the same workload through
// the full live engine on both kernel paths and requires identical
// results: same work-order count and same per-query output rows. This
// is the end-to-end companion of the per-kernel differential tests.
func TestLiveScalarMatchesVectorEndToEnd(t *testing.T) {
	cat := liveCatalog(t, "t", 1000, 125) // 8 blocks
	arrivals := func() []Arrival {
		var a []Arrival
		for i := 0; i < 6; i++ {
			a = append(a, Arrival{Plan: livePlan(8), At: float64(i) * 0.01})
		}
		return a
	}

	vec := NewLive(cat, LiveConfig{Threads: 4})
	vres, err := vec.Run(greedyTestSched{depth: 2}, arrivals())
	if err != nil {
		t.Fatal(err)
	}
	sca := NewLive(cat, LiveConfig{Threads: 4, ScalarKernels: true})
	sres, err := sca.Run(greedyTestSched{depth: 2}, arrivals())
	if err != nil {
		t.Fatal(err)
	}

	if vres.WorkOrders != sres.WorkOrders {
		t.Fatalf("vector executed %d WOs, scalar %d", vres.WorkOrders, sres.WorkOrders)
	}
	if len(vres.OutputRows) != len(sres.OutputRows) {
		t.Fatalf("vector completed %d queries, scalar %d", len(vres.OutputRows), len(sres.OutputRows))
	}
	for qid, rows := range vres.OutputRows {
		if sres.OutputRows[qid] != rows {
			t.Fatalf("query %d: vector output %d rows, scalar %d", qid, rows, sres.OutputRows[qid])
		}
	}
}

// TestLivePoolAndKernelMetrics verifies satellite instrumentation: the
// block pool's hit/miss counters and the per-kernel work-order counters
// flow through the metrics registry. Staggered arrivals make early
// queries complete (recycling their blocks) while later ones still
// allocate, so both hits and misses must be non-zero; the kernel
// counters must sum to the engine's own work-order count.
func TestLivePoolAndKernelMetrics(t *testing.T) {
	cat := liveCatalog(t, "t", 1000, 125) // 8 blocks
	reg := metrics.NewRegistry()
	lv := NewLive(cat, LiveConfig{Threads: 2, Metrics: reg})

	var arrivals []Arrival
	for i := 0; i < 8; i++ {
		// Spread arrivals out so earlier queries finish — returning
		// their pooled blocks — before later ones draw from the pool.
		arrivals = append(arrivals, Arrival{Plan: livePlan(8), At: float64(i) * 0.05})
	}
	res, err := lv.Run(greedyTestSched{depth: 2}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != len(arrivals) {
		t.Fatalf("%d of %d queries completed", len(res.Durations), len(arrivals))
	}

	misses := reg.Counter("live_block_pool_misses").Value()
	hits := reg.Counter("live_block_pool_hits").Value()
	if misses == 0 {
		t.Fatal("pool recorded no misses; the first query cannot have hit a warm pool")
	}
	if hits == 0 {
		t.Fatal("pool recorded no hits; completed queries' blocks were never recycled")
	}

	var kernelTotal int64
	for _, name := range []string{
		"live_kernel_wo_select", "live_kernel_wo_build", "live_kernel_wo_probe",
		"live_kernel_wo_aggregate", "live_kernel_wo_sort",
		"live_kernel_wo_passthrough", "live_kernel_wo_finalize",
	} {
		kernelTotal += reg.Counter(name).Value()
	}
	if kernelTotal != int64(res.WorkOrders) {
		t.Fatalf("kernel counters sum to %d, engine executed %d work orders", kernelTotal, res.WorkOrders)
	}
	// This plan shape pins specific kernels: every query has selects,
	// aggregates, and exactly one finalize.
	if got := reg.Counter("live_kernel_wo_select").Value(); got == 0 {
		t.Fatal("no select kernel work orders counted")
	}
	if got := reg.Counter("live_kernel_wo_finalize").Value(); got != int64(len(arrivals)) {
		t.Fatalf("finalize kernel count = %d, want %d", got, len(arrivals))
	}
}
