package engine

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/storage"
)

func TestMorselSpanCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 4096, 40001} {
		for parts := 1; parts <= maxMorselParts; parts++ {
			prev := 0
			for p := 0; p < parts; p++ {
				lo, hi := morselSpan(p, parts, n)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d parts=%d morsel %d: span [%d,%d) after %d", n, parts, p, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d parts=%d: spans end at %d", n, parts, prev)
			}
		}
	}
}

func TestSplitPartsPolicy(t *testing.T) {
	lr := &liveRun{morsels: 4}
	cases := []struct{ n, want int }{
		{0, 1},
		{morselMinRows, 1},
		{2*morselMinRows - 1, 1},
		{2 * morselMinRows, 2},
		{3 * morselMinRows, 3},
		{100 * morselMinRows, 4}, // clamped to the run bound
	}
	for _, c := range cases {
		if got := lr.splitParts(c.n); got != c.want {
			t.Fatalf("splitParts(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	off := &liveRun{morsels: 1}
	if got := off.splitParts(1 << 20); got != 1 {
		t.Fatalf("splitParts with morsels off = %d, want 1", got)
	}
}

func TestAcquireHelpersNonBlocking(t *testing.T) {
	lr := &liveRun{morselGate: make(chan struct{}, 2)}
	lr.morselGate <- struct{}{}
	lr.morselGate <- struct{}{}
	if got := lr.acquireHelpers(3); got != 2 {
		t.Fatalf("acquired %d helpers from a 2-token gate, want 2", got)
	}
	if got := lr.acquireHelpers(1); got != 0 {
		t.Fatalf("acquired %d helpers from a drained gate, want 0", got)
	}
	lr.releaseHelpers(2)
	if got := lr.acquireHelpers(2); got != 2 {
		t.Fatalf("acquired %d helpers after release, want 2", got)
	}
	// A nil gate (morsels off, bare tests) always yields zero helpers.
	bare := &liveRun{}
	if got := bare.acquireHelpers(3); got != 0 {
		t.Fatalf("nil gate yielded %d helpers, want 0", got)
	}
}

// morselCatalog builds a relation of large blocks (4 blocks of 8x
// morselMinRows rows), so every work order is split-eligible.
func morselCatalog(t testing.TB) *storage.Catalog {
	t.Helper()
	rows := 8 * morselMinRows
	gen := storage.NewGenerator(7)
	rel, err := gen.Relation("m", 4*rows, rows, []storage.GenSpec{
		{Column: storage.Column{Name: "id", Type: storage.Int64Col}, Sequential: true},
		{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 64},
		{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	if err := cat.Register(rel); err != nil {
		t.Fatal(err)
	}
	return cat
}

// morselPlans covers the three morsel-split kernels end to end: a
// select->aggregate pipeline, a sort, and a self-join.
func morselPlans() []*plan.Plan {
	sel := plan.NewBuilder("m-selagg")
	scan := sel.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"m"}, EstBlocks: 4})
	s := sel.Add(&plan.Operator{
		Type: plan.Select, InputRelations: []string{"m"}, EstBlocks: 4,
		Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "key", Operand: 32},
	})
	sel.ConnectAuto(scan, s)
	agg := sel.Add(&plan.Operator{Type: plan.Aggregate, InputRelations: []string{"m"}, EstBlocks: 4, Columns: []string{"key"}})
	sel.ConnectAuto(s, agg)
	fin := sel.Add(&plan.Operator{Type: plan.FinalizeAggregate, InputRelations: []string{"m"}, EstBlocks: 1})
	sel.ConnectAuto(agg, fin)

	srt := plan.NewBuilder("m-sort")
	scan2 := srt.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"m"}, EstBlocks: 4})
	so := srt.Add(&plan.Operator{Type: plan.Sort, InputRelations: []string{"m"}, EstBlocks: 4, Columns: []string{"key"}})
	srt.ConnectAuto(scan2, so)

	jn := plan.NewBuilder("m-join")
	scanB := jn.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"m"}, EstBlocks: 1})
	bld := jn.Add(&plan.Operator{Type: plan.BuildHash, InputRelations: []string{"m"}, EstBlocks: 1, Columns: []string{"key"}})
	jn.ConnectAuto(scanB, bld)
	scanP := jn.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"m"}, EstBlocks: 4})
	prb := jn.Add(&plan.Operator{Type: plan.ProbeHash, InputRelations: []string{"m"}, EstBlocks: 4, Columns: []string{"key"}})
	jn.Connect(bld, prb, false)
	jn.ConnectAuto(scanP, prb)

	return []*plan.Plan{sel.MustBuild(), srt.MustBuild(), jn.MustBuild()}
}

func morselArrivals() []Arrival {
	var a []Arrival
	for i, p := range morselPlans() {
		a = append(a, Arrival{Plan: p, At: float64(i) * 0.001})
	}
	return a
}

// TestLiveMorselsEndToEnd runs the same workload with morsels forced
// on (4-way splits on a 4-thread pool), morsels off, and the scalar
// path, and requires identical query results — morsel splitting is an
// execution detail, never a semantics change. It doubles as the
// -race smoke for concurrent morsels inside one work order.
func TestLiveMorselsEndToEnd(t *testing.T) {
	cat := morselCatalog(t)
	reg := metrics.NewRegistry()
	lvM := NewLive(cat, LiveConfig{Threads: 4, Morsels: 4, Metrics: reg})
	lvV := NewLive(cat, LiveConfig{Threads: 4, Morsels: 1})
	lvS := NewLive(cat, LiveConfig{Threads: 4, Morsels: 1, ScalarKernels: true})

	resM, err := lvM.Run(greedyTestSched{depth: 2}, morselArrivals())
	if err != nil {
		t.Fatal(err)
	}
	resV, err := lvV.Run(greedyTestSched{depth: 2}, morselArrivals())
	if err != nil {
		t.Fatal(err)
	}
	resS, err := lvS.Run(greedyTestSched{depth: 2}, morselArrivals())
	if err != nil {
		t.Fatal(err)
	}

	for _, other := range []*LiveResult{resV, resS} {
		if len(resM.OutputRows) != len(other.OutputRows) {
			t.Fatalf("query count differs: %d vs %d", len(resM.OutputRows), len(other.OutputRows))
		}
		for id, rows := range resM.OutputRows {
			if other.OutputRows[id] != rows {
				t.Fatalf("query %d: morsel run produced %d rows, reference produced %d", id, rows, other.OutputRows[id])
			}
		}
	}
	if resM.WorkOrders != resV.WorkOrders {
		t.Fatalf("morsels changed the work-order count: %d vs %d", resM.WorkOrders, resV.WorkOrders)
	}
	if splits := reg.Counter("live_morsel_splits").Value(); splits == 0 {
		t.Fatal("morsel run never split a work order; the end-to-end test exercised nothing")
	}
}

// TestLiveMorselsAutoDisable pins the auto policy: Morsels=0 resolves
// to min(4, Threads, GOMAXPROCS), so a single-thread pool never pays
// for gate tokens or split bookkeeping.
func TestLiveMorselsAutoDisable(t *testing.T) {
	lv := NewLive(nil, LiveConfig{Threads: 1})
	if lv.morsels != 1 {
		t.Fatalf("Threads=1 resolved morsels=%d, want 1", lv.morsels)
	}
	if lv2 := NewLive(nil, LiveConfig{Threads: 4, Morsels: 100}); lv2.morsels != maxMorselParts {
		t.Fatalf("Morsels=100 resolved %d, want clamp to %d", lv2.morsels, maxMorselParts)
	}
	if lv3 := NewLive(nil, LiveConfig{Threads: 4, ScalarKernels: true, Morsels: 4}); lv3.morsels != 4 {
		// The Live-level bound stays; the scalar run disables splitting
		// per-run (liveRun.morsels), keeping the A/B baseline per-row.
		t.Fatalf("scalar config resolved morsels=%d, want 4 at the Live level", lv3.morsels)
	}
}
