package engine

import (
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/storage"
)

// TestLiveStressInstrumentationLossless floods the live engine with
// many short queries on a multi-thread pool while fully instrumented.
// Work orders of one dispatch round execute on concurrent goroutines,
// so under `go test -race` this exercises the executor's locking and
// the metrics registry's atomics; the counters must equal the engine's
// own work-order accounting exactly (race-safe AND lossless).
func TestLiveStressInstrumentationLossless(t *testing.T) {
	cat := liveCatalog(t, "t", 1000, 125) // 8 blocks
	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(1 << 16)
	lv := NewLive(cat, LiveConfig{Threads: 8, Metrics: reg, Trace: tr})

	// Many short queries arriving together keeps every dispatch round
	// full, maximizing intra-round concurrency.
	const queries = 24
	var arrivals []Arrival
	for i := 0; i < queries; i++ {
		arrivals = append(arrivals, Arrival{Plan: livePlan(4), At: 0})
	}
	res, err := lv.Run(greedyTestSched{depth: 2}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != queries {
		t.Fatalf("%d of %d queries completed", len(res.Durations), queries)
	}
	wo := int64(res.WorkOrders)
	if wo == 0 {
		t.Fatal("no work orders executed")
	}
	for _, name := range []string{
		"live_workorders_executed", // incremented inside worker goroutines
		"engine_workorders_dispatched",
		"engine_workorders_completed",
	} {
		if got := reg.Counter(name).Value(); got != wo {
			t.Fatalf("%s = %d, want %d (instrumentation lost or duplicated events)", name, got, wo)
		}
	}
	// Wall-clock histograms observed concurrently must also be lossless.
	var histTotal int64
	for name, h := range reg.Snapshot().Histograms {
		if len(name) > 20 && name[:20] == "live_wo_wall_seconds" {
			histTotal += h.Count
		}
	}
	if histTotal != wo {
		t.Fatalf("live wall-latency histograms hold %d observations, want %d", histTotal, wo)
	}
	if got := tr.Total(); got == 0 {
		t.Fatal("tracer recorded nothing")
	}
}

// TestLiveHashShareConcurrency probes the BuildHash/ProbeHash ordering
// contract directly: build and probe work orders of the same join
// hammered from concurrent goroutines, the worst interleaving the
// executor could ever see (the scheduler itself never overlaps them,
// because the build edge is pipeline-breaking). The shared hash state
// is read by the probe side; under `go test -race` this fails unless
// runProbe holds the build-side lock for the whole probe. Both the
// scalar map path and the vectorized open-addressing path are covered.
func TestLiveHashShareConcurrency(t *testing.T) {
	for _, mode := range []string{"vector", "scalar"} {
		t.Run(mode, func(t *testing.T) {
			gen := storage.NewGenerator(11)
			rel, err := gen.Relation("r", 1000, 250, []storage.GenSpec{
				{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 40},
			})
			if err != nil {
				t.Fatal(err)
			}

			b := plan.NewBuilder("hash-share")
			scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"r"}, EstBlocks: 4})
			build := b.Add(&plan.Operator{Type: plan.BuildHash, InputRelations: []string{"r"}, EstBlocks: 4, Columns: []string{"key"}})
			b.ConnectAuto(scan, build)
			probe := b.Add(&plan.Operator{Type: plan.ProbeHash, InputRelations: []string{"r"}, EstBlocks: 4, Columns: []string{"key"}})
			b.Connect(build, probe, false)
			p := b.MustBuild()
			q := newQueryState(0, p, 0)

			lr := &liveRun{states: make(map[int][]*liveOpState), scalar: mode == "scalar"}
			sts := make([]*liveOpState, len(p.Ops))
			for i := range sts {
				sts[i] = &liveOpState{}
			}
			lr.states[0] = sts
			buildSt := sts[build.ID]
			probeSt := sts[probe.ID]
			buildOp := p.Ops[build.ID]
			probeOp := p.Ops[probe.ID]

			var wg sync.WaitGroup
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, blk := range rel.Blocks {
						lr.runBuild(buildOp, buildSt, blk)
					}
				}()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for _, blk := range rel.Blocks {
						lr.runProbe(q, probeOp, probeSt, blk)
					}
				}()
			}
			wg.Wait()

			// After every build finished, a probe must match every row.
			if rows := lr.runProbe(q, probeOp, probeSt, rel.Blocks[0]); rows != rel.Blocks[0].NumRows() {
				t.Fatalf("post-build probe matched %d rows, want %d", rows, rel.Blocks[0].NumRows())
			}
			// 4 goroutines × 4 blocks × 250 rows each landed in the hash state.
			buildSt.mu.Lock()
			var total int64
			if lr.scalar {
				for _, c := range buildSt.hash {
					total += int64(c)
				}
			} else {
				total = buildSt.vhash.Total()
			}
			buildSt.mu.Unlock()
			if total != 4*1000 {
				t.Fatalf("hash state holds %d entries, want %d (lost concurrent inserts)", total, 4*1000)
			}
		})
	}
}
