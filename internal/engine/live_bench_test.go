package engine

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Per-kernel A/B benchmarks: the same work order driven through the
// retained scalar path and the vectorized exec kernels. Each iteration
// processes one ~4k-row block; pooled outputs are recycled between
// iterations so the vector numbers reflect steady-state execution, the
// regime the live engine reaches once the pool is warm.

const benchRows = 4096

// benchBlock builds one block with an int64 key column (bounded
// cardinality, so hash state reaches steady size) and a float64 value
// column.
func benchBlock(b *testing.B) *storage.Block {
	b.Helper()
	gen := storage.NewGenerator(42)
	rel, err := gen.Relation("bench", benchRows, benchRows, []storage.GenSpec{
		{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 128},
		{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 100},
	})
	if err != nil {
		b.Fatal(err)
	}
	return rel.Blocks[0]
}

func benchRun(scalar bool) *liveRun {
	return &liveRun{
		scalar: scalar,
		pool:   exec.NewBlockPool(),
		states: make(map[int][]*liveOpState),
	}
}

// benchDrain recycles an op state's outputs between iterations: pooled
// blocks go back to the pool (vector path), scalar outputs are dropped.
func benchDrain(lr *liveRun, st *liveOpState) {
	st.mu.Lock()
	pooled := st.pooled
	st.outputs = st.outputs[:0]
	st.pooled = st.pooled[:0]
	st.mu.Unlock()
	for _, blk := range pooled {
		lr.pool.Put(blk)
	}
}

func benchModes(b *testing.B, fn func(b *testing.B, scalar bool)) {
	b.Helper()
	b.Run("scalar", func(b *testing.B) { fn(b, true) })
	b.Run("vector", func(b *testing.B) { fn(b, false) })
}

func BenchmarkLiveKernels(b *testing.B) {
	b.Run("select", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			in := benchBlock(b)
			// ~50% selectivity over the 128-key space.
			op := &plan.Operator{Type: plan.Select, Columns: []string{"key"},
				Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "key", Operand: 64}}
			lr := benchRun(scalar)
			st := &liveOpState{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runSelect(nil, op, st, in)
				benchDrain(lr, st)
			}
		})
	})

	b.Run("build", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			in := benchBlock(b)
			op := &plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}}
			lr := benchRun(scalar)
			st := &liveOpState{}
			lr.runBuild(op, st, in) // warm: table reaches steady size
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runBuild(op, st, in)
			}
		})
	})

	b.Run("probe", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			in := benchBlock(b)
			bp := plan.NewBuilder("bench-join")
			scan := bp.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"bench"}})
			buildOp := bp.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
			bp.ConnectAuto(scan, buildOp)
			probeOp := bp.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
			bp.Connect(buildOp, probeOp, false)
			p := bp.MustBuild()
			lr := benchRun(scalar)
			sts := make([]*liveOpState, len(p.Ops))
			for i := range sts {
				sts[i] = &liveOpState{}
			}
			lr.states[0] = sts
			q := newQueryState(0, p, 0)
			lr.runBuild(p.Ops[buildOp.ID], sts[buildOp.ID], in)
			st := sts[probeOp.ID]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runProbe(q, p.Ops[probeOp.ID], st, in)
				benchDrain(lr, st)
			}
		})
	})

	b.Run("aggregate", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			in := benchBlock(b)
			op := &plan.Operator{Type: plan.Aggregate, Columns: []string{"key"}}
			lr := benchRun(scalar)
			st := &liveOpState{}
			lr.runAggregate(op, st, in) // warm: group state reaches steady size
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runAggregate(op, st, in)
			}
		})
	})

	b.Run("sort", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			in := benchBlock(b)
			op := &plan.Operator{Type: plan.Sort, Columns: []string{"key"}}
			lr := benchRun(scalar)
			st := &liveOpState{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runSort(nil, op, st, in)
				benchDrain(lr, st)
			}
		})
	})

	// strselect: equality select on a dictionary-encoded string column.
	// Both modes see the same coded block; the scalar path decodes each
	// row and compares strings, the vector path compares int codes.
	b.Run("strselect", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			gen := storage.NewGenerator(42)
			rel, err := gen.Relation("strsel", benchRows, benchRows, []storage.GenSpec{
				{Column: storage.Column{Name: "tag", Type: storage.StringCol}, Cardinality: 8, DictEncode: true},
				{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 100},
			})
			if err != nil {
				b.Fatal(err)
			}
			in := rel.Blocks[0] // ~1/8 selectivity
			op := &plan.Operator{Type: plan.Select, Columns: []string{"tag"},
				Pred: plan.Predicate{Kind: plan.PredStringEq, Column: "tag", SOperand: "v3"}}
			lr := benchRun(scalar)
			st := &liveOpState{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runSelect(nil, op, st, in)
				benchDrain(lr, st)
			}
		})
	})

	// radixsort: sort a block far above the radix cutoff with a wide key
	// range, so the vector path runs the LSD radix loop rather than the
	// small-input comparison fallback.
	b.Run("radixsort", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			const rows = 16 * benchRows
			gen := storage.NewGenerator(42)
			rel, err := gen.Relation("rsort", rows, rows, []storage.GenSpec{
				{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 1 << 20},
				{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 100},
			})
			if err != nil {
				b.Fatal(err)
			}
			in := rel.Blocks[0]
			op := &plan.Operator{Type: plan.Sort, Columns: []string{"key"}}
			lr := benchRun(scalar)
			st := &liveOpState{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runSort(nil, op, st, in)
				benchDrain(lr, st)
			}
		})
	})

	// partprobe: a probe batch at 4x partitionedProbeMin against a
	// high-cardinality build side, so the vector path takes the
	// radix-partitioned probe (partition, probe per-partition, re-emit
	// in row order) instead of the inline batch probe.
	b.Run("partprobe", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			const buildRows = 2 * benchRows
			const probeRows = 4 * benchRows
			gen := storage.NewGenerator(42)
			brel, err := gen.Relation("pbuild", buildRows, buildRows, []storage.GenSpec{
				{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: buildRows},
			})
			if err != nil {
				b.Fatal(err)
			}
			prel, err := gen.Relation("pprobe", probeRows, probeRows, []storage.GenSpec{
				{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: buildRows},
				{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 100},
			})
			if err != nil {
				b.Fatal(err)
			}
			bp := plan.NewBuilder("bench-partjoin")
			scan := bp.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"pbuild"}})
			buildOp := bp.Add(&plan.Operator{Type: plan.BuildHash, Columns: []string{"key"}})
			bp.ConnectAuto(scan, buildOp)
			probeOp := bp.Add(&plan.Operator{Type: plan.ProbeHash, Columns: []string{"key"}})
			bp.Connect(buildOp, probeOp, false)
			p := bp.MustBuild()
			lr := benchRun(scalar)
			sts := make([]*liveOpState, len(p.Ops))
			for i := range sts {
				sts[i] = &liveOpState{}
			}
			lr.states[0] = sts
			q := newQueryState(0, p, 0)
			lr.runBuild(p.Ops[buildOp.ID], sts[buildOp.ID], brel.Blocks[0])
			st := sts[probeOp.ID]
			in := prel.Blocks[0]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runProbe(q, p.Ops[probeOp.ID], st, in)
				benchDrain(lr, st)
			}
		})
	})

	// fusedselect: a select whose sole parent is an aggregate. The
	// vector path fuses select->project, gathering only the aggregate's
	// key column into the intermediate block; the scalar path (and the
	// unfused vector kernel it is compared against elsewhere) carries
	// every column through.
	b.Run("fusedselect", func(b *testing.B) {
		benchModes(b, func(b *testing.B, scalar bool) {
			in := benchBlock(b)
			bp := plan.NewBuilder("bench-fused")
			scan := bp.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"bench"}})
			sel := bp.Add(&plan.Operator{Type: plan.Select, Columns: []string{"key"},
				Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "key", Operand: 64}})
			bp.ConnectAuto(scan, sel)
			agg := bp.Add(&plan.Operator{Type: plan.Aggregate, Columns: []string{"key"}})
			bp.ConnectAuto(sel, agg)
			p := bp.MustBuild()
			lr := benchRun(scalar)
			if !scalar {
				lr.live = NewLive(nil, LiveConfig{Threads: 1}) // enables the fusion cache
			}
			st := &liveOpState{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lr.runSelect(nil, p.Ops[sel.ID], st, in)
				benchDrain(lr, st)
			}
		})
	})
}

// BenchmarkLiveRun drives the full engine — dispatch, workers, block
// pool, query-completion recycling, operator fusion — on both kernel
// paths. The Live (and with it the block pool and scratch buffers) is
// hoisted out of the loop, so the numbers reflect steady-state serving:
// the regime a resident engine reaches after its first few queries.
func BenchmarkLiveRun(b *testing.B) {
	benchModes(b, func(b *testing.B, scalar bool) {
		gen := storage.NewGenerator(42)
		rel, err := gen.Relation("t", 8*benchRows, benchRows, []storage.GenSpec{
			{Column: storage.Column{Name: "id", Type: storage.Int64Col}, Sequential: true},
			{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 128},
			{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 100},
		})
		if err != nil {
			b.Fatal(err)
		}
		cat := storage.NewCatalog()
		if err := cat.Register(rel); err != nil {
			b.Fatal(err)
		}
		// Plans are read-only during execution (per-query state lives in
		// the sim and liveRun), so the arrivals are built once and reused.
		var arrivals []Arrival
		for i := 0; i < 4; i++ {
			arrivals = append(arrivals, Arrival{Plan: benchLivePlan(8), At: float64(i) * 0.01})
		}
		lv := NewLive(cat, LiveConfig{Threads: 4, ScalarKernels: scalar})
		if _, err := lv.Run(greedyTestSched{depth: 2}, arrivals); err != nil {
			b.Fatal(err) // warm pool, scratch, and table capacities
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := lv.Run(greedyTestSched{depth: 2}, arrivals); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLiveMorsels is the morsel-parallelism A/B: the same
// large-block workload (select->aggregate, sort, join over 16k-row
// blocks) with work-order splitting off and on, on a 4-thread pool.
// On a single-core host the pair is expected to be a wash (morsels
// convert idle cores into intra-order parallelism; there are none to
// convert), which is itself worth recording.
func BenchmarkLiveMorsels(b *testing.B) {
	cat := morselCatalog(b)
	for _, m := range []struct {
		name    string
		morsels int
	}{{"unsplit", 1}, {"split", 4}} {
		b.Run(m.name, func(b *testing.B) {
			lv := NewLive(cat, LiveConfig{Threads: 4, Morsels: m.morsels})
			if _, err := lv.Run(greedyTestSched{depth: 2}, morselArrivals()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lv.Run(greedyTestSched{depth: 2}, morselArrivals()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchLivePlan: scan -> select(id < half) -> aggregate -> finalize
// over the benchmark relation.
func benchLivePlan(blocks int) *plan.Plan {
	b := plan.NewBuilder("bench-q")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"t"}, EstBlocks: blocks})
	sel := b.Add(&plan.Operator{
		Type: plan.Select, InputRelations: []string{"t"}, EstBlocks: blocks,
		Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "id", Operand: 4 * benchRows},
	})
	b.ConnectAuto(scan, sel)
	agg := b.Add(&plan.Operator{Type: plan.Aggregate, InputRelations: []string{"t"}, EstBlocks: blocks, Columns: []string{"key"}})
	b.ConnectAuto(sel, agg)
	fin := b.Add(&plan.Operator{Type: plan.FinalizeAggregate, InputRelations: []string{"t"}, EstBlocks: 1})
	b.ConnectAuto(agg, fin)
	return b.MustBuild()
}
