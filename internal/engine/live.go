package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/storage"
)

// Live executes query plans against real storage blocks on a bounded
// worker pool, under the same Scheduler interface and scheduling events
// as the simulator. It exists to (a) ground the simulator's cost model
// in real executions and (b) power the runnable examples: a Select work
// order really filters tuples, a BuildHash order really builds a hash
// table, and durations are measured wall-clock.
//
// Work orders run on the vectorized kernels of internal/exec by
// default: typed branch-hoisted selection, radix-partitioned
// open-addressing hash tables with batch probe, dictionary-coded string
// columns that run through the integer kernels, pooled-block gather,
// and a radix sort on the key-extracted path. A Select whose sole
// consumer is a blocking operator fuses its projection into that
// consumer's input column, and large work orders split into row-range
// morsels that soak up idle worker threads (see live_morsel.go). The
// pre-vectorization scalar per-row path is retained behind
// LiveConfig.ScalarKernels for honest A/B benchmarking and the
// scalar/vector differential tests (mirroring the agent's
// DisableFastPath switch).
//
// The engine executes one workload per Run call. Queries arrive on the
// wall clock according to their Arrival offsets (scaled by TimeScale).
// Live keeps its block pool and scratch buffers across Run calls so
// steady-state serving reaches a near-zero per-query allocation rate;
// all of that shared state is mutex- or sync.Pool-guarded, which is
// what keeps concurrent RunOne calls from independent executor workers
// safe.
type Live struct {
	cfg     LiveConfig
	catalog *storage.Catalog
	// pool recycles materialized output blocks across work orders and
	// across runs.
	pool *exec.BlockPool
	// scratch holds per-worker *exec.Scratch buffers (selection
	// vectors, sort pairs, probe marks) reused across runs.
	scratch sync.Pool
	// aggTables recycles grouped-aggregate hash tables across queries:
	// a completed query's table is Reset (capacity kept) and handed to
	// the next query's Aggregate operator, so steady-state serving
	// skips the grow-from-minimum ladder entirely.
	aggTables sync.Pool
	// estimators recycles Reset cost estimators across Run calls, so
	// the per-opKey windows (and their backing arrays) are allocated
	// once, not per run. Each Run draws its own, keeping concurrent
	// RunOne calls isolated.
	estimators sync.Pool
	// opFree recycles per-query op-state slices (and the structs in
	// them) across query completions.
	opMu   sync.Mutex
	opFree [][]*liveOpState
	// morsels is the resolved per-work-order split bound (1 = off).
	morsels int
	// fused caches the single-column projection schemas the fused
	// select path emits, keyed by (input schema, column); schemas must
	// be pointer-stable because the block pool keys free lists by
	// schema pointer.
	fmu   sync.Mutex
	fused map[fusedKey]*storage.Schema
}

type fusedKey struct {
	schema *storage.Schema
	col    int
}

// LiveConfig configures a live engine.
type LiveConfig struct {
	// Threads is the worker pool size.
	Threads int
	// TimeScale multiplies arrival offsets to convert workload time
	// units into wall-clock seconds (e.g. 0.01 compresses a long trace).
	TimeScale float64
	// ScalarKernels selects the retained scalar per-row execution path
	// (map-based hash state, per-block allocation) instead of the
	// vectorized kernels — the pre-optimization baseline kept in-tree
	// for A/B benchmarks and differential tests.
	ScalarKernels bool
	// Morsels bounds how many row-range morsels one large work order
	// may split into to recruit idle workers: 0 resolves to
	// min(4, Threads, GOMAXPROCS), 1 disables splitting, larger values
	// are clamped to the engine's fixed per-work-order fan-out bound.
	// Splitting never changes results — morsel outputs are stitched
	// back in row order (see live_morsel.go).
	Morsels int
	// Metrics, when non-nil, receives the engine's counters and latency
	// histograms plus the live executor's own wall-clock instruments.
	// Worker goroutines update them concurrently, so the registry's
	// race-safety is load-bearing here.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives the engine's typed trace events.
	Trace *metrics.Tracer
}

// NewLive builds a live engine over the given catalog.
func NewLive(catalog *storage.Catalog, cfg LiveConfig) *Live {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	m := cfg.Morsels
	if m <= 0 {
		m = cfg.Threads
		if p := runtime.GOMAXPROCS(0); p < m {
			m = p
		}
		if m > 4 {
			m = 4
		}
	}
	if m > maxMorselParts {
		m = maxMorselParts
	}
	lv := &Live{
		cfg:     cfg,
		catalog: catalog,
		pool:    exec.NewBlockPool(),
		morsels: m,
		fused:   make(map[fusedKey]*storage.Schema),
	}
	// Registry lookups are nil-safe: with metrics disabled these are
	// nil instruments whose operations no-op.
	reg := cfg.Metrics
	lv.pool.Instrument(reg.Counter("live_block_pool_hits"), reg.Counter("live_block_pool_misses"))
	return lv
}

// fusedSchema returns the cached single-column schema for the fused
// select→consumer path, creating it on first use. Caching keeps the
// schema pointer stable so pooled fused blocks recycle.
func (lv *Live) fusedSchema(s *storage.Schema, col int) *storage.Schema {
	key := fusedKey{schema: s, col: col}
	lv.fmu.Lock()
	defer lv.fmu.Unlock()
	if sc, ok := lv.fused[key]; ok {
		return sc
	}
	sc := storage.MustSchema(s.Columns[col])
	lv.fused[key] = sc
	return sc
}

// liveOpState is the execution-time state of one operator.
type liveOpState struct {
	inputs []*storage.Block
	// outputs collects the operator's produced blocks, consumed by
	// parents.
	outputs []*storage.Block
	// hash is the BuildHash result shared with ProbeHash parents
	// (scalar path, integer keys).
	hash map[int64]int
	// hashStr is the scalar-path build table for string join keys: the
	// pre-dictionary engine hashed the strings themselves.
	hashStr map[string]int
	// vhash is the BuildHash result on the vectorized path.
	vhash *exec.RadixTable
	// aggState accumulates partial aggregates (scalar path).
	aggState map[int64]float64
	// vagg accumulates partial aggregates on the vectorized path.
	vagg *exec.SumTable
	// pooled tracks which outputs were drawn from the block pool, so
	// they can be recycled when the owning query completes.
	pooled []*storage.Block
	mu     sync.Mutex
}

// LiveResult summarizes a live run.
type LiveResult struct {
	// Durations maps query ID to wall-clock duration in seconds.
	Durations map[int]float64
	// Makespan is the wall-clock length of the whole run in seconds.
	Makespan float64
	// WorkOrders counts executed work orders.
	WorkOrders int
	// OpDurations records mean per-work-order wall time by operator
	// type, used to calibrate the simulator's cost model.
	OpDurations map[plan.OpType]float64
	// OpMemory records mean per-work-order memory estimate by operator
	// type — the observation stream an admission controller feeds its
	// per-type O-MEM windows from.
	OpMemory map[plan.OpType]float64
	// OutputRows maps query ID to the number of rows its sink produced.
	OutputRows map[int]int
}

// kernelCounters counts work orders per execution kernel, so /metrics
// shows where a live run's data touches went.
type kernelCounters struct {
	sel, build, probe, aggregate, sortk, passthrough, finalize *metrics.Counter
}

// Run executes the workload under the scheduler. It reuses the
// simulator's state bookkeeping (QueryState, decisions, availability)
// but with real block processing and wall-clock time.
func (lv *Live) Run(sched Scheduler, arrivals []Arrival) (*LiveResult, error) {
	// The live engine reuses the Sim event loop with a twist: instead of
	// cost-model durations, each dispatched work order is really
	// executed and its measured wall time becomes the virtual duration.
	// This keeps scheduling semantics identical across engines.
	ls := &liveRun{
		live:    lv,
		scalar:  lv.cfg.ScalarKernels,
		pool:    lv.pool,
		scratch: &lv.scratch,
		morsels: lv.morsels,
		states:  make(map[int][]*liveOpState),
		result: &LiveResult{
			Durations:   make(map[int]float64),
			OpDurations: make(map[plan.OpType]float64),
			OpMemory:    make(map[plan.OpType]float64),
			OutputRows:  make(map[int]int),
		},
		opCounts: make(map[plan.OpType]int),
	}
	if ls.scalar {
		ls.morsels = 1
	}
	if ls.morsels > 1 && lv.cfg.Threads > 1 {
		// Helper tokens: a splitting work order may borrow up to
		// Threads-1 extra goroutines beyond the one it runs on.
		ls.morselGate = make(chan struct{}, lv.cfg.Threads-1)
		for i := 0; i < lv.cfg.Threads-1; i++ {
			ls.morselGate <- struct{}{}
		}
	}
	reg := lv.cfg.Metrics
	if reg != nil {
		ls.executed = reg.Counter("live_workorders_executed")
		for t := 0; t < plan.NumOpTypes; t++ {
			ls.wallLatency[t] = reg.Histogram("live_wo_wall_seconds_"+plan.OpType(t).String(), nil)
		}
	}
	// Registry lookups are nil-safe: with metrics disabled these are
	// nil instruments whose operations no-op.
	ls.kernels = kernelCounters{
		sel:         reg.Counter("live_kernel_wo_select"),
		build:       reg.Counter("live_kernel_wo_build"),
		probe:       reg.Counter("live_kernel_wo_probe"),
		aggregate:   reg.Counter("live_kernel_wo_aggregate"),
		sortk:       reg.Counter("live_kernel_wo_sort"),
		passthrough: reg.Counter("live_kernel_wo_passthrough"),
		finalize:    reg.Counter("live_kernel_wo_finalize"),
	}
	ls.morselSplits = reg.Counter("live_morsel_splits")
	ls.morselHelpers = reg.Counter("live_morsel_helpers")
	est, _ := lv.estimators.Get().(*costmodel.Estimator)
	cfg := SimConfig{Threads: lv.cfg.Threads, Seed: 1, Metrics: lv.cfg.Metrics, Trace: lv.cfg.Trace, Estimator: est}
	sim := NewSim(cfg)
	sim.executeHook = ls.execute
	// The morsel driver reports achieved parallelism into the sim's
	// estimator so O-DUR predictions stay in wall-clock units (see
	// costmodel.ObserveParallelism).
	ls.estimator = sim.State().Estimator
	// Recycle a query's pooled blocks the moment it completes; the live
	// engine owns this sim, so the observer slot is free. Schedulers
	// that observe lifecycles themselves are forwarded to.
	if o, ok := sched.(QueryObserver); ok {
		ls.observer = o
	}
	sim.SetObserver(ls)
	scaled := make([]Arrival, len(arrivals))
	for i, a := range arrivals {
		scaled[i] = Arrival{Plan: a.Plan, At: a.At * lv.cfg.TimeScale}
	}
	res, err := sim.Run(sched, scaled)
	// The sim (and the liveRun holding ls.estimator) is dead either
	// way, so its estimator goes back to the pool for the next run.
	sim.State().Estimator.Reset()
	lv.estimators.Put(sim.State().Estimator)
	if err != nil {
		return nil, err
	}
	for id, d := range res.Durations {
		ls.result.Durations[id] = d
	}
	ls.result.Makespan = res.Makespan
	ls.result.WorkOrders = res.WorkOrders
	for t, total := range ls.opTotals {
		ls.result.OpDurations[t] = total / float64(ls.opCounts[t])
	}
	for t, total := range ls.memTotals {
		ls.result.OpMemory[t] = total / float64(ls.opCounts[t])
	}
	return ls.result, nil
}

// RunOne executes a single plan arriving immediately — the unit of work
// a query front door dispatches per admitted request. The plan is
// cloned first, so shared templates can be submitted concurrently; the
// state Live carries across Run calls (block pool, scratch buffers,
// fused-schema cache) is concurrency-safe, which is what makes
// concurrent RunOne calls from independent executor workers safe.
func (lv *Live) RunOne(sched Scheduler, p *plan.Plan) (*LiveResult, error) {
	return lv.Run(sched, []Arrival{{Plan: p.Clone(), At: 0}})
}

// liveRun carries per-run execution state. Work orders of one dispatch
// round execute on concurrent goroutines (see Sim.executeBatch), so
// everything here is either mu-guarded, per-operator mutex-guarded
// (liveOpState), or an atomic metrics instrument.
type liveRun struct {
	live *Live
	// scalar selects the retained per-row path over the exec kernels.
	scalar bool
	// pool recycles materialized output blocks across work orders; nil
	// (in bare test constructions) degrades to plain allocation.
	pool *exec.BlockPool
	// scratch holds per-worker *exec.Scratch buffers (selection
	// vectors, sort pairs); sync.Pool gives each concurrently executing
	// work order (and each morsel helper) its own. nil (in bare test
	// constructions) degrades to per-call allocation.
	scratch *sync.Pool
	// morsels bounds the per-work-order split fan-out (1 = off).
	morsels int
	// morselGate holds one token per borrowable helper thread; nil when
	// morsels are off, which the acquire path treats as "no helpers".
	morselGate chan struct{}
	// estimator receives achieved morsel parallelism (estMu-guarded:
	// worker goroutines report concurrently). nil in bare tests.
	estimator *costmodel.Estimator
	estMu     sync.Mutex
	mu        sync.Mutex
	states    map[int][]*liveOpState
	result    *LiveResult
	opTotals  map[plan.OpType]float64
	memTotals map[plan.OpType]float64
	opCounts  map[plan.OpType]int
	// executed counts work orders from inside the worker goroutines; a
	// lossless, race-safe instrumentation ends a run with this equal to
	// LiveResult.WorkOrders.
	executed      *metrics.Counter
	wallLatency   [plan.NumOpTypes]*metrics.Histogram
	kernels       kernelCounters
	morselSplits  *metrics.Counter
	morselHelpers *metrics.Counter
	// observer forwards query completions to the run's scheduler when
	// it observes lifecycles (e.g. to join flight-recorder entries to
	// outcomes); the live engine itself owns the sim's observer slot.
	observer QueryObserver
}

// opState returns the execution state of one operator under the run
// lock; concurrent workers must not read the states map bare, because
// a worker admitting a new query writes it.
func (lr *liveRun) opState(queryID, opID int) *liveOpState {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return lr.states[queryID][opID]
}

// getScratch borrows a per-worker scratch buffer; callers must return
// it with putScratch once the work order's kernels are done with it.
func (lr *liveRun) getScratch() *exec.Scratch {
	if lr.scratch != nil {
		if s, ok := lr.scratch.Get().(*exec.Scratch); ok {
			return s
		}
	}
	return &exec.Scratch{}
}

func (lr *liveRun) putScratch(s *exec.Scratch) {
	if lr.scratch != nil {
		lr.scratch.Put(s)
	}
}

// getAggTable draws a recycled grouped-aggregate table from the owning
// Live (bare test runs allocate fresh ones).
func (lr *liveRun) getAggTable() *exec.SumTable {
	if lr.live != nil {
		if t, ok := lr.live.aggTables.Get().(*exec.SumTable); ok {
			return t
		}
	}
	return exec.NewSumTable(0)
}

// getOpStates draws a recycled per-query op-state slice from the owning
// Live, re-using the structs left in it by completed queries; bare test
// runs allocate fresh ones. Called with lr.mu held.
func (lr *liveRun) getOpStates(n int) []*liveOpState {
	var sts []*liveOpState
	if lr.live != nil {
		lr.live.opMu.Lock()
		if k := len(lr.live.opFree); k > 0 {
			sts = lr.live.opFree[k-1][:0]
			lr.live.opFree = lr.live.opFree[:k-1]
		}
		lr.live.opMu.Unlock()
	}
	for len(sts) < n && len(sts) < cap(sts) {
		sts = sts[:len(sts)+1]
		if sts[len(sts)-1] == nil {
			sts[len(sts)-1] = &liveOpState{}
		}
	}
	for len(sts) < n {
		sts = append(sts, &liveOpState{})
	}
	return sts
}

// putOpStates resets a completed query's op states (keeping their
// slice capacities) and parks the slice for the next query.
func (lr *liveRun) putOpStates(sts []*liveOpState) {
	if lr.live == nil {
		return
	}
	for _, st := range sts {
		st.outputs = st.outputs[:0]
		st.pooled = st.pooled[:0]
		st.hash = nil
		st.hashStr = nil
		st.vhash = nil
		st.aggState = nil
		st.vagg = nil
	}
	lr.live.opMu.Lock()
	lr.live.opFree = append(lr.live.opFree, sts)
	lr.live.opMu.Unlock()
}

// QueryCompleted implements QueryObserver: once a query finishes, no
// work order can reference its intermediate blocks anymore, so its
// pooled outputs return to the block pool and its execution state is
// dropped. The Sim invokes this from the event loop between dispatch
// rounds, never concurrently with worker goroutines.
func (lr *liveRun) QueryCompleted(queryID int, arrival, completion float64) {
	lr.mu.Lock()
	sts := lr.states[queryID]
	delete(lr.states, queryID)
	lr.mu.Unlock()
	for _, st := range sts {
		st.mu.Lock()
		pooled := st.pooled
		st.pooled = nil
		vagg := st.vagg
		st.vagg = nil
		st.mu.Unlock()
		for _, b := range pooled {
			lr.pool.Put(b)
		}
		st.pooled = pooled[:0] // keep the slice capacity for the next query
		if vagg != nil && lr.live != nil {
			vagg.Reset()
			lr.live.aggTables.Put(vagg)
		}
	}
	lr.putOpStates(sts)
	if lr.observer != nil {
		lr.observer.QueryCompleted(queryID, arrival, completion)
	}
}

// execute really runs one work order and returns its measured duration
// (in seconds) and memory estimate. It is invoked by the Sim dispatch
// hook in place of the cost model.
func (lr *liveRun) execute(q *QueryState, os *OpState, wo WorkOrder) (dur, mem float64) {
	lr.mu.Lock()
	sts, ok := lr.states[q.ID]
	if !ok {
		sts = lr.getOpStates(len(q.Plan.Ops))
		lr.states[q.ID] = sts
	}
	if lr.opTotals == nil {
		lr.opTotals = make(map[plan.OpType]float64)
	}
	lr.mu.Unlock()

	st := sts[os.Op.ID]
	start := time.Now()
	rows := lr.runWorkOrder(q, os.Op, st, wo.BlockIndex)
	elapsed := time.Since(start).Seconds()
	lr.executed.Inc()
	lr.wallLatency[os.Op.Type].Observe(elapsed)

	lr.mu.Lock()
	if lr.memTotals == nil {
		lr.memTotals = make(map[plan.OpType]float64)
	}
	lr.opTotals[os.Op.Type] += elapsed
	lr.memTotals[os.Op.Type] += float64(rows) / 1000
	lr.opCounts[os.Op.Type]++
	if len(os.Op.Parents()) == 0 {
		lr.result.OutputRows[q.ID] += rows
	}
	lr.mu.Unlock()
	return elapsed, float64(rows) / 1000
}

// inputBlock fetches the wo-th input block of op: from the base relation
// for leaves, or from the child's outputs otherwise.
func (lr *liveRun) inputBlock(q *QueryState, op *plan.Operator, st *liveOpState, idx int) *storage.Block {
	if len(op.Children()) == 0 {
		if len(op.InputRelations) == 0 {
			return nil
		}
		rel, ok := lr.live.catalog.Relation(op.InputRelations[0])
		if !ok || len(rel.Blocks) == 0 {
			return nil
		}
		return rel.Blocks[idx%len(rel.Blocks)]
	}
	// Non-leaf: draw from the "main" (last, pipelining) child's outputs.
	child := op.Children()[len(op.Children())-1].Child
	cs := lr.opState(q.ID, child.ID)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.outputs) == 0 {
		return nil
	}
	return cs.outputs[idx%len(cs.outputs)]
}

// keyColumn picks the operator's key column index in a block: the first
// declared column present that the kernels can key on (an int column,
// or a dictionary-coded string column whose codes preserve string
// order), else the first such column in the schema.
func keyColumn(op *plan.Operator, b *storage.Block) int {
	keyable := func(i int) bool {
		switch b.Schema.Columns[i].Type {
		case storage.Int64Col:
			return true
		case storage.StringCol:
			v := &b.Vectors[i]
			return v.Codes != nil && v.Dict != nil
		}
		return false
	}
	for _, c := range op.Columns {
		if i := b.Schema.ColumnIndex(c); i >= 0 && keyable(i) {
			return i
		}
	}
	for i := range b.Schema.Columns {
		if keyable(i) {
			return i
		}
	}
	return -1
}

// intKeyColumn is keyColumn restricted to integer columns. The
// selectivity fallback in selectPredicate realizes its estimate as an
// integer range filter, which has no meaning over dictionary codes —
// restricting it keeps the fallback's behavior identical to the
// pre-dictionary engine (pass through blocks with no int column).
func intKeyColumn(op *plan.Operator, b *storage.Block) int {
	for _, c := range op.Columns {
		if i := b.Schema.ColumnIndex(c); i >= 0 && b.Schema.Columns[i].Type == storage.Int64Col {
			return i
		}
	}
	for i, c := range b.Schema.Columns {
		if c.Type == storage.Int64Col {
			return i
		}
	}
	return -1
}

// keyVec returns the int64 key vector of a keyColumn pick: the Ints of
// an integer column, or the Codes of a dictionary-coded string column
// (with its dictionary). The dictionary is sorted, so code order is
// string order and the integer kernels compute string semantics.
func keyVec(b *storage.Block, col int) ([]int64, *storage.Dictionary) {
	v := &b.Vectors[col]
	if v.Ints != nil {
		return v.Ints, nil
	}
	if v.Codes != nil && v.Dict != nil {
		return v.Codes, v.Dict
	}
	return nil, nil
}

// runWorkOrder executes one (operator, block) unit and returns the rows
// it produced.
func (lr *liveRun) runWorkOrder(q *QueryState, op *plan.Operator, st *liveOpState, idx int) int {
	// FinalizeAggregate consumes its child's aggregate state, not its
	// output blocks, so it bypasses the block-input path.
	if op.Type == plan.FinalizeAggregate {
		lr.kernels.finalize.Inc()
		return lr.runFinalize(q, op, st)
	}
	// Count the work order against its kernel before fetching input, so
	// the per-kernel counters sum to the engine's work-order total even
	// when a work order draws an empty block.
	switch op.Type {
	case plan.Select:
		lr.kernels.sel.Inc()
	case plan.BuildHash:
		lr.kernels.build.Inc()
	case plan.ProbeHash, plan.IndexNestedLoopJoin, plan.MergeJoin, plan.NestedLoopJoin:
		lr.kernels.probe.Inc()
	case plan.Aggregate, plan.Distinct, plan.Window:
		lr.kernels.aggregate.Inc()
	case plan.Sort, plan.TopK:
		lr.kernels.sortk.Inc()
	default:
		lr.kernels.passthrough.Inc()
	}
	in := lr.inputBlock(q, op, st, idx)
	if in == nil || in.NumRows() == 0 {
		return 0
	}
	switch op.Type {
	case plan.Select:
		return lr.runSelect(q, op, st, in)
	case plan.BuildHash:
		return lr.runBuild(op, st, in)
	case plan.ProbeHash, plan.IndexNestedLoopJoin, plan.MergeJoin, plan.NestedLoopJoin:
		return lr.runProbe(q, op, st, in)
	case plan.Aggregate, plan.Distinct, plan.Window:
		return lr.runAggregate(op, st, in)
	case plan.Sort, plan.TopK:
		return lr.runSort(q, op, st, in)
	default:
		// Pass-through operators reference the input block unchanged:
		// columnar blocks are immutable here.
		st.mu.Lock()
		st.outputs = append(st.outputs, in)
		st.mu.Unlock()
		return in.NumRows()
	}
}

// selectPredicate resolves the effective predicate and column of a
// Select work order over one block, shared by the scalar and vectorized
// paths.
func selectPredicate(op *plan.Operator, in *storage.Block) (plan.Predicate, int) {
	pred := op.Pred
	col := -1
	if pred.Column != "" {
		col = in.Schema.ColumnIndex(pred.Column)
	}
	if col < 0 || pred.Kind == plan.PredNone {
		// Benchmark templates carry selectivities rather than literal
		// predicates; realize the estimate as a range filter over the
		// key column so live cardinalities track the optimizer's.
		col = intKeyColumn(op, in)
		pred = plan.Predicate{Kind: plan.PredIntLess, Operand: int64(op.Selectivity * 1000)}
	}
	return pred, col
}

func (lr *liveRun) runSelect(q *QueryState, op *plan.Operator, st *liveOpState, in *storage.Block) int {
	pred, col := selectPredicate(op, in)
	if col < 0 {
		st.mu.Lock()
		st.outputs = append(st.outputs, in)
		st.mu.Unlock()
		return in.NumRows()
	}
	if lr.scalar {
		return lr.runSelectScalar(pred, col, st, in)
	}
	return lr.runSelectVector(q, op, pred, col, st, in)
}

// runSelectScalar is the retained per-row path: loop-invariant work is
// hoisted (the row count is read once, the predicate kind, column
// vector, and — for coded strings — the dictionary are dispatched once
// per block instead of per row through evalPred), but every work order
// still allocates its kept-row list and a fresh materialized block, and
// string predicates over coded columns still decode and compare the
// string per row, which is the honest pre-dictionary cost.
func (lr *liveRun) runSelectScalar(pred plan.Predicate, col int, st *liveOpState, in *storage.Block) int {
	n := in.NumRows()
	kept := make([]int, 0, n)
	vec := &in.Vectors[col]
	switch pred.Kind {
	case plan.PredIntLess:
		if vals := vec.Ints; vals != nil {
			for i, v := range vals[:n] {
				if v < pred.Operand {
					kept = append(kept, i)
				}
			}
		}
	case plan.PredIntGreaterEq:
		if vals := vec.Ints; vals != nil {
			for i, v := range vals[:n] {
				if v >= pred.Operand {
					kept = append(kept, i)
				}
			}
		}
	case plan.PredIntEq:
		if vals := vec.Ints; vals != nil {
			for i, v := range vals[:n] {
				if v == pred.Operand {
					kept = append(kept, i)
				}
			}
		}
	case plan.PredFloatLess:
		if vals := vec.Floats; vals != nil {
			for i, v := range vals[:n] {
				if v < pred.FOperand {
					kept = append(kept, i)
				}
			}
		}
	case plan.PredStringEq:
		if vals := vec.Strings; vals != nil {
			for i, v := range vals[:n] {
				if v == pred.SOperand {
					kept = append(kept, i)
				}
			}
		} else if codes := vec.Codes; codes != nil && vec.Dict != nil {
			dict := vec.Dict
			for i, c := range codes[:n] {
				if dict.Value(c) == pred.SOperand {
					kept = append(kept, i)
				}
			}
		}
	default:
		for i := 0; i < n; i++ {
			kept = append(kept, i)
		}
	}
	out := projectRows(in, kept)
	st.mu.Lock()
	st.outputs = append(st.outputs, out)
	st.mu.Unlock()
	return len(kept)
}

// evalPred is the original per-row predicate evaluation, kept as the
// reference semantics for the scalar/vector differential tests.
func evalPred(p plan.Predicate, v *storage.ColumnVector, i int) bool {
	switch p.Kind {
	case plan.PredIntLess:
		return v.Ints != nil && v.Ints[i] < p.Operand
	case plan.PredIntGreaterEq:
		return v.Ints != nil && v.Ints[i] >= p.Operand
	case plan.PredIntEq:
		return v.Ints != nil && v.Ints[i] == p.Operand
	case plan.PredFloatLess:
		return v.Floats != nil && v.Floats[i] < p.FOperand
	case plan.PredStringEq:
		if v.Strings != nil {
			return v.Strings[i] == p.SOperand
		}
		return v.Codes != nil && v.Dict != nil && v.Dict.Value(v.Codes[i]) == p.SOperand
	default:
		return true
	}
}

// projectRows materializes the kept row indices of a block with fresh
// allocations — the scalar path's materialization. A dictionary-coded
// string column stays coded (the dictionary is relation-wide state, not
// something a row projection re-derives).
func projectRows(in *storage.Block, rows []int) *storage.Block {
	out := &storage.Block{
		Header:  storage.BlockHeader{BlockID: in.Header.BlockID, Relation: in.Header.Relation, Rows: len(rows)},
		Schema:  in.Schema,
		Vectors: make([]storage.ColumnVector, len(in.Vectors)),
	}
	for ci := range in.Vectors {
		src := &in.Vectors[ci]
		dst := &out.Vectors[ci]
		switch {
		case src.Ints != nil:
			dst.Ints = make([]int64, len(rows))
			for i, r := range rows {
				dst.Ints[i] = src.Ints[r]
			}
		case src.Floats != nil:
			dst.Floats = make([]float64, len(rows))
			for i, r := range rows {
				dst.Floats[i] = src.Floats[r]
			}
		case src.Codes != nil:
			dst.Codes = make([]int64, len(rows))
			for i, r := range rows {
				dst.Codes[i] = src.Codes[r]
			}
			dst.Dict = src.Dict
		case src.Strings != nil:
			dst.Strings = make([]string, len(rows))
			for i, r := range rows {
				dst.Strings[i] = src.Strings[r]
			}
		}
	}
	return out
}

func (lr *liveRun) runBuild(op *plan.Operator, st *liveOpState, in *storage.Block) int {
	col := keyColumn(op, in)
	if col < 0 {
		return 0
	}
	keys, dict := keyVec(in, col)
	if keys == nil {
		return 0
	}
	st.mu.Lock()
	if lr.scalar {
		if dict == nil {
			if st.hash == nil {
				st.hash = make(map[int64]int, len(keys))
			}
			for _, k := range keys {
				st.hash[k]++
			}
		} else {
			// Honest scalar string build: the pre-dictionary engine keyed
			// its map by the strings, so decode each row and pay the
			// string hashing cost per insert.
			if st.hashStr == nil {
				st.hashStr = make(map[string]int, len(keys))
			}
			for _, c := range keys {
				st.hashStr[dict.Value(c)]++
			}
		}
	} else {
		if st.vhash == nil {
			st.vhash = exec.NewRadixTable(len(keys))
		}
		st.vhash.AddBatch(keys)
		if dict != nil {
			st.vhash.SetDict(dict)
		}
	}
	st.outputs = append(st.outputs, in)
	st.mu.Unlock()
	return len(keys)
}

// buildChildState finds a probe operator's build-side input: the
// explicit BuildHash child when the plan has one, else the first
// blocking child. Preferring BuildHash matters for multi-child probes —
// a plan can feed another blocking child (say a Sort on the probe side)
// into the join ahead of the BuildHash in the child list, and probing
// that child's never-built table would silently match nothing.
func (lr *liveRun) buildChildState(q *QueryState, op *plan.Operator) *liveOpState {
	var pick *plan.Operator
	for _, e := range op.Children() {
		if e.Child.Type == plan.BuildHash {
			pick = e.Child
			break
		}
	}
	if pick == nil {
		for _, e := range op.Children() {
			if !e.NonPipelineBreaking {
				pick = e.Child
				break
			}
		}
	}
	if pick == nil {
		return nil
	}
	return lr.opState(q.ID, pick.ID)
}

func (lr *liveRun) runProbe(q *QueryState, op *plan.Operator, st *liveOpState, in *storage.Block) int {
	build := lr.buildChildState(q, op)
	col := keyColumn(op, in)
	if col < 0 {
		return 0
	}
	if keys, _ := keyVec(in, col); keys == nil {
		return 0
	}
	if lr.scalar {
		return lr.runProbeScalar(build, st, in, col)
	}
	return lr.runProbeVector(q, op, build, st, in, col)
}

func (lr *liveRun) runProbeScalar(build, st *liveOpState, in *storage.Block, col int) int {
	matched := make([]int, 0, in.NumRows())
	keys, dict := keyVec(in, col)
	if build != nil {
		// Probe under the build-side lock. The scheduler only activates
		// a probe after its build input completed (the edge is pipeline-
		// breaking), so the lock is uncontended in engine runs — but a
		// bare read of the map would race if build and probe work orders
		// ever overlapped, and the lock makes the executor safe under
		// any interleaving, not just the scheduled one.
		build.mu.Lock()
		if dict == nil {
			if build.hash != nil {
				for i, k := range keys {
					if build.hash[k] > 0 {
						matched = append(matched, i)
					}
				}
			}
		} else if build.hashStr != nil {
			// Honest scalar string join: the code vector and dictionary
			// are hoisted out of the loop, but each row still decodes its
			// key and does a string-keyed map lookup — the per-row cost a
			// string join pays without dictionary codes.
			for i, c := range keys {
				if build.hashStr[dict.Value(c)] > 0 {
					matched = append(matched, i)
				}
			}
		}
		build.mu.Unlock()
	}
	out := projectRows(in, matched)
	st.mu.Lock()
	st.outputs = append(st.outputs, out)
	st.mu.Unlock()
	return len(matched)
}

func (lr *liveRun) runAggregate(op *plan.Operator, st *liveOpState, in *storage.Block) int {
	col := keyColumn(op, in)
	var keys []int64
	if col >= 0 {
		keys, _ = keyVec(in, col)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if lr.scalar {
		if st.aggState == nil {
			st.aggState = make(map[int64]float64)
		}
		if keys == nil {
			st.aggState[0] += float64(in.NumRows())
			return 1
		}
		for _, k := range keys {
			st.aggState[k]++
		}
		return len(st.aggState)
	}
	if st.vagg == nil {
		st.vagg = lr.getAggTable()
	}
	if keys == nil {
		st.vagg.Add(0, float64(in.NumRows()))
		return 1
	}
	st.vagg.AddOnes(keys)
	return st.vagg.Len()
}

// aggOutSchema is the fixed output schema of FinalizeAggregate, hoisted
// to package scope so finalize work orders don't rebuild (and
// re-allocate) it per call — pool recycling also needs the pointer
// stable across runs.
var aggOutSchema = storage.MustSchema(
	storage.Column{Name: "group", Type: storage.Int64Col},
	storage.Column{Name: "value", Type: storage.Float64Col},
)

func (lr *liveRun) runFinalize(q *QueryState, op *plan.Operator, st *liveOpState) int {
	child := op.Children()[0].Child
	cs := lr.opState(q.ID, child.ID)
	cs.mu.Lock()
	if cs.vagg != nil {
		// Vector path: export straight into a pooled block's vectors, so
		// steady-state finalize reuses the previous query's backing arrays.
		groups := cs.vagg.Len()
		out := lr.pool.Get(aggOutSchema, groups)
		keys, vals := cs.vagg.Export(out.Vectors[0].Ints[:0], out.Vectors[1].Floats[:0])
		cs.mu.Unlock()
		out.Vectors[0].Ints, out.Vectors[1].Floats = keys, vals
		out.Header.Relation = "agg:" + q.Plan.QueryName
		lr.emitPooled(st, out)
		return groups
	}
	keys := make([]int64, 0, len(cs.aggState))
	vals := make([]float64, 0, len(cs.aggState))
	for k, v := range cs.aggState {
		keys = append(keys, k)
		vals = append(vals, v)
	}
	cs.mu.Unlock()
	groups := len(keys)
	out := &storage.Block{
		Header:  storage.BlockHeader{Relation: "agg:" + q.Plan.QueryName, Rows: groups},
		Schema:  aggOutSchema,
		Vectors: []storage.ColumnVector{{Ints: keys}, {Floats: vals}},
	}
	st.mu.Lock()
	st.outputs = append(st.outputs, out)
	st.mu.Unlock()
	return groups
}

func (lr *liveRun) runSort(q *QueryState, op *plan.Operator, st *liveOpState, in *storage.Block) int {
	col := keyColumn(op, in)
	var keys []int64
	var dict *storage.Dictionary
	if col >= 0 {
		keys, dict = keyVec(in, col)
	}
	if keys == nil {
		st.mu.Lock()
		st.outputs = append(st.outputs, in)
		st.mu.Unlock()
		return in.NumRows()
	}
	if lr.scalar {
		return lr.runSortScalar(st, in, keys, dict)
	}
	return lr.runSortVector(q, op, st, in, keys)
}

func (lr *liveRun) runSortScalar(st *liveOpState, in *storage.Block, keys []int64, dict *storage.Dictionary) int {
	order := make([]int, in.NumRows())
	for i := range order {
		order[i] = i
	}
	// Ties order by row index so the output is a deterministic total
	// order — the same contract the vectorized sort kernel keeps, which
	// is what lets the differential tests compare exact output order.
	if dict == nil {
		sort.Slice(order, func(a, b int) bool {
			ka, kb := keys[order[a]], keys[order[b]]
			if ka != kb {
				return ka < kb
			}
			return order[a] < order[b]
		})
	} else {
		// Honest scalar string sort: the code vector and dictionary are
		// hoisted out of the comparator, but each comparison still
		// decodes and compares the strings — the pre-dictionary cost.
		// The dictionary is sorted, so this agrees with code order and
		// the differential tests can compare exact output order.
		sort.Slice(order, func(a, b int) bool {
			sa, sb := dict.Value(keys[order[a]]), dict.Value(keys[order[b]])
			if sa != sb {
				return sa < sb
			}
			return order[a] < order[b]
		})
	}
	out := projectRows(in, order)
	st.mu.Lock()
	st.outputs = append(st.outputs, out)
	st.mu.Unlock()
	return in.NumRows()
}

// Validate checks the catalog has every base relation the plans need.
func (lv *Live) Validate(plans []*plan.Plan) error {
	for _, p := range plans {
		for _, op := range p.Leaves() {
			for _, rel := range op.InputRelations {
				if _, ok := lv.catalog.Relation(rel); !ok {
					return fmt.Errorf("engine: plan %q needs relation %q not in catalog", p.QueryName, rel)
				}
			}
		}
	}
	return nil
}
