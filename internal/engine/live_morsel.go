package engine

import (
	"sync"

	"repro/internal/plan"
)

// Morsel-style intra-work-order parallelism. The scheduler's unit of
// dispatch stays the work order — its accounting, QueryObserver joins,
// and per-operator counters are untouched — but a large work order may
// split its row range into morsels and recruit idle worker threads to
// run them concurrently. Helpers are borrowed from a run-wide token
// gate sized at Threads-1, acquired non-blockingly: when every worker
// is busy a work order simply runs unsplit, so morsels only convert
// idle capacity into intra-order parallelism and never delay peer work
// orders. Each morsel writes a disjoint sub-range of the work order's
// selection vector (or pair array), and the driver stitches results
// back in ascending row order, keeping output bit-identical to the
// unsplit execution regardless of how many helpers were available.

// morselMinRows is the smallest row range worth a helper goroutine;
// below 2*morselMinRows a work order never splits.
const morselMinRows = 2048

// maxMorselParts bounds the split fan-out of one work order. NewLive
// clamps the configured bound to it, so per-morsel counters can live in
// fixed arrays on the stack.
const maxMorselParts = 8

// morselSpan returns the half-open row range of morsel p of parts over
// n rows.
func morselSpan(p, parts, n int) (lo, hi int) {
	return p * n / parts, (p + 1) * n / parts
}

// splitParts decides how many morsels an n-row work order splits into
// under the run's bound; 1 means run unsplit.
func (lr *liveRun) splitParts(n int) int {
	if lr.morsels <= 1 || n < 2*morselMinRows {
		return 1
	}
	parts := n / morselMinRows
	if parts > lr.morsels {
		parts = lr.morsels
	}
	return parts
}

// acquireHelpers takes up to want helper tokens without blocking; a nil
// gate (morsels off, bare tests) yields zero.
func (lr *liveRun) acquireHelpers(want int) int {
	got := 0
	for got < want {
		select {
		case <-lr.morselGate:
			got++
		default:
			return got
		}
	}
	return got
}

func (lr *liveRun) releaseHelpers(n int) {
	for i := 0; i < n; i++ {
		lr.morselGate <- struct{}{}
	}
}

// runMorsels executes fn over [0,n) split into morsels, one goroutine
// per borrowed helper plus the calling worker, and returns the achieved
// parallelism (the part count; 1 = ran unsplit). fn must write only
// state owned by its row range. Callers should check splitParts first
// and keep a closure-free serial path — the returned parallelism feeds
// notePar so the cost model can convert wall time back to serial work.
func (lr *liveRun) runMorsels(n int, fn func(part, lo, hi int)) int {
	parts := lr.splitParts(n)
	if parts > 1 {
		helpers := lr.acquireHelpers(parts - 1)
		parts = helpers + 1
	}
	if parts == 1 {
		fn(0, 0, n)
		return 1
	}
	var wg sync.WaitGroup
	wg.Add(parts - 1)
	for p := 0; p < parts-1; p++ {
		lo, hi := morselSpan(p, parts, n)
		go func(p, lo, hi int) {
			defer wg.Done()
			fn(p, lo, hi)
		}(p, lo, hi)
	}
	lo, hi := morselSpan(parts-1, parts, n)
	fn(parts-1, lo, hi)
	wg.Wait()
	lr.releaseHelpers(parts - 1)
	lr.morselSplits.Inc()
	lr.morselHelpers.Add(int64(parts - 1))
	return parts
}

// notePar reports a work order's achieved morsel parallelism to the
// run's cost estimator (see costmodel.ObserveParallelism), so O-DUR
// keeps predicting wall time when helper availability fluctuates. Keys
// that never split are never reported, leaving their estimator state
// bit-identical to the pre-morsel engine.
func (lr *liveRun) notePar(q *QueryState, op *plan.Operator, par int) {
	if lr.morselGate == nil || lr.estimator == nil || q == nil {
		return
	}
	lr.estMu.Lock()
	lr.estimator.ObserveParallelism(opKey(q.ID, op.ID), float64(par))
	lr.estMu.Unlock()
}

// compactSel stitches the per-morsel kept prefixes of a shared
// selection vector (morsel p wrote counts[p] kept rows at the start of
// its sub-range) into one dense ascending prefix and returns it.
// Morsels emit ascending absolute indices within disjoint ascending
// ranges, so the concatenation is the exact selection the unsplit
// kernel would have produced.
func compactSel(sel []int, counts *[maxMorselParts]int, parts, n int) []int {
	kept := counts[0]
	for p := 1; p < parts; p++ {
		lo, _ := morselSpan(p, parts, n)
		copy(sel[kept:], sel[lo:lo+counts[p]])
		kept += counts[p]
	}
	return sel[:kept]
}
