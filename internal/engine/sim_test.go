package engine

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/plan"
)

// chainPlan builds scan -> select -> select -> agg -> finalize.
func chainPlan(name string, blocks int) *plan.Plan {
	b := plan.NewBuilder(name)
	scan := b.Add(&plan.Operator{Type: plan.TableScan, EstBlocks: blocks})
	s1 := b.Add(&plan.Operator{Type: plan.Select, EstBlocks: blocks})
	b.ConnectAuto(scan, s1)
	s2 := b.Add(&plan.Operator{Type: plan.Select, EstBlocks: blocks})
	b.ConnectAuto(s1, s2)
	agg := b.Add(&plan.Operator{Type: plan.Aggregate, EstBlocks: blocks})
	b.ConnectAuto(s2, agg)
	fin := b.Add(&plan.Operator{Type: plan.FinalizeAggregate, EstBlocks: 1})
	b.ConnectAuto(agg, fin)
	return b.MustBuild()
}

// joinPlan builds two scans joined by build/probe then aggregated.
func joinPlan(name string, leftBlocks, rightBlocks int) *plan.Plan {
	b := plan.NewBuilder(name)
	l := b.Add(&plan.Operator{Type: plan.TableScan, EstBlocks: leftBlocks})
	r := b.Add(&plan.Operator{Type: plan.TableScan, EstBlocks: rightBlocks})
	build := b.Add(&plan.Operator{Type: plan.BuildHash, EstBlocks: leftBlocks})
	b.ConnectAuto(l, build)
	probe := b.Add(&plan.Operator{Type: plan.ProbeHash, EstBlocks: rightBlocks})
	b.Connect(build, probe, false)
	b.Connect(r, probe, true)
	agg := b.Add(&plan.Operator{Type: plan.Aggregate, EstBlocks: rightBlocks})
	b.ConnectAuto(probe, agg)
	fin := b.Add(&plan.Operator{Type: plan.FinalizeAggregate, EstBlocks: 1})
	b.ConnectAuto(agg, fin)
	return b.MustBuild()
}

// greedyTestSched activates every schedulable root with full pipelining
// and an even thread split — a minimal well-behaved scheduler for tests.
type greedyTestSched struct{ depth int }

func (greedyTestSched) Name() string { return "greedy-test" }

func (g greedyTestSched) OnEvent(st *State, _ Event) []Decision {
	var ds []Decision
	n := len(st.Queries)
	if n == 0 {
		return nil
	}
	share := st.TotalThreads() / n
	if share < 1 {
		share = 1
	}
	for _, q := range st.Queries {
		for _, root := range q.SchedulableRoots() {
			ds = append(ds, Decision{QueryID: q.ID, RootOpID: root.ID, PipelineDepth: g.depth, Threads: share})
		}
	}
	return ds
}

func TestSimSingleQueryCompletes(t *testing.T) {
	sim := NewSim(SimConfig{Threads: 4, Seed: 1})
	res, err := sim.Run(greedyTestSched{depth: 4}, []Arrival{{Plan: chainPlan("q", 8), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1 {
		t.Fatalf("expected 1 completed query, got %d", len(res.Durations))
	}
	if res.Durations[0] <= 0 {
		t.Fatalf("non-positive duration %v", res.Durations[0])
	}
	// 8+8+8+8+1 = 33 work orders.
	if res.WorkOrders != 33 {
		t.Fatalf("expected 33 work orders, got %d", res.WorkOrders)
	}
}

func TestSimJoinPlanRespectsBlocking(t *testing.T) {
	sim := NewSim(SimConfig{Threads: 2, Seed: 2})
	res, err := sim.Run(greedyTestSched{depth: 3}, []Arrival{{Plan: joinPlan("j", 4, 6), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1 {
		t.Fatalf("join query did not complete")
	}
}

func TestSimMultiQueryAllComplete(t *testing.T) {
	var arrivals []Arrival
	rng := rand.New(rand.NewSource(3))
	at := 0.0
	for i := 0; i < 12; i++ {
		at += rng.ExpFloat64() * 2
		p := chainPlan("c", 3+rng.Intn(6))
		if i%2 == 0 {
			p = joinPlan("j", 2+rng.Intn(4), 3+rng.Intn(5))
		}
		arrivals = append(arrivals, Arrival{Plan: p, At: at})
	}
	sim := NewSim(SimConfig{Threads: 4, Seed: 4, NoiseFrac: 0.2})
	res, err := sim.Run(greedyTestSched{depth: 2}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 12 {
		t.Fatalf("expected 12 completions, got %d", len(res.Durations))
	}
	for id, d := range res.Durations {
		if d <= 0 {
			t.Errorf("query %d duration %v", id, d)
		}
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestSimDeterministic(t *testing.T) {
	run := func() *SimResult {
		var arrivals []Arrival
		for i := 0; i < 6; i++ {
			arrivals = append(arrivals, Arrival{Plan: joinPlan("j", 3, 4), At: float64(i)})
		}
		sim := NewSim(SimConfig{Threads: 3, Seed: 42, NoiseFrac: 0.3})
		res, err := sim.Run(greedyTestSched{depth: 2}, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	for id := range a.Durations {
		if a.Durations[id] != b.Durations[id] {
			t.Fatalf("nondeterministic duration for query %d", id)
		}
	}
}

func TestSimPipeliningShortensChainPlan(t *testing.T) {
	run := func(depth int) float64 {
		sim := NewSim(SimConfig{Threads: 2, Seed: 7})
		res, err := sim.Run(greedyTestSched{depth: depth}, []Arrival{{Plan: chainPlan("q", 16), At: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Durations[0]
	}
	noPipe := run(0)
	pipe := run(4)
	if pipe >= noPipe {
		t.Fatalf("pipelined run (%v) not faster than unpipelined (%v)", pipe, noPipe)
	}
}

func TestSimThrashingPenalizesOverPipelining(t *testing.T) {
	// With a tiny buffer, activating many memory-heavy operators at once
	// must slow execution down.
	cm := DefaultCostModel()
	cm.BufferCapacity = 2
	cm.ThrashFactor = 3
	var arrivals []Arrival
	for i := 0; i < 4; i++ {
		arrivals = append(arrivals, Arrival{Plan: chainPlan("q", 8), At: 0})
	}
	run := func(depth int) float64 {
		sim := NewSim(SimConfig{Threads: 4, Seed: 11, Cost: cm})
		res, err := sim.Run(greedyTestSched{depth: depth}, arrivals)
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	aggressive := run(4)
	conservative := run(0)
	if aggressive <= conservative {
		t.Fatalf("aggressive pipelining (%v) should thrash vs conservative (%v) under tiny buffer", aggressive, conservative)
	}
}

func TestSimStallDetection(t *testing.T) {
	// A scheduler that never schedules anything must be reported as
	// stalled, not loop forever.
	sim := NewSim(SimConfig{Threads: 2, Seed: 5})
	_, err := sim.Run(nopSched{}, []Arrival{{Plan: chainPlan("q", 4), At: 0}})
	if err == nil {
		t.Fatal("expected stall error")
	}
}

type nopSched struct{}

func (nopSched) Name() string                     { return "nop" }
func (nopSched) OnEvent(*State, Event) []Decision { return nil }

func TestSimThreadGrantLimitsParallelism(t *testing.T) {
	// With 8 threads but a grant of 1, a single query must take roughly
	// serial time.
	single := func(grant int) float64 {
		sched := grantSched{grant: grant}
		sim := NewSim(SimConfig{Threads: 8, Seed: 13})
		res, err := sim.Run(&sched, []Arrival{{Plan: chainPlan("q", 16), At: 0}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Durations[0]
	}
	serial := single(1)
	parallel := single(8)
	if parallel >= serial {
		t.Fatalf("8-thread grant (%v) not faster than 1-thread grant (%v)", parallel, serial)
	}
	if serial/parallel < 2 {
		t.Fatalf("expected at least 2x speedup, got %vx", serial/parallel)
	}
}

type grantSched struct{ grant int }

func (*grantSched) Name() string { return "grant-test" }
func (g *grantSched) OnEvent(st *State, _ Event) []Decision {
	var ds []Decision
	for _, q := range st.Queries {
		for _, root := range q.SchedulableRoots() {
			ds = append(ds, Decision{QueryID: q.ID, RootOpID: root.ID, PipelineDepth: 0, Threads: g.grant})
		}
	}
	return ds
}

func TestSimResultAvgDuration(t *testing.T) {
	r := &SimResult{Durations: map[int]float64{0: 2, 1: 4}}
	if got := r.AvgDuration(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("AvgDuration = %v, want 3", got)
	}
	empty := &SimResult{Durations: map[int]float64{}}
	if empty.AvgDuration() != 0 {
		t.Fatal("empty AvgDuration should be 0")
	}
}
