//go:build !race

package engine

// raceEnabled reports whether the race detector is compiled in; the
// allocation-budget tests skip under it (instrumentation allocates).
const raceEnabled = false
