package engine

import (
	"testing"

	"repro/internal/plan"
	"repro/internal/storage"
)

// liveCatalog builds a small catalog with one relation of known content.
func liveCatalog(t *testing.T, name string, rows, blockRows int) *storage.Catalog {
	t.Helper()
	gen := storage.NewGenerator(7)
	rel, err := gen.Relation(name, rows, blockRows, []storage.GenSpec{
		{Column: storage.Column{Name: "id", Type: storage.Int64Col}, Sequential: true},
		{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 100},
		{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	if err := cat.Register(rel); err != nil {
		t.Fatal(err)
	}
	return cat
}

// livePlan: scan -> select(id < 500) -> aggregate -> finalize.
func livePlan(blocks int) *plan.Plan {
	b := plan.NewBuilder("live-q")
	scan := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"t"}, EstBlocks: blocks})
	sel := b.Add(&plan.Operator{
		Type: plan.Select, InputRelations: []string{"t"}, EstBlocks: blocks,
		Pred: plan.Predicate{Kind: plan.PredIntLess, Column: "id", Operand: 500},
	})
	b.ConnectAuto(scan, sel)
	agg := b.Add(&plan.Operator{Type: plan.Aggregate, InputRelations: []string{"t"}, EstBlocks: blocks, Columns: []string{"key"}})
	b.ConnectAuto(sel, agg)
	fin := b.Add(&plan.Operator{Type: plan.FinalizeAggregate, InputRelations: []string{"t"}, EstBlocks: 1})
	b.ConnectAuto(agg, fin)
	return b.MustBuild()
}

func TestLiveExecutesRealData(t *testing.T) {
	cat := liveCatalog(t, "t", 1000, 250) // 4 blocks
	lv := NewLive(cat, LiveConfig{Threads: 2})
	if err := lv.Validate([]*plan.Plan{livePlan(4)}); err != nil {
		t.Fatal(err)
	}
	res, err := lv.Run(greedyTestSched{depth: 2}, []Arrival{{Plan: livePlan(4), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1 {
		t.Fatalf("query did not complete: %v", res.Durations)
	}
	// The finalize output is one row per distinct key among ids < 500.
	// With cardinality 100 and 500 kept rows, nearly all keys appear.
	rows := res.OutputRows[0]
	if rows < 50 || rows > 100 {
		t.Fatalf("finalize produced %d groups, want ~100", rows)
	}
	if res.WorkOrders != 4+4+4+1 {
		t.Fatalf("work orders = %d, want 13", res.WorkOrders)
	}
	if len(res.OpDurations) == 0 {
		t.Fatal("no per-op durations recorded")
	}
}

func TestLiveHashJoinMatches(t *testing.T) {
	// Build side and probe side share the key space, so probes must
	// find matches.
	gen := storage.NewGenerator(9)
	build, err := gen.Relation("build", 400, 100, []storage.GenSpec{
		{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	probe, err := gen.Relation("probe", 800, 100, []storage.GenSpec{
		{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := storage.NewCatalog()
	if err := cat.Register(build); err != nil {
		t.Fatal(err)
	}
	if err := cat.Register(probe); err != nil {
		t.Fatal(err)
	}

	b := plan.NewBuilder("live-join")
	l := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"build"}, EstBlocks: 4})
	r := b.Add(&plan.Operator{Type: plan.TableScan, InputRelations: []string{"probe"}, EstBlocks: 8})
	bh := b.Add(&plan.Operator{Type: plan.BuildHash, InputRelations: []string{"build"}, EstBlocks: 4, Columns: []string{"key"}})
	b.ConnectAuto(l, bh)
	ph := b.Add(&plan.Operator{Type: plan.ProbeHash, InputRelations: []string{"build", "probe"}, EstBlocks: 8, Columns: []string{"key"}})
	b.Connect(bh, ph, false)
	b.Connect(r, ph, true)
	p := b.MustBuild()

	lv := NewLive(cat, LiveConfig{Threads: 2})
	res, err := lv.Run(greedyTestSched{depth: 1}, []Arrival{{Plan: p, At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// All 50 keys are built, so every probe row matches.
	if rows := res.OutputRows[0]; rows != 800 {
		t.Fatalf("probe matched %d rows, want 800", rows)
	}
}

func TestLiveMatchesSimScheduleSemantics(t *testing.T) {
	// The same scheduler must complete the same plan on both engines.
	cat := liveCatalog(t, "t", 500, 250)
	p := livePlan(2)
	lv := NewLive(cat, LiveConfig{Threads: 2})
	lres, err := lv.Run(greedyTestSched{depth: 1}, []Arrival{{Plan: p.Clone(), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim(SimConfig{Threads: 2, Seed: 3})
	sres, err := sim.Run(greedyTestSched{depth: 1}, []Arrival{{Plan: p.Clone(), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if lres.WorkOrders != sres.WorkOrders {
		t.Fatalf("live executed %d WOs, sim %d", lres.WorkOrders, sres.WorkOrders)
	}
}
