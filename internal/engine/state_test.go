package engine

import (
	"testing"

	"repro/internal/plan"
)

func TestSchedulableRootsRespectBlocking(t *testing.T) {
	p := joinPlan("j", 2, 3)
	q := newQueryState(0, p, 0)
	roots := q.SchedulableRoots()
	// Only the two scans are schedulable initially.
	if len(roots) != 2 {
		t.Fatalf("initial roots %d, want 2 (the scans)", len(roots))
	}
	for _, r := range roots {
		if r.Type != plan.TableScan {
			t.Fatalf("unexpected initial root %v", r.Type)
		}
	}
	// Complete the left scan and the build: probe still blocked until
	// the build is done AND the right scan is done or probe pipelines
	// from it. Mark left scan done.
	q.OpStates[0].Done = true
	roots = q.SchedulableRoots()
	// Now BuildHash (child of left scan) is schedulable.
	foundBuild := false
	for _, r := range roots {
		if r.Type == plan.BuildHash {
			foundBuild = true
		}
		if r.Type == plan.ProbeHash {
			t.Fatal("probe schedulable before build completed")
		}
	}
	if !foundBuild {
		t.Fatal("build not schedulable after its input finished")
	}
}

func TestPipelineChainStopsAtBreaker(t *testing.T) {
	p := chainPlan("c", 4) // scan, select, select, aggregate, finalize
	q := newQueryState(0, p, 0)
	chain := pipelineChain(q, p.Ops[0], 10)
	// scan -> select -> select, stopping at the aggregate breaker.
	if len(chain) != 3 {
		t.Fatalf("chain %v, want length 3", chain)
	}
	// Depth 1 truncates.
	chain = pipelineChain(q, p.Ops[0], 1)
	if len(chain) != 2 {
		t.Fatalf("depth-1 chain %v, want length 2", chain)
	}
}

func TestPipelineChainRequiresSideInputs(t *testing.T) {
	p := joinPlan("j", 2, 3)
	q := newQueryState(0, p, 0)
	// From the right scan, the probe's build-side input is not done, so
	// the chain must not extend into the probe.
	rightScan := p.Ops[1]
	chain := pipelineChain(q, rightScan, 5)
	if len(chain) != 1 {
		t.Fatalf("chain through probe with missing build: %v", chain)
	}
	// Once the build is done, the chain may extend.
	q.OpStates[2].Done = true // build
	chain = pipelineChain(q, rightScan, 5)
	if len(chain) < 2 {
		t.Fatalf("chain should extend into probe once build is done: %v", chain)
	}
}

func TestAvailableWOsTracksPipelinedProgress(t *testing.T) {
	p := chainPlan("c", 10)
	q := newQueryState(0, p, 0)
	scan, sel := q.OpStates[0], q.OpStates[1]
	scan.Active = true
	sel.Active = true
	sel.Pipelined = true
	if got := sel.availableWOs(q); got != 0 {
		t.Fatalf("pipelined op with idle producer has %d available, want 0", got)
	}
	scan.Completed = 5
	if got := sel.availableWOs(q); got != 5 {
		t.Fatalf("half-done producer exposes %d, want 5", got)
	}
	scan.Completed = 10
	scan.Done = true
	if got := sel.availableWOs(q); got != 10 {
		t.Fatalf("done producer exposes %d, want 10", got)
	}
	sel.Dispatched = 7
	if got := sel.availableWOs(q); got != 3 {
		t.Fatalf("after dispatching 7, %d available, want 3", got)
	}
}

func TestCriticalPathBlocks(t *testing.T) {
	p := joinPlan("j", 2, 8)
	q := newQueryState(0, p, 0)
	// Longest path: rightScan(8) + probe(8) + agg(8) + fin(1) = 25.
	if got := q.CriticalPathBlocks(); got != 25 {
		t.Fatalf("critical path %d, want 25", got)
	}
}

func TestLocalityVector(t *testing.T) {
	st := &State{Threads: []ThreadInfo{
		{ID: 0, LastQuery: 3},
		{ID: 1, LastQuery: -1},
		{ID: 2, LastQuery: 3},
	}}
	q := &QueryState{ID: 3}
	v := st.LocalityVector(q)
	want := []float64{1, 0, 1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("locality %v, want %v", v, want)
		}
	}
}

func TestApplyRejectsIllegalRoot(t *testing.T) {
	// A decision naming a root whose inputs are incomplete must be
	// ignored rather than corrupting availability accounting.
	sim := NewSim(SimConfig{Threads: 2, Seed: 1})
	res, err := sim.Run(illegalRootSched{}, []Arrival{{Plan: chainPlan("c", 2), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1 {
		t.Fatal("query did not complete")
	}
}

// illegalRootSched first tries to activate a non-ready operator, then
// falls back to correct behaviour.
type illegalRootSched struct{}

func (illegalRootSched) Name() string { return "illegal" }
func (illegalRootSched) OnEvent(st *State, _ Event) []Decision {
	var ds []Decision
	for _, q := range st.Queries {
		// Illegal: the sink's inputs are not done at the start.
		ds = append(ds, Decision{QueryID: q.ID, RootOpID: q.Plan.Sink().ID, PipelineDepth: 0, Threads: 2})
		for _, root := range q.SchedulableRoots() {
			ds = append(ds, Decision{QueryID: q.ID, RootOpID: root.ID, PipelineDepth: 0, Threads: 2})
		}
	}
	return ds
}

func TestDecisionThreadsClampedToPool(t *testing.T) {
	sim := NewSim(SimConfig{Threads: 3, Seed: 1})
	huge := grantSched{grant: 1000}
	res, err := sim.Run(&huge, []Arrival{{Plan: chainPlan("c", 4), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1 {
		t.Fatal("query did not complete with oversized grant")
	}
}
