package engine

import (
	"math/rand"
	"testing"
)

// invariantSched wraps a scheduler and asserts engine invariants at
// every scheduling event (i.e. after every dispatch round).
type invariantSched struct {
	t     *testing.T
	sim   *Sim
	inner Scheduler
}

func (s invariantSched) Name() string { return "invariants" }

func (s invariantSched) OnEvent(st *State, ev Event) []Decision {
	for _, q := range st.Queries {
		for _, os := range q.OpStates {
			if os.Dispatched > os.TotalWOs {
				s.t.Fatalf("op %d of q%d dispatched %d of %d work orders", os.Op.ID, q.ID, os.Dispatched, os.TotalWOs)
			}
			if os.Completed > os.Dispatched {
				s.t.Fatalf("op %d of q%d completed %d but dispatched %d", os.Op.ID, q.ID, os.Completed, os.Dispatched)
			}
			if os.Done && os.Completed != os.TotalWOs {
				s.t.Fatalf("op %d of q%d done with %d of %d complete", os.Op.ID, q.ID, os.Completed, os.TotalWOs)
			}
		}
	}
	return s.inner.OnEvent(st, ev)
}

// checkConservation asserts, after a dispatch round, that free workers
// imply every query is either at its grant or has nothing runnable.
func (s invariantSched) checkConservation() {
	st := s.sim.State()
	if st.FreeThreads() == 0 {
		return
	}
	for _, q := range st.Queries {
		if s.sim.runningWOs[q.ID] >= q.AssignedThreads {
			continue
		}
		avail := 0
		for _, opID := range q.activationOrder {
			avail += q.OpStates[opID].availableWOs(q)
		}
		if avail > 0 {
			s.t.Fatalf("t=%v: q%d has %d available work orders, %d/%d running, and %d idle threads",
				st.Now, q.ID, avail, s.sim.runningWOs[q.ID], q.AssignedThreads, st.FreeThreads())
		}
	}
}

func TestEngineInvariantsUnderRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var arrivals []Arrival
	at := 0.0
	for i := 0; i < 20; i++ {
		at += rng.ExpFloat64() * 1.5
		var p = chainPlan("c", 2+rng.Intn(8))
		if i%3 == 1 {
			p = joinPlan("j", 1+rng.Intn(4), 2+rng.Intn(6))
		}
		arrivals = append(arrivals, Arrival{Plan: p, At: at})
	}
	for _, depth := range []int{0, 1, 4} {
		sim := NewSim(SimConfig{Threads: 5, Seed: 99, NoiseFrac: 0.25})
		checked := invariantSched{t: t, sim: sim, inner: greedyTestSched{depth: depth}}
		sim.afterDispatch = checked.checkConservation
		res, err := sim.Run(checked, cloneArrs(arrivals))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Durations) != 20 {
			t.Fatalf("depth %d: completed %d of 20", depth, len(res.Durations))
		}
		for id, d := range res.Durations {
			if d < 0 {
				t.Fatalf("query %d negative duration %v", id, d)
			}
		}
		// Total work orders must equal the sum of plan blocks.
		want := 0
		for _, a := range arrivals {
			for _, op := range a.Plan.Ops {
				want += op.EstBlocks
			}
		}
		if res.WorkOrders != want {
			t.Fatalf("depth %d: executed %d work orders, plans total %d", depth, res.WorkOrders, want)
		}
	}
}

func TestEventTraceMonotonic(t *testing.T) {
	sim := NewSim(SimConfig{Threads: 3, Seed: 5, NoiseFrac: 0.2})
	var arrivals []Arrival
	for i := 0; i < 8; i++ {
		arrivals = append(arrivals, Arrival{Plan: chainPlan("c", 4), At: float64(i) / 2})
	}
	res, err := sim.Run(greedyTestSched{depth: 2}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, tp := range res.EventTrace {
		if tp.Time < prev {
			t.Fatalf("event trace not monotone: %v after %v", tp.Time, prev)
		}
		prev = tp.Time
		if tp.Queries < 0 || tp.Queries > 8 {
			t.Fatalf("implausible live-query count %d", tp.Queries)
		}
	}
	if len(res.EventTrace) != res.SchedInvocations {
		t.Fatalf("trace has %d points for %d invocations", len(res.EventTrace), res.SchedInvocations)
	}
}

func cloneArrs(in []Arrival) []Arrival {
	out := make([]Arrival, len(in))
	for i, a := range in {
		out[i] = Arrival{Plan: a.Plan.Clone(), At: a.At}
	}
	return out
}
