package engine

import "repro/internal/plan"

// CostModel maps a work order to its base duration and memory footprint
// in engine units. The simulator perturbs the duration with noise; the
// live engine ignores this model and measures real execution instead.
type CostModel struct {
	// PerType is the base duration of one work order of each operator
	// kind, before the operator's own CostFactor scaling.
	PerType [plan.NumOpTypes]float64
	// MemPerType is the analogous base memory footprint.
	MemPerType [plan.NumOpTypes]float64
	// PipelineDiscount multiplies the duration of pipelined work orders
	// (they skip intermediate materialization and hit warm caches).
	PipelineDiscount float64
	// LocalityDiscount multiplies the duration when the executing thread
	// last ran the same query.
	LocalityDiscount float64
	// BufferCapacity is the memory budget; exceeding it with concurrently
	// active pipelines causes thrashing.
	BufferCapacity float64
	// ThrashFactor scales the slowdown per unit of buffer over-commit;
	// this is what makes over-aggressive pipelining hurt (§5.3.2).
	ThrashFactor float64
}

// DefaultCostModel returns the cost model used across experiments. The
// relative per-type weights were calibrated against the live engine (see
// engine/live_calibration_test.go): hash builds and sorts are heavy,
// selects and projections light, probes in between.
func DefaultCostModel() *CostModel {
	cm := &CostModel{
		PipelineDiscount: 0.75,
		LocalityDiscount: 0.92,
		BufferCapacity:   600,
		ThrashFactor:     0.9,
	}
	for t := 0; t < plan.NumOpTypes; t++ {
		cm.PerType[t] = 1.0
		cm.MemPerType[t] = 1.0
	}
	set := func(t plan.OpType, dur, mem float64) {
		cm.PerType[t] = dur
		cm.MemPerType[t] = mem
	}
	set(plan.TableScan, 0.6, 1.0)
	set(plan.IndexScan, 0.35, 0.6)
	set(plan.Select, 0.5, 0.8)
	set(plan.Project, 0.3, 0.6)
	set(plan.BuildHash, 1.6, 3.0)
	set(plan.ProbeHash, 1.0, 1.2)
	set(plan.NestedLoopJoin, 2.4, 1.5)
	set(plan.IndexNestedLoopJoin, 0.9, 0.8)
	set(plan.MergeJoin, 1.1, 1.0)
	set(plan.Aggregate, 1.2, 2.0)
	set(plan.FinalizeAggregate, 0.5, 1.0)
	set(plan.Sort, 1.8, 2.5)
	set(plan.Union, 0.4, 0.6)
	set(plan.Materialize, 0.8, 2.0)
	set(plan.TopK, 0.9, 1.2)
	set(plan.Window, 1.4, 1.8)
	set(plan.Distinct, 1.3, 2.2)
	set(plan.Limit, 0.1, 0.2)
	return cm
}

// BaseDuration returns the unperturbed duration of one work order of op.
func (cm *CostModel) BaseDuration(op *plan.Operator) float64 {
	return cm.PerType[op.Type] * op.CostFactor
}

// BaseMemory returns the memory footprint of one work order of op.
func (cm *CostModel) BaseMemory(op *plan.Operator) float64 {
	return cm.MemPerType[op.Type] * op.CostFactor
}
