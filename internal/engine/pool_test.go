package engine

import "testing"

func TestPoolGrowthSpeedsUpRun(t *testing.T) {
	arrivals := func() []Arrival {
		return []Arrival{{Plan: chainPlan("c", 32), At: 0}}
	}
	run := func(changes []ThreadChange) float64 {
		sim := NewSim(SimConfig{Threads: 2, Seed: 1, ThreadChanges: changes})
		res, err := sim.Run(greedyTestSched{depth: 0}, arrivals())
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	static := run(nil)
	grown := run([]ThreadChange{{At: 0.5, Delta: 6}})
	if grown >= static {
		t.Fatalf("pool growth did not help: %v vs %v", grown, static)
	}
}

func TestPoolShrinkStillCompletes(t *testing.T) {
	sim := NewSim(SimConfig{Threads: 8, Seed: 2, ThreadChanges: []ThreadChange{{At: 0.5, Delta: -6}}})
	res, err := sim.Run(greedyTestSched{depth: 1}, []Arrival{
		{Plan: chainPlan("a", 16), At: 0},
		{Plan: joinPlan("b", 4, 8), At: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 2 {
		t.Fatalf("completed %d of 2 after shrink", len(res.Durations))
	}
	if got := len(sim.State().Threads); got != 2 {
		t.Fatalf("pool holds %d workers after shrink, want 2", got)
	}
}

func TestPoolShrinkNeverBelowOne(t *testing.T) {
	sim := NewSim(SimConfig{Threads: 2, Seed: 3, ThreadChanges: []ThreadChange{{At: 0.1, Delta: -10}}})
	res, err := sim.Run(greedyTestSched{depth: 0}, []Arrival{{Plan: chainPlan("c", 8), At: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 1 {
		t.Fatal("query did not complete")
	}
	if len(sim.State().Threads) < 1 {
		t.Fatal("pool shrank to zero")
	}
}

func TestPoolChangeFiresSchedulingEvents(t *testing.T) {
	var kinds []EventKind
	spy := eventSpy{inner: greedyTestSched{depth: 0}, kinds: &kinds}
	sim := NewSim(SimConfig{Threads: 2, Seed: 4, ThreadChanges: []ThreadChange{
		{At: 0.5, Delta: 2},
		{At: 1.0, Delta: -1},
	}})
	if _, err := sim.Run(spy, []Arrival{{Plan: chainPlan("c", 16), At: 0}}); err != nil {
		t.Fatal(err)
	}
	var added, removed bool
	for _, k := range kinds {
		if k == EvThreadAdded {
			added = true
		}
		if k == EvThreadRemoved {
			removed = true
		}
	}
	if !added || !removed {
		t.Fatalf("pool events not delivered: added=%v removed=%v (kinds %v)", added, removed, kinds)
	}
}

type eventSpy struct {
	inner Scheduler
	kinds *[]EventKind
}

func (s eventSpy) Name() string { return "spy" }
func (s eventSpy) OnEvent(st *State, ev Event) []Decision {
	*s.kinds = append(*s.kinds, ev.Kind)
	return s.inner.OnEvent(st, ev)
}
