package engine

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// determinismWorkload is a small mixed workload (chains + joins,
// staggered arrivals) that exercises pipelining, locality, noise, and
// the estimator.
func determinismWorkload() []Arrival {
	return []Arrival{
		{Plan: chainPlan("c1", 6), At: 0},
		{Plan: joinPlan("j1", 3, 7), At: 0.5},
		{Plan: chainPlan("c2", 4), At: 1.2},
		{Plan: joinPlan("j2", 5, 4), At: 1.2},
		{Plan: chainPlan("c3", 8), At: 3},
	}
}

// runInstrumented runs one fresh Sim over the determinism workload and
// returns the result plus the full trace event sequence.
func runInstrumented(t *testing.T, seed int64) (*SimResult, []metrics.Event) {
	t.Helper()
	tr := metrics.NewTracer(1 << 16)
	cfg := SimConfig{Threads: 4, Seed: seed, NoiseFrac: 0.2, Metrics: metrics.NewRegistry(), Trace: tr}
	sim := NewSim(cfg)
	res, err := sim.Run(greedyTestSched{depth: 2}, determinismWorkload())
	if err != nil {
		t.Fatal(err)
	}
	return res, tr.Events()
}

// TestSimDeterminism runs the simulator twice on the same workload and
// seed and asserts bit-identical results — including the full trace
// event sequence, which would catch any accidental map-iteration or
// wall-clock dependence sneaking into the virtual-time engine.
func TestSimDeterminism(t *testing.T) {
	res1, trace1 := runInstrumented(t, 42)
	res2, trace2 := runInstrumented(t, 42)

	if !reflect.DeepEqual(res1.Durations, res2.Durations) {
		t.Fatalf("durations differ:\n run1 %v\n run2 %v", res1.Durations, res2.Durations)
	}
	if res1.Makespan != res2.Makespan {
		t.Fatalf("makespan differs: %v vs %v", res1.Makespan, res2.Makespan)
	}
	if res1.WorkOrders != res2.WorkOrders {
		t.Fatalf("work orders differ: %d vs %d", res1.WorkOrders, res2.WorkOrders)
	}
	if res1.SchedActions != res2.SchedActions || res1.SchedInvocations != res2.SchedInvocations {
		t.Fatalf("scheduler activity differs: %d/%d vs %d/%d",
			res1.SchedActions, res1.SchedInvocations, res2.SchedActions, res2.SchedInvocations)
	}
	if len(trace1) == 0 {
		t.Fatal("no trace events recorded")
	}
	if len(trace1) != len(trace2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trace1), len(trace2))
	}
	for i := range trace1 {
		if trace1[i] != trace2[i] {
			t.Fatalf("trace diverges at event %d:\n run1 %v\n run2 %v", i, trace1[i], trace2[i])
		}
	}

	// A different seed must change the noisy durations — otherwise the
	// identity above would be vacuous.
	res3, _ := runInstrumented(t, 43)
	if reflect.DeepEqual(res1.Durations, res3.Durations) {
		t.Fatal("different seeds produced identical durations; noise path dead?")
	}
}

// TestSimTraceAccounting cross-checks the metric counters against the
// result and the trace: every dispatched work order completes, and the
// counters are exactly the result's totals.
func TestSimTraceAccounting(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(1 << 16)
	sim := NewSim(SimConfig{Threads: 4, Seed: 7, Metrics: reg, Trace: tr})
	res, err := sim.Run(greedyTestSched{depth: 1}, determinismWorkload())
	if err != nil {
		t.Fatal(err)
	}
	wo := int64(res.WorkOrders)
	if got := reg.Counter("engine_workorders_dispatched").Value(); got != wo {
		t.Fatalf("dispatched counter = %d, want %d", got, wo)
	}
	if got := reg.Counter("engine_workorders_completed").Value(); got != wo {
		t.Fatalf("completed counter = %d, want %d", got, wo)
	}
	if got := reg.Counter("engine_queries_finished").Value(); got != int64(len(res.Durations)) {
		t.Fatalf("finished counter = %d, want %d", got, len(res.Durations))
	}
	if got := reg.Counter("engine_sched_decisions").Value(); got != int64(res.SchedActions) {
		t.Fatalf("decisions counter = %d, want %d", got, res.SchedActions)
	}
	counts := map[metrics.EventKind]int{}
	for _, e := range tr.Events() {
		counts[e.Kind]++
	}
	if counts[metrics.EvDispatch] != res.WorkOrders || counts[metrics.EvComplete] != res.WorkOrders {
		t.Fatalf("trace dispatch/complete = %d/%d, want %d each",
			counts[metrics.EvDispatch], counts[metrics.EvComplete], res.WorkOrders)
	}
	if counts[metrics.EvQueryAdmit] != 5 || counts[metrics.EvQueryFinish] != 5 {
		t.Fatalf("trace admit/finish = %d/%d, want 5 each",
			counts[metrics.EvQueryAdmit], counts[metrics.EvQueryFinish])
	}
	if counts[metrics.EvDecision] != res.SchedActions {
		t.Fatalf("trace decisions = %d, want %d", counts[metrics.EvDecision], res.SchedActions)
	}
	if counts[metrics.EvTrigger] != res.SchedInvocations {
		t.Fatalf("trace triggers = %d, want %d", counts[metrics.EvTrigger], res.SchedInvocations)
	}
	if counts[metrics.EvCostUpdate] != res.WorkOrders {
		t.Fatalf("trace cost updates = %d, want %d", counts[metrics.EvCostUpdate], res.WorkOrders)
	}
	// Per-operator latency histograms must account for every work order.
	var histTotal int64
	for name, h := range reg.Snapshot().Histograms {
		if len(name) > 18 && name[:18] == "engine_wo_latency_" {
			histTotal += h.Count
		}
	}
	if histTotal != wo {
		t.Fatalf("op latency histograms hold %d observations, want %d", histTotal, wo)
	}
}

// BenchmarkSimMetricsOff measures the un-instrumented fast path; the
// acceptance bar is that it stays at the pre-observability baseline
// (all instrument handles nil, one pointer check per operation).
func BenchmarkSimMetricsOff(b *testing.B) {
	benchmarkSim(b, SimConfig{Threads: 4, Seed: 1, NoiseFrac: 0.1})
}

// BenchmarkSimMetricsOn measures the fully instrumented engine for
// comparison.
func BenchmarkSimMetricsOn(b *testing.B) {
	benchmarkSim(b, SimConfig{
		Threads: 4, Seed: 1, NoiseFrac: 0.1,
		Metrics: metrics.NewRegistry(), Trace: metrics.NewTracer(4096),
	})
}

func benchmarkSim(b *testing.B, cfg SimConfig) {
	arrivals := determinismWorkload()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := NewSim(cfg)
		if _, err := sim.Run(greedyTestSched{depth: 1}, arrivals); err != nil {
			b.Fatal(err)
		}
	}
}
