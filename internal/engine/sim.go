package engine

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/plan"
)

// Arrival pairs a query plan with its arrival time.
type Arrival struct {
	Plan *plan.Plan
	At   float64
}

// CloneArrivals deep-copies an arrival list (plans included) so separate
// runs — repeated evaluations, or parallel training rollouts on their
// own Sims — never share plan structure.
func CloneArrivals(in []Arrival) []Arrival {
	out := make([]Arrival, len(in))
	for i, a := range in {
		out[i] = Arrival{Plan: a.Plan.Clone(), At: a.At}
	}
	return out
}

// SimConfig configures one simulator run.
type SimConfig struct {
	// Threads is the initial worker pool size.
	Threads int
	// Cost is the work-order cost model; nil selects DefaultCostModel.
	Cost *CostModel
	// NoiseFrac is the +-fraction of uniform noise on work-order
	// durations (data-dependent variance the optimizer cannot see).
	NoiseFrac float64
	// Seed drives the duration noise deterministically.
	Seed int64
	// EstimatorWindow is the sliding-window size of the cost estimator
	// feeding the O-DUR/O-MEM features.
	EstimatorWindow int
	// MeasureOverhead records wall-clock time spent inside the scheduler,
	// for the Fig. 13 overhead experiment.
	MeasureOverhead bool
	// MaxTime aborts the run if the virtual clock passes it (0 = off);
	// a safety net against schedulers that deadlock the queue.
	MaxTime float64
	// ThreadChanges grows or shrinks the worker pool at the given
	// times, firing the §5.2 thread-added/-removed scheduling events.
	ThreadChanges []ThreadChange
	// Metrics, when non-nil, receives counters, gauges, and latency
	// histograms for the run. Nil disables metrics at zero cost.
	Metrics *metrics.Registry
	// Trace, when non-nil, receives typed events (work-order dispatch/
	// completion, query admit/finish, scheduler decisions, trigger
	// firings, cost-model updates). Nil disables tracing at zero cost.
	Trace *metrics.Tracer
	// Estimator, when non-nil, is used instead of allocating a fresh
	// one. The live engine passes Reset estimators recycled from prior
	// runs (a reset estimator is observationally identical to a new
	// one); callers handing one in must not share it across concurrent
	// sims.
	Estimator *costmodel.Estimator
}

// ThreadChange adjusts the pool size mid-run: Delta workers are added
// (positive) or retired (negative) at time At. Busy workers finish
// their current work order before retiring.
type ThreadChange struct {
	At    float64
	Delta int
}

// SimResult summarizes one simulator run.
type SimResult struct {
	// Durations maps query ID to (completion − arrival).
	Durations map[int]float64
	// Makespan is the virtual time when the last query completed.
	Makespan float64
	// SchedActions counts scheduler decisions that activated a root.
	SchedActions int
	// SchedInvocations counts OnEvent calls.
	SchedInvocations int
	// SchedOverhead is total wall-clock time inside OnEvent (when
	// measured).
	SchedOverhead time.Duration
	// EventTrace holds (time, #running queries) pairs at every decision,
	// from which trainers compute the paper's H_d reward terms.
	EventTrace []TracePoint
	// WorkOrders counts executed work orders.
	WorkOrders int
}

// TracePoint records the system load between consecutive scheduling
// decisions; the REINFORCE reward (§6) is built from these.
type TracePoint struct {
	Time    float64
	Queries int
}

// AvgDuration returns the mean query duration of the run.
func (r *SimResult) AvgDuration() float64 {
	if len(r.Durations) == 0 {
		return 0
	}
	s := 0.0
	for _, d := range r.Durations {
		s += d
	}
	return s / float64(len(r.Durations))
}

// simEvent is an entry in the discrete-event queue.
type simEvent struct {
	at   float64
	seq  int // tie-break for determinism
	kind EventKind
	// arrival payload
	arr *Arrival
	// completion payload
	stats CompletionStats
	// pool-change payload
	delta int
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the virtual-time discrete-event engine. One Sim runs one
// workload to completion under one scheduler.
type Sim struct {
	cfg      SimConfig
	cost     *CostModel
	rng      *rand.Rand
	state    *State
	events   eventHeap
	seq      int
	nextQID  int
	result   SimResult
	observer QueryObserver
	// runningWOs tracks in-flight work orders per query for grant
	// enforcement.
	runningWOs map[int]int
	// threadBusyUntil lets EvThreadFree fire correctly.
	arrived int
	total   int
	// pendingRetire counts workers awaiting retirement once their
	// current work order finishes (pool shrink with all workers busy).
	pendingRetire int
	// executeHook, when set, replaces the cost model: the live engine
	// executes the work order for real and returns its measured
	// (duration, memory). Scheduling semantics stay identical; only the
	// source of durations changes.
	executeHook func(q *QueryState, os *OpState, wo WorkOrder) (float64, float64)
	// afterDispatch, when set, runs after every dispatch round; the
	// invariant tests use it to verify work conservation at the only
	// point where it must hold.
	afterDispatch func()
	// batchBuf/dursBuf/memsBuf are reused across dispatch rounds so a
	// live run's event loop does not allocate per round on the steady
	// state (the live alloc-budget test pins this).
	batchBuf []dispatched
	dursBuf  []float64
	memsBuf  []float64
	// freeEvents recycles popped event structs: a run pushes one
	// completion per work order, but only ~threads+arrivals are ever in
	// flight, so the free list caps event allocations at the high-water
	// mark instead of one per completion.
	freeEvents []*simEvent
	// execJobs feeds the run's pool of executor goroutines (live runs
	// only): dispatch rounds send batch indices into the channel
	// instead of spawning a fresh goroutine per work order. execBatch/
	// dursBuf/memsBuf are published before the sends and read back
	// after execWG.Wait, so the channel and wait group carry all the
	// necessary happens-before edges.
	execJobs  chan int
	execBatch []dispatched
	execWG    sync.WaitGroup
	// chainBuf is reused across apply calls for pipelineChain results.
	chainBuf []int
	// instr holds the cached metric handles (all-nil when disabled).
	instr *simInstruments
}

// NewSim builds a simulator for the given config.
func NewSim(cfg SimConfig) *Sim {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	cost := cfg.Cost
	if cost == nil {
		cost = DefaultCostModel()
	}
	window := cfg.EstimatorWindow
	if window <= 0 {
		window = 8
	}
	est := cfg.Estimator
	if est == nil {
		est = costmodel.NewEstimator(window, 1, 1)
	}
	s := &Sim{
		cfg:  cfg,
		cost: cost,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		state: &State{
			Estimator: est,
		},
		result:     SimResult{Durations: make(map[int]float64)},
		runningWOs: make(map[int]int),
	}
	s.state.Threads = make([]ThreadInfo, cfg.Threads)
	for i := range s.state.Threads {
		s.state.Threads[i] = ThreadInfo{ID: i, LastQuery: -1}
	}
	s.instr = newSimInstruments(cfg.Metrics)
	s.state.Estimator.Instrument(cfg.Metrics)
	return s
}

// SetObserver attaches a query lifecycle observer (used by RL trainers).
func (s *Sim) SetObserver(o QueryObserver) { s.observer = o }

// State exposes the engine state, for tests.
func (s *Sim) State() *State { return s.state }

// Run executes the workload to completion under sched and returns the
// run summary. It is deterministic for a fixed seed and scheduler.
func (s *Sim) Run(sched Scheduler, arrivals []Arrival) (*SimResult, error) {
	s.total = len(arrivals)
	for _, a := range arrivals {
		if a.Plan == nil {
			return nil, fmt.Errorf("engine: nil plan in arrivals")
		}
		ev := s.newEvent()
		ev.at, ev.kind, ev.arr = a.At, EvQueryArrival, &a
		s.push(ev)
	}
	for _, tc := range s.cfg.ThreadChanges {
		kind := EvThreadAdded
		if tc.Delta < 0 {
			kind = EvThreadRemoved
		}
		if tc.Delta != 0 {
			ev := s.newEvent()
			ev.at, ev.kind, ev.delta = tc.At, kind, tc.Delta
			s.push(ev)
		}
	}
	if s.executeHook != nil && s.cfg.Threads > 1 {
		jobs := make(chan int, s.cfg.Threads)
		s.execJobs = jobs
		for i := 0; i < s.cfg.Threads; i++ {
			go s.execWorker(jobs)
		}
		defer func() {
			close(jobs)
			s.execJobs = nil
		}()
	}
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*simEvent)
		if s.cfg.MaxTime > 0 && ev.at > s.cfg.MaxTime {
			return nil, fmt.Errorf("engine: simulation exceeded MaxTime=%v at t=%v (scheduler %q stalled?)", s.cfg.MaxTime, ev.at, sched.Name())
		}
		s.state.Now = ev.at
		switch ev.kind {
		case EvQueryArrival:
			s.handleArrival(sched, ev)
		case EvOperatorDone: // carries a work-order completion
			s.handleCompletion(sched, ev)
		case EvThreadAdded, EvThreadRemoved:
			s.handlePoolChange(sched, ev)
		}
		// Handlers consume payloads by value (stats is copied, arr is a
		// pointer into the arrivals slice), so the struct can be reused.
		s.freeEvents = append(s.freeEvents, ev)
		if s.stalled() {
			return nil, fmt.Errorf("engine: scheduler %q stalled with %d unfinished queries at t=%v",
				sched.Name(), len(s.state.Queries), s.state.Now)
		}
	}
	s.result.Makespan = s.state.Now
	res := s.result
	return &res, nil
}

// stalled reports a deadlock: no events in flight but queries unfinished.
func (s *Sim) stalled() bool {
	return len(s.events) == 0 && len(s.state.Queries) > 0
}

func (s *Sim) push(e *simEvent) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// newEvent draws a recycled event struct or allocates a fresh one.
func (s *Sim) newEvent() *simEvent {
	if n := len(s.freeEvents); n > 0 {
		e := s.freeEvents[n-1]
		s.freeEvents = s.freeEvents[:n-1]
		*e = simEvent{}
		return e
	}
	return &simEvent{}
}

func (s *Sim) handleArrival(sched Scheduler, ev *simEvent) {
	q := newQueryState(s.nextQID, ev.arr.Plan, ev.at)
	s.nextQID++
	s.arrived++
	s.state.Queries = append(s.state.Queries, q)
	s.instr.admitted.Inc()
	s.trace(metrics.EvQueryAdmit, q.ID, -1, -1, 0, q.Plan.QueryName)
	s.invoke(sched, Event{Kind: EvQueryArrival, Time: ev.at, QueryID: q.ID})
	s.dispatch()
}

// handlePoolChange grows or shrinks the worker pool and fires the
// corresponding scheduling event.
func (s *Sim) handlePoolChange(sched Scheduler, ev *simEvent) {
	if ev.delta > 0 {
		for i := 0; i < ev.delta; i++ {
			s.state.Threads = append(s.state.Threads, ThreadInfo{ID: s.nextThreadID(), LastQuery: -1})
		}
	} else {
		// Retire idle workers immediately; busy ones retire when their
		// current work order completes.
		toRetire := -ev.delta
		for i := len(s.state.Threads) - 1; i >= 0 && toRetire > 0 && len(s.state.Threads) > 1; i-- {
			if !s.state.Threads[i].Busy {
				s.state.Threads = append(s.state.Threads[:i], s.state.Threads[i+1:]...)
				toRetire--
			}
		}
		s.pendingRetire += toRetire
	}
	s.invoke(sched, Event{Kind: ev.kind, Time: s.state.Now})
	s.dispatch()
}

// nextThreadID returns an ID unused by any current worker.
func (s *Sim) nextThreadID() int {
	max := -1
	for _, t := range s.state.Threads {
		if t.ID > max {
			max = t.ID
		}
	}
	return max + 1
}

// threadByID finds a worker by its stable ID (indices shift when the
// pool shrinks).
func (s *Sim) threadByID(id int) *ThreadInfo {
	for i := range s.state.Threads {
		if s.state.Threads[i].ID == id {
			return &s.state.Threads[i]
		}
	}
	return nil
}

func (s *Sim) handleCompletion(sched Scheduler, ev *simEvent) {
	st := ev.stats
	q := s.state.Query(st.WorkOrder.QueryID)
	thread := s.threadByID(st.ThreadID)
	if thread != nil && s.pendingRetire > 0 && len(s.state.Threads) > 1 {
		// A shrink request is outstanding: retire this worker now that
		// its work order finished.
		for i := range s.state.Threads {
			if s.state.Threads[i].ID == st.ThreadID {
				s.state.Threads = append(s.state.Threads[:i], s.state.Threads[i+1:]...)
				break
			}
		}
		s.pendingRetire--
		thread = nil
	}
	if thread != nil {
		thread.Busy = false
		thread.LastQuery = st.WorkOrder.QueryID
	}
	s.result.WorkOrders++
	if q == nil {
		// Query was already finalized (cannot happen: the sink finishes
		// last), but guard anyway.
		s.dispatch()
		return
	}
	s.runningWOs[q.ID]--
	os := q.OpStates[st.WorkOrder.OpID]
	os.Completed++
	s.instr.completed.Inc()
	s.instr.opLatency[os.Op.Type].Observe(st.Duration)
	s.trace(metrics.EvComplete, q.ID, os.Op.ID, st.ThreadID, st.Duration, os.Op.Type.String())
	if s.cfg.Trace != nil {
		// Prediction error observed at completion: what the O-DUR
		// estimator would have predicted for this work order vs. what it
		// measured. The estimator keeps its own error histograms; the
		// trace records the per-completion signal.
		pred := s.state.Estimator.EstimateDuration(opKey(q.ID, os.Op.ID), 1)
		s.trace(metrics.EvCostUpdate, q.ID, os.Op.ID, -1, st.Duration-pred, "")
	}
	s.state.Estimator.ObserveCompletion(opKey(q.ID, os.Op.ID), st.Duration, st.Memory)
	opDone := false
	if os.Completed >= os.TotalWOs {
		os.Done = true
		os.Active = false
		opDone = true
	}
	if q.Done() {
		q.Completion = s.state.Now
		s.result.Durations[q.ID] = q.Completion - q.Arrival
		s.removeQuery(q.ID)
		delete(s.runningWOs, q.ID)
		s.instr.finished.Inc()
		s.instr.queryLatency.Observe(q.Completion - q.Arrival)
		s.trace(metrics.EvQueryFinish, q.ID, -1, -1, q.Completion-q.Arrival, q.Plan.QueryName)
		if s.observer != nil {
			s.observer.QueryCompleted(q.ID, q.Arrival, q.Completion)
		}
	}
	if opDone {
		s.invoke(sched, Event{Kind: EvOperatorDone, Time: s.state.Now, QueryID: st.WorkOrder.QueryID, OpID: st.WorkOrder.OpID})
	} else if s.pendingDispatch() == 0 {
		// Thread has nothing runnable: surface a thread-free event so the
		// scheduler can activate more work.
		s.invoke(sched, Event{Kind: EvThreadFree, Time: s.state.Now, QueryID: st.WorkOrder.QueryID})
	}
	s.dispatch()
}

func (s *Sim) removeQuery(id int) {
	for i, q := range s.state.Queries {
		if q.ID == id {
			s.state.Queries = append(s.state.Queries[:i], s.state.Queries[i+1:]...)
			return
		}
	}
}

// invoke calls the scheduler, records the trace point, applies decisions.
func (s *Sim) invoke(sched Scheduler, ev Event) {
	s.result.EventTrace = append(s.result.EventTrace, TracePoint{Time: s.state.Now, Queries: len(s.state.Queries)})
	s.result.SchedInvocations++
	s.instr.triggers.Inc()
	s.instr.queueDepth.Set(float64(len(s.state.Queries)))
	s.instr.freeThreads.Set(float64(s.state.FreeThreads()))
	s.instr.poolSize.Set(float64(len(s.state.Threads)))
	s.trace(metrics.EvTrigger, ev.QueryID, ev.OpID, -1, 0, ev.Kind.String())
	var decisions []Decision
	if s.cfg.MeasureOverhead {
		start := time.Now()
		decisions = sched.OnEvent(s.state, ev)
		s.result.SchedOverhead += time.Since(start)
	} else {
		decisions = sched.OnEvent(s.state, ev)
	}
	for _, d := range decisions {
		s.apply(d)
	}
}

// apply activates the decision's pipeline and updates the thread grant.
func (s *Sim) apply(d Decision) {
	q := s.state.Query(d.QueryID)
	if q == nil {
		return
	}
	if d.Threads > 0 {
		max := len(s.state.Threads)
		if d.Threads > max {
			d.Threads = max
		}
		q.AssignedThreads = d.Threads
	}
	if d.RootOpID < 0 || d.RootOpID >= len(q.OpStates) {
		return
	}
	root := q.OpStates[d.RootOpID]
	if root.Done || root.Active {
		return
	}
	// Refuse illegal roots (inputs incomplete) rather than corrupting
	// availability accounting; schedulers are expected to pick from
	// SchedulableRoots.
	for _, e := range root.Op.Children() {
		if !q.OpStates[e.Child.ID].Done {
			return
		}
	}
	chain := appendPipelineChain(s.chainBuf[:0], q, root.Op, d.PipelineDepth)
	s.chainBuf = chain
	for i, opID := range chain {
		os := q.OpStates[opID]
		os.Active = true
		os.Pipelined = i > 0
		q.activationOrder = append(q.activationOrder, opID)
	}
	s.result.SchedActions++
	s.instr.decisions.Inc()
	s.trace(metrics.EvDecision, d.QueryID, d.RootOpID, -1, float64(len(chain)-1), root.Op.Type.String())
}

// pendingDispatch counts work orders that could be dispatched right now
// if threads were free.
func (s *Sim) pendingDispatch() int {
	n := 0
	for _, q := range s.state.Queries {
		for _, opID := range q.activationOrder {
			n += q.OpStates[opID].availableWOs(q)
		}
	}
	return n
}

// activeMemory estimates the memory footprint of all currently active
// operators; over-committing the buffer pool causes thrashing.
func (s *Sim) activeMemory() float64 {
	m := 0.0
	for _, q := range s.state.Queries {
		for _, os := range q.OpStates {
			if os.Active && !os.Done {
				m += s.cost.BaseMemory(os.Op)
			}
		}
	}
	return m
}

// dispatched is one work-order assignment made during a dispatch round.
type dispatched struct {
	wo       WorkOrder
	q        *QueryState
	os       *OpState
	threadID int
}

// dispatch assigns free threads to available work orders, honoring
// per-query grants and preferring older activations (stable pipelines).
//
// With an executeHook installed (the live engine), the round's work
// orders are executed concurrently on real goroutines — one per
// assigned thread — and the loop blocks until the whole round finishes.
// Scheduling state is only touched before the fork and after the join,
// so the event loop stays single-threaded; the hook and anything it
// reaches must be race-safe (go test -race ./internal/engine/ proves
// it for the live executor and the metrics instrumentation).
func (s *Sim) dispatch() {
	thrash := 1.0
	if mem := s.activeMemory(); mem > s.cost.BufferCapacity {
		thrash = 1 + s.cost.ThrashFactor*(mem-s.cost.BufferCapacity)/s.cost.BufferCapacity
	}
	batch := s.batchBuf[:0]
	for ti := range s.state.Threads {
		t := &s.state.Threads[ti]
		if t.Busy {
			continue
		}
		wo, q, os := s.pickWorkOrder(t)
		if os == nil {
			continue
		}
		os.Dispatched++
		s.runningWOs[q.ID]++
		t.Busy = true
		s.instr.dispatched.Inc()
		s.trace(metrics.EvDispatch, q.ID, os.Op.ID, t.ID, float64(wo.BlockIndex), os.Op.Type.String())
		if s.executeHook != nil {
			batch = append(batch, dispatched{wo: wo, q: q, os: os, threadID: t.ID})
			continue
		}
		dur := s.cost.BaseDuration(os.Op)
		if wo.Pipelined {
			dur *= s.cost.PipelineDiscount
		}
		if t.LastQuery == q.ID {
			dur *= s.cost.LocalityDiscount
		}
		dur *= thrash
		if s.cfg.NoiseFrac > 0 {
			dur *= 1 + s.cfg.NoiseFrac*(2*s.rng.Float64()-1)
		}
		if dur <= 0 {
			dur = 1e-6
		}
		s.pushCompletion(wo, dur, s.cost.BaseMemory(os.Op), t.ID)
	}
	if len(batch) > 0 {
		s.executeBatch(batch)
		// Drop the round's query/op pointers before parking the buffer so
		// reuse does not pin completed queries' state.
		for i := range batch {
			batch[i] = dispatched{}
		}
	}
	s.batchBuf = batch
	// Refresh the occupancy gauge after assignment: the values set at
	// scheduler invocation are pre-dispatch, so a wall-clock sampler
	// reading between events would otherwise always see the pool as
	// free even while every thread is busy.
	s.instr.freeThreads.Set(float64(s.state.FreeThreads()))
	if s.afterDispatch != nil {
		s.afterDispatch()
	}
}

// executeBatch really runs one dispatch round's work orders through the
// executeHook — concurrently when the round assigned several threads —
// and converts the measured (duration, memory) into completion events.
func (s *Sim) executeBatch(batch []dispatched) {
	durs := growFloats(s.dursBuf, len(batch))
	mems := growFloats(s.memsBuf, len(batch))
	s.dursBuf, s.memsBuf = durs, mems
	if len(batch) == 1 {
		durs[0], mems[0] = s.executeHook(batch[0].q, batch[0].os, batch[0].wo)
	} else if s.execJobs != nil {
		s.execBatch = batch
		s.execWG.Add(len(batch))
		for i := range batch {
			s.execJobs <- i
		}
		s.execWG.Wait()
	} else {
		// No worker pool (pool grew past the initial single thread):
		// fall back to a goroutine per work order.
		var wg sync.WaitGroup
		for i := range batch {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				durs[i], mems[i] = s.executeHook(batch[i].q, batch[i].os, batch[i].wo)
			}(i)
		}
		wg.Wait()
	}
	for i, d := range batch {
		dur := durs[i]
		if dur <= 0 {
			dur = 1e-9
		}
		s.pushCompletion(d.wo, dur, mems[i], d.threadID)
	}
}

// execWorker is one goroutine of the run's executor pool: it executes
// work orders by batch index until the job channel closes at run end.
func (s *Sim) execWorker(jobs <-chan int) {
	for i := range jobs {
		d := s.execBatch[i]
		s.dursBuf[i], s.memsBuf[i] = s.executeHook(d.q, d.os, d.wo)
		s.execWG.Done()
	}
}

// pushCompletion schedules the work order's completion event.
func (s *Sim) pushCompletion(wo WorkOrder, dur, mem float64, threadID int) {
	ev := s.newEvent()
	ev.at = s.state.Now + dur
	ev.kind = EvOperatorDone
	ev.stats = CompletionStats{
		WorkOrder:  wo,
		Duration:   dur,
		Memory:     mem,
		ThreadID:   threadID,
		FinishedAt: s.state.Now + dur,
	}
	s.push(ev)
}

// pickWorkOrder selects the next work order for thread t: prefer the
// thread's last query (locality), then queries in arrival order; within a
// query, prefer the oldest activation with available work.
func (s *Sim) pickWorkOrder(t *ThreadInfo) (WorkOrder, *QueryState, *OpState) {
	try := func(q *QueryState) (WorkOrder, *OpState) {
		if s.runningWOs[q.ID] >= q.AssignedThreads {
			return WorkOrder{}, nil
		}
		for _, opID := range q.activationOrder {
			os := q.OpStates[opID]
			if os.availableWOs(q) > 0 {
				return WorkOrder{
					QueryID:    q.ID,
					OpID:       opID,
					BlockIndex: os.Dispatched,
					Pipelined:  os.Pipelined,
				}, os
			}
		}
		return WorkOrder{}, nil
	}
	if t.LastQuery >= 0 {
		if q := s.state.Query(t.LastQuery); q != nil {
			if wo, os := try(q); os != nil {
				return wo, q, os
			}
		}
	}
	for _, q := range s.state.Queries {
		if wo, os := try(q); os != nil {
			return wo, q, os
		}
	}
	return WorkOrder{}, nil, nil
}

func opKey(queryID, opID int) int { return queryID*1024 + opID }

// growFloats returns a slice of length exactly n, reusing the backing
// array when capacity allows.
func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}
