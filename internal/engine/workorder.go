// Package engine implements the work-order-based query execution
// substrate the scheduler drives: the scheduling-event loop, per-query
// run-time state, a discrete-event virtual-time simulator used for
// training and parameter sweeps, and a live executor that runs work
// orders against real storage blocks.
//
// The execution model follows §5.1 of the paper: one scheduler thread, a
// pool of worker threads, each worker executing work orders from the
// operator it was assigned; the pool size may change at run time.
package engine

import "repro/internal/plan"

// WorkOrder is one schedulable unit of work: one operator applied to one
// input block, as in Quickstep (or a morsel in HyPer).
type WorkOrder struct {
	// QueryID identifies the owning query instance.
	QueryID int
	// OpID is the operator's ID within its plan.
	OpID int
	// BlockIndex is which of the operator's input blocks this order
	// covers.
	BlockIndex int
	// Pipelined records whether the order was issued as part of a
	// pipeline (affects cost: pipelined orders skip materialization).
	Pipelined bool
}

// CompletionStats is the execution feedback a worker reports when a work
// order finishes; the execution monitor folds it into the cost model.
type CompletionStats struct {
	WorkOrder WorkOrder
	// Duration is the measured execution time in engine time units.
	Duration float64
	// Memory is the measured memory footprint in abstract units.
	Memory float64
	// ThreadID is the worker that ran the order.
	ThreadID int
	// FinishedAt is the engine time at completion.
	FinishedAt float64
}

// EventKind enumerates the scheduling events of §5.2 that trigger the
// scheduler.
type EventKind int

const (
	// EvQueryArrival fires when a new query enters the system.
	EvQueryArrival EventKind = iota
	// EvOperatorDone fires when a scheduled operator's last work order
	// completes.
	EvOperatorDone
	// EvThreadFree fires when a worker thread finished all assigned work
	// orders and found nothing runnable under current decisions.
	EvThreadFree
	// EvThreadAdded fires when the pool grows.
	EvThreadAdded
	// EvThreadRemoved fires when the pool shrinks.
	EvThreadRemoved
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvQueryArrival:
		return "QueryArrival"
	case EvOperatorDone:
		return "OperatorDone"
	case EvThreadFree:
		return "ThreadFree"
	case EvThreadAdded:
		return "ThreadAdded"
	case EvThreadRemoved:
		return "ThreadRemoved"
	default:
		return "Event(?)"
	}
}

// Event is one scheduling event delivered to the scheduler.
type Event struct {
	Kind    EventKind
	Time    float64
	QueryID int
	OpID    int
}

// Decision is one scheduling decision (§5.3): start execution at a root
// operator, pipeline up to PipelineDepth consumers above it, and set the
// owning query's thread grant.
type Decision struct {
	QueryID int
	// RootOpID is the execution root to activate. A negative value means
	// "no new root" — the decision only adjusts the thread grant.
	RootOpID int
	// PipelineDepth is how many additional operators above the root to
	// run pipelined with it (0 = run the root alone).
	PipelineDepth int
	// Threads is the parallelism grant for the query (≥ 1). Zero leaves
	// the current grant unchanged.
	Threads int
}

// Scheduler is the policy interface every scheduler in this repository
// implements — LSched, Decima, SelfTune, and the heuristics. OnEvent is
// called once per scheduling event with a read view of engine state and
// returns the decisions to apply.
type Scheduler interface {
	// Name identifies the policy in experiment output.
	Name() string
	// OnEvent reacts to one scheduling event.
	OnEvent(st *State, ev Event) []Decision
}

// QueryObserver receives query lifecycle callbacks; trainers use it to
// compute rewards without the engine knowing about RL.
type QueryObserver interface {
	QueryCompleted(queryID int, arrival, completion float64)
}

// pipelineChain returns the operator IDs of the longest chain starting at
// root and repeatedly stepping to a parent over a non-pipeline-breaking
// edge whose parent's other inputs are all done, truncated to depth
// extra operators. It is the set of operators a Decision with
// PipelineDepth=depth activates together with the root.
func pipelineChain(q *QueryState, root *plan.Operator, depth int) []int {
	return appendPipelineChain(nil, q, root, depth)
}

// appendPipelineChain is pipelineChain writing into a caller-supplied
// buffer, so the dispatch hot path can reuse one slice across decisions.
func appendPipelineChain(buf []int, q *QueryState, root *plan.Operator, depth int) []int {
	chain := append(buf, root.ID)
	cur := root
	for len(chain)-1 < depth {
		var next *plan.Operator
		for _, e := range cur.Parents() {
			if !e.NonPipelineBreaking {
				continue
			}
			p := e.Parent
			ps := q.OpStates[p.ID]
			if ps.Done || ps.Active {
				continue
			}
			if !q.sideInputsReady(p, cur) {
				continue
			}
			next = p
			break
		}
		if next == nil {
			break
		}
		chain = append(chain, next.ID)
		cur = next
	}
	return chain
}
