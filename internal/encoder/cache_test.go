package encoder

import (
	"testing"

	"repro/internal/nn"
)

// encodeValues flattens an Output into comparable float slices.
func encodeValues(out *Output) [][]float64 {
	var vs [][]float64
	for _, qe := range out.PerQuery {
		for _, ne := range qe.NE {
			vs = append(vs, ne.Val)
		}
		for _, ee := range qe.EE {
			vs = append(vs, ee.Val)
		}
		vs = append(vs, qe.PQE.Val)
	}
	vs = append(vs, out.AQE.Val)
	return vs
}

func valuesEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestCacheHitsAreBitIdentical(t *testing.T) {
	enc, params, cfg := newTestEncoder(t, true, true)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)

	fresh := nn.NewTape()
	fresh.SetInference(true)
	want := encodeValues(enc.Encode(fresh, snap))

	cache := NewCache()
	tape := nn.NewTape()
	tape.SetInference(true)
	// First pass populates the cache, second pass must be all hits.
	enc.EncodeWithCache(tape, snap, cache, params.Version())
	if cache.Misses() != 2 || cache.Hits() != 0 {
		t.Fatalf("after first pass: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
	tape.Reset()
	got := encodeValues(enc.EncodeWithCache(tape, snap, cache, params.Version()))
	if cache.Hits() != 2 {
		t.Fatalf("second pass served %d hits, want 2", cache.Hits())
	}
	if !valuesEqual(want, got) {
		t.Fatal("cached encoding diverged from fresh encode")
	}
}

func TestCacheFingerprintInvalidation(t *testing.T) {
	enc, params, cfg := newTestEncoder(t, true, true)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
	cache := NewCache()
	tape := nn.NewTape()
	tape.SetInference(true)
	enc.EncodeWithCache(tape, snap, cache, params.Version())

	// Mutate one op feature of query 1: query 0 stays a hit, query 1
	// must be re-encoded and the recomputed value must reflect the edit.
	snap.Queries[1].Ops[2].Feat[0] += 0.5
	tape.Reset()
	out := enc.EncodeWithCache(tape, snap, cache, params.Version())
	if cache.Hits() != 1 || cache.Misses() != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", cache.Hits(), cache.Misses())
	}
	ref := nn.NewTape()
	ref.SetInference(true)
	want := encodeValues(enc.Encode(ref, snap))
	if !valuesEqual(want, encodeValues(out)) {
		t.Fatal("post-invalidation encoding diverged from fresh encode")
	}

	// QF changes alone must NOT evict (NE/EE/PQE are QF-independent).
	snap.Queries[0].QF[0] += 1.0
	tape.Reset()
	enc.EncodeWithCache(tape, snap, cache, params.Version())
	if cache.Hits() != 3 {
		t.Fatalf("QF change evicted a query: hits=%d", cache.Hits())
	}
}

func TestCacheParamsVersionInvalidation(t *testing.T) {
	enc, params, cfg := newTestEncoder(t, true, true)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
	cache := NewCache()
	tape := nn.NewTape()
	tape.SetInference(true)
	enc.EncodeWithCache(tape, snap, cache, params.Version())
	params.BumpVersion() // simulates an optimizer step
	tape.Reset()
	enc.EncodeWithCache(tape, snap, cache, params.Version())
	if cache.Hits() != 0 || cache.Misses() != 4 {
		t.Fatalf("version bump did not flush: hits=%d misses=%d", cache.Hits(), cache.Misses())
	}
}

func TestCachePrunesDepartedQueries(t *testing.T) {
	enc, params, cfg := newTestEncoder(t, true, true)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
	cache := NewCache()
	tape := nn.NewTape()
	tape.SetInference(true)
	enc.EncodeWithCache(tape, snap, cache, params.Version())
	if len(cache.entries) != 2 {
		t.Fatalf("%d entries after warm-up", len(cache.entries))
	}
	short := &Snapshot{Queries: snap.Queries[:1]}
	tape.Reset()
	enc.EncodeWithCache(tape, short, cache, params.Version())
	if len(cache.entries) != 1 {
		t.Fatalf("%d entries after prune, want 1", len(cache.entries))
	}
	if _, ok := cache.entries[snap.Queries[0].QueryID]; !ok {
		t.Fatal("surviving query was pruned instead of the departed one")
	}
}

func TestCacheBypassedOnRecordingTape(t *testing.T) {
	enc, params, cfg := newTestEncoder(t, true, true)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
	cache := NewCache()
	tape := nn.NewTape() // recording mode
	out := enc.EncodeWithCache(tape, snap, cache, params.Version())
	if cache.Hits() != 0 || cache.Misses() != 0 || len(cache.entries) != 0 {
		t.Fatal("recording tape must bypass the cache entirely")
	}
	// Gradients must flow as if no cache existed.
	params.ZeroGrads()
	tape.Backward(tape.Sum(out.AQE))
}

func TestFingerprintSensitivity(t *testing.T) {
	snap := testSnapshot(6, 2, 4)
	qs := &snap.Queries[1]
	base := Fingerprint(qs)
	if Fingerprint(qs) != base {
		t.Fatal("fingerprint not deterministic")
	}
	origFeat := qs.Ops[0].Feat[3]
	qs.Ops[0].Feat[3] += 1e-9
	if Fingerprint(qs) == base {
		t.Fatal("feature change not reflected in fingerprint")
	}
	qs.Ops[0].Feat[3] = origFeat
	qs.Ops[3].Children[0].EdgeFeat[0] = 0.5
	if Fingerprint(qs) == base {
		t.Fatal("edge-feature change not reflected in fingerprint")
	}
	qs.Ops[3].Children[0].EdgeFeat[0] = 0
	qs.QF[0] += 1
	if Fingerprint(qs) != base {
		t.Fatal("QF must be excluded from the fingerprint")
	}
}
