// Package encoder implements LSched's Query Encoder (§4): a customized
// edge-aware tree convolution (Eq. 2) whose five filter terms are
// re-weighted by learned graph-attention scores (Eqs. 3–5), followed by
// the high-level PQE/AQE summarization networks (§4.3).
//
// The encoder consumes Snapshots — plain feature tensors captured at a
// scheduling event — rather than live engine state, so an RL trainer can
// replay the episode's decisions after it ends and differentiate through
// the exact inputs the policy saw.
package encoder

// ChildRef links an operator snapshot to one of its inputs together with
// the connecting edge's EDF features.
type ChildRef struct {
	// OpIdx indexes the child within the owning QuerySnapshot.Ops.
	OpIdx int
	// EdgeFeat is the EDF vector (E-NPB, E-DIR).
	EdgeFeat []float64
}

// OpSnapshot is one operator's features at a scheduling event.
type OpSnapshot struct {
	// OpID is the operator's plan ID (for mapping decisions back).
	OpID int
	// Feat is the OPF vector.
	Feat []float64
	// Children lists the operator's inputs, children-first order being
	// guaranteed by the plan's topological operator order.
	Children []ChildRef
}

// QuerySnapshot is one running query's features at a scheduling event.
type QuerySnapshot struct {
	QueryID int
	// Ops is in the plan's topological order (children before parents).
	Ops []OpSnapshot
	// QF is the query-level feature vector.
	QF []float64
}

// Snapshot captures every running query at one scheduling event.
type Snapshot struct {
	Queries []QuerySnapshot
}
