package encoder

import (
	"math"
	"testing"

	"repro/internal/nn"
)

// testSnapshot builds a two-query snapshot: a 3-op chain and a 5-op join.
func testSnapshot(opDim, edgeDim, qDim int) *Snapshot {
	feat := func(seed float64) []float64 {
		v := make([]float64, opDim)
		for i := range v {
			v[i] = math.Sin(seed + float64(i))
		}
		return v
	}
	ef := func(npb float64) []float64 {
		v := make([]float64, edgeDim)
		v[0] = npb
		if edgeDim > 1 {
			v[1] = 1
		}
		return v
	}
	qf := func(seed float64) []float64 {
		v := make([]float64, qDim)
		for i := range v {
			v[i] = math.Cos(seed + float64(i))
		}
		return v
	}
	return &Snapshot{Queries: []QuerySnapshot{
		{
			QueryID: 0,
			QF:      qf(0.1),
			Ops: []OpSnapshot{
				{OpID: 0, Feat: feat(1)},
				{OpID: 1, Feat: feat(2), Children: []ChildRef{{OpIdx: 0, EdgeFeat: ef(1)}}},
				{OpID: 2, Feat: feat(3), Children: []ChildRef{{OpIdx: 1, EdgeFeat: ef(0)}}},
			},
		},
		{
			QueryID: 1,
			QF:      qf(0.7),
			Ops: []OpSnapshot{
				{OpID: 0, Feat: feat(4)},
				{OpID: 1, Feat: feat(5)},
				{OpID: 2, Feat: feat(6), Children: []ChildRef{{OpIdx: 0, EdgeFeat: ef(0)}}},
				{OpID: 3, Feat: feat(7), Children: []ChildRef{{OpIdx: 2, EdgeFeat: ef(0)}, {OpIdx: 1, EdgeFeat: ef(1)}}},
				{OpID: 4, Feat: feat(8), Children: []ChildRef{{OpIdx: 3, EdgeFeat: ef(1)}}},
			},
		},
	}}
}

func newTestEncoder(t *testing.T, useTCN, useGAT bool) (*Encoder, *nn.Params, Config) {
	t.Helper()
	cfg := Config{OpDim: 6, EdgeDim: 2, QueryDim: 4, Hidden: 8, Layers: 2, UseTCN: useTCN, UseGAT: useGAT}
	p := nn.NewParams(1)
	return New(p, cfg), p, cfg
}

func TestEncodeShapes(t *testing.T) {
	for _, tcn := range []bool{true, false} {
		for _, gat := range []bool{true, false} {
			enc, _, cfg := newTestEncoder(t, tcn, gat)
			snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
			tape := nn.NewTape()
			out := enc.Encode(tape, snap)
			if len(out.PerQuery) != 2 {
				t.Fatalf("expected 2 query encodings, got %d", len(out.PerQuery))
			}
			if out.AQE.Len() != cfg.Hidden {
				t.Fatalf("AQE len %d, want %d", out.AQE.Len(), cfg.Hidden)
			}
			for qi, qe := range out.PerQuery {
				if len(qe.NE) != len(snap.Queries[qi].Ops) {
					t.Fatalf("query %d: %d node embeddings for %d ops", qi, len(qe.NE), len(snap.Queries[qi].Ops))
				}
				if qe.PQE.Len() != cfg.Hidden {
					t.Fatalf("query %d: PQE len %d", qi, qe.PQE.Len())
				}
				for _, ne := range qe.NE {
					if ne.Len() != cfg.Hidden {
						t.Fatalf("node embedding len %d", ne.Len())
					}
					for _, v := range ne.Val {
						if math.IsNaN(v) || math.IsInf(v, 0) {
							t.Fatalf("non-finite embedding value")
						}
					}
				}
			}
		}
	}
}

func TestEncodeEmptySnapshot(t *testing.T) {
	enc, _, cfg := newTestEncoder(t, true, true)
	tape := nn.NewTape()
	out := enc.Encode(tape, &Snapshot{})
	if len(out.PerQuery) != 0 {
		t.Fatal("expected no query encodings")
	}
	if out.AQE.Len() != cfg.Hidden {
		t.Fatal("AQE must still have the configured width")
	}
}

func TestEncodeGradientFlowsToAllParams(t *testing.T) {
	enc, params, cfg := newTestEncoder(t, true, true)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
	tape := nn.NewTape()
	out := enc.Encode(tape, snap)
	loss := tape.Sum(out.AQE)
	for _, qe := range out.PerQuery {
		loss = tape.Add(loss, tape.Sum(qe.PQE))
		for _, ne := range qe.NE {
			loss = tape.Add(loss, tape.Sum(ne))
		}
	}
	params.ZeroGrads()
	tape.Backward(loss)
	zeroed := 0
	for _, p := range params.All() {
		nonzero := false
		for _, g := range p.Grad {
			if g != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			zeroed++
			t.Logf("param %s received no gradient", p.Name())
		}
	}
	// ReLU dead zones may zero a few parameters on one input, but the
	// vast majority must receive gradient.
	if zeroed > len(params.All())/4 {
		t.Fatalf("%d of %d params received no gradient", zeroed, len(params.All()))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	enc, _, cfg := newTestEncoder(t, true, true)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
	tape := nn.NewTape()
	a := enc.Encode(tape, snap).AQE
	avals := append([]float64(nil), a.Val...)
	tape.Reset()
	b := enc.Encode(tape, snap).AQE
	for i := range avals {
		if avals[i] != b.Val[i] {
			t.Fatal("encoding differs across tape resets")
		}
	}
}

func TestGATChangesOutput(t *testing.T) {
	// With identical parameters, toggling GAT must change the encoding
	// (the ablation is real, not a no-op).
	cfg := Config{OpDim: 6, EdgeDim: 2, QueryDim: 4, Hidden: 8, Layers: 2, UseTCN: true, UseGAT: true}
	pa := nn.NewParams(3)
	a := New(pa, cfg)
	cfg2 := cfg
	cfg2.UseGAT = false
	pb := nn.NewParams(3) // same seed -> same init
	b := New(pb, cfg2)
	snap := testSnapshot(cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)
	ta, tb := nn.NewTape(), nn.NewTape()
	va := a.Encode(ta, snap).AQE.Val
	vb := b.Encode(tb, snap).AQE.Val
	same := true
	for i := range va {
		if math.Abs(va[i]-vb[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Fatal("GAT toggle did not change the encoding")
	}
}

func TestChildSlots(t *testing.T) {
	op := &OpSnapshot{}
	if l, r := childSlots(op); l != nil || r != nil {
		t.Fatal("leaf should have no slots")
	}
	op.Children = []ChildRef{{OpIdx: 1}}
	if l, r := childSlots(op); l == nil || r != nil {
		t.Fatal("single child goes to the left slot")
	}
	op.Children = []ChildRef{{OpIdx: 1}, {OpIdx: 2}, {OpIdx: 3}}
	l, r := childSlots(op)
	if l.OpIdx != 1 || r.OpIdx != 2 {
		t.Fatal("first two children fill the slots")
	}
}
