package encoder

import (
	"math"
	"testing"

	"repro/internal/nn"
)

// benchSnapshot builds a snapshot of nq chain-shaped queries of nOps
// operators each, sized like a loaded scheduling event.
func benchSnapshot(nq, nOps, opDim, edgeDim, qDim int) *Snapshot {
	snap := &Snapshot{}
	for q := 0; q < nq; q++ {
		qs := QuerySnapshot{QueryID: q, QF: make([]float64, qDim)}
		for i := range qs.QF {
			qs.QF[i] = math.Cos(float64(q) + float64(i)*0.3)
		}
		for o := 0; o < nOps; o++ {
			op := OpSnapshot{OpID: o, Feat: make([]float64, opDim)}
			for i := range op.Feat {
				op.Feat[i] = math.Sin(float64(q*31+o) + float64(i)*0.1)
			}
			if o > 0 {
				ef := make([]float64, edgeDim)
				ef[0] = float64(o % 2)
				op.Children = []ChildRef{{OpIdx: o - 1, EdgeFeat: ef}}
			}
			qs.Ops = append(qs.Ops, op)
		}
		snap.Queries = append(snap.Queries, qs)
	}
	return snap
}

// BenchmarkEncodeSnapshot measures one full-snapshot encode per event:
// "record" is the training path, "infer" the gradient-free path, and
// "cached" the steady state where no query changed since the previous
// event (all per-query encodings served from the cache).
func BenchmarkEncodeSnapshot(b *testing.B) {
	cfg := Config{OpDim: 40, EdgeDim: 2, QueryDim: 10, Hidden: 16, Layers: 2, UseTCN: true, UseGAT: true, UseEdges: true}
	snap := benchSnapshot(8, 8, cfg.OpDim, cfg.EdgeDim, cfg.QueryDim)

	run := func(b *testing.B, infer bool, cache *Cache) {
		p := nn.NewParams(1)
		enc := New(p, cfg)
		tp := nn.NewTape()
		tp.SetInference(infer)
		// Warm the cost of lazily-grown arenas (and the cache) out of
		// the measurement.
		enc.EncodeWithCache(tp, snap, cache, p.Version())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tp.Reset()
			enc.EncodeWithCache(tp, snap, cache, p.Version())
		}
	}

	b.Run("record", func(b *testing.B) { run(b, false, nil) })
	b.Run("infer", func(b *testing.B) { run(b, true, nil) })
	b.Run("cached", func(b *testing.B) { run(b, true, NewCache()) })
}
