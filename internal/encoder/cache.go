package encoder

import (
	"math"

	"repro/internal/nn"
)

// Cache memoizes per-query encoder outputs across scheduling events.
// Most events change the state of only one or two queries (a work order
// finished, a query arrived or departed); every other query's OPF/EDF
// features — and therefore its NE/EE/PQE, which do not depend on QF —
// are bit-identical to the previous event. The cache keys each query on
// a fingerprint of exactly the inputs its encoding depends on and
// replays stored values as constants, making encoder cost O(changed
// queries) instead of O(active queries) per event.
//
// The cache stores plain []float64 value copies, never *nn.Node
// pointers: tape nodes die at Tape.Reset, so hits re-materialize fresh
// Const nodes on the current tape. Because cached values are bit-copies
// of a deterministic forward pass over identical inputs, decisions made
// from cache hits are bit-identical to recomputing from scratch.
//
// Hits are honored only on inference tapes (nn.Tape.Inference). On a
// recording tape a Const-from-cache would silently cut the gradient
// path through the encoder, so callers that need backprop always
// recompute; EncodeWithCache enforces this.
//
// A Cache is owned by one agent and is not safe for concurrent use,
// matching the one-goroutine-per-engine invariant.
type Cache struct {
	entries map[int]*cacheEntry
	// version is the params version the stored values were computed
	// under; any weight change invalidates everything.
	version uint64
	hits    uint64
	misses  uint64
	// present is scratch for prune's mark phase.
	present map[int]struct{}
}

type cacheEntry struct {
	fp  uint64
	ne  [][]float64
	ee  [][]float64
	pqe []float64
}

// NewCache returns an empty encoding cache.
func NewCache() *Cache {
	return &Cache{
		entries: make(map[int]*cacheEntry),
		present: make(map[int]struct{}),
	}
}

// Hits returns the number of cache hits served.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of lookups that required a fresh encode.
func (c *Cache) Misses() uint64 { return c.misses }

// Reset drops all entries (counters are kept).
func (c *Cache) Reset() {
	for id := range c.entries {
		delete(c.entries, id)
	}
}

// syncVersion flushes the cache when the parameters changed since the
// stored encodings were computed.
func (c *Cache) syncVersion(paramsVersion uint64) {
	if c.version != paramsVersion {
		c.Reset()
		c.version = paramsVersion
	}
}

// prune drops entries for queries no longer present in the snapshot
// (completed or evicted), bounding the cache to the active set.
func (c *Cache) prune(snap *Snapshot) {
	if len(c.entries) == 0 {
		return
	}
	for id := range c.present {
		delete(c.present, id)
	}
	for qi := range snap.Queries {
		c.present[snap.Queries[qi].QueryID] = struct{}{}
	}
	for id := range c.entries {
		if _, ok := c.present[id]; !ok {
			delete(c.entries, id)
		}
	}
}

// store copies the encoding's values into the cache, reusing the
// existing entry's buffers when shapes match.
func (c *Cache) store(id int, fp uint64, enc *QueryEncoding) {
	ent := c.entries[id]
	if ent == nil {
		ent = &cacheEntry{}
		c.entries[id] = ent
	}
	ent.fp = fp
	ent.ne = copyVecs(ent.ne, enc.NE)
	ent.ee = copyVecs(ent.ee, enc.EE)
	ent.pqe = append(ent.pqe[:0], enc.PQE.Val...)
}

func copyVecs(dst [][]float64, src []*nn.Node) [][]float64 {
	if cap(dst) < len(src) {
		dst = make([][]float64, len(src))
	}
	dst = dst[:len(src)]
	for i, n := range src {
		dst[i] = append(dst[i][:0], n.Val...)
	}
	return dst
}

// materialize rebuilds a QueryEncoding on tape t from stored values.
func (ent *cacheEntry) materialize(t *nn.Tape, queryID int) QueryEncoding {
	ne := t.NodeSlice(len(ent.ne))
	for i, v := range ent.ne {
		ne[i] = t.Const(v)
	}
	ee := t.NodeSlice(len(ent.ee))
	for i, v := range ent.ee {
		ee[i] = t.Const(v)
	}
	return QueryEncoding{QueryID: queryID, NE: ne, EE: ee, PQE: t.Const(ent.pqe)}
}

// FNV-1a 64-bit, inlined so fingerprinting allocates nothing.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

func fnvFloats(h uint64, vs []float64) uint64 {
	for _, v := range vs {
		h = fnvUint64(h, math.Float64bits(v))
	}
	return h
}

// Fingerprint hashes exactly the inputs a query's NE/EE/PQE depend on:
// the plan shape (child indices) and the OPF/EDF feature values. QF is
// deliberately excluded — it feeds only the AQE message, which
// EncodeWithCache recomputes every event — so a free-thread-count
// change (which happens at nearly every event) does not evict idle
// queries whose own features are unchanged.
func Fingerprint(qs *QuerySnapshot) uint64 {
	h := uint64(fnvOffset64)
	h = fnvUint64(h, uint64(len(qs.Ops)))
	for i := range qs.Ops {
		op := &qs.Ops[i]
		h = fnvUint64(h, uint64(op.OpID))
		h = fnvFloats(h, op.Feat)
		h = fnvUint64(h, uint64(len(op.Children)))
		for j := range op.Children {
			h = fnvUint64(h, uint64(op.Children[j].OpIdx))
			h = fnvFloats(h, op.Children[j].EdgeFeat)
		}
	}
	return h
}
