package encoder

import (
	"fmt"

	"repro/internal/nn"
)

// Config sets the encoder's dimensions and ablation switches.
type Config struct {
	// OpDim, EdgeDim, QueryDim are the incoming feature widths (from
	// features.Config).
	OpDim, EdgeDim, QueryDim int
	// Hidden is the embedding width used throughout.
	Hidden int
	// Layers is the number of stacked tree-convolution layers.
	Layers int
	// UseGAT enables the attention re-weighting of Eqs. 3–5; when false
	// the layer is the isotropic Eq. 2 (the "w/o Graph Attention"
	// ablation of Fig. 15).
	UseGAT bool
	// UseTCN selects the customized tree convolution; when false the
	// encoder falls back to Decima-style sequential message passing
	// within each layer (the "w/o Triangle Convolution" ablation).
	UseTCN bool
	// UseEdges includes the E-NPB/E-DIR edge terms in the triangle
	// filter (the paper's Eq. 2 extension over stock tree convolution);
	// when false the filter degenerates to the node-only form of
	// Mou et al. — the "edge-aware vs node-only" ablation.
	UseEdges bool
}

// DefaultConfig returns the encoder configuration used in experiments.
func DefaultConfig(opDim, edgeDim, queryDim int) Config {
	return Config{
		OpDim: opDim, EdgeDim: edgeDim, QueryDim: queryDim,
		Hidden: 16, Layers: 2, UseGAT: true, UseTCN: true, UseEdges: true,
	}
}

// tcnLayer holds one convolution layer's parameters: the five filter
// weight vectors of Eq. 2 (parent, right child, right edge, left child,
// left edge) plus the five GAT attention vectors of Eq. 3.
type tcnLayer struct {
	wp, wm, wn, wpm, wpn    *nn.Node
	bias                    *nn.Node
	aSelf, aM, aN, aEM, aEN *nn.Node
}

// Encoder is the Query Encoder network. One Encoder owns its parameters
// (registered in the shared Params) and is reused across tapes.
type Encoder struct {
	cfg      Config
	inProj   *nn.Dense
	edgeProj *nn.Dense
	layers   []*tcnLayer
	// PQE summarization: per-node and per-edge message nets + output net.
	pqeNode *nn.MLP
	pqeEdge *nn.MLP
	pqeOut  *nn.MLP
	// AQE summarization.
	aqeIn  *nn.MLP
	aqeOut *nn.MLP
	// Per-call scratch, dead by the time each method returns. An Encoder
	// is driven by one goroutine at a time (the one-goroutine-per-engine
	// invariant), so reuse is safe.
	edgeEmbScratch [][2]*nn.Node
	pairScratch    [][2]*nn.Node
}

// New registers the encoder's parameters under the "enc." prefix.
func New(p *nn.Params, cfg Config) *Encoder {
	if cfg.Hidden <= 0 || cfg.Layers <= 0 {
		panic("encoder: Hidden and Layers must be positive")
	}
	h := cfg.Hidden
	e := &Encoder{
		cfg:      cfg,
		inProj:   nn.NewDense(p, "enc.in", cfg.OpDim, h),
		edgeProj: nn.NewDense(p, "enc.edge", cfg.EdgeDim, h),
		pqeNode:  nn.NewMLP(p, "enc.pqe.node", h+cfg.OpDim, h, h),
		pqeEdge:  nn.NewMLP(p, "enc.pqe.edge", h+cfg.EdgeDim, h, h),
		pqeOut:   nn.NewMLP(p, "enc.pqe.out", h, h, h),
		aqeIn:    nn.NewMLP(p, "enc.aqe.in", h+cfg.QueryDim, h, h),
		aqeOut:   nn.NewMLP(p, "enc.aqe.out", h, h, h),
	}
	for l := 0; l < cfg.Layers; l++ {
		pre := fmt.Sprintf("enc.conv%d", l)
		e.layers = append(e.layers, &tcnLayer{
			wp:    p.Vector(pre+".wp", h),
			wm:    p.Vector(pre+".wm", h),
			wn:    p.Vector(pre+".wn", h),
			wpm:   p.Vector(pre+".wpm", h),
			wpn:   p.Vector(pre+".wpn", h),
			bias:  p.Vector(pre+".bias", h),
			aSelf: p.Vector(pre+".a.self", 2*h),
			aM:    p.Vector(pre+".a.m", 2*h),
			aN:    p.Vector(pre+".a.n", 2*h),
			aEM:   p.Vector(pre+".a.em", 2*h),
			aEN:   p.Vector(pre+".a.en", 2*h),
		})
	}
	return e
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// QueryEncoding is the encoder output for one query.
type QueryEncoding struct {
	QueryID int
	// NE is the final node embedding per operator (index-parallel to the
	// snapshot's Ops).
	NE []*nn.Node
	// EE is the edge embedding of the operator's first two child edges,
	// averaged, per operator (zero vector for leaves) — the "NE & EE"
	// input the predictor heads concatenate per operator.
	EE []*nn.Node
	// PQE is the per-query summary embedding.
	PQE *nn.Node
}

// Output is the encoder result at one scheduling event.
type Output struct {
	PerQuery []QueryEncoding
	// AQE is the all-queries summary embedding.
	AQE *nn.Node
}

// Encode runs the full encoder over a snapshot on the given tape.
func (e *Encoder) Encode(t *nn.Tape, snap *Snapshot) *Output {
	return e.EncodeWithCache(t, snap, nil, 0)
}

// EncodeWithCache runs the encoder, serving unchanged queries from the
// cache. paramsVersion (nn.Params.Version) invalidates the cache after
// any weight update. The cache is honored only when t is an inference
// tape: a recording tape must recompute every query so gradients flow
// through the encoder, and it then also refreshes nothing (the cache is
// bypassed entirely, not repopulated, since its values would be
// redundant with the next inference pass). The AQE message of every
// query is recomputed each event because it mixes in QF, which changes
// with the thread pool at nearly every event.
func (e *Encoder) EncodeWithCache(t *nn.Tape, snap *Snapshot, c *Cache, paramsVersion uint64) *Output {
	useCache := c != nil && t.Inference()
	if useCache {
		c.syncVersion(paramsVersion)
	}
	out := &Output{PerQuery: make([]QueryEncoding, 0, len(snap.Queries))}
	aqeMsgs := t.NodeSlice(len(snap.Queries))
	for qi := range snap.Queries {
		qs := &snap.Queries[qi]
		var enc QueryEncoding
		if useCache {
			fp := Fingerprint(qs)
			if ent, ok := c.entries[qs.QueryID]; ok && ent.fp == fp {
				c.hits++
				enc = ent.materialize(t, qs.QueryID)
			} else {
				c.misses++
				enc = e.encodeQuery(t, qs)
				c.store(qs.QueryID, fp, &enc)
			}
		} else {
			enc = e.encodeQuery(t, qs)
		}
		out.PerQuery = append(out.PerQuery, enc)
		msg := e.aqeIn.Apply(t, t.Concat(enc.PQE, t.Const(qs.QF)))
		aqeMsgs[qi] = t.ReLU(msg)
	}
	if useCache {
		c.prune(snap)
	}
	if len(aqeMsgs) == 0 {
		out.AQE = t.Zeros(e.cfg.Hidden)
		return out
	}
	out.AQE = e.aqeOut.Apply(t, t.MeanOfOwned(aqeMsgs))
	return out
}

// encodeQuery runs the single-query encoder (§4.2) and the PQE
// summarizer for one query.
func (e *Encoder) encodeQuery(t *nn.Tape, qs *QuerySnapshot) QueryEncoding {
	n := len(qs.Ops)
	h := e.cfg.Hidden
	// Project raw features to the embedding space. Node slices live on
	// the tape's pointer arena, recycled at Tape.Reset.
	emb := t.NodeSlice(n)
	for i := range qs.Ops {
		emb[i] = t.ReLU(e.inProj.Apply(t, t.Const(qs.Ops[i].Feat)))
	}
	// Project edge features once; edges are identified by (parent, slot).
	// edgeEmb is encoder-owned scratch (dead after this call); edgeAvg
	// escapes into the returned QueryEncoding so it lives on the tape.
	if cap(e.edgeEmbScratch) < n {
		e.edgeEmbScratch = make([][2]*nn.Node, n)
	}
	edgeEmb := e.edgeEmbScratch[:n]
	edgeAvg := t.NodeSlice(n)
	zero := t.Zeros(h)
	for i := range qs.Ops {
		left, right := childSlots(&qs.Ops[i])
		if left != nil {
			edgeEmb[i][0] = t.ReLU(e.edgeProj.Apply(t, t.Const(left.EdgeFeat)))
		} else {
			edgeEmb[i][0] = zero
		}
		if right != nil {
			edgeEmb[i][1] = t.ReLU(e.edgeProj.Apply(t, t.Const(right.EdgeFeat)))
		} else {
			edgeEmb[i][1] = zero
		}
		switch {
		case left != nil && right != nil:
			edgeAvg[i] = t.Scale(t.Add(edgeEmb[i][0], edgeEmb[i][1]), 0.5)
		case left != nil:
			edgeAvg[i] = edgeEmb[i][0]
		default:
			edgeAvg[i] = zero
		}
	}
	// Stacked convolution layers.
	for _, layer := range e.layers {
		if e.cfg.UseTCN {
			emb = e.tcnForward(t, qs, layer, emb, edgeEmb, zero)
		} else {
			emb = e.gcnForward(t, qs, layer, emb)
		}
	}
	// PQE: connect every node and edge to a dummy summary node.
	nMsgs := n
	for i := range qs.Ops {
		nMsgs += len(qs.Ops[i].Children)
	}
	msgs := t.NodeSlice(nMsgs)[:0]
	for i := range qs.Ops {
		m := e.pqeNode.Apply(t, t.Concat(emb[i], t.Const(qs.Ops[i].Feat)))
		msgs = append(msgs, t.ReLU(m))
		for _, c := range qs.Ops[i].Children {
			me := e.pqeEdge.Apply(t, t.Concat(emb[c.OpIdx], t.Const(c.EdgeFeat)))
			msgs = append(msgs, t.ReLU(me))
		}
	}
	pqe := e.pqeOut.Apply(t, t.MeanOfOwned(msgs))
	return QueryEncoding{QueryID: qs.QueryID, NE: emb, EE: edgeAvg, PQE: pqe}
}

// childSlots maps an operator's children onto the triangle filter's two
// slots. Operators with more than two inputs (e.g. wide unions) keep
// their first two; plans in this repository are built binary.
func childSlots(op *OpSnapshot) (left, right *ChildRef) {
	switch len(op.Children) {
	case 0:
		return nil, nil
	case 1:
		return &op.Children[0], nil
	default:
		return &op.Children[0], &op.Children[1]
	}
}

// tcnForward applies one customized tree-convolution layer (Eq. 2),
// optionally re-weighted by GAT scores (Eq. 5). All nodes use only the
// previous layer's embeddings, so there is no intra-layer smoothing.
func (e *Encoder) tcnForward(t *nn.Tape, qs *QuerySnapshot, l *tcnLayer, prev []*nn.Node, edgeEmb [][2]*nn.Node, zero *nn.Node) []*nn.Node {
	next := t.NodeSlice(len(prev))
	for i := range qs.Ops {
		left, right := childSlots(&qs.Ops[i])
		var agg *nn.Node
		if e.cfg.UseGAT {
			// Weighted embeddings x* = w ⊙ x (Eq. 2's filter terms) …
			xp := t.Mul(l.wp, prev[i])
			xn, epn := zero, zero
			if left != nil {
				xn = t.Mul(l.wn, prev[left.OpIdx])
				if e.cfg.UseEdges {
					epn = t.Mul(l.wpn, edgeEmb[i][0])
				}
			}
			xm, epm := zero, zero
			if right != nil {
				xm = t.Mul(l.wm, prev[right.OpIdx])
				if e.cfg.UseEdges {
					epm = t.Mul(l.wpm, edgeEmb[i][1])
				}
			}
			// … five pairwise attention scores (Eq. 3, fused kernel),
			// softmax-normalized across the filter's terms (Eq. 4), then
			// the weighted aggregation of Eq. 5.
			logits := t.Concat(
				t.AttnScore(l.aSelf, xp, xp, 0.2),
				t.AttnScore(l.aM, xp, xm, 0.2),
				t.AttnScore(l.aEM, xp, epm, 0.2),
				t.AttnScore(l.aN, xp, xn, 0.2),
				t.AttnScore(l.aEN, xp, epn, 0.2),
			)
			z := t.Softmax(logits)
			agg = t.WeightedSum(z, []*nn.Node{xp, xm, epm, xn, epn})
			agg = t.Add(agg, l.bias)
		} else {
			// Isotropic Eq. 2 in one fused accumulate.
			pairs := append(e.pairScratch[:0], [2]*nn.Node{l.wp, prev[i]})
			if left != nil {
				pairs = append(pairs, [2]*nn.Node{l.wn, prev[left.OpIdx]})
				if e.cfg.UseEdges {
					pairs = append(pairs, [2]*nn.Node{l.wpn, edgeEmb[i][0]})
				}
			}
			if right != nil {
				pairs = append(pairs, [2]*nn.Node{l.wm, prev[right.OpIdx]})
				if e.cfg.UseEdges {
					pairs = append(pairs, [2]*nn.Node{l.wpm, edgeEmb[i][1]})
				}
			}
			agg = t.MulAdd(l.bias, pairs...)
			e.pairScratch = pairs[:0]
		}
		next[i] = t.ReLU(agg)
	}
	return next
}

// gcnForward is the Decima-style alternative used by the "w/o Triangle
// Convolution" ablation: sequential message passing within the layer —
// each node fuses its children's embeddings computed in this same layer,
// which is exactly the over-smoothing pattern §4.2 describes.
func (e *Encoder) gcnForward(t *nn.Tape, qs *QuerySnapshot, l *tcnLayer, prev []*nn.Node) []*nn.Node {
	next := t.NodeSlice(len(prev))
	for i := range qs.Ops {
		// Topological order guarantees children are already computed.
		acc := t.MulAdd(l.bias, [2]*nn.Node{l.wp, prev[i]})
		for _, c := range qs.Ops[i].Children {
			acc = t.Add(acc, next[c.OpIdx])
		}
		next[i] = t.ReLU(acc)
	}
	return next
}
