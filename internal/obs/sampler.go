package obs

import (
	"encoding/json"
	"os"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Sample is one wall-clock snapshot of run state, derived from the
// engine's registry instruments.
type Sample struct {
	// Wall is the wall-clock sample time; Elapsed is seconds since the
	// sampler started.
	Wall    time.Time `json:"wall"`
	Elapsed float64   `json:"elapsed"`
	// QueriesFinished / WorkOrdersCompleted are the cumulative engine
	// counters at sample time.
	QueriesFinished     int64 `json:"queries_finished"`
	WorkOrdersCompleted int64 `json:"workorders_completed"`
	// QueryThroughput / WorkOrderThroughput are per-wall-second rates
	// over the interval since the previous sample.
	QueryThroughput     float64 `json:"query_throughput"`
	WorkOrderThroughput float64 `json:"workorder_throughput"`
	// RunningQueries mirrors the engine_queue_depth gauge (queries in
	// the system at the last scheduler invocation).
	RunningQueries float64 `json:"running_queries"`
	// FreeThreads / PoolSize mirror the worker-pool gauges;
	// Utilization is busy/pool in [0,1] (0 while the pool is unknown).
	FreeThreads float64 `json:"free_threads"`
	PoolSize    float64 `json:"pool_size"`
	Utilization float64 `json:"utilization"`
}

// Sampler periodically snapshots scalar run state into a bounded ring —
// the time-series behind /timeseries. It reads the engine's well-known
// instruments (engine_queries_finished, engine_workorders_completed,
// engine_queue_depth, engine_free_threads, engine_pool_size) from the
// registry it is given. A nil *Sampler (from a nil registry) is a valid
// "sampling disabled" handle: every method no-ops.
type Sampler struct {
	interval time.Duration

	finished    *metrics.Counter
	completed   *metrics.Counter
	queueDepth  *metrics.Gauge
	freeThreads *metrics.Gauge
	poolSize    *metrics.Gauge

	mu      sync.Mutex
	ring    []Sample
	next    int
	full    bool
	started time.Time
	last    Sample
	stop    chan struct{}
	done    chan struct{}
}

// DefaultSampleInterval and DefaultSampleCapacity bound the sampler
// when Options leave them zero: one sample per second, ten minutes
// retained.
const (
	DefaultSampleInterval = time.Second
	DefaultSampleCapacity = 600
)

// NewSampler builds a sampler over the registry. Returns nil (a valid
// disabled sampler) when reg is nil.
func NewSampler(reg *metrics.Registry, interval time.Duration, capacity int) *Sampler {
	if reg == nil {
		return nil
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	return &Sampler{
		interval:    interval,
		finished:    reg.Counter("engine_queries_finished"),
		completed:   reg.Counter("engine_workorders_completed"),
		queueDepth:  reg.Gauge("engine_queue_depth"),
		freeThreads: reg.Gauge("engine_free_threads"),
		poolSize:    reg.Gauge("engine_pool_size"),
		ring:        make([]Sample, 0, capacity),
	}
}

// Start launches the periodic sampling goroutine. No-op on nil or when
// already running.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.stop != nil {
		s.mu.Unlock()
		return
	}
	s.started = time.Now()
	s.last = Sample{Wall: s.started}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	stop, done := s.stop, s.done
	s.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				s.Poll()
			}
		}
	}()
}

// Stop halts the sampling goroutine. No-op on nil or when not running.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Poll takes one sample immediately (also called by the periodic
// goroutine). Safe on nil. The CLIs call it once before dumping the
// series to disk so the final state is always captured.
func (s *Sampler) Poll() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started.IsZero() {
		s.started = now
		s.last = Sample{Wall: now}
	}
	sample := Sample{
		Wall:                now,
		Elapsed:             now.Sub(s.started).Seconds(),
		QueriesFinished:     s.finished.Value(),
		WorkOrdersCompleted: s.completed.Value(),
		RunningQueries:      s.queueDepth.Value(),
		FreeThreads:         s.freeThreads.Value(),
		PoolSize:            s.poolSize.Value(),
	}
	if dt := now.Sub(s.last.Wall).Seconds(); dt > 0 {
		sample.QueryThroughput = float64(sample.QueriesFinished-s.last.QueriesFinished) / dt
		sample.WorkOrderThroughput = float64(sample.WorkOrdersCompleted-s.last.WorkOrdersCompleted) / dt
	}
	if sample.PoolSize > 0 {
		sample.Utilization = (sample.PoolSize - sample.FreeThreads) / sample.PoolSize
	}
	s.last = sample
	if !s.full {
		s.ring = append(s.ring, sample)
		if len(s.ring) == cap(s.ring) {
			s.full = true
		}
	} else {
		s.ring[s.next] = sample
		s.next = (s.next + 1) % len(s.ring)
	}
}

// Samples returns the retained samples oldest-first (nil on a nil or
// empty sampler).
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ring) == 0 {
		return nil
	}
	out := make([]Sample, 0, len(s.ring))
	if s.full {
		out = append(out, s.ring[s.next:]...)
		out = append(out, s.ring[:s.next]...)
	} else {
		out = append(out, s.ring...)
	}
	return out
}

// JSON renders the retained series as the /timeseries payload.
func (s *Sampler) JSON() ([]byte, error) {
	return json.MarshalIndent(timeseriesPayload{Samples: s.Samples()}, "", "  ")
}

// WriteFile dumps the retained series to path as JSON. No-op (no file)
// on a nil sampler.
func (s *Sampler) WriteFile(path string) error {
	if s == nil {
		return nil
	}
	data, err := s.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
