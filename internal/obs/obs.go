// Package obs is the live exposition layer over internal/metrics: an
// embeddable HTTP server that makes a running engine watchable, plus
// the offline exporters it is built from.
//
// PR 1's registry and trace ring are only visible as a one-shot dump at
// process exit; this package turns them into live surfaces:
//
//   - /metrics        Prometheus text exposition format (prom.go)
//   - /metrics.json   the registry Snapshot as JSON
//   - /trace          recent trace events as JSON (?n=limit tails)
//   - /trace.chrome   the trace folded into Chrome trace-event spans
//   - /queries        per-query lifecycle summaries (queries.go)
//   - /timeseries     the wall-clock sampler's ring (sampler.go)
//   - /debug/pprof/   net/http/pprof profiling handlers
//
// The server owns no instrumentation of its own: it reads whatever
// *metrics.Registry and *metrics.Tracer it is given, both of which may
// be nil (endpoints then serve empty payloads). The CLIs wire it up
// behind a -listen flag; with the flag unset nothing here runs, so the
// engine's zero-overhead-when-disabled contract is untouched.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/provenance"
)

// Options configures a Server. Metrics and Trace may each be nil; the
// corresponding endpoints serve empty payloads.
type Options struct {
	Metrics *metrics.Registry
	Trace   *metrics.Tracer
	// SampleInterval is the wall-clock sampler period (default 1s).
	SampleInterval time.Duration
	// SampleCapacity bounds the sampler's time-series ring (default 600
	// samples — ten minutes at the default period).
	SampleCapacity int
	// Policy, when set, backs the /policy endpoint: it returns a
	// JSON-serializable snapshot of the policy lifecycle (active store
	// version, serving version, swap count, known versions — whatever
	// the process wires in, typically via serving.PolicyStatus). Nil
	// serves an empty object.
	Policy func() any
	// FrontDoor, when set, backs the /frontdoor endpoint: a
	// JSON-serializable snapshot of the query front door (per-tenant
	// queue depths, admission counters, rate-limit state — typically
	// frontdoor.Status). Nil serves an empty object.
	FrontDoor func() any
	// Provenance, when set, backs the /decisions explain view: recent
	// flight-recorder records with named features, scores, and joined
	// outcomes (?n=limit, ?kind=schedule|admit filter).
	Provenance *provenance.Recorder
	// Drift, when set, backs the /drift endpoint with the detector's
	// per-feature PSI snapshot. When nil but Provenance carries an
	// attached detector, that one serves instead.
	Drift *provenance.DriftDetector
	// SLO, when set, backs the /slo endpoint: per-tenant/class
	// multi-window error-budget burn rates.
	SLO *provenance.Tracker
	// Cluster, when set, backs the /cluster endpoint: a
	// JSON-serializable snapshot of the routing layer (per-node health,
	// queue depths, policy versions, conservation counters — typically
	// cluster.Status). Nil serves an empty object.
	Cluster func() any
	// Health, when set, backs the /healthz readiness endpoint; nil
	// reports ready (a mounted obs server with no health source is a
	// live process). Not-ready responses use status 503 so plain HTTP
	// probes work without parsing the body.
	Health func() HealthStatus
}

// Server exposes the observability endpoints. Build with NewServer,
// then either Start (listen + background serve) or mount Handler on an
// existing mux.
type Server struct {
	opts    Options
	sampler *Sampler
	mux     *http.ServeMux
	srv     *http.Server
	ln      net.Listener
}

// NewServer builds a server (not yet listening) over the given sources.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:    opts,
		sampler: NewSampler(opts.Metrics, opts.SampleInterval, opts.SampleCapacity),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/trace.chrome", s.handleTraceChrome)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/timeseries", s.handleTimeseries)
	mux.HandleFunc("/policy", s.handlePolicy)
	mux.HandleFunc("/frontdoor", s.handleFrontDoor)
	mux.HandleFunc("/decisions", s.handleDecisions)
	mux.HandleFunc("/drift", s.handleDrift)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// Handler returns the endpoint mux, for mounting on an existing server
// or driving in tests without a listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Sampler returns the server's wall-clock sampler (started by Start).
func (s *Server) Sampler() *Sampler { return s.sampler }

// Start binds addr (host:port; port 0 picks a free one), starts the
// sampler, and serves in a background goroutine. It returns the bound
// address, so callers can print a usable URL even for ":0".
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.sampler.Start()
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln) //nolint:errcheck — Serve always returns on Close
	return ln.Addr().String(), nil
}

// Close stops the sampler and shuts the listener down (no-op when Start
// was never called).
func (s *Server) Close() error {
	s.sampler.Stop()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `lsched observability endpoints:
  /metrics        Prometheus text exposition
  /metrics.json   registry snapshot (JSON)
  /trace          recent trace events (JSON; ?n=100 tails)
  /trace.chrome   Chrome trace-event spans (load in Perfetto)
  /queries        per-query lifecycle summaries (JSON)
  /timeseries     wall-clock sampler ring (JSON)
  /policy         policy lifecycle status (JSON)
  /frontdoor      query front door status (JSON)
  /decisions      recent learned decisions, explained (JSON; ?n, ?kind)
  /drift          per-feature PSI drift vs training reference (JSON)
  /slo            per-tenant/class error-budget burn rates (JSON)
  /cluster        routing layer: per-node health and counters (JSON)
  /healthz        readiness probe (200 ready / 503 not)
  /debug/pprof/   pprof profiling
`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.opts.Metrics.Snapshot())
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.opts.Metrics.Snapshot())
}

// tracePayload is the /trace response shape.
type tracePayload struct {
	// Total counts events ever recorded; when it exceeds len(Events)
	// the ring wrapped (or ?n truncated the response).
	Total  uint64          `json:"total"`
	Events []metrics.Event `json:"events"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	events := s.opts.Trace.Events()
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	writeJSON(w, tracePayload{Total: s.opts.Trace.Total(), Events: events})
}

func (s *Server) handleTraceChrome(w http.ResponseWriter, _ *http.Request) {
	data, err := ChromeTraceJSON(s.opts.Trace.Events())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}

func (s *Server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, BuildQueries(s.opts.Trace.Events()))
}

func (s *Server) handleTimeseries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, timeseriesPayload{Samples: s.sampler.Samples()})
}

func (s *Server) handlePolicy(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Policy == nil {
		writeJSON(w, struct{}{})
		return
	}
	writeJSON(w, s.opts.Policy())
}

func (s *Server) handleFrontDoor(w http.ResponseWriter, _ *http.Request) {
	if s.opts.FrontDoor == nil {
		writeJSON(w, struct{}{})
		return
	}
	writeJSON(w, s.opts.FrontDoor())
}

func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Cluster == nil {
		writeJSON(w, struct{}{})
		return
	}
	writeJSON(w, s.opts.Cluster())
}

// timeseriesPayload is the /timeseries response (and disk-dump) shape.
type timeseriesPayload struct {
	Samples []Sample `json:"samples"`
}

func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}
