package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// get fetches one endpoint from a started server and returns the body.
func get(t *testing.T, addr, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func TestServerEndpoints(t *testing.T) {
	reg, tr, res := runTestSim(t, 7)
	srv := NewServer(Options{Metrics: reg, Trace: tr})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Sampler().Poll()

	t.Run("index", func(t *testing.T) {
		code, body := get(t, addr, "/")
		if code != http.StatusOK || !strings.Contains(string(body), "/metrics") {
			t.Fatalf("index = %d %q", code, body)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, body := get(t, addr, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		text := string(body)
		for _, want := range []string{
			"# TYPE engine_workorders_completed counter",
			"# TYPE engine_queue_depth gauge",
			"# TYPE engine_query_latency histogram",
			`engine_query_latency_bucket{le="+Inf"} ` + fmt.Sprint(len(res.Durations)),
			"engine_query_latency_count " + fmt.Sprint(len(res.Durations)),
		} {
			if !strings.Contains(text, want) {
				t.Errorf("exposition missing %q:\n%s", want, text)
			}
		}
	})

	t.Run("metrics.json", func(t *testing.T) {
		code, body := get(t, addr, "/metrics.json")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var snap metrics.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Counters["engine_workorders_completed"] != int64(res.WorkOrders) {
			t.Fatalf("completed = %d, want %d",
				snap.Counters["engine_workorders_completed"], res.WorkOrders)
		}
	})

	t.Run("trace", func(t *testing.T) {
		code, body := get(t, addr, "/trace")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var payload struct {
			Total  uint64          `json:"total"`
			Events []metrics.Event `json:"events"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Fatal(err)
		}
		if payload.Total == 0 || len(payload.Events) == 0 {
			t.Fatalf("empty trace payload: total=%d events=%d", payload.Total, len(payload.Events))
		}
		// ?n tails the window.
		_, body = get(t, addr, "/trace?n=5")
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Fatal(err)
		}
		if len(payload.Events) != 5 {
			t.Fatalf("tailed events = %d, want 5", len(payload.Events))
		}
		if code, _ := get(t, addr, "/trace?n=bogus"); code != http.StatusBadRequest {
			t.Fatalf("bad n status = %d", code)
		}
	})

	t.Run("trace.chrome", func(t *testing.T) {
		code, body := get(t, addr, "/trace.chrome")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var ct ChromeTrace
		if err := json.Unmarshal(body, &ct); err != nil {
			t.Fatal(err)
		}
		if len(ct.TraceEvents) == 0 {
			t.Fatal("no chrome trace events")
		}
	})

	t.Run("queries", func(t *testing.T) {
		code, body := get(t, addr, "/queries")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var rep QueriesReport
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Finished != len(res.Durations) || rep.Running != 0 {
			t.Fatalf("finished=%d running=%d, want %d/0", rep.Finished, rep.Running, len(res.Durations))
		}
	})

	t.Run("timeseries", func(t *testing.T) {
		code, body := get(t, addr, "/timeseries")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		var payload struct {
			Samples []Sample `json:"samples"`
		}
		if err := json.Unmarshal(body, &payload); err != nil {
			t.Fatal(err)
		}
		if len(payload.Samples) == 0 {
			t.Fatal("no samples after Poll")
		}
		last := payload.Samples[len(payload.Samples)-1]
		if last.QueriesFinished != int64(len(res.Durations)) {
			t.Fatalf("sample queries_finished = %d, want %d", last.QueriesFinished, len(res.Durations))
		}
	})

	t.Run("pprof", func(t *testing.T) {
		code, body := get(t, addr, "/debug/pprof/")
		if code != http.StatusOK || !strings.Contains(string(body), "goroutine") {
			t.Fatalf("pprof index = %d %q", code, truncate(body, 80))
		}
	})

	t.Run("unknown-path", func(t *testing.T) {
		if code, _ := get(t, addr, "/nope"); code != http.StatusNotFound {
			t.Fatalf("status = %d, want 404", code)
		}
	})
}

// TestServerNilSources: a server over nil registry/tracer must serve
// empty payloads, not panic — the CLIs construct sources conditionally.
func TestServerNilSources(t *testing.T) {
	srv := NewServer(Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/metrics.json", "/trace", "/trace.chrome", "/queries", "/timeseries", "/cluster"} {
		if code, _ := get(t, addr, path); code != http.StatusOK {
			t.Errorf("%s status = %d, want 200", path, code)
		}
	}
}

// TestServerCluster: /cluster serves whatever snapshot the routing
// layer provides, verbatim as JSON.
func TestServerCluster(t *testing.T) {
	type nodeView struct {
		ID      string `json:"id"`
		Healthy bool   `json:"healthy"`
	}
	type clusterView struct {
		Policy string     `json:"policy"`
		Nodes  []nodeView `json:"nodes"`
	}
	srv := NewServer(Options{
		Cluster: func() any {
			return clusterView{Policy: "least-loaded", Nodes: []nodeView{{ID: "node-0", Healthy: true}}}
		},
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, addr, "/cluster")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var got clusterView
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Policy != "least-loaded" || len(got.Nodes) != 1 || got.Nodes[0].ID != "node-0" {
		t.Fatalf("cluster payload = %+v", got)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(Options{Metrics: metrics.NewRegistry()})
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv.Close() // second close must not panic or deadlock
	// A never-started server closes cleanly too.
	if err := NewServer(Options{}).Close(); err != nil {
		t.Fatal(err)
	}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
