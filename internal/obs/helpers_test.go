package obs

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/heuristics"
	"repro/internal/metrics"
	"repro/internal/plan"
)

// Test helpers shared by the obs test files: a small deterministic
// simulator run whose registry and trace feed the exposition endpoints,
// the span exporter, and the sampler.

// testChain builds scan -> select -> agg -> finalize.
func testChain(name string, blocks int) *plan.Plan {
	b := plan.NewBuilder(name)
	scan := b.Add(&plan.Operator{Type: plan.TableScan, EstBlocks: blocks})
	sel := b.Add(&plan.Operator{Type: plan.Select, EstBlocks: blocks})
	b.ConnectAuto(scan, sel)
	agg := b.Add(&plan.Operator{Type: plan.Aggregate, EstBlocks: blocks})
	b.ConnectAuto(sel, agg)
	fin := b.Add(&plan.Operator{Type: plan.FinalizeAggregate, EstBlocks: 1})
	b.ConnectAuto(agg, fin)
	return b.MustBuild()
}

// runTestSim executes a fixed mixed workload under FIFO on the
// virtual-time engine and returns the instrumented run's registry,
// trace, and result. Deterministic for a fixed seed.
func runTestSim(t *testing.T, seed int64) (*metrics.Registry, *metrics.Tracer, *engine.SimResult) {
	t.Helper()
	reg := metrics.NewRegistry()
	tr := metrics.NewTracer(1 << 14)
	sim := engine.NewSim(engine.SimConfig{
		Threads: 4, Seed: seed, NoiseFrac: 0.2, Metrics: reg, Trace: tr,
	})
	arrivals := []engine.Arrival{
		{Plan: testChain("q_alpha", 6), At: 0},
		{Plan: testChain("q_beta", 4), At: 0.5},
		{Plan: testChain("q_gamma", 8), At: 1.2},
	}
	res, err := sim.Run(heuristics.FIFO{}, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return reg, tr, res
}
