package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// goldenRegistry builds a fixed registry covering every exposition
// shape: counters, integral and fractional gauges, a histogram with
// empty / populated / overflow buckets, a name needing sanitizing, and
// labeled per-tenant series sharing one metric family.
func goldenRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Counter("engine_workorders_dispatched").Add(1842)
	reg.Counter("engine_queries_finished").Add(20)
	reg.Gauge("engine_queue_depth").Set(3)
	reg.Gauge("engine_free_threads").Set(2.5)
	reg.Gauge("weird-name.with/chars").Set(1)
	h := reg.Histogram("engine_query_latency", []float64{0.1, 1, 10, 100})
	for _, v := range []float64{0.05, 0.5, 0.7, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	// Labeled series: two tenants of one counter family, a labeled
	// gauge, and a labeled histogram whose buckets must merge `le` into
	// the existing label block.
	reg.Counter(metrics.LabeledName("frontdoor_admitted", "tenant", "acme")).Add(7)
	reg.Counter(metrics.LabeledName("frontdoor_admitted", "tenant", "zeta")).Add(3)
	reg.Gauge(metrics.LabeledName("frontdoor_queue_depth", "tenant", "acme", "class", "latency")).Set(4)
	lh := reg.Histogram(metrics.LabeledName("frontdoor_wait", "class", "latency"), []float64{0.01, 0.1})
	lh.Observe(0.005)
	lh.Observe(0.05)
	lh.Observe(2)
	// Label-value edge cases: an empty value, a value needing quote and
	// backslash escaping, and an odd trailing key (pairs with "").
	reg.Counter(metrics.LabeledName("edge_labels", "tenant", "")).Add(1)
	reg.Counter(metrics.LabeledName("edge_labels", "tenant", `say "hi"\now`)).Add(2)
	reg.Gauge(metrics.LabeledName("edge_odd", "dangling")).Set(9)
	return reg
}

// TestPrometheusGolden pins the exposition format byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, goldenRegistry().Snapshot())
	golden := filepath.Join("testdata", "exposition.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/ -update-golden` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestPrometheusNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, nil)
	if buf.Len() != 0 {
		t.Fatalf("nil snapshot wrote %q", buf.String())
	}
	WritePrometheus(&buf, metrics.NewRegistry().Snapshot())
	if buf.Len() != 0 {
		t.Fatalf("empty registry wrote %q", buf.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"engine_queue_depth": "engine_queue_depth",
		"weird-name.with/ch": "weird_name_with_ch",
		"9leading":           "_leading",
		"":                   "_",
		"ok:colon":           "ok:colon",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusBucketsCumulative checks the le-series is cumulative
// and ends at the total count, which is what PromQL's
// histogram_quantile assumes.
func TestPrometheusBucketsCumulative(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, goldenRegistry().Snapshot())
	var last string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "engine_query_latency_bucket{le=\"+Inf\"}") {
			last = line
		}
	}
	if !strings.HasSuffix(last, " 7") {
		t.Fatalf("+Inf bucket %q, want total 7", last)
	}
}

// TestPrometheusLabeledFamilies checks that labeled series render under
// a single # TYPE line per family and that histogram buckets merge the
// le label into the series' own label block.
func TestPrometheusLabeledFamilies(t *testing.T) {
	var buf bytes.Buffer
	WritePrometheus(&buf, goldenRegistry().Snapshot())
	out := buf.String()
	if n := strings.Count(out, "# TYPE frontdoor_admitted counter"); n != 1 {
		t.Fatalf("frontdoor_admitted TYPE lines = %d, want 1\n%s", n, out)
	}
	for _, want := range []string{
		`frontdoor_admitted{tenant="acme"} 7`,
		`frontdoor_admitted{tenant="zeta"} 3`,
		`frontdoor_queue_depth{tenant="acme",class="latency"} 4`,
		`frontdoor_wait_bucket{class="latency",le="0.01"} 1`,
		`frontdoor_wait_bucket{class="latency",le="+Inf"} 3`,
		`frontdoor_wait_sum{class="latency"}`,
		`frontdoor_wait_count{class="latency"} 3`,
		// Edge cases: empty value renders as tenant="", escaped quotes
		// and backslashes survive, odd trailing key pairs with "".
		`edge_labels{tenant=""} 1`,
		`edge_labels{tenant="say \"hi\"\\now"} 2`,
		`edge_odd{dangling=""} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
