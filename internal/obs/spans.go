package obs

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// This file folds the flat engine trace (metrics.Event records) into
// spans and renders them in the Chrome trace-event format, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Two process tracks
// are emitted:
//
//   - pid 1 "queries": one complete span per finished query (admit →
//     finish, reconstructed from the query_finish latency so it works
//     even when the ring dropped the admit event), instant marks for
//     scheduler decisions, and instant marks for queries still running
//     at export time.
//   - pid 2 "workers": one complete span per executed work order on its
//     worker-thread track (reconstructed from the complete event's
//     duration, which equals dispatch → complete).
//
// Timestamps are engine time converted to microseconds — virtual time
// for Sim runs, wall time for Live runs — so the same exporter serves
// both engines and identical Sim runs export identical bytes.

// Chrome trace-event pids for the two tracks.
const (
	pidQueries = 1
	pidWorkers = 2
)

// ChromeEvent is one record of the Chrome trace-event format ("X" =
// complete span, "i" = instant, "M" = metadata).
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the JSON-object flavour of the trace-event format.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const secToMicros = 1e6

// BuildChromeTrace folds trace events into the two-track span model.
func BuildChromeTrace(events []metrics.Event) *ChromeTrace {
	tr := &ChromeTrace{DisplayTimeUnit: "ms"}
	meta := func(name string, pid, tid int, args map[string]any) {
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args,
		})
	}
	meta("process_name", pidQueries, 0, map[string]any{"name": "queries"})
	meta("process_name", pidWorkers, 0, map[string]any{"name": "workers"})

	type queryInfo struct {
		name     string
		admit    float64
		finished bool
	}
	queries := map[int]*queryInfo{}
	q := func(id int) *queryInfo {
		info, ok := queries[id]
		if !ok {
			info = &queryInfo{admit: -1}
			queries[id] = info
		}
		return info
	}
	threads := map[int]bool{}

	var spans []ChromeEvent
	for _, ev := range events {
		switch ev.Kind {
		case metrics.EvQueryAdmit:
			info := q(ev.Query)
			info.admit = ev.Time
			if info.name == "" {
				info.name = ev.Label
			}
		case metrics.EvQueryFinish:
			info := q(ev.Query)
			info.finished = true
			if info.name == "" {
				info.name = ev.Label
			}
			start := ev.Time - ev.Value
			if start < 0 {
				start = 0
			}
			spans = append(spans, ChromeEvent{
				Name: spanName(ev.Label, ev.Query), Cat: "query", Ph: "X",
				Ts: start * secToMicros, Dur: ev.Value * secToMicros,
				Pid: pidQueries, Tid: ev.Query,
				Args: map[string]any{"latency": ev.Value},
			})
		case metrics.EvDecision:
			spans = append(spans, ChromeEvent{
				Name: "decision " + ev.Label, Cat: "sched", Ph: "i", S: "t",
				Ts: ev.Time * secToMicros, Pid: pidQueries, Tid: ev.Query,
				Args: map[string]any{"root_op": ev.Op, "pipeline_depth": ev.Value},
			})
		case metrics.EvComplete:
			if ev.Thread >= 0 {
				threads[ev.Thread] = true
			}
			start := ev.Time - ev.Value
			if start < 0 {
				start = 0
			}
			spans = append(spans, ChromeEvent{
				Name: ev.Label, Cat: "workorder", Ph: "X",
				Ts: start * secToMicros, Dur: ev.Value * secToMicros,
				Pid: pidWorkers, Tid: ev.Thread,
				Args: map[string]any{"query": ev.Query, "op": ev.Op},
			})
		}
	}

	// Queries admitted but not finished inside the retained window get
	// an instant mark so open work is visible in the timeline.
	for _, id := range sortedIntKeys(queries) {
		info := queries[id]
		if info.finished || info.admit < 0 {
			continue
		}
		spans = append(spans, ChromeEvent{
			Name: "admit " + spanName(info.name, id), Cat: "query", Ph: "i", S: "t",
			Ts: info.admit * secToMicros, Pid: pidQueries, Tid: id,
		})
	}

	// Track-name metadata, in deterministic order.
	for _, id := range sortedIntKeys(queries) {
		meta("thread_name", pidQueries, id, map[string]any{"name": spanName(queries[id].name, id)})
	}
	for _, id := range sortedIntKeys(threads) {
		meta("thread_name", pidWorkers, id, map[string]any{"name": fmt.Sprintf("worker %d", id)})
	}

	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Ts < spans[j].Ts })
	tr.TraceEvents = append(tr.TraceEvents, spans...)
	return tr
}

// ChromeTraceJSON renders the folded trace as Chrome trace-event JSON.
func ChromeTraceJSON(events []metrics.Event) ([]byte, error) {
	return json.MarshalIndent(BuildChromeTrace(events), "", " ")
}

// spanName labels a query track/span: "q3 tpch_q14" or "q3" when the
// query name never made it into the retained window.
func spanName(label string, id int) string {
	if label == "" {
		return fmt.Sprintf("q%d", id)
	}
	return fmt.Sprintf("q%d %s", id, label)
}

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
