package obs

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/provenance"
)

// DecisionView is one flight-recorder record rendered for the
// /decisions explain view: feature values paired with their registered
// names, scores, the chosen action vs the heuristic counterfactual, and
// the joined outcome when it has arrived.
type DecisionView struct {
	Seq           uint64 `json:"seq"`
	Kind          string `json:"kind"`
	QueryID       int64  `json:"query_id"`
	Tenant        string `json:"tenant,omitempty"`
	NodeID        string `json:"node_id,omitempty"`
	PolicyVersion int32  `json:"policy_version"`
	UnixNanos     int64  `json:"unix_nanos"`
	Action        int32  `json:"action"`
	ActionArg     int32  `json:"action_arg"`
	Heuristic     int32  `json:"heuristic"`
	// AgreesWithHeuristic reports whether the learned action matched
	// the baseline's counterfactual — the quickest divergence signal.
	AgreesWithHeuristic bool      `json:"agrees_with_heuristic"`
	Scores              []float64 `json:"scores"`
	// FeatureNames label Features positionally; omitted when the
	// recorder has no names registered for this kind (or the vector
	// length does not match them).
	FeatureNames []string            `json:"feature_names,omitempty"`
	Features     []float64           `json:"features"`
	Outcome      *provenance.Outcome `json:"outcome,omitempty"`
}

// DecisionsPayload is the /decisions response shape.
type DecisionsPayload struct {
	Stats   provenance.Stats `json:"stats"`
	Records []DecisionView   `json:"records"`
}

// BuildDecisions renders the newest n records (all kinds when kind is
// nil) from a recorder, oldest first.
func BuildDecisions(rec *provenance.Recorder, n int, kind *provenance.Kind) DecisionsPayload {
	out := DecisionsPayload{Stats: rec.Stats(), Records: []DecisionView{}}
	var names [2][]string
	names[provenance.KindSchedule] = rec.FeatureNames(provenance.KindSchedule)
	names[provenance.KindAdmit] = rec.FeatureNames(provenance.KindAdmit)
	for _, r := range rec.Recent(n) {
		if kind != nil && r.Kind != *kind {
			continue
		}
		v := DecisionView{
			Seq:                 r.Seq,
			Kind:                r.Kind.String(),
			QueryID:             r.QueryID,
			Tenant:              r.Tenant,
			NodeID:              r.NodeID,
			PolicyVersion:       r.PolicyVersion,
			UnixNanos:           r.UnixNanos,
			Action:              r.Action,
			ActionArg:           r.ActionArg,
			Heuristic:           r.Heuristic,
			AgreesWithHeuristic: r.Action == r.Heuristic,
			Scores:              r.Scores,
			Features:            r.Features,
		}
		if kn := names[r.Kind]; len(kn) == len(r.Features) {
			v.FeatureNames = kn
		}
		if r.Outcome.Joined {
			o := r.Outcome
			v.Outcome = &o
		}
		out.Records = append(out.Records, v)
	}
	return out
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n := 50
	if nStr := r.URL.Query().Get("n"); nStr != "" {
		v, err := strconv.Atoi(nStr)
		if err != nil || v < 0 {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		n = v
	}
	var kind *provenance.Kind
	switch k := r.URL.Query().Get("kind"); k {
	case "":
	case "schedule":
		v := provenance.KindSchedule
		kind = &v
	case "admit":
		v := provenance.KindAdmit
		kind = &v
	default:
		http.Error(w, "bad kind parameter (schedule|admit)", http.StatusBadRequest)
		return
	}
	writeJSON(w, BuildDecisions(s.opts.Provenance, n, kind))
}

// driftDetector resolves the serving drift detector: the explicitly
// wired one, else whichever the recorder has attached (admit first).
func (s *Server) driftDetector() *provenance.DriftDetector {
	if s.opts.Drift != nil {
		return s.opts.Drift
	}
	if d := s.opts.Provenance.Drift(provenance.KindAdmit); d != nil {
		return d
	}
	return s.opts.Provenance.Drift(provenance.KindSchedule)
}

func (s *Server) handleDrift(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.driftDetector().Snapshot())
}

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.opts.SLO.Snapshot())
}

// HealthStatus is the /healthz payload.
type HealthStatus struct {
	// Ready gates the HTTP status: true serves 200, false serves 503.
	Ready bool `json:"ready"`
	// Engine describes the execution backend ("up", "down", ...).
	Engine string `json:"engine,omitempty"`
	// Draining reports a shutdown in progress (front door closed).
	Draining bool `json:"draining"`
	// PolicyVersion is the active policy-store version (0 = none).
	PolicyVersion int `json:"policy_version"`
	// Detail carries an optional human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := HealthStatus{Ready: true}
	if s.opts.Health != nil {
		st = s.opts.Health()
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(data) //nolint:errcheck
}
