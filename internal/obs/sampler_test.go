package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestSamplerPoll(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("engine_queries_finished").Add(10)
	reg.Counter("engine_workorders_completed").Add(100)
	reg.Gauge("engine_queue_depth").Set(3)
	reg.Gauge("engine_free_threads").Set(1)
	reg.Gauge("engine_pool_size").Set(4)

	s := NewSampler(reg, time.Hour, 8) // interval irrelevant: Poll directly
	s.Poll()
	reg.Counter("engine_queries_finished").Add(5)
	reg.Counter("engine_workorders_completed").Add(50)
	s.Poll()

	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	first, second := samples[0], samples[1]
	if first.QueriesFinished != 10 || second.QueriesFinished != 15 {
		t.Fatalf("cumulative counts = %d, %d", first.QueriesFinished, second.QueriesFinished)
	}
	if second.RunningQueries != 3 || second.PoolSize != 4 || second.FreeThreads != 1 {
		t.Fatalf("gauges = %+v", second)
	}
	if second.Utilization != 0.75 {
		t.Fatalf("utilization = %v, want 0.75", second.Utilization)
	}
	if second.QueryThroughput <= 0 || second.WorkOrderThroughput <= 0 {
		t.Fatalf("throughput not positive: %+v", second)
	}
	if second.Elapsed < first.Elapsed {
		t.Fatalf("elapsed not monotonic: %v then %v", first.Elapsed, second.Elapsed)
	}
}

func TestSamplerRingBounded(t *testing.T) {
	s := NewSampler(metrics.NewRegistry(), time.Hour, 4)
	for i := 0; i < 11; i++ {
		s.Poll()
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("retained %d, want 4 (bounded ring)", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Elapsed < samples[i-1].Elapsed {
			t.Fatal("samples not oldest-first after wrap")
		}
	}
}

func TestSamplerStartStop(t *testing.T) {
	s := NewSampler(metrics.NewRegistry(), time.Millisecond, 16)
	s.Start()
	s.Start() // double start must not spawn a second goroutine or panic
	deadline := time.Now().Add(2 * time.Second)
	for len(s.Samples()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	if len(s.Samples()) == 0 {
		t.Fatal("periodic sampler produced no samples")
	}
	n := len(s.Samples())
	time.Sleep(5 * time.Millisecond)
	if len(s.Samples()) != n {
		t.Fatal("sampler still running after Stop")
	}
}

func TestSamplerNil(t *testing.T) {
	var s *Sampler
	if s := NewSampler(nil, time.Second, 8); s != nil {
		t.Fatal("NewSampler(nil registry) must return a nil (disabled) sampler")
	}
	s.Start()
	s.Poll()
	s.Stop()
	if s.Samples() != nil {
		t.Fatal("nil sampler samples != nil")
	}
	if err := s.WriteFile(filepath.Join(t.TempDir(), "never.json")); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerWriteFile(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("engine_queries_finished").Add(2)
	s := NewSampler(reg, time.Hour, 8)
	s.Poll()
	path := filepath.Join(t.TempDir(), "timeseries.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var payload struct {
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Samples) != 1 || payload.Samples[0].QueriesFinished != 2 {
		t.Fatalf("dumped payload = %+v", payload)
	}
}
