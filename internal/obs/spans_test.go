package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
)

// TestChromeTraceValidity: the export of a deterministic Sim run must
// be well-formed JSON whose span timestamps are monotonically
// consistent (sorted ts, non-negative ts/dur, spans contained within
// the run's makespan).
func TestChromeTraceValidity(t *testing.T) {
	_, tr, res := runTestSim(t, 3)
	data, err := ChromeTraceJSON(tr.Events())
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("export is not valid JSON")
	}
	var ct ChromeTrace
	if err := json.Unmarshal(data, &ct); err != nil {
		t.Fatal(err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}

	makespanUS := res.Makespan * secToMicros
	var spans, querySpans int
	lastTs := -1.0
	sawMeta := false
	for i, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M":
			sawMeta = true
			if lastTs >= 0 {
				t.Fatalf("metadata event %d after span events", i)
			}
			continue
		case "X", "i":
		default:
			t.Fatalf("unexpected phase %q in event %d", ev.Ph, i)
		}
		if ev.Ts < lastTs {
			t.Fatalf("event %d ts=%v < previous %v (not sorted)", i, ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %d has negative ts/dur: %+v", i, ev)
		}
		if ev.Ph == "X" {
			spans++
			if end := ev.Ts + ev.Dur; end > makespanUS*(1+1e-9) {
				t.Fatalf("span %d ends at %v µs, past makespan %v µs", i, end, makespanUS)
			}
			if ev.Pid == pidQueries {
				querySpans++
			} else if ev.Pid != pidWorkers {
				t.Fatalf("span %d on unknown pid %d", i, ev.Pid)
			}
		}
	}
	if !sawMeta {
		t.Fatal("no metadata (process/thread name) events")
	}
	if querySpans != len(res.Durations) {
		t.Fatalf("query spans = %d, want %d (one per finished query)", querySpans, len(res.Durations))
	}
	if workerSpans := spans - querySpans; workerSpans != res.WorkOrders {
		t.Fatalf("worker spans = %d, want %d (one per work order)", workerSpans, res.WorkOrders)
	}
}

// TestChromeTraceDeterministic: identical Sim runs export identical
// bytes (map iteration must not leak into the output order).
func TestChromeTraceDeterministic(t *testing.T) {
	_, tr1, _ := runTestSim(t, 11)
	_, tr2, _ := runTestSim(t, 11)
	d1, err := ChromeTraceJSON(tr1.Events())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ChromeTraceJSON(tr2.Events())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("identical runs exported different chrome traces")
	}
}

// TestChromeTraceDroppedAdmit: a wrapped ring that lost the admit event
// must still produce a query span (reconstructed from the finish
// latency) and an instant mark for still-running queries.
func TestChromeTraceDroppedAdmit(t *testing.T) {
	events := []metrics.Event{
		// finish without admit: span reconstructed from latency
		{Kind: metrics.EvQueryFinish, Time: 10, Query: 0, Op: -1, Thread: -1, Value: 4, Label: "qa"},
		// admit without finish: instant mark
		{Kind: metrics.EvQueryAdmit, Time: 8, Query: 1, Op: -1, Thread: -1, Label: "qb"},
	}
	ct := BuildChromeTrace(events)
	var span, instant bool
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" && ev.Tid == 0 && ev.Ts == 6*secToMicros && ev.Dur == 4*secToMicros {
			span = true
		}
		if ev.Ph == "i" && ev.Tid == 1 && ev.Ts == 8*secToMicros {
			instant = true
		}
	}
	if !span {
		t.Fatalf("no reconstructed span for finish-only query: %+v", ct.TraceEvents)
	}
	if !instant {
		t.Fatalf("no instant mark for running query: %+v", ct.TraceEvents)
	}
}

func TestBuildQueries(t *testing.T) {
	_, tr, res := runTestSim(t, 5)
	rep := BuildQueries(tr.Events())
	if rep.Finished != len(res.Durations) || rep.Running != 0 {
		t.Fatalf("finished=%d running=%d, want %d/0", rep.Finished, rep.Running, len(res.Durations))
	}
	totalWOs := 0
	for _, q := range rep.Queries {
		if !q.Done {
			t.Fatalf("query %d not done: %+v", q.ID, q)
		}
		if got, want := q.Latency, res.Durations[q.ID]; got != want {
			t.Fatalf("query %d latency = %v, want %v", q.ID, got, want)
		}
		if q.Finish-q.Admit != q.Latency {
			t.Fatalf("query %d finish-admit = %v, want latency %v", q.ID, q.Finish-q.Admit, q.Latency)
		}
		if q.WorkOrders == 0 || q.Decisions == 0 {
			t.Fatalf("query %d has no work orders / decisions: %+v", q.ID, q)
		}
		if q.MeanWorkOrder <= 0 {
			t.Fatalf("query %d mean work order = %v", q.ID, q.MeanWorkOrder)
		}
		totalWOs += q.WorkOrders
	}
	if totalWOs != res.WorkOrders {
		t.Fatalf("summed work orders = %d, want %d", totalWOs, res.WorkOrders)
	}
	if rep.LatencyP50 <= 0 || rep.LatencyP99 < rep.LatencyP50 || rep.LatencyMean <= 0 {
		t.Fatalf("implausible latency stats: %+v", rep)
	}
	// Dropped-admit reconstruction.
	partial := BuildQueries([]metrics.Event{
		{Kind: metrics.EvQueryFinish, Time: 10, Query: 3, Op: -1, Thread: -1, Value: 4, Label: "qx"},
	})
	if len(partial.Queries) != 1 || partial.Queries[0].Admit != 6 {
		t.Fatalf("reconstructed admit = %+v", partial.Queries)
	}
	// Empty trace.
	empty := BuildQueries(nil)
	if len(empty.Queries) != 0 || empty.Finished != 0 || empty.Running != 0 {
		t.Fatalf("empty report = %+v", empty)
	}
}
