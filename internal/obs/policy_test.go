package obs

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/heuristics"
	"repro/internal/metrics"
	"repro/internal/policystore"
	"repro/internal/serving"
)

// TestPolicyEndpoint wires a real store and hot slot behind /policy and
// checks the payload reflects them (and that a policy-less server still
// answers).
func TestPolicyEndpoint(t *testing.T) {
	store, err := policystore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := store.Put(policystore.PutOptions{Params: []byte("params"), Source: "test"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Promote(1); err != nil {
		t.Fatal(err)
	}
	hot := serving.NewHotAgent(heuristics.Fair{}, 1)
	hot.Install(heuristics.Fair{}, 2) // one hot-swap

	srv := NewServer(Options{Policy: serving.PolicyStatusProvider(store, hot)})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := get(t, addr, "/policy")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var st serving.PolicyStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("bad /policy JSON: %v\n%s", err, body)
	}
	if st.ActiveVersion != 1 {
		t.Errorf("active_version = %d, want 1", st.ActiveVersion)
	}
	if st.ServingVersion != 2 {
		t.Errorf("serving_version = %d, want 2", st.ServingVersion)
	}
	if st.Swaps != 1 {
		t.Errorf("swaps = %d, want 1", st.Swaps)
	}
	if len(st.Versions) != 2 {
		t.Errorf("versions = %+v, want 2 entries", st.Versions)
	}

	// The index advertises the endpoint.
	if _, idx := get(t, addr, "/"); !strings.Contains(string(idx), "/policy") {
		t.Error("index does not list /policy")
	}

	// Without a provider the endpoint serves an empty object, not 404.
	bare := NewServer(Options{})
	bareAddr, err := bare.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	code, body = get(t, bareAddr, "/policy")
	if code != http.StatusOK || strings.TrimSpace(string(body)) != "{}" {
		t.Fatalf("policy-less /policy = %d %q, want 200 {}", code, body)
	}
}

// TestPolicyCountersExposition checks the lifecycle counters registered
// by the serving instruments surface in the Prometheus text format.
func TestPolicyCountersExposition(t *testing.T) {
	reg := metrics.NewRegistry()

	hot := serving.NewHotAgent(heuristics.Fair{}, 1)
	hot.Instrument(reg)
	hot.Install(heuristics.Fair{}, 2) // policy_swaps_total -> 1

	store, err := policystore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prom, err := serving.NewPromoter(serving.PromoterConfig{
		Store: store,
		Hot:   hot,
		Load: func(ck *policystore.Checkpoint) (engine.Scheduler, error) {
			return heuristics.Fair{}, nil
		},
		Eval: serving.EvalConfig{Arrivals: make([]engine.Arrival, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	prom.Instrument(reg) // registers the promotion/rollback counters

	srv := NewServer(Options{Metrics: reg})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, body := get(t, addr, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE policy_swaps_total counter",
		"policy_swaps_total 1",
		"# TYPE policy_rollbacks_total counter",
		"policy_rollbacks_total 0",
		"policy_promotions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
