package obs

import (
	"sort"

	"repro/internal/metrics"
)

// QuerySummary is one query's lifecycle folded out of the trace:
// admit → finish, the scheduler decisions it received, and its
// work-order volume.
type QuerySummary struct {
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`
	// Admit is the engine time the query entered the system. When the
	// ring dropped the admit event it is reconstructed from the finish
	// latency (finished queries) or reported as -1 (running queries).
	Admit float64 `json:"admit"`
	// Finish / Latency are set once the query's sink completed.
	Finish  float64 `json:"finish,omitempty"`
	Latency float64 `json:"latency,omitempty"`
	Done    bool    `json:"done"`
	// WorkOrders / WorkSeconds aggregate the completions observed inside
	// the retained trace window (a wrapped ring undercounts old work).
	WorkOrders  int     `json:"work_orders"`
	WorkSeconds float64 `json:"work_seconds"`
	// MeanWorkOrder is WorkSeconds / WorkOrders.
	MeanWorkOrder float64 `json:"mean_work_order,omitempty"`
	// Decisions counts scheduler decisions that activated one of the
	// query's execution roots.
	Decisions int `json:"decisions"`
}

// QueriesReport is the /queries payload: every query seen in the trace
// plus latency statistics over the finished ones.
type QueriesReport struct {
	Queries  []QuerySummary `json:"queries"`
	Finished int            `json:"finished"`
	Running  int            `json:"running"`
	// Latency statistics over finished queries (linear-interpolated
	// percentiles; zero when nothing finished yet).
	LatencyMean float64 `json:"latency_mean,omitempty"`
	LatencyP50  float64 `json:"latency_p50,omitempty"`
	LatencyP95  float64 `json:"latency_p95,omitempty"`
	LatencyP99  float64 `json:"latency_p99,omitempty"`
}

// BuildQueries folds a flat trace into per-query summaries. It
// tolerates a wrapped ring: queries whose admit event was dropped are
// reconstructed from later events where possible.
func BuildQueries(events []metrics.Event) *QueriesReport {
	byID := map[int]*QuerySummary{}
	get := func(id int) *QuerySummary {
		s, ok := byID[id]
		if !ok {
			s = &QuerySummary{ID: id, Admit: -1}
			byID[id] = s
		}
		return s
	}
	for _, ev := range events {
		if ev.Query < 0 {
			continue
		}
		switch ev.Kind {
		case metrics.EvQueryAdmit:
			s := get(ev.Query)
			s.Admit = ev.Time
			if s.Name == "" {
				s.Name = ev.Label
			}
		case metrics.EvQueryFinish:
			s := get(ev.Query)
			s.Done = true
			s.Finish = ev.Time
			s.Latency = ev.Value
			if s.Admit < 0 {
				s.Admit = ev.Time - ev.Value
			}
			if s.Name == "" {
				s.Name = ev.Label
			}
		case metrics.EvComplete:
			s := get(ev.Query)
			s.WorkOrders++
			s.WorkSeconds += ev.Value
		case metrics.EvDecision:
			get(ev.Query).Decisions++
		}
	}

	rep := &QueriesReport{Queries: make([]QuerySummary, 0, len(byID))}
	var latencies []float64
	for _, id := range sortedIntKeys(byID) {
		s := byID[id]
		if s.WorkOrders > 0 {
			s.MeanWorkOrder = s.WorkSeconds / float64(s.WorkOrders)
		}
		if s.Done {
			rep.Finished++
			latencies = append(latencies, s.Latency)
		} else {
			rep.Running++
		}
		rep.Queries = append(rep.Queries, *s)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		sum := 0.0
		for _, l := range latencies {
			sum += l
		}
		rep.LatencyMean = sum / float64(len(latencies))
		rep.LatencyP50 = percentile(latencies, 0.50)
		rep.LatencyP95 = percentile(latencies, 0.95)
		rep.LatencyP99 = percentile(latencies, 0.99)
	}
	return rep
}

// percentile linearly interpolates the p-quantile of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}
