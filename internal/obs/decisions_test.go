package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/provenance"
)

// provenanceFixture builds a recorder, drift detector, and SLO tracker
// with injected clocks so the endpoint JSON is byte-stable.
func provenanceFixture() (*provenance.Recorder, *provenance.DriftDetector, *provenance.Tracker) {
	var tick int64
	rec := provenance.NewRecorder(provenance.Options{Capacity: 16, Now: func() int64 {
		tick++
		return 1_700_000_000_000_000_000 + tick*1_000_000
	}})
	rec.SetFeatureNames(provenance.KindAdmit, []string{"queue_depth", "pred_dur"})

	d := provenance.NewDriftDetector(provenance.DriftConfig{
		Names: []string{"queue_depth", "pred_dur"}, Window: 8, MinSamples: 4, UpdateEvery: 1,
	})
	ref, err := provenance.BuildReference(
		[]string{"queue_depth", "pred_dur"},
		[][]float64{{0, 0.1}, {1, 0.2}, {2, 0.3}, {3, 0.4}, {4, 0.5}, {5, 0.6}, {6, 0.7}, {7, 0.8}},
		4)
	if err != nil {
		panic(err)
	}
	if err := d.SetReference(ref); err != nil {
		panic(err)
	}
	rec.SetDrift(provenance.KindAdmit, d)

	clock := time.Unix(1_700_000_000, 0)
	slo := provenance.NewSLOTracker(provenance.SLOConfig{Now: func() time.Time { return clock }})

	// Two admissions: one admitted and joined, one shed.
	rec.Record(provenance.KindAdmit, 1, "acme", 3, []float64{2, 0.25}, []float64{0.9}, 0, 0, 0)
	rec.Record(provenance.KindAdmit, 2, "zeta", 3, []float64{6, 0.75}, []float64{0.1}, 2, 0, 0)
	rec.JoinOutcome(provenance.KindAdmit, 1, provenance.Outcome{
		LatencySecs: 0.5, DeadlineMet: true, DurPredErr: 0.05,
	})
	rec.JoinOutcome(provenance.KindAdmit, 2, provenance.Outcome{Shed: true})
	// One schedule decision with no registered names and no outcome yet.
	rec.Record(provenance.KindSchedule, 10, "", 3, []float64{1, 2, 3}, []float64{0.4, 0.6}, 0, 1, 0)

	slo.Observe("acme", "latency", true)
	slo.Observe("zeta", "latency", false)
	slo.Observe("zeta", "latency", true)
	return rec, d, slo
}

// checkGoldenJSON compares a handler body against testdata/<name>,
// honoring -update-golden.
func checkGoldenJSON(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/ -update-golden` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func serve(t *testing.T, s *Server, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rw := httptest.NewRecorder()
	s.Handler().ServeHTTP(rw, req)
	return rw.Code, rw.Body.Bytes()
}

func TestDecisionsEndpointGolden(t *testing.T) {
	rec, d, slo := provenanceFixture()
	s := NewServer(Options{Provenance: rec, Drift: d, SLO: slo})

	code, body := serve(t, s, "/decisions")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	checkGoldenJSON(t, "decisions.json", body)

	code, body = serve(t, s, "/drift")
	if code != http.StatusOK {
		t.Fatalf("drift status %d", code)
	}
	checkGoldenJSON(t, "drift.json", body)

	code, body = serve(t, s, "/slo")
	if code != http.StatusOK {
		t.Fatalf("slo status %d", code)
	}
	checkGoldenJSON(t, "slo.json", body)
}

func TestDecisionsFilters(t *testing.T) {
	rec, _, _ := provenanceFixture()
	s := NewServer(Options{Provenance: rec})

	code, body := serve(t, s, "/decisions?kind=admit")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	out := string(body)
	if strings.Contains(out, `"kind": "schedule"`) {
		t.Fatal("kind filter leaked schedule records")
	}
	if !strings.Contains(out, `"kind": "admit"`) {
		t.Fatal("kind filter dropped admit records")
	}

	if code, _ := serve(t, s, "/decisions?kind=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus kind = %d, want 400", code)
	}
	if code, _ := serve(t, s, "/decisions?n=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad n = %d, want 400", code)
	}
	if code, body := serve(t, s, "/decisions?n=1"); code != http.StatusOK ||
		strings.Count(string(body), `"seq"`) != 1 {
		t.Fatalf("n=1 returned %d records", strings.Count(string(body), `"seq"`))
	}
}

func TestDecisionsEndpointsNilSources(t *testing.T) {
	s := NewServer(Options{})
	for _, path := range []string{"/decisions", "/drift", "/slo"} {
		if code, _ := serve(t, s, path); code != http.StatusOK {
			t.Fatalf("%s with nil sources = %d, want 200", path, code)
		}
	}
}

func TestDriftFallsBackToRecorderDetector(t *testing.T) {
	rec, d, _ := provenanceFixture()
	s := NewServer(Options{Provenance: rec}) // Drift not wired explicitly
	if got := s.driftDetector(); got != d {
		t.Fatal("driftDetector did not fall back to the recorder's attached detector")
	}
}

func TestHealthz(t *testing.T) {
	// No health source: ready by default.
	s := NewServer(Options{})
	code, body := serve(t, s, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ready": true`) {
		t.Fatalf("default healthz = %d %s", code, body)
	}

	st := HealthStatus{Ready: true, Engine: "up", PolicyVersion: 4}
	s = NewServer(Options{Health: func() HealthStatus { return st }})
	code, body = serve(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("ready healthz = %d", code)
	}
	for _, want := range []string{`"ready": true`, `"engine": "up"`, `"policy_version": 4`, `"draining": false`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("healthz body missing %q:\n%s", want, body)
		}
	}

	st = HealthStatus{Ready: false, Draining: true, Detail: "draining for shutdown"}
	code, body = serve(t, s, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("not-ready healthz = %d, want 503", code)
	}
	if !strings.Contains(string(body), `"draining": true`) ||
		!strings.Contains(string(body), "draining for shutdown") {
		t.Fatalf("not-ready body:\n%s", body)
	}
}
