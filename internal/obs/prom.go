package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum`/`_count`. Instrument names composed with metrics.LabeledName
// carry a `{k="v",...}` label block; the block is preserved on every
// sample and the base name alone forms the metric family, so per-tenant
// series of one counter share a single `# TYPE` line. Output is sorted
// by instrument name, so identical snapshots render identical bytes
// (the golden test pins the format). A nil snapshot writes nothing.
func WritePrometheus(w io.Writer, s *metrics.Snapshot) {
	if s == nil {
		return
	}
	typed := map[string]struct{}{}
	for _, name := range sortedKeys(s.Counters) {
		base, labels := promParts(name)
		writeType(w, typed, base, "counter")
		fmt.Fprintf(w, "%s%s %d\n", base, labels, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := promParts(name)
		writeType(w, typed, base, "gauge")
		fmt.Fprintf(w, "%s%s %s\n", base, labels, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base, labels := promParts(name)
		writeType(w, typed, base, "histogram")
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLabel(labels, "le", le), cum)
		}
		fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count)
	}
}

// writeType emits the `# TYPE` header once per metric family: labeled
// series sort adjacently under their shared base, and Prometheus
// rejects expositions that repeat a family's TYPE line.
func writeType(w io.Writer, typed map[string]struct{}, base, kind string) {
	if _, ok := typed[base]; ok {
		return
	}
	typed[base] = struct{}{}
	fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
}

// promParts splits an instrument name into its sanitized base name and
// its label block (empty when the name carries no labels).
func promParts(name string) (base, labels string) {
	base, labels = metrics.SplitLabeledName(name)
	return promName(base), labels
}

// withLabel appends one `k="v"` pair to a label block, opening a fresh
// block when there is none — how the histogram `le` label merges with
// per-tenant labels.
func withLabel(labels, k, v string) string {
	pair := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + pair + "}"
}

// promName sanitizes an instrument name into the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trip representation).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
