package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum`/`_count`. Output is sorted by metric name, so identical
// snapshots render identical bytes (the golden test pins the format).
// A nil snapshot writes nothing.
func WritePrometheus(w io.Writer, s *metrics.Snapshot) {
	if s == nil {
		return
	}
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum)
		}
		fmt.Fprintf(w, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
}

// promName sanitizes an instrument name into the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

// promFloat formats a float the way Prometheus expects (shortest
// round-trip representation).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
