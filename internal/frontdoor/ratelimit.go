package frontdoor

import "time"

// bucket is a token-bucket rate limiter: tokens refill continuously at
// rate per second up to burst; each allowed submission spends one.
// Guarded by the front door's lock — no internal synchronization.
type bucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// init configures the bucket. rate <= 0 disables limiting; burst <= 0
// defaults to max(rate, 1) so a idle tenant can always send a small
// burst.
func (b *bucket) init(rate, burst float64, now time.Time) {
	b.rate = rate
	b.burst = burst
	if b.burst <= 0 {
		b.burst = rate
		if b.burst < 1 {
			b.burst = 1
		}
	}
	b.tokens = b.burst
	b.last = now
}

// allow reports whether one more submission fits the budget, refilling
// first.
func (b *bucket) allow(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
