// Package frontdoor is the multi-tenant query ingress in front of the
// live engine: every arriving query is validated, rate-limited, and
// placed in its tenant's bounded per-SLO-class queue; admission passes
// drain the queues into a bounded executor-slot pool, consulting an
// admission Controller — the heuristic tail-drop baseline or the
// learned head on the LSched agent (fed by queue depth, in-flight
// counts, and the cost model's whole-plan O-DUR/O-MEM predictions) —
// for the admit / defer / shed decision. The HTTP (http.go) and RPC
// (rpc.go) ingresses layer on top; the RPC ingress mounts on an
// rpcsched.Server so it inherits the graceful-shutdown drain and
// per-connection I/O deadlines.
//
// Two cores implement the machinery behind one FrontDoor facade. The
// default sharded core (shard.go) hash-partitions tenants across
// power-of-two shards, each owning its tenants' queues, token buckets,
// deadline sweep, and drain loop, so Submit → admit → dispatch never
// crosses a global lock; cross-shard load state lives in atomics and
// executor slots are a CAS semaphore with bounded work-stealing. The
// legacy single-mutex, single-drain-loop core (single.go) is retained
// under Options.SingleLoop as the honest A/B baseline.
//
// Every submitted query reaches exactly one terminal bucket, giving
// the conservation invariant the stress tests pin:
//
//	admitted + shed + rejected == submitted
//
// Rejected means never queued (validation, rate limit, full queue,
// shutting down); shed means queued but dropped (load shedding,
// deadline expiry, cancellation, shutdown); admitted means handed an
// executor slot. On the sharded core the invariant holds as a sum
// over per-shard terminal buckets.
package frontdoor

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/costmodel"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/provenance"
)

// Class is a query's SLO class.
type Class int

const (
	// ClassLatency is the latency-sensitive class: drained first,
	// deadline-checked, its p99 is the number the front door defends.
	ClassLatency Class = iota
	// ClassThroughput is the best-effort bulk class.
	ClassThroughput
	numClasses
)

// String returns the class's label (as used in metric labels).
func (c Class) String() string {
	switch c {
	case ClassLatency:
		return "latency"
	case ClassThroughput:
		return "throughput"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Query is one unit of admission-controlled work.
type Query struct {
	// Tenant names the submitting tenant (validated by DecodeRequest).
	Tenant string
	// Class is the query's SLO class.
	Class Class
	// Deadline is the latency budget from submission (0 = none). A
	// query whose deadline passes while queued is shed.
	Deadline time.Duration
	// Ops summarizes the plan for the cost model's whole-plan
	// O-DUR/O-MEM prediction: one entry per operator, keyed by operator
	// type, scaled by the optimizer's block estimate. DecodeRequest
	// fills it; backends may also consume it directly.
	Ops []costmodel.OpWork
	// Payload carries backend-specific execution state (the engine
	// backend stores the *plan.Plan here).
	Payload any
}

// Outcome is a ticket's terminal bucket.
type Outcome int

const (
	// OutcomeAdmitted: the query got an executor slot (its Disposition
	// arrives once execution finishes).
	OutcomeAdmitted Outcome = iota
	// OutcomeShed: queued, then dropped.
	OutcomeShed
	// OutcomeRejected: never queued.
	OutcomeRejected
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAdmitted:
		return "admitted"
	case OutcomeShed:
		return "shed"
	case OutcomeRejected:
		return "rejected"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Disposition is the final answer for one submitted query.
type Disposition struct {
	Outcome Outcome
	// Reason explains shed/reject outcomes ("rate_limit", "queue_full",
	// "deadline", "load", "cancelled", "shutdown", ...).
	Reason string
	// Wait is the time spent queued.
	Wait time.Duration
	// Latency is submit-to-completion (admitted queries only).
	Latency time.Duration
	// DeadlineMet reports whether an admitted query finished within its
	// deadline (true when it has none).
	DeadlineMet bool
	// Err is the backend's execution error (admitted queries only).
	Err error
}

// Ticket tracks one submitted query. Exactly one Disposition is
// delivered on Done.
type Ticket struct {
	Query *Query

	fd    *FrontDoor
	done  chan Disposition
	enq   time.Time
	state ticketState
	feat  lsched.AdmissionFeatures // features at decision time (learning feedback)
	// predDur/predMem cache the estimator's totals for this query: the
	// prediction depends only on the query's ops, so re-decisions of a
	// deferred ticket reuse it instead of re-walking the cost windows
	// on every admission pass. Guarded by the owner core/shard lock.
	predDur, predMem float64
	predDone         bool
	// provID keys this query's flight-recorder records: the front
	// door's submission sequence number, unique across tenants (and,
	// on the sharded core, across shards).
	provID int64
}

type ticketState int

const (
	stateQueued ticketState = iota
	stateAdmitted
	stateResolved // shed or rejected
)

// Done delivers the ticket's final disposition (buffered; never blocks
// the front door).
func (t *Ticket) Done() <-chan Disposition { return t.done }

// Cancel withdraws a still-queued query (counted as shed). Cancelling
// an admitted or already-resolved ticket is a no-op.
func (t *Ticket) Cancel() { t.fd.core.cancel(t) }

// Controller makes the admission decision for the query at the head of
// a queue. Decide runs under the deciding shard's lock (the whole-door
// lock on the single-loop core) and may run concurrently from several
// shards — implementations must be safe for concurrent use and must
// not block or resubmit.
type Controller interface {
	Name() string
	// Decide returns the action for the candidate query given the
	// current admission features.
	Decide(f *lsched.AdmissionFeatures, q *Query) Decision
	// Observe feeds back an admitted query's outcome (deadline met or
	// not) with the features it was admitted under. No-op for
	// non-learning controllers. Called from executor goroutines.
	Observe(f *lsched.AdmissionFeatures, q *Query, deadlineMet bool)
}

// Decision is a Controller's verdict.
type Decision int

const (
	// Admit grants the query an executor slot now.
	Admit Decision = iota
	// Defer leaves the query queued for a later pass (e.g. reserving
	// the last slots for the latency class).
	Defer
	// Shed drops the query now, before it wastes queue time or an
	// executor slot.
	Shed
)

// Backend executes admitted queries. Run is called from per-query
// goroutines and must be safe for concurrent use.
type Backend interface {
	Run(q *Query) (*Result, error)
}

// Result is what a backend reports per completed query; the per-type
// stats feed the cost model that prices future admissions.
type Result struct {
	// OpDurations/OpMemory are mean per-work-order duration and memory
	// by operator-type key (matching Query.Ops keys). Nil when the
	// backend has nothing to report.
	OpDurations map[int]float64
	OpMemory    map[int]float64
}

// Options configures a FrontDoor.
type Options struct {
	// Backend executes admitted queries (required).
	Backend Backend
	// Controller makes admission decisions; nil selects the heuristic
	// baseline.
	Controller Controller
	// MaxInFlight bounds concurrently executing queries (default 8).
	MaxInFlight int
	// QueueCap bounds each tenant's queue per SLO class (default 256);
	// submissions beyond it are rejected ("queue_full").
	QueueCap int
	// MaxTenants bounds the tenant map (default 1024); submissions from
	// further tenants are rejected ("tenant_limit").
	MaxTenants int
	// Rate and Burst configure the per-tenant token bucket
	// (queries/sec; Rate 0 disables rate limiting).
	Rate, Burst float64
	// Estimator prices incoming plans (O-DUR/O-MEM); nil creates one
	// with generic priors, fed online by backend results.
	Estimator *costmodel.Estimator
	// SweepInterval is how often each drain loop sheds expired queued
	// queries even when no completions arrive (default 25ms).
	SweepInterval time.Duration
	// Shards is the number of independent tenant shards (rounded up to
	// a power of two, default GOMAXPROCS). Each shard owns its tenants'
	// queues, buckets, deadline sweep, and drain loop. Ignored when
	// SingleLoop is set.
	Shards int
	// SingleLoop selects the original single-mutex, single-drain-loop
	// core instead of the sharded one — kept for honest A/B comparison
	// (BenchmarkFrontDoorSubmit) and as a fallback.
	SingleLoop bool
	// Metrics instruments the front door (nil disables).
	Metrics *metrics.Registry
	// Provenance, when set, flight-records every admission verdict
	// (KindAdmit, keyed by submission sequence) and joins it to the
	// query's outcome at completion or shed time.
	Provenance *provenance.Recorder
	// SLO, when set, receives one deadline-met observation per
	// terminal query outcome, keyed by (tenant, class).
	SLO *provenance.Tracker
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Controller == nil {
		out.Controller = NewHeuristic()
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 8
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 256
	}
	if out.MaxTenants <= 0 {
		out.MaxTenants = 1024
	}
	if out.Estimator == nil {
		out.Estimator = costmodel.NewEstimator(32, 0.01, 1)
	}
	if out.SweepInterval <= 0 {
		out.SweepInterval = 25 * time.Millisecond
	}
	if out.Shards <= 0 {
		out.Shards = runtime.GOMAXPROCS(0)
	}
	out.Shards = ceilPow2(out.Shards)
	if out.Shards > maxShards {
		out.Shards = maxShards
	}
	return out
}

// maxShards caps the shard count: beyond this, per-shard drain
// goroutines and sweep tickers cost more than the contention they
// remove.
const maxShards = 256

// ceilPow2 rounds n up to the next power of two (n >= 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// admissionCore is the machinery behind the FrontDoor facade: the
// sharded core (shard.go, the default) or the single-loop core
// (single.go, Options.SingleLoop).
type admissionCore interface {
	submit(t *Ticket) (*Ticket, error)
	cancel(t *Ticket)
	draining() bool
	stats() Stats
	status() StatusData
	shutdown(drainTimeout time.Duration) bool
}

// FrontDoor is the admission-controlled query ingress. Build with New,
// submit with Submit (or via the HTTP/RPC ingresses), stop with
// Shutdown.
type FrontDoor struct {
	opts Options
	ins  *instruments
	core admissionCore
}

// tenant is one tenant's queues, token bucket, and cached instruments.
// A tenant belongs to exactly one core (and, on the sharded core, one
// shard); all fields are guarded by its owner's lock.
type tenant struct {
	name     string
	queues   [numClasses][]*Ticket
	bucket   bucket
	inflight int

	submitted, admitted, shed, rejected int64

	ins tenantInstruments
}

// New builds and starts a front door.
func New(opts Options) (*FrontDoor, error) {
	if opts.Backend == nil {
		return nil, fmt.Errorf("frontdoor: Options.Backend is required")
	}
	o := opts.withDefaults()
	fd := &FrontDoor{opts: o, ins: newInstruments(o.Metrics)}
	if o.SingleLoop {
		fd.core = newSingleCore(fd)
	} else {
		fd.core = newShardedCore(fd)
	}
	return fd, nil
}

// Controller returns the front door's admission controller.
func (fd *FrontDoor) Controller() Controller { return fd.opts.Controller }

// Estimator returns the cost model pricing admissions.
func (fd *FrontDoor) Estimator() *costmodel.Estimator { return fd.opts.Estimator }

// Submit validates, rate-limits, and enqueues a query. The returned
// ticket's Done channel always delivers exactly one Disposition;
// rejected submissions also return a non-nil error.
func (fd *FrontDoor) Submit(q *Query) (*Ticket, error) {
	t := &Ticket{Query: q, fd: fd, done: make(chan Disposition, 1), enq: time.Now()}
	return fd.core.submit(t)
}

// Draining reports whether the front door has begun shutdown (new
// submissions are rejected) — the /healthz readiness signal.
func (fd *FrontDoor) Draining() bool { return fd.core.draining() }

// Stats is a conservation-accounting snapshot. On the sharded core the
// terminal counts are sums over per-shard buckets; after a quiesce
// (shutdown, or all tickets resolved) they are exact.
type Stats struct {
	Submitted, Admitted, Shed, Rejected int64
	Queued, InFlight                    int
}

// Stats returns the current terminal-bucket counts.
func (fd *FrontDoor) Stats() Stats { return fd.core.stats() }

// Status snapshots the front door for the obs /frontdoor endpoint
// (wire it as obs.Options.FrontDoor = fd.Status).
func (fd *FrontDoor) Status() any { return fd.core.status() }

// Shutdown stops the front door: new submissions are rejected, every
// queued query is shed ("shutdown"), and in-flight queries are drained
// (bounded by drainTimeout; <= 0 waits indefinitely). It reports
// whether the drain completed.
func (fd *FrontDoor) Shutdown(drainTimeout time.Duration) bool {
	return fd.core.shutdown(drainTimeout)
}

// loadSnapshot is the load view admission features are computed from:
// whole-door occupancy at (approximately) decision time. The single
// core reads it under its lock; the sharded core assembles it from the
// global atomics (see shard.go).
type loadSnapshot struct {
	queued    int     // queued queries, all classes
	queuedLat int     // queued latency-class queries
	inflight  int     // executing queries
	avgDur    float64 // EWMA of admitted-query service time (seconds)
}

// fillFeatures computes the admission features for t given the load
// view. The caller holds the lock guarding tn.
func fillFeatures(f *lsched.AdmissionFeatures, o *Options, tn *tenant, t *Ticket, now time.Time, v loadSnapshot) {
	q := t.Query
	if !t.predDone {
		t.predDur, t.predMem = o.Estimator.PredictTotals(q.Ops)
		t.predDone = true
	}
	dur, mem := t.predDur, t.predMem
	// Predicted wait: how long until this query would actually start,
	// with every slot busy and the queue ahead of it to drain first.
	wait := 0.0
	if o.MaxInFlight > 0 {
		// The latency class drains first, so only same-class occupancy
		// is ahead of a latency query; throughput queries wait behind
		// everything.
		ahead := float64(v.queuedLat)
		if q.Class == ClassThroughput {
			ahead = float64(v.queued)
		}
		backlog := float64(v.inflight) + ahead/2
		wait = backlog * v.avgDur / float64(o.MaxInFlight)
	}
	headroom := 0.0
	if q.Deadline > 0 {
		// Whatever budget remains after the queue time already burned,
		// the predicted residual wait, and the predicted execution.
		remaining := q.Deadline.Seconds() - now.Sub(t.enq).Seconds()
		headroom = remaining - wait - dur
	}
	share := 0.0
	if v.inflight > 0 {
		share = float64(tn.inflight) / float64(v.inflight)
	}
	*f = lsched.AdmissionFeatures{
		TenantQueueDepth: float64(len(tn.queues[ClassLatency]) + len(tn.queues[ClassThroughput])),
		TotalQueueDepth:  float64(v.queued),
		InFlight:         float64(v.inflight),
		FreeSlots:        float64(o.MaxInFlight - v.inflight),
		TenantShare:      share,
		PredDur:          dur,
		PredMem:          mem,
		PredWait:         wait,
		DeadlineHeadroom: headroom,
	}
	if q.Class == ClassLatency {
		f.LatencySensitive = 1
	}
}

// admissionScorer is the optional Controller face the flight recorder
// uses: the learned controller exposes its admit probability so records
// carry the exact score the verdict came from.
type admissionScorer interface {
	AdmissionScore(f *lsched.AdmissionFeatures) float64
}

// policyVersioned is the optional Controller face naming the
// policy-store version behind the admission head.
type policyVersioned interface {
	PolicyVersion() int
}

// recordAdmission flight-records one terminal admission verdict. The
// caller owns featBuf/scoreBuf (per-core or per-shard scratch, guarded
// by the caller's lock) so the hot path stays allocation-free; the
// (possibly regrown) feature buffer is returned for reuse.
func recordAdmission(o *Options, t *Ticket, dec Decision, featBuf []float64, scoreBuf *[1]float64) []float64 {
	if o.Provenance == nil {
		return featBuf
	}
	score := 1.0
	if sc, ok := o.Controller.(admissionScorer); ok {
		score = sc.AdmissionScore(&t.feat)
	}
	version := 0
	if pv, ok := o.Controller.(policyVersioned); ok {
		version = pv.PolicyVersion()
	}
	featBuf = t.feat.AppendVector(featBuf[:0])
	scoreBuf[0] = score
	o.Provenance.Record(provenance.KindAdmit, t.provID, t.Query.Tenant,
		version, featBuf, scoreBuf[:], int32(dec), 0, int32(Admit))
	return featBuf
}

// joinAdmitted joins an admitted query's flight-recorder entry to its
// outcome, including the cost model's whole-plan prediction errors
// (actual minus predicted) that ROADMAP item 4's cost model v2 trains
// on. Actual memory is reconstructed from the backend's per-type means
// weighted by the plan's work-order units.
func joinAdmitted(o *Options, t *Ticket, res *Result, latency, dur time.Duration, met bool) {
	if o.Provenance == nil {
		return
	}
	out := provenance.Outcome{
		LatencySecs: latency.Seconds(),
		DeadlineMet: met,
		DurPredErr:  dur.Seconds() - t.feat.PredDur,
	}
	if res != nil && len(res.OpMemory) > 0 {
		actualMem := 0.0
		for _, ow := range t.Query.Ops {
			u := ow.Units
			if u < 1 {
				u = 1
			}
			actualMem += res.OpMemory[ow.Key] * float64(u)
		}
		out.MemPredErr = actualMem - t.feat.PredMem
	}
	o.Provenance.JoinOutcome(provenance.KindAdmit, t.provID, out)
}
