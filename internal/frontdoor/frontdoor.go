// Package frontdoor is the multi-tenant query ingress in front of the
// live engine: every arriving query is validated, rate-limited, and
// placed in its tenant's bounded per-SLO-class queue; a drain loop
// admits queries into a bounded executor-slot pool, consulting an
// admission Controller — the heuristic tail-drop baseline or the
// learned head on the LSched agent (fed by queue depth, in-flight
// counts, and the cost model's whole-plan O-DUR/O-MEM predictions) —
// for the admit / defer / shed decision. The HTTP (http.go) and RPC
// (rpc.go) ingresses layer on top; the RPC ingress mounts on an
// rpcsched.Server so it inherits the graceful-shutdown drain and
// per-connection I/O deadlines.
//
// Every submitted query reaches exactly one terminal bucket, giving
// the conservation invariant the stress tests pin:
//
//	admitted + shed + rejected == submitted
//
// Rejected means never queued (validation, rate limit, full queue,
// shutting down); shed means queued but dropped (load shedding,
// deadline expiry, cancellation, shutdown); admitted means handed an
// executor slot.
package frontdoor

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/provenance"
	"repro/internal/rpcsched"
)

// Class is a query's SLO class.
type Class int

const (
	// ClassLatency is the latency-sensitive class: drained first,
	// deadline-checked, its p99 is the number the front door defends.
	ClassLatency Class = iota
	// ClassThroughput is the best-effort bulk class.
	ClassThroughput
	numClasses
)

// String returns the class's label (as used in metric labels).
func (c Class) String() string {
	switch c {
	case ClassLatency:
		return "latency"
	case ClassThroughput:
		return "throughput"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Query is one unit of admission-controlled work.
type Query struct {
	// Tenant names the submitting tenant (validated by DecodeRequest).
	Tenant string
	// Class is the query's SLO class.
	Class Class
	// Deadline is the latency budget from submission (0 = none). A
	// query whose deadline passes while queued is shed.
	Deadline time.Duration
	// Ops summarizes the plan for the cost model's whole-plan
	// O-DUR/O-MEM prediction: one entry per operator, keyed by operator
	// type, scaled by the optimizer's block estimate. DecodeRequest
	// fills it; backends may also consume it directly.
	Ops []costmodel.OpWork
	// Payload carries backend-specific execution state (the engine
	// backend stores the *plan.Plan here).
	Payload any
}

// Outcome is a ticket's terminal bucket.
type Outcome int

const (
	// OutcomeAdmitted: the query got an executor slot (its Disposition
	// arrives once execution finishes).
	OutcomeAdmitted Outcome = iota
	// OutcomeShed: queued, then dropped.
	OutcomeShed
	// OutcomeRejected: never queued.
	OutcomeRejected
)

func (o Outcome) String() string {
	switch o {
	case OutcomeAdmitted:
		return "admitted"
	case OutcomeShed:
		return "shed"
	case OutcomeRejected:
		return "rejected"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Disposition is the final answer for one submitted query.
type Disposition struct {
	Outcome Outcome
	// Reason explains shed/reject outcomes ("rate_limit", "queue_full",
	// "deadline", "load", "cancelled", "shutdown", ...).
	Reason string
	// Wait is the time spent queued.
	Wait time.Duration
	// Latency is submit-to-completion (admitted queries only).
	Latency time.Duration
	// DeadlineMet reports whether an admitted query finished within its
	// deadline (true when it has none).
	DeadlineMet bool
	// Err is the backend's execution error (admitted queries only).
	Err error
}

// Ticket tracks one submitted query. Exactly one Disposition is
// delivered on Done.
type Ticket struct {
	Query *Query

	fd    *FrontDoor
	done  chan Disposition
	enq   time.Time
	state ticketState
	feat  lsched.AdmissionFeatures // features at decision time (learning feedback)
	// provID keys this query's flight-recorder records: the front
	// door's submission sequence number, unique across tenants.
	provID int64
}

type ticketState int

const (
	stateQueued ticketState = iota
	stateAdmitted
	stateResolved // shed or rejected
)

// Done delivers the ticket's final disposition (buffered; never blocks
// the front door).
func (t *Ticket) Done() <-chan Disposition { return t.done }

// Cancel withdraws a still-queued query (counted as shed). Cancelling
// an admitted or already-resolved ticket is a no-op.
func (t *Ticket) Cancel() { t.fd.cancel(t) }

// Controller makes the admission decision for the query at the head of
// a queue. Decide runs under the front door's lock — implementations
// must not block or resubmit.
type Controller interface {
	Name() string
	// Decide returns the action for the candidate query given the
	// current admission features.
	Decide(f *lsched.AdmissionFeatures, q *Query) Decision
	// Observe feeds back an admitted query's outcome (deadline met or
	// not) with the features it was admitted under. No-op for
	// non-learning controllers. Called from executor goroutines.
	Observe(f *lsched.AdmissionFeatures, q *Query, deadlineMet bool)
}

// Decision is a Controller's verdict.
type Decision int

const (
	// Admit grants the query an executor slot now.
	Admit Decision = iota
	// Defer leaves the query queued for a later pass (e.g. reserving
	// the last slots for the latency class).
	Defer
	// Shed drops the query now, before it wastes queue time or an
	// executor slot.
	Shed
)

// Backend executes admitted queries. Run is called from per-query
// goroutines and must be safe for concurrent use.
type Backend interface {
	Run(q *Query) (*Result, error)
}

// Result is what a backend reports per completed query; the per-type
// stats feed the cost model that prices future admissions.
type Result struct {
	// OpDurations/OpMemory are mean per-work-order duration and memory
	// by operator-type key (matching Query.Ops keys). Nil when the
	// backend has nothing to report.
	OpDurations map[int]float64
	OpMemory    map[int]float64
}

// Options configures a FrontDoor.
type Options struct {
	// Backend executes admitted queries (required).
	Backend Backend
	// Controller makes admission decisions; nil selects the heuristic
	// baseline.
	Controller Controller
	// MaxInFlight bounds concurrently executing queries (default 8).
	MaxInFlight int
	// QueueCap bounds each tenant's queue per SLO class (default 256);
	// submissions beyond it are rejected ("queue_full").
	QueueCap int
	// MaxTenants bounds the tenant map (default 1024); submissions from
	// further tenants are rejected ("tenant_limit").
	MaxTenants int
	// Rate and Burst configure the per-tenant token bucket
	// (queries/sec; Rate 0 disables rate limiting).
	Rate, Burst float64
	// Estimator prices incoming plans (O-DUR/O-MEM); nil creates one
	// with generic priors, fed online by backend results.
	Estimator *costmodel.Estimator
	// SweepInterval is how often the drain loop sheds expired queued
	// queries even when no completions arrive (default 25ms).
	SweepInterval time.Duration
	// Metrics instruments the front door (nil disables).
	Metrics *metrics.Registry
	// Provenance, when set, flight-records every admission verdict
	// (KindAdmit, keyed by submission sequence) and joins it to the
	// query's outcome at completion or shed time.
	Provenance *provenance.Recorder
	// SLO, when set, receives one deadline-met observation per
	// terminal query outcome, keyed by (tenant, class).
	SLO *provenance.Tracker
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Controller == nil {
		out.Controller = NewHeuristic()
	}
	if out.MaxInFlight <= 0 {
		out.MaxInFlight = 8
	}
	if out.QueueCap <= 0 {
		out.QueueCap = 256
	}
	if out.MaxTenants <= 0 {
		out.MaxTenants = 1024
	}
	if out.Estimator == nil {
		out.Estimator = costmodel.NewEstimator(32, 0.01, 1)
	}
	if out.SweepInterval <= 0 {
		out.SweepInterval = 25 * time.Millisecond
	}
	return out
}

// FrontDoor is the admission-controlled query ingress. Build with New,
// submit with Submit (or via the HTTP/RPC ingresses), stop with
// Shutdown.
type FrontDoor struct {
	opts Options
	ins  *instruments

	mu       sync.Mutex
	tenants  map[string]*tenant
	order    []string // round-robin tenant order
	rrNext   int
	inflight int
	queued   int
	// queuedClass tracks per-SLO-class occupancy: the latency class
	// drains first, so a latency query's wait estimate must not count
	// the throughput backlog behind it.
	queuedClass [numClasses]int
	avgDur      float64 // EWMA of admitted-query service time (seconds)
	closed      bool

	submitted, admitted, shed, rejected int64

	pending rpcsched.Inflight // executing queries (shutdown drain)
	wake    chan struct{}
	quit    chan struct{}
	loopWG  sync.WaitGroup

	// provFeat/provScore are fd.mu-guarded scratch for flight-recorder
	// calls on the admission path (no per-decision allocation).
	provFeat  []float64
	provScore [1]float64
}

// tenant is one tenant's queues, token bucket, and cached instruments.
type tenant struct {
	name     string
	queues   [numClasses][]*Ticket
	bucket   bucket
	inflight int

	submitted, admitted, shed, rejected int64

	ins tenantInstruments
}

// New builds and starts a front door.
func New(opts Options) (*FrontDoor, error) {
	if opts.Backend == nil {
		return nil, fmt.Errorf("frontdoor: Options.Backend is required")
	}
	o := opts.withDefaults()
	fd := &FrontDoor{
		opts:    o,
		ins:     newInstruments(o.Metrics),
		tenants: make(map[string]*tenant),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	fd.loopWG.Add(1)
	go fd.drainLoop()
	return fd, nil
}

// Controller returns the front door's admission controller.
func (fd *FrontDoor) Controller() Controller { return fd.opts.Controller }

// Estimator returns the cost model pricing admissions.
func (fd *FrontDoor) Estimator() *costmodel.Estimator { return fd.opts.Estimator }

// Submit validates, rate-limits, and enqueues a query. The returned
// ticket's Done channel always delivers exactly one Disposition;
// rejected submissions also return a non-nil error.
func (fd *FrontDoor) Submit(q *Query) (*Ticket, error) {
	t := &Ticket{Query: q, fd: fd, done: make(chan Disposition, 1), enq: time.Now()}

	fd.mu.Lock()
	fd.submitted++
	t.provID = fd.submitted
	if fd.closed {
		return fd.rejectLocked(t, nil, "shutdown")
	}
	tn, ok := fd.tenants[q.Tenant]
	if !ok {
		if len(fd.tenants) >= fd.opts.MaxTenants {
			return fd.rejectLocked(t, nil, "tenant_limit")
		}
		tn = &tenant{name: q.Tenant}
		tn.bucket.init(fd.opts.Rate, fd.opts.Burst, t.enq)
		tn.ins = fd.ins.forTenant(q.Tenant)
		fd.tenants[q.Tenant] = tn
		fd.order = append(fd.order, q.Tenant)
	}
	tn.submitted++
	tn.ins.submitted.Inc()
	if !tn.bucket.allow(t.enq) {
		return fd.rejectLocked(t, tn, "rate_limit")
	}
	if q.Class < 0 || q.Class >= numClasses {
		return fd.rejectLocked(t, tn, "bad_class")
	}
	if len(tn.queues[q.Class]) >= fd.opts.QueueCap {
		return fd.rejectLocked(t, tn, "queue_full")
	}
	tn.queues[q.Class] = append(tn.queues[q.Class], t)
	fd.queued++
	fd.queuedClass[q.Class]++
	tn.ins.depth[q.Class].Set(float64(len(tn.queues[q.Class])))
	fd.ins.queued.Set(float64(fd.queued))
	fd.mu.Unlock()

	fd.kick()
	return t, nil
}

// rejectLocked resolves t as rejected and releases the lock.
func (fd *FrontDoor) rejectLocked(t *Ticket, tn *tenant, reason string) (*Ticket, error) {
	fd.rejected++
	if tn != nil {
		tn.rejected++
		tn.ins.rejected.Inc()
	} else {
		fd.ins.forTenant(t.Query.Tenant).rejected.Inc()
	}
	t.state = stateResolved
	fd.mu.Unlock()
	t.done <- Disposition{Outcome: OutcomeRejected, Reason: reason}
	return t, fmt.Errorf("frontdoor: rejected: %s", reason)
}

// cancel withdraws a queued ticket (Ticket.Cancel).
func (fd *FrontDoor) cancel(t *Ticket) {
	fd.mu.Lock()
	if t.state != stateQueued {
		fd.mu.Unlock()
		return
	}
	tn := fd.tenants[t.Query.Tenant]
	q := tn.queues[t.Query.Class]
	for i, qt := range q {
		if qt == t {
			tn.queues[t.Query.Class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	fd.shedLocked(t, tn, "cancelled")
	fd.mu.Unlock()
}

// shedLocked marks an (already dequeued) ticket shed. Caller holds
// fd.mu and has removed t from its queue.
func (fd *FrontDoor) shedLocked(t *Ticket, tn *tenant, reason string) {
	t.state = stateResolved
	fd.shed++
	fd.queued--
	fd.queuedClass[t.Query.Class]--
	tn.shed++
	tn.ins.shed.Inc()
	tn.ins.depth[t.Query.Class].Set(float64(len(tn.queues[t.Query.Class])))
	fd.ins.queued.Set(float64(fd.queued))
	fd.opts.Provenance.JoinOutcome(provenance.KindAdmit, t.provID, provenance.Outcome{Shed: true})
	fd.opts.SLO.Observe(t.Query.Tenant, t.Query.Class.String(), false)
	t.done <- Disposition{Outcome: OutcomeShed, Reason: reason, Wait: time.Since(t.enq)}
}

// kick wakes the drain loop (non-blocking).
func (fd *FrontDoor) kick() {
	select {
	case fd.wake <- struct{}{}:
	default:
	}
}

// drainLoop is the admission loop: whenever woken (submission,
// completion, cancellation, or the sweep ticker) it sheds expired
// queued queries and fills free executor slots, visiting the latency
// class first and round-robining across tenants within a class.
func (fd *FrontDoor) drainLoop() {
	defer fd.loopWG.Done()
	ticker := time.NewTicker(fd.opts.SweepInterval)
	defer ticker.Stop()
	for {
		fd.dispatch()
		select {
		case <-fd.wake:
		case <-ticker.C:
		case <-fd.quit:
			return
		}
	}
}

// dispatch runs one admission pass.
func (fd *FrontDoor) dispatch() {
	now := time.Now()
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		return
	}
	fd.expireLocked(now)
	for fd.inflight < fd.opts.MaxInFlight && fd.queued > 0 {
		if !fd.admitOneLocked(now) {
			break // everything available was deferred
		}
	}
}

// expireLocked sheds every queued query whose deadline has passed:
// running it could only produce a late answer.
func (fd *FrontDoor) expireLocked(now time.Time) {
	for _, name := range fd.order {
		tn := fd.tenants[name]
		for c := Class(0); c < numClasses; c++ {
			q := tn.queues[c]
			kept := q[:0]
			for _, t := range q {
				if t.Query.Deadline > 0 && now.Sub(t.enq) > t.Query.Deadline {
					tn.queues[c] = kept // shedLocked reads the queue for depth
					fd.shedLocked(t, tn, "deadline")
					continue
				}
				kept = append(kept, t)
			}
			tn.queues[c] = kept
			tn.ins.depth[c].Set(float64(len(kept)))
		}
	}
}

// admitOneLocked scans for one admittable query (latency class first,
// round-robin across tenants) and dispatches it. It returns whether it
// made progress (admitted or shed something); false means every queued
// query was deferred this pass and the loop should wait.
func (fd *FrontDoor) admitOneLocked(now time.Time) bool {
	n := len(fd.order)
	for c := Class(0); c < numClasses; c++ {
		for i := 0; i < n; i++ {
			tn := fd.tenants[fd.order[(fd.rrNext+i)%n]]
			q := tn.queues[c]
			if len(q) == 0 {
				continue
			}
			t := q[0]
			fd.buildFeatures(&t.feat, tn, t, now)
			dec := fd.opts.Controller.Decide(&t.feat, t.Query)
			if dec != Defer {
				// Flight-record terminal verdicts (defers are transient:
				// the same query is re-decided on a later pass). The
				// heuristic baseline admits everything, so its
				// counterfactual is always Admit.
				fd.recordAdmissionLocked(t, dec)
			}
			switch dec {
			case Admit:
				tn.queues[c] = q[1:]
				if len(tn.queues[c]) == 0 {
					tn.queues[c] = nil // release the drained backing array
				}
				fd.rrNext = (fd.rrNext + i + 1) % n
				fd.admitLocked(t, tn, now)
				return true
			case Shed:
				tn.queues[c] = q[1:]
				if len(tn.queues[c]) == 0 {
					tn.queues[c] = nil
				}
				fd.shedLocked(t, tn, "load")
				// Progress: the caller rescans, so this tenant's next
				// head is reconsidered immediately.
				return true
			case Defer:
				// Leave queued; try other tenants/classes.
			}
		}
	}
	return false
}

// admitLocked hands t an executor slot. Caller holds fd.mu and has
// dequeued t.
func (fd *FrontDoor) admitLocked(t *Ticket, tn *tenant, now time.Time) {
	t.state = stateAdmitted
	fd.admitted++
	fd.queued--
	fd.queuedClass[t.Query.Class]--
	fd.inflight++
	tn.admitted++
	tn.inflight++
	tn.ins.admitted.Inc()
	tn.ins.depth[t.Query.Class].Set(float64(len(tn.queues[t.Query.Class])))
	if fd.inflight > 0 {
		tn.ins.share.Set(float64(tn.inflight) / float64(fd.inflight))
	}
	fd.ins.queued.Set(float64(fd.queued))
	fd.ins.inflight.Set(float64(fd.inflight))
	wait := now.Sub(t.enq)
	fd.ins.wait[t.Query.Class].Observe(wait.Seconds())
	fd.pending.Add()
	go fd.run(t, tn, wait)
}

// run executes an admitted query on the backend and delivers its
// disposition. Runs in its own goroutine.
func (fd *FrontDoor) run(t *Ticket, tn *tenant, wait time.Duration) {
	defer fd.pending.Done()
	started := time.Now()
	res, err := fd.opts.Backend.Run(t.Query)
	dur := time.Since(started)
	latency := wait + dur

	met := err == nil && (t.Query.Deadline <= 0 || latency <= t.Query.Deadline)
	fd.opts.Controller.Observe(&t.feat, t.Query, met)
	fd.joinAdmitted(t, res, latency, dur, met)
	fd.opts.SLO.Observe(t.Query.Tenant, t.Query.Class.String(), met)
	if res != nil {
		est := fd.opts.Estimator
		fd.mu.Lock()
		for k, d := range res.OpDurations {
			est.ObserveCompletion(k, d, res.OpMemory[k])
		}
		fd.mu.Unlock()
	}

	fd.mu.Lock()
	fd.inflight--
	tn.inflight--
	if fd.inflight > 0 {
		tn.ins.share.Set(float64(tn.inflight) / float64(fd.inflight))
	} else {
		tn.ins.share.Set(0)
	}
	fd.ins.inflight.Set(float64(fd.inflight))
	// EWMA of service time, the PredWait scale.
	if fd.avgDur == 0 {
		fd.avgDur = dur.Seconds()
	} else {
		fd.avgDur = 0.9*fd.avgDur + 0.1*dur.Seconds()
	}
	fd.mu.Unlock()

	fd.ins.latency[t.Query.Class].Observe(latency.Seconds())
	if t.Query.Deadline > 0 {
		if met {
			fd.ins.deadlineMet.Inc()
		} else {
			fd.ins.deadlineMissed.Inc()
		}
	}
	t.done <- Disposition{
		Outcome: OutcomeAdmitted, Wait: wait, Latency: latency,
		DeadlineMet: met, Err: err,
	}
	fd.kick()
}

// buildFeatures fills f with the admission features for t under the
// current state. Caller holds fd.mu.
func (fd *FrontDoor) buildFeatures(f *lsched.AdmissionFeatures, tn *tenant, t *Ticket, now time.Time) {
	q := t.Query
	dur, mem := fd.opts.Estimator.PredictTotals(q.Ops)
	// Predicted wait: how long until this query would actually start,
	// with every slot busy and the queue ahead of it to drain first.
	wait := 0.0
	if fd.opts.MaxInFlight > 0 {
		// The latency class drains first, so only same-class occupancy
		// is ahead of a latency query; throughput queries wait behind
		// everything.
		ahead := float64(fd.queuedClass[ClassLatency])
		if q.Class == ClassThroughput {
			ahead = float64(fd.queued)
		}
		backlog := float64(fd.inflight) + ahead/2
		wait = backlog * fd.avgDur / float64(fd.opts.MaxInFlight)
	}
	headroom := 0.0
	if q.Deadline > 0 {
		// Whatever budget remains after the queue time already burned,
		// the predicted residual wait, and the predicted execution.
		remaining := q.Deadline.Seconds() - now.Sub(t.enq).Seconds()
		headroom = remaining - wait - dur
	}
	share := 0.0
	if fd.inflight > 0 {
		share = float64(tn.inflight) / float64(fd.inflight)
	}
	*f = lsched.AdmissionFeatures{
		TenantQueueDepth: float64(len(tn.queues[ClassLatency]) + len(tn.queues[ClassThroughput])),
		TotalQueueDepth:  float64(fd.queued),
		InFlight:         float64(fd.inflight),
		FreeSlots:        float64(fd.opts.MaxInFlight - fd.inflight),
		TenantShare:      share,
		PredDur:          dur,
		PredMem:          mem,
		PredWait:         wait,
		DeadlineHeadroom: headroom,
	}
	if q.Class == ClassLatency {
		f.LatencySensitive = 1
	}
}

// admissionScorer is the optional Controller face the flight recorder
// uses: the learned controller exposes its admit probability so records
// carry the exact score the verdict came from.
type admissionScorer interface {
	AdmissionScore(f *lsched.AdmissionFeatures) float64
}

// policyVersioned is the optional Controller face naming the
// policy-store version behind the admission head.
type policyVersioned interface {
	PolicyVersion() int
}

// recordAdmissionLocked flight-records one terminal admission verdict.
// Caller holds fd.mu; the scratch buffers make this allocation-free.
func (fd *FrontDoor) recordAdmissionLocked(t *Ticket, dec Decision) {
	if fd.opts.Provenance == nil {
		return
	}
	score := 1.0
	if sc, ok := fd.opts.Controller.(admissionScorer); ok {
		score = sc.AdmissionScore(&t.feat)
	}
	version := 0
	if pv, ok := fd.opts.Controller.(policyVersioned); ok {
		version = pv.PolicyVersion()
	}
	fd.provFeat = t.feat.AppendVector(fd.provFeat[:0])
	fd.provScore[0] = score
	fd.opts.Provenance.Record(provenance.KindAdmit, t.provID, t.Query.Tenant,
		version, fd.provFeat, fd.provScore[:], int32(dec), 0, int32(Admit))
}

// joinAdmitted joins an admitted query's flight-recorder entry to its
// outcome, including the cost model's whole-plan prediction errors
// (actual minus predicted) that ROADMAP item 4's cost model v2 trains
// on. Actual memory is reconstructed from the backend's per-type means
// weighted by the plan's work-order units.
func (fd *FrontDoor) joinAdmitted(t *Ticket, res *Result, latency, dur time.Duration, met bool) {
	if fd.opts.Provenance == nil {
		return
	}
	out := provenance.Outcome{
		LatencySecs: latency.Seconds(),
		DeadlineMet: met,
		DurPredErr:  dur.Seconds() - t.feat.PredDur,
	}
	if res != nil && len(res.OpMemory) > 0 {
		actualMem := 0.0
		for _, ow := range t.Query.Ops {
			u := ow.Units
			if u < 1 {
				u = 1
			}
			actualMem += res.OpMemory[ow.Key] * float64(u)
		}
		out.MemPredErr = actualMem - t.feat.PredMem
	}
	fd.opts.Provenance.JoinOutcome(provenance.KindAdmit, t.provID, out)
}

// Draining reports whether the front door has begun shutdown (new
// submissions are rejected) — the /healthz readiness signal.
func (fd *FrontDoor) Draining() bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.closed
}

// Stats is a conservation-accounting snapshot.
type Stats struct {
	Submitted, Admitted, Shed, Rejected int64
	Queued, InFlight                    int
}

// Stats returns the current terminal-bucket counts.
func (fd *FrontDoor) Stats() Stats {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return Stats{
		Submitted: fd.submitted, Admitted: fd.admitted,
		Shed: fd.shed, Rejected: fd.rejected,
		Queued: fd.queued, InFlight: fd.inflight,
	}
}

// Shutdown stops the front door: new submissions are rejected, every
// queued query is shed ("shutdown"), and in-flight queries are drained
// (bounded by drainTimeout; <= 0 waits indefinitely). It reports
// whether the drain completed.
func (fd *FrontDoor) Shutdown(drainTimeout time.Duration) bool {
	fd.mu.Lock()
	if fd.closed {
		fd.mu.Unlock()
		return fd.pending.Wait(drainTimeout)
	}
	fd.closed = true
	for _, name := range fd.order {
		tn := fd.tenants[name]
		for c := Class(0); c < numClasses; c++ {
			pending := tn.queues[c]
			tn.queues[c] = nil
			for _, t := range pending {
				fd.shedLocked(t, tn, "shutdown")
			}
		}
	}
	fd.mu.Unlock()
	close(fd.quit)
	fd.loopWG.Wait()
	return fd.pending.Wait(drainTimeout)
}
