package frontdoor

import (
	"sync"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// fakeBackend runs queries as plain sleeps with optional per-type
// result stats — a controllable stand-in for the live engine.
type fakeBackend struct {
	delay time.Duration

	mu   sync.Mutex
	runs int
}

func (b *fakeBackend) Run(q *Query) (*Result, error) {
	b.mu.Lock()
	b.runs++
	b.mu.Unlock()
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	return &Result{
		OpDurations: map[int]float64{0: b.delay.Seconds()},
		OpMemory:    map[int]float64{0: 1},
	}, nil
}

func (b *fakeBackend) Runs() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs
}

// blockingBackend parks each run until released.
type blockingBackend struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingBackend) Run(q *Query) (*Result, error) {
	b.entered <- struct{}{}
	<-b.release
	return nil, nil
}

func q(tenant string, class Class) *Query {
	return &Query{Tenant: tenant, Class: class, Ops: []costmodel.OpWork{{Key: 0, Units: 1}}}
}

func mustFD(t *testing.T, opts Options) *FrontDoor {
	t.Helper()
	fd, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fd.Shutdown(5 * time.Second) })
	return fd
}

func waitOutcome(t *testing.T, tk *Ticket) Disposition {
	t.Helper()
	select {
	case d := <-tk.Done():
		return d
	case <-time.After(10 * time.Second):
		t.Fatal("ticket never resolved")
		return Disposition{}
	}
}

// TestSubmitAdmitComplete: the basic happy path delivers an admitted
// disposition with the run's latency.
func TestSubmitAdmitComplete(t *testing.T) {
	be := &fakeBackend{delay: time.Millisecond}
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 2})
	tk, err := fd.Submit(q("acme", ClassLatency))
	if err != nil {
		t.Fatal(err)
	}
	d := waitOutcome(t, tk)
	if d.Outcome != OutcomeAdmitted || d.Err != nil {
		t.Fatalf("disposition = %+v", d)
	}
	if d.Latency < time.Millisecond {
		t.Fatalf("latency %v < backend delay", d.Latency)
	}
	if !d.DeadlineMet {
		t.Fatal("deadline-free query reported DeadlineMet=false")
	}
	if be.Runs() != 1 {
		t.Fatalf("backend ran %d times", be.Runs())
	}
}

// TestQueueFullRejects: a tenant's bounded queue rejects overflow
// instead of growing.
func TestQueueFullRejects(t *testing.T) {
	be := &blockingBackend{entered: make(chan struct{}, 16), release: make(chan struct{})}
	defer close(be.release)
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 1, QueueCap: 2})

	// Fill the slot, then the queue.
	if _, err := fd.Submit(q("acme", ClassLatency)); err != nil {
		t.Fatal(err)
	}
	<-be.entered
	for i := 0; i < 2; i++ {
		if _, err := fd.Submit(q("acme", ClassLatency)); err != nil {
			t.Fatalf("queue slot %d rejected: %v", i, err)
		}
	}
	tk, err := fd.Submit(q("acme", ClassLatency))
	if err == nil {
		t.Fatal("overflow submission accepted")
	}
	if d := waitOutcome(t, tk); d.Outcome != OutcomeRejected || d.Reason != "queue_full" {
		t.Fatalf("disposition = %+v", d)
	}
}

// TestCancelShedsQueued: cancelling a queued ticket sheds it; the
// backend never sees it.
func TestCancelShedsQueued(t *testing.T) {
	be := &blockingBackend{entered: make(chan struct{}, 16), release: make(chan struct{})}
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 1})
	first, _ := fd.Submit(q("acme", ClassLatency))
	<-be.entered
	queued, _ := fd.Submit(q("acme", ClassLatency))
	queued.Cancel()
	if d := waitOutcome(t, queued); d.Outcome != OutcomeShed || d.Reason != "cancelled" {
		t.Fatalf("disposition = %+v", d)
	}
	close(be.release)
	if d := waitOutcome(t, first); d.Outcome != OutcomeAdmitted {
		t.Fatalf("first query: %+v", d)
	}
	st := fd.Stats()
	if st.Admitted != 1 || st.Shed != 1 || st.Submitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDeadlineExpiryShedsQueued: a query whose deadline passes while
// queued is shed by the sweep, not run late.
func TestDeadlineExpiryShedsQueued(t *testing.T) {
	be := &blockingBackend{entered: make(chan struct{}, 16), release: make(chan struct{})}
	defer close(be.release)
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 1, SweepInterval: 2 * time.Millisecond})
	fd.Submit(q("acme", ClassThroughput)) //nolint:errcheck
	<-be.entered
	dq := q("acme", ClassLatency)
	dq.Deadline = 5 * time.Millisecond
	tk, _ := fd.Submit(dq)
	if d := waitOutcome(t, tk); d.Outcome != OutcomeShed || d.Reason != "deadline" {
		t.Fatalf("disposition = %+v", d)
	}
}

// TestRateLimitRejects: a tenant over its token budget is rejected
// without queueing; an unrelated tenant is unaffected.
func TestRateLimitRejects(t *testing.T) {
	be := &fakeBackend{}
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 4, Rate: 1, Burst: 2})
	var limited bool
	for i := 0; i < 4; i++ {
		if _, err := fd.Submit(q("greedy", ClassThroughput)); err != nil {
			limited = true
		}
	}
	if !limited {
		t.Fatal("burst of 4 never hit the 2-token budget")
	}
	if _, err := fd.Submit(q("modest", ClassThroughput)); err != nil {
		t.Fatalf("other tenant rate-limited: %v", err)
	}
}

// TestLatencyClassDrainsFirst: with one slot and both classes queued,
// the latency-class query runs first even though it arrived second.
func TestLatencyClassDrainsFirst(t *testing.T) {
	be := &blockingBackend{entered: make(chan struct{}, 16), release: make(chan struct{}, 16)}
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 1})
	blocker, _ := fd.Submit(q("t0", ClassThroughput))
	<-be.entered
	bulk, _ := fd.Submit(q("t1", ClassThroughput))
	lat, _ := fd.Submit(q("t2", ClassLatency))
	be.release <- struct{}{} // finish the blocker
	<-be.entered             // next admitted query entered the backend
	be.release <- struct{}{}
	dLat := waitOutcome(t, lat)
	if dLat.Outcome != OutcomeAdmitted {
		t.Fatalf("latency query: %+v", dLat)
	}
	select {
	case d := <-bulk.Done():
		t.Fatalf("throughput query resolved before latency query released it: %+v", d)
	default:
	}
	be.release <- struct{}{}
	waitOutcome(t, bulk)
	waitOutcome(t, blocker)
}

// TestShutdownShedsQueuedAndDrainsInflight: Shutdown resolves every
// ticket — queued as shed, in-flight after completion — and rejects
// later submissions.
func TestShutdownShedsQueuedAndDrainsInflight(t *testing.T) {
	be := &blockingBackend{entered: make(chan struct{}, 16), release: make(chan struct{})}
	fd, err := New(Options{Backend: be, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	running, _ := fd.Submit(q("acme", ClassLatency))
	<-be.entered
	queued, _ := fd.Submit(q("acme", ClassLatency))

	shutDone := make(chan bool, 1)
	go func() { shutDone <- fd.Shutdown(5 * time.Second) }()
	if d := waitOutcome(t, queued); d.Outcome != OutcomeShed || d.Reason != "shutdown" {
		t.Fatalf("queued: %+v", d)
	}
	select {
	case <-shutDone:
		t.Fatal("Shutdown returned with a query still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(be.release)
	if !<-shutDone {
		t.Fatal("Shutdown reported an incomplete drain")
	}
	if d := waitOutcome(t, running); d.Outcome != OutcomeAdmitted {
		t.Fatalf("in-flight: %+v", d)
	}
	tk, err := fd.Submit(q("acme", ClassLatency))
	if err == nil {
		t.Fatal("submission accepted after shutdown")
	}
	if d := waitOutcome(t, tk); d.Reason != "shutdown" {
		t.Fatalf("post-shutdown disposition: %+v", d)
	}
}

// TestEstimatorLearnsFromResults: backend-reported per-type stats flow
// into the cost model, so later admissions are priced from history.
func TestEstimatorLearnsFromResults(t *testing.T) {
	be := &fakeBackend{delay: 2 * time.Millisecond}
	est := costmodel.NewEstimator(8, 0, 0)
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 1, Estimator: est})
	tk, _ := fd.Submit(q("acme", ClassLatency))
	waitOutcome(t, tk)
	dur, mem := est.PredictTotals([]costmodel.OpWork{{Key: 0, Units: 1}})
	if dur <= 0 || mem <= 0 {
		t.Fatalf("estimator never learned: dur=%v mem=%v", dur, mem)
	}
}

// TestLearnedControllerShedsHopeless: the learned controller sheds a
// deadline query whose predicted wait+run exceeds its budget, before
// it wastes a slot.
func TestLearnedControllerShedsHopeless(t *testing.T) {
	head := lsched.NewAdmissionHead(nn.NewParams(1))
	ctl := NewLearned(head)
	f := &lsched.AdmissionFeatures{DeadlineHeadroom: -1, LatencySensitive: 1}
	hopeless := &Query{Tenant: "a", Class: ClassLatency, Deadline: time.Millisecond}
	if d := ctl.Decide(f, hopeless); d != Shed {
		t.Fatalf("hopeless deadline query decision = %v, want Shed", d)
	}
	f2 := &lsched.AdmissionFeatures{DeadlineHeadroom: 2, FreeSlots: 4, LatencySensitive: 1}
	if d := ctl.Decide(f2, hopeless); d != Admit {
		t.Fatalf("healthy query decision = %v, want Admit", d)
	}
	// Throughput reservation: marginal score with the last slot free.
	f3 := &lsched.AdmissionFeatures{TotalQueueDepth: 500, InFlight: 64, PredWait: 10, FreeSlots: 1, TenantShare: 1}
	bulk := &Query{Tenant: "a", Class: ClassThroughput}
	if d := ctl.Decide(f3, bulk); d == Admit {
		t.Fatalf("saturated marginal throughput query admitted (score %v)", head.Score(f3))
	}
}

// TestMetricsWiring: the per-tenant counters and per-class histograms
// land in the registry under their exported names.
func TestMetricsWiring(t *testing.T) {
	reg := metrics.NewRegistry()
	be := &fakeBackend{}
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 1, Metrics: reg})
	tk, _ := fd.Submit(q("acme", ClassLatency))
	waitOutcome(t, tk)
	snap := reg.Snapshot()
	if snap.Counters[MetricSubmitted("acme")] != 1 || snap.Counters[MetricAdmitted("acme")] != 1 {
		t.Fatalf("tenant counters = %v", snap.Counters)
	}
	if snap.Histograms[MetricLatency(ClassLatency)].Count != 1 {
		t.Fatalf("latency histogram missing: %v", snap.Histograms)
	}
}
