package frontdoor

import "repro/internal/lsched"

// Heuristic is the baseline admission controller: work-conserving
// tail-drop. Every queue-head is admitted the moment a slot frees;
// shedding happens only implicitly, at enqueue time when a tenant's
// bounded queue overflows, and via the front door's deadline-expiry
// sweep. This is what most engines ship — the A/B control the learned
// controller must beat on the p99 of admitted latency-sensitive
// queries at an equal-or-lower shed rate.
type Heuristic struct{}

// NewHeuristic returns the baseline controller.
func NewHeuristic() Heuristic { return Heuristic{} }

// Name implements Controller.
func (Heuristic) Name() string { return "heuristic" }

// Decide implements Controller: always admit.
func (Heuristic) Decide(*lsched.AdmissionFeatures, *Query) Decision { return Admit }

// Observe implements Controller (no learning).
func (Heuristic) Observe(*lsched.AdmissionFeatures, *Query, bool) {}
