package frontdoor

import (
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// Response is the HTTP ingress's JSON reply (and the RPC ingress's
// reply body).
type Response struct {
	Outcome string  `json:"outcome"`
	Reason  string  `json:"reason,omitempty"`
	WaitMS  float64 `json:"wait_ms"`
	// LatencyMS is submit-to-completion (admitted queries only).
	// Fractional: sub-millisecond queries must not report zero.
	LatencyMS   float64 `json:"latency_ms,omitempty"`
	DeadlineMet bool    `json:"deadline_met,omitempty"`
	Error       string  `json:"error,omitempty"`
}

func responseFrom(d Disposition) Response {
	resp := Response{
		Outcome:     d.Outcome.String(),
		Reason:      d.Reason,
		WaitMS:      float64(d.Wait) / float64(time.Millisecond),
		LatencyMS:   float64(d.Latency) / float64(time.Millisecond),
		DeadlineMet: d.DeadlineMet,
	}
	if d.Err != nil {
		resp.Error = d.Err.Error()
	}
	return resp
}

// Handler returns the HTTP ingress: POST a JSON Request to it and the
// reply arrives once the query reaches a terminal state (admitted
// queries answer after execution). A client that disconnects while
// queued has its query cancelled — dead clients must not hold queue
// slots.
func (fd *FrontDoor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a query request", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxRequestBytes+1))
		if err != nil {
			http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
			return
		}
		q, err := DecodeRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ticket, err := fd.Submit(q)
		if err != nil {
			// Rejected: the disposition is already buffered.
			writeResponse(w, http.StatusTooManyRequests, responseFrom(<-ticket.Done()))
			return
		}
		select {
		case d := <-ticket.Done():
			status := http.StatusOK
			if d.Outcome != OutcomeAdmitted {
				status = http.StatusTooManyRequests
			}
			writeResponse(w, status, responseFrom(d))
		case <-r.Context().Done():
			ticket.Cancel()
			// The cancel races a concurrent admit; report whichever won.
			writeResponse(w, http.StatusRequestTimeout, responseFrom(<-ticket.Done()))
		}
	})
}

func writeResponse(w http.ResponseWriter, status int, resp Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}
