package frontdoor

import (
	"strconv"

	"repro/internal/metrics"
)

// Metric name helpers: the front door's per-tenant and per-class series
// are composed with metrics.LabeledName so the Prometheus exposition
// groups them into families. Exported so dashboards and the golden test
// spell names one way.

// MetricSubmitted is the per-tenant submitted-query counter name.
func MetricSubmitted(tenant string) string {
	return metrics.LabeledName("frontdoor_submitted", "tenant", tenant)
}

// MetricAdmitted is the per-tenant admitted-query counter name.
func MetricAdmitted(tenant string) string {
	return metrics.LabeledName("frontdoor_admitted", "tenant", tenant)
}

// MetricShed is the per-tenant shed-query counter name.
func MetricShed(tenant string) string {
	return metrics.LabeledName("frontdoor_shed", "tenant", tenant)
}

// MetricRejected is the per-tenant rejected-query counter name.
func MetricRejected(tenant string) string {
	return metrics.LabeledName("frontdoor_rejected", "tenant", tenant)
}

// MetricQueueDepth is the per-tenant per-class queue-depth gauge name.
func MetricQueueDepth(tenant string, class Class) string {
	return metrics.LabeledName("frontdoor_queue_depth", "tenant", tenant, "class", class.String())
}

// MetricTenantShare is the per-tenant in-flight-share gauge name (the
// fairness gauge: the tenant's fraction of executing queries).
func MetricTenantShare(tenant string) string {
	return metrics.LabeledName("frontdoor_tenant_share", "tenant", tenant)
}

// MetricLatency is the per-class end-to-end latency histogram name
// (admitted queries, submit to completion).
func MetricLatency(class Class) string {
	return metrics.LabeledName("frontdoor_latency", "class", class.String())
}

// MetricWait is the per-class queue-wait histogram name.
func MetricWait(class Class) string {
	return metrics.LabeledName("frontdoor_wait", "class", class.String())
}

// MetricShardQueued is the per-shard queued-query gauge name (sharded
// core only).
func MetricShardQueued(shard int) string {
	return metrics.LabeledName("frontdoor_shard_queued", "shard", strconv.Itoa(shard))
}

// MetricShardInFlight is the per-shard executing-query gauge name.
func MetricShardInFlight(shard int) string {
	return metrics.LabeledName("frontdoor_shard_inflight", "shard", strconv.Itoa(shard))
}

// MetricSteals is the cross-shard work-steal counter name: admissions
// performed by a shard other than the query's owner.
const MetricSteals = "frontdoor_steals"

// instruments are the front door's cached metric handles; all nil (and
// so no-op) when metrics are disabled.
type instruments struct {
	reg            *metrics.Registry
	queued         *metrics.Gauge
	inflight       *metrics.Gauge
	deadlineMet    *metrics.Counter
	deadlineMissed *metrics.Counter
	steals         *metrics.Counter
	latency        [numClasses]*metrics.Histogram
	wait           [numClasses]*metrics.Histogram
}

// shardInstruments are one shard's metric handles. They are created
// per shard by the sharded core (the single-loop core never registers
// shard series, keeping its exposition — and the golden file pinning
// it — unchanged).
type shardInstruments struct {
	queued   *metrics.Gauge
	inflight *metrics.Gauge
}

type tenantInstruments struct {
	submitted, admitted, shed, rejected *metrics.Counter
	depth                               [numClasses]*metrics.Gauge
	share                               *metrics.Gauge
}

func newInstruments(reg *metrics.Registry) *instruments {
	ins := &instruments{
		reg:            reg,
		queued:         reg.Gauge("frontdoor_queued"),
		inflight:       reg.Gauge("frontdoor_inflight"),
		deadlineMet:    reg.Counter("frontdoor_deadline_met"),
		deadlineMissed: reg.Counter("frontdoor_deadline_missed"),
	}
	for c := Class(0); c < numClasses; c++ {
		ins.latency[c] = reg.Histogram(MetricLatency(c), nil)
		ins.wait[c] = reg.Histogram(MetricWait(c), nil)
	}
	return ins
}

// forShard builds one shard's instrument set (sharded core only; also
// registers the door-level steal counter on first use so single-loop
// registries never carry shard series).
func (ins *instruments) forShard(shard int) shardInstruments {
	if ins.steals == nil {
		ins.steals = ins.reg.Counter(MetricSteals)
	}
	return shardInstruments{
		queued:   ins.reg.Gauge(MetricShardQueued(shard)),
		inflight: ins.reg.Gauge(MetricShardInFlight(shard)),
	}
}

// forTenant builds (or re-looks-up) one tenant's instrument set.
func (ins *instruments) forTenant(tenant string) tenantInstruments {
	ti := tenantInstruments{
		submitted: ins.reg.Counter(MetricSubmitted(tenant)),
		admitted:  ins.reg.Counter(MetricAdmitted(tenant)),
		shed:      ins.reg.Counter(MetricShed(tenant)),
		rejected:  ins.reg.Counter(MetricRejected(tenant)),
		share:     ins.reg.Gauge(MetricTenantShare(tenant)),
	}
	for c := Class(0); c < numClasses; c++ {
		ti.depth[c] = ins.reg.Gauge(MetricQueueDepth(tenant, c))
	}
	return ti
}
