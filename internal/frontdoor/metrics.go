package frontdoor

import "repro/internal/metrics"

// Metric name helpers: the front door's per-tenant and per-class series
// are composed with metrics.LabeledName so the Prometheus exposition
// groups them into families. Exported so dashboards and the golden test
// spell names one way.

// MetricSubmitted is the per-tenant submitted-query counter name.
func MetricSubmitted(tenant string) string {
	return metrics.LabeledName("frontdoor_submitted", "tenant", tenant)
}

// MetricAdmitted is the per-tenant admitted-query counter name.
func MetricAdmitted(tenant string) string {
	return metrics.LabeledName("frontdoor_admitted", "tenant", tenant)
}

// MetricShed is the per-tenant shed-query counter name.
func MetricShed(tenant string) string {
	return metrics.LabeledName("frontdoor_shed", "tenant", tenant)
}

// MetricRejected is the per-tenant rejected-query counter name.
func MetricRejected(tenant string) string {
	return metrics.LabeledName("frontdoor_rejected", "tenant", tenant)
}

// MetricQueueDepth is the per-tenant per-class queue-depth gauge name.
func MetricQueueDepth(tenant string, class Class) string {
	return metrics.LabeledName("frontdoor_queue_depth", "tenant", tenant, "class", class.String())
}

// MetricTenantShare is the per-tenant in-flight-share gauge name (the
// fairness gauge: the tenant's fraction of executing queries).
func MetricTenantShare(tenant string) string {
	return metrics.LabeledName("frontdoor_tenant_share", "tenant", tenant)
}

// MetricLatency is the per-class end-to-end latency histogram name
// (admitted queries, submit to completion).
func MetricLatency(class Class) string {
	return metrics.LabeledName("frontdoor_latency", "class", class.String())
}

// MetricWait is the per-class queue-wait histogram name.
func MetricWait(class Class) string {
	return metrics.LabeledName("frontdoor_wait", "class", class.String())
}

// instruments are the front door's cached metric handles; all nil (and
// so no-op) when metrics are disabled.
type instruments struct {
	reg            *metrics.Registry
	queued         *metrics.Gauge
	inflight       *metrics.Gauge
	deadlineMet    *metrics.Counter
	deadlineMissed *metrics.Counter
	latency        [numClasses]*metrics.Histogram
	wait           [numClasses]*metrics.Histogram
}

type tenantInstruments struct {
	submitted, admitted, shed, rejected *metrics.Counter
	depth                               [numClasses]*metrics.Gauge
	share                               *metrics.Gauge
}

func newInstruments(reg *metrics.Registry) *instruments {
	ins := &instruments{
		reg:            reg,
		queued:         reg.Gauge("frontdoor_queued"),
		inflight:       reg.Gauge("frontdoor_inflight"),
		deadlineMet:    reg.Counter("frontdoor_deadline_met"),
		deadlineMissed: reg.Counter("frontdoor_deadline_missed"),
	}
	for c := Class(0); c < numClasses; c++ {
		ins.latency[c] = reg.Histogram(MetricLatency(c), nil)
		ins.wait[c] = reg.Histogram(MetricWait(c), nil)
	}
	return ins
}

// forTenant builds (or re-looks-up) one tenant's instrument set.
func (ins *instruments) forTenant(tenant string) tenantInstruments {
	ti := tenantInstruments{
		submitted: ins.reg.Counter(MetricSubmitted(tenant)),
		admitted:  ins.reg.Counter(MetricAdmitted(tenant)),
		shed:      ins.reg.Counter(MetricShed(tenant)),
		rejected:  ins.reg.Counter(MetricRejected(tenant)),
		share:     ins.reg.Gauge(MetricTenantShare(tenant)),
	}
	for c := Class(0); c < numClasses; c++ {
		ti.depth[c] = ins.reg.Gauge(MetricQueueDepth(tenant, c))
	}
	return ti
}
