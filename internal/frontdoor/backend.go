package frontdoor

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/engine"
	"repro/internal/plan"
)

// BackendFunc adapts a function to the Backend interface (test stubs,
// benchmark backends).
type BackendFunc func(q *Query) (*Result, error)

// Run implements Backend.
func (f BackendFunc) Run(q *Query) (*Result, error) { return f(q) }

// EngineBackend executes admitted queries on the live engine: each
// query's *plan.Plan (from Query.Payload) runs as a single-arrival
// live workload under the wrapped scheduler, and the per-operator-type
// duration/memory means flow back as the Result that feeds the
// admission cost model.
//
// Live itself is stateless across runs, so concurrent queries are
// safe; the scheduler is not (the LSched agent reuses per-event
// scratch), so scheduler calls are serialized with a mutex — the same
// single-threaded-scheduler contract the paper's execution model has.
type EngineBackend struct {
	live  *engine.Live
	sched engine.Scheduler
}

// NewEngineBackend wraps a live engine and scheduler.
func NewEngineBackend(live *engine.Live, sched engine.Scheduler) *EngineBackend {
	return &EngineBackend{live: live, sched: &lockedScheduler{inner: sched}}
}

// Run implements Backend.
func (b *EngineBackend) Run(q *Query) (*Result, error) {
	p, ok := q.Payload.(*plan.Plan)
	if !ok || p == nil {
		return nil, fmt.Errorf("frontdoor: query %q has no plan payload", q.Tenant)
	}
	res, err := b.live.RunOne(b.sched, p)
	if err != nil {
		return nil, err
	}
	out := &Result{
		OpDurations: make(map[int]float64, len(res.OpDurations)),
		OpMemory:    make(map[int]float64, len(res.OpMemory)),
	}
	for t, d := range res.OpDurations {
		out.OpDurations[int(t)] = d
	}
	for t, m := range res.OpMemory {
		out.OpMemory[int(t)] = m
	}
	return out, nil
}

// PlanPool maps incoming requests onto executable plans: the wire
// format carries an operator summary, not a full plan, so the server
// picks a benchmark plan by hashing the summary. The mapping is
// deterministic — identical requests execute identical plans — which
// keeps the admission estimator's online cost windows consistent with
// what actually runs, on a single server and across the cluster's
// nodes alike (every node holding the same plan set maps a routed
// query to the same plan, whichever node it lands on).
type PlanPool struct {
	inner Backend
	plans []*plan.Plan
	mu    sync.Mutex
}

// NewPlanPool wraps a backend with the summary-to-plan mapping.
func NewPlanPool(inner Backend, plans []*plan.Plan) (*PlanPool, error) {
	if inner == nil || len(plans) == 0 {
		return nil, fmt.Errorf("frontdoor: NewPlanPool needs a backend and at least one plan")
	}
	return &PlanPool{inner: inner, plans: plans}, nil
}

// Run implements Backend: hash the op summary, clone the selected
// plan into the query payload, execute on the wrapped backend.
func (pp *PlanPool) Run(q *Query) (*Result, error) {
	h := fnv.New64a()
	for _, op := range q.Ops {
		fmt.Fprintf(h, "%d:%d;", op.Key, op.Units)
	}
	pp.mu.Lock()
	p := pp.plans[int(h.Sum64()%uint64(len(pp.plans)))].Clone()
	pp.mu.Unlock()
	q.Payload = p
	return pp.inner.Run(q)
}

// lockedScheduler serializes OnEvent across concurrent live runs.
type lockedScheduler struct {
	mu    sync.Mutex
	inner engine.Scheduler
}

func (l *lockedScheduler) Name() string { return l.inner.Name() }

func (l *lockedScheduler) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.OnEvent(st, ev)
}

// QueryCompleted forwards lifecycle callbacks (outcome joins, online
// checkpointing) to the wrapped scheduler under the same lock that
// serializes OnEvent, since concurrent live runs complete concurrently.
func (l *lockedScheduler) QueryCompleted(queryID int, arrival, completion float64) {
	if o, ok := l.inner.(engine.QueryObserver); ok {
		l.mu.Lock()
		defer l.mu.Unlock()
		o.QueryCompleted(queryID, arrival, completion)
	}
}
