package frontdoor

import (
	"testing"
	"time"

	"repro/internal/lsched"
	"repro/internal/nn"
	"repro/internal/provenance"
)

// TestProvenanceRecordsAdmissions: every terminal admission verdict
// lands in the flight recorder with the exact admission feature vector,
// and completion joins the outcome (latency, deadline, O-DUR error).
func TestProvenanceRecordsAdmissions(t *testing.T) {
	rec := provenance.NewRecorder(provenance.Options{Capacity: 64})
	slo := provenance.NewSLOTracker(provenance.SLOConfig{})
	be := &fakeBackend{delay: 2 * time.Millisecond}
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 2, Provenance: rec, SLO: slo})

	tk, err := fd.Submit(q("acme", ClassLatency))
	if err != nil {
		t.Fatal(err)
	}
	d := waitOutcome(t, tk)
	if d.Outcome != OutcomeAdmitted {
		t.Fatalf("disposition = %+v", d)
	}

	recs := rec.Recent(10)
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != provenance.KindAdmit || r.Tenant != "acme" {
		t.Fatalf("record = %+v", r)
	}
	if r.Action != int32(Admit) {
		t.Fatalf("action = %d, want Admit", r.Action)
	}
	if want := len(lsched.AdmissionFeatureNames()); len(r.Features) != want {
		t.Fatalf("feature vector has %d dims, want %d", len(r.Features), want)
	}
	if !r.Outcome.Joined {
		t.Fatal("outcome never joined")
	}
	if !r.Outcome.DeadlineMet || r.Outcome.LatencySecs <= 0 {
		t.Fatalf("joined outcome = %+v", r.Outcome)
	}
	st := rec.Stats()
	if st.Recorded != 1 || st.Joined != 1 || st.OpenKeys != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The SLO tracker saw the completion as a good outcome.
	entries := slo.Snapshot().Entries
	if len(entries) != 1 || entries[0].Good != 1 || entries[0].Bad != 0 {
		t.Fatalf("slo entries = %+v", entries)
	}
}

// TestProvenanceRecordsSheds: a shed verdict records with the learned
// controller's score and joins a Shed outcome immediately.
func TestProvenanceRecordsSheds(t *testing.T) {
	rec := provenance.NewRecorder(provenance.Options{Capacity: 64})
	slo := provenance.NewSLOTracker(provenance.SLOConfig{})
	ctrl := NewLearned(lsched.NewAdmissionHead(nn.NewParams(1)))
	ctrl.ShedBelow = 1.1 // shed everything
	ctrl.Version = 7
	fd := mustFD(t, Options{
		Backend: &fakeBackend{}, Controller: ctrl, MaxInFlight: 2,
		Provenance: rec, SLO: slo,
	})

	tk, err := fd.Submit(q("zeta", ClassThroughput))
	if err != nil {
		t.Fatal(err)
	}
	d := waitOutcome(t, tk)
	if d.Outcome != OutcomeShed {
		t.Fatalf("disposition = %+v", d)
	}

	recs := rec.Recent(10)
	if len(recs) != 1 {
		t.Fatalf("%d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Action != int32(Shed) || r.PolicyVersion != 7 {
		t.Fatalf("record = %+v", r)
	}
	if len(r.Scores) != 1 || r.Scores[0] < 0 || r.Scores[0] > 1 {
		t.Fatalf("scores = %v, want the admission probability", r.Scores)
	}
	if !r.Outcome.Joined || !r.Outcome.Shed {
		t.Fatalf("outcome = %+v, want joined shed", r.Outcome)
	}
	// Shed counts against the tenant's error budget.
	entries := slo.Snapshot().Entries
	if len(entries) != 1 || entries[0].Bad != 1 {
		t.Fatalf("slo entries = %+v", entries)
	}
}
