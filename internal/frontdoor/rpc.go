package frontdoor

import "repro/internal/rpcsched"

// RPCService is the net/rpc receiver for the front door, mounted on an
// rpcsched.Server via Mount so query ingress shares the scheduler
// server's connections — and inherits its per-connection I/O deadlines,
// in-flight tracking, and graceful-shutdown drain.
type RPCService struct {
	fd *FrontDoor
}

// Mount registers the front door on srv under the "FrontDoor" service
// name. Shut the front door down before the server: a Submit call
// blocks until its query resolves, and the server's drain waits for
// exactly those calls.
func Mount(srv *rpcsched.Server, fd *FrontDoor) error {
	return srv.RegisterName("FrontDoor", &RPCService{fd: fd})
}

// Submit is the RPC method: it validates the request, submits it, and
// replies with the query's terminal disposition (net/rpc runs each
// call in its own goroutine, so blocking until the query resolves is
// the intended shape). Validation failures surface as RPC errors;
// reject/shed outcomes are normal replies.
func (s *RPCService) Submit(req *Request, reply *Response) error {
	q, err := req.Validate()
	if err != nil {
		return err
	}
	t, _ := s.fd.Submit(q) // a rejection's disposition is already buffered
	*reply = responseFrom(<-t.Done())
	return nil
}
