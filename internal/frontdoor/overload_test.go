package frontdoor

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/lsched"
	"repro/internal/nn"
)

// overloadConfig parameterizes the open-loop overload run.
type overloadConfig struct {
	queries  int
	tenants  int
	slots    int
	service  time.Duration // backend per-query run time
	overload float64       // offered rate as a multiple of sustainable
	deadline time.Duration // latency-class deadline
	queueCap int
	seed     int64
	// controller builds the admission controller under test; nil means
	// a learned controller over a fresh admission head.
	controller func() Controller
	// expensiveFrac, when positive, makes that fraction of queries
	// carry an op key whose service time is `expensive` instead of
	// `service` — the heterogeneous-cost regime where O-DUR-driven
	// admission has something to exploit.
	expensiveFrac float64
	expensive     time.Duration
}

// costedBackend sleeps per ops unit by key and reports true per-unit
// costs back, so the admission estimator's windows converge on them.
type costedBackend struct {
	delays map[int]time.Duration
}

func (b *costedBackend) Run(q *Query) (*Result, error) {
	total := time.Duration(0)
	res := &Result{OpDurations: map[int]float64{}, OpMemory: map[int]float64{}}
	for _, op := range q.Ops {
		total += b.delays[op.Key] * time.Duration(op.Units)
		res.OpDurations[op.Key] = b.delays[op.Key].Seconds()
		res.OpMemory[op.Key] = 1
	}
	time.Sleep(total)
	return res, nil
}

type overloadResult struct {
	stats      Stats
	peakQueued int
	// latTotal counts latency-class submissions; latTotal minus
	// len(latLatency) is how many of them were dropped.
	latTotal int
	// latLatency holds the end-to-end latencies of admitted
	// latency-class queries, sorted ascending.
	latLatency []time.Duration
}

// runOverload drives an open-loop generator at cfg.overload times the
// backend's sustainable rate against a learned-admission front door
// and reports what happened. Open-loop means submissions are paced by
// the clock, never by completions — exactly the regime that grows
// queues without bound when admission control is broken.
func runOverload(t testing.TB, cfg overloadConfig) overloadResult {
	t.Helper()
	var be Backend = &fakeBackend{delay: cfg.service}
	if cfg.expensiveFrac > 0 {
		be = &costedBackend{delays: map[int]time.Duration{0: cfg.service, 1: cfg.expensive}}
	}
	ctrl := Controller(nil)
	if cfg.controller != nil {
		ctrl = cfg.controller()
	} else {
		ctrl = NewLearned(lsched.NewAdmissionHead(nn.NewParams(cfg.seed)))
	}
	fd, err := New(Options{
		Backend:       be,
		Controller:    ctrl,
		MaxInFlight:   cfg.slots,
		QueueCap:      cfg.queueCap,
		SweepInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Peak-occupancy monitor: the bounded-memory assertion needs the
	// worst observed queue depth, not the final one.
	var peak atomic.Int64
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		tick := time.NewTicker(500 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-monDone:
				return
			case <-tick.C:
				if qd := int64(fd.Stats().Queued); qd > peak.Load() {
					peak.Store(qd)
				}
			}
		}
	}()

	meanService := cfg.service.Seconds()
	if cfg.expensiveFrac > 0 {
		meanService = (1-cfg.expensiveFrac)*cfg.service.Seconds() + cfg.expensiveFrac*cfg.expensive.Seconds()
	}
	sustainable := float64(cfg.slots) / meanService // queries/sec
	interval := time.Duration(float64(time.Second) / (sustainable * cfg.overload))
	rng := rand.New(rand.NewSource(cfg.seed))
	tenantNames := make([]string, cfg.tenants)
	for i := range tenantNames {
		tenantNames[i] = string(rune('a' + i))
	}

	tickets := make([]*Ticket, 0, cfg.queries)
	classes := make([]Class, 0, cfg.queries)
	start := time.Now()
	for i := 0; i < cfg.queries; i++ {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		qq := q(tenantNames[rng.Intn(cfg.tenants)], ClassThroughput)
		if rng.Intn(2) == 0 {
			qq.Class = ClassLatency
			qq.Deadline = cfg.deadline
		}
		if cfg.expensiveFrac > 0 && rng.Float64() < cfg.expensiveFrac {
			qq.Ops = []costmodel.OpWork{{Key: 1, Units: 1}}
		}
		tk, _ := fd.Submit(qq)
		tickets = append(tickets, tk)
		classes = append(classes, qq.Class)
	}

	res := overloadResult{}
	for _, c := range classes {
		if c == ClassLatency {
			res.latTotal++
		}
	}
	for i, tk := range tickets {
		select {
		case d := <-tk.Done():
			if d.Outcome == OutcomeAdmitted && classes[i] == ClassLatency {
				res.latLatency = append(res.latLatency, d.Latency)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("ticket %d never resolved", i)
		}
	}
	monDone <- struct{}{}
	<-monDone
	if !fd.Shutdown(10 * time.Second) {
		t.Fatal("drain timed out")
	}
	res.stats = fd.Stats()
	res.peakQueued = int(peak.Load())
	sort.Slice(res.latLatency, func(i, j int) bool { return res.latLatency[i] < res.latLatency[j] })
	return res
}

func p99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	return ds[len(ds)*99/100]
}

// checkOverload asserts the three regression properties: queue memory
// stays bounded, overload is actually shed (not absorbed into
// unbounded queues), and the p99 of *admitted* latency-sensitive
// queries stays within budget — the whole point of learned admission
// is that the queries it does admit still meet their SLO.
func checkOverload(t *testing.T, cfg overloadConfig, res overloadResult) {
	t.Helper()
	bound := cfg.tenants * int(numClasses) * cfg.queueCap
	if res.peakQueued > bound {
		t.Errorf("peak queue depth %d exceeds configured bound %d", res.peakQueued, bound)
	}
	dropped := res.stats.Shed + res.stats.Rejected
	if dropped == 0 {
		t.Errorf("2x overload produced zero shed/rejected (stats %+v)", res.stats)
	}
	if res.stats.Admitted+res.stats.Shed+res.stats.Rejected != res.stats.Submitted {
		t.Errorf("conservation broken: %+v", res.stats)
	}
	if len(res.latLatency) == 0 {
		t.Fatal("no latency-class query was admitted at all")
	}
	budget := 4 * cfg.deadline // generous for CI noise, far below uncontrolled queueing delay
	if got := p99(res.latLatency); got > budget {
		t.Errorf("admitted latency-class p99 = %v, budget %v (n=%d)", got, budget, len(res.latLatency))
	}
	t.Logf("overload: submitted=%d admitted=%d shed=%d rejected=%d peakQueued=%d latN=%d p50=%v p99=%v",
		res.stats.Submitted, res.stats.Admitted, res.stats.Shed, res.stats.Rejected,
		res.peakQueued, len(res.latLatency),
		res.latLatency[len(res.latLatency)/2], p99(res.latLatency))
}

// TestOverloadRegression is the tier-1 overload test: short,
// deterministic seed, an open-loop generator at 2x the sustainable
// rate.
func TestOverloadRegression(t *testing.T) {
	cfg := overloadConfig{
		queries:  1500,
		tenants:  4,
		slots:    4,
		service:  400 * time.Microsecond,
		overload: 2,
		deadline: 25 * time.Millisecond,
		queueCap: 256,
		seed:     42,
	}
	checkOverload(t, cfg, runOverload(t, cfg))
}

// TestOverloadSustained is the long soak variant (skipped under
// -short): more queries, more tenants, heavier overload.
func TestOverloadSustained(t *testing.T) {
	if testing.Short() {
		t.Skip("long overload soak skipped in -short mode")
	}
	cfg := overloadConfig{
		queries:  10000,
		tenants:  8,
		slots:    4,
		service:  400 * time.Microsecond,
		overload: 3,
		deadline: 25 * time.Millisecond,
		queueCap: 256,
		seed:     7,
	}
	checkOverload(t, cfg, runOverload(t, cfg))
}
