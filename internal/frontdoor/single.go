package frontdoor

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/lsched"
	"repro/internal/provenance"
	"repro/internal/rpcsched"
)

// singleCore is the original front-door machinery: one mutex over all
// tenant state, drained by one goroutine. It is retained behind
// Options.SingleLoop as the honest A/B baseline for the sharded core
// (BenchmarkFrontDoorSubmit compares the two) and exercises exactly
// the code path PR 6 shipped.
type singleCore struct {
	fd   *FrontDoor
	opts *Options
	ins  *instruments

	mu       sync.Mutex
	tenants  map[string]*tenant
	order    []string // round-robin tenant order
	rrNext   int
	inflight int
	queued   int
	// queuedClass tracks per-SLO-class occupancy: the latency class
	// drains first, so a latency query's wait estimate must not count
	// the throughput backlog behind it.
	queuedClass [numClasses]int
	avgDur      float64 // EWMA of admitted-query service time (seconds)
	closed      bool

	submitted, admitted, shed, rejected int64

	pending rpcsched.Inflight // executing queries (shutdown drain)
	wake    chan struct{}
	quit    chan struct{}
	loopWG  sync.WaitGroup

	// provFeat/provScore are mu-guarded scratch for flight-recorder
	// calls on the admission path (no per-decision allocation).
	provFeat  []float64
	provScore [1]float64
}

// newSingleCore builds and starts the single-loop core.
func newSingleCore(owner *FrontDoor) *singleCore {
	fd := &singleCore{
		fd:      owner,
		opts:    &owner.opts,
		ins:     owner.ins,
		tenants: make(map[string]*tenant),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	fd.loopWG.Add(1)
	go fd.drainLoop()
	return fd
}

// submit validates, rate-limits, and enqueues t (FrontDoor.Submit).
func (fd *singleCore) submit(t *Ticket) (*Ticket, error) {
	q := t.Query
	fd.mu.Lock()
	fd.submitted++
	t.provID = fd.submitted
	if fd.closed {
		return fd.rejectLocked(t, nil, "shutdown")
	}
	tn, ok := fd.tenants[q.Tenant]
	if !ok {
		if len(fd.tenants) >= fd.opts.MaxTenants {
			return fd.rejectLocked(t, nil, "tenant_limit")
		}
		tn = &tenant{name: q.Tenant}
		tn.bucket.init(fd.opts.Rate, fd.opts.Burst, t.enq)
		tn.ins = fd.ins.forTenant(q.Tenant)
		fd.tenants[q.Tenant] = tn
		fd.order = append(fd.order, q.Tenant)
	}
	tn.submitted++
	tn.ins.submitted.Inc()
	if !tn.bucket.allow(t.enq) {
		return fd.rejectLocked(t, tn, "rate_limit")
	}
	if q.Class < 0 || q.Class >= numClasses {
		return fd.rejectLocked(t, tn, "bad_class")
	}
	if len(tn.queues[q.Class]) >= fd.opts.QueueCap {
		return fd.rejectLocked(t, tn, "queue_full")
	}
	tn.queues[q.Class] = append(tn.queues[q.Class], t)
	fd.queued++
	fd.queuedClass[q.Class]++
	tn.ins.depth[q.Class].Set(float64(len(tn.queues[q.Class])))
	fd.ins.queued.Set(float64(fd.queued))
	fd.mu.Unlock()

	fd.kick()
	return t, nil
}

// rejectLocked resolves t as rejected and releases the lock.
func (fd *singleCore) rejectLocked(t *Ticket, tn *tenant, reason string) (*Ticket, error) {
	fd.rejected++
	if tn != nil {
		tn.rejected++
		tn.ins.rejected.Inc()
	} else {
		fd.ins.forTenant(t.Query.Tenant).rejected.Inc()
	}
	t.state = stateResolved
	fd.mu.Unlock()
	t.done <- Disposition{Outcome: OutcomeRejected, Reason: reason}
	return t, fmt.Errorf("frontdoor: rejected: %s", reason)
}

// cancel withdraws a queued ticket (Ticket.Cancel).
func (fd *singleCore) cancel(t *Ticket) {
	fd.mu.Lock()
	if t.state != stateQueued {
		fd.mu.Unlock()
		return
	}
	tn := fd.tenants[t.Query.Tenant]
	q := tn.queues[t.Query.Class]
	for i, qt := range q {
		if qt == t {
			tn.queues[t.Query.Class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	fd.shedLocked(t, tn, "cancelled")
	fd.mu.Unlock()
}

// shedLocked marks an (already dequeued) ticket shed. Caller holds
// fd.mu and has removed t from its queue.
func (fd *singleCore) shedLocked(t *Ticket, tn *tenant, reason string) {
	t.state = stateResolved
	fd.shed++
	fd.queued--
	fd.queuedClass[t.Query.Class]--
	tn.shed++
	tn.ins.shed.Inc()
	tn.ins.depth[t.Query.Class].Set(float64(len(tn.queues[t.Query.Class])))
	fd.ins.queued.Set(float64(fd.queued))
	fd.opts.Provenance.JoinOutcome(provenance.KindAdmit, t.provID, provenance.Outcome{Shed: true})
	fd.opts.SLO.Observe(t.Query.Tenant, t.Query.Class.String(), false)
	t.done <- Disposition{Outcome: OutcomeShed, Reason: reason, Wait: time.Since(t.enq)}
}

// kick wakes the drain loop (non-blocking).
func (fd *singleCore) kick() {
	select {
	case fd.wake <- struct{}{}:
	default:
	}
}

// drainLoop is the admission loop: whenever woken (submission,
// completion, cancellation, or the sweep ticker) it sheds expired
// queued queries and fills free executor slots, visiting the latency
// class first and round-robining across tenants within a class.
func (fd *singleCore) drainLoop() {
	defer fd.loopWG.Done()
	ticker := time.NewTicker(fd.opts.SweepInterval)
	defer ticker.Stop()
	for {
		fd.dispatch()
		select {
		case <-fd.wake:
		case <-ticker.C:
		case <-fd.quit:
			return
		}
	}
}

// dispatch runs one admission pass.
func (fd *singleCore) dispatch() {
	now := time.Now()
	fd.mu.Lock()
	defer fd.mu.Unlock()
	if fd.closed {
		return
	}
	fd.expireLocked(now)
	for fd.inflight < fd.opts.MaxInFlight && fd.queued > 0 {
		if !fd.admitOneLocked(now) {
			break // everything available was deferred
		}
	}
}

// expireLocked sheds every queued query whose deadline has passed:
// running it could only produce a late answer.
func (fd *singleCore) expireLocked(now time.Time) {
	for _, name := range fd.order {
		tn := fd.tenants[name]
		for c := Class(0); c < numClasses; c++ {
			q := tn.queues[c]
			kept := q[:0]
			for _, t := range q {
				if t.Query.Deadline > 0 && now.Sub(t.enq) > t.Query.Deadline {
					tn.queues[c] = kept // shedLocked reads the queue for depth
					fd.shedLocked(t, tn, "deadline")
					continue
				}
				kept = append(kept, t)
			}
			tn.queues[c] = kept
			tn.ins.depth[c].Set(float64(len(kept)))
		}
	}
}

// admitOneLocked scans for one admittable query (latency class first,
// round-robin across tenants) and dispatches it. It returns whether it
// made progress (admitted or shed something); false means every queued
// query was deferred this pass and the loop should wait.
func (fd *singleCore) admitOneLocked(now time.Time) bool {
	n := len(fd.order)
	for c := Class(0); c < numClasses; c++ {
		for i := 0; i < n; i++ {
			tn := fd.tenants[fd.order[(fd.rrNext+i)%n]]
			q := tn.queues[c]
			if len(q) == 0 {
				continue
			}
			t := q[0]
			fd.buildFeatures(&t.feat, tn, t, now)
			dec := fd.opts.Controller.Decide(&t.feat, t.Query)
			if dec != Defer {
				// Flight-record terminal verdicts (defers are transient:
				// the same query is re-decided on a later pass). The
				// heuristic baseline admits everything, so its
				// counterfactual is always Admit.
				fd.provFeat = recordAdmission(fd.opts, t, dec, fd.provFeat, &fd.provScore)
			}
			switch dec {
			case Admit:
				tn.queues[c] = q[1:]
				if len(tn.queues[c]) == 0 {
					tn.queues[c] = nil // release the drained backing array
				}
				fd.rrNext = (fd.rrNext + i + 1) % n
				fd.admitLocked(t, tn, now)
				return true
			case Shed:
				tn.queues[c] = q[1:]
				if len(tn.queues[c]) == 0 {
					tn.queues[c] = nil
				}
				fd.shedLocked(t, tn, "load")
				// Progress: the caller rescans, so this tenant's next
				// head is reconsidered immediately.
				return true
			case Defer:
				// Leave queued; try other tenants/classes.
			}
		}
	}
	return false
}

// admitLocked hands t an executor slot. Caller holds fd.mu and has
// dequeued t.
func (fd *singleCore) admitLocked(t *Ticket, tn *tenant, now time.Time) {
	t.state = stateAdmitted
	fd.admitted++
	fd.queued--
	fd.queuedClass[t.Query.Class]--
	fd.inflight++
	tn.admitted++
	tn.inflight++
	tn.ins.admitted.Inc()
	tn.ins.depth[t.Query.Class].Set(float64(len(tn.queues[t.Query.Class])))
	if fd.inflight > 0 {
		tn.ins.share.Set(float64(tn.inflight) / float64(fd.inflight))
	}
	fd.ins.queued.Set(float64(fd.queued))
	fd.ins.inflight.Set(float64(fd.inflight))
	wait := now.Sub(t.enq)
	fd.ins.wait[t.Query.Class].Observe(wait.Seconds())
	fd.pending.Add()
	go fd.run(t, tn, wait)
}

// run executes an admitted query on the backend and delivers its
// disposition. Runs in its own goroutine.
func (fd *singleCore) run(t *Ticket, tn *tenant, wait time.Duration) {
	defer fd.pending.Done()
	started := time.Now()
	res, err := fd.opts.Backend.Run(t.Query)
	dur := time.Since(started)
	latency := wait + dur

	met := err == nil && (t.Query.Deadline <= 0 || latency <= t.Query.Deadline)
	fd.opts.Controller.Observe(&t.feat, t.Query, met)
	joinAdmitted(fd.opts, t, res, latency, dur, met)
	fd.opts.SLO.Observe(t.Query.Tenant, t.Query.Class.String(), met)
	if res != nil {
		est := fd.opts.Estimator
		for k, d := range res.OpDurations {
			est.ObserveCompletion(k, d, res.OpMemory[k])
		}
	}

	fd.mu.Lock()
	fd.inflight--
	tn.inflight--
	if fd.inflight > 0 {
		tn.ins.share.Set(float64(tn.inflight) / float64(fd.inflight))
	} else {
		tn.ins.share.Set(0)
	}
	fd.ins.inflight.Set(float64(fd.inflight))
	// EWMA of service time, the PredWait scale.
	if fd.avgDur == 0 {
		fd.avgDur = dur.Seconds()
	} else {
		fd.avgDur = 0.9*fd.avgDur + 0.1*dur.Seconds()
	}
	fd.mu.Unlock()

	fd.ins.latency[t.Query.Class].Observe(latency.Seconds())
	if t.Query.Deadline > 0 {
		if met {
			fd.ins.deadlineMet.Inc()
		} else {
			fd.ins.deadlineMissed.Inc()
		}
	}
	t.done <- Disposition{
		Outcome: OutcomeAdmitted, Wait: wait, Latency: latency,
		DeadlineMet: met, Err: err,
	}
	fd.kick()
}

// buildFeatures fills f with the admission features for t under the
// current state. Caller holds fd.mu.
func (fd *singleCore) buildFeatures(f *lsched.AdmissionFeatures, tn *tenant, t *Ticket, now time.Time) {
	fillFeatures(f, fd.opts, tn, t, now, loadSnapshot{
		queued:    fd.queued,
		queuedLat: fd.queuedClass[ClassLatency],
		inflight:  fd.inflight,
		avgDur:    fd.avgDur,
	})
}

// draining reports whether shutdown has begun.
func (fd *singleCore) draining() bool {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return fd.closed
}

// stats returns the current terminal-bucket counts.
func (fd *singleCore) stats() Stats {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	return Stats{
		Submitted: fd.submitted, Admitted: fd.admitted,
		Shed: fd.shed, Rejected: fd.rejected,
		Queued: fd.queued, InFlight: fd.inflight,
	}
}

// status snapshots the core for the obs /frontdoor endpoint.
func (fd *singleCore) status() StatusData {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	st := StatusData{
		Controller: fd.opts.Controller.Name(),
		InFlight:   fd.inflight,
		Queued:     fd.queued,
		Submitted:  fd.submitted,
		Admitted:   fd.admitted,
		Shed:       fd.shed,
		Rejected:   fd.rejected,
		AvgRunSecs: fd.avgDur,
	}
	for _, name := range fd.order {
		tn := fd.tenants[name]
		st.Tenants = append(st.Tenants, tenantStatusOf(tn))
	}
	return st
}

// shutdown stops the core (FrontDoor.Shutdown).
func (fd *singleCore) shutdown(drainTimeout time.Duration) bool {
	fd.mu.Lock()
	if fd.closed {
		fd.mu.Unlock()
		return fd.pending.Wait(drainTimeout)
	}
	fd.closed = true
	for _, name := range fd.order {
		tn := fd.tenants[name]
		for c := Class(0); c < numClasses; c++ {
			pending := tn.queues[c]
			tn.queues[c] = nil
			for _, t := range pending {
				fd.shedLocked(t, tn, "shutdown")
			}
		}
	}
	fd.mu.Unlock()
	close(fd.quit)
	fd.loopWG.Wait()
	return fd.pending.Wait(drainTimeout)
}
