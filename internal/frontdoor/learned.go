package frontdoor

import "repro/internal/lsched"

// Learned is the scheduler-driven admission controller: the decision is
// made by the LSched agent's admission head, scoring queue pressure,
// per-tenant in-flight share, and the cost model's O-DUR/O-MEM
// whole-plan predictions. Three behaviors separate it from the
// tail-drop baseline:
//
//  1. Hopeless-query shedding: a deadline-carrying query whose
//     remaining budget cannot cover its predicted wait plus predicted
//     execution is shed at the queue head — before it burns an
//     executor slot producing an answer nobody can use.
//  2. Score-based load shedding: the learned admit probability (which
//     online updates push toward states whose admissions met their
//     deadlines) sheds below ShedBelow.
//  3. Throughput-class reservation: when the executor is nearly
//     saturated and the head scores only marginally, throughput-class
//     work is deferred, keeping the last slots available for the
//     latency class.
type Learned struct {
	head *lsched.AdmissionHead
	// ShedBelow sheds queries scoring under it (default 0.2).
	ShedBelow float64
	// DeferBelow defers throughput-class queries scoring under it when
	// ReserveSlots or fewer slots are free (default 0.55).
	DeferBelow float64
	// ReserveSlots is the free-slot threshold for the throughput
	// deferral (default 1).
	ReserveSlots float64
	// Train enables online updates from observed outcomes (default on
	// via NewLearned).
	Train bool
	// Version is the policy-store version the admission head was loaded
	// from (0 = not from the store); flight-recorder records carry it.
	Version int
}

// NewLearned wraps an agent's admission head in a controller with
// online training enabled.
func NewLearned(head *lsched.AdmissionHead) *Learned {
	return &Learned{head: head, ShedBelow: 0.2, DeferBelow: 0.55, ReserveSlots: 1, Train: true}
}

// Head exposes the underlying admission head (checkpointing, tests).
func (l *Learned) Head() *lsched.AdmissionHead { return l.head }

// Name implements Controller.
func (l *Learned) Name() string { return "learned" }

// AdmissionScore exposes the head's admit probability for the given
// features — the score the flight recorder stores with each verdict.
func (l *Learned) AdmissionScore(f *lsched.AdmissionFeatures) float64 { return l.head.Score(f) }

// PolicyVersion names the policy-store version behind the head.
func (l *Learned) PolicyVersion() int { return l.Version }

// SetPolicyVersion updates the stamped version (serving hot-swaps).
func (l *Learned) SetPolicyVersion(v int) { l.Version = v }

// Decide implements Controller.
func (l *Learned) Decide(f *lsched.AdmissionFeatures, q *Query) Decision {
	// Hopeless check: Decide runs on the queue head with a slot free,
	// so the query's actual residual wait is ~zero — what matters is
	// whether the remaining budget covers the predicted execution.
	// DeadlineHeadroom bakes in PredWait (the featurization prices the
	// backlog), so add it back: headroom + wait == remaining - dur.
	if q.Deadline > 0 && f.DeadlineHeadroom+f.PredWait < 0 {
		return Shed
	}
	s := l.head.Score(f)
	if s < l.ShedBelow {
		return Shed
	}
	if q.Class == ClassThroughput && s < l.DeferBelow && f.FreeSlots <= l.ReserveSlots {
		return Defer
	}
	return Admit
}

// Observe implements Controller: one online logistic step per admitted
// query — label 1 when the admission met its deadline (or had none and
// completed), 0 when it was wasted work.
func (l *Learned) Observe(f *lsched.AdmissionFeatures, q *Query, deadlineMet bool) {
	if !l.Train {
		return
	}
	label := 0.0
	if deadlineMet {
		label = 1
	}
	l.head.Update(f, label)
}
