package frontdoor

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConservationUnderChurn is the concurrency stress test for the
// terminal-bucket invariant: N tenants × M producers submitting and
// cancelling against one drain-looping front door, with rate limiting
// and bounded queues forcing every reject path. Every ticket must
// resolve exactly once and the buckets must conserve:
//
//	admitted + shed + rejected == submitted
//
// Run under -race (scripts/check.sh includes this package in the race
// set); the invariant plus the race detector covers the queue
// bookkeeping, cancel-vs-admit races, and shutdown shedding. Both
// cores run the same churn: the single-loop core for the legacy path,
// the sharded core at 8 shards/8 procs for the parallel one.
func TestConservationUnderChurn(t *testing.T) {
	t.Run("single", func(t *testing.T) {
		conservationChurn(t, func(o *Options) { o.SingleLoop = true })
	})
	t.Run("sharded", func(t *testing.T) {
		withProcs(t, 8)
		conservationChurn(t, func(o *Options) { o.Shards = 8 })
	})
}

func conservationChurn(t *testing.T, tune func(*Options)) {
	const (
		tenants     = 6
		producers   = 4 // per tenant
		perProducer = 120
	)
	be := &fakeBackend{delay: 200 * time.Microsecond}
	opts := Options{
		Backend:       be,
		MaxInFlight:   4,
		QueueCap:      8,
		Rate:          2000,
		Burst:         50,
		SweepInterval: time.Millisecond,
	}
	tune(&opts)
	fd, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	names := make([]string, tenants)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	var wg sync.WaitGroup
	var submitted, resolved atomic.Int64
	var admitted, shed, rejected atomic.Int64
	for ti := 0; ti < tenants; ti++ {
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(tenant string, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < perProducer; i++ {
					qq := q(tenant, Class(rng.Intn(int(numClasses))))
					if rng.Intn(4) == 0 {
						qq.Deadline = time.Duration(1+rng.Intn(20)) * time.Millisecond
					}
					tk, _ := fd.Submit(qq)
					submitted.Add(1)
					if rng.Intn(4) == 0 {
						tk.Cancel()
					}
					go func() {
						d := <-tk.Done()
						switch d.Outcome {
						case OutcomeAdmitted:
							admitted.Add(1)
						case OutcomeShed:
							shed.Add(1)
						case OutcomeRejected:
							rejected.Add(1)
						}
						resolved.Add(1)
					}()
					if rng.Intn(8) == 0 {
						time.Sleep(time.Duration(rng.Intn(300)) * time.Microsecond)
					}
				}
			}(names[ti], int64(ti*producers+p+1))
		}
	}
	wg.Wait()
	// Shutdown resolves every still-queued ticket and drains in-flight.
	if !fd.Shutdown(30 * time.Second) {
		t.Fatal("shutdown drain timed out")
	}

	deadline := time.Now().Add(10 * time.Second)
	want := int64(tenants * producers * perProducer)
	for resolved.Load() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := resolved.Load(); got != want {
		t.Fatalf("resolved %d of %d tickets", got, want)
	}
	if got := submitted.Load(); got != want {
		t.Fatalf("submitted %d, want %d", got, want)
	}

	// Conservation from the client's view...
	if a, s, r := admitted.Load(), shed.Load(), rejected.Load(); a+s+r != want {
		t.Fatalf("dispositions: admitted=%d shed=%d rejected=%d, sum %d != %d", a, s, r, a+s+r, want)
	}
	// ...and from the front door's own accounting, and they must agree.
	st := fd.Stats()
	if st.Admitted+st.Shed+st.Rejected != st.Submitted {
		t.Fatalf("stats do not conserve: %+v", st)
	}
	if st.Submitted != want || st.Admitted != admitted.Load() || st.Shed != shed.Load() || st.Rejected != rejected.Load() {
		t.Fatalf("stats %+v disagree with dispositions (admitted=%d shed=%d rejected=%d)",
			st, admitted.Load(), shed.Load(), rejected.Load())
	}
	if st.Queued != 0 || st.InFlight != 0 {
		t.Fatalf("post-shutdown occupancy: %+v", st)
	}
	if st.Admitted != int64(be.Runs()) {
		t.Fatalf("backend ran %d queries, admitted %d", be.Runs(), st.Admitted)
	}
}
