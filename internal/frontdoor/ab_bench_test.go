package frontdoor

import (
	"testing"
	"time"

	"repro/internal/lsched"
	"repro/internal/nn"
)

// BenchmarkAdmissionAB replays the same seeded 2x-overload trace
// against the heuristic admit-everything baseline and the learned
// admission controller, reporting the p99 end-to-end latency of
// *admitted* latency-sensitive queries (p99-ns) and the fraction of
// latency-sensitive queries dropped (shed-pct). The learned head must
// win on p99 at an equal-or-lower shed rate — that pair is the
// recorded before/after in BENCH_hotpath.json.
func BenchmarkAdmissionAB(b *testing.B) {
	arms := []struct {
		name string
		ctrl func() Controller
	}{
		{"heuristic", func() Controller { return NewHeuristic() }},
		{"learned", func() Controller { return NewLearned(lsched.NewAdmissionHead(nn.NewParams(42))) }},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var p99Sum, shedSum float64
			for i := 0; i < b.N; i++ {
				res := runOverload(b, overloadConfig{
					queries:       1500,
					tenants:       4,
					slots:         4,
					service:       400 * time.Microsecond,
					overload:      2,
					deadline:      25 * time.Millisecond,
					queueCap:      256,
					seed:          42,
					controller:    arm.ctrl,
					expensiveFrac: 0.25,
					expensive:     5 * time.Millisecond,
				})
				p99Sum += float64(p99(res.latLatency))
				dropped := res.latTotal - len(res.latLatency)
				shedSum += 100 * float64(dropped) / float64(res.latTotal)
			}
			b.ReportMetric(p99Sum/float64(b.N), "p99-ns")
			b.ReportMetric(shedSum/float64(b.N), "shed-pct")
		})
	}
}
