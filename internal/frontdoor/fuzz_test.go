package frontdoor

import (
	"testing"
	"time"

	"repro/internal/plan"
)

// FuzzDecodeRequest fuzzes the front door's wire boundary: arbitrary
// bytes must either decode into a fully validated query or error —
// never panic — and every query the decoder lets through must flow
// through submit-to-disposition without wedging a queue slot. Seed
// corpus lives under testdata/fuzz/FuzzDecodeRequest/; run with
// `go test -fuzz=FuzzDecodeRequest ./internal/frontdoor/` to explore.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"acme","class":"latency","deadline_ms":100,"ops":[{"type":0,"blocks":4}]}`))
	f.Add([]byte(`{"tenant":"","ops":[{"type":0,"blocks":1}]}`))                                                               // missing tenant
	f.Add([]byte(`{"tenant":"a b","ops":[{"type":0,"blocks":1}]}`))                                                            // bad tenant alphabet
	f.Add([]byte(`{"tenant":"a","deadline_ms":-5,"ops":[{"type":0,"blocks":1}]}`))                                             // negative deadline
	f.Add([]byte(`{"tenant":"a","deadline_ms":0,"ops":[{"type":99,"blocks":1}]}`))                                             // unknown op type
	f.Add([]byte(`{"tenant":"a","ops":[{"type":1,"blocks":-2}]}`))                                                             // negative blocks
	f.Add([]byte(`{"tenant":"a","class":"weird","ops":[{"type":0,"blocks":1}]}`))                                              // unknown class
	f.Add([]byte(`{"tenant":"a","ops":[]}`))                                                                                   // empty plan
	f.Add([]byte(`{"tenant":"a","deadline_ms":99999999999,"ops":[{"type":0}]}`))                                               // huge deadline
	f.Add([]byte(`not json at all`))                                                                                           //
	f.Add([]byte(`{"tenant":"a","ops":[{"type":0,"blocks":2097152}]}`))                                                        // oversized op
	f.Add([]byte(`{"tenant":"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa","ops":[{"type":0}]}`)) // long tenant

	// One shared front door: decoded queries are pushed end-to-end so a
	// decoder bug that produces a queue-wedging query surfaces as a
	// hang/leak here, not just a bad struct.
	fd, err := New(Options{Backend: &fakeBackend{}, MaxInFlight: 2, QueueCap: 64})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { fd.Shutdown(10 * time.Second) })

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeRequest(data)
		if err != nil {
			if q != nil {
				t.Fatalf("error %v alongside non-nil query", err)
			}
			return
		}
		// The decoder's validation contract.
		if verr := validTenant(q.Tenant); verr != nil {
			t.Fatalf("decoder passed invalid tenant: %v", verr)
		}
		if q.Class < 0 || q.Class >= numClasses {
			t.Fatalf("decoder passed class %d", q.Class)
		}
		if q.Deadline < 0 || q.Deadline > MaxDeadlineMS*time.Millisecond {
			t.Fatalf("decoder passed deadline %v", q.Deadline)
		}
		if len(q.Ops) == 0 || len(q.Ops) > MaxRequestOps {
			t.Fatalf("decoder passed %d ops", len(q.Ops))
		}
		for _, op := range q.Ops {
			if op.Key < 0 || op.Key >= plan.NumOpTypes || op.Units < 0 || op.Units > MaxOpBlocks {
				t.Fatalf("decoder passed op %+v", op)
			}
		}
		// End-to-end: the query must reach a terminal disposition (no
		// queue-slot leak). Tiny deadlines may legitimately shed.
		tk, _ := fd.Submit(q)
		select {
		case <-tk.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("query from %q wedged without a disposition", data)
		}
		st := fd.Stats()
		if st.Admitted+st.Shed+st.Rejected+int64(st.Queued) != st.Submitted {
			t.Fatalf("conservation (with queued) broken: %+v", st)
		}
	})
}
