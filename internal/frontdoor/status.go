package frontdoor

// StatusData is the /frontdoor endpoint payload: terminal-bucket
// counts, live occupancy, and per-tenant detail.
type StatusData struct {
	Controller string  `json:"controller"`
	InFlight   int     `json:"in_flight"`
	Queued     int     `json:"queued"`
	Submitted  int64   `json:"submitted"`
	Admitted   int64   `json:"admitted"`
	Shed       int64   `json:"shed"`
	Rejected   int64   `json:"rejected"`
	AvgRunSecs float64 `json:"avg_run_secs"`

	Tenants []TenantStatus `json:"tenants,omitempty"`
}

// TenantStatus is one tenant's slice of the status payload.
type TenantStatus struct {
	Tenant          string `json:"tenant"`
	QueuedLatency   int    `json:"queued_latency"`
	QueuedThroughpt int    `json:"queued_throughput"`
	InFlight        int    `json:"in_flight"`
	Submitted       int64  `json:"submitted"`
	Admitted        int64  `json:"admitted"`
	Shed            int64  `json:"shed"`
	Rejected        int64  `json:"rejected"`
}

// Status snapshots the front door for the obs /frontdoor endpoint
// (wire it as obs.Options.FrontDoor = fd.Status).
func (fd *FrontDoor) Status() any {
	fd.mu.Lock()
	defer fd.mu.Unlock()
	st := StatusData{
		Controller: fd.opts.Controller.Name(),
		InFlight:   fd.inflight,
		Queued:     fd.queued,
		Submitted:  fd.submitted,
		Admitted:   fd.admitted,
		Shed:       fd.shed,
		Rejected:   fd.rejected,
		AvgRunSecs: fd.avgDur,
	}
	for _, name := range fd.order {
		tn := fd.tenants[name]
		st.Tenants = append(st.Tenants, TenantStatus{
			Tenant:          tn.name,
			QueuedLatency:   len(tn.queues[ClassLatency]),
			QueuedThroughpt: len(tn.queues[ClassThroughput]),
			InFlight:        tn.inflight,
			Submitted:       tn.submitted,
			Admitted:        tn.admitted,
			Shed:            tn.shed,
			Rejected:        tn.rejected,
		})
	}
	return st
}
