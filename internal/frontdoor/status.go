package frontdoor

// StatusData is the /frontdoor endpoint payload: terminal-bucket
// counts, live occupancy, per-tenant detail, and — on the sharded
// core — the per-shard breakdown.
type StatusData struct {
	Controller string  `json:"controller"`
	InFlight   int     `json:"in_flight"`
	Queued     int     `json:"queued"`
	Submitted  int64   `json:"submitted"`
	Admitted   int64   `json:"admitted"`
	Shed       int64   `json:"shed"`
	Rejected   int64   `json:"rejected"`
	AvgRunSecs float64 `json:"avg_run_secs"`

	Tenants []TenantStatus `json:"tenants,omitempty"`
	// Shards breaks occupancy and terminal counts down by shard.
	// Absent on the single-loop core.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// TenantStatus is one tenant's slice of the status payload.
type TenantStatus struct {
	Tenant          string `json:"tenant"`
	QueuedLatency   int    `json:"queued_latency"`
	QueuedThroughpt int    `json:"queued_throughput"`
	InFlight        int    `json:"in_flight"`
	Submitted       int64  `json:"submitted"`
	Admitted        int64  `json:"admitted"`
	Shed            int64  `json:"shed"`
	Rejected        int64  `json:"rejected"`
}

// ShardStatus is one shard's slice of the status payload. Stolen
// counts admissions of this shard's queries performed by a peer's
// drain loop (work-stealing).
type ShardStatus struct {
	Shard     int   `json:"shard"`
	Tenants   int   `json:"tenants"`
	Queued    int   `json:"queued"`
	InFlight  int   `json:"in_flight"`
	Submitted int64 `json:"submitted"`
	Admitted  int64 `json:"admitted"`
	Shed      int64 `json:"shed"`
	Rejected  int64 `json:"rejected"`
	Stolen    int64 `json:"stolen"`
}

// tenantStatusOf snapshots one tenant under its owner's lock.
func tenantStatusOf(tn *tenant) TenantStatus {
	return TenantStatus{
		Tenant:          tn.name,
		QueuedLatency:   len(tn.queues[ClassLatency]),
		QueuedThroughpt: len(tn.queues[ClassThroughput]),
		InFlight:        tn.inflight,
		Submitted:       tn.submitted,
		Admitted:        tn.admitted,
		Shed:            tn.shed,
		Rejected:        tn.rejected,
	}
}
