package frontdoor

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/provenance"
	"repro/internal/rpcsched"
)

// shardedCore is the default front-door machinery: tenants are
// hash-partitioned across power-of-two shards, each owning its
// tenants' bounded queues, token buckets, deadline sweep, and drain
// loop, so Submit → admit → dispatch touches only the owning shard's
// lock. What must stay whole-door lives in three places:
//
//   - Executor slots are a CAS semaphore on c.inflight: a shard
//     reserves a slot before scanning its queues and returns it if
//     every queued query was deferred. The semaphore is the only
//     cross-shard synchronization on the admit path and it is a single
//     atomic word — no mutex, no parking on the fast path.
//
//   - The load view the learned AdmissionHead scores on (total queue
//     depth, class depths, in-flight count, service-time EWMA) is
//     published via atomics and read as a snapshot at decision time
//     (see snapshot); feature vectors stay coherent to within one
//     atomic-load window without locking every shard.
//
//   - Conservation (admitted+shed+rejected == submitted) holds as a
//     sum over per-shard terminal buckets: every ticket's terminal
//     transition happens under its owner shard's lock, including
//     admissions performed by a stealing shard, which run entirely
//     under the victim's lock (see stealPass).
//
// Each shard's drain loop doubles as a work-stealer: after its own
// queues are drained, an idle shard scans peers (cheap lock-free
// qlen peek, then TryLock) and admits a bounded batch from a hot
// shard's backlog, morsel-style — PR 8's intra-work-order stealing,
// one level up.
type shardedCore struct {
	fd   *FrontDoor
	opts *Options
	ins  *instruments

	shards []*shard
	mask   uint32

	closed atomic.Bool
	// inflight is the executor-slot semaphore (CAS-bounded by
	// opts.MaxInFlight) and the whole-door in-flight count.
	inflight atomic.Int64
	// queued / queuedClass mirror the summed per-shard queue
	// occupancy for lock-free feature snapshots and steal checks.
	queued      atomic.Int64
	queuedClass [numClasses]atomic.Int64
	// avgDurBits is the service-time EWMA (seconds), stored as
	// Float64bits and advanced by CAS from completion goroutines.
	avgDurBits atomic.Uint64
	// submitSeq hands out flight-recorder provenance IDs unique across
	// shards.
	submitSeq atomic.Int64
	// tenantCount enforces MaxTenants globally (tenant maps are
	// per-shard, so the cap cannot ride any single map's length).
	tenantCount atomic.Int64
	// steals counts cross-shard admissions (work-stealing hits).
	steals atomic.Int64

	pending rpcsched.Inflight // executing queries (shutdown drain)
	loopWG  sync.WaitGroup
}

// shard owns one hash partition of the tenant space. All non-atomic
// fields are guarded by mu; the drain goroutine, submitters, and
// stealing peers all synchronize on it — and nothing else.
type shard struct {
	core *shardedCore
	id   int

	mu          sync.Mutex
	tenants     map[string]*tenant
	order       []string // round-robin tenant order
	rrNext      int
	queued      int
	queuedClass [numClasses]int
	inflight    int // executing queries owned by this shard's tenants
	closed      bool

	// Per-shard terminal buckets; Stats sums them.
	submitted, admitted, shed, rejected int64
	// stolen counts admissions of this shard's queries performed by a
	// peer's drain loop (the victim-side view of c.steals).
	stolen int64

	// qlen mirrors queued for lock-free peeks by stealing peers.
	qlen atomic.Int64

	wake chan struct{}
	quit chan struct{}

	// provFeat/provScore are mu-guarded flight-recorder scratch.
	provFeat  []float64
	provScore [1]float64

	ins shardInstruments
}

// newShardedCore builds and starts the sharded core.
func newShardedCore(owner *FrontDoor) *shardedCore {
	c := &shardedCore{
		fd:   owner,
		opts: &owner.opts,
		ins:  owner.ins,
	}
	n := owner.opts.Shards // already a power of two (withDefaults)
	c.shards = make([]*shard, n)
	c.mask = uint32(n - 1)
	for i := range c.shards {
		c.shards[i] = &shard{
			core:    c,
			id:      i,
			tenants: make(map[string]*tenant),
			wake:    make(chan struct{}, 1),
			quit:    make(chan struct{}),
			ins:     c.ins.forShard(i),
		}
	}
	for _, sh := range c.shards {
		c.loopWG.Add(1)
		go sh.drainLoop()
	}
	return c
}

// shardFor maps a tenant to its owning shard (FNV-1a over the name,
// masked to the power-of-two shard count).
func (c *shardedCore) shardFor(tenant string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(tenant); i++ {
		h ^= uint32(tenant[i])
		h *= 16777619
	}
	return c.shards[h&c.mask]
}

// snapshot assembles the whole-door load view from the published
// atomics. The fields are read at slightly different instants (they
// are independent atomic loads, not one sealed epoch), which is the
// documented coherence contract: each value is exact at its own load,
// and the vector as a whole is coherent to within the few nanoseconds
// the loads span — without taking any shard's lock.
func (c *shardedCore) snapshot() loadSnapshot {
	return loadSnapshot{
		queued:    int(c.queued.Load()),
		queuedLat: int(c.queuedClass[ClassLatency].Load()),
		inflight:  int(c.inflight.Load()),
		avgDur:    math.Float64frombits(c.avgDurBits.Load()),
	}
}

// acquireSlot reserves one executor slot if any is free.
func (c *shardedCore) acquireSlot() bool {
	max := int64(c.opts.MaxInFlight)
	for {
		cur := c.inflight.Load()
		if cur >= max {
			return false
		}
		if c.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// releaseSlot returns an unused reservation (the deferred-everything
// path; completions release via completeOne, which also kicks).
func (c *shardedCore) releaseSlot() { c.inflight.Add(-1) }

// observeDur folds one service time into the EWMA via CAS.
func (c *shardedCore) observeDur(d float64) {
	for {
		old := c.avgDurBits.Load()
		cur := math.Float64frombits(old)
		next := d
		if cur != 0 {
			next = 0.9*cur + 0.1*d
		}
		if c.avgDurBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// kickQueued wakes the drain loop of every shard with queued work
// (non-blocking; lock-free qlen peek), skipping except — the caller
// already drained it inline. Called when a slot frees with work still
// queued. Shards whose backlog is deferred-only are retried by their
// own sweep tickers, so a stale-zero peek cannot strand work.
func (c *shardedCore) kickQueued(except *shard) {
	for _, sh := range c.shards {
		if sh == except || sh.qlen.Load() == 0 {
			continue
		}
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// submit validates, rate-limits, and enqueues t (FrontDoor.Submit),
// touching only the owning shard's lock, then runs an inline dispatch
// pass: on the hot path (free slot, admit verdict) a query goes
// submit → admit → execute in the submitter's goroutine, with no
// cross-goroutine handoff and full parallelism across shards.
func (c *shardedCore) submit(t *Ticket) (*Ticket, error) {
	q := t.Query
	t.provID = c.submitSeq.Add(1)
	sh := c.shardFor(q.Tenant)
	sh.mu.Lock()
	sh.submitted++
	if c.closed.Load() || sh.closed {
		return sh.rejectLocked(t, nil, "shutdown")
	}
	tn, ok := sh.tenants[q.Tenant]
	if !ok {
		// Reserve a tenant slot against the global cap before
		// creating: per-shard maps can't see each other's sizes.
		if c.tenantCount.Add(1) > int64(c.opts.MaxTenants) {
			c.tenantCount.Add(-1)
			return sh.rejectLocked(t, nil, "tenant_limit")
		}
		tn = &tenant{name: q.Tenant}
		tn.bucket.init(c.opts.Rate, c.opts.Burst, t.enq)
		tn.ins = c.ins.forTenant(q.Tenant)
		sh.tenants[q.Tenant] = tn
		sh.order = append(sh.order, q.Tenant)
	}
	tn.submitted++
	tn.ins.submitted.Inc()
	if !tn.bucket.allow(t.enq) {
		return sh.rejectLocked(t, tn, "rate_limit")
	}
	if q.Class < 0 || q.Class >= numClasses {
		return sh.rejectLocked(t, tn, "bad_class")
	}
	if len(tn.queues[q.Class]) >= c.opts.QueueCap {
		return sh.rejectLocked(t, tn, "queue_full")
	}
	tn.queues[q.Class] = append(tn.queues[q.Class], t)
	sh.queued++
	sh.queuedClass[q.Class]++
	sh.qlen.Store(int64(sh.queued))
	c.queued.Add(1)
	c.queuedClass[q.Class].Add(1)
	tn.ins.depth[q.Class].Set(float64(len(tn.queues[q.Class])))
	sh.ins.queued.Set(float64(sh.queued))
	c.ins.queued.Set(float64(c.queued.Load()))
	sh.mu.Unlock()

	sh.dispatch()
	return t, nil
}

// rejectLocked resolves t as rejected and releases the shard lock.
func (sh *shard) rejectLocked(t *Ticket, tn *tenant, reason string) (*Ticket, error) {
	sh.rejected++
	if tn != nil {
		tn.rejected++
		tn.ins.rejected.Inc()
	} else {
		sh.core.ins.forTenant(t.Query.Tenant).rejected.Inc()
	}
	t.state = stateResolved
	sh.mu.Unlock()
	t.done <- Disposition{Outcome: OutcomeRejected, Reason: reason}
	return t, fmt.Errorf("frontdoor: rejected: %s", reason)
}

// cancel withdraws a queued ticket (Ticket.Cancel).
func (c *shardedCore) cancel(t *Ticket) {
	sh := c.shardFor(t.Query.Tenant)
	sh.mu.Lock()
	if t.state != stateQueued {
		sh.mu.Unlock()
		return
	}
	tn := sh.tenants[t.Query.Tenant]
	q := tn.queues[t.Query.Class]
	for i, qt := range q {
		if qt == t {
			tn.queues[t.Query.Class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	sh.shedLocked(t, tn, "cancelled")
	sh.mu.Unlock()
}

// shedLocked marks an (already dequeued) ticket shed. Caller holds
// sh.mu and has removed t from its queue.
func (sh *shard) shedLocked(t *Ticket, tn *tenant, reason string) {
	c := sh.core
	t.state = stateResolved
	sh.shed++
	sh.queued--
	sh.queuedClass[t.Query.Class]--
	sh.qlen.Store(int64(sh.queued))
	c.queued.Add(-1)
	c.queuedClass[t.Query.Class].Add(-1)
	tn.shed++
	tn.ins.shed.Inc()
	tn.ins.depth[t.Query.Class].Set(float64(len(tn.queues[t.Query.Class])))
	sh.ins.queued.Set(float64(sh.queued))
	c.ins.queued.Set(float64(c.queued.Load()))
	c.opts.Provenance.JoinOutcome(provenance.KindAdmit, t.provID, provenance.Outcome{Shed: true})
	c.opts.SLO.Observe(t.Query.Tenant, t.Query.Class.String(), false)
	t.done <- Disposition{Outcome: OutcomeShed, Reason: reason, Wait: time.Since(t.enq)}
}

// drainLoop is one shard's admission loop: drain own queues, then try
// to help a hot peer, then sleep until kicked (submission inline
// dispatch handles the common case; the loop covers deferred work,
// deadline sweeps, and stealing).
func (sh *shard) drainLoop() {
	c := sh.core
	defer c.loopWG.Done()
	ticker := time.NewTicker(c.opts.SweepInterval)
	defer ticker.Stop()
	for {
		sh.dispatch()
		c.stealPass(sh)
		select {
		case <-sh.wake:
		case <-ticker.C:
			sh.sweep()
		case <-sh.quit:
			return
		}
	}
}

// dispatch runs one admission pass over this shard's queues. It is the
// hot path (inline on every submit and completion), so it does not scan
// for expired deadlines — admitOneLocked sheds expired heads as it
// meets them, and the periodic sweep clears the rest.
func (sh *shard) dispatch() {
	now := time.Now()
	sh.mu.Lock()
	if !sh.closed {
		sh.drainQueuesLocked(now)
	}
	sh.mu.Unlock()
}

// sweep is the ticker pass: shed every queued query whose deadline
// already passed, then drain. Only here is the full O(queued) expiry
// scan paid.
func (sh *shard) sweep() {
	now := time.Now()
	sh.mu.Lock()
	if !sh.closed {
		sh.expireLocked(now)
		sh.drainQueuesLocked(now)
	}
	sh.mu.Unlock()
}

// drainQueuesLocked admits queued queries while executor slots last.
// Caller holds sh.mu.
func (sh *shard) drainQueuesLocked(now time.Time) {
	c := sh.core
	for sh.queued > 0 {
		if !c.acquireSlot() {
			return
		}
		if !sh.admitWithSlotLocked(now) {
			c.releaseSlot() // everything left was deferred
			return
		}
	}
}

// admitWithSlotLocked consumes the caller's slot reservation on the
// first admittable query, shedding Shed-verdict heads along the way.
// It reports whether the slot was used; false means every queued query
// was deferred.
func (sh *shard) admitWithSlotLocked(now time.Time) bool {
	for {
		switch sh.admitOneLocked(now) {
		case admitAdmitted:
			return true
		case admitShed:
			// Progress without consuming the slot: rescan.
		default:
			return false
		}
	}
}

type admitResult int

const (
	admitDeferred admitResult = iota // nothing admittable this pass
	admitAdmitted                    // dequeued and dispatched one query
	admitShed                        // dequeued and shed one query
)

// admitOneLocked scans for one admittable query (latency class first,
// round-robin across tenants) and resolves it. The round-robin cursor
// is per-shard, so a hot tenant cannot starve co-hashed tenants: while
// both have queued work their heads are decided alternately.
func (sh *shard) admitOneLocked(now time.Time) admitResult {
	c := sh.core
	n := len(sh.order)
	for cl := Class(0); cl < numClasses; cl++ {
		if cl == ClassThroughput {
			// Cross-shard class priority: the latency class drains
			// first door-wide, not just per shard. Before handing a
			// slot to bulk work, yield if another shard has latency
			// queries queued (this shard's own latency heads were
			// already scanned above — if any are still queued the
			// controller deferred them, which falls through to bulk
			// exactly as on the single-loop core). The owning shard
			// was kicked when that query arrived and is kicked again
			// on every completion; our own drain loop retries on the
			// same signals, so the yield costs one pass, not a stall.
			remote := int(c.queuedClass[ClassLatency].Load()) - sh.queuedClass[ClassLatency]
			if remote > 0 {
				return admitDeferred
			}
		}
		for i := 0; i < n; i++ {
			tn := sh.tenants[sh.order[(sh.rrNext+i)%n]]
			q := tn.queues[cl]
			if len(q) == 0 {
				continue
			}
			t := q[0]
			if t.Query.Deadline > 0 && now.Sub(t.enq) > t.Query.Deadline {
				// Expired while queued: shed instead of running a query
				// that can only produce a late answer. (The periodic
				// sweep clears expired entries behind the head.)
				tn.queues[cl] = q[1:]
				if len(tn.queues[cl]) == 0 {
					tn.queues[cl] = nil
				}
				sh.shedLocked(t, tn, "deadline")
				return admitShed
			}
			fillFeatures(&t.feat, c.opts, tn, t, now, c.snapshot())
			dec := c.opts.Controller.Decide(&t.feat, t.Query)
			if dec != Defer {
				// Flight-record terminal verdicts (defers are transient:
				// the same query is re-decided on a later pass).
				sh.provFeat = recordAdmission(c.opts, t, dec, sh.provFeat, &sh.provScore)
			}
			switch dec {
			case Admit:
				tn.queues[cl] = q[1:]
				if len(tn.queues[cl]) == 0 {
					tn.queues[cl] = nil // release the drained backing array
				}
				sh.rrNext = (sh.rrNext + i + 1) % n
				sh.admitLocked(t, tn, now)
				return admitAdmitted
			case Shed:
				tn.queues[cl] = q[1:]
				if len(tn.queues[cl]) == 0 {
					tn.queues[cl] = nil
				}
				sh.shedLocked(t, tn, "load")
				return admitShed
			case Defer:
				// Leave queued; try other tenants/classes.
			}
		}
	}
	return admitDeferred
}

// admitLocked hands t the executor slot the caller already reserved.
// Caller holds sh.mu and has dequeued t.
func (sh *shard) admitLocked(t *Ticket, tn *tenant, now time.Time) {
	c := sh.core
	t.state = stateAdmitted
	sh.admitted++
	sh.queued--
	sh.queuedClass[t.Query.Class]--
	sh.qlen.Store(int64(sh.queued))
	c.queued.Add(-1)
	c.queuedClass[t.Query.Class].Add(-1)
	sh.inflight++
	tn.admitted++
	tn.inflight++
	tn.ins.admitted.Inc()
	tn.ins.depth[t.Query.Class].Set(float64(len(tn.queues[t.Query.Class])))
	if g := c.inflight.Load(); g > 0 {
		tn.ins.share.Set(float64(tn.inflight) / float64(g))
	}
	sh.ins.queued.Set(float64(sh.queued))
	sh.ins.inflight.Set(float64(sh.inflight))
	c.ins.queued.Set(float64(c.queued.Load()))
	c.ins.inflight.Set(float64(c.inflight.Load()))
	wait := now.Sub(t.enq)
	c.ins.wait[t.Query.Class].Observe(wait.Seconds())
	c.pending.Add()
	go sh.run(t, tn, wait)
}

// run executes an admitted query on the backend and delivers its
// disposition. Runs in its own goroutine; sh is always the ticket's
// owner shard, even for stolen admissions.
func (sh *shard) run(t *Ticket, tn *tenant, wait time.Duration) {
	c := sh.core
	defer c.pending.Done()
	started := time.Now()
	res, err := c.opts.Backend.Run(t.Query)
	dur := time.Since(started)
	latency := wait + dur

	met := err == nil && (t.Query.Deadline <= 0 || latency <= t.Query.Deadline)
	c.opts.Controller.Observe(&t.feat, t.Query, met)
	joinAdmitted(c.opts, t, res, latency, dur, met)
	c.opts.SLO.Observe(t.Query.Tenant, t.Query.Class.String(), met)
	if res != nil {
		est := c.opts.Estimator // internally locked
		for k, d := range res.OpDurations {
			est.ObserveCompletion(k, d, res.OpMemory[k])
		}
	}

	sh.mu.Lock()
	sh.inflight--
	tn.inflight--
	tnInflight := tn.inflight
	shInflight := sh.inflight
	sh.mu.Unlock()

	c.observeDur(dur.Seconds())
	remaining := c.inflight.Add(-1) // release the executor slot
	if remaining > 0 {
		tn.ins.share.Set(float64(tnInflight) / float64(remaining))
	} else {
		tn.ins.share.Set(0)
	}
	sh.ins.inflight.Set(float64(shInflight))
	c.ins.inflight.Set(float64(remaining))
	if c.queued.Load() > 0 {
		// Completion-side inline dispatch: this goroutine just freed a
		// slot, so drain the owner shard right here (cache-warm, no
		// handoff), then steal from backlogged peers while slots last.
		// Only work it could not serve itself (slots exhausted, peer
		// lock busy) falls back to waking the owners' drain loops.
		sh.dispatch()
		if c.queued.Load() > 0 {
			c.stealPass(sh)
			c.kickQueued(sh)
		}
	}

	c.ins.latency[t.Query.Class].Observe(latency.Seconds())
	if t.Query.Deadline > 0 {
		if met {
			c.ins.deadlineMet.Inc()
		} else {
			c.ins.deadlineMissed.Inc()
		}
	}
	t.done <- Disposition{
		Outcome: OutcomeAdmitted, Wait: wait, Latency: latency,
		DeadlineMet: met, Err: err,
	}
}

// expireLocked sheds every queued query whose deadline has passed:
// running it could only produce a late answer. Caller holds sh.mu.
func (sh *shard) expireLocked(now time.Time) {
	for _, name := range sh.order {
		tn := sh.tenants[name]
		for c := Class(0); c < numClasses; c++ {
			q := tn.queues[c]
			kept := q[:0]
			for _, t := range q {
				if t.Query.Deadline > 0 && now.Sub(t.enq) > t.Query.Deadline {
					tn.queues[c] = kept // shedLocked reads the queue for depth
					sh.shedLocked(t, tn, "deadline")
					continue
				}
				kept = append(kept, t)
			}
			tn.queues[c] = kept
			tn.ins.depth[c].Set(float64(len(kept)))
		}
	}
}

// stealBudget bounds how many queries one steal pass admits from a
// single victim: enough to matter, small enough that the thief never
// monopolizes the victim's lock.
const stealBudget = 8

// stealPass lets an idle shard drain a hot peer's backlog. The
// protocol keeps conservation trivially intact: the thief runs the
// victim's own admission pass under the victim's lock (acquired with
// TryLock so it never queues behind the owner), so every stolen
// query's bookkeeping — terminal buckets, gauges, tenant round-robin —
// happens exactly where an owner-admitted query's would. Only the
// thief's goroutine, the slot semaphore, and the steal counters know
// the difference.
func (c *shardedCore) stealPass(thief *shard) {
	if len(c.shards) == 1 || c.closed.Load() || c.queued.Load() == 0 {
		return
	}
	n := len(c.shards)
	for i := 1; i < n; i++ {
		v := c.shards[(thief.id+i)%n]
		if v.qlen.Load() == 0 {
			continue
		}
		if !v.mu.TryLock() {
			continue // owner (or another thief) is already on it
		}
		moved := 0
		if !v.closed {
			now := time.Now()
			for v.queued > 0 && moved < stealBudget {
				if !c.acquireSlot() {
					break
				}
				if !v.admitWithSlotLocked(now) {
					c.releaseSlot()
					break
				}
				moved++
			}
			v.stolen += int64(moved)
		}
		v.mu.Unlock()
		if moved > 0 {
			c.steals.Add(int64(moved))
			c.ins.steals.Add(int64(moved))
		}
		if c.inflight.Load() >= int64(c.opts.MaxInFlight) {
			return // no slots left; nothing more to steal into
		}
	}
}

// draining reports whether shutdown has begun.
func (c *shardedCore) draining() bool { return c.closed.Load() }

// stats sums the per-shard terminal buckets. Each shard is read under
// its own lock; the shards are not frozen together, so mid-churn sums
// may straddle transitions — after a quiesce they are exact.
func (c *shardedCore) stats() Stats {
	var s Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Submitted += sh.submitted
		s.Admitted += sh.admitted
		s.Shed += sh.shed
		s.Rejected += sh.rejected
		s.Queued += sh.queued
		s.InFlight += sh.inflight
		sh.mu.Unlock()
	}
	return s
}

// status snapshots the core for the obs /frontdoor endpoint, including
// the per-shard breakdown.
func (c *shardedCore) status() StatusData {
	st := StatusData{
		Controller: c.opts.Controller.Name(),
		AvgRunSecs: math.Float64frombits(c.avgDurBits.Load()),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		ss := ShardStatus{
			Shard:     sh.id,
			Tenants:   len(sh.order),
			Queued:    sh.queued,
			InFlight:  sh.inflight,
			Submitted: sh.submitted,
			Admitted:  sh.admitted,
			Shed:      sh.shed,
			Rejected:  sh.rejected,
			Stolen:    sh.stolen,
		}
		for _, name := range sh.order {
			st.Tenants = append(st.Tenants, tenantStatusOf(sh.tenants[name]))
		}
		sh.mu.Unlock()
		st.Shards = append(st.Shards, ss)
		st.InFlight += ss.InFlight
		st.Queued += ss.Queued
		st.Submitted += ss.Submitted
		st.Admitted += ss.Admitted
		st.Shed += ss.Shed
		st.Rejected += ss.Rejected
	}
	return st
}

// shutdown stops the core (FrontDoor.Shutdown): mark closed, shed
// every queued query shard by shard, stop the drain loops, then wait
// out the in-flight queries.
func (c *shardedCore) shutdown(drainTimeout time.Duration) bool {
	if !c.closed.CompareAndSwap(false, true) {
		return c.pending.Wait(drainTimeout)
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.closed = true
		for _, name := range sh.order {
			tn := sh.tenants[name]
			for cl := Class(0); cl < numClasses; cl++ {
				pending := tn.queues[cl]
				tn.queues[cl] = nil
				for _, t := range pending {
					sh.shedLocked(t, tn, "shutdown")
				}
			}
		}
		sh.mu.Unlock()
		close(sh.quit)
	}
	c.loopWG.Wait()
	return c.pending.Wait(drainTimeout)
}
