package frontdoor

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with current output")

// goldenFrontDoorRegistry populates the front door's instrument set
// with fixed values through the same helpers the live path uses, so
// the golden file pins both the metric names and their exposition
// rendering (per-tenant counter families, per-class histograms with
// labels, fairness gauges).
func goldenFrontDoorRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	ins := newInstruments(reg)
	for _, tn := range []string{"acme", "zeta"} {
		ti := ins.forTenant(tn)
		ti.submitted.Add(100)
		ti.admitted.Add(70)
		ti.shed.Add(20)
		ti.rejected.Add(10)
		ti.depth[ClassLatency].Set(3)
		ti.depth[ClassThroughput].Set(12)
		ti.share.Set(0.5)
	}
	ins.queued.Set(30)
	ins.inflight.Set(8)
	ins.deadlineMet.Add(60)
	ins.deadlineMissed.Add(4)
	for _, v := range []float64{0.001, 0.01, 0.02, 0.5} {
		ins.latency[ClassLatency].Observe(v)
		ins.wait[ClassLatency].Observe(v / 2)
	}
	ins.latency[ClassThroughput].Observe(1.5)
	ins.wait[ClassThroughput].Observe(0.75)
	return reg
}

// TestFrontDoorPrometheusGolden pins the front door's Prometheus
// exposition byte-for-byte, mirroring the obs package's golden test.
func TestFrontDoorPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	obs.WritePrometheus(&buf, goldenFrontDoorRegistry().Snapshot())
	golden := filepath.Join("testdata", "frontdoor.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/frontdoor/ -update-golden` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
