package frontdoor

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lsched"
	"repro/internal/nn"
)

// instantBackend completes queries immediately; the benchmark measures
// the front door's own submit→admit→dispatch path, not backend work.
type instantBackend struct{}

func (instantBackend) Run(*Query) (*Result, error) { return &Result{}, nil }

// BenchmarkFrontDoorSubmit is the single-loop vs sharded A/B on the
// hot path: concurrent submitters (one tenant per goroutine, so the
// sharded arm spreads across shards) each submit and wait for the
// ticket to resolve. Run with -cpu 1,4,8: at one proc the two cores
// are near-identical; the sharded core pulls ahead as procs grow
// because submit→admit→dispatch never crosses a global lock.
// scripts/bench.sh records both arms in BENCH_hotpath.json.
func BenchmarkFrontDoorSubmit(b *testing.B) {
	arms := []struct {
		name string
		tune func(*Options)
	}{
		{"single", func(o *Options) { o.SingleLoop = true }},
		{"sharded", func(o *Options) {}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			opts := Options{
				Backend:     instantBackend{},
				MaxInFlight: 64,
				QueueCap:    1024,
			}
			arm.tune(&opts)
			fd, err := New(opts)
			if err != nil {
				b.Fatal(err)
			}
			var gid atomic.Int64
			// Ingress handlers outnumber cores: 8 submitters per proc,
			// one tenant each, each waiting its query's round trip.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				qq := q(fmt.Sprintf("bench-%d", gid.Add(1)), ClassThroughput)
				for pb.Next() {
					tk, err := fd.Submit(qq)
					if err != nil {
						b.Error(err)
						return
					}
					<-tk.Done()
				}
			})
			b.StopTimer()
			fd.Shutdown(10 * time.Second)
		})
	}
}

// BenchmarkOverloadCurve sweeps offered load from half the sustainable
// rate to 3x it and reports, per controller, the p99 latency of
// admitted latency-class queries (p99-ns) and the drop rate of the
// latency class (shed-pct) at each step. The pairs trace the overload
// curve: flat p99 below saturation, and — with working admission —
// still-bounded p99 past it, paid for with shed load. scripts/bench.sh
// records the curve in BENCH_hotpath.json.
func BenchmarkOverloadCurve(b *testing.B) {
	arms := []struct {
		name string
		ctrl func() Controller
	}{
		{"heuristic", func() Controller { return NewHeuristic() }},
		{"learned", func() Controller { return NewLearned(lsched.NewAdmissionHead(nn.NewParams(42))) }},
	}
	loads := []float64{0.5, 1.0, 1.5, 2.0, 3.0}
	for _, arm := range arms {
		for _, x := range loads {
			b.Run(fmt.Sprintf("%s/x%.1f", arm.name, x), func(b *testing.B) {
				var p99Sum, shedSum float64
				for i := 0; i < b.N; i++ {
					res := runOverload(b, overloadConfig{
						queries:    1200,
						tenants:    4,
						slots:      4,
						service:    400 * time.Microsecond,
						overload:   x,
						deadline:   25 * time.Millisecond,
						queueCap:   256,
						seed:       42,
						controller: arm.ctrl,
					})
					p99Sum += float64(p99(res.latLatency))
					dropped := res.latTotal - len(res.latLatency)
					shedSum += 100 * float64(dropped) / float64(res.latTotal)
				}
				b.ReportMetric(p99Sum/float64(b.N), "p99-ns")
				b.ReportMetric(shedSum/float64(b.N), "shed-pct")
			})
		}
	}
}
