package frontdoor

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/costmodel"
	"repro/internal/plan"
)

// Request is the front door's wire format (JSON over HTTP, gob over
// RPC): tenant identity, SLO class, deadline, and a plan summary — one
// OpSpec per operator, which is all admission pricing needs (a query
// that has not started has no per-operator history; the cost model
// prices it by operator type).
type Request struct {
	Tenant string `json:"tenant"`
	// Class is "latency", "throughput", or "" (defaults to throughput).
	Class string `json:"class,omitempty"`
	// DeadlineMS is the latency budget in milliseconds from submission;
	// 0 means none, negative is rejected.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Ops summarizes the plan's operators.
	Ops []OpSpec `json:"ops"`
}

// OpSpec is one operator of the plan summary.
type OpSpec struct {
	// Type is the plan.OpType ordinal.
	Type int `json:"type"`
	// Blocks is the optimizer's block-count estimate (work-order count).
	Blocks int `json:"blocks"`
}

// Wire-format bounds: a request violating any of them is rejected
// before touching a queue.
const (
	// MaxTenantLen bounds tenant identifiers.
	MaxTenantLen = 64
	// MaxRequestOps bounds the plan summary (an "oversized plan" is an
	// abuse vector, not a query).
	MaxRequestOps = 512
	// MaxOpBlocks bounds one operator's block estimate.
	MaxOpBlocks = 1 << 20
	// MaxRequestBytes bounds the encoded request body.
	MaxRequestBytes = 1 << 20
	// MaxDeadlineMS bounds the deadline (24h) so arithmetic on it
	// cannot overflow a time.Duration.
	MaxDeadlineMS = 24 * 60 * 60 * 1000
)

// DecodeRequest parses and validates a JSON request body into a Query.
// It is the fuzzed boundary: any input either yields a fully validated
// query or an error — never a panic, and never a query that can wedge
// a queue slot.
func DecodeRequest(data []byte) (*Query, error) {
	if len(data) > MaxRequestBytes {
		return nil, fmt.Errorf("frontdoor: request too large (%d bytes > %d)", len(data), MaxRequestBytes)
	}
	var req Request
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("frontdoor: bad request encoding: %w", err)
	}
	return req.Validate()
}

// Validate checks the request's fields and converts it into a Query.
func (r *Request) Validate() (*Query, error) {
	if err := validTenant(r.Tenant); err != nil {
		return nil, err
	}
	class, err := parseClass(r.Class)
	if err != nil {
		return nil, err
	}
	if r.DeadlineMS < 0 {
		return nil, fmt.Errorf("frontdoor: negative deadline %dms", r.DeadlineMS)
	}
	if r.DeadlineMS > MaxDeadlineMS {
		return nil, fmt.Errorf("frontdoor: deadline %dms exceeds %dms", r.DeadlineMS, MaxDeadlineMS)
	}
	if len(r.Ops) == 0 {
		return nil, fmt.Errorf("frontdoor: empty plan summary")
	}
	if len(r.Ops) > MaxRequestOps {
		return nil, fmt.Errorf("frontdoor: plan summary has %d operators (max %d)", len(r.Ops), MaxRequestOps)
	}
	ops := make([]costmodel.OpWork, len(r.Ops))
	for i, op := range r.Ops {
		if op.Type < 0 || op.Type >= plan.NumOpTypes {
			return nil, fmt.Errorf("frontdoor: op %d: unknown operator type %d", i, op.Type)
		}
		if op.Blocks < 0 || op.Blocks > MaxOpBlocks {
			return nil, fmt.Errorf("frontdoor: op %d: block estimate %d out of range", i, op.Blocks)
		}
		ops[i] = costmodel.OpWork{Key: op.Type, Units: op.Blocks}
	}
	return &Query{
		Tenant:   r.Tenant,
		Class:    class,
		Deadline: time.Duration(r.DeadlineMS) * time.Millisecond,
		Ops:      ops,
	}, nil
}

// validTenant enforces the tenant-identifier alphabet: 1..MaxTenantLen
// characters of [a-zA-Z0-9_-]. Identifiers land in metric labels and
// log lines, so the alphabet is strict.
func validTenant(t string) error {
	if t == "" {
		return fmt.Errorf("frontdoor: missing tenant")
	}
	if len(t) > MaxTenantLen {
		return fmt.Errorf("frontdoor: tenant identifier longer than %d bytes", MaxTenantLen)
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		ok := c == '_' || c == '-' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("frontdoor: tenant identifier contains %q", c)
		}
	}
	return nil
}

func parseClass(s string) (Class, error) {
	switch s {
	case "latency":
		return ClassLatency, nil
	case "", "throughput":
		return ClassThroughput, nil
	}
	return 0, fmt.Errorf("frontdoor: unknown SLO class %q", s)
}

// SummarizePlan builds a Request plan summary from a real plan: one
// OpSpec per operator, carrying the optimizer's block estimate.
func SummarizePlan(p *plan.Plan) []OpSpec {
	ops := make([]OpSpec, 0, len(p.Ops))
	for _, op := range p.Ops {
		ops = append(ops, OpSpec{Type: int(op.Type), Blocks: op.EstBlocks})
	}
	return ops
}
