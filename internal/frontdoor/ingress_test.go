package frontdoor

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"net/rpc"
	"strings"
	"testing"
	"time"

	"repro/internal/heuristics"
	"repro/internal/obs"
	"repro/internal/rpcsched"
)

const validBody = `{"tenant":"acme","class":"latency","deadline_ms":5000,"ops":[{"type":0,"blocks":2}]}`

// TestHTTPIngress: a valid POST flows submit-to-disposition and
// answers with the admitted outcome; malformed requests answer 400.
func TestHTTPIngress(t *testing.T) {
	fd := mustFD(t, Options{Backend: &fakeBackend{delay: time.Millisecond}, MaxInFlight: 2})
	srv := httptest.NewServer(fd.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL, "application/json", strings.NewReader(validBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.Outcome != "admitted" || !r.DeadlineMet {
		t.Fatalf("response %+v", r)
	}

	for _, bad := range []string{
		`{"tenant":"","ops":[{"type":0}]}`,
		`{"tenant":"acme","deadline_ms":-1,"ops":[{"type":0}]}`,
		`{"tenant":"acme","ops":[]}`,
		`no json`,
	} {
		resp, err := http.Post(srv.URL, "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, err := http.Get(srv.URL); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET status %d", resp.StatusCode)
		}
	}
}

// TestHTTPClientDisconnectCancelsQueued: a client that gives up while
// its query is queued must not hold the queue slot.
func TestHTTPClientDisconnectCancelsQueued(t *testing.T) {
	be := &blockingBackend{entered: make(chan struct{}, 16), release: make(chan struct{})}
	fd := mustFD(t, Options{Backend: be, MaxInFlight: 1})
	srv := httptest.NewServer(fd.Handler())
	defer srv.Close()
	// Declared after srv.Close so it runs first: srv.Close waits for the
	// in-flight handler, whose backend is parked on this channel.
	defer close(be.release)

	// Occupy the only slot.
	go http.Post(srv.URL, "application/json", strings.NewReader(validBody)) //nolint:errcheck
	<-be.entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL, strings.NewReader(validBody))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	// The abandoned query must leave the queue (shed as cancelled).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fd.Stats()
		if st.Shed == 1 && st.Queued == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned query still queued: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRPCIngress mounts the front door on an rpcsched server and
// drives both services over one connection: the scheduler RPC and the
// front-door Submit share the transport, deadlines, and drain
// machinery.
func TestRPCIngress(t *testing.T) {
	fd := mustFD(t, Options{Backend: &fakeBackend{delay: time.Millisecond}, MaxInFlight: 2})
	srv, err := rpcsched.NewServer(heuristics.Fair{}, rpcsched.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Mount(srv, fd); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	go srv.Serve(lis) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })

	rc, err := rpc.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	var reply Response
	req := &Request{Tenant: "acme", Class: "latency", DeadlineMS: 5000, Ops: []OpSpec{{Type: 0, Blocks: 2}}}
	if err := rc.Call("FrontDoor.Submit", req, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Outcome != "admitted" {
		t.Fatalf("reply %+v", reply)
	}

	// Invalid requests surface as RPC errors, not panics or hangs.
	bad := &Request{Tenant: "", Ops: []OpSpec{{Type: 0}}}
	if err := rc.Call("FrontDoor.Submit", bad, &reply); err == nil {
		t.Fatal("invalid request did not error")
	}

	// The scheduler service still answers on the same connection.
	var dec rpcsched.DecisionReply
	if err := rc.Call("LSched.OnEvent", &rpcsched.EventRequest{}, &dec); err != nil {
		t.Fatalf("scheduler RPC broken after front-door mount: %v", err)
	}
}

// TestObsFrontDoorEndpoint wires fd.Status into the obs server and
// checks the /frontdoor endpoint serves it.
func TestObsFrontDoorEndpoint(t *testing.T) {
	fd := mustFD(t, Options{Backend: &fakeBackend{}, MaxInFlight: 1})
	tk, _ := fd.Submit(q("acme", ClassLatency))
	waitOutcome(t, tk)

	o := obs.NewServer(obs.Options{FrontDoor: fd.Status})
	rr := httptest.NewRecorder()
	o.Handler().ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/frontdoor", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d", rr.Code)
	}
	var st StatusData
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Submitted != 1 || st.Admitted != 1 || len(st.Tenants) != 1 || st.Tenants[0].Tenant != "acme" {
		t.Fatalf("status payload %+v", st)
	}
}
