package frontdoor

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// withProcs raises GOMAXPROCS for one test so the sharded core's
// parallelism is exercised even on single-CPU CI hosts, restoring the
// previous value on cleanup.
func withProcs(t *testing.T, procs int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestShardRouting pins the tenant→shard map: the same tenant always
// lands on the same shard, and the shard count rounds up to a power of
// two so the mask-based routing is valid.
func TestShardRouting(t *testing.T) {
	fd, err := New(Options{Backend: &fakeBackend{}, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Shutdown(time.Second)
	sc, ok := fd.core.(*shardedCore)
	if !ok {
		t.Fatalf("Shards:5 built %T, want *shardedCore", fd.core)
	}
	if len(sc.shards) != 8 {
		t.Fatalf("Shards:5 rounded to %d shards, want 8", len(sc.shards))
	}
	for _, name := range []string{"a", "tenant-17", "", "analytics"} {
		if sc.shardFor(name) != sc.shardFor(name) {
			t.Fatalf("tenant %q routed to two shards", name)
		}
	}
}

// coHashedTenant finds a tenant name that routes to the same shard as
// anchor but is a distinct tenant, so the test controls co-residency
// instead of hoping for a hash collision.
func coHashedTenant(sc *shardedCore, anchor string) string {
	want := sc.shardFor(anchor)
	for i := 0; i < 1<<16; i++ {
		name := fmt.Sprintf("light-%d", i)
		if name != anchor && sc.shardFor(name) == want {
			return name
		}
	}
	panic("no co-hashed tenant name found")
}

// TestCrossShardFairness is the starvation regression for sharding: a
// hot tenant flooding its shard must not starve a light tenant that
// hashes to the same shard. The per-tenant bounded queues and
// round-robin drain are per shard, so the light tenant's small trickle
// should be admitted nearly in full even while the hot tenant's queue
// is saturated and shedding.
func TestCrossShardFairness(t *testing.T) {
	withProcs(t, 8)
	// QueueCap exceeds the light tenant's total submissions: with no
	// deadlines and no rate limit, the only way a light submission can
	// fail is genuine starvation, so the assertion below is exact.
	be := &fakeBackend{delay: 50 * time.Microsecond}
	fd, err := New(Options{
		Backend:     be,
		Shards:      8,
		MaxInFlight: 2,
		QueueCap:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := fd.core.(*shardedCore)
	const hot = "hot"
	light := coHashedTenant(sc, hot)

	const hotN, lightN = 3000, 60
	hotDone := make(chan Disposition, hotN)
	for i := 0; i < hotN; i++ {
		// Submit returns an error for synchronous rejections (the hot
		// tenant saturating its queue is expected); the ticket still
		// resolves through Done either way.
		tk, _ := fd.Submit(q(hot, ClassThroughput))
		go func() { hotDone <- <-tk.Done() }()
		// Interleave the light tenant's trickle through the flood.
		if i%(hotN/lightN) == 0 {
			ltk, _ := fd.Submit(q(light, ClassThroughput))
			go func() { ltk.Done() }()
		}
	}
	// Wait for the flood to resolve (admitted or rejected — queue-full
	// rejections are expected and fine; starvation of the light tenant
	// is not).
	for i := 0; i < hotN; i++ {
		select {
		case <-hotDone:
		case <-time.After(30 * time.Second):
			t.Fatal("hot tenant ticket never resolved")
		}
	}
	if !fd.Shutdown(10 * time.Second) {
		t.Fatal("drain timed out")
	}

	var hotSt, lightSt TenantStatus
	for _, ts := range fd.Status().(StatusData).Tenants {
		switch ts.Tenant {
		case hot:
			hotSt = ts
		case light:
			lightSt = ts
		}
	}
	if lightSt.Submitted != lightN {
		t.Fatalf("light tenant submitted %d, want %d", lightSt.Submitted, lightN)
	}
	if lightSt.Admitted != lightN {
		t.Fatalf("light tenant admitted %d of %d (hot tenant: %+v) — co-hashed starvation",
			lightSt.Admitted, lightN, hotSt)
	}
	t.Logf("fairness: shard %d, hot admitted=%d rejected=%d; light admitted=%d of %d",
		sc.shardFor(hot).id, hotSt.Admitted, hotSt.Rejected, lightSt.Admitted, lightN)
}

// differentShardTenant finds a tenant name routed to a different shard
// than anchor, so the test controls the steal topology.
func differentShardTenant(sc *shardedCore, anchor string) string {
	avoid := sc.shardFor(anchor)
	for i := 0; i < 1<<16; i++ {
		name := fmt.Sprintf("cold-%d", i)
		if sc.shardFor(name) != avoid {
			return name
		}
	}
	panic("no differently-sharded tenant name found")
}

// TestWorkStealingConservation pins the steal protocol: a blocker on a
// cold shard holds the only slot while a hot shard queues a backlog;
// when the blocker completes, its goroutine's inline pass finds its
// own shard empty and must steal the hot shard's head — and every
// stolen query lands in exactly one terminal bucket, with the
// victim-side stolen counters equal to the door-level steal counter.
func TestWorkStealingConservation(t *testing.T) {
	withProcs(t, 8)
	const backlog = 32

	// The thief takes the victim's lock with TryLock, so a sweep tick
	// holding it at the wrong instant legitimately skips the steal
	// (the owner is kicked instead); retry a few rounds.
	var steals int64
	for round := 0; round < 5 && steals == 0; round++ {
		be := &blockingBackend{
			entered: make(chan struct{}, backlog+1),
			release: make(chan struct{}, backlog+1),
		}
		fd, err := New(Options{
			Backend:     be,
			Shards:      8,
			MaxInFlight: 1,
			QueueCap:    backlog,
		})
		if err != nil {
			t.Fatal(err)
		}
		sc := fd.core.(*shardedCore)
		const hot = "hot"
		cold := differentShardTenant(sc, hot)

		blocker, err := fd.Submit(q(cold, ClassThroughput))
		if err != nil {
			t.Fatal(err)
		}
		<-be.entered // blocker admitted and running: the slot is held
		tickets := []*Ticket{blocker}
		for i := 0; i < backlog; i++ {
			tk, err := fd.Submit(q(hot, ClassThroughput))
			if err != nil {
				t.Fatal(err)
			}
			tickets = append(tickets, tk)
		}
		// Release the chain: the blocker's completion frees the slot on
		// the cold shard; each subsequent completion drains the hot
		// shard until the backlog is gone.
		for i := 0; i < backlog+1; i++ {
			be.release <- struct{}{}
			if i < backlog {
				<-be.entered
			}
		}
		var admitted int64
		for i, tk := range tickets {
			select {
			case d := <-tk.Done():
				if d.Outcome != OutcomeAdmitted {
					t.Fatalf("ticket %d outcome %v, want admitted", i, d.Outcome)
				}
				admitted++
			case <-time.After(30 * time.Second):
				t.Fatalf("ticket %d never resolved", i)
			}
		}
		if !fd.Shutdown(10 * time.Second) {
			t.Fatal("drain timed out")
		}

		// Exactly-once terminal accounting, client view vs door view.
		st := fd.Stats()
		if st.Admitted != admitted || st.Submitted != backlog+1 || st.Shed != 0 || st.Rejected != 0 {
			t.Fatalf("stats %+v, want %d admitted of %d", st, admitted, backlog+1)
		}

		// Steal bookkeeping: victim-side counters equal the door total,
		// and the /frontdoor payload exposes the same numbers.
		var stolen int64
		for _, sh := range sc.shards {
			sh.mu.Lock()
			stolen += sh.stolen
			sh.mu.Unlock()
		}
		steals = sc.steals.Load()
		if stolen != steals {
			t.Fatalf("victim-side stolen sum %d != door steal counter %d", stolen, steals)
		}
		var statusStolen int64
		for _, ss := range fd.Status().(StatusData).Shards {
			statusStolen += ss.Stolen
		}
		if statusStolen != steals {
			t.Fatalf("status stolen sum %d != door steal counter %d", statusStolen, steals)
		}
	}
	if steals == 0 {
		t.Fatal("cold-shard completion never stole the hot shard's backlog (5 rounds)")
	}
	t.Logf("steals=%d with exact terminal accounting", steals)
}
