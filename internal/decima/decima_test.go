package decima

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/lsched"
	"repro/internal/workload"
)

func TestDecimaConfiguration(t *testing.T) {
	d := New(1)
	opts := d.Options()
	if opts.UseTCN || opts.UseGAT {
		t.Fatal("Decima must use the GCN encoder without attention")
	}
	if !opts.DisablePipelining {
		t.Fatal("Decima must not pipeline (black-box tasks)")
	}
	if d.Name() != "Decima" {
		t.Fatalf("name %q", d.Name())
	}
}

func TestDecimaNeverPipelines(t *testing.T) {
	pool, err := workload.NewPool(workload.BenchSSB, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := New(2)
	spy := &pipelineSpy{inner: d}
	rng := rand.New(rand.NewSource(2))
	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 2})
	if _, err := sim.Run(spy, workload.Streaming(pool.Train, 6, 0.5, rng)); err != nil {
		t.Fatal(err)
	}
	if spy.decisions == 0 {
		t.Fatal("no decisions observed")
	}
	if spy.pipelined > 0 {
		t.Fatalf("Decima issued %d pipelined decisions", spy.pipelined)
	}
}

type pipelineSpy struct {
	inner     engine.Scheduler
	decisions int
	pipelined int
}

func (s *pipelineSpy) Name() string { return s.inner.Name() }

func (s *pipelineSpy) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	ds := s.inner.OnEvent(st, ev)
	for _, d := range ds {
		if d.RootOpID >= 0 {
			s.decisions++
			if d.PipelineDepth > 0 {
				s.pipelined++
			}
		}
	}
	return ds
}

func TestDecimaTrainConfigAverageOnly(t *testing.T) {
	base := lsched.DefaultTrainConfig(1)
	cfg := TrainConfig(base)
	if cfg.W1 != 1 || cfg.W2 != 0 {
		t.Fatalf("Decima reward weights w1=%v w2=%v, want 1/0", cfg.W1, cfg.W2)
	}
}
