// Package decima implements the Decima baseline (Mao et al., SIGCOMM
// 2019) in the form the paper characterizes it: an RL scheduler whose
// encoder is a graph convolutional network with *sequential* message
// passing (no edge features, no attention), that treats each task as a
// black box — it cannot pipeline two operators of one query on a thread
// — and that learns node selection plus a per-job parallelism limit.
//
// Rather than duplicating the agent machinery, the baseline is the
// shared agent with the corresponding switches: UseTCN=false (sequential
// message passing encoder), UseGAT=false (isotropic aggregation), and
// DisablePipelining=true (black-box tasks). Training uses the same
// REINFORCE loop with the average-latency-only reward (W2 = 0), since
// the tail-latency term is an LSched contribution (§6).
package decima

import (
	"repro/internal/lsched"
)

// New builds a Decima baseline agent.
func New(seed int64) *lsched.Agent {
	opts := lsched.DefaultOptions(seed)
	opts.UseTCN = false
	opts.UseGAT = false
	opts.DisablePipelining = true
	opts.Name = "Decima"
	return lsched.New(opts)
}

// TrainConfig adapts an LSched training configuration to Decima's
// reward: average latency only.
func TrainConfig(base lsched.TrainConfig) lsched.TrainConfig {
	base.W1 = 1
	base.W2 = 0
	return base
}
