package workload

import (
	"repro/internal/plan"
	"repro/internal/storage"
)

// SyntheticCatalog generates columnar data for every base relation the
// given plans scan, sized for live execution: each relation gets up to
// maxBlocks blocks of rowsPerBlock rows with a generic analytical schema
// (sequential id, low-cardinality join key, measure, dimension tag).
// This stands in for dbgen/IMDB loads — the scheduler-visible behaviour
// (per-block work orders, data-dependent selectivities, hash-join
// matches) is preserved at laptop scale.
func SyntheticCatalog(plans []*plan.Plan, rowsPerBlock, maxBlocks int, seed int64) (*storage.Catalog, error) {
	if rowsPerBlock <= 0 {
		rowsPerBlock = 1024
	}
	if maxBlocks <= 0 {
		maxBlocks = 16
	}
	gen := storage.NewGenerator(seed)
	cat := storage.NewCatalog()
	seen := map[string]bool{}
	for _, p := range plans {
		for _, op := range p.Leaves() {
			for _, relName := range op.InputRelations {
				if seen[relName] {
					continue
				}
				seen[relName] = true
				blocks := op.EstBlocks
				if blocks > maxBlocks {
					blocks = maxBlocks
				}
				if blocks < 1 {
					blocks = 1
				}
				rel, err := gen.Relation(relName, blocks*rowsPerBlock, rowsPerBlock, []storage.GenSpec{
					{Column: storage.Column{Name: "id", Type: storage.Int64Col}, Sequential: true},
					{Column: storage.Column{Name: "key", Type: storage.Int64Col}, Cardinality: 1000},
					{Column: storage.Column{Name: "val", Type: storage.Float64Col}, MinFloat: 0, MaxFloat: 1000},
					{Column: storage.Column{Name: "tag", Type: storage.StringCol}, Cardinality: 25},
				})
				if err != nil {
					return nil, err
				}
				if err := cat.Register(rel); err != nil {
					return nil, err
				}
			}
		}
	}
	return cat, nil
}
