package workload

import (
	"fmt"

	"repro/internal/plan"
)

// TPC-H base relation row counts at scale factor 1.
const (
	tpchLineitem = 6_000_000
	tpchOrders   = 1_500_000
	tpchCustomer = 150_000
	tpchPart     = 200_000
	tpchPartsupp = 800_000
	tpchSupplier = 10_000
	tpchNation   = 25
	tpchRegion   = 5
)

// TPCH returns the 22 TPC-H query plans at the given scale factor. The
// plans mirror each query's physical shape — which relations are
// scanned, the join order and method, where the pipeline breakers sit —
// as produced by a textbook optimizer; constants and full predicates are
// abstracted into selectivities.
func TPCH(scaleFactor float64) []*plan.Plan {
	qs := make([]*plan.Plan, 0, 22)
	for i := 1; i <= 22; i++ {
		qs = append(qs, tpchQuery(i, scaleFactor))
	}
	return qs
}

func tpchQuery(q int, sf float64) *plan.Plan {
	t := newTmpl(fmt.Sprintf("tpch-q%d-sf%g", q, sf), sf)
	switch q {
	case 1: // pricing summary: big scan + filter + aggregate
		return t.scan("lineitem", tpchLineitem, "l_shipdate", "l_quantity", "l_extendedprice").
			sel(0.98, "l_shipdate").
			agg(4, "l_returnflag", "l_linestatus").
			sortBy("l_returnflag", "l_linestatus").done()
	case 2: // minimum cost supplier: 5-way join with subquery
		region := t.scan("region", tpchRegion, "r_name").sel(0.2, "r_name")
		nation := region.hashJoin(t.scan("nation", tpchNation, "n_regionkey"), 0.2, "n_regionkey")
		supp := nation.hashJoin(t.scan("supplier", tpchSupplier, "s_nationkey"), 0.2, "s_nationkey")
		ps := supp.hashJoin(t.scan("partsupp", tpchPartsupp, "ps_suppkey"), 0.2, "ps_suppkey")
		part := t.scan("part", tpchPart, "p_size", "p_type").sel(0.01, "p_size")
		return part.hashJoin(ps, 0.01, "p_partkey").sortBy("s_acctbal").topK().done()
	case 3: // shipping priority: customer ⋈ orders ⋈ lineitem
		cust := t.scan("customer", tpchCustomer, "c_mktsegment").sel(0.2, "c_mktsegment")
		ord := cust.hashJoin(t.scan("orders", tpchOrders, "o_custkey", "o_orderdate").sel(0.48, "o_orderdate"), 0.2, "o_custkey")
		li := ord.hashJoin(t.scan("lineitem", tpchLineitem, "l_orderkey", "l_shipdate").sel(0.54, "l_shipdate"), 0.3, "l_orderkey")
		return li.agg(1_000_000, "l_orderkey").sortBy("revenue").topK().done()
	case 4: // order priority checking: semi-join orders/lineitem
		li := t.scan("lineitem", tpchLineitem, "l_commitdate", "l_receiptdate").sel(0.63, "l_receiptdate").distinct("l_orderkey")
		ord := t.scan("orders", tpchOrders, "o_orderdate").sel(0.038, "o_orderdate")
		return li.hashJoin(ord, 0.5, "o_orderkey").agg(5, "o_orderpriority").sortBy("o_orderpriority").done()
	case 5: // local supplier volume: 6-way join
		region := t.scan("region", tpchRegion, "r_name").sel(0.2, "r_name")
		nation := region.hashJoin(t.scan("nation", tpchNation, "n_regionkey"), 0.2, "n_regionkey")
		cust := nation.hashJoin(t.scan("customer", tpchCustomer, "c_nationkey"), 0.2, "c_nationkey")
		ord := cust.hashJoin(t.scan("orders", tpchOrders, "o_custkey", "o_orderdate").sel(0.15, "o_orderdate"), 0.2, "o_custkey")
		li := ord.hashJoin(t.scan("lineitem", tpchLineitem, "l_orderkey", "l_suppkey"), 0.3, "l_orderkey")
		supp := t.scan("supplier", tpchSupplier, "s_nationkey")
		return supp.hashJoin(li, 0.04, "l_suppkey").agg(25, "n_name").sortBy("revenue").done()
	case 6: // forecasting revenue change: scan + tight filter + scalar agg
		return t.scan("lineitem", tpchLineitem, "l_shipdate", "l_discount", "l_quantity").
			sel(0.019, "l_shipdate", "l_discount", "l_quantity").
			agg(1, "revenue").done()
	case 7: // volume shipping: 2 nations, 5-way join
		n1 := t.scan("nation", tpchNation, "n_name").sel(0.08, "n_name")
		supp := n1.hashJoin(t.scan("supplier", tpchSupplier, "s_nationkey"), 0.08, "s_nationkey")
		li := supp.hashJoin(t.scan("lineitem", tpchLineitem, "l_suppkey", "l_shipdate").sel(0.3, "l_shipdate"), 0.08, "l_suppkey")
		ord := t.scan("orders", tpchOrders, "o_orderkey")
		lo := ord.hashJoin(li, 1.0, "l_orderkey")
		n2 := t.scan("nation", tpchNation, "n_name").sel(0.08, "n_name")
		cust := n2.hashJoin(t.scan("customer", tpchCustomer, "c_nationkey"), 0.08, "c_nationkey")
		return cust.hashJoin(lo, 0.08, "o_custkey").agg(4, "supp_nation", "cust_nation", "l_year").sortBy("supp_nation").done()
	case 8: // national market share: 8-way join
		region := t.scan("region", tpchRegion, "r_name").sel(0.2, "r_name")
		nation := region.hashJoin(t.scan("nation", tpchNation, "n_regionkey"), 0.2, "n_regionkey")
		cust := nation.hashJoin(t.scan("customer", tpchCustomer, "c_nationkey"), 0.2, "c_nationkey")
		ord := cust.hashJoin(t.scan("orders", tpchOrders, "o_custkey", "o_orderdate").sel(0.3, "o_orderdate"), 0.2, "o_custkey")
		part := t.scan("part", tpchPart, "p_type").sel(0.0067, "p_type")
		li := part.hashJoin(t.scan("lineitem", tpchLineitem, "l_partkey"), 0.0067, "l_partkey")
		lo := ord.hashJoin(li, 0.06, "l_orderkey")
		supp := t.scan("supplier", tpchSupplier, "s_suppkey")
		n2 := t.scan("nation", tpchNation, "n_nationkey")
		sn := n2.hashJoin(supp, 1.0, "s_nationkey")
		return sn.hashJoin(lo, 1.0, "l_suppkey").agg(2, "o_year").sortBy("o_year").done()
	case 9: // product type profit: 6-way join, big intermediates
		part := t.scan("part", tpchPart, "p_name").sel(0.055, "p_name")
		li := part.hashJoin(t.scan("lineitem", tpchLineitem, "l_partkey", "l_suppkey"), 0.055, "l_partkey")
		ps := t.scan("partsupp", tpchPartsupp, "ps_partkey", "ps_suppkey")
		lps := ps.hashJoin(li, 1.0, "ps_partkey", "ps_suppkey")
		supp := t.scan("supplier", tpchSupplier, "s_nationkey")
		nation := t.scan("nation", tpchNation, "n_name")
		sn := nation.hashJoin(supp, 1.0, "s_nationkey")
		lsn := sn.hashJoin(lps, 1.0, "l_suppkey")
		ord := t.scan("orders", tpchOrders, "o_orderdate")
		return ord.hashJoin(lsn, 1.0, "l_orderkey").agg(175, "nation", "o_year").sortBy("nation", "o_year").done()
	case 10: // returned item reporting
		ord := t.scan("orders", tpchOrders, "o_orderdate").sel(0.03, "o_orderdate")
		li := ord.hashJoin(t.scan("lineitem", tpchLineitem, "l_orderkey", "l_returnflag").sel(0.25, "l_returnflag"), 0.03, "l_orderkey")
		cust := t.scan("customer", tpchCustomer, "c_custkey")
		nation := t.scan("nation", tpchNation, "n_name")
		cn := nation.hashJoin(cust, 1.0, "c_nationkey")
		return cn.hashJoin(li, 1.0, "o_custkey").agg(38_000, "c_custkey").sortBy("revenue").topK().done()
	case 11: // important stock identification
		nation := t.scan("nation", tpchNation, "n_name").sel(0.04, "n_name")
		supp := nation.hashJoin(t.scan("supplier", tpchSupplier, "s_nationkey"), 0.04, "s_nationkey")
		ps := supp.hashJoin(t.scan("partsupp", tpchPartsupp, "ps_suppkey"), 0.04, "ps_suppkey")
		return ps.agg(30_000, "ps_partkey").sortBy("value").done()
	case 12: // shipping modes and order priority
		li := t.scan("lineitem", tpchLineitem, "l_shipmode", "l_receiptdate").sel(0.005, "l_shipmode", "l_receiptdate")
		ord := t.scan("orders", tpchOrders, "o_orderpriority")
		return ord.hashJoin(li, 1.0, "l_orderkey").agg(2, "l_shipmode").sortBy("l_shipmode").done()
	case 13: // customer distribution: outer-join flavored
		ord := t.scan("orders", tpchOrders, "o_comment").sel(0.98, "o_comment")
		cust := t.scan("customer", tpchCustomer, "c_custkey")
		return cust.hashJoin(ord, 1.0, "o_custkey").agg(150_000, "c_custkey").agg(42, "c_count").sortBy("custdist").done()
	case 14: // promotion effect
		li := t.scan("lineitem", tpchLineitem, "l_shipdate").sel(0.0125, "l_shipdate")
		part := t.scan("part", tpchPart, "p_type")
		return part.hashJoin(li, 1.0, "l_partkey").agg(1, "promo_revenue").done()
	case 15: // top supplier: materialized view + join
		rev := t.scan("lineitem", tpchLineitem, "l_suppkey", "l_shipdate").sel(0.25, "l_shipdate").agg(10_000, "l_suppkey")
		supp := t.scan("supplier", tpchSupplier, "s_suppkey")
		return rev.hashJoin(supp, 0.0001, "s_suppkey").sortBy("s_suppkey").done()
	case 16: // parts/supplier relationship
		part := t.scan("part", tpchPart, "p_brand", "p_type", "p_size").sel(0.1, "p_brand", "p_type", "p_size")
		ps := part.hashJoin(t.scan("partsupp", tpchPartsupp, "ps_partkey"), 0.1, "ps_partkey")
		supp := t.scan("supplier", tpchSupplier, "s_comment").sel(0.0005, "s_comment")
		return supp.hashJoin(ps, 0.999, "ps_suppkey").agg(18_000, "p_brand", "p_type", "p_size").sortBy("supplier_cnt").done()
	case 17: // small-quantity-order revenue: correlated agg subquery
		part := t.scan("part", tpchPart, "p_brand", "p_container").sel(0.001, "p_brand", "p_container")
		liAgg := t.scan("lineitem", tpchLineitem, "l_partkey", "l_quantity").agg(200_000, "l_partkey")
		pj := part.hashJoin(liAgg, 0.001, "l_partkey")
		li := t.scan("lineitem", tpchLineitem, "l_partkey", "l_quantity")
		return pj.hashJoin(li, 0.001, "l_partkey").agg(1, "avg_yearly").done()
	case 18: // large volume customer
		liAgg := t.scan("lineitem", tpchLineitem, "l_orderkey", "l_quantity").agg(1_500_000, "l_orderkey").sel(0.00004, "sum_qty")
		ord := liAgg.hashJoin(t.scan("orders", tpchOrders, "o_orderkey"), 0.00004, "o_orderkey")
		cust := t.scan("customer", tpchCustomer, "c_custkey")
		co := cust.hashJoin(ord, 1.0, "o_custkey")
		li := t.scan("lineitem", tpchLineitem, "l_orderkey")
		return co.hashJoin(li, 0.00004, "l_orderkey").agg(100, "c_name", "o_orderkey").sortBy("o_totalprice").topK().done()
	case 19: // discounted revenue: disjunctive join predicate
		part := t.scan("part", tpchPart, "p_brand", "p_container", "p_size").sel(0.002, "p_brand", "p_container", "p_size")
		li := t.scan("lineitem", tpchLineitem, "l_partkey", "l_quantity", "l_shipmode").sel(0.02, "l_shipmode", "l_shipinstruct")
		return part.hashJoin(li, 0.002, "l_partkey").agg(1, "revenue").done()
	case 20: // potential part promotion: nested semi-joins
		part := t.scan("part", tpchPart, "p_name").sel(0.011, "p_name")
		psAgg := t.scan("lineitem", tpchLineitem, "l_partkey", "l_suppkey", "l_shipdate").sel(0.15, "l_shipdate").agg(800_000, "l_partkey", "l_suppkey")
		ps := part.hashJoin(t.scan("partsupp", tpchPartsupp, "ps_partkey"), 0.011, "ps_partkey")
		psj := psAgg.hashJoin(ps, 0.5, "ps_partkey", "ps_suppkey")
		nation := t.scan("nation", tpchNation, "n_name").sel(0.04, "n_name")
		supp := nation.hashJoin(t.scan("supplier", tpchSupplier, "s_nationkey"), 0.04, "s_nationkey")
		return supp.hashJoin(psj, 0.04, "ps_suppkey").sortBy("s_name").done()
	case 21: // suppliers who kept orders waiting: self-joins on lineitem
		nation := t.scan("nation", tpchNation, "n_name").sel(0.04, "n_name")
		supp := nation.hashJoin(t.scan("supplier", tpchSupplier, "s_nationkey"), 0.04, "s_nationkey")
		l1 := supp.hashJoin(t.scan("lineitem", tpchLineitem, "l_suppkey", "l_receiptdate").sel(0.63, "l_receiptdate"), 0.04, "l_suppkey")
		ord := t.scan("orders", tpchOrders, "o_orderstatus").sel(0.49, "o_orderstatus")
		lo := ord.hashJoin(l1, 0.5, "l_orderkey")
		l2 := t.scan("lineitem", tpchLineitem, "l_orderkey", "l_suppkey")
		lol2 := lo.hashJoin(l2, 0.025, "l_orderkey")
		l3 := t.scan("lineitem", tpchLineitem, "l_orderkey", "l_receiptdate").sel(0.63, "l_receiptdate")
		return lol2.hashJoin(l3, 0.02, "l_orderkey").agg(400, "s_name").sortBy("numwait").topK().done()
	case 22: // global sales opportunity
		custAgg := t.scan("customer", tpchCustomer, "c_acctbal", "c_phone").sel(0.27, "c_phone").agg(1, "avg_acctbal")
		cust := t.scan("customer", tpchCustomer, "c_acctbal", "c_phone").sel(0.27, "c_phone")
		cj := custAgg.hashJoin(cust, 0.5, "c_acctbal")
		ord := t.scan("orders", tpchOrders, "o_custkey").distinct("o_custkey")
		return ord.hashJoin(cj, 0.3, "o_custkey").agg(7, "cntrycode").sortBy("cntrycode").done()
	default:
		panic(fmt.Sprintf("tpch: no query %d", q))
	}
}
