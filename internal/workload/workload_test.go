package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/plan"
)

func TestTPCHHas22ValidQueries(t *testing.T) {
	qs := TPCH(2)
	if len(qs) != 22 {
		t.Fatalf("TPCH returned %d queries, want 22", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.QueryName, err)
		}
		if q.Sink() == nil {
			t.Errorf("%s: no sink", q.QueryName)
		}
	}
}

func TestSSBHas13ValidQueries(t *testing.T) {
	qs := SSB(2)
	if len(qs) != 13 {
		t.Fatalf("SSB returned %d queries, want 13", len(qs))
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.QueryName, err)
		}
	}
}

func TestJOBHas113ValidQueries(t *testing.T) {
	qs := JOB()
	if len(qs) != 113 {
		t.Fatalf("JOB returned %d queries, want 113", len(qs))
	}
	if NumJOBQueries() != 113 {
		t.Fatalf("NumJOBQueries = %d", NumJOBQueries())
	}
	for _, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", q.QueryName, err)
		}
	}
}

func TestJOBHasDeepJoins(t *testing.T) {
	// The paper highlights that some JOB queries exceed 10 joins.
	maxJoins := 0
	for _, q := range JOB() {
		joins := 0
		for _, op := range q.Ops {
			switch op.Type {
			case plan.ProbeHash, plan.IndexNestedLoopJoin, plan.MergeJoin, plan.NestedLoopJoin:
				joins++
			}
		}
		if joins > maxJoins {
			maxJoins = joins
		}
	}
	if maxJoins < 10 {
		t.Fatalf("deepest JOB query has %d joins, want >= 10", maxJoins)
	}
}

func TestScaleFactorScalesWork(t *testing.T) {
	small := TPCH(2)
	big := TPCH(100)
	for i := range small {
		if big[i].TotalEstBlocks() <= small[i].TotalEstBlocks() {
			t.Errorf("%s: SF100 blocks %d not > SF2 blocks %d",
				small[i].QueryName, big[i].TotalEstBlocks(), small[i].TotalEstBlocks())
		}
	}
}

func TestPoolSplitDisjointAndComplete(t *testing.T) {
	pool, err := NewPool(BenchTPCH, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := len(pool.Train) + len(pool.Test)
	if want := 22 * len(TPCHScaleFactors); total != want {
		t.Fatalf("pool holds %d plans, want %d", total, want)
	}
	// The paper selects 50% per scale factor (rounded down) for
	// training; the split must be disjoint by plan identity.
	seen := map[*plan.Plan]bool{}
	for _, p := range pool.Train {
		seen[p] = true
	}
	for _, p := range pool.Test {
		if seen[p] {
			t.Fatal("plan appears in both train and test")
		}
	}
	if len(pool.Train) != 11*len(TPCHScaleFactors) {
		t.Fatalf("train split %d, want %d", len(pool.Train), 11*len(TPCHScaleFactors))
	}
}

func TestPoolDeterministicBySeed(t *testing.T) {
	a, _ := NewPool(BenchSSB, 9)
	b, _ := NewPool(BenchSSB, 9)
	for i := range a.Train {
		if a.Train[i].QueryName != b.Train[i].QueryName {
			t.Fatal("pool split not deterministic")
		}
	}
	c, _ := NewPool(BenchSSB, 10)
	same := true
	for i := range a.Train {
		if a.Train[i].QueryName != c.Train[i].QueryName {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical splits")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := NewPool(Benchmark("mysql"), 1); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestStreamingArrivalGaps(t *testing.T) {
	pool, _ := NewPool(BenchSSB, 1)
	rng := rand.New(rand.NewSource(1))
	const n, rate = 2000, 2.0
	arr := Streaming(pool.Train, n, rate, rng)
	if len(arr) != n {
		t.Fatalf("got %d arrivals", len(arr))
	}
	prev := 0.0
	sumGap := 0.0
	for _, a := range arr {
		if a.At < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		sumGap += a.At - prev
		prev = a.At
	}
	meanGap := sumGap / n
	if math.Abs(meanGap-1/rate) > 0.1 {
		t.Fatalf("mean gap %v, want ~%v", meanGap, 1/rate)
	}
}

func TestBatchArrivesAtZero(t *testing.T) {
	pool, _ := NewPool(BenchSSB, 1)
	rng := rand.New(rand.NewSource(1))
	for _, a := range Batch(pool.Train, 20, rng) {
		if a.At != 0 {
			t.Fatal("batch arrivals must be at time zero")
		}
	}
}

func TestStreamingClonesPlans(t *testing.T) {
	pool, _ := NewPool(BenchSSB, 1)
	rng := rand.New(rand.NewSource(1))
	arr := Streaming(pool.Train, 50, 1, rng)
	for _, a := range arr {
		for _, p := range pool.Train {
			if a.Plan == p {
				t.Fatal("workload must clone plans, not share them")
			}
		}
	}
}

func TestSyntheticCatalogCoversLeaves(t *testing.T) {
	plans := SSB(0.5)
	cat, err := SyntheticCatalog(plans, 512, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		for _, leaf := range p.Leaves() {
			for _, rel := range leaf.InputRelations {
				r, ok := cat.Relation(rel)
				if !ok {
					t.Fatalf("relation %q missing", rel)
				}
				if r.NumRows() == 0 {
					t.Fatalf("relation %q empty", rel)
				}
			}
		}
	}
}

func TestHashJoinEdgeSemantics(t *testing.T) {
	// Every ProbeHash in every benchmark must have exactly one
	// pipeline-breaking (build) input and one pipelining input.
	for _, qs := range [][]*plan.Plan{TPCH(2), SSB(2), JOB()} {
		for _, q := range qs {
			for _, op := range q.Ops {
				if op.Type != plan.ProbeHash {
					continue
				}
				breaking, streaming := 0, 0
				for _, e := range op.Children() {
					if e.NonPipelineBreaking {
						streaming++
					} else {
						breaking++
					}
				}
				if breaking != 1 || streaming != 1 {
					t.Fatalf("%s: probe op %d has %d breaking / %d streaming inputs",
						q.QueryName, op.ID, breaking, streaming)
				}
			}
		}
	}
}
