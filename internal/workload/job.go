package workload

import (
	"fmt"

	"repro/internal/plan"
)

// IMDB relation row counts (the 7.2 GB JOB dataset; fixed, no scale
// factor).
var imdbRows = map[string]float64{
	"title":           2_528_312,
	"movie_info":      14_835_720,
	"cast_info":       36_244_344,
	"movie_companies": 2_609_129,
	"movie_keyword":   4_523_930,
	"movie_info_idx":  1_380_035,
	"name":            4_167_491,
	"company_name":    234_997,
	"keyword":         134_170,
	"info_type":       113,
	"company_type":    4,
	"kind_type":       7,
	"char_name":       3_140_339,
	"role_type":       12,
	"aka_name":        901_343,
	"person_info":     2_963_664,
	"complete_cast":   135_086,
	"comp_cast_type":  4,
	"aka_title":       361_472,
	"link_type":       18,
	"movie_link":      29_997,
}

// jobFamily describes one of JOB's 33 query families: the chain of
// relations joined onto the title fact table, and how many lettered
// variants (a, b, c, …) the family has. Variants share the join graph
// and differ in predicate selectivity, exactly as in the benchmark.
type jobFamily struct {
	id       int
	rels     []string
	variants int
}

// jobFamilies lists the 33 families. The relation chains follow the
// published queries' join graphs (movie-centric star/chain mixes); the
// variant counts sum to 113.
var jobFamilies = []jobFamily{
	{1, []string{"company_type", "movie_companies", "title", "movie_info_idx", "info_type"}, 4},
	{2, []string{"company_name", "movie_companies", "title", "movie_keyword", "keyword"}, 4},
	{3, []string{"keyword", "movie_keyword", "title", "movie_info"}, 3},
	{4, []string{"info_type", "movie_info_idx", "title", "movie_keyword", "keyword"}, 3},
	{5, []string{"company_type", "movie_companies", "title", "movie_info", "info_type"}, 3},
	{6, []string{"keyword", "movie_keyword", "title", "cast_info", "name"}, 6},
	{7, []string{"aka_name", "name", "person_info", "info_type", "cast_info", "title", "movie_link", "link_type"}, 3},
	{8, []string{"company_name", "movie_companies", "company_type", "title", "cast_info", "role_type", "name", "aka_name"}, 4},
	{9, []string{"company_name", "movie_companies", "title", "cast_info", "role_type", "name", "char_name", "aka_name"}, 4},
	{10, []string{"company_name", "movie_companies", "company_type", "title", "cast_info", "role_type", "char_name"}, 3},
	{11, []string{"company_name", "movie_companies", "company_type", "title", "movie_link", "link_type", "movie_keyword", "keyword"}, 4},
	{12, []string{"company_name", "movie_companies", "company_type", "title", "movie_info", "info_type", "movie_info_idx"}, 3},
	{13, []string{"company_name", "movie_companies", "company_type", "title", "movie_info_idx", "info_type", "kind_type", "movie_info"}, 4},
	{14, []string{"keyword", "movie_keyword", "title", "kind_type", "movie_info", "info_type", "movie_info_idx"}, 3},
	{15, []string{"company_name", "movie_companies", "company_type", "title", "movie_info", "info_type", "aka_title", "movie_keyword", "keyword"}, 4},
	{16, []string{"company_name", "movie_companies", "title", "movie_keyword", "keyword", "cast_info", "name", "aka_name"}, 4},
	{17, []string{"company_name", "movie_companies", "title", "movie_keyword", "keyword", "cast_info", "name"}, 6},
	{18, []string{"info_type", "movie_info", "title", "movie_info_idx", "cast_info", "name"}, 3},
	{19, []string{"company_name", "movie_companies", "title", "movie_info", "info_type", "cast_info", "role_type", "name", "aka_name", "char_name"}, 4},
	{20, []string{"complete_cast", "comp_cast_type", "title", "kind_type", "cast_info", "char_name", "name", "movie_keyword", "keyword"}, 3},
	{21, []string{"company_name", "movie_companies", "company_type", "title", "movie_link", "link_type", "movie_info", "info_type", "movie_keyword", "keyword"}, 3},
	{22, []string{"company_name", "movie_companies", "company_type", "title", "kind_type", "movie_info", "info_type", "movie_info_idx", "movie_keyword", "keyword"}, 4},
	{23, []string{"complete_cast", "comp_cast_type", "title", "kind_type", "movie_info", "info_type", "movie_companies", "company_name", "company_type", "movie_keyword", "keyword"}, 3},
	{24, []string{"company_name", "movie_companies", "title", "movie_info", "info_type", "cast_info", "role_type", "name", "char_name", "movie_keyword", "keyword"}, 2},
	{25, []string{"movie_info", "info_type", "title", "movie_info_idx", "cast_info", "name", "movie_keyword", "keyword"}, 3},
	{26, []string{"complete_cast", "comp_cast_type", "title", "kind_type", "cast_info", "char_name", "name", "movie_info_idx", "info_type", "movie_keyword", "keyword"}, 3},
	{27, []string{"complete_cast", "comp_cast_type", "title", "movie_link", "link_type", "movie_info", "info_type", "movie_companies", "company_name", "company_type", "movie_keyword", "keyword"}, 3},
	{28, []string{"complete_cast", "comp_cast_type", "title", "kind_type", "movie_info", "info_type", "movie_info_idx", "movie_companies", "company_name", "company_type", "movie_keyword", "keyword"}, 3},
	{29, []string{"aka_name", "name", "person_info", "info_type", "cast_info", "char_name", "role_type", "title", "movie_companies", "company_name", "movie_keyword", "keyword", "movie_info", "complete_cast", "comp_cast_type"}, 3},
	{30, []string{"complete_cast", "comp_cast_type", "title", "movie_info", "info_type", "movie_info_idx", "cast_info", "name", "movie_keyword", "keyword"}, 3},
	{31, []string{"company_name", "movie_companies", "title", "movie_info", "info_type", "movie_info_idx", "cast_info", "name", "movie_keyword", "keyword"}, 3},
	{32, []string{"link_type", "movie_link", "title", "movie_keyword", "keyword"}, 2},
	{33, []string{"company_name", "movie_companies", "company_type", "title", "kind_type", "movie_link", "link_type", "movie_info_idx", "info_type"}, 3},
}

// variant selectivities: each lettered variant tightens/loosens the
// dimension predicates, as JOB's a/b/c variants do.
var jobVariantSel = []float64{0.05, 0.012, 0.15, 0.03, 0.08, 0.005}

// JOB returns the 113 Join Order Benchmark query plans. Each plan is a
// left-deep chain of hash joins over the family's relation list (small
// relations build, large relations probe), mirroring the join-heavy
// shapes — some queries exceed 10 joins — that make JOB the paper's most
// scheduling-sensitive benchmark.
func JOB() []*plan.Plan {
	var plans []*plan.Plan
	for _, f := range jobFamilies {
		for v := 0; v < f.variants; v++ {
			plans = append(plans, jobQuery(f, v))
		}
	}
	return plans
}

// NumJOBQueries is the benchmark's query count.
func NumJOBQueries() int {
	n := 0
	for _, f := range jobFamilies {
		n += f.variants
	}
	return n
}

func jobQuery(f jobFamily, variant int) *plan.Plan {
	t := newTmpl(fmt.Sprintf("job-%d%c", f.id, 'a'+variant), 1)
	sel := jobVariantSel[variant%len(jobVariantSel)]
	// Start from the first relation, filtered; join each next relation.
	// Small relations (<500k rows) become build sides with predicates;
	// large ones probe.
	cur := t.scan(f.rels[0], imdbRows[f.rels[0]], f.rels[0]+"_id").sel(sel, f.rels[0]+"_attr")
	for i := 1; i < len(f.rels); i++ {
		rel := f.rels[i]
		next := t.scan(rel, imdbRows[rel], rel+"_id")
		if imdbRows[rel] < 500_000 {
			// Filtered small relation: it builds, current result probes.
			next = next.sel(sel*2, rel+"_attr")
			cur = next.hashJoin(cur, sel, rel+"_id")
		} else {
			// Big relation probes through the current (smaller) result.
			cur = cur.hashJoin(next, sel, rel+"_id")
		}
	}
	cur.agg(1, "min_cols")
	return t.done()
}
