// Package workload provides the TPC-H, SSB, and JOB benchmark workloads:
// physical plan templates mirroring each benchmark query's operator
// structure, schema catalogs with synthetic data generation, and the
// arrival processes (streaming with exponential inter-arrival gaps, and
// batching) used in the paper's evaluation.
package workload

import (
	"math"

	"repro/internal/plan"
)

// node is a fluent handle used by the template DSL below.
type node struct {
	b  *plan.Builder
	op *plan.Operator
}

// tmpl builds one query plan. Block counts are expressed per base
// relation and propagated through operators with selectivities, which is
// how the optimizer's estimates behave.
type tmpl struct {
	b  *plan.Builder
	sf float64
}

func newTmpl(name string, scaleFactor float64) *tmpl {
	if scaleFactor <= 0 {
		scaleFactor = 1
	}
	return &tmpl{b: plan.NewBuilder(name), sf: scaleFactor}
}

// blocksFor converts a base row-count-at-SF1 to a block count at the
// template's scale factor (one block per ~400k rows, minimum 1). The
// granularity is coarser than Quickstep's default block size; it keeps
// relative work-order counts faithful while letting a single core
// simulate thousands of training episodes.
func (t *tmpl) blocksFor(rowsAtSF1 float64) int {
	blocks := int(math.Ceil(rowsAtSF1 * t.sf / 400_000))
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// scan adds a TableScan over a base relation.
func (t *tmpl) scan(rel string, rowsAtSF1 float64, cols ...string) node {
	op := t.b.Add(&plan.Operator{
		Type:           plan.TableScan,
		InputRelations: []string{rel},
		Columns:        cols,
		EstBlocks:      t.blocksFor(rowsAtSF1),
	})
	return node{b: t.b, op: op}
}

// indexScan adds an IndexScan over a base relation.
func (t *tmpl) indexScan(rel string, rowsAtSF1 float64, cols ...string) node {
	op := t.b.Add(&plan.Operator{
		Type:           plan.IndexScan,
		InputRelations: []string{rel},
		Columns:        cols,
		EstBlocks:      t.blocksFor(rowsAtSF1),
	})
	return node{b: t.b, op: op}
}

// childBlocks estimates the output block volume of a node.
func childBlocks(n node) int {
	blocks := int(math.Ceil(float64(n.op.EstBlocks) * n.op.Selectivity))
	if blocks < 1 {
		blocks = 1
	}
	return blocks
}

// sel filters the node's output with the given selectivity.
func (n node) sel(selectivity float64, cols ...string) node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.Select,
		InputRelations: n.op.InputRelations,
		Columns:        cols,
		EstBlocks:      childBlocks(n),
		Selectivity:    selectivity,
	})
	n.b.ConnectAuto(n.op, op)
	return node{b: n.b, op: op}
}

// proj projects the node's output.
func (n node) proj(cols ...string) node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.Project,
		InputRelations: n.op.InputRelations,
		Columns:        cols,
		EstBlocks:      childBlocks(n),
	})
	n.b.ConnectAuto(n.op, op)
	return node{b: n.b, op: op}
}

// hashJoin joins build (smaller) with probe via BuildHash + ProbeHash.
// The build edge is pipeline-breaking; the probe edge pipelines.
func (n node) hashJoin(probe node, selectivity float64, cols ...string) node {
	rels := append(append([]string{}, n.op.InputRelations...), probe.op.InputRelations...)
	build := n.b.Add(&plan.Operator{
		Type:           plan.BuildHash,
		InputRelations: n.op.InputRelations,
		Columns:        cols,
		EstBlocks:      childBlocks(n),
	})
	n.b.ConnectAuto(n.op, build)
	probeOp := n.b.Add(&plan.Operator{
		Type:           plan.ProbeHash,
		InputRelations: rels,
		Columns:        cols,
		EstBlocks:      childBlocks(probe),
		Selectivity:    selectivity,
		CostFactor:     1 + 0.1*math.Log1p(float64(build.EstBlocks)),
	})
	n.b.Connect(build, probeOp, false)   // build side blocks the probe
	n.b.Connect(probe.op, probeOp, true) // probe side pipelines
	return node{b: n.b, op: probeOp}
}

// inlJoin joins via an index-nested-loop join on the probe side.
func (n node) inlJoin(outer node, selectivity float64, cols ...string) node {
	rels := append(append([]string{}, n.op.InputRelations...), outer.op.InputRelations...)
	op := n.b.Add(&plan.Operator{
		Type:           plan.IndexNestedLoopJoin,
		InputRelations: rels,
		Columns:        cols,
		EstBlocks:      childBlocks(outer),
		Selectivity:    selectivity,
	})
	n.b.Connect(n.op, op, false) // inner side must be complete
	n.b.Connect(outer.op, op, true)
	return node{b: n.b, op: op}
}

// agg aggregates (pipeline breaker) then finalizes.
func (n node) agg(groups float64, cols ...string) node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.Aggregate,
		InputRelations: n.op.InputRelations,
		Columns:        cols,
		EstBlocks:      childBlocks(n),
	})
	n.b.ConnectAuto(n.op, op)
	finBlocks := int(math.Ceil(groups / 400_000))
	if finBlocks < 1 {
		finBlocks = 1
	}
	fin := n.b.Add(&plan.Operator{
		Type:           plan.FinalizeAggregate,
		InputRelations: n.op.InputRelations,
		Columns:        cols,
		EstBlocks:      finBlocks,
	})
	n.b.ConnectAuto(op, fin)
	return node{b: n.b, op: fin}
}

// sortBy sorts the node's output (pipeline breaker).
func (n node) sortBy(cols ...string) node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.Sort,
		InputRelations: n.op.InputRelations,
		Columns:        cols,
		EstBlocks:      childBlocks(n),
	})
	n.b.ConnectAuto(n.op, op)
	return node{b: n.b, op: op}
}

// topK keeps the first k rows of a sorted stream.
func (n node) topK() node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.TopK,
		InputRelations: n.op.InputRelations,
		EstBlocks:      1,
	})
	n.b.ConnectAuto(n.op, op)
	return node{b: n.b, op: op}
}

// limit truncates the stream.
func (n node) limit() node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.Limit,
		InputRelations: n.op.InputRelations,
		EstBlocks:      1,
	})
	n.b.ConnectAuto(n.op, op)
	return node{b: n.b, op: op}
}

// distinct removes duplicates (pipeline breaker).
func (n node) distinct(cols ...string) node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.Distinct,
		InputRelations: n.op.InputRelations,
		Columns:        cols,
		EstBlocks:      childBlocks(n),
	})
	n.b.ConnectAuto(n.op, op)
	return node{b: n.b, op: op}
}

// union concatenates with another stream.
func (n node) union(other node) node {
	op := n.b.Add(&plan.Operator{
		Type:           plan.Union,
		InputRelations: append(append([]string{}, n.op.InputRelations...), other.op.InputRelations...),
		EstBlocks:      childBlocks(n) + childBlocks(other),
	})
	n.b.ConnectAuto(n.op, op)
	n.b.ConnectAuto(other.op, op)
	return node{b: n.b, op: op}
}

// done finalizes the template.
func (t *tmpl) done() *plan.Plan { return t.b.MustBuild() }

// done finalizes the plan from any node of it (the node must be the
// plan's sink for validation to pass).
func (n node) done() *plan.Plan { return n.b.MustBuild() }
