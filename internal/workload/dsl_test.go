package workload

import (
	"testing"

	"repro/internal/plan"
)

func TestBlocksForScalesAndFloors(t *testing.T) {
	small := newTmpl("t", 1)
	if got := small.blocksFor(10); got != 1 {
		t.Fatalf("tiny relation should floor to 1 block, got %d", got)
	}
	big := newTmpl("t", 100)
	if got := big.blocksFor(6_000_000); got != 1500 {
		t.Fatalf("SF100 lineitem blocks = %d, want 1500", got)
	}
	// Zero or negative scale factors default to 1.
	def := newTmpl("t", 0)
	if got := def.blocksFor(400_000); got != 1 {
		t.Fatalf("default SF blocks = %d, want 1", got)
	}
}

func TestHashJoinShape(t *testing.T) {
	tm := newTmpl("t", 1)
	build := tm.scan("dim", 100_000, "d_key")
	probe := tm.scan("fact", 4_000_000, "f_key")
	out := build.hashJoin(probe, 0.1, "d_key")
	p := out.done()
	// scan, scan, build, probe.
	if p.NumOps() != 4 {
		t.Fatalf("join plan has %d ops, want 4", p.NumOps())
	}
	probeOp := p.Sink()
	if probeOp.Type != plan.ProbeHash {
		t.Fatalf("sink is %v, want ProbeHash", probeOp.Type)
	}
	// The probe's work-order count comes from the probe side's volume.
	if probeOp.EstBlocks != 10 {
		t.Fatalf("probe blocks = %d, want 10 (4M rows / 400k)", probeOp.EstBlocks)
	}
	// Input relations merge both sides.
	if len(probeOp.InputRelations) != 2 {
		t.Fatalf("probe input relations %v", probeOp.InputRelations)
	}
}

func TestSelApplySelectivityToChildren(t *testing.T) {
	tm := newTmpl("t", 1)
	filtered := tm.scan("fact", 4_000_000).sel(0.1, "col")
	agg := filtered.agg(10, "g")
	p := agg.done()
	var aggOp *plan.Operator
	for _, op := range p.Ops {
		if op.Type == plan.Aggregate {
			aggOp = op
		}
	}
	// The aggregate's input volume reflects the select's 10% output:
	// ceil(10 blocks × 0.1) = 1.
	if aggOp.EstBlocks != 1 {
		t.Fatalf("aggregate blocks = %d, want 1", aggOp.EstBlocks)
	}
}

func TestAggProducesFinalize(t *testing.T) {
	tm := newTmpl("t", 1)
	p := tm.scan("fact", 400_000).agg(5, "g").done()
	types := make([]plan.OpType, 0, p.NumOps())
	for _, op := range p.Ops {
		types = append(types, op.Type)
	}
	want := []plan.OpType{plan.TableScan, plan.Aggregate, plan.FinalizeAggregate}
	if len(types) != len(want) {
		t.Fatalf("plan ops %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("plan ops %v, want %v", types, want)
		}
	}
	// The aggregate edge must be pipeline-breaking, so the finalize
	// cannot start before the aggregate drains.
	for _, e := range p.Edges {
		if e.Parent.Type == plan.Aggregate && e.NonPipelineBreaking {
			t.Fatal("scan→aggregate edge must break the pipeline")
		}
	}
}

func TestUnionAndDistinct(t *testing.T) {
	tm := newTmpl("t", 1)
	a := tm.scan("a", 400_000)
	b := tm.scan("b", 800_000)
	u := a.union(b).distinct("k")
	p := u.done()
	sink := p.Sink()
	if sink.Type != plan.Distinct {
		t.Fatalf("sink %v", sink.Type)
	}
	var unionOp *plan.Operator
	for _, op := range p.Ops {
		if op.Type == plan.Union {
			unionOp = op
		}
	}
	if unionOp.EstBlocks != 3 { // 1 + 2
		t.Fatalf("union blocks = %d, want 3", unionOp.EstBlocks)
	}
}

func TestIndexScanProjectLimit(t *testing.T) {
	tm := newTmpl("t", 1)
	p := tm.indexScan("idx", 2_000_000, "k").proj("k", "v").limit().done()
	want := []plan.OpType{plan.IndexScan, plan.Project, plan.Limit}
	for i, op := range p.Ops {
		if op.Type != want[i] {
			t.Fatalf("op %d is %v, want %v", i, op.Type, want[i])
		}
	}
	if p.Ops[0].EstBlocks != 5 {
		t.Fatalf("index scan blocks = %d, want 5", p.Ops[0].EstBlocks)
	}
	if p.Sink().EstBlocks != 1 {
		t.Fatal("limit should be a single work order")
	}
	// The whole chain pipelines (no breakers).
	for _, e := range p.Edges {
		if !e.NonPipelineBreaking {
			t.Fatalf("edge %d→%d should pipeline", e.Child.ID, e.Parent.ID)
		}
	}
}

func TestINLJoinBlocksOnInnerSide(t *testing.T) {
	tm := newTmpl("t", 1)
	inner := tm.scan("inner", 400_000)
	outer := tm.scan("outer", 2_000_000)
	j := inner.inlJoin(outer, 0.2, "k")
	p := j.done()
	sink := p.Sink()
	if sink.Type != plan.IndexNestedLoopJoin {
		t.Fatalf("sink %v", sink.Type)
	}
	breaking := 0
	for _, e := range sink.Children() {
		if !e.NonPipelineBreaking {
			breaking++
		}
	}
	if breaking != 1 {
		t.Fatalf("INL join should block on exactly the inner side, got %d breaking edges", breaking)
	}
}
