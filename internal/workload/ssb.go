package workload

import (
	"fmt"

	"repro/internal/plan"
)

// Star Schema Benchmark base relation row counts at scale factor 1.
const (
	ssbLineorder = 6_000_000
	ssbCustomer  = 30_000
	ssbSupplier  = 2_000
	ssbPart      = 200_000
	ssbDate      = 2_556
)

// SSB returns the 13 Star Schema Benchmark query plans (flights 1.1–4.3)
// at the given scale factor. Every SSB query is a star join: the
// lineorder fact table probed by one to four filtered dimension hash
// tables, followed by an aggregate — lighter than TPC-H, which is why
// the paper sees smaller gaps on SSB.
func SSB(scaleFactor float64) []*plan.Plan {
	type spec struct {
		flight, q int
		dims      []dim
		liSel     float64
		groups    float64
		sorted    bool
	}
	specs := []spec{
		{1, 1, []dim{{"date", ssbDate, 1.0 / 7}}, 0.47 * 0.5, 1, false},
		{1, 2, []dim{{"date", ssbDate, 1.0 / 84}}, 0.47 * 0.5, 1, false},
		{1, 3, []dim{{"date", ssbDate, 1.0 / 364}}, 0.47 * 0.5, 1, false},
		{2, 1, []dim{{"part", ssbPart, 1.0 / 25}, {"supplier", ssbSupplier, 1.0 / 5}, {"date", ssbDate, 1}}, 1, 280, true},
		{2, 2, []dim{{"part", ssbPart, 1.0 / 125}, {"supplier", ssbSupplier, 1.0 / 5}, {"date", ssbDate, 1}}, 1, 56, true},
		{2, 3, []dim{{"part", ssbPart, 1.0 / 1000}, {"supplier", ssbSupplier, 1.0 / 25}, {"date", ssbDate, 1}}, 1, 7, true},
		{3, 1, []dim{{"customer", ssbCustomer, 1.0 / 5}, {"supplier", ssbSupplier, 1.0 / 5}, {"date", ssbDate, 6.0 / 7}}, 1, 150, true},
		{3, 2, []dim{{"customer", ssbCustomer, 1.0 / 25}, {"supplier", ssbSupplier, 1.0 / 25}, {"date", ssbDate, 6.0 / 7}}, 1, 600, true},
		{3, 3, []dim{{"customer", ssbCustomer, 1.0 / 125}, {"supplier", ssbSupplier, 1.0 / 125}, {"date", ssbDate, 6.0 / 7}}, 1, 24, true},
		{3, 4, []dim{{"customer", ssbCustomer, 1.0 / 125}, {"supplier", ssbSupplier, 1.0 / 125}, {"date", ssbDate, 1.0 / 84}}, 1, 4, true},
		{4, 1, []dim{{"customer", ssbCustomer, 1.0 / 5}, {"supplier", ssbSupplier, 1.0 / 5}, {"part", ssbPart, 2.0 / 5}, {"date", ssbDate, 1}}, 1, 175, true},
		{4, 2, []dim{{"customer", ssbCustomer, 1.0 / 5}, {"supplier", ssbSupplier, 1.0 / 5}, {"part", ssbPart, 2.0 / 5}, {"date", ssbDate, 2.0 / 7}}, 1, 350, true},
		{4, 3, []dim{{"customer", ssbCustomer, 1.0 / 5}, {"supplier", ssbSupplier, 1.0 / 25}, {"part", ssbPart, 1.0 / 25}, {"date", ssbDate, 2.0 / 7}}, 1, 800, true},
	}
	plans := make([]*plan.Plan, 0, len(specs))
	for _, s := range specs {
		plans = append(plans, ssbStar(s.flight, s.q, scaleFactor, s.dims, s.liSel, s.groups, s.sorted))
	}
	return plans
}

// dim describes one filtered dimension of a star join.
type dim struct {
	rel  string
	rows float64
	sel  float64
}

func ssbStar(flight, q int, sf float64, dims []dim, liSel, groups float64, sorted bool) *plan.Plan {
	t := newTmpl(fmt.Sprintf("ssb-q%d.%d-sf%g", flight, q, sf), sf)
	fact := t.scan("lineorder", ssbLineorder, "lo_orderkey", "lo_revenue")
	if liSel < 1 {
		fact = fact.sel(liSel, "lo_discount", "lo_quantity")
	}
	join := fact
	combined := 1.0
	for _, d := range dims {
		dimNode := t.scan(d.rel, d.rows, d.rel+"_key")
		if d.sel < 1 {
			dimNode = dimNode.sel(d.sel, d.rel+"_attr")
		}
		combined *= d.sel
		join = dimNode.hashJoin(join, combined, d.rel+"_key")
	}
	out := join.agg(groups, "group_cols")
	if sorted {
		out = out.sortBy("group_cols")
	}
	return t.done()
}
