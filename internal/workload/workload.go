package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/plan"
)

// Benchmark names the supported benchmarks.
type Benchmark string

// The supported benchmarks.
const (
	BenchTPCH Benchmark = "tpch"
	BenchSSB  Benchmark = "ssb"
	BenchJOB  Benchmark = "job"
)

// Pool is a set of query plans a workload samples from, already split
// into train and test halves as §7.1 describes: per scale factor, 50% of
// the benchmark's queries are selected (without replacement) for
// training; the rest are reserved for testing and never seen in
// training.
type Pool struct {
	Benchmark Benchmark
	Train     []*plan.Plan
	Test      []*plan.Plan
}

// TPCHScaleFactors are the paper's TPC-H scale factors.
var TPCHScaleFactors = []float64{2, 5, 10, 50, 100}

// SSBScaleFactors are the paper's SSB scale factors.
var SSBScaleFactors = []float64{2, 5, 10, 50}

// NewPool builds the train/test pool for a benchmark with the paper's
// scale factors and split procedure, deterministically from the seed.
func NewPool(b Benchmark, seed int64) (*Pool, error) {
	rng := rand.New(rand.NewSource(seed))
	p := &Pool{Benchmark: b}
	switch b {
	case BenchTPCH:
		for _, sf := range TPCHScaleFactors {
			splitInto(p, TPCH(sf), rng)
		}
	case BenchSSB:
		for _, sf := range SSBScaleFactors {
			splitInto(p, SSB(sf), rng)
		}
	case BenchJOB:
		// JOB has no scale factor; split the 113 queries directly.
		splitInto(p, JOB(), rng)
	default:
		return nil, fmt.Errorf("workload: unknown benchmark %q", b)
	}
	return p, nil
}

// splitInto randomly assigns half of qs (rounded down) to training and
// the rest to testing.
func splitInto(p *Pool, qs []*plan.Plan, rng *rand.Rand) {
	idx := rng.Perm(len(qs))
	half := len(qs) / 2
	for i, j := range idx {
		if i < half {
			p.Train = append(p.Train, qs[j])
		} else {
			p.Test = append(p.Test, qs[j])
		}
	}
}

// Streaming draws n queries (with replacement) from the given plan set
// and spaces their arrivals with exponential gaps of expected value
// 1/rate — the continuous-arrival process of §7.1.
func Streaming(plans []*plan.Plan, n int, rate float64, rng *rand.Rand) []engine.Arrival {
	if rate <= 0 {
		rate = 1
	}
	arrivals := make([]engine.Arrival, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / rate
		arrivals = append(arrivals, engine.Arrival{Plan: plans[rng.Intn(len(plans))].Clone(), At: t})
	}
	return arrivals
}

// Batch draws n queries (with replacement) all arriving at time zero —
// the batch-processing scenario where the system is under maximal
// pressure.
func Batch(plans []*plan.Plan, n int, rng *rand.Rand) []engine.Arrival {
	arrivals := make([]engine.Arrival, 0, n)
	for i := 0; i < n; i++ {
		arrivals = append(arrivals, engine.Arrival{Plan: plans[rng.Intn(len(plans))].Clone(), At: 0})
	}
	return arrivals
}
