package core

import (
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd exercises the documented public flow: pool, agent,
// short training, greedy scheduling of a held-out workload.
func TestFacadeEndToEnd(t *testing.T) {
	pool, err := NewPool(BenchSSB, 1)
	if err != nil {
		t.Fatal(err)
	}
	agent := NewAgent(DefaultAgentOptions(1))
	cfg := DefaultTrainConfig(1)
	cfg.Episodes = 3
	cfg.SimCfg = SimConfig{Threads: 8}
	cfg.Workload = func(ep int, rng *rand.Rand) []Arrival {
		return Streaming(pool.Train, 4, 0.5, rng)
	}
	if _, err := Train(agent, cfg); err != nil {
		t.Fatal(err)
	}
	agent.SetGreedy(true)
	rng := rand.New(rand.NewSource(1))
	sim := NewSim(SimConfig{Threads: 8, Seed: 1})
	res, err := sim.Run(agent, Streaming(pool.Test, 5, 0.5, rng))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 5 {
		t.Fatalf("completed %d of 5", len(res.Durations))
	}
}

func TestFacadeHeuristicsAndBaselines(t *testing.T) {
	pool, err := NewPool(BenchTPCH, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for _, s := range []Scheduler{FIFO{}, Fair{}, Quickstep{}, CriticalPath{}, NewDecima(2)} {
		sim := NewSim(SimConfig{Threads: 6, Seed: 2})
		res, err := sim.Run(s, Streaming(pool.Test, 4, 0.5, rng))
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Durations) != 4 {
			t.Fatalf("%s completed %d of 4", s.Name(), len(res.Durations))
		}
	}
}

func TestFacadeBenchmarkGenerators(t *testing.T) {
	if len(TPCH(1)) != 22 || len(SSB(1)) != 13 || len(JOB()) != 113 {
		t.Fatal("benchmark generators returned wrong query counts")
	}
}
