// Package core is the library's public facade: it re-exports the types
// a downstream user needs to schedule analytical workloads with LSched —
// plans, engines, schedulers, workloads, and training — without
// importing each subsystem package individually.
//
// The paper's primary contribution (the learned scheduling agent) lives
// in internal/lsched; core aliases it together with the substrates it
// depends on. A typical flow:
//
//	pool, _ := core.NewPool(core.BenchTPCH, 42)
//	agent := core.NewAgent(core.DefaultAgentOptions(42))
//	cfg := core.DefaultTrainConfig(42)
//	cfg.SimCfg = core.SimConfig{Threads: 60}
//	cfg.Workload = func(ep int, rng *rand.Rand) []core.Arrival {
//		return core.Streaming(pool.Train, 40, 0.5, rng)
//	}
//	core.Train(agent, cfg)
//	agent.SetGreedy(true)
//	sim := core.NewSim(core.SimConfig{Threads: 60, Seed: 7})
//	res, _ := sim.Run(agent, core.Streaming(pool.Test, 80, 0.5, rng))
package core

import (
	"repro/internal/decima"
	"repro/internal/engine"
	"repro/internal/heuristics"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/selftune"
	"repro/internal/workload"
)

// Engine types.
type (
	// Sim is the virtual-time discrete-event execution engine.
	Sim = engine.Sim
	// SimConfig configures a simulator run.
	SimConfig = engine.SimConfig
	// SimResult summarizes a simulator run.
	SimResult = engine.SimResult
	// Live executes plans against real storage blocks.
	Live = engine.Live
	// LiveConfig configures a live engine.
	LiveConfig = engine.LiveConfig
	// Arrival pairs a plan with its arrival time.
	Arrival = engine.Arrival
	// Scheduler is the policy interface all schedulers implement.
	Scheduler = engine.Scheduler
	// Decision is one scheduling decision.
	Decision = engine.Decision
	// Event is a scheduling event.
	Event = engine.Event
	// State is the scheduler-visible engine state.
	State = engine.State
	// CostModel maps work orders to durations and memory.
	CostModel = engine.CostModel
)

// Agent types.
type (
	// Agent is the LSched learned scheduling agent.
	Agent = lsched.Agent
	// AgentOptions configures an agent.
	AgentOptions = lsched.Options
	// TrainConfig configures REINFORCE training.
	TrainConfig = lsched.TrainConfig
	// TrainResult reports training progress.
	TrainResult = lsched.TrainResult
)

// Workload types.
type (
	// Pool is a benchmark's train/test query-plan split.
	Pool = workload.Pool
	// Benchmark names a supported benchmark.
	Benchmark = workload.Benchmark
)

// Benchmarks.
const (
	BenchTPCH = workload.BenchTPCH
	BenchSSB  = workload.BenchSSB
	BenchJOB  = workload.BenchJOB
)

// Engine constructors.
var (
	NewSim           = engine.NewSim
	NewLive          = engine.NewLive
	DefaultCostModel = engine.DefaultCostModel
)

// Observability types: pass a Registry/Tracer in SimConfig.Metrics /
// SimConfig.Trace (or LiveConfig) to collect counters, latency
// histograms, and a typed event trace from a run; export them with
// NewMetricsExport. Both are optional — nil disables instrumentation
// at zero cost.
type (
	// MetricsRegistry holds named counters, gauges, and histograms.
	MetricsRegistry = metrics.Registry
	// MetricsTracer is the ring-buffer trace of typed engine events.
	MetricsTracer = metrics.Tracer
	// MetricsExport bundles a snapshot with the trace for JSON/text dumps.
	MetricsExport = metrics.Export
)

// Observability constructors.
var (
	NewMetricsRegistry = metrics.NewRegistry
	NewMetricsTracer   = metrics.NewTracer
	NewMetricsExport   = metrics.NewExport
)

// Agent constructors and training.
var (
	NewAgent            = lsched.New
	DefaultAgentOptions = lsched.DefaultOptions
	DefaultTrainConfig  = lsched.DefaultTrainConfig
	Train               = lsched.Train
)

// NewDecima builds the Decima baseline agent (GCN encoder, sequential
// message passing, no pipelining).
var NewDecima = decima.New

// DecimaTrainConfig adapts a training config to Decima's average-only
// reward.
var DecimaTrainConfig = decima.TrainConfig

// TuneSelfTune searches the SelfTune policy's hyper-parameters on
// training workloads.
var TuneSelfTune = selftune.Tune

// SelfTuneConfig configures the SelfTune hyper-parameter search.
type SelfTuneConfig = selftune.TuneConfig

// Heuristic schedulers.
type (
	// FIFO runs queries strictly in arrival order.
	FIFO = heuristics.FIFO
	// Fair is weighted fair scheduling.
	Fair = heuristics.Fair
	// Quickstep is the built-in Quickstep priority scheduler.
	Quickstep = heuristics.Quickstep
	// CriticalPath is the critical-path pipelining heuristic.
	CriticalPath = heuristics.CriticalPath
	// SJF is the cost-aware shortest-job-first reference policy (not a
	// paper baseline; an informed-heuristic upper reference).
	SJF = heuristics.SJF
)

// Workload constructors.
var (
	NewPool   = workload.NewPool
	Streaming = workload.Streaming
	Batch     = workload.Batch
	TPCH      = workload.TPCH
	SSB       = workload.SSB
	JOB       = workload.JOB
)
