package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// TestNodeFailureRedispatch is the failure drill the subsystem exists
// to pass: a 3-node cluster loses one node mid-run. Queries routed to
// the dead node but not yet started must re-dispatch to the survivors,
// the conservation invariant (every submitted query terminal exactly
// once) must hold with zero lost, and the dead node's health gauge
// must read 0 within one heartbeat interval of the coordinator
// noticing.
func TestNodeFailureRedispatch(t *testing.T) {
	const heartbeat = 40 * time.Millisecond
	reg := metrics.NewRegistry()
	nodes := make([]*Node, 3)
	for i := range nodes {
		nodes[i] = testNode(t, fmt.Sprintf("node-%d", i), unitSleepBackend(100*time.Microsecond))
	}
	lc, err := NewLocalCluster(Options{
		MaxPerNode:        2,
		HeartbeatInterval: heartbeat,
		Metrics:           reg,
	}, nodes...)
	if err != nil {
		t.Fatal(err)
	}

	const n = 300
	var wg sync.WaitGroup
	var failures int64
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := lc.Coord.Run(testQuery(fmt.Sprintf("tenant-%d", i%8), 2+i%16)); err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
			}
		}(i)
	}
	// Kill node 1 while queries are queued on it (MaxPerNode bounds
	// dispatch, so a burst of 300 leaves most queries queued).
	time.Sleep(5 * time.Millisecond)
	killedAt := time.Now()
	lc.Kill(1)

	// The health gauge must flip within one heartbeat interval of the
	// failure being detectable (in-flight submits fail immediately; the
	// probe is the backstop). Allow one interval plus scheduling slack.
	gauge := reg.Gauge(metrics.LabeledName("cluster_node_healthy", "node", "node-1"))
	flipDeadline := killedAt.Add(heartbeat + 100*time.Millisecond)
	for gauge.Value() != 0 {
		if time.Now().After(flipDeadline) {
			t.Fatal("health gauge did not flip to 0 within one heartbeat interval of the kill")
		}
		time.Sleep(time.Millisecond)
	}

	wg.Wait()
	st := lc.Coord.Status()
	if st.Completed+st.Failed != n {
		t.Fatalf("lost queries: completed=%d failed=%d, want sum %d", st.Completed, st.Failed, n)
	}
	if int64(failures) != st.Failed {
		t.Fatalf("caller saw %d failures, coordinator counted %d", failures, st.Failed)
	}
	if st.Failed != 0 {
		// Two healthy nodes remained and the budget allows 3 routes;
		// nothing should have run out of places to go.
		t.Fatalf("%d queries failed despite surviving nodes", st.Failed)
	}
	if st.Redispatched == 0 {
		t.Fatal("no queries re-dispatched; the kill never orphaned queued work (test lost its race)")
	}
	for _, ns := range st.Nodes {
		if ns.ID == "node-1" {
			if ns.Healthy {
				t.Fatal("killed node still marked healthy")
			}
			if ns.Queued != 0 {
				t.Fatalf("killed node still holds %d queued queries", ns.Queued)
			}
		}
	}

	// Revive: the next heartbeat marks it routable again and the gauge
	// flips back.
	lc.Revive(1)
	rejoinDeadline := time.Now().Add(10*heartbeat + time.Second)
	for gauge.Value() != 1 {
		if time.Now().After(rejoinDeadline) {
			t.Fatal("revived node never rejoined")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := lc.Coord.Run(testQuery("tenant-0", 1)); err != nil {
		t.Fatalf("query after rejoin failed: %v", err)
	}
	if !lc.Close(time.Second) {
		t.Fatal("coordinator drain timed out")
	}
}
