package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/frontdoor"
	"repro/internal/metrics"
	"repro/internal/rpcsched"
)

// ErrNoNodes is returned when no routable (healthy, non-draining) node
// exists for a query.
var ErrNoNodes = errors.New("cluster: no routable node")

// ErrShutdown is delivered to queries still queued when the
// coordinator closes.
var ErrShutdown = errors.New("cluster: coordinator shut down")

// Options configures a Coordinator.
type Options struct {
	// Policy picks a node per query (default LeastLoaded).
	Policy Policy
	// Estimator prices each query's predicted O-DUR for load-aware
	// routing; the coordinator trains it online from the per-operator
	// durations nodes report back, so routing sharpens as the cluster
	// runs. The coordinator owns it (all access is under its lock) —
	// do not share one instance with a front door. Nil creates one
	// with generic priors.
	Estimator *costmodel.Estimator
	// MaxPerNode bounds concurrently dispatched queries per node
	// (default 8); excess queries queue at the coordinator, where a
	// node failure can still re-dispatch them.
	MaxPerNode int
	// HeartbeatInterval paces health probes (default 500ms). A probe
	// failure marks the node unroutable; a success marks it routable
	// again, so the gauge flips within one interval of a kill or a
	// recovery.
	HeartbeatInterval time.Duration
	// RedispatchBudget bounds how many times one query is re-routed
	// after node failures before it fails (default 3).
	RedispatchBudget int
	// Metrics instruments the coordinator: cluster_* counters plus a
	// cluster_node_healthy{node=...} gauge per member (nil disables).
	Metrics *metrics.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Policy == nil {
		out.Policy = LeastLoaded{}
	}
	if out.Estimator == nil {
		out.Estimator = costmodel.NewEstimator(32, 0.01, 1)
	}
	if out.MaxPerNode <= 0 {
		out.MaxPerNode = 8
	}
	if out.HeartbeatInterval <= 0 {
		out.HeartbeatInterval = 500 * time.Millisecond
	}
	if out.RedispatchBudget <= 0 {
		out.RedispatchBudget = 3
	}
	return out
}

// submitOutcome is a ticket's terminal answer.
type submitOutcome struct {
	res *frontdoor.Result
	err error
}

// ticket is one query moving through the router.
type ticket struct {
	req      frontdoor.Request
	tenant   string
	predDur  float64
	attempts int // routes consumed (first route = 1)
	done     chan submitOutcome
}

// member is the coordinator's state for one node.
type member struct {
	id     string
	client NodeClient

	healthy       bool
	draining      bool
	policyVersion int
	probing       bool

	queue    []*ticket // routed, not yet dispatched
	started  int       // dispatched, awaiting reply
	predLoad float64   // predicted seconds of queued + started work

	routed, completed, failed int64

	kick     chan struct{}
	gHealthy *metrics.Gauge
}

// Coordinator routes admitted queries across worker nodes. It
// implements frontdoor.Backend, so mounting it as a front door's
// backend gives the cluster central admission control for free. Build
// with New, register nodes with AddNode, then Start; stop with Close.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	members []*member
	started bool
	closed  bool

	routed, completed, failed, redispatched, unroutable int64

	pending rpcsched.Inflight // dispatched Submit calls in flight
	quit    chan struct{}
	wg      sync.WaitGroup

	cRouted, cCompleted, cFailed, cRedispatched *metrics.Counter
}

// New builds a coordinator (no nodes yet, not started).
func New(opts Options) *Coordinator {
	o := opts.withDefaults()
	c := &Coordinator{opts: o, quit: make(chan struct{})}
	if reg := o.Metrics; reg != nil {
		c.cRouted = reg.Counter("cluster_routed_total")
		c.cCompleted = reg.Counter("cluster_completed_total")
		c.cFailed = reg.Counter("cluster_failed_total")
		c.cRedispatched = reg.Counter("cluster_redispatched_total")
	}
	return c
}

// AddNode registers a node (before Start). Nodes start healthy; the
// first heartbeat corrects optimism.
func (c *Coordinator) AddNode(id string, client NodeClient) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("cluster: AddNode after Start")
	}
	for _, m := range c.members {
		if m.id == id {
			return fmt.Errorf("cluster: duplicate node ID %q", id)
		}
	}
	m := &member{id: id, client: client, healthy: true, kick: make(chan struct{}, 1)}
	if reg := c.opts.Metrics; reg != nil {
		m.gHealthy = reg.Gauge(metrics.LabeledName("cluster_node_healthy", "node", id))
	}
	m.gHealthy.Set(1)
	c.members = append(c.members, m)
	return nil
}

// Start launches the per-node dispatch loops and the heartbeat.
func (c *Coordinator) Start() error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return fmt.Errorf("cluster: already started")
	}
	if len(c.members) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no nodes registered")
	}
	c.started = true
	members := c.members
	c.mu.Unlock()
	for _, m := range members {
		c.wg.Add(1)
		go c.dispatchLoop(m)
	}
	c.wg.Add(1)
	go c.heartbeatLoop()
	return nil
}

// Run implements frontdoor.Backend: route the query to a node, wait
// for its reply, re-dispatching across node failures.
func (c *Coordinator) Run(q *frontdoor.Query) (*frontdoor.Result, error) {
	t := &ticket{
		req:    requestFromQuery(q),
		tenant: q.Tenant,
		done:   make(chan submitOutcome, 1),
	}
	t.predDur = c.predict(q.Ops)
	if err := c.route(t); err != nil {
		return nil, err
	}
	out := <-t.done
	return out.res, out.err
}

// predict prices a query's total O-DUR under the coordinator's lock
// (the estimator's windows are not safe for concurrent use).
func (c *Coordinator) predict(ops []costmodel.OpWork) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	dur, _ := c.opts.Estimator.PredictTotals(ops)
	return dur
}

// requestFromQuery rebuilds the wire request for an already-admitted
// query (the node re-validates; both ends of the conversion are the
// same validated vocabulary).
func requestFromQuery(q *frontdoor.Query) frontdoor.Request {
	ops := make([]frontdoor.OpSpec, len(q.Ops))
	for i, ow := range q.Ops {
		ops[i] = frontdoor.OpSpec{Type: ow.Key, Blocks: ow.Units}
	}
	return frontdoor.Request{
		Tenant:     q.Tenant,
		Class:      q.Class.String(),
		DeadlineMS: int64(q.Deadline / time.Millisecond),
		Ops:        ops,
	}
}

// route assigns t to a node picked by the policy over the routable
// views. The returned error (no routable node, shutdown) is terminal
// for the query and already counted as failed.
func (c *Coordinator) route(t *ticket) error {
	c.mu.Lock()
	if c.closed {
		c.failed++
		c.cFailed.Inc()
		c.mu.Unlock()
		return ErrShutdown
	}
	views := make([]NodeView, 0, len(c.members))
	for i, m := range c.members {
		if !m.healthy || m.draining {
			continue
		}
		views = append(views, NodeView{
			Index: i, ID: m.id,
			Started: m.started, Queued: len(m.queue), PredLoad: m.predLoad,
		})
	}
	if len(views) == 0 {
		c.unroutable++
		c.failed++
		c.cFailed.Inc()
		c.mu.Unlock()
		return ErrNoNodes
	}
	pick := c.opts.Policy.Pick(views, t.tenant)
	if pick < 0 || pick >= len(views) {
		pick = 0
	}
	m := c.members[views[pick].Index]
	t.attempts++
	if t.attempts == 1 {
		c.routed++
		c.cRouted.Inc()
	} else {
		c.redispatched++
		c.cRedispatched.Inc()
	}
	m.routed++
	m.queue = append(m.queue, t)
	m.predLoad += t.predDur
	c.mu.Unlock()
	kick(m)
	return nil
}

// kick wakes a member's dispatch loop (non-blocking).
func kick(m *member) {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// dispatchLoop fills one node's dispatch slots from its queue.
func (c *Coordinator) dispatchLoop(m *member) {
	defer c.wg.Done()
	for {
		select {
		case <-m.kick:
		case <-c.quit:
			return
		}
		c.mu.Lock()
		for m.healthy && !m.draining && m.started < c.opts.MaxPerNode && len(m.queue) > 0 {
			t := m.queue[0]
			m.queue = m.queue[1:]
			m.started++
			c.pending.Add()
			go c.runOne(m, t)
		}
		c.mu.Unlock()
	}
}

// runOne dispatches one ticket to its node and resolves it. A
// transport failure marks the node down and re-dispatches both this
// ticket and everything still queued on the member.
func (c *Coordinator) runOne(m *member, t *ticket) {
	defer c.pending.Done()
	reply, err := m.client.Submit(&SubmitRequest{Req: t.req})

	c.mu.Lock()
	m.started--
	m.predLoad -= t.predDur
	if m.predLoad < 0 {
		m.predLoad = 0
	}
	switch {
	case err != nil:
		// Node failure: whether the query executed is unknowable, so
		// re-dispatch is at-least-once. Everything queued on the member
		// re-routes with it.
		orphans := c.markDownLocked(m)
		c.mu.Unlock()
		c.redispatch(t)
		for _, o := range orphans {
			c.redispatch(o)
		}
		return
	case reply.Draining:
		// Drain refusal: mark unroutable (the heartbeat clears it if
		// the drain is lifted) and route this query elsewhere.
		m.draining = true
		orphans := c.takeQueueLocked(m)
		c.mu.Unlock()
		c.redispatch(t)
		for _, o := range orphans {
			c.redispatch(o)
		}
		return
	case reply.Err != "":
		m.failed++
		c.failed++
		c.cFailed.Inc()
		c.mu.Unlock()
		t.done <- submitOutcome{err: errors.New(reply.Err)}
	default:
		m.completed++
		c.completed++
		c.cCompleted.Inc()
		// Close the loop: observed per-operator durations train the
		// routing estimator, so predicted load tracks this cluster's
		// actual hardware and data.
		for k, d := range reply.OpDurations {
			c.opts.Estimator.ObserveCompletion(k, d, reply.OpMemory[k])
		}
		c.mu.Unlock()
		var res *frontdoor.Result
		if len(reply.OpDurations) > 0 || len(reply.OpMemory) > 0 {
			res = &frontdoor.Result{OpDurations: reply.OpDurations, OpMemory: reply.OpMemory}
		}
		t.done <- submitOutcome{res: res}
	}
	kick(m) // a slot freed; pull the next queued ticket
}

// markDownLocked marks a member unroutable and strips its queue for
// re-dispatch. Caller holds c.mu.
func (c *Coordinator) markDownLocked(m *member) []*ticket {
	if m.healthy {
		m.healthy = false
		m.gHealthy.Set(0)
	}
	return c.takeQueueLocked(m)
}

// takeQueueLocked removes every queued (unstarted) ticket from a
// member, unwinding its load accounting. Caller holds c.mu.
func (c *Coordinator) takeQueueLocked(m *member) []*ticket {
	orphans := m.queue
	m.queue = nil
	for _, t := range orphans {
		m.predLoad -= t.predDur
	}
	if m.predLoad < 0 {
		m.predLoad = 0
	}
	return orphans
}

// redispatch re-routes a ticket after a node failure or drain
// refusal, failing it once the attempt budget is spent.
func (c *Coordinator) redispatch(t *ticket) {
	if t.attempts > c.opts.RedispatchBudget {
		c.mu.Lock()
		c.failed++
		c.cFailed.Inc()
		c.mu.Unlock()
		t.done <- submitOutcome{err: fmt.Errorf(
			"cluster: query failed after %d dispatch attempts: %w", t.attempts, ErrNodeDown)}
		return
	}
	if err := c.route(t); err != nil {
		t.done <- submitOutcome{err: err}
	}
}

// heartbeatLoop probes every member each interval. Probes run in their
// own goroutines (a hung node must not stall the others); a member is
// probed again only after its previous probe returns.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		c.mu.Lock()
		for _, m := range c.members {
			if m.probing {
				continue
			}
			m.probing = true
			c.wg.Add(1)
			go c.probe(m)
		}
		c.mu.Unlock()
		select {
		case <-ticker.C:
		case <-c.quit:
			return
		}
	}
}

// probe runs one health check against a member.
func (c *Coordinator) probe(m *member) {
	defer c.wg.Done()
	hr, err := m.client.Health()
	c.mu.Lock()
	m.probing = false
	if err != nil {
		orphans := c.markDownLocked(m)
		c.mu.Unlock()
		for _, o := range orphans {
			c.redispatch(o)
		}
		return
	}
	wasRoutable := m.healthy && !m.draining
	if !m.healthy {
		m.healthy = true
		m.gHealthy.Set(1)
	}
	m.draining = hr.Draining
	m.policyVersion = hr.PolicyVersion
	routable := m.healthy && !m.draining
	// A member that just became unroutable may hold queued tickets that
	// no in-flight submit will ever come back to strip (e.g. the drain
	// was observed by probe before anything dispatched). Strip them here
	// or they are stranded forever.
	var orphans []*ticket
	if !routable {
		orphans = c.takeQueueLocked(m)
	}
	c.mu.Unlock()
	for _, o := range orphans {
		c.redispatch(o)
	}
	if routable && !wasRoutable {
		kick(m) // rejoined: resume dispatching
	}
}

// NodeStatus is one member's /cluster view.
type NodeStatus struct {
	ID            string  `json:"id"`
	Healthy       bool    `json:"healthy"`
	Draining      bool    `json:"draining,omitempty"`
	PolicyVersion int     `json:"policy_version"`
	InFlight      int     `json:"in_flight"`
	Queued        int     `json:"queued"`
	PredLoadSecs  float64 `json:"pred_load_secs"`
	Routed        int64   `json:"routed"`
	Completed     int64   `json:"completed"`
	Failed        int64   `json:"failed"`
}

// Status is the /cluster payload: per-node health plus the
// coordinator's conservation counters (routed == completed + failed
// once drained; redispatched counts extra routing legs, not queries).
type Status struct {
	Policy       string       `json:"policy"`
	Nodes        []NodeStatus `json:"nodes"`
	Routed       int64        `json:"routed"`
	Completed    int64        `json:"completed"`
	Failed       int64        `json:"failed"`
	Redispatched int64        `json:"redispatched"`
	Unroutable   int64        `json:"unroutable"`
}

// Status snapshots the cluster.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Policy:       c.opts.Policy.Name(),
		Routed:       c.routed,
		Completed:    c.completed,
		Failed:       c.failed,
		Redispatched: c.redispatched,
		Unroutable:   c.unroutable,
	}
	for _, m := range c.members {
		st.Nodes = append(st.Nodes, NodeStatus{
			ID: m.id, Healthy: m.healthy, Draining: m.draining,
			PolicyVersion: m.policyVersion,
			InFlight:      m.started, Queued: len(m.queue), PredLoadSecs: m.predLoad,
			Routed: m.routed, Completed: m.completed, Failed: m.failed,
		})
	}
	return st
}

// Close shuts the coordinator down: new routes are refused, queued
// tickets fail with ErrShutdown, and dispatched calls are drained
// (bounded by drainTimeout; <= 0 waits indefinitely). Node clients are
// closed. It reports whether the drain completed. Shut the front door
// down first — its drain resolves in-flight Run calls through the
// normal path.
func (c *Coordinator) Close(drainTimeout time.Duration) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.pending.Wait(drainTimeout)
	}
	c.closed = true
	var orphans []*ticket
	for _, m := range c.members {
		orphans = append(orphans, c.takeQueueLocked(m)...)
	}
	members := c.members
	started := c.started
	c.mu.Unlock()

	for _, t := range orphans {
		c.mu.Lock()
		c.failed++
		c.cFailed.Inc()
		c.mu.Unlock()
		t.done <- submitOutcome{err: ErrShutdown}
	}
	drained := c.pending.Wait(drainTimeout)
	close(c.quit)
	if started {
		c.wg.Wait()
	}
	for _, m := range members {
		m.client.Close() //nolint:errcheck
	}
	return drained
}
