package cluster

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

func p99ns(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := (len(lat) * 99) / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return float64(lat[idx])
}

// routingRun pushes one seeded skewed trace through a fresh cluster
// under the given policy and returns the latencies of the light
// queries — the ones that suffer when routing parks them behind a
// heavy query's node.
func routingRun(b *testing.B, policy Policy) []time.Duration {
	b.Helper()
	const (
		nodes      = 4
		perUnit    = 20 * time.Microsecond
		queries    = 400
		workers    = 24
		heavyEvery = 8 // every 8th query is 25x the work of the rest
		lightUnits = 2
		heavyUnits = 50
	)
	ns := make([]*Node, nodes)
	for i := range ns {
		ns[i] = testNode(b, fmt.Sprintf("node-%d", i), unitSleepBackend(perUnit))
	}
	lc, err := NewLocalCluster(Options{Policy: policy, MaxPerNode: 2}, ns...)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close(5 * time.Second)

	// Skewed tenants: two tenants produce all the heavy queries.
	work := make(chan int, queries)
	for i := 0; i < queries; i++ {
		work <- i
	}
	close(work)
	var mu sync.Mutex
	light := make([]time.Duration, 0, queries)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				units, tenant := lightUnits, fmt.Sprintf("tenant-%d", i%6)
				if i%heavyEvery == 0 {
					units, tenant = heavyUnits, fmt.Sprintf("heavy-%d", i%2)
				}
				start := time.Now()
				if _, err := lc.Coord.Run(testQuery(tenant, units)); err != nil {
					b.Errorf("query %d failed: %v", i, err)
					continue
				}
				if units == lightUnits {
					mu.Lock()
					light = append(light, time.Since(start))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	st := lc.Coord.Status()
	if st.Completed != queries || st.Failed != 0 {
		b.Fatalf("conservation broken in bench: %+v", st)
	}
	return light
}

// BenchmarkClusterRouting replays the same seeded skewed trace (1 in 8
// queries carries 25x the work, concentrated on two tenants) against
// the round-robin baseline and the load-aware least-loaded policy,
// reporting the p99 latency of the *light* queries (p99-ns). Routing
// by predicted O-DUR must keep light queries away from nodes chewing
// heavy ones — that pair is the recorded A/B in BENCH_hotpath.json.
func BenchmarkClusterRouting(b *testing.B) {
	arms := []struct {
		name   string
		policy func() Policy
	}{
		{"round-robin", func() Policy { return &RoundRobin{} }},
		{"least-loaded", func() Policy { return LeastLoaded{} }},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			var p99Sum float64
			for i := 0; i < b.N; i++ {
				p99Sum += p99ns(routingRun(b, arm.policy()))
			}
			b.ReportMetric(p99Sum/float64(b.N), "p99-ns")
		})
	}
}
