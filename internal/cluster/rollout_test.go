package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/frontdoor"
	"repro/internal/heuristics"
	"repro/internal/policystore"
	"repro/internal/serving"
)

// policyNode builds a node with a hot policy slot whose loader fails
// for the versions listed in badVersions — the corrupt-checkpoint
// stand-in for the rollback test.
func policyNode(t *testing.T, id string, badVersions ...int) *Node {
	t.Helper()
	hot := serving.NewHotAgent(heuristics.FIFO{}, 0)
	loader := func(ck *policystore.Checkpoint) (engine.Scheduler, error) {
		for _, v := range badVersions {
			if ck.Manifest.Version == v {
				return nil, fmt.Errorf("params blob rejected")
			}
		}
		return heuristics.FIFO{}, nil
	}
	n, err := NewNode(NodeOptions{
		ID:      id,
		Backend: frontdoor.BackendFunc(func(q *frontdoor.Query) (*frontdoor.Result, error) { return nil, nil }),
		Hot:     hot,
		Loader:  loader,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRolloutConvergesAndRollsBack drives the centralized rollout
// protocol: promoting v1 converges every node; promoting a version one
// node cannot load reports a partial rollout, leaves that node on its
// previous policy (per-node rollback), and does not disturb the nodes
// that installed it.
func TestRolloutConvergesAndRollsBack(t *testing.T) {
	store, err := policystore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	nodes := []*Node{
		policyNode(t, "node-0"),
		policyNode(t, "node-1", 2), // v2's params are poison for this node
		policyNode(t, "node-2"),
	}
	lc, err := NewLocalCluster(Options{HeartbeatInterval: 20 * time.Millisecond}, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close(time.Second)

	// No CURRENT pointer yet: sync is a no-op.
	if err := lc.Coord.SyncPolicy(store); err != nil {
		t.Fatalf("sync against an empty store: %v", err)
	}

	v1, err := store.Put(policystore.PutOptions{Params: []byte("params-v1"), Source: "train"})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Promote(v1); err != nil {
		t.Fatal(err)
	}
	if err := lc.Coord.SyncPolicy(store); err != nil {
		t.Fatalf("v1 rollout: %v", err)
	}
	for _, n := range nodes {
		if got := n.PolicyVersion(); got != v1 {
			t.Fatalf("node %s serves v%d after rollout, want v%d", n.ID(), got, v1)
		}
	}
	// Every live node reports the new version through cluster status
	// (the install path updates it; heartbeats keep it fresh).
	for _, ns := range lc.Coord.Status().Nodes {
		if ns.PolicyVersion != v1 {
			t.Fatalf("status shows node %s on v%d, want v%d", ns.ID, ns.PolicyVersion, v1)
		}
	}

	v2, err := store.Put(policystore.PutOptions{Params: []byte("params-v2"), Source: "train", Parent: v1})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Promote(v2); err != nil {
		t.Fatal(err)
	}
	err = lc.Coord.SyncPolicy(store)
	var partial *PartialRolloutError
	if !errors.As(err, &partial) {
		t.Fatalf("v2 rollout returned %v, want PartialRolloutError", err)
	}
	if partial.Version != v2 || len(partial.Failed) != 1 {
		t.Fatalf("partial rollout %+v, want exactly node-1 failed at v%d", partial, v2)
	}
	if _, ok := partial.Failed["node-1"]; !ok {
		t.Fatalf("partial rollout blames %v, want node-1", partial.Failed)
	}
	// The failed node rolled back (kept v1); the others converged.
	if got := nodes[1].PolicyVersion(); got != v1 {
		t.Fatalf("failed node serves v%d, want rollback to v%d", got, v1)
	}
	for _, i := range []int{0, 2} {
		if got := nodes[i].PolicyVersion(); got != v2 {
			t.Fatalf("node %s serves v%d, want v%d", nodes[i].ID(), got, v2)
		}
	}

	// The retry loop re-pushes only the divergent node: heal the
	// store with a v3 everyone accepts and watch it converge.
	v3, err := store.Put(policystore.PutOptions{Params: []byte("params-v3"), Source: "train", Parent: v2})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Promote(v3); err != nil {
		t.Fatal(err)
	}
	stop := lc.Coord.WatchPolicy(store, 10*time.Millisecond, nil)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		all := true
		for _, n := range nodes {
			if n.PolicyVersion() != v3 {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged on v%d: %v %v %v", v3,
				nodes[0].PolicyVersion(), nodes[1].PolicyVersion(), nodes[2].PolicyVersion())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestInstallWithoutPolicySlot pins the error for nodes without a hot
// agent — rollout against a heterogeneous fleet reports them instead
// of crashing.
func TestInstallWithoutPolicySlot(t *testing.T) {
	n := testNode(t, "bare", frontdoor.BackendFunc(func(q *frontdoor.Query) (*frontdoor.Result, error) { return nil, nil }))
	if err := n.Install(1, []byte("p"), nil); err == nil {
		t.Fatal("install on a node without a policy slot succeeded")
	}
}
