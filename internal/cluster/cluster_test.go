package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/frontdoor"
	"repro/internal/heuristics"
	"repro/internal/rpcsched"
)

// unitSleepBackend simulates execution: sleep proportional to the
// plan's total work units, so predicted load and actual load agree.
func unitSleepBackend(perUnit time.Duration) frontdoor.BackendFunc {
	return func(q *frontdoor.Query) (*frontdoor.Result, error) {
		units := 0
		for _, ow := range q.Ops {
			units += ow.Units
		}
		time.Sleep(time.Duration(units) * perUnit)
		return nil, nil
	}
}

func testNode(t testing.TB, id string, backend frontdoor.Backend) *Node {
	t.Helper()
	n, err := NewNode(NodeOptions{ID: id, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testQuery(tenant string, units int) *frontdoor.Query {
	return &frontdoor.Query{
		Tenant: tenant,
		Class:  frontdoor.ClassThroughput,
		Ops:    []costmodel.OpWork{{Key: 1, Units: units}},
	}
}

func TestPolicies(t *testing.T) {
	views := []NodeView{
		{Index: 0, ID: "a", Started: 1, PredLoad: 0.5},
		{Index: 2, ID: "b", Started: 3, PredLoad: 0.1},
		{Index: 5, ID: "c", Started: 0, PredLoad: 0.1},
	}
	if got := (LeastLoaded{}).Pick(views, "t"); got != 2 {
		t.Fatalf("least-loaded picked %d, want 2 (min load, fewer started)", got)
	}
	rr := &RoundRobin{}
	seen := map[int]int{}
	for i := 0; i < 6; i++ {
		seen[rr.Pick(views, "t")]++
	}
	if seen[0] != 2 || seen[1] != 2 || seen[2] != 2 {
		t.Fatalf("round-robin distribution %v, want uniform", seen)
	}
	th := TenantHash{}
	first := th.Pick(views, "tenant-7")
	for i := 0; i < 10; i++ {
		if th.Pick(views, "tenant-7") != first {
			t.Fatal("tenant-hash is not stable for a fixed tenant and view set")
		}
	}
	spread := map[int]bool{}
	for i := 0; i < 32; i++ {
		spread[th.Pick(views, fmt.Sprintf("tenant-%d", i))] = true
	}
	if len(spread) < 2 {
		t.Fatal("tenant-hash sent 32 tenants to one node")
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("PolicyByName accepted an unknown policy")
	}
}

// TestClusterRoutes200QueriesZeroLost is the 2-node smoke: every
// submitted query reaches exactly one terminal state and the
// coordinator's conservation counters agree.
func TestClusterRoutes200QueriesZeroLost(t *testing.T) {
	lc, err := NewLocalCluster(Options{MaxPerNode: 4, HeartbeatInterval: 50 * time.Millisecond},
		testNode(t, "node-0", unitSleepBackend(20*time.Microsecond)),
		testNode(t, "node-1", unitSleepBackend(20*time.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := lc.Coord.Run(testQuery(fmt.Sprintf("tenant-%d", i%4), 1+i%8)); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("query failed: %v", err)
	}
	st := lc.Coord.Status()
	if st.Routed != n || st.Completed != n || st.Failed != 0 {
		t.Fatalf("conservation broken: routed=%d completed=%d failed=%d (want %d/%d/0)",
			st.Routed, st.Completed, st.Failed, n, n)
	}
	var nodeTotal int64
	for _, ns := range st.Nodes {
		nodeTotal += ns.Completed
		if ns.InFlight != 0 || ns.Queued != 0 {
			t.Fatalf("node %s still has work after all queries resolved: %+v", ns.ID, ns)
		}
	}
	if nodeTotal != n {
		t.Fatalf("per-node completions sum to %d, want %d", nodeTotal, n)
	}
	if !lc.Close(time.Second) {
		t.Fatal("coordinator drain timed out")
	}
}

// TestFrontDoorOverCluster mounts the coordinator as a front door
// backend: admission happens centrally, execution is routed, and the
// conservation invariants hold at both layers.
func TestFrontDoorOverCluster(t *testing.T) {
	lc, err := NewLocalCluster(Options{MaxPerNode: 4},
		testNode(t, "node-0", unitSleepBackend(10*time.Microsecond)),
		testNode(t, "node-1", unitSleepBackend(10*time.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	fd, err := frontdoor.New(frontdoor.Options{Backend: lc.Coord, MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 120
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		tk, err := fd.Submit(testQuery("tenant-a", 2))
		if err != nil {
			continue // rejected: still a terminal state
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-tk.Done()
		}()
	}
	wg.Wait()
	if !fd.Shutdown(5 * time.Second) {
		t.Fatal("front door drain timed out")
	}
	fst := fd.Stats()
	if fst.Admitted+fst.Shed+fst.Rejected != fst.Submitted {
		t.Fatalf("front door conservation broken: %+v", fst)
	}
	cst := lc.Coord.Status()
	if cst.Completed+cst.Failed != cst.Routed {
		t.Fatalf("cluster conservation broken: %+v", cst)
	}
	if cst.Completed != fst.Admitted {
		t.Fatalf("admitted %d queries but cluster completed %d", fst.Admitted, cst.Completed)
	}
	if !lc.Close(time.Second) {
		t.Fatal("coordinator drain timed out")
	}
}

// TestDrainingNodeUnroutable: a node that starts draining refuses its
// next query; the coordinator re-dispatches it and routes everything
// after it to the survivors. No query is lost to the drain.
func TestDrainingNodeUnroutable(t *testing.T) {
	n0 := testNode(t, "node-0", unitSleepBackend(10*time.Microsecond))
	n1 := testNode(t, "node-1", unitSleepBackend(10*time.Microsecond))
	lc, err := NewLocalCluster(Options{MaxPerNode: 2}, n0, n1)
	if err != nil {
		t.Fatal(err)
	}
	if !n1.Drain(time.Second) {
		t.Fatal("node drain timed out")
	}
	const n = 60
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := lc.Coord.Run(testQuery("t", 1)); err != nil {
				t.Errorf("query %d failed against a cluster with a live node: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := lc.Coord.Status()
	if st.Completed != n {
		t.Fatalf("completed %d of %d", st.Completed, n)
	}
	for _, ns := range st.Nodes {
		if ns.ID == "node-1" && ns.Completed > 0 {
			t.Fatalf("draining node executed %d queries", ns.Completed)
		}
	}
	if !lc.Close(time.Second) {
		t.Fatal("coordinator drain timed out")
	}
}

// TestRPCNodeEndToEnd runs the real wire: a node mounted on an
// rpcsched server over TCP, an RPCClient dialed with retry, queries
// routed and health probed across the socket.
func TestRPCNodeEndToEnd(t *testing.T) {
	node := testNode(t, "tcp-node", unitSleepBackend(10*time.Microsecond))
	srv, err := rpcsched.NewServer(heuristics.FIFO{}, rpcsched.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := MountNode(srv, node); err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer srv.Close()

	client, err := DialNode("tcp", lis.Addr().String(), rpcsched.RetryOptions{Attempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	coord := New(Options{MaxPerNode: 4})
	if err := coord.AddNode(node.ID(), client); err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	const n = 20
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := coord.Run(testQuery("t", 3)); err != nil {
				t.Errorf("RPC query failed: %v", err)
			}
		}()
	}
	wg.Wait()
	hr, err := client.Health()
	if err != nil {
		t.Fatalf("health over TCP: %v", err)
	}
	if hr.ID != "tcp-node" || hr.Completed != n {
		t.Fatalf("health reply %+v, want ID=tcp-node completed=%d", hr, n)
	}
	st := coord.Status()
	if st.Completed != n || st.Failed != 0 {
		t.Fatalf("conservation over TCP: %+v", st)
	}
	if !coord.Close(time.Second) {
		t.Fatal("coordinator drain timed out")
	}
}

// TestRunAgainstEmptyOrClosedCluster pins the terminal errors: no
// routable node and post-shutdown submissions fail fast, counted as
// failed (conservation needs every Run to resolve).
func TestRunAgainstEmptyOrClosedCluster(t *testing.T) {
	lc, err := NewLocalCluster(Options{HeartbeatInterval: 20 * time.Millisecond},
		testNode(t, "only", unitSleepBackend(time.Microsecond)))
	if err != nil {
		t.Fatal(err)
	}
	lc.Kill(0)
	// Wait for the heartbeat to notice the kill, then route: no node.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if !lc.Coord.Status().Nodes[0].Healthy {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := lc.Coord.Run(testQuery("t", 1)); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Run with all nodes down: %v, want ErrNoNodes", err)
	}
	lc.Close(time.Second)
	if _, err := lc.Coord.Run(testQuery("t", 1)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Run after Close: %v, want ErrShutdown", err)
	}
	st := lc.Coord.Status()
	if st.Failed != 2 {
		t.Fatalf("failed=%d, want 2 (both refused queries counted)", st.Failed)
	}
}
