package cluster

import (
	"time"
)

// LocalCluster is the in-process multi-node harness tests and
// benchmarks drive: N nodes behind LocalClients (with kill switches
// for failure injection) under one coordinator. No sockets — a 3-node
// kill test runs under -race in milliseconds.
type LocalCluster struct {
	Coord *Coordinator
	Nodes []*Node

	clients []*LocalClient
}

// NewLocalCluster wires the nodes to a started coordinator.
func NewLocalCluster(opts Options, nodes ...*Node) (*LocalCluster, error) {
	lc := &LocalCluster{Coord: New(opts), Nodes: nodes}
	for _, n := range nodes {
		client := NewLocalClient(n)
		if err := lc.Coord.AddNode(n.ID(), client); err != nil {
			return nil, err
		}
		lc.clients = append(lc.clients, client)
	}
	if err := lc.Coord.Start(); err != nil {
		return nil, err
	}
	return lc, nil
}

// Kill fails node i: every call to it — including in-flight ones —
// errors like a dead TCP peer.
func (lc *LocalCluster) Kill(i int) { lc.clients[i].Kill() }

// Revive brings node i back; the next heartbeat marks it routable.
func (lc *LocalCluster) Revive(i int) { lc.clients[i].Revive() }

// Client returns node i's LocalClient.
func (lc *LocalCluster) Client(i int) *LocalClient { return lc.clients[i] }

// Close drains and shuts the coordinator down.
func (lc *LocalCluster) Close(drainTimeout time.Duration) bool {
	return lc.Coord.Close(drainTimeout)
}
