package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/policystore"
)

// PartialRolloutError reports a policy push that did not converge:
// some nodes installed the new version, the listed ones kept their
// previous policy (install failure or transport failure). The next
// SyncPolicy pass retries exactly the divergent nodes.
type PartialRolloutError struct {
	// Version is the checkpoint being rolled out.
	Version int
	// Failed maps node ID to why its install did not land.
	Failed map[string]string
}

// Error implements error.
func (e *PartialRolloutError) Error() string {
	ids := make([]string, 0, len(e.Failed))
	for id := range e.Failed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s: %s", id, e.Failed[id])
	}
	return fmt.Sprintf("cluster: rollout of v%d failed on %d node(s): %s",
		e.Version, len(ids), strings.Join(parts, "; "))
}

// SyncPolicy pushes the store's CURRENT version to every routable node
// not already serving it (centralized rollout mode). Nodes that
// succeed flip to the new version immediately; a node whose install
// fails keeps its previous policy (its serving slot is untouched) and
// is reported in the returned *PartialRolloutError — and retried on
// the next sync, since its heartbeat keeps advertising the old
// version. No CURRENT version (a store before the first Promote) is a
// no-op.
func (c *Coordinator) SyncPolicy(store *policystore.Store) error {
	active, err := store.Active()
	if err != nil {
		return err
	}
	if active == 0 {
		return nil
	}
	c.mu.Lock()
	var todo []*member
	for _, m := range c.members {
		if m.healthy && !m.draining && m.policyVersion != active {
			todo = append(todo, m)
		}
	}
	c.mu.Unlock()
	if len(todo) == 0 {
		return nil
	}
	ck, err := store.Get(active)
	if err != nil {
		return err
	}
	req := &InstallRequest{Version: active, Params: ck.Params, Experience: ck.Experience}
	failed := make(map[string]string)
	for _, m := range todo {
		reply, err := m.client.Install(req)
		if err != nil {
			failed[m.id] = err.Error() // transport: the heartbeat will mark it down
			continue
		}
		if reply.Err != "" {
			failed[m.id] = reply.Err
			continue
		}
		c.mu.Lock()
		m.policyVersion = active
		c.mu.Unlock()
	}
	if len(failed) > 0 {
		return &PartialRolloutError{Version: active, Failed: failed}
	}
	return nil
}

// WatchPolicy runs SyncPolicy every interval until the returned stop
// function is called or the coordinator closes — the centralized
// rollout mode's main loop. onErr (may be nil) receives each sync
// error, including *PartialRolloutError for incomplete pushes. The
// flag-selected alternative — independent-learner mode — is simply not
// running this watcher: each node keeps whatever policy it learns or
// loads locally.
func (c *Coordinator) WatchPolicy(store *policystore.Store, interval time.Duration, onErr func(error)) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			if err := c.SyncPolicy(store); err != nil && onErr != nil {
				onErr(err)
			}
			select {
			case <-ticker.C:
			case <-done:
				return
			case <-c.quit:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
