package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frontdoor"
	"repro/internal/rpcsched"
)

// Wire types for the ClusterNode RPC service. Query-level failures
// travel in SubmitReply.Err, not as RPC errors, so a non-nil error
// from any NodeClient call unambiguously means the transport (and
// therefore the node) failed — the signal the coordinator re-dispatches
// on.

// SubmitRequest routes one admitted query to a node.
type SubmitRequest struct {
	Req frontdoor.Request
}

// SubmitReply is the node's execution report.
type SubmitReply struct {
	// Err is the query-level failure ("" = success): validation, plan
	// lookup, execution. Terminal — the coordinator does not retry it.
	Err string
	// Draining reports the node refused the query because it is
	// draining; the coordinator re-dispatches elsewhere.
	Draining bool
	// OpDurations/OpMemory feed the coordinator-side cost model
	// (frontdoor.Result shape).
	OpDurations map[int]float64
	OpMemory    map[int]float64
}

// HealthArgs is the (empty) Health request.
type HealthArgs struct{}

// HealthReply is one node's heartbeat snapshot.
type HealthReply struct {
	ID            string
	Draining      bool
	PolicyVersion int
	InFlight      int
	Completed     int64
	Failed        int64
}

// InstallRequest pushes one policy checkpoint to a node.
type InstallRequest struct {
	Version    int
	Params     []byte
	Experience []byte
}

// InstallReply reports the install. Err != "" means the node kept its
// previous policy (per-node rollback).
type InstallReply struct {
	Err string
}

// DrainArgs bounds the drain wait.
type DrainArgs struct {
	TimeoutMS int64
}

// DrainReply reports whether in-flight queries drained in time.
type DrainReply struct {
	Drained bool
}

// serveSubmit is the shared Submit implementation behind both the RPC
// receiver and the in-process LocalClient.
func (n *Node) serveSubmit(req *SubmitRequest, reply *SubmitReply) {
	q, err := req.Req.Validate()
	if err != nil {
		reply.Err = err.Error()
		return
	}
	res, err := n.Run(q)
	if err != nil {
		if errors.Is(err, ErrDraining) {
			reply.Draining = true
			return
		}
		reply.Err = err.Error()
		return
	}
	if res != nil {
		reply.OpDurations = res.OpDurations
		reply.OpMemory = res.OpMemory
	}
}

// NodeRPC is the net/rpc receiver exposing a Node, mounted on an
// rpcsched.Server via MountNode so cluster traffic shares the
// scheduler server's connections, I/O deadlines, and shutdown drain.
type NodeRPC struct {
	n *Node
}

// MountNode registers the node on srv under the "ClusterNode" service
// name.
func MountNode(srv *rpcsched.Server, n *Node) error {
	return srv.RegisterName("ClusterNode", &NodeRPC{n: n})
}

// Submit executes one routed query (blocking; net/rpc runs each call
// in its own goroutine).
func (r *NodeRPC) Submit(req *SubmitRequest, reply *SubmitReply) error {
	r.n.serveSubmit(req, reply)
	return nil
}

// Health answers the coordinator's heartbeat.
func (r *NodeRPC) Health(_ *HealthArgs, reply *HealthReply) error {
	*reply = r.n.Health()
	return nil
}

// Install swaps the node's serving policy to the pushed checkpoint.
func (r *NodeRPC) Install(req *InstallRequest, reply *InstallReply) error {
	if err := r.n.Install(req.Version, req.Params, req.Experience); err != nil {
		reply.Err = err.Error()
	}
	return nil
}

// Drain marks the node unroutable and waits for in-flight queries.
func (r *NodeRPC) Drain(args *DrainArgs, reply *DrainReply) error {
	reply.Drained = r.n.Drain(time.Duration(args.TimeoutMS) * time.Millisecond)
	return nil
}

// NodeClient is the coordinator's handle on one node. A non-nil error
// from any call means the transport failed (node presumed down);
// query- and install-level failures arrive inside the replies.
type NodeClient interface {
	Submit(req *SubmitRequest) (*SubmitReply, error)
	Health() (*HealthReply, error)
	Install(req *InstallRequest) (*InstallReply, error)
	Close() error
}

// ErrNodeDown is the transport error a killed LocalClient returns — the
// in-process stand-in for a refused or reset connection.
var ErrNodeDown = errors.New("cluster: node down")

// LocalClient is the in-process NodeClient the test/bench harness uses:
// direct calls into a Node, plus a Kill switch that makes every call —
// including ones already in flight — fail like a dead TCP peer.
type LocalClient struct {
	n      *Node
	killed atomic.Bool
}

// NewLocalClient wraps a node.
func NewLocalClient(n *Node) *LocalClient { return &LocalClient{n: n} }

// Kill makes all subsequent (and in-flight) calls fail with
// ErrNodeDown, simulating a node crash: a reply computed after the
// kill is dropped, exactly like a response lost on a closed socket.
func (c *LocalClient) Kill() { c.killed.Store(true) }

// Revive clears the kill switch (a restarted node).
func (c *LocalClient) Revive() { c.killed.Store(false) }

// Submit implements NodeClient.
func (c *LocalClient) Submit(req *SubmitRequest) (*SubmitReply, error) {
	if c.killed.Load() {
		return nil, ErrNodeDown
	}
	var reply SubmitReply
	c.n.serveSubmit(req, &reply)
	if c.killed.Load() {
		return nil, ErrNodeDown // node died before the reply made it out
	}
	return &reply, nil
}

// Health implements NodeClient.
func (c *LocalClient) Health() (*HealthReply, error) {
	if c.killed.Load() {
		return nil, ErrNodeDown
	}
	hr := c.n.Health()
	return &hr, nil
}

// Install implements NodeClient.
func (c *LocalClient) Install(req *InstallRequest) (*InstallReply, error) {
	if c.killed.Load() {
		return nil, ErrNodeDown
	}
	var reply InstallReply
	if err := c.n.Install(req.Version, req.Params, req.Experience); err != nil {
		reply.Err = err.Error()
	}
	return &reply, nil
}

// Close implements NodeClient (no-op).
func (c *LocalClient) Close() error { return nil }

// RPCClient is the TCP NodeClient: it holds one connection to a node's
// rpcsched server and lazily re-dials (with retry backoff) after any
// call error, so a node restart heals on the next heartbeat instead of
// poisoning the member forever.
type RPCClient struct {
	network, addr string
	retry         rpcsched.RetryOptions

	mu sync.Mutex
	c  *rpcsched.Client
}

// DialNode connects to a node's rpcsched server with retry backoff.
func DialNode(network, addr string, retry rpcsched.RetryOptions) (*RPCClient, error) {
	c, err := rpcsched.DialRetry(network, addr, retry)
	if err != nil {
		return nil, err
	}
	return &RPCClient{network: network, addr: addr, retry: retry, c: c}, nil
}

// Addr returns the node's address.
func (c *RPCClient) Addr() string { return c.addr }

func (c *RPCClient) call(method string, args, reply any) error {
	c.mu.Lock()
	cli := c.c
	c.mu.Unlock()
	if cli == nil {
		fresh, err := rpcsched.DialRetry(c.network, c.addr, c.retry)
		if err != nil {
			return err
		}
		c.mu.Lock()
		if c.c == nil {
			c.c = fresh
		} else {
			fresh.Close() // lost a re-dial race; use the winner
		}
		cli = c.c
		c.mu.Unlock()
	}
	err := cli.Call("ClusterNode."+method, args, reply)
	if err != nil {
		// Connection presumed broken: drop it so the next call re-dials.
		c.mu.Lock()
		if c.c == cli {
			c.c = nil
		}
		c.mu.Unlock()
		cli.Close()
	}
	return err
}

// Submit implements NodeClient.
func (c *RPCClient) Submit(req *SubmitRequest) (*SubmitReply, error) {
	var reply SubmitReply
	if err := c.call("Submit", req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Health implements NodeClient.
func (c *RPCClient) Health() (*HealthReply, error) {
	var reply HealthReply
	if err := c.call("Health", &HealthArgs{}, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Install implements NodeClient.
func (c *RPCClient) Install(req *InstallRequest) (*InstallReply, error) {
	var reply InstallReply
	if err := c.call("Install", req, &reply); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Close implements NodeClient.
func (c *RPCClient) Close() error {
	c.mu.Lock()
	cli := c.c
	c.c = nil
	c.mu.Unlock()
	if cli != nil {
		return cli.Close()
	}
	return nil
}
