package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// NodeView is what a routing policy sees of one routable node: its
// queue occupancy and the predicted O-DUR seconds of work already
// routed to it (queued + executing), priced by the coordinator's cost
// model.
type NodeView struct {
	// Index is the node's position in the coordinator's member list.
	Index int
	// ID names the node.
	ID string
	// Started counts queries dispatched and awaiting a reply.
	Started int
	// Queued counts queries routed but not yet dispatched.
	Queued int
	// PredLoad is the predicted total duration (seconds) of the node's
	// queued + started work.
	PredLoad float64
}

// Policy picks a node for one query. Pick receives only routable
// (healthy, non-draining) views, never an empty slice, and returns an
// index INTO views. Implementations must be safe for concurrent use.
type Policy interface {
	Name() string
	Pick(views []NodeView, tenant string) int
}

// LeastLoaded routes to the node with the least predicted in-flight
// work — the workload-aware policy: a node chewing one predicted-long
// query receives fewer new ones than a node draining short queries,
// which plain occupancy counting cannot see. Ties break toward lower
// occupancy, then lower index (deterministic).
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Policy.
func (LeastLoaded) Pick(views []NodeView, _ string) int {
	best := 0
	for i := 1; i < len(views); i++ {
		v, b := &views[i], &views[best]
		switch {
		case v.PredLoad < b.PredLoad:
			best = i
		case v.PredLoad == b.PredLoad && v.Started+v.Queued < b.Started+b.Queued:
			best = i
		}
	}
	return best
}

// RoundRobin cycles through the routable nodes — the workload-blind
// baseline the routing A/B benchmark compares least-loaded against.
type RoundRobin struct {
	n atomic.Uint64
}

// Name implements Policy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (r *RoundRobin) Pick(views []NodeView, _ string) int {
	return int((r.n.Add(1) - 1) % uint64(len(views)))
}

// TenantHash routes each tenant to a stable node (FNV-1a over the
// tenant name, modulo the live set), keeping a tenant's working set —
// buffer-pool residency, cost-model windows — on one node. Membership
// changes rehash tenants over the surviving nodes.
type TenantHash struct{}

// Name implements Policy.
func (TenantHash) Name() string { return "tenant-hash" }

// Pick implements Policy.
func (TenantHash) Pick(views []NodeView, tenant string) int {
	h := fnv.New64a()
	h.Write([]byte(tenant)) //nolint:errcheck
	return int(h.Sum64() % uint64(len(views)))
}

// PolicyByName resolves a routing policy from its CLI name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "least-loaded":
		return LeastLoaded{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	case "tenant-hash":
		return TenantHash{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (least-loaded, round-robin, tenant-hash)", name)
}
