// Package cluster scales the single-process query stack out to a
// coordinator + N worker nodes. Each worker node wraps a live engine
// behind a frontdoor.Backend plus a hot-swappable policy slot and
// answers Submit/Health/Install/Drain over rpcsched connections; the
// coordinator implements frontdoor.Backend itself, so the existing
// admission front door becomes the cluster's front door — queries are
// admitted centrally, then routed to a node by a pluggable policy
// (least predicted load, tenant affinity, round-robin baseline).
//
// Failure semantics: a transport-level error on any node call marks
// the node unroutable and every query routed to it but not yet
// completed is re-dispatched to the surviving nodes under a bounded
// attempt budget, so the coordinator-level conservation invariant
//
//	submitted == completed + failed
//
// holds through node kills (execution is at-least-once: a query whose
// node died mid-run re-executes elsewhere). Health probes run on a
// heartbeat; a probe that succeeds against a previously-down node
// marks it routable again, which is how a restarted node rejoins.
//
// Policy rollout rides the existing lifecycle: the coordinator watches
// the policystore CURRENT pointer and pushes new checkpoint versions
// to every node's serving.HotAgent. A node whose install fails keeps
// serving its previous policy (install-or-rollback is per node); the
// coordinator reports the partial rollout and retries on the next
// sync, so the cluster either converges or says exactly which nodes
// did not.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/frontdoor"
	"repro/internal/metrics"
	"repro/internal/policystore"
	"repro/internal/provenance"
	"repro/internal/rpcsched"
	"repro/internal/serving"
)

// ErrDraining is returned by Node.Run while the node is draining; the
// coordinator treats it as "unroutable, re-dispatch elsewhere" rather
// than a query failure.
var ErrDraining = errors.New("cluster: node draining")

// NodeOptions configures a worker node.
type NodeOptions struct {
	// ID names the node in health reports, provenance records, and
	// coordinator status (required).
	ID string
	// Backend executes routed queries (required) — typically
	// frontdoor.NewPlanPool over an EngineBackend for real nodes, a
	// stub for tests.
	Backend frontdoor.Backend
	// Hot is the node's serving policy slot; Install swaps it. Nil
	// disables policy rollout on this node (Install errors).
	Hot *serving.HotAgent
	// Loader builds a scheduler from a pushed checkpoint. Required when
	// Hot is set.
	Loader func(ck *policystore.Checkpoint) (engine.Scheduler, error)
	// Provenance, when set, is stamped with the node ID so spilled
	// traces from many nodes can be merged and still attributed.
	Provenance *provenance.Recorder
	// Metrics instruments the node (nil disables).
	Metrics *metrics.Registry
}

// Node is one worker: it executes queries the coordinator routes to it
// and hosts the policy slot rollouts target. Safe for concurrent use.
type Node struct {
	opts NodeOptions

	mu                sync.Mutex
	inflight          int
	draining          bool
	completed, failed int64

	pending rpcsched.Inflight

	gInFlight *metrics.Gauge
	cComplete *metrics.Counter
	cFailed   *metrics.Counter
}

// NewNode builds a worker node.
func NewNode(opts NodeOptions) (*Node, error) {
	if opts.ID == "" {
		return nil, fmt.Errorf("cluster: NodeOptions.ID is required")
	}
	if opts.Backend == nil {
		return nil, fmt.Errorf("cluster: NodeOptions.Backend is required")
	}
	if opts.Hot != nil && opts.Loader == nil {
		return nil, fmt.Errorf("cluster: NodeOptions.Loader is required with Hot")
	}
	n := &Node{opts: opts}
	opts.Provenance.SetNodeID(opts.ID)
	if reg := opts.Metrics; reg != nil {
		n.gInFlight = reg.Gauge("node_inflight")
		n.cComplete = reg.Counter("node_completed_total")
		n.cFailed = reg.Counter("node_failed_total")
	}
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.opts.ID }

// Run executes one routed query on the backend. While draining it
// refuses with ErrDraining without touching the failure counters —
// refusal is a routing signal, not an execution outcome.
func (n *Node) Run(q *frontdoor.Query) (*frontdoor.Result, error) {
	n.mu.Lock()
	if n.draining {
		n.mu.Unlock()
		return nil, ErrDraining
	}
	n.inflight++
	n.gInFlight.Set(float64(n.inflight))
	n.mu.Unlock()
	n.pending.Add()

	res, err := n.opts.Backend.Run(q)

	n.pending.Done()
	n.mu.Lock()
	n.inflight--
	n.gInFlight.Set(float64(n.inflight))
	if err != nil {
		n.failed++
		n.cFailed.Inc()
	} else {
		n.completed++
		n.cComplete.Inc()
	}
	n.mu.Unlock()
	return res, err
}

// Health snapshots the node for the coordinator's heartbeat.
func (n *Node) Health() HealthReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	hr := HealthReply{
		ID:        n.opts.ID,
		Draining:  n.draining,
		InFlight:  n.inflight,
		Completed: n.completed,
		Failed:    n.failed,
	}
	if n.opts.Hot != nil {
		hr.PolicyVersion = n.opts.Hot.ActiveVersion()
	}
	return hr
}

// Install builds a scheduler from the pushed checkpoint and swaps it
// into the serving slot. A load failure leaves the slot untouched —
// the node keeps serving its previous policy, which is the per-node
// rollback half of the rollout protocol.
func (n *Node) Install(version int, params, experience []byte) error {
	if n.opts.Hot == nil {
		return fmt.Errorf("cluster: node %s has no policy slot", n.opts.ID)
	}
	ck := &policystore.Checkpoint{
		Manifest:   policystore.Manifest{Version: version},
		Params:     params,
		Experience: experience,
	}
	sched, err := n.opts.Loader(ck)
	if err != nil {
		return fmt.Errorf("cluster: node %s install v%d: %w", n.opts.ID, version, err)
	}
	n.opts.Hot.Install(sched, version)
	return nil
}

// PolicyVersion returns the serving policy's store version (0 without
// a policy slot).
func (n *Node) PolicyVersion() int {
	if n.opts.Hot == nil {
		return 0
	}
	return n.opts.Hot.ActiveVersion()
}

// Drain marks the node unroutable (Run refuses with ErrDraining) and
// waits for in-flight queries, bounded by timeout (<= 0 waits
// indefinitely). It reports whether the drain completed.
func (n *Node) Drain(timeout time.Duration) bool {
	n.mu.Lock()
	n.draining = true
	n.mu.Unlock()
	return n.pending.Wait(timeout)
}
