package lsched

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

// collectDecisions runs one seeded simulation under ag and returns the
// full decision stream plus the run summary.
func collectDecisions(t *testing.T, ag *Agent, simSeed int64, arrivals []engine.Arrival) ([]engine.Decision, *engine.SimResult) {
	t.Helper()
	var ds []engine.Decision
	spy := spySched{inner: ag, onDecision: func(d engine.Decision) { ds = append(ds, d) }}
	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: simSeed, NoiseFrac: 0.1})
	res, err := sim.Run(spy, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return ds, res
}

// TestFastPathDecisionsBitIdentical drives the same seeded workload
// through a fast-path agent (inference tape + encoding cache + scratch
// reuse) and a slow-path agent, and requires the decision sequences,
// per-query durations, and full engine traces to match bit for bit.
func TestFastPathDecisionsBitIdentical(t *testing.T) {
	for _, greedy := range []bool{true, false} {
		name := "sampling"
		if greedy {
			name = "greedy"
		}
		t.Run(name, func(t *testing.T) {
			mk := func(disable bool) *Agent {
				opts := DefaultOptions(21)
				opts.DisableFastPath = disable
				a := New(opts)
				a.SetGreedy(greedy)
				return a
			}
			fast, slow := mk(false), mk(true)
			dsF, resF := collectDecisions(t, fast, 21, testArrivals(t, 8, 21))
			dsS, resS := collectDecisions(t, slow, 21, testArrivals(t, 8, 21))
			if len(dsF) != len(dsS) {
				t.Fatalf("decision counts differ: fast=%d slow=%d", len(dsF), len(dsS))
			}
			for i := range dsF {
				if dsF[i] != dsS[i] {
					t.Fatalf("decision %d differs: fast=%+v slow=%+v", i, dsF[i], dsS[i])
				}
			}
			if resF.Makespan != resS.Makespan {
				t.Fatalf("makespans differ: %v vs %v", resF.Makespan, resS.Makespan)
			}
			if len(resF.Durations) != len(resS.Durations) {
				t.Fatalf("completion counts differ")
			}
			for id, d := range resF.Durations {
				if resS.Durations[id] != d {
					t.Fatalf("query %d duration differs: %v vs %v", id, d, resS.Durations[id])
				}
			}
			if len(resF.EventTrace) != len(resS.EventTrace) {
				t.Fatalf("trace lengths differ")
			}
			for i := range resF.EventTrace {
				if resF.EventTrace[i] != resS.EventTrace[i] {
					t.Fatalf("trace point %d differs", i)
				}
			}
			hits, _ := fast.EncodingCacheStats()
			if hits == 0 {
				t.Fatal("fast path never hit the encoding cache")
			}
		})
	}
}

// TestFastPathRecordedStepsSurviveReuse checks that steps recorded on
// the fast path are deep copies: replaying them after further events
// (which overwrite the scratch buffers) must see the original features.
func TestFastPathRecordedStepsSurviveReuse(t *testing.T) {
	agent := New(DefaultOptions(23))
	sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 23})
	agent.startRecording()
	if _, err := sim.Run(agent, testArrivals(t, 6, 23)); err != nil {
		t.Fatal(err)
	}
	steps := agent.stopRecording()
	if len(steps) < 2 {
		t.Fatalf("recorded only %d steps", len(steps))
	}
	// Every recorded snapshot must own its feature memory: no two steps
	// may alias the same backing array cell.
	seen := map[*float64]int{}
	for si, s := range steps {
		for qi := range s.snap.Queries {
			q := &s.snap.Queries[qi]
			if len(q.QF) == 0 {
				t.Fatal("recorded step lost its QF")
			}
			if prev, dup := seen[&q.QF[0]]; dup {
				t.Fatalf("steps %d and %d share QF backing memory", prev, si)
			}
			seen[&q.QF[0]] = si
		}
	}
	// And replaying them must produce finite gradients.
	agent.params.ZeroGrads()
	for _, s := range steps {
		agent.replayStep(s, 0.1, 0.01)
	}
}

// TestFastPathAllocsReduced asserts the headline perf win: a
// steady-state greedy OnEvent on the fast path allocates at most half
// of what the slow path does.
func TestFastPathAllocsReduced(t *testing.T) {
	measure := func(disable bool) float64 {
		opts := DefaultOptions(29)
		opts.DisableFastPath = disable
		a := New(opts)
		a.SetGreedy(true)
		st := benchState(t, 6, 8)
		ev := engine.Event{}
		a.OnEvent(st, ev) // warm scratch, caches, and estimator windows
		return testing.AllocsPerRun(50, func() { a.OnEvent(st, ev) })
	}
	fast, slow := measure(false), measure(true)
	if fast*2 > slow {
		t.Fatalf("fast path allocs %v not at least 2x below slow path %v", fast, slow)
	}
}

// TestTrainRolloutsDeterministic: the parallel trainer is a
// deterministic function of (seed, rollouts) — two runs with four
// concurrent rollouts must produce identical reward curves.
func TestTrainRolloutsDeterministic(t *testing.T) {
	run := func() []float64 {
		agent := New(DefaultOptions(31))
		cfg := rolloutTrainConfig(t, 31)
		cfg.Rollouts = 4
		res, err := Train(agent, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.EpisodeRewards
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("reward curve lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("episode %d reward differs across runs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestTrainRolloutsMatchSequential: with the policy frozen (LR=0, no
// eval checkpoints), update cadence is irrelevant and per-episode
// action seeding makes each episode's schedule depend only on its
// index — so four parallel rollouts must reproduce the sequential
// trainer's reward curve exactly.
func TestTrainRolloutsMatchSequential(t *testing.T) {
	run := func(rollouts int) []float64 {
		agent := New(DefaultOptions(37))
		cfg := rolloutTrainConfig(t, 37)
		cfg.LR = 0
		cfg.EntropyWeight = 0
		cfg.Rollouts = rollouts
		res, err := Train(agent, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.EpisodeRewards
	}
	seq, par := run(1), run(4)
	if len(seq) != len(par) || len(seq) == 0 {
		t.Fatalf("reward curve lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("episode %d: sequential %v vs rollouts=4 %v", i, seq[i], par[i])
		}
	}
}

// rolloutTrainConfig is a small shared training config for the rollout
// tests: 8 episodes over a fixed TPC-H pool.
func rolloutTrainConfig(t *testing.T, seed int64) TrainConfig {
	t.Helper()
	pool, err := workload.NewPool(workload.BenchTPCH, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig(seed)
	cfg.Episodes = 8
	cfg.SimCfg = engine.SimConfig{Threads: 6, NoiseFrac: 0.1}
	cfg.Workload = func(ep int, rng *rand.Rand) []engine.Arrival {
		return workload.Streaming(pool.Train, 4, 0.5, rng)
	}
	cfg.BaselineKey = func(ep int) int { return ep % 4 }
	return cfg
}
