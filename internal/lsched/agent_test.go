package lsched

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func testArrivals(t *testing.T, n int, seed int64) []engine.Arrival {
	t.Helper()
	pool, err := workload.NewPool(workload.BenchTPCH, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	return workload.Streaming(pool.Train, n, 0.5, rng)
}

func TestUntrainedAgentCompletesWorkload(t *testing.T) {
	agent := New(DefaultOptions(1))
	sim := engine.NewSim(engine.SimConfig{Threads: 8, Seed: 1, NoiseFrac: 0.1})
	arrivals := testArrivals(t, 10, 1)
	res, err := sim.Run(agent, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 10 {
		t.Fatalf("completed %d of 10 queries", len(res.Durations))
	}
	if res.SchedInvocations == 0 || res.SchedActions == 0 {
		t.Fatalf("agent took no actions: %+v invocations, %+v actions", res.SchedInvocations, res.SchedActions)
	}
}

func TestAgentGreedyDeterministic(t *testing.T) {
	run := func() float64 {
		agent := New(DefaultOptions(3))
		agent.SetGreedy(true)
		sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 3})
		res, err := sim.Run(agent, testArrivals(t, 8, 3))
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("greedy agent nondeterministic: %v vs %v", a, b)
	}
}

func TestAgentAblationVariantsRun(t *testing.T) {
	variants := map[string]func(o *Options){
		"noTCN":  func(o *Options) { o.UseTCN = false },
		"noGAT":  func(o *Options) { o.UseGAT = false },
		"noPipe": func(o *Options) { o.DisablePipelining = true },
	}
	for name, mod := range variants {
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions(5)
			mod(&opts)
			agent := New(opts)
			sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 5})
			res, err := sim.Run(agent, testArrivals(t, 6, 5))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Durations) != 6 {
				t.Fatalf("completed %d of 6", len(res.Durations))
			}
		})
	}
}

func TestTrainImprovesPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short")
	}
	pool, err := workload.NewPool(workload.BenchTPCH, 7)
	if err != nil {
		t.Fatal(err)
	}
	evalArrivals := func() []engine.Arrival {
		rng := rand.New(rand.NewSource(99))
		return workload.Streaming(pool.Train, 8, 0.5, rng)
	}
	score := func(a *Agent) float64 {
		was := a.Options().Greedy
		a.SetGreedy(true)
		defer a.SetGreedy(was)
		sim := engine.NewSim(engine.SimConfig{Threads: 8, Seed: 99, NoiseFrac: 0.1})
		res, err := sim.Run(a, evalArrivals())
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgDuration()
	}
	agent := New(DefaultOptions(7))
	untrained := score(agent)
	cfg := DefaultTrainConfig(7)
	cfg.Episodes = 30
	cfg.SimCfg = engine.SimConfig{Threads: 8, NoiseFrac: 0.1}
	cfg.Workload = func(ep int, rng *rand.Rand) []engine.Arrival {
		return workload.Streaming(pool.Train, 8, 0.5, rng)
	}
	cfg.BaselineKey = func(ep int) int { return ep % 4 }
	cfg.Eval = func(a *Agent) float64 { return score(a) }
	cfg.EvalEvery = 10
	res, err := Train(agent, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EpisodeRewards) != 30 {
		t.Fatalf("expected 30 episode rewards, got %d", len(res.EpisodeRewards))
	}
	// Training with checkpoint selection must never hand back a policy
	// worse than the best it saw — at minimum, no worse than where it
	// started (modest tolerance for eval noise).
	trained := score(agent)
	if trained > untrained*1.1 {
		t.Fatalf("trained policy (%v) worse than untrained (%v)", trained, untrained)
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	a := New(DefaultOptions(11))
	data, err := a.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b := New(DefaultOptions(12)) // different init
	if err := b.Restore(data); err != nil {
		t.Fatal(err)
	}
	// Same params -> same greedy decisions.
	runWith := func(ag *Agent) float64 {
		ag.SetGreedy(true)
		sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 9})
		res, err := sim.Run(ag, testArrivals(t, 5, 9))
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	if x, y := runWith(a), runWith(b); x != y {
		t.Fatalf("restored agent behaves differently: %v vs %v", x, y)
	}
}

func TestTransferFreezesInnerLayers(t *testing.T) {
	src := New(DefaultOptions(13))
	dst := New(DefaultOptions(14))
	if err := dst.TransferFrom(src); err != nil {
		t.Fatal(err)
	}
	frozen, trainable := 0, 0
	for _, p := range dst.Params().All() {
		if p.Frozen() {
			frozen++
		} else {
			trainable++
		}
	}
	if frozen == 0 {
		t.Fatal("transfer learning froze nothing")
	}
	if trainable == 0 {
		t.Fatal("transfer learning left nothing trainable")
	}
	// Transferred parameters must equal the source's.
	for _, p := range dst.Params().All() {
		srcP, ok := src.Params().Get(p.Name())
		if !ok {
			t.Fatalf("param %q missing in source", p.Name())
		}
		for i := range p.Val {
			if p.Val[i] != srcP.Val[i] {
				t.Fatalf("param %q not copied", p.Name())
			}
		}
	}
}

func TestEpisodeRewardsTailTerm(t *testing.T) {
	steps := []*step{
		{time: 0, liveQueries: 2},
		{time: 1, liveQueries: 4},
		{time: 3, liveQueries: 1},
	}
	cfg := TrainConfig{W1: 1, W2: 0, TailPercentile: 0.9}
	r := episodeRewards(steps, 5, cfg)
	// H = [1*2, 2*4, 2*1] = [2, 8, 2]; with W2=0, r = -H.
	want := []float64{-2, -8, -2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("reward[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	// With the tail term only, rewards shift by the percentile P.
	cfgTail := TrainConfig{W1: 0, W2: 1, TailPercentile: 0.9}
	rt := episodeRewards(steps, 5, cfgTail)
	// P = percentile([2,8,2], .9) = 8 at index int(.9*2)=1 of sorted [2,2,8]
	// -> sorted[1] = 2. r2 = -(H-P) = [0, -6, 0].
	wantTail := []float64{0, -6, 0}
	for i := range wantTail {
		if rt[i] != wantTail[i] {
			t.Fatalf("tail reward[%d] = %v, want %v", i, rt[i], wantTail[i])
		}
	}
}

func TestDiscountedReturns(t *testing.T) {
	got := discountedReturns([]float64{1, 2, 3}, 0.5)
	want := []float64{1 + 0.5*(2+0.5*3), 2 + 0.5*3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("returns[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAgentGrantsEveryQuery(t *testing.T) {
	// §5.3.3: the parallelism head predicts a thread grant for every
	// running query at every event, not just the root's query.
	agent := New(DefaultOptions(17))
	granted := map[int]bool{}
	spy := spySched{inner: agent, onDecision: func(d engine.Decision) {
		if d.RootOpID < 0 && d.Threads > 0 {
			granted[d.QueryID] = true
		}
	}}
	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 17})
	res, err := sim.Run(spy, testArrivals(t, 6, 17))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 6 {
		t.Fatalf("completed %d of 6", len(res.Durations))
	}
	for id := range res.Durations {
		if !granted[id] {
			t.Errorf("query %d never received a parallelism grant", id)
		}
	}
}

type spySched struct {
	inner      engine.Scheduler
	onDecision func(engine.Decision)
}

func (s spySched) Name() string { return s.inner.Name() }
func (s spySched) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	ds := s.inner.OnEvent(st, ev)
	for _, d := range ds {
		s.onDecision(d)
	}
	return ds
}

func TestBaselineAdvantages(t *testing.T) {
	b := newBaseline(0.5)
	// First episode seeds the baseline: advantages are zero.
	a1 := b.advantages([]float64{10, 5})
	for i, v := range a1 {
		if v != 0 {
			t.Fatalf("first-episode advantage[%d] = %v, want 0", i, v)
		}
	}
	// A better second episode must yield positive advantages.
	a2 := b.advantages([]float64{20, 15})
	for i, v := range a2 {
		if v <= 0 {
			t.Fatalf("improved-episode advantage[%d] = %v, want > 0", i, v)
		}
	}
	// A worse third episode must yield negative advantages.
	a3 := b.advantages([]float64{0, 0})
	for i, v := range a3 {
		if v >= 0 {
			t.Fatalf("worse-episode advantage[%d] = %v, want < 0", i, v)
		}
	}
}
