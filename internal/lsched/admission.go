package lsched

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/nn"
)

// AdmissionFeatures is the state the admission head scores a newly
// arrived query on: front-door pressure (queue depths, in-flight
// counts, free executor slots), the cost model's whole-plan O-DUR and
// O-MEM predictions for this query, and the query's deadline position.
// All fields are raw (un-normalized) measurements; the head normalizes
// internally so callers do not share squashing logic.
type AdmissionFeatures struct {
	// TenantQueueDepth is the tenant's queued-query count.
	TenantQueueDepth float64
	// TotalQueueDepth is the queued-query count across all tenants.
	TotalQueueDepth float64
	// InFlight is the number of queries executing right now.
	InFlight float64
	// FreeSlots is the number of idle executor slots.
	FreeSlots float64
	// TenantShare is the tenant's fraction of in-flight queries (0..1).
	TenantShare float64
	// PredDur is the cost model's O-DUR whole-plan duration estimate.
	PredDur float64
	// PredMem is the cost model's O-MEM whole-plan memory estimate.
	PredMem float64
	// PredWait is the predicted queue wait before this query would start.
	PredWait float64
	// DeadlineHeadroom is deadline minus (now + PredWait + PredDur):
	// positive means the query can still meet its deadline if admitted,
	// negative means it is already hopeless.
	DeadlineHeadroom float64
	// LatencySensitive is 1 for the latency SLO class, 0 for throughput.
	LatencySensitive float64
}

// AdmissionFeatureDim is the admission head's input width.
const AdmissionFeatureDim = 10

// AdmissionFeatureNames labels the normalized admission vector's
// positions, in appendVector order — the names the flight recorder and
// drift detector report admission features under.
func AdmissionFeatureNames() []string {
	return []string{
		"tenant_queue_depth", "total_queue_depth", "in_flight",
		"free_slots", "tenant_share", "pred_dur", "pred_mem",
		"pred_wait", "deadline_headroom", "latency_sensitive",
	}
}

// AppendVector appends the normalized AdmissionFeatureDim-wide vector —
// exactly what the admission head scores — into dst, for provenance
// recording and drift observation.
func (f *AdmissionFeatures) AppendVector(dst []float64) []float64 {
	return f.appendVector(dst)
}

// squash maps a non-negative magnitude into [0, 1) with diminishing
// resolution at scale: x/(x+s).
func squash(x, s float64) float64 {
	if x < 0 {
		x = 0
	}
	return x / (x + s)
}

// appendVector normalizes the features into dst (AdmissionFeatureDim
// values). Depth/duration-like inputs are squashed so the head is
// stable across load regimes; headroom keeps its sign.
func (f *AdmissionFeatures) appendVector(dst []float64) []float64 {
	return append(dst,
		squash(f.TenantQueueDepth, 16),
		squash(f.TotalQueueDepth, 64),
		squash(f.InFlight, 64),
		squash(f.FreeSlots, 8),
		clamp01(f.TenantShare),
		squash(f.PredDur, 1),
		squash(f.PredMem, 1000),
		squash(f.PredWait, 1),
		math.Tanh(f.DeadlineHeadroom),
		f.LatencySensitive,
	)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// AdmissionHead scores admit-vs-shed for arriving queries: a logistic
// head over AdmissionFeatures whose parameters live on the agent's
// nn.Params registry under the "adm." prefix — checkpointing,
// versioning, and hot-swap promotion all ride the existing policy
// lifecycle for free. Unlike the event-loop heads it is called from
// front-door goroutines — concurrently from every shard of a sharded
// front door — so Score is lock-free: it reads an immutable weight
// snapshot republished by Update, which takes the head's mutex. A
// mutex-guarded Score would be a global serialization point across
// shards, exactly what the sharded front door exists to remove. The
// linear form keeps both paths O(AdmissionFeatureDim) with no tape.
type AdmissionHead struct {
	mu     sync.Mutex
	params *nn.Params
	w      *nn.Node // 1×F weight matrix (row vector)
	b      *nn.Node // scalar bias
	lr     float64
	// scratch avoids per-call allocation under the lock.
	scratch []float64
	// snap is the immutable weights+bias copy Score reads without
	// locking. Update republishes it after every gradient step. The
	// snapshot is stamped with the params version so out-of-band weight
	// changes (checkpoint Load, optimizer steps — both BumpVersion) are
	// picked up lazily on the next Score instead of serving stale values.
	snap atomic.Pointer[admSnapshot]
}

// admSnapshot is one immutable published state of the admission head.
type admSnapshot struct {
	w       [AdmissionFeatureDim]float64
	b       float64
	version uint64
}

// NewAdmissionHead registers (or re-attaches to) the admission head's
// parameters on p. A fresh head is prior-initialized to a sane policy
// rather than noise: positive weight on deadline headroom and free
// slots, negative weight on queue depth, predicted wait, and predicted
// memory, and an admit-friendly bias — shedding must be learned from
// outcomes, not stumbled into on a cold start. Re-attaching to params
// that already carry "adm." values (a loaded checkpoint) preserves them.
func NewAdmissionHead(p *nn.Params) *AdmissionHead {
	_, existed := p.Get("adm.head.W")
	d := nn.NewDense(p, "adm.head", AdmissionFeatureDim, 1)
	h := &AdmissionHead{params: p, w: d.W, b: d.B, lr: 0.05, scratch: make([]float64, 0, AdmissionFeatureDim)}
	if !existed {
		// Same index order as appendVector.
		prior := [AdmissionFeatureDim]float64{
			-1.0, // tenant queue depth: pressure against this tenant
			-1.5, // total queue depth: global pressure
			-0.5, // in-flight
			+1.0, // free slots
			-1.0, // tenant share: fairness pressure on hogs
			-0.5, // predicted duration
			-0.5, // predicted memory
			-1.5, // predicted wait
			+2.0, // deadline headroom: hopeless queries score low
			+0.5, // latency-sensitive class gets benefit of the doubt
		}
		copy(h.w.Val, prior[:])
		h.b.Val[0] = 2.0 // admit-friendly: empty-system score ≈ σ(2+…) ≈ 0.9+
	}
	h.publishLocked()
	return h
}

// publishLocked copies the current parameters into a fresh immutable
// snapshot for lock-free scoring. Caller holds h.mu (or is the sole
// owner, as in NewAdmissionHead).
func (h *AdmissionHead) publishLocked() {
	s := &admSnapshot{b: h.b.Val[0], version: h.params.Version()}
	copy(s.w[:], h.w.Val)
	h.snap.Store(s)
}

// Score returns the head's admit probability for the featurized query
// (σ of the linear logit). Safe for concurrent use and lock-free on
// the steady path: it reads the latest published snapshot, so
// concurrent Updates never serialize scoring across front-door shards.
// A params-version mismatch (checkpoint Load, optimizer step) takes
// the slow path once to republish.
func (h *AdmissionHead) Score(f *AdmissionFeatures) float64 {
	s := h.snap.Load()
	if s.version != h.params.Version() {
		h.mu.Lock()
		h.publishLocked()
		h.mu.Unlock()
		s = h.snap.Load()
	}
	var buf [AdmissionFeatureDim]float64
	v := f.appendVector(buf[:0])
	z := s.b
	for i, x := range v {
		z += s.w[i] * x
	}
	return sigmoid(z)
}

func (h *AdmissionHead) logitLocked(f *AdmissionFeatures) float64 {
	h.scratch = f.appendVector(h.scratch[:0])
	z := h.b.Val[0]
	for i, x := range h.scratch {
		z += h.w.Val[i] * x
	}
	return z
}

// Update folds one observed outcome into the head with a single online
// logistic-regression step: label 1 means admitting a query in this
// state was right (it met its deadline / completed usefully), label 0
// means it was wrong (deadline missed, wasted work — the query should
// have been shed). The gradient of the log loss for a linear logistic
// model is (σ(z) − y)·x. Safe for concurrent use.
func (h *AdmissionHead) Update(f *AdmissionFeatures, label float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	g := sigmoid(h.logitLocked(f)) - clamp01(label)
	for i, x := range h.scratch {
		h.w.Val[i] -= h.lr * g * x
	}
	h.b.Val[0] -= h.lr * g
	h.publishLocked()
}

// Weights returns a copy of the head's weights and its bias (tests,
// status endpoints).
func (h *AdmissionHead) Weights() ([]float64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.w.Val...), h.b.Val[0]
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Admission returns the agent's admission head, registering its
// parameters on first use. Lazy registration keeps the parameter set —
// and thus checkpoints — of agents that never serve a front door
// unchanged.
func (a *Agent) Admission() *AdmissionHead {
	if a.adm == nil {
		a.adm = NewAdmissionHead(a.params)
	}
	return a.adm
}
