package lsched

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/provenance"
)

// TestAgentRecordsScheduleDecisions runs a full simulated workload with
// the flight recorder attached and checks the end-to-end contract: every
// activation decision is captured with the exact flat feature vector
// and root scores, query completions join outcomes, and the spilled
// trace reloads bit-identical.
func TestAgentRecordsScheduleDecisions(t *testing.T) {
	agent := New(DefaultOptions(1))
	agent.SetGreedy(true)
	agent.SetPolicyVersion(5)
	rec := provenance.NewRecorder(provenance.Options{Capacity: 1 << 14})
	var spill bytes.Buffer
	rec.AttachSink(&spill, 256)
	agent.SetProvenance(rec)

	sim := engine.NewSim(engine.SimConfig{Threads: 8, Seed: 1, NoiseFrac: 0.1})
	sim.SetObserver(agent) // what Lab.EvalRun and engine.Live wire up
	arrivals := testArrivals(t, 10, 1)
	res, err := sim.Run(agent, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 10 {
		t.Fatalf("completed %d of 10", len(res.Durations))
	}

	st := rec.Stats()
	if st.Recorded == 0 {
		t.Fatal("no decisions recorded")
	}
	if st.Joined == 0 {
		t.Fatal("no decision joined to its outcome")
	}

	recs := rec.Recent(int(st.Recorded))
	joined := 0
	for _, r := range recs {
		if r.Kind != provenance.KindSchedule {
			t.Fatalf("unexpected kind %v", r.Kind)
		}
		if r.PolicyVersion != 5 {
			t.Fatalf("policy version %d, want 5", r.PolicyVersion)
		}
		if len(r.Features) == 0 || len(r.Scores) == 0 {
			t.Fatalf("seq %d missing features/scores", r.Seq)
		}
		// Scores include the trailing stop logit, so there is always
		// one more score than the action index can reach.
		if r.Action >= int32(len(r.Scores)) {
			t.Fatalf("seq %d action %d out of range for %d scores", r.Seq, r.Action, len(r.Scores))
		}
		if r.Outcome.Joined {
			joined++
			if r.Outcome.LatencySecs <= 0 {
				t.Fatalf("seq %d joined with latency %v", r.Seq, r.Outcome.LatencySecs)
			}
		}
	}
	if joined == 0 {
		t.Fatal("no ringed record carries a joined outcome")
	}

	// The spilled trace must reload bit-identical to the ring.
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := provenance.ReadAll(bytes.NewReader(spill.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(recs) {
		t.Fatalf("reloaded %d records, ring has %d", len(reloaded), len(recs))
	}
	for i := range recs {
		w, g := recs[i], reloaded[i]
		if g.Seq != w.Seq || g.QueryID != w.QueryID || len(g.Features) != len(w.Features) {
			t.Fatalf("record %d shape mismatch", i)
		}
		for j := range w.Features {
			if math.Float64bits(g.Features[j]) != math.Float64bits(w.Features[j]) {
				t.Fatalf("record %d feature %d not bit-identical after spill round trip", i, j)
			}
		}
		for j := range w.Scores {
			if math.Float64bits(g.Scores[j]) != math.Float64bits(w.Scores[j]) {
				t.Fatalf("record %d score %d not bit-identical after spill round trip", i, j)
			}
		}
	}
}

// TestAgentProvenanceFastAndFullPathsAgree records the same decision
// state through the fast path (feature arena) and the recording-tape
// path (flattenSnapshot) and checks both capture a feature vector of
// the same dimension — the two paths must describe the same state.
func TestAgentProvenanceFastAndFullPathsAgree(t *testing.T) {
	dims := func(disable bool) int {
		opts := DefaultOptions(1)
		opts.DisableFastPath = disable
		a := New(opts)
		a.SetGreedy(true)
		rec := provenance.NewRecorder(provenance.Options{Capacity: 64})
		a.SetProvenance(rec)
		sim := engine.NewSim(engine.SimConfig{Threads: 4, Seed: 7})
		if _, err := sim.Run(a, testArrivals(t, 3, 7)); err != nil {
			t.Fatal(err)
		}
		recs := rec.Recent(1)
		if len(recs) == 0 {
			t.Fatal("no decisions recorded")
		}
		return len(recs[0].Features)
	}
	if fast, full := dims(false), dims(true); fast != full {
		t.Fatalf("fast path records %d feature dims, full path %d", fast, full)
	}
}
