package lsched

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// Experience is one stored reward experience: the aggregate outcome of
// an episode (or of an online window between checkpoints), as the
// paper's Experience Manager records from both training and online
// modes (§3).
type Experience struct {
	// Source labels where the experience came from ("train", "online").
	Source string
	// Episode is the training episode number or online checkpoint index.
	Episode int
	// AvgReward is the mean per-decision reward.
	AvgReward float64
	// AvgDuration is the mean query duration observed.
	AvgDuration float64
	// Decisions is the number of scheduling decisions taken.
	Decisions int
	// Queries is the number of queries completed.
	Queries int
}

// ExperienceManager stores and manages reward experiences from both the
// training and online modes (§3). It keeps a bounded in-memory ring and
// supports gob serialization so experiences survive restarts.
type ExperienceManager struct {
	mu       sync.Mutex
	capacity int
	buf      []Experience
	next     int
	full     bool
	total    int
}

// NewExperienceManager returns a manager holding up to capacity
// experiences (oldest evicted first).
func NewExperienceManager(capacity int) *ExperienceManager {
	if capacity < 1 {
		capacity = 1
	}
	return &ExperienceManager{capacity: capacity, buf: make([]Experience, 0, capacity)}
}

// Record stores one experience.
func (m *ExperienceManager) Record(e Experience) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total++
	if len(m.buf) < m.capacity {
		m.buf = append(m.buf, e)
		return
	}
	m.buf[m.next] = e
	m.next = (m.next + 1) % m.capacity
	m.full = true
}

// Len returns the number of stored experiences.
func (m *ExperienceManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// Total returns how many experiences were ever recorded.
func (m *ExperienceManager) Total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// All returns the stored experiences oldest-first.
func (m *ExperienceManager) All() []Experience {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Experience, 0, len(m.buf))
	if m.full {
		out = append(out, m.buf[m.next:]...)
		out = append(out, m.buf[:m.next]...)
	} else {
		out = append(out, m.buf...)
	}
	return out
}

// MeanReward averages the stored experiences' rewards (0 when empty).
func (m *ExperienceManager) MeanReward() float64 {
	all := m.All()
	if len(all) == 0 {
		return 0
	}
	s := 0.0
	for _, e := range all {
		s += e.AvgReward
	}
	return s / float64(len(all))
}

// Serialize encodes the stored experiences.
func (m *ExperienceManager) Serialize() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m.All()); err != nil {
		return nil, fmt.Errorf("lsched: serialize experiences: %w", err)
	}
	return buf.Bytes(), nil
}

// Load replaces the stored experiences with a serialized snapshot.
//
// Load is hardened against untrusted bytes (a truncated or corrupted
// checkpoint blob): it never panics, and on any error the receiver is
// left unchanged — decoding completes before the buffer is touched.
func (m *ExperienceManager) Load(data []byte) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lsched: load experiences: corrupt snapshot: %v", r)
		}
	}()
	var all []Experience
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&all); err != nil {
		return fmt.Errorf("lsched: load experiences: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = m.buf[:0]
	m.next = 0
	m.full = false
	for _, e := range all {
		if len(m.buf) < m.capacity {
			m.buf = append(m.buf, e)
		} else {
			m.buf[m.next] = e
			m.next = (m.next + 1) % m.capacity
			m.full = true
		}
	}
	return nil
}
