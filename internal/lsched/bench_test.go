package lsched

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/provenance"
	"repro/internal/workload"
)

// benchState hand-builds a scheduler-visible engine state with nq
// running queries over TPC-H plans — the fixture OnEvent sees at a
// typical scheduling event, without running a simulator.
func benchState(tb testing.TB, nq, threads int) *engine.State {
	tb.Helper()
	pool, err := workload.NewPool(workload.BenchTPCH, 1)
	if err != nil {
		tb.Fatal(err)
	}
	st := &engine.State{Now: 1, Estimator: costmodel.NewEstimator(threads, 1, 1)}
	for i := 0; i < nq; i++ {
		p := pool.Train[i%len(pool.Train)].Clone()
		st.Queries = append(st.Queries, engine.NewQueryStateForWire(i, p, 0, 1))
	}
	st.Threads = make([]engine.ThreadInfo, threads)
	for i := range st.Threads {
		st.Threads[i] = engine.ThreadInfo{ID: i, LastQuery: i % nq}
	}
	return st
}

// BenchmarkAgentOnEvent measures one scheduling decision end to end
// (features → encoder → heads → sampling). Sub-benchmarks:
//
//	greedy-fast: the serving fast path (inference tape, encoding
//	             cache, scratch buffers) — the "after" number.
//	greedy-full: the same decision on the allocating recording-tape
//	             path (DisableFastPath) — the pre-optimization "before".
//	recording:   the fast path while recording an episode (training
//	             rollouts), which deep-copies each step.
//	greedy-fast-prov: the serving fast path with the provenance flight
//	             recorder attached — its overhead vs greedy-fast is the
//	             cost of decision capture.
func BenchmarkAgentOnEvent(b *testing.B) {
	run := func(b *testing.B, disable, record, prov bool) {
		opts := DefaultOptions(1)
		opts.DisableFastPath = disable
		a := New(opts)
		a.SetGreedy(!record)
		if prov {
			a.SetProvenance(provenance.NewRecorder(provenance.Options{Capacity: 256}))
		}
		st := benchState(b, 6, 8)
		ev := engine.Event{}
		a.OnEvent(st, ev) // warm scratch, cache, estimator windows
		if prov {
			for i := 0; i < 256; i++ { // wrap the ring so slot slabs are warm
				a.OnEvent(st, ev)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if record {
				a.startRecording() // keeps the episode buffer at one step
			}
			a.OnEvent(st, ev)
		}
	}
	b.Run("greedy-fast", func(b *testing.B) { run(b, false, false, false) })
	b.Run("greedy-full", func(b *testing.B) { run(b, true, false, false) })
	b.Run("recording", func(b *testing.B) { run(b, false, true, false) })
	b.Run("greedy-fast-prov", func(b *testing.B) { run(b, false, false, true) })
}

// TestProvenanceRecordingAllocBudget pins the acceptance criterion that
// attaching the flight recorder costs at most one extra allocation per
// scheduling decision on the serving fast path (it should cost zero
// once the ring slabs are warm).
func TestProvenanceRecordingAllocBudget(t *testing.T) {
	measure := func(prov bool) float64 {
		a := New(DefaultOptions(1))
		a.SetGreedy(true)
		if prov {
			a.SetProvenance(provenance.NewRecorder(provenance.Options{Capacity: 256}))
		}
		st := benchState(t, 6, 8)
		ev := engine.Event{}
		for i := 0; i < 64; i++ { // warm scratch, caches, ring slabs
			a.OnEvent(st, ev)
		}
		return testing.AllocsPerRun(200, func() { a.OnEvent(st, ev) })
	}
	base, withProv := measure(false), measure(true)
	if withProv > base+1 {
		t.Fatalf("provenance adds %.1f allocs/op (base %.1f, with recorder %.1f), budget is 1",
			withProv-base, base, withProv)
	}
}
