package lsched

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/nn"
)

// TrainConfig configures REINFORCE training (§6).
type TrainConfig struct {
	// Episodes is the number of training episodes.
	Episodes int
	// LR is the Adam learning rate.
	LR float64
	// Gamma is the return discount.
	Gamma float64
	// EntropyWeight scales the exploration bonus.
	EntropyWeight float64
	// W1, W2 weight the average-latency and tail-latency reward terms;
	// the paper's default is 0.5 / 0.5.
	W1, W2 float64
	// TailPercentile is the percentile defining the tail indicator P
	// (the paper uses the 90th).
	TailPercentile float64
	// GradClip bounds the global gradient norm.
	GradClip float64
	// Seed drives episode workload sampling.
	Seed int64
	// SimCfg is the simulator configuration for training episodes.
	SimCfg engine.SimConfig
	// Workload generates the arrivals for episode i.
	Workload func(episode int, rng *rand.Rand) []engine.Arrival
	// BaselineKey groups episodes for the reward baseline: episodes with
	// the same key share a per-step-index baseline. REINFORCE's
	// advantage estimate is only meaningful when compared against
	// episodes of the same workload, so generators that cycle a fixed
	// workload set should key by workload (e.g. episode % K). Nil keys
	// every episode together.
	BaselineKey func(episode int) int
	// MaxStepsPerUpdate caps the replayed decisions per episode (the
	// most recent are kept) to bound the update cost on long episodes.
	MaxStepsPerUpdate int
	// OnEpisode, when set, observes per-episode progress.
	OnEpisode func(ep int, avgReward, avgDuration float64)
	// Eval, when set, scores the greedy policy (lower is better) every
	// EvalEvery episodes; Train restores the best-scoring parameters
	// before returning. This guards against REINFORCE's tendency to
	// drift after converging.
	Eval      func(a *Agent) float64
	EvalEvery int
	// Rollouts collects this many episodes concurrently per update
	// round, each on its own simulator and worker agent sampling against
	// a frozen copy of the current policy; the round's gradients are
	// averaged into one optimizer step. 1 (or 0) keeps the fully
	// sequential loop. Episode workloads, rewards, and callbacks are
	// still processed in episode order on the calling goroutine, and a
	// given (Seed, Rollouts) pair is deterministic. Workload must return
	// an independent arrival slice per call (the built-in generators
	// do); the plans themselves are never mutated by the engine, so
	// sharing them across concurrent simulators is safe.
	Rollouts int
}

// DefaultTrainConfig returns the training defaults used in experiments.
func DefaultTrainConfig(seed int64) TrainConfig {
	return TrainConfig{
		Episodes:          200,
		LR:                3e-3,
		Gamma:             1.0,
		EntropyWeight:     0.01,
		W1:                0.5,
		W2:                0.5,
		TailPercentile:    0.9,
		GradClip:          5,
		Seed:              seed,
		MaxStepsPerUpdate: 400,
	}
}

// TrainResult reports training progress.
type TrainResult struct {
	// EpisodeRewards is the mean per-decision reward of each episode.
	EpisodeRewards []float64
	// EpisodeAvgDurations is the mean query duration of each episode.
	EpisodeAvgDurations []float64
}

// Train runs REINFORCE over the agent's policy. Each episode schedules a
// sampled workload on the simulator with sampling enabled, computes the
// paper's per-decision rewards, and replays the recorded decisions to
// update the policy parameters.
func Train(agent *Agent, cfg TrainConfig) (*TrainResult, error) {
	if cfg.Workload == nil {
		return nil, fmt.Errorf("lsched: TrainConfig.Workload is required")
	}
	if cfg.Episodes <= 0 {
		return nil, fmt.Errorf("lsched: Episodes must be positive")
	}
	if cfg.W1+cfg.W2 <= 0 {
		return nil, fmt.Errorf("lsched: reward weights must not both be zero")
	}
	if cfg.TailPercentile <= 0 || cfg.TailPercentile >= 1 {
		cfg.TailPercentile = 0.9
	}
	if cfg.MaxStepsPerUpdate <= 0 {
		cfg.MaxStepsPerUpdate = 400
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(cfg.LR)
	res := &TrainResult{}
	baselines := make(map[int]*baseline)
	baselineFor := func(ep int) *baseline {
		key := 0
		if cfg.BaselineKey != nil {
			key = cfg.BaselineKey(ep)
		}
		b, ok := baselines[key]
		if !ok {
			b = newBaseline(0.8)
			baselines[key] = b
		}
		return b
	}

	wasGreedy := agent.opts.Greedy
	agent.SetGreedy(false)
	defer agent.SetGreedy(wasGreedy)

	evalEvery := cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 25
	}
	var bestScore float64
	var bestParams []byte
	checkpoint := func() error {
		if cfg.Eval == nil {
			return nil
		}
		agent.SetGreedy(true)
		score := cfg.Eval(agent)
		agent.SetGreedy(false)
		if bestParams == nil || score < bestScore {
			data, err := agent.params.Serialize()
			if err != nil {
				return err
			}
			bestScore, bestParams = score, data
		}
		return nil
	}

	rollouts := cfg.Rollouts
	if rollouts < 1 {
		rollouts = 1
	}
	// Worker pool for concurrent rollouts, capped at GOMAXPROCS: more
	// goroutines than processors cannot simulate any faster, and each
	// extra worker costs a policy snapshot load per round. Capping
	// changes only execution parallelism — the round size (and so the
	// averaged gradient, the rng consumption order, and every episode's
	// seed) still comes from cfg.Rollouts, so results are bit-identical
	// at any processor count. The main agent collects its share of
	// episodes itself; extra workers are structural clones that re-load
	// the frozen policy at the start of every round.
	parallelism := rollouts
	if p := runtime.GOMAXPROCS(0); parallelism > p {
		parallelism = p
	}
	workers := []*Agent{agent}
	for len(workers) < parallelism {
		w := New(agent.opts)
		w.SetGreedy(false)
		workers = append(workers, w)
	}
	// Every episode's action stream is seeded by its index (not by the
	// shared rng's current state), so the schedule an episode samples is
	// identical whether it runs sequentially or inside a parallel round.
	actionSeed := func(ep int) int64 { return cfg.Seed + 7919 + int64(ep)*15485863 }
	simSeed := func(ep int) int64 {
		// Episodes in the same baseline group replay the same simulator
		// noise, so return differences reflect the policy, not the
		// environment draw.
		if cfg.BaselineKey != nil {
			return cfg.Seed + int64(cfg.BaselineKey(ep))*104729
		}
		return cfg.Seed + int64(ep)*104729
	}

	type rollout struct {
		ep       int
		arrivals []engine.Arrival
		simCfg   engine.SimConfig
		steps    []*step
		result   *engine.SimResult
		err      error
	}

	for base := 0; base < cfg.Episodes; base += rollouts {
		n := rollouts
		if base+n > cfg.Episodes {
			n = cfg.Episodes - base
		}
		rolls := make([]rollout, n)
		// Workload generation consumes the shared rng strictly in
		// episode order, on this goroutine.
		for i := range rolls {
			ep := base + i
			rolls[i].ep = ep
			rolls[i].arrivals = cfg.Workload(ep, rng)
			sc := cfg.SimCfg
			sc.Seed = simSeed(ep)
			rolls[i].simCfg = sc
		}
		if n == 1 || len(workers) == 1 {
			// Sequential collection (single episode, or a single
			// effective worker): the policy does not change during a
			// round, so running every episode on the main agent matches
			// the parallel result without the snapshot round-trip.
			for i := range rolls {
				r := &rolls[i]
				r.steps, r.result, r.err = runRollout(agent, r.arrivals, r.simCfg, actionSeed(r.ep))
				if r.err != nil {
					break
				}
			}
		} else {
			frozen, err := agent.params.Serialize()
			if err != nil {
				return nil, err
			}
			var wg sync.WaitGroup
			for wi, w := range workers {
				if w != agent {
					if err := w.params.Load(frozen); err != nil {
						return nil, err
					}
				}
				wg.Add(1)
				// Worker wi walks episodes wi, wi+W, wi+2W, … so a round
				// larger than the pool still collects every episode.
				go func(wi int, w *Agent) {
					defer wg.Done()
					for i := wi; i < n; i += len(workers) {
						r := &rolls[i]
						r.steps, r.result, r.err = runRollout(w, r.arrivals, r.simCfg, actionSeed(r.ep))
						if r.err != nil {
							return
						}
					}
				}(wi, w)
			}
			wg.Wait()
		}

		// Everything below — rewards, baselines, gradient replay, and
		// callbacks — runs in episode order on this goroutine; the
		// round's gradients are averaged into one optimizer step.
		agent.params.ZeroGrads()
		invN := 1.0 / float64(n)
		accumulated := false
		evalDue := false
		for i := range rolls {
			r := &rolls[i]
			if r.err != nil {
				return nil, fmt.Errorf("lsched: training episode %d: %w", r.ep, r.err)
			}
			if (r.ep+1)%evalEvery == 0 {
				evalDue = true
			}
			if len(r.steps) == 0 {
				continue
			}
			rewards := episodeRewards(r.steps, r.result.Makespan, cfg)
			avgR := mean(rewards)
			res.EpisodeRewards = append(res.EpisodeRewards, avgR)
			res.EpisodeAvgDurations = append(res.EpisodeAvgDurations, r.result.AvgDuration())

			returns := discountedReturns(rewards, cfg.Gamma)
			advs := baselineFor(r.ep).advantages(returns)
			keep := r.steps
			keepAdvs := advs
			if ns := len(r.steps); ns > cfg.MaxStepsPerUpdate {
				// Subsample uniformly across the episode so early decisions
				// (which shape the whole schedule) keep getting gradients.
				stride := float64(ns) / float64(cfg.MaxStepsPerUpdate)
				keep = make([]*step, 0, cfg.MaxStepsPerUpdate)
				keepAdvs = make([]float64, 0, cfg.MaxStepsPerUpdate)
				for k := 0; k < cfg.MaxStepsPerUpdate; k++ {
					j := int(float64(k) * stride)
					keep = append(keep, r.steps[j])
					keepAdvs = append(keepAdvs, advs[j])
				}
			}
			for j, s := range keep {
				agent.replayStep(s, keepAdvs[j]*invN, cfg.EntropyWeight*invN)
			}
			accumulated = true
			if cfg.OnEpisode != nil {
				cfg.OnEpisode(r.ep, avgR, r.result.AvgDuration())
			}
		}
		if accumulated {
			if cfg.GradClip > 0 {
				agent.params.ClipGrads(cfg.GradClip)
			}
			opt.Step(agent.params)
		}
		if evalDue {
			if err := checkpoint(); err != nil {
				return nil, err
			}
		}
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	if bestParams != nil {
		if err := agent.params.Load(bestParams); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// runRollout collects one recorded episode on agent a: it re-seeds the
// action stream, runs the simulator over the arrivals, and returns the
// recorded steps (deep copies, safe to replay on any goroutine later).
func runRollout(a *Agent, arrivals []engine.Arrival, simCfg engine.SimConfig, actionSeed int64) ([]*step, *engine.SimResult, error) {
	a.reseedActions(actionSeed)
	sim := engine.NewSim(simCfg)
	a.startRecording()
	result, err := sim.Run(a, arrivals)
	steps := a.stopRecording()
	if err != nil {
		return nil, nil, err
	}
	return steps, result, nil
}

// episodeRewards computes the paper's per-decision reward: with H_d =
// (t_d − t_{d−1})·Q_d and P the episode's TailPercentile of all H
// values, r_d = (w1·(−H_d) + w2·(−(H_d−P))) / (w1+w2).
func episodeRewards(steps []*step, makespan float64, cfg TrainConfig) []float64 {
	h := make([]float64, len(steps))
	for i, s := range steps {
		var next float64
		if i+1 < len(steps) {
			next = steps[i+1].time
		} else {
			next = makespan
		}
		dt := next - s.time
		if dt < 0 {
			dt = 0
		}
		h[i] = dt * float64(s.liveQueries)
	}
	p := percentile(h, cfg.TailPercentile)
	rewards := make([]float64, len(h))
	wsum := cfg.W1 + cfg.W2
	for i, hd := range h {
		r1 := -hd
		r2 := -(hd - p)
		rewards[i] = (cfg.W1*r1 + cfg.W2*r2) / wsum
	}
	return rewards
}

// replayStep recomputes the forward pass for one recorded scheduling
// event and accumulates ∇(−advantage·logπ(event's actions) −
// entropyW·H(π)). One event bundles the sampled root/pipeline actions
// plus every query's parallelism choice; the encoder runs once.
func (a *Agent) replayStep(s *step, advantage, entropyW float64) {
	t := a.tape
	t.Reset()
	enc := a.enc.Encode(t, s.snap)

	logp := t.Zeros(1)
	ent := t.Zeros(1)
	if len(s.roots) > 0 {
		stopIdx := len(s.cands)
		baseLogits := t.Concat(a.pred.RootLogits(t, enc, s.cands), a.pred.StopLogit(t, enc))
		banned := make([]bool, len(s.cands)+1)
		for _, rc := range s.roots {
			banned[stopIdx] = rc.noStop
			rootLogits := maskLogits(t, baseLogits, banned)
			logp = t.Add(logp, t.LogProbAt(rootLogits, rc.pick))
			ent = t.Add(ent, t.Entropy(rootLogits))
			if rc.pick == stopIdx {
				break
			}
			pipeLogits := truncate(t, a.pred.PipelineLogits(t, enc, s.cands[rc.pick]), rc.pipeMax+1)
			logp = t.Add(logp, t.LogProbAt(pipeLogits, rc.pipePick))
			ent = t.Add(ent, t.Entropy(pipeLogits))
			banned[rc.pick] = true
		}
	}
	for qi, bucket := range s.grants {
		parLogits := a.pred.ParallelismLogits(t, enc, qi, s.snap.Queries[qi].QF)
		logp = t.Add(logp, t.LogProbAt(parLogits, bucket))
		ent = t.Add(ent, t.Entropy(parLogits))
	}
	loss := t.Scale(logp, -advantage)
	if entropyW > 0 {
		loss = t.Sub(loss, t.Scale(ent, entropyW))
	}
	t.Backward(loss)
}

// maskLogits pushes banned entries to −∞ (approximated by a large
// negative constant so gradients stay finite).
func maskLogits(t *nn.Tape, logits *nn.Node, banned []bool) *nn.Node {
	mask := make([]float64, logits.Len())
	for i, b := range banned {
		if b {
			mask[i] = -1e9
		}
	}
	return t.Add(logits, t.Const(mask))
}

// truncate keeps the first n entries of a logits vector.
func truncate(t *nn.Tape, logits *nn.Node, n int) *nn.Node {
	if n >= logits.Len() {
		return logits
	}
	parts := make([]*nn.Node, n)
	for i := 0; i < n; i++ {
		parts[i] = t.Slice(logits, i)
	}
	return t.Concat(parts...)
}

func discountedReturns(rewards []float64, gamma float64) []float64 {
	out := make([]float64, len(rewards))
	g := 0.0
	for i := len(rewards) - 1; i >= 0; i-- {
		g = rewards[i] + gamma*g
		out[i] = g
	}
	return out
}

// baseline is the cross-episode reward baseline that keeps REINFORCE's
// variance manageable (the paper cites [61], the optimal-baseline line
// of work; Decima uses the same per-step-index construction): for each
// decision index it tracks an exponential moving average of the
// return-to-go across episodes, so an episode that is better than the
// recent past yields positive advantages and reinforces its actions.
type baseline struct {
	decay float64
	vals  []float64
	seen  []bool
	scale float64
}

func newBaseline(decay float64) *baseline {
	return &baseline{decay: decay, scale: 1}
}

// advantages returns (G_i − b_i)/scale and folds G into the baseline.
func (b *baseline) advantages(returns []float64) []float64 {
	for len(b.vals) < len(returns) {
		b.vals = append(b.vals, 0)
		b.seen = append(b.seen, false)
	}
	advs := make([]float64, len(returns))
	var absSum float64
	for i, g := range returns {
		if !b.seen[i] {
			b.vals[i] = g
			b.seen[i] = true
		}
		advs[i] = g - b.vals[i]
		absSum += math.Abs(advs[i])
		b.vals[i] = b.decay*b.vals[i] + (1-b.decay)*g
	}
	// Normalize by a running scale so the learning rate is workload-
	// independent.
	meanAbs := absSum / float64(len(returns))
	b.scale = b.decay*b.scale + (1-b.decay)*meanAbs
	s := b.scale
	if s < 1e-9 {
		s = 1e-9
	}
	for i := range advs {
		advs[i] /= s
	}
	return advs
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// TransferFrom initializes this agent from a previously trained agent's
// parameters and freezes the inner layers (§6): every convolution layer
// and every hidden MLP layer stays fixed; only the layers adjacent to
// the network inputs and outputs retrain on the new workload.
func (a *Agent) TransferFrom(src *Agent) error {
	data, err := src.params.Serialize()
	if err != nil {
		return err
	}
	if err := a.params.Load(data); err != nil {
		return err
	}
	a.params.Unfreeze()
	// Freeze inner layers: the convolution stacks and the first (hidden)
	// layer of each two-layer MLP head; input projections (enc.in,
	// enc.edge) and final output layers (.l1) stay trainable.
	a.params.FreezeMatching(".conv", ".l0")
	return nil
}

// Checkpoint serializes the agent's parameters.
func (a *Agent) Checkpoint() ([]byte, error) { return a.params.Serialize() }

// Restore loads parameters produced by Checkpoint.
func (a *Agent) Restore(data []byte) error { return a.params.Load(data) }
