package lsched

import (
	"sync"
	"testing"

	"repro/internal/nn"
)

func idleFeatures() *AdmissionFeatures {
	return &AdmissionFeatures{FreeSlots: 8, DeadlineHeadroom: 5, LatencySensitive: 1}
}

func swampedFeatures() *AdmissionFeatures {
	return &AdmissionFeatures{
		TenantQueueDepth: 200, TotalQueueDepth: 1000, InFlight: 256,
		TenantShare: 0.9, PredDur: 10, PredWait: 30, DeadlineHeadroom: -20,
	}
}

// TestAdmissionPrior: a fresh head must already be a sane policy —
// admit into an idle system, lean hard against a hopeless query on a
// swamped one. The learned refinement starts from here, not from noise.
func TestAdmissionPrior(t *testing.T) {
	h := NewAdmissionHead(nn.NewParams(1))
	if s := h.Score(idleFeatures()); s < 0.8 {
		t.Fatalf("idle-system admit score = %v, want > 0.8", s)
	}
	if s := h.Score(swampedFeatures()); s > 0.3 {
		t.Fatalf("swamped hopeless-query score = %v, want < 0.3", s)
	}
}

// TestAdmissionUpdateMovesScore: online logistic steps must move the
// score toward the observed label.
func TestAdmissionUpdateMovesScore(t *testing.T) {
	h := NewAdmissionHead(nn.NewParams(2))
	f := &AdmissionFeatures{TotalQueueDepth: 30, InFlight: 16, PredDur: 2, DeadlineHeadroom: 0.5}
	before := h.Score(f)
	for i := 0; i < 50; i++ {
		h.Update(f, 0) // admitting in this state kept missing deadlines
	}
	after := h.Score(f)
	if after >= before {
		t.Fatalf("score did not drop after negative outcomes: %v -> %v", before, after)
	}
	for i := 0; i < 200; i++ {
		h.Update(f, 1)
	}
	if final := h.Score(f); final <= after {
		t.Fatalf("score did not recover after positive outcomes: %v -> %v", after, final)
	}
}

// TestAdmissionCheckpointRoundTrip: the head's weights live on the
// agent's parameter registry, so Serialize/Load must carry a trained
// admission policy — and re-attaching a head must preserve the loaded
// values instead of re-running prior init.
func TestAdmissionCheckpointRoundTrip(t *testing.T) {
	a := New(DefaultOptions(3))
	h := a.Admission()
	f := swampedFeatures()
	for i := 0; i < 40; i++ {
		h.Update(f, 1) // push the head away from its prior
	}
	trained := h.Score(f)
	blob, err := a.Params().Serialize()
	if err != nil {
		t.Fatal(err)
	}

	b := New(DefaultOptions(99))
	b.Admission() // register "adm." names so Load finds a home for them
	if err := b.Params().Load(blob); err != nil {
		t.Fatal(err)
	}
	if got := b.Admission().Score(f); got != trained {
		t.Fatalf("restored score = %v, want trained %v", got, trained)
	}
	if w, _ := b.Admission().Weights(); len(w) != AdmissionFeatureDim {
		t.Fatalf("weights len = %d, want %d", len(w), AdmissionFeatureDim)
	}
}

// TestAdmissionLazyRegistration: agents that never serve a front door
// keep their parameter set (and checkpoint compatibility) unchanged.
func TestAdmissionLazyRegistration(t *testing.T) {
	a := New(DefaultOptions(4))
	if _, ok := a.Params().Get("adm.head.W"); ok {
		t.Fatal("admission parameters registered before Admission() was called")
	}
	a.Admission()
	if _, ok := a.Params().Get("adm.head.W"); !ok {
		t.Fatal("Admission() did not register head parameters")
	}
	if a.Admission() != a.adm {
		t.Fatal("Admission() is not idempotent")
	}
}

// TestAdmissionConcurrentScoreUpdate: the head is called from
// front-door goroutines; Score and Update must be race-free.
func TestAdmissionConcurrentScoreUpdate(t *testing.T) {
	h := NewAdmissionHead(nn.NewParams(5))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := &AdmissionFeatures{TotalQueueDepth: float64(g), DeadlineHeadroom: 1}
			for i := 0; i < 500; i++ {
				if i%3 == 0 {
					h.Update(f, float64(i%2))
				} else {
					h.Score(f)
				}
			}
		}(g)
	}
	wg.Wait()
}
