// Package lsched implements the paper's primary contribution: the
// LSched scheduling agent. It wires the feature extractor (§4.1), Query
// Encoder (§4.2–4.3), and Scheduling Predictor (§5.3) into an
// engine.Scheduler, and provides REINFORCE training with the combined
// average/tail-latency reward (§6) plus layer-freezing transfer learning.
package lsched

import (
	"math"
	"math/rand"

	"repro/internal/encoder"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/predictor"
)

// Options configures an agent. The ablation switches correspond to the
// Fig. 15 variants.
type Options struct {
	// Seed drives parameter initialization and action sampling.
	Seed int64
	// Hidden is the embedding width.
	Hidden int
	// ConvLayers is the number of stacked convolution layers.
	ConvLayers int
	// UseTCN selects the customized tree convolution (false = Decima-
	// style sequential message passing — the "w/o Triangle Convolution"
	// ablation).
	UseTCN bool
	// UseGAT enables attention re-weighting ("w/o Graph Attention" when
	// false).
	UseGAT bool
	// UseEdges includes the edge terms in the triangle filters; false
	// degenerates Eq. 2 to stock node-only tree convolution (an extra
	// ablation beyond Fig. 15).
	UseEdges bool
	// DisablePipelining forces pipeline degree 0 ("w/o Pipelining
	// Prediction" ablation; also part of the Decima baseline).
	DisablePipelining bool
	// Greedy selects argmax actions (evaluation); false samples from the
	// policy (training/exploration).
	Greedy bool
	// MaxDecisionsPerEvent bounds the scheduling loop per event.
	MaxDecisionsPerEvent int
	// Name overrides the scheduler name (the Decima baseline wraps this
	// agent under its own name).
	Name string
	// FeatCfg sets feature dimensions; zero value selects defaults.
	FeatCfg features.Config
}

// DefaultOptions returns the configuration used in the experiments.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:                 seed,
		Hidden:               16,
		ConvLayers:           2,
		UseTCN:               true,
		UseGAT:               true,
		UseEdges:             true,
		MaxDecisionsPerEvent: 8,
		FeatCfg:              features.DefaultConfig(),
	}
}

// rootChoice records one sampled execution-root action (with its
// pipeline degree) within an event; earlier picks are banned for later
// ones (sampling without replacement). pick == len(cands) is the stop
// action (schedule nothing further at this event); noStop records that
// stopping was masked out for this choice (the safety rule forcing at
// least one activation when the system would otherwise idle).
type rootChoice struct {
	pick     int
	pipePick int
	pipeMax  int
	noStop   bool
}

// step records everything needed to replay one scheduling event for
// REINFORCE: the snapshot the policy saw, the candidate set, the
// sampled root/pipeline actions, the per-query parallelism buckets
// (§5.3.3 predicts a degree for every running query), and the event
// time (for the H_d reward terms).
type step struct {
	snap        *encoder.Snapshot
	cands       []predictor.Candidate
	roots       []rootChoice
	grants      []int // parallelism bucket per query, parallel to snap.Queries
	time        float64
	liveQueries int
}

// Agent is the LSched scheduling agent.
type Agent struct {
	opts   Options
	params *nn.Params
	enc    *encoder.Encoder
	pred   *predictor.Predictor
	ext    *features.Extractor
	rng    *rand.Rand
	// tape is reused across scheduling events to recycle its arenas.
	tape *nn.Tape

	recording bool
	episode   []*step

	// Observability handles (nil when not instrumented): how often the
	// policy was invoked, how many roots it activated vs. declined
	// (stop actions), and the candidate-set size it last saw.
	mEvents     *metrics.Counter
	mRoots      *metrics.Counter
	mStops      *metrics.Counter
	mCandidates *metrics.Gauge
}

// New builds an agent with freshly initialized parameters.
func New(opts Options) *Agent {
	if opts.Hidden <= 0 {
		opts.Hidden = 16
	}
	if opts.ConvLayers <= 0 {
		opts.ConvLayers = 2
	}
	if opts.MaxDecisionsPerEvent <= 0 {
		opts.MaxDecisionsPerEvent = 8
	}
	if opts.FeatCfg.BlockFeat == 0 {
		opts.FeatCfg = features.DefaultConfig()
	}
	params := nn.NewParams(opts.Seed)
	ext := features.NewExtractor(opts.FeatCfg)
	encCfg := encoder.DefaultConfig(opts.FeatCfg.OpDim(), opts.FeatCfg.EdgeDim(), opts.FeatCfg.QueryDim())
	encCfg.Hidden = opts.Hidden
	encCfg.Layers = opts.ConvLayers
	encCfg.UseTCN = opts.UseTCN
	encCfg.UseGAT = opts.UseGAT
	encCfg.UseEdges = opts.UseEdges
	a := &Agent{
		opts:   opts,
		params: params,
		enc:    encoder.New(params, encCfg),
		pred:   predictor.New(params, predictor.DefaultConfig(opts.Hidden, opts.FeatCfg.QueryDim())),
		ext:    ext,
		rng:    rand.New(rand.NewSource(opts.Seed + 7919)),
		tape:   nn.NewTape(),
	}
	return a
}

// Name implements engine.Scheduler.
func (a *Agent) Name() string {
	if a.opts.Name != "" {
		return a.opts.Name
	}
	return "LSched"
}

// Params exposes the parameter registry (for checkpointing, transfer
// learning, and tests).
func (a *Agent) Params() *nn.Params { return a.params }

// Options returns the agent's configuration.
func (a *Agent) Options() Options { return a.opts }

// SetGreedy toggles argmax action selection.
func (a *Agent) SetGreedy(g bool) { a.opts.Greedy = g }

// Instrument attaches decision-level observability to the agent. A nil
// registry leaves it un-instrumented (the zero-overhead default).
func (a *Agent) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	a.mEvents = reg.Counter("lsched_events")
	a.mRoots = reg.Counter("lsched_root_decisions")
	a.mStops = reg.Counter("lsched_stop_actions")
	a.mCandidates = reg.Gauge("lsched_candidates")
}

// startRecording clears and enables the episode buffer.
func (a *Agent) startRecording() { a.recording = true; a.episode = a.episode[:0] }

// stopRecording disables the buffer and returns the recorded steps.
func (a *Agent) stopRecording() []*step {
	a.recording = false
	out := a.episode
	a.episode = nil
	return out
}

// buildSnapshot captures the feature tensors of every running query.
func (a *Agent) buildSnapshot(st *engine.State) *encoder.Snapshot {
	snap := &encoder.Snapshot{}
	for _, q := range st.Queries {
		qs := encoder.QuerySnapshot{QueryID: q.ID, QF: a.ext.Query(st, q)}
		for _, os := range q.OpStates {
			op := encoder.OpSnapshot{OpID: os.Op.ID, Feat: a.ext.Operator(st, q, os)}
			for _, e := range os.Op.Children() {
				op.Children = append(op.Children, encoder.ChildRef{
					OpIdx:    e.Child.ID,
					EdgeFeat: a.ext.Edge(e),
				})
			}
			qs.Ops = append(qs.Ops, op)
		}
		snap.Queries = append(snap.Queries, qs)
	}
	return snap
}

// anyActiveWork reports whether any query has an activated, unfinished
// operator — i.e. whether the engine has something to run even if the
// scheduler declines to schedule more.
func anyActiveWork(st *engine.State) bool {
	for _, q := range st.Queries {
		for _, os := range q.OpStates {
			if os.Active && !os.Done {
				return true
			}
		}
	}
	return false
}

// candidates lists the schedulable roots across all queries, paired with
// their current longest pipeline path.
func candidates(st *engine.State, maxDepth int) []predictor.Candidate {
	var cands []predictor.Candidate
	for qi, q := range st.Queries {
		for _, op := range q.SchedulableRoots() {
			d := q.Plan.LongestPipelinePathFrom(op)
			if d > maxDepth {
				d = maxDepth
			}
			cands = append(cands, predictor.Candidate{QIdx: qi, OpIdx: op.ID, OpID: op.ID, MaxDepth: d})
		}
	}
	return cands
}

// OnEvent implements engine.Scheduler: it encodes the state once, takes
// up to MaxDecisionsPerEvent root decisions (sampled without
// replacement, bounded by the free thread count), and then predicts the
// parallelism degree of every running query (§5.3.3), emitting
// grant-only decisions so thread shares are re-balanced at each event.
func (a *Agent) OnEvent(st *engine.State, ev Event) []engine.Decision {
	if len(st.Queries) == 0 {
		return nil
	}
	a.mEvents.Inc()
	cands := candidates(st, a.pred.Config().MaxPipelineDepth)
	a.mCandidates.Set(float64(len(cands)))
	snap := a.buildSnapshot(st)
	t := a.tape
	t.Reset()
	enc := a.enc.Encode(t, snap)

	var decisions []engine.Decision
	var roots []rootChoice
	if len(cands) > 0 {
		// Root logits do not change within one event; sampling without
		// replacement only needs the ban mask. A trailing stop logit
		// lets the policy decline to schedule more — deferring work is
		// how staggered pipelines and buffer headroom are expressed.
		rootLogits := t.Concat(a.pred.RootLogits(t, enc, cands), a.pred.StopLogit(t, enc))
		stopIdx := len(cands)
		banned := make([]bool, len(cands)+1)
		budget := st.FreeThreads()
		if budget < 1 {
			budget = 1
		}
		if budget > a.opts.MaxDecisionsPerEvent {
			budget = a.opts.MaxDecisionsPerEvent
		}
		if budget > len(cands) {
			budget = len(cands)
		}
		// Safety: if nothing is running anywhere, stopping without a
		// single activation would idle the engine forever.
		mustActivate := !anyActiveWork(st)
		for iter := 0; iter < budget; iter++ {
			noStop := mustActivate && iter == 0
			banned[stopIdx] = noStop
			pick := a.sampleMasked(rootLogits.Val, banned)
			if pick < 0 {
				break
			}
			if pick == stopIdx {
				a.mStops.Inc()
				roots = append(roots, rootChoice{pick: pick})
				break
			}
			c := cands[pick]
			pipeMax := c.MaxDepth
			if a.opts.DisablePipelining {
				pipeMax = 0
			}
			pipeLogits := a.pred.PipelineLogits(t, enc, c)
			pipePick := a.sampleBounded(pipeLogits.Val, pipeMax)
			a.mRoots.Inc()
			decisions = append(decisions, engine.Decision{
				QueryID:       snap.Queries[c.QIdx].QueryID,
				RootOpID:      c.OpID,
				PipelineDepth: pipePick,
			})
			roots = append(roots, rootChoice{pick: pick, pipePick: pipePick, pipeMax: pipeMax, noStop: noStop})
			banned[pick] = true
		}
	}
	// Parallelism degree for every running query.
	grants := make([]int, len(snap.Queries))
	for qi := range snap.Queries {
		parLogits := a.pred.ParallelismLogits(t, enc, qi, snap.Queries[qi].QF)
		bucket := a.sampleBounded(parLogits.Val, len(parLogits.Val)-1)
		grants[qi] = bucket
		decisions = append(decisions, engine.Decision{
			QueryID:  snap.Queries[qi].QueryID,
			RootOpID: -1,
			Threads:  a.pred.BucketThreads(bucket, st.TotalThreads()),
		})
	}
	if a.recording {
		a.episode = append(a.episode, &step{
			snap: snap, cands: cands, roots: roots, grants: grants,
			time: st.Now, liveQueries: len(st.Queries),
		})
	}
	return decisions
}

// sampleMasked samples (or argmaxes) an index from softmax(logits) with
// banned entries removed; returns -1 when everything is banned.
func (a *Agent) sampleMasked(logits []float64, banned []bool) int {
	best, bestV := -1, math.Inf(-1)
	max := math.Inf(-1)
	for i, v := range logits {
		if banned[i] {
			continue
		}
		if v > max {
			max = v
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best < 0 {
		return -1
	}
	if a.opts.Greedy {
		return best
	}
	sum := 0.0
	probs := make([]float64, len(logits))
	for i, v := range logits {
		if banned[i] {
			continue
		}
		probs[i] = math.Exp(v - max)
		sum += probs[i]
	}
	r := a.rng.Float64() * sum
	for i, p := range probs {
		if banned[i] {
			continue
		}
		r -= p
		if r <= 0 {
			return i
		}
	}
	return best
}

// sampleBounded samples from softmax(logits[0..bound]) inclusive.
func (a *Agent) sampleBounded(logits []float64, bound int) int {
	if bound >= len(logits) {
		bound = len(logits) - 1
	}
	if bound <= 0 {
		return 0
	}
	sub := logits[:bound+1]
	if a.opts.Greedy {
		best, bestV := 0, math.Inf(-1)
		for i, v := range sub {
			if v > bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	max := math.Inf(-1)
	for _, v := range sub {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	probs := make([]float64, len(sub))
	for i, v := range sub {
		probs[i] = math.Exp(v - max)
		sum += probs[i]
	}
	r := a.rng.Float64() * sum
	for i, p := range probs {
		r -= p
		if r <= 0 {
			return i
		}
	}
	return bound
}

// Event aliases engine.Event so callers outside the engine package read
// naturally.
type Event = engine.Event
