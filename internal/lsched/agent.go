// Package lsched implements the paper's primary contribution: the
// LSched scheduling agent. It wires the feature extractor (§4.1), Query
// Encoder (§4.2–4.3), and Scheduling Predictor (§5.3) into an
// engine.Scheduler, and provides REINFORCE training with the combined
// average/tail-latency reward (§6) plus layer-freezing transfer learning.
package lsched

import (
	"math"
	"math/rand"

	"repro/internal/encoder"
	"repro/internal/engine"
	"repro/internal/features"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/predictor"
	"repro/internal/provenance"
)

// Options configures an agent. The ablation switches correspond to the
// Fig. 15 variants.
type Options struct {
	// Seed drives parameter initialization and action sampling.
	Seed int64
	// Hidden is the embedding width.
	Hidden int
	// ConvLayers is the number of stacked convolution layers.
	ConvLayers int
	// UseTCN selects the customized tree convolution (false = Decima-
	// style sequential message passing — the "w/o Triangle Convolution"
	// ablation).
	UseTCN bool
	// UseGAT enables attention re-weighting ("w/o Graph Attention" when
	// false).
	UseGAT bool
	// UseEdges includes the edge terms in the triangle filters; false
	// degenerates Eq. 2 to stock node-only tree convolution (an extra
	// ablation beyond Fig. 15).
	UseEdges bool
	// DisablePipelining forces pipeline degree 0 ("w/o Pipelining
	// Prediction" ablation; also part of the Decima baseline).
	DisablePipelining bool
	// Greedy selects argmax actions (evaluation); false samples from the
	// policy (training/exploration).
	Greedy bool
	// MaxDecisionsPerEvent bounds the scheduling loop per event.
	MaxDecisionsPerEvent int
	// Name overrides the scheduler name (the Decima baseline wraps this
	// agent under its own name).
	Name string
	// FeatCfg sets feature dimensions; zero value selects defaults.
	FeatCfg features.Config
	// DisableFastPath turns off the serving fast path (gradient-free
	// inference tape, per-query encoding cache, and per-event scratch
	// reuse) and restores the fully allocating recording-tape pipeline.
	// The zero value keeps the fast path on; the toggle exists for
	// A/B benchmarking and for bit-identity tests — decisions are the
	// same either way.
	DisableFastPath bool
}

// DefaultOptions returns the configuration used in the experiments.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:                 seed,
		Hidden:               16,
		ConvLayers:           2,
		UseTCN:               true,
		UseGAT:               true,
		UseEdges:             true,
		MaxDecisionsPerEvent: 8,
		FeatCfg:              features.DefaultConfig(),
	}
}

// rootChoice records one sampled execution-root action (with its
// pipeline degree) within an event; earlier picks are banned for later
// ones (sampling without replacement). pick == len(cands) is the stop
// action (schedule nothing further at this event); noStop records that
// stopping was masked out for this choice (the safety rule forcing at
// least one activation when the system would otherwise idle).
type rootChoice struct {
	pick     int
	pipePick int
	pipeMax  int
	noStop   bool
}

// step records everything needed to replay one scheduling event for
// REINFORCE: the snapshot the policy saw, the candidate set, the
// sampled root/pipeline actions, the per-query parallelism buckets
// (§5.3.3 predicts a degree for every running query), and the event
// time (for the H_d reward terms).
type step struct {
	snap        *encoder.Snapshot
	cands       []predictor.Candidate
	roots       []rootChoice
	grants      []int // parallelism bucket per query, parallel to snap.Queries
	time        float64
	liveQueries int
}

// Agent is the LSched scheduling agent.
type Agent struct {
	opts   Options
	params *nn.Params
	enc    *encoder.Encoder
	pred   *predictor.Predictor
	ext    *features.Extractor
	rng    *rand.Rand
	// tape is the recording tape used for gradient replay; it is reused
	// across updates to recycle its arenas.
	tape *nn.Tape
	// inferTape is the gradient-free tape the serving fast path runs
	// forward passes on: no Grad slabs, no backward closures.
	inferTape *nn.Tape
	// cache memoizes per-query encodings across events (fast path only).
	cache *encoder.Cache
	// adm is the lazily created admission head (see Admission).
	adm *AdmissionHead

	recording bool
	episode   []*step

	// Per-event scratch reused by the fast path. An Agent drives one
	// engine from one goroutine, so plain fields are safe; everything
	// here is dead by the time OnEvent returns (steps recorded for
	// replay are deep copies).
	snapScratch   encoder.Snapshot
	featArena     []float64
	planScratch   []*plan.Operator
	candScratch   []predictor.Candidate
	decScratch    []engine.Decision
	rootScratch   []rootChoice
	grantScratch  []int
	bannedScratch []bool
	probScratch   []float64

	// Observability handles (nil when not instrumented): how often the
	// policy was invoked, how many roots it activated vs. declined
	// (stop actions), and the candidate-set size it last saw.
	mEvents      *metrics.Counter
	mRoots       *metrics.Counter
	mStops       *metrics.Counter
	mCandidates  *metrics.Gauge
	mCacheHits   *metrics.Gauge
	mCacheMisses *metrics.Gauge

	// prov, when attached, receives one flight-recorder record per
	// scheduling event with candidates: the flat feature arena the
	// encoder consumed, the root logits (stop logit last), the chosen
	// root, and the critical-path heuristic's counterfactual pick.
	// provVersion stamps records with the serving policy-store version.
	prov            *provenance.Recorder
	provVersion     int
	provFeatScratch []float64
}

// New builds an agent with freshly initialized parameters.
func New(opts Options) *Agent {
	if opts.Hidden <= 0 {
		opts.Hidden = 16
	}
	if opts.ConvLayers <= 0 {
		opts.ConvLayers = 2
	}
	if opts.MaxDecisionsPerEvent <= 0 {
		opts.MaxDecisionsPerEvent = 8
	}
	if opts.FeatCfg.BlockFeat == 0 {
		opts.FeatCfg = features.DefaultConfig()
	}
	params := nn.NewParams(opts.Seed)
	ext := features.NewExtractor(opts.FeatCfg)
	encCfg := encoder.DefaultConfig(opts.FeatCfg.OpDim(), opts.FeatCfg.EdgeDim(), opts.FeatCfg.QueryDim())
	encCfg.Hidden = opts.Hidden
	encCfg.Layers = opts.ConvLayers
	encCfg.UseTCN = opts.UseTCN
	encCfg.UseGAT = opts.UseGAT
	encCfg.UseEdges = opts.UseEdges
	a := &Agent{
		opts:   opts,
		params: params,
		enc:    encoder.New(params, encCfg),
		pred:   predictor.New(params, predictor.DefaultConfig(opts.Hidden, opts.FeatCfg.QueryDim())),
		ext:    ext,
		rng:    rand.New(rand.NewSource(opts.Seed + 7919)),
		tape:   nn.NewTape(),
		cache:  encoder.NewCache(),
	}
	a.inferTape = nn.NewTape()
	a.inferTape.SetInference(true)
	return a
}

// Name implements engine.Scheduler.
func (a *Agent) Name() string {
	if a.opts.Name != "" {
		return a.opts.Name
	}
	return "LSched"
}

// Params exposes the parameter registry (for checkpointing, transfer
// learning, and tests).
func (a *Agent) Params() *nn.Params { return a.params }

// Options returns the agent's configuration.
func (a *Agent) Options() Options { return a.opts }

// SetGreedy toggles argmax action selection.
func (a *Agent) SetGreedy(g bool) { a.opts.Greedy = g }

// SetFastPath toggles the serving fast path (on by default). Decisions
// are bit-identical either way; the toggle exists for benchmarking.
func (a *Agent) SetFastPath(on bool) { a.opts.DisableFastPath = !on }

// EncodingCacheStats reports the encoding cache's hit/miss counters.
func (a *Agent) EncodingCacheStats() (hits, misses uint64) {
	return a.cache.Hits(), a.cache.Misses()
}

// SetProvenance attaches a decision flight recorder; every subsequent
// scheduling event with candidates records one KindSchedule entry. A
// nil recorder detaches. An Agent drives one engine from one goroutine
// (the OnEvent contract), so no locking is needed.
func (a *Agent) SetProvenance(r *provenance.Recorder) { a.prov = r }

// Provenance returns the attached flight recorder (nil when none).
func (a *Agent) Provenance() *provenance.Recorder { return a.prov }

// SetPolicyVersion stamps subsequent provenance records with the
// policy-store version these parameters were loaded from (0 = not from
// the store). serving.HotAgent calls this on install so hot swaps stay
// attributable record by record.
func (a *Agent) SetPolicyVersion(v int) { a.provVersion = v }

// PolicyVersion returns the stamped policy-store version.
func (a *Agent) PolicyVersion() int { return a.provVersion }

// QueryCompleted implements engine.QueryObserver: it joins the query's
// recorded scheduling decisions to their outcome. Simulated engines
// carry no deadlines, so completion itself counts as deadline-met.
func (a *Agent) QueryCompleted(queryID int, arrival, completion float64) {
	a.prov.JoinOutcome(provenance.KindSchedule, int64(queryID), provenance.Outcome{
		LatencySecs: completion - arrival,
		DeadlineMet: true,
	})
}

// reseedActions re-seeds the action-sampling stream. Training re-seeds
// per episode so an episode's action draws depend only on its index,
// which is what lets parallel rollouts replicate the sequential
// schedule draw-for-draw.
func (a *Agent) reseedActions(seed int64) { a.rng = rand.New(rand.NewSource(seed)) }

// Instrument attaches decision-level observability to the agent. A nil
// registry leaves it un-instrumented (the zero-overhead default).
func (a *Agent) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	a.mEvents = reg.Counter("lsched_events")
	a.mRoots = reg.Counter("lsched_root_decisions")
	a.mStops = reg.Counter("lsched_stop_actions")
	a.mCandidates = reg.Gauge("lsched_candidates")
	a.mCacheHits = reg.Gauge("lsched_enc_cache_hits")
	a.mCacheMisses = reg.Gauge("lsched_enc_cache_misses")
}

// startRecording clears and enables the episode buffer.
func (a *Agent) startRecording() { a.recording = true; a.episode = a.episode[:0] }

// stopRecording disables the buffer and returns the recorded steps.
func (a *Agent) stopRecording() []*step {
	a.recording = false
	out := a.episode
	a.episode = nil
	return out
}

// buildSnapshot captures the feature tensors of every running query,
// allocating everything fresh (the slow path and recording fallback).
func (a *Agent) buildSnapshot(st *engine.State) *encoder.Snapshot {
	snap := &encoder.Snapshot{}
	for _, q := range st.Queries {
		qs := encoder.QuerySnapshot{QueryID: q.ID, QF: a.ext.Query(st, q)}
		for _, os := range q.OpStates {
			op := encoder.OpSnapshot{OpID: os.Op.ID, Feat: a.ext.Operator(st, q, os)}
			for _, e := range os.Op.Children() {
				op.Children = append(op.Children, encoder.ChildRef{
					OpIdx:    e.Child.ID,
					EdgeFeat: a.ext.Edge(e),
				})
			}
			qs.Ops = append(qs.Ops, op)
		}
		snap.Queries = append(snap.Queries, qs)
	}
	return snap
}

// arenaTail returns the arena slice written since base, capped so later
// appends cannot alias into it.
func arenaTail(arena []float64, base int) []float64 {
	return arena[base:len(arena):len(arena)]
}

// buildSnapshotScratch is buildSnapshot into agent-owned buffers: all
// feature vectors land in one flat float64 arena and the snapshot
// structure is recycled event to event, so a steady-state event
// allocates nothing. The returned snapshot is valid until the next
// OnEvent; recording deep-copies it first.
func (a *Agent) buildSnapshotScratch(st *engine.State) *encoder.Snapshot {
	snap := &a.snapScratch
	snap.Queries = snap.Queries[:0]
	a.featArena = a.featArena[:0]
	for _, q := range st.Queries {
		if len(snap.Queries) < cap(snap.Queries) {
			snap.Queries = snap.Queries[:len(snap.Queries)+1]
		} else {
			snap.Queries = append(snap.Queries, encoder.QuerySnapshot{})
		}
		qs := &snap.Queries[len(snap.Queries)-1]
		qs.QueryID = q.ID
		base := len(a.featArena)
		a.featArena = a.ext.AppendQuery(a.featArena, st, q)
		qs.QF = arenaTail(a.featArena, base)
		qs.Ops = qs.Ops[:0]
		for _, os := range q.OpStates {
			if len(qs.Ops) < cap(qs.Ops) {
				qs.Ops = qs.Ops[:len(qs.Ops)+1]
			} else {
				qs.Ops = append(qs.Ops, encoder.OpSnapshot{})
			}
			op := &qs.Ops[len(qs.Ops)-1]
			op.OpID = os.Op.ID
			base = len(a.featArena)
			a.featArena = a.ext.AppendOperator(a.featArena, st, q, os)
			op.Feat = arenaTail(a.featArena, base)
			op.Children = op.Children[:0]
			for _, e := range os.Op.Children() {
				base = len(a.featArena)
				a.featArena = a.ext.AppendEdge(a.featArena, e)
				op.Children = append(op.Children, encoder.ChildRef{
					OpIdx:    e.Child.ID,
					EdgeFeat: arenaTail(a.featArena, base),
				})
			}
		}
	}
	return snap
}

// cloneSnapshot deep-copies a scratch-backed snapshot so a recorded
// step survives the next event's buffer reuse.
func cloneSnapshot(snap *encoder.Snapshot) *encoder.Snapshot {
	out := &encoder.Snapshot{Queries: make([]encoder.QuerySnapshot, len(snap.Queries))}
	for qi := range snap.Queries {
		src := &snap.Queries[qi]
		dst := &out.Queries[qi]
		dst.QueryID = src.QueryID
		dst.QF = append([]float64(nil), src.QF...)
		dst.Ops = make([]encoder.OpSnapshot, len(src.Ops))
		for oi := range src.Ops {
			so := &src.Ops[oi]
			do := &dst.Ops[oi]
			do.OpID = so.OpID
			do.Feat = append([]float64(nil), so.Feat...)
			if len(so.Children) > 0 {
				do.Children = make([]encoder.ChildRef, len(so.Children))
				for ci := range so.Children {
					do.Children[ci] = encoder.ChildRef{
						OpIdx:    so.Children[ci].OpIdx,
						EdgeFeat: append([]float64(nil), so.Children[ci].EdgeFeat...),
					}
				}
			}
		}
	}
	return out
}

// flattenSnapshot serializes a slow-path snapshot's feature tensors
// into one flat vector (agent scratch, reused across events) in the
// same query → QF, per-op Feat, per-edge EdgeFeat order the fast
// path's feature arena uses, so provenance records are comparable
// across paths.
func (a *Agent) flattenSnapshot(snap *encoder.Snapshot) []float64 {
	out := a.provFeatScratch[:0]
	for qi := range snap.Queries {
		q := &snap.Queries[qi]
		out = append(out, q.QF...)
		for oi := range q.Ops {
			out = append(out, q.Ops[oi].Feat...)
			for ci := range q.Ops[oi].Children {
				out = append(out, q.Ops[oi].Children[ci].EdgeFeat...)
			}
		}
	}
	a.provFeatScratch = out
	return out
}

// criticalPathPick is the heuristic counterfactual recorded with each
// scheduling decision: the candidate the critical-path baseline would
// activate (longest pipeline path, first wins ties), mirroring
// heuristics.CriticalPath without importing it.
func criticalPathPick(cands []predictor.Candidate) int32 {
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].MaxDepth > cands[best].MaxDepth {
			best = i
		}
	}
	return int32(best)
}

// anyActiveWork reports whether any query has an activated, unfinished
// operator — i.e. whether the engine has something to run even if the
// scheduler declines to schedule more.
func anyActiveWork(st *engine.State) bool {
	for _, q := range st.Queries {
		for _, os := range q.OpStates {
			if os.Active && !os.Done {
				return true
			}
		}
	}
	return false
}

// appendCandidates lists the schedulable roots across all queries,
// paired with their current longest pipeline path, appending into dst.
// rootsScratch is reused per query; both slices are returned so callers
// can keep their grown capacity.
func appendCandidates(dst []predictor.Candidate, rootsScratch []*plan.Operator, st *engine.State, maxDepth int) ([]predictor.Candidate, []*plan.Operator) {
	for qi, q := range st.Queries {
		rootsScratch = q.AppendSchedulableRoots(rootsScratch[:0])
		for _, op := range rootsScratch {
			d := q.Plan.LongestPipelinePathFrom(op)
			if d > maxDepth {
				d = maxDepth
			}
			dst = append(dst, predictor.Candidate{QIdx: qi, OpIdx: op.ID, OpID: op.ID, MaxDepth: d})
		}
	}
	return dst, rootsScratch
}

// candidates is the allocating form of appendCandidates.
func candidates(st *engine.State, maxDepth int) []predictor.Candidate {
	cands, _ := appendCandidates(nil, nil, st, maxDepth)
	return cands
}

// OnEvent implements engine.Scheduler: it encodes the state once, takes
// up to MaxDecisionsPerEvent root decisions (sampled without
// replacement, bounded by the free thread count), and then predicts the
// parallelism degree of every running query (§5.3.3), emitting
// grant-only decisions so thread shares are re-balanced at each event.
//
// The fast path (the default) runs the forward pass on a gradient-free
// tape, serves unchanged queries from the encoding cache, and reuses
// agent-owned scratch buffers, so a steady-state event allocates
// almost nothing. It is used even while recording an episode: the
// sampled actions only depend on forward values, which are
// bit-identical across tape modes, and replayStep re-runs the forward
// pass on the recording tape when gradients are needed.
func (a *Agent) OnEvent(st *engine.State, ev Event) []engine.Decision {
	if len(st.Queries) == 0 {
		return nil
	}
	a.mEvents.Inc()
	fast := !a.opts.DisableFastPath
	var (
		cands []predictor.Candidate
		snap  *encoder.Snapshot
		t     *nn.Tape
		enc   *encoder.Output
	)
	if fast {
		cands, a.planScratch = appendCandidates(a.candScratch[:0], a.planScratch, st, a.pred.Config().MaxPipelineDepth)
		a.candScratch = cands
		snap = a.buildSnapshotScratch(st)
		t = a.inferTape
		t.Reset()
		enc = a.enc.EncodeWithCache(t, snap, a.cache, a.params.Version())
		a.mCacheHits.Set(float64(a.cache.Hits()))
		a.mCacheMisses.Set(float64(a.cache.Misses()))
	} else {
		cands = candidates(st, a.pred.Config().MaxPipelineDepth)
		snap = a.buildSnapshot(st)
		t = a.tape
		t.Reset()
		enc = a.enc.Encode(t, snap)
	}
	a.mCandidates.Set(float64(len(cands)))

	var decisions []engine.Decision
	var roots []rootChoice
	if fast {
		decisions = a.decScratch[:0]
		roots = a.rootScratch[:0]
	}
	if len(cands) > 0 {
		// Root logits do not change within one event; sampling without
		// replacement only needs the ban mask. A trailing stop logit
		// lets the policy decline to schedule more — deferring work is
		// how staggered pipelines and buffer headroom are expressed.
		rootLogits := t.Concat(a.pred.RootLogits(t, enc, cands), a.pred.StopLogit(t, enc))
		stopIdx := len(cands)
		var banned []bool
		if fast {
			banned = a.boolScratch(len(cands) + 1)
		} else {
			banned = make([]bool, len(cands)+1)
		}
		budget := st.FreeThreads()
		if budget < 1 {
			budget = 1
		}
		if budget > a.opts.MaxDecisionsPerEvent {
			budget = a.opts.MaxDecisionsPerEvent
		}
		if budget > len(cands) {
			budget = len(cands)
		}
		// Safety: if nothing is running anywhere, stopping without a
		// single activation would idle the engine forever.
		mustActivate := !anyActiveWork(st)
		for iter := 0; iter < budget; iter++ {
			noStop := mustActivate && iter == 0
			banned[stopIdx] = noStop
			pick := a.sampleMasked(rootLogits.Val, banned)
			if pick < 0 {
				break
			}
			if pick == stopIdx {
				a.mStops.Inc()
				roots = append(roots, rootChoice{pick: pick})
				break
			}
			c := cands[pick]
			pipeMax := c.MaxDepth
			if a.opts.DisablePipelining {
				pipeMax = 0
			}
			pipeLogits := a.pred.PipelineLogits(t, enc, c)
			pipePick := a.sampleBounded(pipeLogits.Val, pipeMax)
			a.mRoots.Inc()
			decisions = append(decisions, engine.Decision{
				QueryID:       snap.Queries[c.QIdx].QueryID,
				RootOpID:      c.OpID,
				PipelineDepth: pipePick,
			})
			roots = append(roots, rootChoice{pick: pick, pipePick: pipePick, pipeMax: pipeMax, noStop: noStop})
			banned[pick] = true
		}
		if a.prov != nil {
			// Flight-record the root decision: the exact flat feature
			// arena the encoder consumed, every root logit (stop last),
			// the first pick taken, and what the critical-path heuristic
			// would have activated instead. The fast path's arena is
			// already flat; the slow path flattens into agent scratch, so
			// neither allocates steady-state.
			feats := a.featArena
			if !fast {
				feats = a.flattenSnapshot(snap)
			}
			qid, action, actionArg := int64(-1), int32(-1), int32(0)
			if len(roots) > 0 && roots[0].pick < stopIdx {
				c := cands[roots[0].pick]
				qid = int64(snap.Queries[c.QIdx].QueryID)
				action = int32(roots[0].pick)
				actionArg = int32(roots[0].pipePick)
			}
			a.prov.Record(provenance.KindSchedule, qid, "", a.provVersion,
				feats, rootLogits.Val, action, actionArg, criticalPathPick(cands))
		}
	}
	// Parallelism degree for every running query.
	var grants []int
	if fast {
		if cap(a.grantScratch) < len(snap.Queries) {
			a.grantScratch = make([]int, len(snap.Queries))
		}
		grants = a.grantScratch[:len(snap.Queries)]
	} else {
		grants = make([]int, len(snap.Queries))
	}
	for qi := range snap.Queries {
		parLogits := a.pred.ParallelismLogits(t, enc, qi, snap.Queries[qi].QF)
		bucket := a.sampleBounded(parLogits.Val, len(parLogits.Val)-1)
		grants[qi] = bucket
		decisions = append(decisions, engine.Decision{
			QueryID:  snap.Queries[qi].QueryID,
			RootOpID: -1,
			Threads:  a.pred.BucketThreads(bucket, st.TotalThreads()),
		})
	}
	if a.recording {
		s := &step{time: st.Now, liveQueries: len(st.Queries)}
		if fast {
			// The scratch backing everything is reused next event, so the
			// recorded step keeps its own deep copies.
			s.snap = cloneSnapshot(snap)
			s.cands = append([]predictor.Candidate(nil), cands...)
			s.roots = append([]rootChoice(nil), roots...)
			s.grants = append([]int(nil), grants...)
		} else {
			s.snap, s.cands, s.roots, s.grants = snap, cands, roots, grants
		}
		a.episode = append(a.episode, s)
	}
	if fast {
		// Keep grown capacity for the next event.
		a.decScratch = decisions[:0]
		a.rootScratch = roots[:0]
	}
	return decisions
}

// boolScratch returns a zeroed agent-owned bool slice of length n.
func (a *Agent) boolScratch(n int) []bool {
	if cap(a.bannedScratch) < n {
		a.bannedScratch = make([]bool, n)
	}
	b := a.bannedScratch[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// probs returns a zeroed agent-owned float64 scratch slice of length n
// (sampling helpers run strictly sequentially within one event).
func (a *Agent) probs(n int) []float64 {
	if a.opts.DisableFastPath {
		return make([]float64, n)
	}
	if cap(a.probScratch) < n {
		a.probScratch = make([]float64, n)
	}
	p := a.probScratch[:n]
	for i := range p {
		p[i] = 0
	}
	return p
}

// sampleMasked samples (or argmaxes) an index from softmax(logits) with
// banned entries removed; returns -1 when everything is banned.
func (a *Agent) sampleMasked(logits []float64, banned []bool) int {
	best, bestV := -1, math.Inf(-1)
	max := math.Inf(-1)
	for i, v := range logits {
		if banned[i] {
			continue
		}
		if v > max {
			max = v
		}
		if v > bestV {
			best, bestV = i, v
		}
	}
	if best < 0 {
		return -1
	}
	if a.opts.Greedy {
		return best
	}
	sum := 0.0
	probs := a.probs(len(logits))
	for i, v := range logits {
		if banned[i] {
			continue
		}
		probs[i] = math.Exp(v - max)
		sum += probs[i]
	}
	r := a.rng.Float64() * sum
	for i, p := range probs {
		if banned[i] {
			continue
		}
		r -= p
		if r <= 0 {
			return i
		}
	}
	return best
}

// sampleBounded samples from softmax(logits[0..bound]) inclusive.
func (a *Agent) sampleBounded(logits []float64, bound int) int {
	if bound >= len(logits) {
		bound = len(logits) - 1
	}
	if bound <= 0 {
		return 0
	}
	sub := logits[:bound+1]
	if a.opts.Greedy {
		best, bestV := 0, math.Inf(-1)
		for i, v := range sub {
			if v > bestV {
				best, bestV = i, v
			}
		}
		return best
	}
	max := math.Inf(-1)
	for _, v := range sub {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	probs := a.probs(len(sub))
	for i, v := range sub {
		probs[i] = math.Exp(v - max)
		sum += probs[i]
	}
	r := a.rng.Float64() * sum
	for i, p := range probs {
		r -= p
		if r <= 0 {
			return i
		}
	}
	return bound
}

// Event aliases engine.Event so callers outside the engine package read
// naturally.
type Event = engine.Event
