package lsched

import (
	"testing"

	"repro/internal/engine"
)

func TestOnlineAgentLearnsWhileServing(t *testing.T) {
	agent := New(DefaultOptions(23))
	before, err := agent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	online := NewOnlineAgent(agent, OnlineConfig{CheckpointEvery: 3, LR: 1e-3, W1: 1, W2: 0}, nil)
	sim := engine.NewSim(engine.SimConfig{Threads: 8, Seed: 23, NoiseFrac: 0.1})
	sim.SetObserver(online)
	res, err := sim.Run(online, testArrivals(t, 12, 23))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 12 {
		t.Fatalf("completed %d of 12", len(res.Durations))
	}
	if online.Windows() < 3 {
		t.Fatalf("expected >=3 online updates, got %d", online.Windows())
	}
	after, err := agent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) == string(after) {
		t.Fatal("online self-correction did not change the parameters")
	}
	if online.Experiences().Len() != online.Windows() {
		t.Fatalf("experience manager holds %d records for %d windows",
			online.Experiences().Len(), online.Windows())
	}
	for _, e := range online.Experiences().All() {
		if e.Source != "online" || e.Decisions == 0 {
			t.Fatalf("malformed experience %+v", e)
		}
	}
}

func TestExperienceManagerRingAndSerialization(t *testing.T) {
	m := NewExperienceManager(3)
	for i := 0; i < 5; i++ {
		m.Record(Experience{Source: "train", Episode: i, AvgReward: float64(-i)})
	}
	if m.Len() != 3 || m.Total() != 5 {
		t.Fatalf("len %d total %d, want 3 and 5", m.Len(), m.Total())
	}
	all := m.All()
	if all[0].Episode != 2 || all[2].Episode != 4 {
		t.Fatalf("ring order wrong: %+v", all)
	}
	if got := m.MeanReward(); got != -3 {
		t.Fatalf("mean reward %v, want -3", got)
	}
	data, err := m.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewExperienceManager(3)
	if err := m2.Load(data); err != nil {
		t.Fatal(err)
	}
	restored := m2.All()
	if len(restored) != 3 || restored[0].Episode != 2 {
		t.Fatalf("restored %+v", restored)
	}
}

func TestExperienceManagerEmptyMean(t *testing.T) {
	if NewExperienceManager(4).MeanReward() != 0 {
		t.Fatal("empty manager mean should be 0")
	}
}
