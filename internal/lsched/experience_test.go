package lsched

import (
	"bytes"
	"reflect"
	"testing"
)

func filledManager(n int) *ExperienceManager {
	m := NewExperienceManager(8)
	for i := 0; i < n; i++ {
		m.Record(Experience{Source: "train", Episode: i, AvgReward: float64(i), Decisions: i + 1})
	}
	return m
}

func TestExperienceSerializeRoundTrip(t *testing.T) {
	m := filledManager(12) // wraps the capacity-8 ring
	data, err := m.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewExperienceManager(8)
	if err := m2.Load(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.All(), m2.All()) {
		t.Fatalf("round trip differs:\n want %+v\n got  %+v", m.All(), m2.All())
	}
}

// TestExperienceLoadCorruption feeds truncated and garbage input: Load
// must return an error (never panic) and leave the receiver unchanged.
func TestExperienceLoadCorruption(t *testing.T) {
	src := filledManager(5)
	good, err := src.Serialize()
	if err != nil {
		t.Fatal(err)
	}

	dst := filledManager(3)
	before := dst.All()
	beforeTotal := dst.Total()

	check := func(bad []byte, label string) {
		t.Helper()
		if err := dst.Load(bad); err == nil {
			t.Fatalf("%s loaded cleanly", label)
		}
		if !reflect.DeepEqual(dst.All(), before) || dst.Total() != beforeTotal {
			t.Fatalf("%s: failed Load mutated the receiver", label)
		}
	}

	for cut := 0; cut < len(good); cut += 3 {
		check(good[:cut], "truncation")
	}
	check([]byte("definitely not gob"), "garbage")
	check(bytes.Repeat([]byte{0xee}, 256), "noise")

	// Still loadable after all those failures.
	if err := dst.Load(good); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dst.All(), src.All()) {
		t.Fatal("good snapshot no longer loads after corruption attempts")
	}
}

// TestExperienceLoadBitFlips asserts no panic across single-byte
// corruption of every position, and no receiver mutation on error.
func TestExperienceLoadBitFlips(t *testing.T) {
	src := filledManager(5)
	good, err := src.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	dst := filledManager(2)
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		before := dst.All()
		if err := dst.Load(bad); err != nil {
			if !reflect.DeepEqual(dst.All(), before) {
				t.Fatalf("flip at %d: failed Load mutated the receiver", i)
			}
		}
		// A flip that still decodes validly may legitimately load.
	}
}
