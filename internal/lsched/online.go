package lsched

import (
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/policystore"
)

// OnlineConfig configures online self-correction (§3): in the online
// mode, completely executed scheduling decisions are rewarded and used
// to update the predictor either per query or at user-controlled
// checkpoints.
type OnlineConfig struct {
	// CheckpointEvery applies one policy update after this many
	// completed queries (1 = query-by-query self-correction).
	CheckpointEvery int
	// LR is the online learning rate (typically smaller than training).
	LR float64
	// W1, W2, TailPercentile mirror TrainConfig's reward weights.
	W1, W2         float64
	TailPercentile float64
	// GradClip bounds the update norm.
	GradClip float64
	// EntropyWeight keeps mild exploration pressure online.
	EntropyWeight float64
	// Greedy keeps action selection deterministic while still learning
	// from outcomes; sampling explores online (riskier but adapts
	// faster).
	Greedy bool
}

// DefaultOnlineConfig returns conservative online-correction settings.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{
		CheckpointEvery: 10,
		LR:              5e-4,
		W1:              0.5,
		W2:              0.5,
		TailPercentile:  0.9,
		GradClip:        1,
		EntropyWeight:   0,
	}
}

// OnlineAgent wraps an Agent to keep learning while it schedules real
// traffic: it records its decisions, and at every checkpoint replays
// the window with the paper's reward to nudge the policy toward the
// live workload. All reward experiences land in the Experience Manager.
type OnlineAgent struct {
	agent     *Agent
	cfg       OnlineConfig
	opt       *nn.Adam
	base      *baseline
	exp       *ExperienceManager
	completed int
	windows   int
	durations []float64

	// Observability handles (nil when not instrumented).
	mReward  *metrics.Gauge
	mHist    *metrics.Histogram
	mUpdates *metrics.Counter
	tracer   *metrics.Tracer

	// Policy-lifecycle persistence (nil when not attached): every
	// checkpoint window also lands in the store as a new version, so an
	// improving live policy survives restarts and is visible to the
	// promotion loop.
	store       *policystore.Store
	storeParent int
	lastStored  int
	persistErr  error
}

// NewOnlineAgent wraps agent for online self-correction. The wrapped
// agent's recording buffer is owned by the wrapper from now on.
func NewOnlineAgent(agent *Agent, cfg OnlineConfig, exp *ExperienceManager) *OnlineAgent {
	if cfg.CheckpointEvery < 1 {
		cfg.CheckpointEvery = 1
	}
	if cfg.LR <= 0 {
		cfg.LR = 5e-4
	}
	if cfg.W1+cfg.W2 <= 0 {
		cfg.W1, cfg.W2 = 0.5, 0.5
	}
	if cfg.TailPercentile <= 0 || cfg.TailPercentile >= 1 {
		cfg.TailPercentile = 0.9
	}
	if exp == nil {
		exp = NewExperienceManager(1024)
	}
	agent.SetGreedy(cfg.Greedy)
	agent.startRecording()
	return &OnlineAgent{
		agent: agent,
		cfg:   cfg,
		opt:   nn.NewAdam(cfg.LR),
		base:  newBaseline(0.8),
		exp:   exp,
	}
}

// Name implements engine.Scheduler.
func (o *OnlineAgent) Name() string { return o.agent.Name() + "+online" }

// Experiences exposes the experience manager.
func (o *OnlineAgent) Experiences() *ExperienceManager { return o.exp }

// Instrument attaches reward-signal observability: a gauge and a
// histogram of window mean rewards, an update counter, and (when tr is
// non-nil) one EvReward trace event per checkpoint. The wrapped agent's
// decision instruments are attached too.
func (o *OnlineAgent) Instrument(reg *metrics.Registry, tr *metrics.Tracer) {
	o.agent.Instrument(reg)
	o.tracer = tr
	if reg == nil {
		return
	}
	o.mReward = reg.Gauge("lsched_online_reward")
	o.mHist = reg.Histogram("lsched_online_reward_window", []float64{-100, -10, -1, -0.1, 0, 0.1, 1, 10, 100})
	o.mUpdates = reg.Counter("lsched_online_updates")
}

// Windows returns how many online updates were applied.
func (o *OnlineAgent) Windows() int { return o.windows }

// PersistTo attaches a policy store: from now on every checkpoint
// window writes a new version holding the updated params and the full
// experience buffer. parent labels the version the online run started
// from (0 when starting fresh); subsequent versions chain off each
// other. Persistence failures never interrupt scheduling — the last
// one is kept and readable via PersistErr.
func (o *OnlineAgent) PersistTo(store *policystore.Store, parent int) {
	o.store = store
	o.storeParent = parent
}

// LastPersisted returns the store version the most recent checkpoint
// landed in (0 when none was written yet).
func (o *OnlineAgent) LastPersisted() int { return o.lastStored }

// PersistErr returns the most recent persistence failure (nil when all
// writes succeeded).
func (o *OnlineAgent) PersistErr() error { return o.persistErr }

// persist writes the current params + experiences as a new store
// version chained off the previous one.
func (o *OnlineAgent) persist(avgReward, meanDur float64, decisions int) {
	params, err := o.agent.params.Serialize()
	if err != nil {
		o.persistErr = err
		return
	}
	exp, err := o.exp.Serialize()
	if err != nil {
		o.persistErr = err
		return
	}
	v, err := o.store.Put(policystore.PutOptions{
		Params:     params,
		Experience: exp,
		Parent:     o.storeParent,
		Source:     "online",
		Metrics: map[string]float64{
			"avg_reward":   avgReward,
			"avg_duration": meanDur,
			"decisions":    float64(decisions),
			"window":       float64(o.windows),
		},
	})
	if err != nil {
		o.persistErr = err
		return
	}
	o.storeParent, o.lastStored = v, v
}

// OnEvent implements engine.Scheduler by delegating to the wrapped
// agent (which records its steps).
func (o *OnlineAgent) OnEvent(st *engine.State, ev engine.Event) []engine.Decision {
	return o.agent.OnEvent(st, ev)
}

// SetPolicyVersion stamps the wrapped agent's provenance records (see
// Agent.SetPolicyVersion).
func (o *OnlineAgent) SetPolicyVersion(v int) { o.agent.SetPolicyVersion(v) }

// QueryCompleted implements engine.QueryObserver: checkpointing is
// driven by completed queries, the paper's query-by-query granularity.
// The wrapped agent observes too, so its flight-recorder entries join
// their outcomes.
func (o *OnlineAgent) QueryCompleted(queryID int, arrival, completion float64) {
	o.agent.QueryCompleted(queryID, arrival, completion)
	o.completed++
	o.durations = append(o.durations, completion-arrival)
	if o.completed%o.cfg.CheckpointEvery == 0 {
		o.checkpoint(completion)
	}
}

// checkpoint applies one self-correction update from the recorded
// window and records the experience.
func (o *OnlineAgent) checkpoint(now float64) {
	steps := o.agent.stopRecording()
	o.agent.startRecording()
	if len(steps) == 0 {
		return
	}
	tc := TrainConfig{W1: o.cfg.W1, W2: o.cfg.W2, TailPercentile: o.cfg.TailPercentile}
	rewards := episodeRewards(steps, now, tc)
	returns := discountedReturns(rewards, 1)
	advs := o.base.advantages(returns)
	o.agent.params.ZeroGrads()
	for i, s := range steps {
		o.agent.replayStep(s, advs[i], o.cfg.EntropyWeight)
	}
	if o.cfg.GradClip > 0 {
		o.agent.params.ClipGrads(o.cfg.GradClip)
	}
	o.opt.Step(o.agent.params)
	o.windows++
	avgReward := mean(rewards)
	o.mReward.Set(avgReward)
	o.mHist.Observe(avgReward)
	o.mUpdates.Inc()
	if o.tracer != nil {
		o.tracer.Record(metrics.Event{
			Kind: metrics.EvReward, Time: now, Query: -1, Op: -1, Thread: -1,
			Value: avgReward, Label: o.Name(),
		})
	}

	meanDur := 0.0
	for _, d := range o.durations {
		meanDur += d
	}
	if len(o.durations) > 0 {
		meanDur /= float64(len(o.durations))
	}
	o.durations = o.durations[:0]
	o.exp.Record(Experience{
		Source:      "online",
		Episode:     o.windows,
		AvgReward:   avgReward,
		AvgDuration: meanDur,
		Decisions:   len(steps),
		Queries:     o.cfg.CheckpointEvery,
	})
	if o.store != nil {
		o.persist(avgReward, meanDur, len(steps))
	}
}
