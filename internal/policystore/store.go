// Package policystore is the durable half of the policy lifecycle: a
// versioned on-disk store for scheduling-policy checkpoints.
//
// The paper's online-learning story (§5.2 triggers, §7.5 transfer and
// fine-tuning) assumes a policy that keeps improving while it serves.
// That requires policy artifacts that outlive a process: training and
// online self-correction Put versions, serving Gets them, and promotion
// — which version live traffic runs on — is an explicit, reversible
// store operation rather than an in-memory swap that dies with the
// process.
//
// Layout (one directory per version, all under the store root):
//
//	root/
//	  v000001/
//	    manifest.json    version, parent, created-at, config, metrics, CRCs
//	    params.bin       nn.Params.Serialize blob
//	    experience.bin   lsched.ExperienceManager.Serialize blob (optional)
//	  v000002/ ...
//	  CURRENT            JSON {active, previous} promotion pointer
//
// Durability rules:
//   - Put stages a version in a hidden temp directory and publishes it
//     with one os.Rename — readers never observe a partial version.
//   - The manifest carries a CRC32 (IEEE) per blob; Get verifies them,
//     and List skips versions whose manifest is missing or unparseable,
//     so a corrupt or half-written version is never served.
//   - Promote/Rollback rewrite CURRENT via temp file + rename, so the
//     active pointer is always either the old or the new value.
package policystore

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Manifest describes one stored policy version. It is the unit List
// returns and the metadata half of what Get returns.
type Manifest struct {
	// Version is the store-assigned, monotonically increasing ID.
	Version int `json:"version"`
	// Parent is the version this one was trained or fine-tuned from
	// (0 = none; versions start at 1).
	Parent int `json:"parent,omitempty"`
	// CreatedAtUnix is the publish time (Unix seconds).
	CreatedAtUnix int64 `json:"created_at_unix"`
	// Source labels the producer ("train", "online", "import", ...).
	Source string `json:"source,omitempty"`
	// TrainConfig is a free-form summary of how the policy was produced
	// (episode counts, learning rate, benchmark...).
	TrainConfig string `json:"train_config,omitempty"`
	// Metrics holds evaluation metrics recorded at Put or Promote time
	// (e.g. avg_reward, avg_duration, shadow_agreement).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// ParamsCRC32 is the IEEE CRC of params.bin.
	ParamsCRC32 uint32 `json:"params_crc32"`
	// ParamsBytes is len(params.bin), a second cheap integrity check.
	ParamsBytes int `json:"params_bytes"`
	// ExperienceCRC32/ExperienceBytes cover experience.bin when present.
	ExperienceCRC32 uint32 `json:"experience_crc32,omitempty"`
	ExperienceBytes int    `json:"experience_bytes,omitempty"`
}

// Checkpoint is a fully loaded, integrity-checked policy version.
type Checkpoint struct {
	Manifest Manifest
	// Params is the nn.Params.Serialize blob.
	Params []byte
	// Experience is the lsched.ExperienceManager.Serialize blob (nil
	// when the version was stored without one).
	Experience []byte
}

// PutOptions carries the artifact and metadata for one Put.
type PutOptions struct {
	// Params is the serialized parameter blob (required).
	Params []byte
	// Experience is the serialized experience-manager blob (optional).
	Experience []byte
	// Parent, Source, TrainConfig, Metrics land in the manifest as-is.
	Parent      int
	Source      string
	TrainConfig string
	Metrics     map[string]float64
}

// current is the CURRENT pointer file's JSON shape.
type current struct {
	// Active is the promoted (serving) version, 0 when none.
	Active int `json:"active"`
	// Previous is the version Active replaced, kept for Rollback.
	Previous int `json:"previous,omitempty"`
}

const (
	manifestName   = "manifest.json"
	paramsName     = "params.bin"
	experienceName = "experience.bin"
	currentName    = "CURRENT"
	versionPrefix  = "v"
	tempPrefix     = ".tmp-"
)

// Store is a versioned policy checkpoint store rooted at one directory.
// All methods are safe for concurrent use by multiple goroutines in one
// process; cross-process writers are serialized by the atomicity of
// rename but may race on version numbering (one writer per store is the
// intended deployment, matching one trainer per model).
type Store struct {
	// mu serializes mutations (Put's read-assign-rename of the next
	// version number, the CURRENT pointer read-modify-writes, GC).
	// Reads (List/Get/Latest/Active) only need it where they touch
	// CURRENT; version directories are immutable once published.
	mu   sync.Mutex
	root string
	// now is stubbed in tests for stable manifests.
	now func() time.Time
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("policystore: empty store path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("policystore: open %s: %w", dir, err)
	}
	return &Store{root: dir, now: time.Now}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// versionDir formats the directory name of a version.
func versionDir(v int) string { return fmt.Sprintf("%s%06d", versionPrefix, v) }

// parseVersionDir returns the version of a directory entry name, or 0
// when the name is not a version directory.
func parseVersionDir(name string) int {
	if !strings.HasPrefix(name, versionPrefix) {
		return 0
	}
	n, err := strconv.Atoi(strings.TrimPrefix(name, versionPrefix))
	if err != nil || n <= 0 {
		return 0
	}
	return n
}

// versionNumbers returns every version number that has a directory,
// ascending, including versions whose content may be corrupt (List
// filters those; GC must see them to delete them).
func (s *Store) versionNumbers() ([]int, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("policystore: read %s: %w", s.root, err)
	}
	var out []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if v := parseVersionDir(e.Name()); v > 0 {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// readManifest loads and sanity-checks one version's manifest.
func (s *Store) readManifest(v int) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(s.root, versionDir(v), manifestName))
	if err != nil {
		return m, fmt.Errorf("policystore: version %d: %w", v, err)
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("policystore: version %d: bad manifest: %w", v, err)
	}
	if m.Version != v {
		return m, fmt.Errorf("policystore: version %d: manifest claims version %d", v, m.Version)
	}
	return m, nil
}

// List returns the manifests of every readable version, ascending by
// version. Versions with a missing or unparseable manifest are skipped —
// they exist on disk (GC can remove them) but are never served.
func (s *Store) List() ([]Manifest, error) {
	versions, err := s.versionNumbers()
	if err != nil {
		return nil, err
	}
	out := make([]Manifest, 0, len(versions))
	for _, v := range versions {
		m, err := s.readManifest(v)
		if err != nil {
			continue // corrupt or half-written: skip, never serve
		}
		out = append(out, m)
	}
	return out, nil
}

// Latest returns the highest version whose blobs pass integrity checks,
// or an error when the store holds no loadable version. Corrupt tail
// versions are skipped: a crash during training must never make the
// newest-but-broken artifact win over the last good one.
func (s *Store) Latest() (*Checkpoint, error) {
	versions, err := s.versionNumbers()
	if err != nil {
		return nil, err
	}
	for i := len(versions) - 1; i >= 0; i-- {
		ck, err := s.Get(versions[i])
		if err == nil {
			return ck, nil
		}
	}
	return nil, fmt.Errorf("policystore: no loadable versions in %s", s.root)
}

// Get loads one version, verifying blob sizes and CRCs against the
// manifest. Any mismatch is an error — a corrupt version is never
// returned partially.
func (s *Store) Get(v int) (*Checkpoint, error) {
	m, err := s.readManifest(v)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(s.root, versionDir(v))
	params, err := os.ReadFile(filepath.Join(dir, paramsName))
	if err != nil {
		return nil, fmt.Errorf("policystore: version %d: %w", v, err)
	}
	if len(params) != m.ParamsBytes || crc32.ChecksumIEEE(params) != m.ParamsCRC32 {
		return nil, fmt.Errorf("policystore: version %d: params blob corrupt (%d bytes, crc %08x; manifest says %d bytes, crc %08x)",
			v, len(params), crc32.ChecksumIEEE(params), m.ParamsBytes, m.ParamsCRC32)
	}
	ck := &Checkpoint{Manifest: m, Params: params}
	if m.ExperienceBytes > 0 || m.ExperienceCRC32 != 0 {
		exp, err := os.ReadFile(filepath.Join(dir, experienceName))
		if err != nil {
			return nil, fmt.Errorf("policystore: version %d: %w", v, err)
		}
		if len(exp) != m.ExperienceBytes || crc32.ChecksumIEEE(exp) != m.ExperienceCRC32 {
			return nil, fmt.Errorf("policystore: version %d: experience blob corrupt", v)
		}
		ck.Experience = exp
	}
	return ck, nil
}

// Put stores a new version and returns its number. The version is
// staged in a temp directory and published with a single rename, so a
// reader (or a crash) never observes a partial version.
func (s *Store) Put(opts PutOptions) (int, error) {
	if len(opts.Params) == 0 {
		return 0, fmt.Errorf("policystore: Put requires a params blob")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	versions, err := s.versionNumbers()
	if err != nil {
		return 0, err
	}
	v := 1
	if len(versions) > 0 {
		v = versions[len(versions)-1] + 1
	}
	m := Manifest{
		Version:       v,
		Parent:        opts.Parent,
		CreatedAtUnix: s.now().Unix(),
		Source:        opts.Source,
		TrainConfig:   opts.TrainConfig,
		Metrics:       opts.Metrics,
		ParamsCRC32:   crc32.ChecksumIEEE(opts.Params),
		ParamsBytes:   len(opts.Params),
	}
	if len(opts.Experience) > 0 {
		m.ExperienceCRC32 = crc32.ChecksumIEEE(opts.Experience)
		m.ExperienceBytes = len(opts.Experience)
	}
	tmp, err := os.MkdirTemp(s.root, tempPrefix)
	if err != nil {
		return 0, fmt.Errorf("policystore: stage version %d: %w", v, err)
	}
	defer os.RemoveAll(tmp) // no-op after successful rename
	if err := writeFileSync(filepath.Join(tmp, paramsName), opts.Params); err != nil {
		return 0, err
	}
	if len(opts.Experience) > 0 {
		if err := writeFileSync(filepath.Join(tmp, experienceName), opts.Experience); err != nil {
			return 0, err
		}
	}
	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("policystore: encode manifest: %w", err)
	}
	if err := writeFileSync(filepath.Join(tmp, manifestName), mdata); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, filepath.Join(s.root, versionDir(v))); err != nil {
		return 0, fmt.Errorf("policystore: publish version %d: %w", v, err)
	}
	return v, nil
}

// UpdateMetrics merges metrics into an existing version's manifest
// (e.g. shadow-evaluation scores recorded after the fact). The manifest
// is rewritten atomically.
func (s *Store) UpdateMetrics(v int, metrics map[string]float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := s.readManifest(v)
	if err != nil {
		return err
	}
	if m.Metrics == nil {
		m.Metrics = make(map[string]float64, len(metrics))
	}
	for k, val := range metrics {
		m.Metrics[k] = val
	}
	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("policystore: encode manifest: %w", err)
	}
	return s.replaceFile(filepath.Join(s.root, versionDir(v), manifestName), mdata)
}

// readCurrent loads the CURRENT pointer (zero value when absent).
func (s *Store) readCurrent() (current, error) {
	var c current
	data, err := os.ReadFile(filepath.Join(s.root, currentName))
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return c, fmt.Errorf("policystore: read CURRENT: %w", err)
	}
	if err := json.Unmarshal(data, &c); err != nil {
		return c, fmt.Errorf("policystore: bad CURRENT: %w", err)
	}
	return c, nil
}

// writeCurrent atomically replaces the CURRENT pointer.
func (s *Store) writeCurrent(c current) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("policystore: encode CURRENT: %w", err)
	}
	return s.replaceFile(filepath.Join(s.root, currentName), data)
}

// Active returns the promoted version number (0 when none is promoted).
func (s *Store) Active() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.readCurrent()
	return c.Active, err
}

// Promote marks a version as the one live traffic should serve. The
// version must load cleanly — promotion of a corrupt artifact is
// refused. The previously active version is remembered for Rollback.
func (s *Store) Promote(v int) error {
	if _, err := s.Get(v); err != nil {
		return fmt.Errorf("policystore: refusing to promote: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.readCurrent()
	if err != nil {
		return err
	}
	if c.Active == v {
		return nil
	}
	return s.writeCurrent(current{Active: v, Previous: c.Active})
}

// Rollback reverts the active pointer to the version the last Promote
// replaced and returns the version now active. It is an error when
// there is nothing to roll back to.
func (s *Store) Rollback() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, err := s.readCurrent()
	if err != nil {
		return 0, err
	}
	if c.Previous == 0 {
		return 0, fmt.Errorf("policystore: nothing to roll back to (active=%d)", c.Active)
	}
	if err := s.writeCurrent(current{Active: c.Previous}); err != nil {
		return 0, err
	}
	return c.Previous, nil
}

// GC deletes old versions, keeping the newest `retain` loadable
// versions plus whatever CURRENT points at (active and previous are
// never collected). Corrupt versions are always deleted. It returns the
// version numbers removed.
func (s *Store) GC(retain int) ([]int, error) {
	if retain < 1 {
		retain = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	versions, err := s.versionNumbers()
	if err != nil {
		return nil, err
	}
	c, err := s.readCurrent()
	if err != nil {
		return nil, err
	}
	keep := make(map[int]bool, retain+2)
	if c.Active > 0 {
		keep[c.Active] = true
	}
	if c.Previous > 0 {
		keep[c.Previous] = true
	}
	kept := 0
	for i := len(versions) - 1; i >= 0 && kept < retain; i-- {
		if _, err := s.readManifest(versions[i]); err != nil {
			continue // corrupt: collectible regardless of age
		}
		if !keep[versions[i]] {
			kept++
		}
		keep[versions[i]] = true
	}
	var removed []int
	for _, v := range versions {
		if keep[v] {
			continue
		}
		if err := os.RemoveAll(filepath.Join(s.root, versionDir(v))); err != nil {
			return removed, fmt.Errorf("policystore: gc version %d: %w", v, err)
		}
		removed = append(removed, v)
	}
	// Orphaned temp directories from crashed Puts are garbage too.
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return removed, nil
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), tempPrefix) {
			os.RemoveAll(filepath.Join(s.root, e.Name()))
		}
	}
	return removed, nil
}

// writeFileSync writes data and fsyncs before closing, so a published
// rename never points at pages the kernel hasn't flushed.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("policystore: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("policystore: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("policystore: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("policystore: close %s: %w", path, err)
	}
	return nil
}

// replaceFile atomically replaces path's contents via temp file +
// rename in the same directory.
func (s *Store) replaceFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tempPrefix+"f-")
	if err != nil {
		return fmt.Errorf("policystore: stage %s: %w", path, err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("policystore: stage %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("policystore: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("policystore: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("policystore: replace %s: %w", path, err)
	}
	return nil
}
