package policystore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Frozen clock keeps manifests stable across sub-second test runs.
	tick := int64(0)
	s.now = func() time.Time { tick++; return time.Unix(1700000000+tick, 0) }
	return s
}

func mustPut(t *testing.T, s *Store, opts PutOptions) int {
	t.Helper()
	v, err := s.Put(opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestStorePutGetPromote(t *testing.T) {
	s := testStore(t)
	params := []byte("params-blob-v1")
	exp := []byte("experience-blob")
	v1 := mustPut(t, s, PutOptions{
		Params: params, Experience: exp, Source: "train",
		TrainConfig: "episodes=10", Metrics: map[string]float64{"avg_reward": -1.5},
	})
	if v1 != 1 {
		t.Fatalf("first version = %d, want 1", v1)
	}
	v2 := mustPut(t, s, PutOptions{Params: []byte("params-blob-v2"), Parent: v1, Source: "online"})
	if v2 != 2 {
		t.Fatalf("second version = %d, want 2", v2)
	}

	ck, err := s.Get(v1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck.Params, params) || !reflect.DeepEqual(ck.Experience, exp) {
		t.Fatal("round-tripped blobs differ")
	}
	if ck.Manifest.Source != "train" || ck.Manifest.TrainConfig != "episodes=10" {
		t.Fatalf("manifest metadata lost: %+v", ck.Manifest)
	}
	if ck.Manifest.Metrics["avg_reward"] != -1.5 {
		t.Fatalf("metrics lost: %+v", ck.Manifest.Metrics)
	}
	ck2, err := s.Get(v2)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Manifest.Parent != v1 {
		t.Fatalf("parent = %d, want %d", ck2.Manifest.Parent, v1)
	}
	if ck2.Experience != nil {
		t.Fatal("version 2 stored without experience should load without one")
	}

	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Version != 1 || list[1].Version != 2 {
		t.Fatalf("list = %+v", list)
	}

	// Promotion and rollback.
	if a, _ := s.Active(); a != 0 {
		t.Fatalf("fresh store active = %d, want 0", a)
	}
	if err := s.Promote(v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Promote(v2); err != nil {
		t.Fatal(err)
	}
	if a, _ := s.Active(); a != v2 {
		t.Fatalf("active = %d, want %d", a, v2)
	}
	back, err := s.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != v1 {
		t.Fatalf("rollback landed on %d, want %d", back, v1)
	}
	if a, _ := s.Active(); a != v1 {
		t.Fatalf("active after rollback = %d, want %d", a, v1)
	}
	if _, err := s.Rollback(); err == nil {
		t.Fatal("second rollback should fail: nothing to roll back to")
	}
}

func TestStoreLatestSkipsCorruptTail(t *testing.T) {
	s := testStore(t)
	v1 := mustPut(t, s, PutOptions{Params: []byte("good")})
	v2 := mustPut(t, s, PutOptions{Params: []byte("soon-corrupt")})

	// Flip a byte in v2's params blob: Get must refuse it, Latest must
	// fall back to v1.
	path := filepath.Join(s.Root(), versionDir(v2), paramsName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(v2); err == nil {
		t.Fatal("Get served a corrupt version")
	}
	latest, err := s.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest.Manifest.Version != v1 {
		t.Fatalf("Latest = %d, want fallback to %d", latest.Manifest.Version, v1)
	}
	// Promotion of the corrupt version must be refused.
	if err := s.Promote(v2); err == nil {
		t.Fatal("Promote accepted a corrupt version")
	}
}

func TestStoreListSkipsHalfWrittenVersion(t *testing.T) {
	s := testStore(t)
	mustPut(t, s, PutOptions{Params: []byte("good")})
	// Simulate a torn publish: a version directory without a manifest.
	if err := os.MkdirAll(filepath.Join(s.Root(), versionDir(7)), 0o755); err != nil {
		t.Fatal(err)
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Version != 1 {
		t.Fatalf("list should hold only the good version, got %+v", list)
	}
	// The next Put must still pick a fresh number above the torn one.
	v := mustPut(t, s, PutOptions{Params: []byte("next")})
	if v != 8 {
		t.Fatalf("next version = %d, want 8 (above the torn v000007)", v)
	}
}

func TestStoreTruncatedBlobDetected(t *testing.T) {
	s := testStore(t)
	v := mustPut(t, s, PutOptions{Params: []byte("0123456789"), Experience: []byte("abcdef")})
	path := filepath.Join(s.Root(), versionDir(v), experienceName)
	if err := os.WriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(v); err == nil {
		t.Fatal("Get served a version with a truncated experience blob")
	}
}

func TestStoreGC(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 5; i++ {
		mustPut(t, s, PutOptions{Params: []byte{byte(i)}})
	}
	if err := s.Promote(1); err != nil { // active pins an old version
		t.Fatal(err)
	}
	removed, err := s.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	// Keep newest two (4, 5) and the active (1); remove 2 and 3.
	if !reflect.DeepEqual(removed, []int{2, 3}) {
		t.Fatalf("removed %v, want [2 3]", removed)
	}
	list, _ := s.List()
	got := make([]int, 0, len(list))
	for _, m := range list {
		got = append(got, m.Version)
	}
	if !reflect.DeepEqual(got, []int{1, 4, 5}) {
		t.Fatalf("surviving versions %v, want [1 4 5]", got)
	}
	if _, err := s.Get(1); err != nil {
		t.Fatalf("active version collected: %v", err)
	}
}

func TestStoreUpdateMetrics(t *testing.T) {
	s := testStore(t)
	v := mustPut(t, s, PutOptions{Params: []byte("p"), Metrics: map[string]float64{"a": 1}})
	if err := s.UpdateMetrics(v, map[string]float64{"b": 2}); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Get(v)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Metrics["a"] != 1 || ck.Manifest.Metrics["b"] != 2 {
		t.Fatalf("metrics after update: %+v", ck.Manifest.Metrics)
	}
}

func TestStoreConcurrentPuts(t *testing.T) {
	s := testStore(t)
	const n = 16
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			v, err := s.Put(PutOptions{Params: []byte{byte(i)}})
			if err != nil {
				t.Error(err)
			}
			done <- v
		}(i)
	}
	seen := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		v := <-done
		if seen[v] {
			t.Fatalf("version %d assigned twice", v)
		}
		seen[v] = true
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != n {
		t.Fatalf("%d versions listed, want %d", len(list), n)
	}
}
