package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWindowPriorAndMean(t *testing.T) {
	w := NewWindow(4, 7.5)
	if got := w.Predict(); got != 7.5 {
		t.Fatalf("empty window predicts %v, want prior 7.5", got)
	}
	w.Observe(3)
	if got := w.Predict(); got != 3 {
		t.Fatalf("single observation predicts %v, want 3", got)
	}
	if w.Mean() != 3 {
		t.Fatal("wrong mean")
	}
}

func TestWindowExtrapolatesTrend(t *testing.T) {
	w := NewWindow(8, 1)
	for i := 1; i <= 5; i++ {
		w.Observe(float64(i)) // 1, 2, 3, 4, 5
	}
	got := w.Predict()
	if math.Abs(got-6) > 1e-9 {
		t.Fatalf("linear trend predicts %v, want 6", got)
	}
}

func TestWindowSlides(t *testing.T) {
	w := NewWindow(3, 0)
	for _, v := range []float64{100, 100, 100, 2, 2, 2} {
		w.Observe(v)
	}
	// Window holds only the last three 2s.
	if got := w.Predict(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("slid window predicts %v, want 2", got)
	}
	if w.Count() != 3 {
		t.Fatalf("count %d, want 3", w.Count())
	}
}

func TestWindowClampsWildExtrapolation(t *testing.T) {
	w := NewWindow(4, 1)
	// A steep downward trend must not predict a negative duration.
	for _, v := range []float64{100, 60, 20, 1} {
		w.Observe(v)
	}
	if got := w.Predict(); got <= 0 {
		t.Fatalf("negative duration predicted: %v", got)
	}
	// A steep upward trend is clamped near the window mean.
	w2 := NewWindow(4, 1)
	for _, v := range []float64{1, 100, 10000, 100000} {
		w2.Observe(v)
	}
	if got := w2.Predict(); got > 4*w2.Mean()+1e-9 {
		t.Fatalf("prediction %v exceeds the 4x-mean clamp (mean %v)", got, w2.Mean())
	}
}

func TestWindowPredictionAlwaysPositive(t *testing.T) {
	f := func(vals []float64) bool {
		w := NewWindow(6, 1)
		for _, v := range vals {
			// Durations are wall-clock measurements; bound the property
			// to physically plausible magnitudes so the least-squares
			// sums stay finite.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
			w.Observe(math.Abs(v) + 1e-9)
		}
		p := w.Predict()
		return p > 0 && !math.IsNaN(p) && !math.IsInf(p, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorPerOperatorIsolation(t *testing.T) {
	e := NewEstimator(4, 1, 1)
	e.ObserveCompletion(1, 10, 2)
	e.ObserveCompletion(1, 10, 2)
	e.ObserveCompletion(2, 100, 50)
	// Operator 1's estimate reflects its own history only.
	if got := e.EstimateDuration(1, 3); math.Abs(got-30) > 1e-9 {
		t.Fatalf("op 1 duration estimate %v, want 30", got)
	}
	if got := e.EstimateMemory(1, 2); math.Abs(got-4) > 1e-9 {
		t.Fatalf("op 1 memory estimate %v, want 4", got)
	}
	// Unknown operators fall back to priors.
	if got := e.EstimateDuration(99, 5); got != 5 {
		t.Fatalf("unknown op estimate %v, want prior*5 = 5", got)
	}
}

func TestWindowMinimumCapacity(t *testing.T) {
	w := NewWindow(0, 1) // must clamp to at least 2
	w.Observe(1)
	w.Observe(2)
	w.Observe(3)
	if w.Count() != 2 {
		t.Fatalf("capacity-clamped window holds %d, want 2", w.Count())
	}
}

func TestPredictTotalsAggregatesPerKeyWindows(t *testing.T) {
	e := NewEstimator(4, 1, 0.5)
	// Key 1 settles at 10s / 2 mem-units per work order, key 2 at 100/50.
	e.ObserveCompletion(1, 10, 2)
	e.ObserveCompletion(1, 10, 2)
	e.ObserveCompletion(2, 100, 50)
	dur, mem := e.PredictTotals([]OpWork{{Key: 1, Units: 3}, {Key: 2, Units: 2}})
	if math.Abs(dur-(30+200)) > 1e-9 {
		t.Fatalf("dur = %v, want 230", dur)
	}
	if math.Abs(mem-(6+100)) > 1e-9 {
		t.Fatalf("mem = %v, want 106", mem)
	}
	// Unknown keys fall back to priors; zero units count as one work order.
	dur, mem = e.PredictTotals([]OpWork{{Key: 99, Units: 0}})
	if dur != 1 || mem != 0.5 {
		t.Fatalf("prior fallback = (%v, %v), want (1, 0.5)", dur, mem)
	}
}

// Morsel-aware O-DUR: the duration window stores serial work
// (duration * parallelism) and predictions divide back by the
// operator's recent parallelism, so wall estimates track wall time even
// when work orders split into concurrent morsels — and operators that
// never report parallelism behave exactly as before.
func TestEstimatorMorselParallelismNormalization(t *testing.T) {
	e := NewEstimator(4, 1, 1)
	// Each work order carries 40 units of serial work but runs as 4
	// concurrent morsels, finishing in 10 wall-seconds.
	for i := 0; i < 4; i++ {
		e.ObserveParallelism(1, 4)
		e.ObserveCompletion(1, 10, 2)
	}
	if got := e.EstimateDuration(1, 2); math.Abs(got-20) > 1e-9 {
		t.Fatalf("normalized wall estimate %v, want 20", got)
	}
	dur, _ := e.PredictTotals([]OpWork{{Key: 1, Units: 2}})
	if math.Abs(dur-20) > 1e-9 {
		t.Fatalf("PredictTotals wall estimate %v, want 20", dur)
	}
	// A parallelism drop to 1 (no idle helpers anymore) scales the same
	// serial work back up toward full wall duration.
	for i := 0; i < 8; i++ {
		e.ObserveParallelism(1, 1)
	}
	if got := e.EstimateDuration(1, 1); math.Abs(got-40) > 1e-9 {
		t.Fatalf("serial wall estimate %v, want 40", got)
	}
}

func TestEstimatorWithoutParallelismUnchanged(t *testing.T) {
	e := NewEstimator(4, 1, 1)
	ref := NewEstimator(4, 1, 1)
	for i := 0; i < 6; i++ {
		d := float64(10 + i)
		e.ObserveCompletion(3, d, 1)
		ref.ObserveCompletion(3, d, 1)
	}
	// No ObserveParallelism calls: estimates must be bit-identical to
	// the pre-morsel estimator for every remaining-work multiplier.
	for _, rem := range []int{1, 2, 7} {
		if e.EstimateDuration(3, rem) != ref.EstimateDuration(3, rem) {
			t.Fatalf("parallelism-free estimate diverged at rem=%d", rem)
		}
	}
	// Sub-1 and garbage parallelism observations clamp to 1.
	e.ObserveParallelism(3, 0.25)
	if e.EstimateDuration(3, 1) != ref.EstimateDuration(3, 1) {
		t.Fatal("clamped parallelism should leave estimates unchanged")
	}
}
