// Package costmodel implements the per-operator work-order cost
// estimation the paper uses for the dynamic O-DUR and O-MEM features: a
// computationally cheap linear regression fitted over the execution
// statistics of recently completed work orders (footnote 1 of the paper
// restricts the fit to a sliding window of the last k observations).
package costmodel

import (
	"math"
	"sync"

	"repro/internal/metrics"
)

// Window is an online sliding-window simple linear regression of
// observation value against observation index: given the durations (or
// memory usages) of the last k completed work orders of one operator, it
// predicts the next work order's value. With fewer than two points it
// falls back to the mean; with no points it returns the prior.
type Window struct {
	k     int
	prior float64
	vals  []float64
	next  int
	full  bool
	seq   int
}

// NewWindow returns a window of capacity k with the given prior estimate,
// used until the first observation arrives.
func NewWindow(k int, prior float64) *Window {
	if k < 2 {
		k = 2
	}
	return &Window{k: k, prior: prior, vals: make([]float64, 0, k)}
}

// Observe records a completed work order's measured value.
func (w *Window) Observe(v float64) {
	if len(w.vals) < w.k {
		w.vals = append(w.vals, v)
	} else {
		w.vals[w.next] = v
		w.next = (w.next + 1) % w.k
		w.full = true
	}
	w.seq++
}

// Count returns how many observations the window currently holds.
func (w *Window) Count() int { return len(w.vals) }

// Reset empties the window in place, keeping its backing array, so a
// recycled estimator starts its next run from the prior without
// re-allocating.
func (w *Window) Reset() {
	w.vals = w.vals[:0]
	w.next = 0
	w.full = false
	w.seq = 0
}

// ordered returns the window's values oldest-first.
func (w *Window) ordered() []float64 {
	if !w.full {
		return w.vals
	}
	out := make([]float64, 0, w.k)
	out = append(out, w.vals[w.next:]...)
	out = append(out, w.vals[:w.next]...)
	return out
}

// Predict estimates the next work order's value by extrapolating the
// least-squares line fitted through the windowed observations.
func (w *Window) Predict() float64 {
	n := len(w.vals)
	switch n {
	case 0:
		return w.prior
	case 1:
		return w.vals[0]
	}
	pts := w.ordered()
	// Fit v = a + b*i over i = 0..n-1, predict at i = n.
	var sx, sy, sxx, sxy float64
	for i, v := range pts {
		x := float64(i)
		sx += x
		sy += v
		sxx += x * x
		sxy += x * v
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	mean := sy / fn
	if den == 0 {
		return mean
	}
	b := (fn*sxy - sx*sy) / den
	a := (sy - b*sx) / fn
	pred := a + b*fn
	// A slope fitted on noisy durations can extrapolate below zero or far
	// beyond anything observed; clamp to a sane band around the window.
	if pred <= 0 || math.IsNaN(pred) || math.IsInf(pred, 0) {
		return math.Max(mean, 1e-9)
	}
	if pred > 4*mean {
		pred = 4 * mean
	}
	return pred
}

// Mean returns the window mean (prior when empty).
func (w *Window) Mean() float64 {
	if len(w.vals) == 0 {
		return w.prior
	}
	s := 0.0
	for _, v := range w.vals {
		s += v
	}
	return s / float64(len(w.vals))
}

// Estimator tracks one Window per (operator) key for durations and memory
// usage, supplying the O-DUR and O-MEM dynamic features.
//
// An Estimator is safe for concurrent use: observations take the write
// lock, predictions take the read lock and never mutate (a key with no
// window predicts the prior, which is exactly what a freshly inserted
// empty window would predict). The sharded front door relies on this —
// every shard's admission pass calls PredictTotals while executor
// goroutines feed completions back in.
type Estimator struct {
	mu       sync.RWMutex
	k        int
	durPrior float64
	memPrior float64
	dur      map[int]*Window
	mem      map[int]*Window
	// par tracks the recent intra-work-order morsel parallelism per key
	// (see ObserveParallelism). Keys never observed have no entry and an
	// implicit parallelism of 1, which keeps every pre-morsel behavior
	// (and persisted policy compatibility) bit-identical.
	par map[int]*Window
	// Prediction-quality instruments (nil when metrics are disabled):
	// at every completion the estimator scores the prediction it would
	// have made for that work order against the measurement, before
	// folding the observation in.
	durErr  *metrics.Histogram
	memErr  *metrics.Histogram
	lastErr *metrics.Gauge
	updates *metrics.Counter
}

// NewEstimator returns an estimator with window size k and the given
// priors for never-observed operators.
func NewEstimator(k int, durPrior, memPrior float64) *Estimator {
	return &Estimator{
		k: k, durPrior: durPrior, memPrior: memPrior,
		dur: make(map[int]*Window), mem: make(map[int]*Window),
		par: make(map[int]*Window),
	}
}

// Reset empties every window in place while keeping the per-key map
// entries and window buffers. A reset estimator is observationally
// identical to a fresh one (empty windows predict the prior), which is
// what lets the live engine recycle estimators across runs without the
// per-run window-allocation ladder.
func (e *Estimator) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, w := range e.dur {
		w.Reset()
	}
	for _, w := range e.mem {
		w.Reset()
	}
	for _, w := range e.par {
		w.Reset()
	}
}

// Instrument attaches prediction-error instruments to the estimator: an
// absolute-error histogram per signal (duration, memory), a gauge with
// the last signed duration error, and an update counter. A nil registry
// leaves the estimator un-instrumented (the zero-overhead default).
func (e *Estimator) Instrument(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	e.durErr = reg.Histogram("costmodel_dur_abs_error", nil)
	e.memErr = reg.Histogram("costmodel_mem_abs_error", nil)
	e.lastErr = reg.Gauge("costmodel_dur_last_error")
	e.updates = reg.Counter("costmodel_updates")
}

// ObserveCompletion folds one finished work order's measured duration and
// memory usage into the operator's windows. When instrumented, it first
// records how wrong the pre-update prediction was — the error signal a
// learned scheduler's O-DUR/O-MEM features carry at that moment.
func (e *Estimator) ObserveCompletion(opKey int, duration, memory float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	dw, mw := e.durWin(opKey), e.memWin(opKey)
	pm := e.parMean(opKey)
	if e.updates != nil {
		derr := duration - dw.Predict()/pm
		e.durErr.Observe(math.Abs(derr))
		e.memErr.Observe(math.Abs(memory - mw.Predict()))
		e.lastErr.Set(derr)
		e.updates.Inc()
	}
	// The duration window stores SERIAL work: a work order that ran as p
	// concurrent morsels reports duration*p of work, and predictions
	// divide back by the operator's recent parallelism. This keeps the
	// regression's input stationary when the morsel driver's helper
	// availability fluctuates between work orders of one operator —
	// without it, wall durations alternating between split and unsplit
	// executions read as noise and widen O-DUR error.
	dw.Observe(duration * pm)
	mw.Observe(memory)
}

// ObserveParallelism records the morsel parallelism one work order of
// the operator actually achieved (1 = ran unsplit). The live engine
// reports this from its morsel driver; simulated runs never call it,
// leaving those keys at implicit parallelism 1.
func (e *Estimator) ObserveParallelism(opKey int, p float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if p < 1 {
		p = 1
	}
	w, ok := e.par[opKey]
	if !ok {
		w = NewWindow(e.k, 1)
		e.par[opKey] = w
	}
	w.Observe(p)
}

// parMean returns the operator's recent mean morsel parallelism, 1 when
// never observed.
func (e *Estimator) parMean(opKey int) float64 {
	w, ok := e.par[opKey]
	if !ok {
		return 1
	}
	m := w.Mean()
	if m < 1 {
		return 1
	}
	return m
}

// EstimateDuration predicts the duration of the operator's next work
// order (footnote 1's regression) multiplied by the remaining work-order
// count, yielding the O-DUR feature. The window's serial-work
// prediction is scaled back to wall time by the operator's recent
// morsel parallelism.
func (e *Estimator) EstimateDuration(opKey, remainingWorkOrders int) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.predictDurLocked(opKey) / e.parMean(opKey) * float64(remainingWorkOrders)
}

// EstimateMemory is EstimateDuration's analogue for O-MEM.
func (e *Estimator) EstimateMemory(opKey, remainingWorkOrders int) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.predictMemLocked(opKey) * float64(remainingWorkOrders)
}

// OpWork describes one slice of an incoming plan for whole-plan
// prediction: Key identifies the estimator window to consult (callers
// admitting not-yet-running queries typically key by operator type,
// since no per-operator history exists yet) and Units is the work-order
// count the prediction is scaled by.
type OpWork struct {
	Key   int
	Units int
}

// PredictTotals aggregates per-operator predictions into a whole-plan
// O-DUR/O-MEM estimate: the summed duration and memory of every work
// order the plan will issue, under the estimator's current windows. It
// is the admission-control view of the cost model — a query that has
// not started yet has no per-operator state, so its cost is read from
// whatever key space the caller maintains (per-type windows fed by
// completed queries). Units < 1 count as 1 (every operator has at least
// one work order).
func (e *Estimator) PredictTotals(ops []OpWork) (dur, mem float64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, ow := range ops {
		u := ow.Units
		if u < 1 {
			u = 1
		}
		dur += e.predictDurLocked(ow.Key) / e.parMean(ow.Key) * float64(u)
		mem += e.predictMemLocked(ow.Key) * float64(u)
	}
	return dur, mem
}

// predictDurLocked predicts without inserting a window, so it is safe
// under the read lock; a missing key predicts the prior, exactly what a
// fresh empty window would.
func (e *Estimator) predictDurLocked(key int) float64 {
	if w, ok := e.dur[key]; ok {
		return w.Predict()
	}
	return e.durPrior
}

func (e *Estimator) predictMemLocked(key int) float64 {
	if w, ok := e.mem[key]; ok {
		return w.Predict()
	}
	return e.memPrior
}

// durWin returns (inserting if needed) the key's duration window.
// Callers hold the write lock.
func (e *Estimator) durWin(key int) *Window {
	w, ok := e.dur[key]
	if !ok {
		w = NewWindow(e.k, e.durPrior)
		e.dur[key] = w
	}
	return w
}

func (e *Estimator) memWin(key int) *Window {
	w, ok := e.mem[key]
	if !ok {
		w = NewWindow(e.k, e.memPrior)
		e.mem[key] = w
	}
	return w
}
