// Package predictor implements LSched's Scheduling Predictor (§5.3):
// three fully-connected softmax heads that consume the Query Encoder's
// embeddings and decide (1) which operator to use as the next execution
// root, (2) the pipeline degree to run from that root, and (3) the
// parallelism degree (thread grant) for the root's query.
package predictor

import (
	"repro/internal/encoder"
	"repro/internal/nn"
)

// Config sets the predictor's head dimensions.
type Config struct {
	// Hidden is the encoder embedding width.
	Hidden int
	// QueryDim is the QF feature width (the parallelism head reuses it).
	QueryDim int
	// MaxPipelineDepth bounds the pipeline-degree head's output arity;
	// degrees are 0..MaxPipelineDepth (0 = run the root alone).
	MaxPipelineDepth int
	// ParallelismBuckets is the arity of the parallelism head; bucket i
	// grants ceil((i+1)/buckets · totalThreads) threads, which keeps one
	// trained head valid across pool sizes (Fig. 11a varies the pool).
	ParallelismBuckets int
}

// DefaultConfig returns the head configuration used in experiments.
func DefaultConfig(hidden, queryDim int) Config {
	return Config{Hidden: hidden, QueryDim: queryDim, MaxPipelineDepth: 5, ParallelismBuckets: 8}
}

// Candidate identifies one schedulable execution root within an encoded
// snapshot.
type Candidate struct {
	// QIdx indexes Output.PerQuery / Snapshot.Queries.
	QIdx int
	// OpIdx indexes the query snapshot's Ops.
	OpIdx int
	// OpID is the plan operator ID (for mapping the decision back).
	OpID int
	// MaxDepth is the longest pipeline path from this root right now.
	MaxDepth int
}

// Predictor holds the three decision networks plus the stop head that
// lets the roots decision end early (scheduling nothing further at this
// event is itself a learnable action — deferring work is how the agent
// expresses staggered pipelines and avoids over-committing the buffer
// pool).
type Predictor struct {
	cfg  Config
	root *nn.MLP
	pipe *nn.MLP
	par  *nn.MLP
	stop *nn.MLP
}

// New registers the predictor's parameters under the "pred." prefix.
func New(p *nn.Params, cfg Config) *Predictor {
	h := cfg.Hidden
	pr := &Predictor{
		cfg: cfg,
		// Roots head: concat(NE, EE, PQE) per §5.3.1.
		root: nn.NewMLP(p, "pred.root", 3*h, h, 1),
		// Pipeline head: same input plus the root's edge context; our EE
		// already aggregates the root's edges, so the head sees
		// concat(NE, EE, PQE) and emits MaxPipelineDepth+1 logits.
		pipe: nn.NewMLP(p, "pred.pipe", 3*h, h, cfg.MaxPipelineDepth+1),
		// Parallelism head: concat(AQE, PQE, QF) per §5.3.3.
		par: nn.NewMLP(p, "pred.par", 2*h+cfg.QueryDim, h, cfg.ParallelismBuckets),
		// Stop head: one logit from the all-queries embedding, appended
		// to the root logits as a "schedule nothing further" action.
		stop: nn.NewMLP(p, "pred.stop", h, h, 1),
	}
	// Bias the fresh policy against stopping: eagerly activating work is
	// the safe prior; deferral must be learned, not stumbled into.
	if b, ok := p.Get("pred.stop.l1.b"); ok {
		b.Val[0] = -2
	}
	return pr
}

// StopLogit computes the stop action's logit from the AQE.
func (p *Predictor) StopLogit(t *nn.Tape, enc *encoder.Output) *nn.Node {
	return p.stop.Apply(t, enc.AQE)
}

// Config returns the predictor configuration.
func (p *Predictor) Config() Config { return p.cfg }

// RootLogits computes one logit per candidate execution root.
func (p *Predictor) RootLogits(t *nn.Tape, enc *encoder.Output, cands []Candidate) *nn.Node {
	scores := t.NodeSlice(len(cands))
	for i, c := range cands {
		qe := &enc.PerQuery[c.QIdx]
		in := t.Concat(qe.NE[c.OpIdx], qe.EE[c.OpIdx], qe.PQE)
		scores[i] = p.root.Apply(t, in)
	}
	return t.ConcatOwned(scores)
}

// PipelineLogits computes the pipeline-degree logits for a chosen root.
// The caller masks logits beyond the root's MaxDepth before sampling.
func (p *Predictor) PipelineLogits(t *nn.Tape, enc *encoder.Output, c Candidate) *nn.Node {
	qe := &enc.PerQuery[c.QIdx]
	in := t.Concat(qe.NE[c.OpIdx], qe.EE[c.OpIdx], qe.PQE)
	return p.pipe.Apply(t, in)
}

// ParallelismLogits computes the thread-grant bucket logits for the
// query of a chosen root.
func (p *Predictor) ParallelismLogits(t *nn.Tape, enc *encoder.Output, qIdx int, qf []float64) *nn.Node {
	qe := &enc.PerQuery[qIdx]
	in := t.Concat(enc.AQE, qe.PQE, t.Const(qf))
	return p.par.Apply(t, in)
}

// BucketThreads converts a parallelism bucket into a thread grant for a
// pool of the given size.
func (p *Predictor) BucketThreads(bucket, totalThreads int) int {
	n := (bucket + 1) * totalThreads / p.cfg.ParallelismBuckets
	if n < 1 {
		n = 1
	}
	if n > totalThreads {
		n = totalThreads
	}
	return n
}
