package predictor

import (
	"math"
	"testing"

	"repro/internal/encoder"
	"repro/internal/nn"
)

func testEncOutput(t *testing.T, params *nn.Params, hidden, queryDim int) (*encoder.Output, *encoder.Snapshot, *nn.Tape) {
	t.Helper()
	cfg := encoder.Config{OpDim: 5, EdgeDim: 2, QueryDim: queryDim, Hidden: hidden, Layers: 1, UseTCN: true, UseGAT: true}
	enc := encoder.New(params, cfg)
	feat := func(s float64) []float64 {
		v := make([]float64, 5)
		for i := range v {
			v[i] = math.Sin(s + float64(i))
		}
		return v
	}
	snap := &encoder.Snapshot{Queries: []encoder.QuerySnapshot{
		{QueryID: 0, QF: make([]float64, queryDim), Ops: []encoder.OpSnapshot{
			{OpID: 0, Feat: feat(1)},
			{OpID: 1, Feat: feat(2), Children: []encoder.ChildRef{{OpIdx: 0, EdgeFeat: []float64{1, 1}}}},
		}},
		{QueryID: 1, QF: make([]float64, queryDim), Ops: []encoder.OpSnapshot{
			{OpID: 0, Feat: feat(3)},
		}},
	}}
	tape := nn.NewTape()
	return enc.Encode(tape, snap), snap, tape
}

func TestRootLogitsOnePerCandidate(t *testing.T) {
	params := nn.NewParams(1)
	p := New(params, DefaultConfig(8, 4))
	out, _, tape := testEncOutput(t, params, 8, 4)
	cands := []Candidate{
		{QIdx: 0, OpIdx: 0, OpID: 0, MaxDepth: 1},
		{QIdx: 0, OpIdx: 1, OpID: 1, MaxDepth: 0},
		{QIdx: 1, OpIdx: 0, OpID: 0, MaxDepth: 0},
	}
	logits := p.RootLogits(tape, out, cands)
	if logits.Len() != 3 {
		t.Fatalf("logits len %d, want 3", logits.Len())
	}
	for _, v := range logits.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite logit")
		}
	}
}

func TestPipelineLogitsArity(t *testing.T) {
	params := nn.NewParams(2)
	cfg := DefaultConfig(8, 4)
	p := New(params, cfg)
	out, _, tape := testEncOutput(t, params, 8, 4)
	logits := p.PipelineLogits(tape, out, Candidate{QIdx: 0, OpIdx: 0})
	if logits.Len() != cfg.MaxPipelineDepth+1 {
		t.Fatalf("pipeline logits len %d, want %d", logits.Len(), cfg.MaxPipelineDepth+1)
	}
}

func TestParallelismLogitsArity(t *testing.T) {
	params := nn.NewParams(3)
	cfg := DefaultConfig(8, 4)
	p := New(params, cfg)
	out, snap, tape := testEncOutput(t, params, 8, 4)
	logits := p.ParallelismLogits(tape, out, 0, snap.Queries[0].QF)
	if logits.Len() != cfg.ParallelismBuckets {
		t.Fatalf("parallelism logits len %d, want %d", logits.Len(), cfg.ParallelismBuckets)
	}
}

func TestBucketThreads(t *testing.T) {
	p := New(nn.NewParams(4), Config{Hidden: 4, QueryDim: 2, MaxPipelineDepth: 3, ParallelismBuckets: 8})
	if got := p.BucketThreads(7, 64); got != 64 {
		t.Fatalf("top bucket grants %d of 64", got)
	}
	if got := p.BucketThreads(0, 64); got != 8 {
		t.Fatalf("bottom bucket grants %d, want 8", got)
	}
	if got := p.BucketThreads(0, 3); got < 1 {
		t.Fatal("grants must be at least 1")
	}
	if got := p.BucketThreads(7, 3); got != 3 {
		t.Fatalf("grant %d exceeds pool of 3", got)
	}
	// Monotone in the bucket index.
	prev := 0
	for b := 0; b < 8; b++ {
		g := p.BucketThreads(b, 60)
		if g < prev {
			t.Fatalf("bucket %d grants %d < previous %d", b, g, prev)
		}
		prev = g
	}
}

func TestHeadsAreTrainable(t *testing.T) {
	params := nn.NewParams(5)
	p := New(params, DefaultConfig(8, 4))
	out, snap, tape := testEncOutput(t, params, 8, 4)
	cands := []Candidate{{QIdx: 0, OpIdx: 0}, {QIdx: 1, OpIdx: 0}}
	loss := tape.LogProbAt(p.RootLogits(tape, out, cands), 0)
	loss = tape.Add(loss, tape.LogProbAt(p.PipelineLogits(tape, out, cands[0]), 1))
	loss = tape.Add(loss, tape.LogProbAt(p.ParallelismLogits(tape, out, 0, snap.Queries[0].QF), 2))
	params.ZeroGrads()
	tape.Backward(loss)
	for _, name := range []string{"pred.root.l0.W", "pred.pipe.l1.W", "pred.par.l0.W"} {
		n, ok := params.Get(name)
		if !ok {
			t.Fatalf("missing param %s", name)
		}
		any := false
		for _, g := range n.Grad {
			if g != 0 {
				any = true
				break
			}
		}
		if !any {
			t.Fatalf("param %s received no gradient", name)
		}
	}
}
