package plan

import (
	"strings"
	"testing"
)

func chain(n int) *Plan {
	b := NewBuilder("chain")
	prev := b.Add(&Operator{Type: TableScan, EstBlocks: 4})
	for i := 1; i < n; i++ {
		op := b.Add(&Operator{Type: Select, EstBlocks: 4})
		b.ConnectAuto(prev, op)
		prev = op
	}
	return b.MustBuild()
}

func TestBuilderAssignsIDsAndDefaults(t *testing.T) {
	b := NewBuilder("t")
	op := b.Add(&Operator{Type: Select})
	if op.ID != 0 {
		t.Fatal("first op should get ID 0")
	}
	if op.EstBlocks != 1 || op.Selectivity != 1 || op.CostFactor != 1 {
		t.Fatalf("defaults not applied: %+v", op)
	}
}

func TestBuildRejectsEmptyAndMultiSink(t *testing.T) {
	if _, err := NewBuilder("empty").Build(); err == nil {
		t.Fatal("empty plan must fail")
	}
	b := NewBuilder("two-sinks")
	b.Add(&Operator{Type: TableScan})
	b.Add(&Operator{Type: TableScan})
	if _, err := b.Build(); err == nil {
		t.Fatal("two sinks must fail")
	}
}

func TestConnectEnforcesTopologicalOrder(t *testing.T) {
	b := NewBuilder("t")
	a := b.Add(&Operator{Type: TableScan})
	c := b.Add(&Operator{Type: Select})
	defer func() {
		if recover() == nil {
			t.Fatal("reverse edge must panic")
		}
	}()
	b.Connect(c, a, true)
}

func TestSinkAndLeaves(t *testing.T) {
	p := chain(4)
	if p.Sink().ID != 3 {
		t.Fatalf("sink = %d, want 3", p.Sink().ID)
	}
	leaves := p.Leaves()
	if len(leaves) != 1 || leaves[0].ID != 0 {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestLongestPipelinePath(t *testing.T) {
	// scan -> select -> select -> aggregate: the aggregate edge breaks.
	b := NewBuilder("t")
	scan := b.Add(&Operator{Type: TableScan})
	s1 := b.Add(&Operator{Type: Select})
	b.ConnectAuto(scan, s1)
	s2 := b.Add(&Operator{Type: Select})
	b.ConnectAuto(s1, s2)
	agg := b.Add(&Operator{Type: Aggregate})
	b.ConnectAuto(s2, agg)
	p := b.MustBuild()
	if d := p.LongestPipelinePathFrom(p.Ops[0]); d != 2 {
		t.Fatalf("pipeline path from scan = %d, want 2 (two selects)", d)
	}
	if d := p.LongestPipelinePathFrom(p.Ops[2]); d != 0 {
		t.Fatalf("pipeline path from last select = %d, want 0 (aggregate breaks)", d)
	}
}

func TestBlockingKinds(t *testing.T) {
	blocking := []OpType{Aggregate, Sort, BuildHash, TopK, Distinct, Materialize, FinalizeAggregate}
	for _, k := range blocking {
		if !k.Blocking() {
			t.Errorf("%v should be blocking", k)
		}
	}
	streaming := []OpType{TableScan, Select, Project, ProbeHash, Union, Limit}
	for _, k := range streaming {
		if k.Blocking() {
			t.Errorf("%v should not be blocking", k)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := chain(3)
	c := p.Clone()
	if c.NumOps() != p.NumOps() || len(c.Edges) != len(p.Edges) {
		t.Fatal("clone structure differs")
	}
	c.Ops[0].EstBlocks = 99
	if p.Ops[0].EstBlocks == 99 {
		t.Fatal("clone shares operator state")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edges must point at the clone's own operators.
	for _, e := range c.Edges {
		if e.Child != c.Ops[e.Child.ID] || e.Parent != c.Ops[e.Parent.ID] {
			t.Fatal("clone edge points outside the clone")
		}
	}
}

func TestTotalEstBlocks(t *testing.T) {
	p := chain(3)
	if p.TotalEstBlocks() != 12 {
		t.Fatalf("TotalEstBlocks = %d, want 12", p.TotalEstBlocks())
	}
}

func TestStringRendersBreakers(t *testing.T) {
	b := NewBuilder("t")
	scan := b.Add(&Operator{Type: TableScan})
	agg := b.Add(&Operator{Type: Aggregate})
	b.ConnectAuto(scan, agg)
	s := b.MustBuild().String()
	if !strings.Contains(s, "Aggregate") || !strings.Contains(s, "0!") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
}

func TestOpTypeString(t *testing.T) {
	if TableScan.String() != "TableScan" || ProbeHash.String() != "ProbeHash" {
		t.Fatal("wrong op names")
	}
	if OpType(99).String() != "OpType(99)" {
		t.Fatal("out-of-range op name")
	}
	if NumOpTypes != 18 {
		t.Fatalf("NumOpTypes = %d; update the feature vocabulary docs if the operator set changed", NumOpTypes)
	}
}
