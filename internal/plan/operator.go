// Package plan models physical query plans as DAGs of work-order-based
// relational operators, mirroring the Quickstep execution model the paper
// builds on. A plan node corresponds to one physical operator; each edge
// records whether the producer→consumer hand-off is pipeline-breaking.
package plan

import "fmt"

// OpType enumerates the physical operator kinds the engine implements.
// Quickstep ships 29 work-order operator implementations; we implement the
// relational core that TPC-H / SSB / JOB plans need plus the auxiliary
// kinds the feature vectors encode.
type OpType int

const (
	// TableScan reads base-relation blocks.
	TableScan OpType = iota
	// IndexScan reads a base relation through an index (cheaper per block).
	IndexScan
	// Select filters tuples with a predicate.
	Select
	// Project computes/narrows output columns.
	Project
	// BuildHash builds the hash table of a hash join (pipeline breaker).
	BuildHash
	// ProbeHash probes a built hash table.
	ProbeHash
	// NestedLoopJoin joins without an index or hash table.
	NestedLoopJoin
	// IndexNestedLoopJoin probes an index per outer tuple.
	IndexNestedLoopJoin
	// MergeJoin joins two sorted inputs.
	MergeJoin
	// Aggregate computes grouped or scalar aggregates (pipeline breaker).
	Aggregate
	// FinalizeAggregate merges per-block partial aggregate states.
	FinalizeAggregate
	// Sort orders its input (pipeline breaker).
	Sort
	// Union concatenates inputs.
	Union
	// Materialize writes an intermediate relation (pipeline breaker).
	Materialize
	// TopK keeps the k smallest/largest rows (pipeline breaker).
	TopK
	// Window computes window functions over sorted partitions.
	Window
	// Distinct removes duplicate rows (pipeline breaker).
	Distinct
	// Limit truncates the stream.
	Limit
	numOpTypes
)

// NumOpTypes is the size of the operator-type one-hot vocabulary (O-TY).
const NumOpTypes = int(numOpTypes)

var opTypeNames = [...]string{
	TableScan:           "TableScan",
	IndexScan:           "IndexScan",
	Select:              "Select",
	Project:             "Project",
	BuildHash:           "BuildHash",
	ProbeHash:           "ProbeHash",
	NestedLoopJoin:      "NestedLoopJoin",
	IndexNestedLoopJoin: "IndexNestedLoopJoin",
	MergeJoin:           "MergeJoin",
	Aggregate:           "Aggregate",
	FinalizeAggregate:   "FinalizeAggregate",
	Sort:                "Sort",
	Union:               "Union",
	Materialize:         "Materialize",
	TopK:                "TopK",
	Window:              "Window",
	Distinct:            "Distinct",
	Limit:               "Limit",
}

// String returns the operator kind's name.
func (t OpType) String() string {
	if t >= 0 && int(t) < len(opTypeNames) {
		return opTypeNames[t]
	}
	return fmt.Sprintf("OpType(%d)", int(t))
}

// Blocking reports whether an operator of this kind must wait for ALL of
// its inputs to finish before any of its work orders can run (the
// "blocking dependency" notion from Quickstep). ProbeHash is not itself
// blocking — it blocks only on its BuildHash input, which the edge
// records — so blocking-ness is primarily an edge property; this method
// gives the default used when building edges.
func (t OpType) Blocking() bool {
	switch t {
	case Aggregate, FinalizeAggregate, Sort, Materialize, TopK, Distinct, BuildHash:
		return true
	default:
		return false
	}
}

// PredicateKind enumerates the comparison implemented by Select work
// orders in the live engine.
type PredicateKind int

const (
	// PredNone means "no predicate" (pass-through).
	PredNone PredicateKind = iota
	// PredIntLess keeps rows whose int column < Operand.
	PredIntLess
	// PredIntGreaterEq keeps rows whose int column >= Operand.
	PredIntGreaterEq
	// PredIntEq keeps rows whose int column == Operand.
	PredIntEq
	// PredFloatLess keeps rows whose float column < FOperand.
	PredFloatLess
	// PredStringEq keeps rows whose string column == SOperand.
	PredStringEq
)

// Predicate is a simple single-column filter, enough to give Select work
// orders data-dependent selectivity in the live engine.
type Predicate struct {
	Kind     PredicateKind
	Column   string
	Operand  int64
	FOperand float64
	SOperand string
}

// Operator is one node in a physical plan DAG.
type Operator struct {
	// ID is the node's index within its plan, assigned by the builder.
	ID int
	// Type is the physical operator kind.
	Type OpType
	// InputRelations names the base or intermediate relations the
	// operator reads (the O-IN feature).
	InputRelations []string
	// Columns names the attributes the operator touches (O-COLS).
	Columns []string
	// Pred is the live-engine predicate for Select nodes.
	Pred Predicate
	// EstBlocks is the optimizer's block-count estimate for the
	// operator's input, which drives work-order generation (O-BLCKS and
	// O-WO start from here).
	EstBlocks int
	// Selectivity is the optimizer's estimate of output/input rows, used
	// by the cost model and by work-order count estimation downstream.
	Selectivity float64
	// CostFactor scales the per-work-order base cost for this operator;
	// it encodes how heavy one block's worth of work is for this kind
	// (e.g. a probe over a huge hash table costs more than a select).
	CostFactor float64

	// children/parents are edge lists maintained by the Plan builder.
	children []*Edge
	parents  []*Edge
}

// Children returns the edges from this operator to its input operators
// (the nodes that produce its input).
func (o *Operator) Children() []*Edge { return o.children }

// Parents returns the edges from this operator to its consumers.
func (o *Operator) Parents() []*Edge { return o.parents }

// Edge connects a child (producer) operator to a parent (consumer)
// operator and carries the paper's two edge features.
type Edge struct {
	// Child produces tuples consumed by Parent.
	Child, Parent *Operator
	// NonPipelineBreaking is the E-NPB feature: true when Parent may
	// start consuming before Child finishes (e.g. Select feeding Select),
	// false for breakers (e.g. BuildHash feeding ProbeHash).
	NonPipelineBreaking bool
	// SourceIsChild is the E-DIR feature: true when pipelining flows from
	// the child up to the parent, which is the only direction our engine
	// uses; kept explicit because the feature vector encodes it.
	SourceIsChild bool
}
