package plan

import (
	"fmt"
	"strings"
)

// Plan is a physical query plan: a DAG of operators with a single sink
// (the query's output operator). Operators are stored in the order they
// were added, which the builder guarantees is a topological order from
// leaves to sink.
type Plan struct {
	// QueryName labels the plan (e.g. "tpch-q3").
	QueryName string
	// Ops holds all operators, children before parents.
	Ops []*Operator
	// Edges holds all edges, in insertion order.
	Edges []*Edge
}

// Builder constructs plans. Methods panic on structural misuse (adding an
// edge between foreign operators), which is a programming error in the
// workload templates, not a runtime condition.
type Builder struct {
	p *Plan
}

// NewBuilder starts a plan with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{p: &Plan{QueryName: name}}
}

// Add appends an operator to the plan and assigns its ID. The operator's
// EstBlocks must be at least 1 (every operator has at least one work
// order).
func (b *Builder) Add(op *Operator) *Operator {
	if op.EstBlocks < 1 {
		op.EstBlocks = 1
	}
	if op.Selectivity <= 0 {
		op.Selectivity = 1
	}
	if op.CostFactor <= 0 {
		op.CostFactor = 1
	}
	op.ID = len(b.p.Ops)
	b.p.Ops = append(b.p.Ops, op)
	return op
}

// Connect adds an edge child→parent. The edge's pipeline-breaking status
// defaults to the parent type's Blocking() property but can be overridden
// for special cases (e.g. ProbeHash's probe-side input pipelines, its
// build-side input does not).
func (b *Builder) Connect(child, parent *Operator, nonPipelineBreaking bool) *Edge {
	if child == nil || parent == nil {
		panic("plan: Connect with nil operator")
	}
	if child.ID >= len(b.p.Ops) || b.p.Ops[child.ID] != child {
		panic("plan: child operator not in this plan")
	}
	if parent.ID >= len(b.p.Ops) || b.p.Ops[parent.ID] != parent {
		panic("plan: parent operator not in this plan")
	}
	if child.ID >= parent.ID {
		panic(fmt.Sprintf("plan: edge %d→%d violates topological insertion order", child.ID, parent.ID))
	}
	e := &Edge{Child: child, Parent: parent, NonPipelineBreaking: nonPipelineBreaking, SourceIsChild: true}
	child.parents = append(child.parents, e)
	parent.children = append(parent.children, e)
	b.p.Edges = append(b.p.Edges, e)
	return e
}

// ConnectAuto adds an edge whose pipeline-breaking status is derived from
// the parent operator's kind.
func (b *Builder) ConnectAuto(child, parent *Operator) *Edge {
	return b.Connect(child, parent, !parent.Type.Blocking())
}

// Build finalizes and validates the plan.
func (b *Builder) Build() (*Plan, error) {
	p := b.p
	if len(p.Ops) == 0 {
		return nil, fmt.Errorf("plan %q: empty", p.QueryName)
	}
	sinks := 0
	for _, op := range p.Ops {
		if len(op.parents) == 0 {
			sinks++
		}
	}
	if sinks != 1 {
		return nil, fmt.Errorf("plan %q: expected exactly 1 sink, found %d", p.QueryName, sinks)
	}
	return p, nil
}

// MustBuild is Build that panics on error, for static workload templates.
func (b *Builder) MustBuild() *Plan {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Sink returns the plan's output operator.
func (p *Plan) Sink() *Operator {
	for _, op := range p.Ops {
		if len(op.parents) == 0 {
			return op
		}
	}
	return nil
}

// Leaves returns the operators with no children (base scans).
func (p *Plan) Leaves() []*Operator {
	var out []*Operator
	for _, op := range p.Ops {
		if len(op.children) == 0 {
			out = append(out, op)
		}
	}
	return out
}

// NumOps returns the number of operators.
func (p *Plan) NumOps() int { return len(p.Ops) }

// TotalEstBlocks sums the block estimates of all operators — a rough
// measure of the plan's total work.
func (p *Plan) TotalEstBlocks() int {
	n := 0
	for _, op := range p.Ops {
		n += op.EstBlocks
	}
	return n
}

// LongestPipelinePathFrom returns the number of additional operators
// reachable from op by repeatedly following a non-pipeline-breaking edge
// to a parent. This bounds the pipeline degree the predictor may choose
// for an execution root (§5.3.2).
func (p *Plan) LongestPipelinePathFrom(op *Operator) int {
	best := 0
	for _, e := range op.parents {
		if e.NonPipelineBreaking {
			if d := 1 + p.LongestPipelinePathFrom(e.Parent); d > best {
				best = d
			}
		}
	}
	return best
}

// Validate checks DAG invariants: IDs match positions, edges are
// topologically ordered, and the plan is acyclic by construction.
func (p *Plan) Validate() error {
	for i, op := range p.Ops {
		if op.ID != i {
			return fmt.Errorf("plan %q: op at %d has ID %d", p.QueryName, i, op.ID)
		}
	}
	for _, e := range p.Edges {
		if e.Child.ID >= e.Parent.ID {
			return fmt.Errorf("plan %q: edge %d→%d not topological", p.QueryName, e.Child.ID, e.Parent.ID)
		}
	}
	return nil
}

// String renders a compact description, one operator per line.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan %s (%d ops)\n", p.QueryName, len(p.Ops))
	for _, op := range p.Ops {
		fmt.Fprintf(&sb, "  [%d] %s blocks=%d", op.ID, op.Type, op.EstBlocks)
		if len(op.children) > 0 {
			sb.WriteString(" <- ")
			for i, e := range op.children {
				if i > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, "%d", e.Child.ID)
				if !e.NonPipelineBreaking {
					sb.WriteString("!")
				}
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Clone deep-copies the plan structure (operators and edges). Run-time
// state lives outside the plan, but cloning lets a workload reuse one
// template for many concurrently-running query instances safely.
func (p *Plan) Clone() *Plan {
	b := NewBuilder(p.QueryName)
	mapped := make([]*Operator, len(p.Ops))
	for i, op := range p.Ops {
		c := &Operator{
			Type:           op.Type,
			InputRelations: append([]string(nil), op.InputRelations...),
			Columns:        append([]string(nil), op.Columns...),
			Pred:           op.Pred,
			EstBlocks:      op.EstBlocks,
			Selectivity:    op.Selectivity,
			CostFactor:     op.CostFactor,
		}
		b.Add(c)
		mapped[i] = c
	}
	for _, e := range p.Edges {
		b.Connect(mapped[e.Child.ID], mapped[e.Parent.ID], e.NonPipelineBreaking)
	}
	return b.p
}
