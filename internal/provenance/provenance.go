// Package provenance is the decision flight recorder: it captures every
// learned decision the system takes — the LSched scheduling action and
// the front door's admission verdict — together with the exact
// normalized feature vector the policy saw, the candidate scores it
// produced, the policy version that produced them, and the heuristic
// baseline's counterfactual choice. Each record is later joined to its
// outcome (latency, deadline met, shed, cost-model prediction error) at
// query completion, turning the ring into replayable training traces
// and the substrate for two analysis surfaces:
//
//   - drift.go: per-feature PSI drift detection of the live feature
//     distribution against a training-time reference snapshot, and
//   - slo.go: per-tenant/class multi-window error-budget burn rates.
//
// The recorder is lock-light and allocation-aware: one mutex with short
// critical sections, records stored in a bounded ring whose per-slot
// feature/score slabs are reused across wraps, so recording on the
// agent's serving fast path costs no steady-state allocations. Records
// spill periodically to an attached sink as CRC-framed binary batches —
// the same verify-before-trust discipline as policystore checkpoints —
// and reload bit-identical (see spill.go), which is what ROADMAP item 1
// (offline admission training from recorded traces) consumes.
package provenance

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Kind labels which learned policy took a decision.
type Kind uint8

const (
	// KindSchedule is an LSched scheduling action (root activation +
	// pipeline depth), keyed by engine query ID.
	KindSchedule Kind = iota
	// KindAdmit is a front-door admission verdict (admit/shed), keyed
	// by the front door's submission sequence number.
	KindAdmit
	numKinds
)

// String names the kind (as used in metric labels and JSON).
func (k Kind) String() string {
	switch k {
	case KindSchedule:
		return "schedule"
	case KindAdmit:
		return "admit"
	}
	return "kind(?)"
}

// Outcome is the joined result of a recorded decision, filled in at
// query completion (or at shed time) via JoinOutcome.
type Outcome struct {
	// Joined reports whether the decision's outcome ever arrived.
	Joined bool `json:"joined"`
	// LatencySecs is submit-to-completion (admitted/completed queries).
	LatencySecs float64 `json:"latency_secs,omitempty"`
	// DeadlineMet reports whether the query met its deadline (true when
	// it had none and completed).
	DeadlineMet bool `json:"deadline_met,omitempty"`
	// Shed marks a query dropped after the decision.
	Shed bool `json:"shed,omitempty"`
	// Rejected marks a query that never ran.
	Rejected bool `json:"rejected,omitempty"`
	// DurPredErr is actual minus predicted whole-plan duration at
	// decision time (the O-DUR prediction error the cost model carried).
	DurPredErr float64 `json:"dur_pred_err,omitempty"`
	// MemPredErr is the O-MEM analogue.
	MemPredErr float64 `json:"mem_pred_err,omitempty"`
}

// Record is one captured decision. Slices alias recorder-owned slabs
// while the record sits in the ring; accessor methods (Recent, ByQuery)
// and the spill reader return deep copies.
type Record struct {
	// Seq is the recorder-assigned sequence number (starts at 1).
	Seq uint64 `json:"seq"`
	// Kind labels the deciding policy.
	Kind Kind `json:"kind"`
	// QueryID keys the outcome join: the engine query ID for schedule
	// decisions (-1 when the action was "stop"), the front-door
	// submission sequence for admissions.
	QueryID int64 `json:"query_id"`
	// Tenant is the submitting tenant (admissions only).
	Tenant string `json:"tenant,omitempty"`
	// NodeID names the cluster node whose policy took the decision
	// (empty on single-node deployments). It is stamped per recorder
	// (SetNodeID), so traces spilled by different nodes stay
	// attributable after they are merged.
	NodeID string `json:"node_id,omitempty"`
	// PolicyVersion is the policy-store version of the deciding policy
	// (0 = not from the store), stamped by serving.HotAgent on swap so
	// a bad promotion is attributable record by record.
	PolicyVersion int32 `json:"policy_version"`
	// UnixNanos is the decision wall-clock time.
	UnixNanos int64 `json:"unix_nanos"`
	// Features is the exact normalized feature vector the policy scored
	// (the agent's flat feature arena; the admission head's input).
	Features []float64 `json:"features"`
	// Scores are the candidate scores/probabilities the policy produced
	// (root logits including the trailing stop logit; the admission
	// head's admit probability).
	Scores []float64 `json:"scores"`
	// Action is the chosen action: the picked candidate index for
	// schedule decisions (-1 = stop), the frontdoor.Decision value for
	// admissions.
	Action int32 `json:"action"`
	// ActionArg carries the action's argument (pipeline depth).
	ActionArg int32 `json:"action_arg"`
	// Heuristic is the non-learned baseline's counterfactual choice
	// under the same candidates: the critical-path pick for schedule
	// decisions, the admit-everything verdict for admissions.
	Heuristic int32 `json:"heuristic"`
	// Outcome is filled by JoinOutcome.
	Outcome Outcome `json:"outcome"`

	// prevSeq chains earlier still-unjoined records with the same
	// (Kind, QueryID), so one join reaches every decision taken for the
	// query; 0 terminates the chain.
	prevSeq uint64
}

type openKey struct {
	kind Kind
	id   int64
}

// Options configures a Recorder.
type Options struct {
	// Capacity bounds the ring (default 4096 records).
	Capacity int
	// Now supplies decision timestamps in Unix nanoseconds; nil uses
	// time.Now. Injectable for deterministic tests and golden files.
	Now func() int64
}

// Recorder is the bounded decision ring. The zero value is not usable;
// build with NewRecorder. A nil *Recorder is a valid "provenance
// disabled" handle: every method no-ops, so call sites record
// unconditionally like metrics instruments.
type Recorder struct {
	mu     sync.Mutex
	ring   []Record
	seq    uint64 // last assigned sequence; slot index is seq % cap
	open   map[openKey]uint64
	now    func() int64
	nodeID string

	names [numKinds][]string
	drift [numKinds]*DriftDetector

	sink       *sinkState
	joinedN    uint64
	mRecords   [numKinds]*metrics.Counter
	mJoins     *metrics.Counter
	mSpilled   *metrics.Counter
	mOpen      *metrics.Gauge
	mSpillErrs *metrics.Counter
}

// NewRecorder builds a recorder.
func NewRecorder(opts Options) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = 4096
	}
	if opts.Now == nil {
		opts.Now = func() int64 { return time.Now().UnixNano() }
	}
	return &Recorder{
		ring: make([]Record, opts.Capacity),
		open: make(map[openKey]uint64),
		now:  opts.Now,
	}
}

// Instrument attaches recorder counters to a registry (nil no-ops).
func (r *Recorder) Instrument(reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	for k := Kind(0); k < numKinds; k++ {
		r.mRecords[k] = reg.Counter(metrics.LabeledName("provenance_records", "kind", k.String()))
	}
	r.mJoins = reg.Counter("provenance_joins")
	r.mSpilled = reg.Counter("provenance_spilled_records")
	r.mSpillErrs = reg.Counter("provenance_spill_errors")
	r.mOpen = reg.Gauge("provenance_open_keys")
}

// SetNodeID stamps every subsequently recorded decision with the
// cluster node identity, so merged multi-node traces stay attributable
// record by record (lsched-policyctl explain prints it). Set it once at
// process start, before traffic.
func (r *Recorder) SetNodeID(id string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.nodeID = id
	r.mu.Unlock()
}

// SetFeatureNames labels one kind's feature-vector positions for the
// explain surfaces (/decisions, lsched-policyctl explain). Names are
// advisory: records whose vector length differs render unnamed.
func (r *Recorder) SetFeatureNames(kind Kind, names []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.names[kind] = append([]string(nil), names...)
	r.mu.Unlock()
}

// FeatureNames returns the names registered for a kind (nil when none).
func (r *Recorder) FeatureNames(kind Kind) []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names[kind]...)
}

// SetDrift attaches a drift detector fed every recorded feature vector
// of the given kind (vectors whose length does not match the detector's
// reference are skipped by the detector).
func (r *Recorder) SetDrift(kind Kind, d *DriftDetector) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.drift[kind] = d
	r.mu.Unlock()
}

// Drift returns the detector attached for a kind (nil when none).
func (r *Recorder) Drift(kind Kind) *DriftDetector {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drift[kind]
}

// Record captures one decision into the ring, copying features and
// scores into the slot's reused slabs (no steady-state allocation).
// It returns the record's sequence number (0 on a nil recorder).
// queryID < 0 records an unjoinable decision (e.g. a stop action).
func (r *Recorder) Record(kind Kind, queryID int64, tenant string, policyVersion int, features, scores []float64, action, actionArg, heuristic int32) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.seq++
	seq := r.seq
	slot := &r.ring[seq%uint64(len(r.ring))]
	// The slot being overwritten may still head an open chain; its map
	// entry is invalidated lazily (Seq validation at join time) and
	// swept when the map outgrows the ring.
	slot.Seq = seq
	slot.Kind = kind
	slot.QueryID = queryID
	slot.Tenant = tenant
	slot.NodeID = r.nodeID
	slot.PolicyVersion = int32(policyVersion)
	slot.UnixNanos = r.now()
	slot.Features = append(slot.Features[:0], features...)
	slot.Scores = append(slot.Scores[:0], scores...)
	slot.Action = action
	slot.ActionArg = actionArg
	slot.Heuristic = heuristic
	slot.Outcome = Outcome{}
	slot.prevSeq = 0
	if queryID >= 0 {
		key := openKey{kind: kind, id: queryID}
		slot.prevSeq = r.open[key]
		r.open[key] = seq
		if len(r.open) > len(r.ring) {
			r.sweepOpenLocked()
		}
	}
	det := r.drift[kind]
	var spillErr error
	if r.sink != nil && seq-r.sink.through >= uint64(r.sink.every) {
		spillErr = r.flushLocked()
	}
	r.mu.Unlock()

	r.mRecords[kind].Inc()
	if r.mOpen != nil {
		r.mOpen.Set(float64(r.openKeysApprox()))
	}
	if spillErr != nil {
		r.mSpillErrs.Inc()
	}
	if det != nil {
		det.Observe(features)
	}
	return seq
}

// sweepOpenLocked drops open-chain heads whose ring slot was already
// overwritten, bounding the map at ring size. Caller holds r.mu.
func (r *Recorder) sweepOpenLocked() {
	for key, seq := range r.open {
		slot := &r.ring[seq%uint64(len(r.ring))]
		if slot.Seq != seq || slot.Kind != key.kind || slot.QueryID != key.id {
			delete(r.open, key)
		}
	}
}

func (r *Recorder) openKeysApprox() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.open)
}

// JoinOutcome attaches an outcome to every still-ringed record of the
// (kind, queryID) chain and closes it. Unknown keys no-op, so callers
// join unconditionally at completion/shed time.
func (r *Recorder) JoinOutcome(kind Kind, queryID int64, o Outcome) {
	if r == nil || queryID < 0 {
		return
	}
	o.Joined = true
	joined := 0
	key := openKey{kind: kind, id: queryID}
	r.mu.Lock()
	seq := r.open[key]
	for seq != 0 {
		slot := &r.ring[seq%uint64(len(r.ring))]
		if slot.Seq != seq || slot.Kind != kind || slot.QueryID != queryID {
			break // evicted by a ring wrap; older chain entries are gone too
		}
		slot.Outcome = o
		joined++
		seq = slot.prevSeq
	}
	delete(r.open, key)
	r.joinedN += uint64(joined)
	r.mu.Unlock()
	if joined > 0 {
		r.mJoins.Add(int64(joined))
	}
}

// cloneRecord deep-copies a ring slot.
func cloneRecord(src *Record) Record {
	out := *src
	out.Features = append([]float64(nil), src.Features...)
	out.Scores = append([]float64(nil), src.Scores...)
	out.prevSeq = 0
	return out
}

// Recent returns deep copies of the newest n records, oldest first.
func (r *Recorder) Recent(n int) []Record {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := uint64(1)
	if r.seq > uint64(len(r.ring)) {
		lo = r.seq - uint64(len(r.ring)) + 1
	}
	if r.seq-lo+1 > uint64(n) {
		lo = r.seq - uint64(n) + 1
	}
	out := make([]Record, 0, n)
	for s := lo; s <= r.seq; s++ {
		slot := &r.ring[s%uint64(len(r.ring))]
		if slot.Seq != s {
			continue
		}
		out = append(out, cloneRecord(slot))
	}
	return out
}

// ByQuery returns deep copies of every ringed record for (kind,
// queryID), oldest first — the explain view's query filter.
func (r *Recorder) ByQuery(kind Kind, queryID int64) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Record
	lo := uint64(1)
	if r.seq > uint64(len(r.ring)) {
		lo = r.seq - uint64(len(r.ring)) + 1
	}
	for s := lo; s <= r.seq; s++ {
		slot := &r.ring[s%uint64(len(r.ring))]
		if slot.Seq == s && slot.Kind == kind && slot.QueryID == queryID {
			out = append(out, cloneRecord(slot))
		}
	}
	return out
}

// Stats is a recorder accounting snapshot.
type Stats struct {
	// Recorded counts decisions ever recorded (== last sequence).
	Recorded uint64 `json:"recorded"`
	// Joined counts records that received their outcome.
	Joined uint64 `json:"joined"`
	// Spilled counts records written to the sink.
	Spilled uint64 `json:"spilled"`
	// OpenKeys is the number of decision chains awaiting an outcome.
	OpenKeys int `json:"open_keys"`
}

// Stats returns the recorder's counters (zero value on nil).
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{Recorded: r.seq, Joined: r.joinedN, OpenKeys: len(r.open)}
	if r.sink != nil {
		st.Spilled = r.sink.through
	}
	return st
}
