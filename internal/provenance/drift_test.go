package provenance

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
)

// trainingSamples draws from the "training" distribution: feature 0
// uniform on [0,1), feature 1 normal-ish around 10.
func trainingSamples(rng *rand.Rand, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{rng.Float64(), 10 + rng.NormFloat64()}
	}
	return out
}

func TestBinIndex(t *testing.T) {
	edges := []float64{1, 2, 3}
	cases := []struct {
		v    float64
		want int
	}{{0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {2.5, 2}, {3, 2}, {100, 3}}
	for _, c := range cases {
		if got := binIndex(edges, c.v); got != c.want {
			t.Errorf("binIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := binIndex(nil, 5); got != 0 {
		t.Errorf("binIndex with no edges = %d, want 0", got)
	}
}

func TestBuildReferenceShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	names := []string{"u", "n"}
	ref, err := BuildReference(names, trainingSamples(rng, 1000), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Features) != 2 {
		t.Fatalf("reference has %d features", len(ref.Features))
	}
	for _, fr := range ref.Features {
		if len(fr.Probs) != len(fr.Edges)+1 {
			t.Fatalf("%s: %d probs for %d edges", fr.Name, len(fr.Probs), len(fr.Edges))
		}
		sum := 0.0
		for _, p := range fr.Probs {
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: probs sum to %v", fr.Name, sum)
		}
	}
	// A constant feature must collapse to one bin, not error.
	constant := make([][]float64, 50)
	for i := range constant {
		constant[i] = []float64{5}
	}
	ref, err = BuildReference([]string{"c"}, constant, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Features[0].Edges) != 0 || len(ref.Features[0].Probs) != 1 {
		t.Fatalf("constant feature: edges=%v probs=%v", ref.Features[0].Edges, ref.Features[0].Probs)
	}

	if _, err := BuildReference(names, nil, 10); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := BuildReference(names, [][]float64{{1}}, 10); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestDriftQuietOnTrainingDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	names := []string{"u", "n"}
	ref, err := BuildReference(names, trainingSamples(rng, 2000), 10)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriftDetector(DriftConfig{Names: names, Window: 256, UpdateEvery: 16})
	reg := metrics.NewRegistry()
	d.Instrument(reg)
	if err := d.SetReference(ref); err != nil {
		t.Fatal(err)
	}
	for _, s := range trainingSamples(rng, 1000) {
		d.Observe(s)
	}
	st := d.Snapshot()
	if st.Calibrating {
		t.Fatal("still calibrating with a reference installed")
	}
	if st.MaxPSI > 0.1 {
		t.Fatalf("in-distribution stream scored MaxPSI %v, want < 0.1", st.MaxPSI)
	}
	for _, f := range st.Features {
		if f.Drifted {
			t.Fatalf("feature %s flagged drifted at PSI %v", f.Name, f.PSI)
		}
	}
	if v := reg.Counter("provenance_drift_trips").Value(); v != 0 {
		t.Fatalf("trips counter = %d on in-distribution stream", v)
	}
	if v := reg.Gauge("provenance_drift_features").Value(); v != 0 {
		t.Fatalf("drifted-features gauge = %v", v)
	}
}

func TestDriftTripsOnShiftedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := []string{"u", "n"}
	ref, err := BuildReference(names, trainingSamples(rng, 2000), 10)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriftDetector(DriftConfig{Names: names, Window: 256, UpdateEvery: 16})
	reg := metrics.NewRegistry()
	d.Instrument(reg)
	if err := d.SetReference(ref); err != nil {
		t.Fatal(err)
	}
	// Feature 1 shifts +5 sigma; feature 0 stays in distribution.
	for i := 0; i < 1000; i++ {
		d.Observe([]float64{rng.Float64(), 15 + rng.NormFloat64()})
	}
	st := d.Snapshot()
	if st.MaxPSI <= st.Threshold {
		t.Fatalf("shifted stream MaxPSI %v did not exceed threshold %v", st.MaxPSI, st.Threshold)
	}
	var shifted, stable *FeatureDrift
	for i := range st.Features {
		switch st.Features[i].Name {
		case "n":
			shifted = &st.Features[i]
		case "u":
			stable = &st.Features[i]
		}
	}
	if !shifted.Drifted {
		t.Fatalf("shifted feature not flagged: PSI %v", shifted.PSI)
	}
	if stable.Drifted {
		t.Fatalf("stable feature wrongly flagged: PSI %v", stable.PSI)
	}
	if v := reg.Counter("provenance_drift_trips").Value(); v < 1 {
		t.Fatalf("trips counter = %d, want >= 1", v)
	}
	if v := reg.Gauge(metrics.LabeledName("provenance_feature_psi", "feature", "n")).Value(); v <= 0.2 {
		t.Fatalf("per-feature gauge = %v, want > 0.2", v)
	}
}

func TestDriftSelfCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	names := []string{"u", "n"}
	d := NewDriftDetector(DriftConfig{Names: names, Window: 128, RefSamples: 200, UpdateEvery: 16})
	for _, s := range trainingSamples(rng, 199) {
		d.Observe(s)
	}
	if !d.Snapshot().Calibrating {
		t.Fatal("reference built before RefSamples observations")
	}
	d.Observe([]float64{0.5, 10})
	if d.Snapshot().Calibrating {
		t.Fatal("reference not built at RefSamples observations")
	}
	// Post-calibration shifted stream still trips.
	for i := 0; i < 500; i++ {
		d.Observe([]float64{rng.Float64() + 3, 10 + rng.NormFloat64()})
	}
	if st := d.Snapshot(); st.MaxPSI <= st.Threshold {
		t.Fatalf("post-calibration shift not detected: MaxPSI %v", st.MaxPSI)
	}
}

func TestDriftSkipsMismatchedVectors(t *testing.T) {
	d := NewDriftDetector(DriftConfig{Names: []string{"a"}, Window: 16})
	ref, err := BuildReference([]string{"a"}, [][]float64{{1}, {2}, {3}, {4}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetReference(ref); err != nil {
		t.Fatal(err)
	}
	d.Observe([]float64{1, 2}) // wrong dimension
	d.Observe(nil)
	d.Observe([]float64{1})
	st := d.Snapshot()
	if st.Skipped != 2 || st.Samples != 1 {
		t.Fatalf("skipped=%d samples=%d, want 2/1", st.Skipped, st.Samples)
	}
	// Mismatched reference refused.
	bad := &Reference{Features: []FeatureRef{{}, {}}}
	if err := d.SetReference(bad); err == nil {
		t.Fatal("mismatched reference accepted")
	}
}

func TestNilDriftDetector(t *testing.T) {
	var d *DriftDetector
	d.Observe([]float64{1})
	d.Instrument(metrics.NewRegistry())
	if err := d.SetReference(&Reference{}); err != nil {
		t.Fatal(err)
	}
	if st := d.Snapshot(); st.Window != 0 {
		t.Fatalf("nil snapshot = %+v", st)
	}
}

func TestDriftObserveSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := []string{"u", "n"}
	ref, err := BuildReference(names, trainingSamples(rng, 500), 10)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriftDetector(DriftConfig{Names: names, Window: 128, UpdateEvery: 32})
	if err := d.SetReference(ref); err != nil {
		t.Fatal(err)
	}
	vec := []float64{0.5, 10.1}
	for i := 0; i < 256; i++ {
		d.Observe(vec)
	}
	if allocs := testing.AllocsPerRun(500, func() { d.Observe(vec) }); allocs > 0 {
		t.Fatalf("Observe allocates %.1f/op, want 0", allocs)
	}
}
