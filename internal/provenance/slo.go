package provenance

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// SLO burn-rate tracking: each (tenant, class) pair gets an error
// budget of 1−objective on the deadline-met rate, observed over two
// rolling windows (short 5m for fast paging, long 1h for sustained
// burn — the standard multi-window alerting shape). The burn rate is
//
//	burn = errorRate / (1 − objective)
//
// so burn 1.0 consumes the budget exactly at sustainable pace; a
// short-window burn ≫ 1 with a long-window burn > 1 is the actionable
// page. Rates export as slo_burn_rate{tenant,class,window} gauges and
// the /slo JSON snapshot.

// SLOConfig configures a Tracker.
type SLOConfig struct {
	// Objective is the target success (deadline-met) rate, default 0.99.
	Objective float64
	// Short and Long are the two burn windows (default 5m and 1h).
	Short, Long time.Duration
	// Buckets subdivides each window's ring (default 60).
	Buckets int
	// Now is injectable for tests; nil uses time.Now.
	Now func() time.Time
}

type sloKey struct{ tenant, class string }

type burnWin struct {
	bucket time.Duration
	good   []int64
	bad    []int64
	stamp  []int64 // bucket epoch occupying each slot; -1 = empty
}

func newBurnWin(window time.Duration, buckets int) burnWin {
	w := burnWin{
		bucket: window / time.Duration(buckets),
		good:   make([]int64, buckets),
		bad:    make([]int64, buckets),
		stamp:  make([]int64, buckets),
	}
	for i := range w.stamp {
		w.stamp[i] = -1
	}
	return w
}

func (w *burnWin) observe(now time.Time, good bool) {
	idx := now.UnixNano() / int64(w.bucket)
	slot := idx % int64(len(w.stamp))
	if w.stamp[slot] != idx {
		w.stamp[slot] = idx
		w.good[slot], w.bad[slot] = 0, 0
	}
	if good {
		w.good[slot]++
	} else {
		w.bad[slot]++
	}
}

// totals sums the slots still inside the window ending now.
func (w *burnWin) totals(now time.Time) (good, bad int64) {
	idx := now.UnixNano() / int64(w.bucket)
	min := idx - int64(len(w.stamp)) + 1
	for i := range w.stamp {
		if w.stamp[i] >= min && w.stamp[i] <= idx {
			good += w.good[i]
			bad += w.bad[i]
		}
	}
	return good, bad
}

type sloSeries struct {
	short, long   burnWin
	good, bad     int64 // lifetime
	gShort, gLong *metrics.Gauge
}

// Tracker tracks per-(tenant, class) SLO burn. A nil *Tracker no-ops
// every method, so callers observe unconditionally.
type Tracker struct {
	mu     sync.Mutex
	cfg    SLOConfig
	reg    *metrics.Registry
	series map[sloKey]*sloSeries
}

// NewSLOTracker builds a tracker.
func NewSLOTracker(cfg SLOConfig) *Tracker {
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = 0.99
	}
	if cfg.Short <= 0 {
		cfg.Short = 5 * time.Minute
	}
	if cfg.Long <= 0 {
		cfg.Long = time.Hour
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 60
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Tracker{cfg: cfg, series: make(map[sloKey]*sloSeries)}
}

// Instrument attaches burn-rate gauges for every (tenant, class) seen.
func (t *Tracker) Instrument(reg *metrics.Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reg = reg
	t.mu.Unlock()
}

// Observe records one query outcome for (tenant, class): good = true
// when the query completed within its deadline (or had none).
func (t *Tracker) Observe(tenant, class string, good bool) {
	if t == nil {
		return
	}
	now := t.cfg.Now()
	t.mu.Lock()
	key := sloKey{tenant: tenant, class: class}
	s := t.series[key]
	if s == nil {
		s = &sloSeries{
			short: newBurnWin(t.cfg.Short, t.cfg.Buckets),
			long:  newBurnWin(t.cfg.Long, t.cfg.Buckets),
		}
		if t.reg != nil {
			s.gShort = t.reg.Gauge(metrics.LabeledName("slo_burn_rate",
				"tenant", tenant, "class", class, "window", t.cfg.Short.String()))
			s.gLong = t.reg.Gauge(metrics.LabeledName("slo_burn_rate",
				"tenant", tenant, "class", class, "window", t.cfg.Long.String()))
		}
		t.series[key] = s
	}
	if good {
		s.good++
	} else {
		s.bad++
	}
	s.short.observe(now, good)
	s.long.observe(now, good)
	sg, sb := s.short.totals(now)
	lg, lb := s.long.totals(now)
	t.mu.Unlock()

	s.gShort.Set(t.burn(sg, sb))
	s.gLong.Set(t.burn(lg, lb))
}

// burn converts window totals into an error-budget burn rate.
func (t *Tracker) burn(good, bad int64) float64 {
	total := good + bad
	if total == 0 {
		return 0
	}
	errRate := float64(bad) / float64(total)
	return errRate / (1 - t.cfg.Objective)
}

// SLOWindow is one window's state in a snapshot.
type SLOWindow struct {
	Window    string  `json:"window"`
	Good      int64   `json:"good"`
	Bad       int64   `json:"bad"`
	ErrorRate float64 `json:"error_rate"`
	BurnRate  float64 `json:"burn_rate"`
}

// SLOEntry is one (tenant, class) series in a snapshot.
type SLOEntry struct {
	Tenant string `json:"tenant"`
	Class  string `json:"class"`
	// Good/Bad are lifetime outcome counts.
	Good    int64       `json:"good"`
	Bad     int64       `json:"bad"`
	Windows []SLOWindow `json:"windows"`
}

// SLOStatus is the /slo payload.
type SLOStatus struct {
	Objective float64    `json:"objective"`
	Entries   []SLOEntry `json:"entries"`
}

// Snapshot returns every series' current burn state, sorted by
// (tenant, class) for stable rendering.
func (t *Tracker) Snapshot() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	now := t.cfg.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := SLOStatus{Objective: t.cfg.Objective}
	for key, s := range t.series {
		e := SLOEntry{Tenant: key.tenant, Class: key.class, Good: s.good, Bad: s.bad}
		for _, w := range []struct {
			name string
			win  *burnWin
		}{{t.cfg.Short.String(), &s.short}, {t.cfg.Long.String(), &s.long}} {
			g, b := w.win.totals(now)
			sw := SLOWindow{Window: w.name, Good: g, Bad: b, BurnRate: t.burn(g, b)}
			if g+b > 0 {
				sw.ErrorRate = float64(b) / float64(g+b)
			}
			e.Windows = append(e.Windows, sw)
		}
		st.Entries = append(st.Entries, e)
	}
	sort.Slice(st.Entries, func(i, j int) bool {
		if st.Entries[i].Tenant != st.Entries[j].Tenant {
			return st.Entries[i].Tenant < st.Entries[j].Tenant
		}
		return st.Entries[i].Class < st.Entries[j].Class
	})
	return st
}
