package provenance

import (
	"testing"

	"repro/internal/metrics"
)

func testRecorder(cap int) *Recorder {
	var tick int64
	return NewRecorder(Options{Capacity: cap, Now: func() int64 {
		tick++
		return tick * 1000
	}})
}

func TestRecordAndJoin(t *testing.T) {
	r := testRecorder(16)
	seq := r.Record(KindSchedule, 7, "", 3, []float64{1, 2, 3}, []float64{0.5, 0.5}, 1, 2, 0)
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	r.JoinOutcome(KindSchedule, 7, Outcome{LatencySecs: 1.5, DeadlineMet: true})

	recs := r.ByQuery(KindSchedule, 7)
	if len(recs) != 1 {
		t.Fatalf("ByQuery returned %d records, want 1", len(recs))
	}
	got := recs[0]
	if !got.Outcome.Joined || !got.Outcome.DeadlineMet || got.Outcome.LatencySecs != 1.5 {
		t.Fatalf("outcome not joined correctly: %+v", got.Outcome)
	}
	if got.PolicyVersion != 3 || got.Action != 1 || got.ActionArg != 2 {
		t.Fatalf("record fields wrong: %+v", got)
	}
	st := r.Stats()
	if st.Recorded != 1 || st.Joined != 1 || st.OpenKeys != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJoinReachesWholeChain(t *testing.T) {
	r := testRecorder(16)
	// Three decisions for the same query before its outcome arrives.
	for i := 0; i < 3; i++ {
		r.Record(KindSchedule, 42, "", 0, []float64{float64(i)}, nil, int32(i), 0, 0)
	}
	r.Record(KindSchedule, 99, "", 0, []float64{9}, nil, 0, 0, 0) // unrelated
	r.JoinOutcome(KindSchedule, 42, Outcome{LatencySecs: 2})

	recs := r.ByQuery(KindSchedule, 42)
	if len(recs) != 3 {
		t.Fatalf("chain has %d records, want 3", len(recs))
	}
	for _, rec := range recs {
		if !rec.Outcome.Joined || rec.Outcome.LatencySecs != 2 {
			t.Fatalf("chain record seq %d not joined: %+v", rec.Seq, rec.Outcome)
		}
	}
	if other := r.ByQuery(KindSchedule, 99); other[0].Outcome.Joined {
		t.Fatal("unrelated record was joined")
	}
	if st := r.Stats(); st.Joined != 3 {
		t.Fatalf("joined = %d, want 3", st.Joined)
	}
}

func TestKindsDoNotCrossJoin(t *testing.T) {
	r := testRecorder(16)
	r.Record(KindSchedule, 5, "", 0, []float64{1}, nil, 0, 0, 0)
	r.Record(KindAdmit, 5, "t1", 0, []float64{2}, nil, 0, 0, 0)
	r.JoinOutcome(KindAdmit, 5, Outcome{Shed: true})
	if recs := r.ByQuery(KindSchedule, 5); recs[0].Outcome.Joined {
		t.Fatal("schedule record joined by admit outcome")
	}
	if recs := r.ByQuery(KindAdmit, 5); !recs[0].Outcome.Shed {
		t.Fatal("admit record missing its outcome")
	}
}

func TestRingWrapEvictsOpenChains(t *testing.T) {
	r := testRecorder(8)
	r.Record(KindSchedule, 1, "", 0, []float64{1}, nil, 0, 0, 0)
	// Wrap the ring completely with other queries.
	for i := 0; i < 16; i++ {
		r.Record(KindSchedule, int64(100+i), "", 0, []float64{2}, nil, 0, 0, 0)
	}
	// Query 1's slot was overwritten; the join must not touch whatever
	// lives there now.
	r.JoinOutcome(KindSchedule, 1, Outcome{LatencySecs: 9})
	if st := r.Stats(); st.Joined != 0 {
		t.Fatalf("joined = %d, want 0 after eviction", st.Joined)
	}
	for _, rec := range r.Recent(8) {
		if rec.Outcome.Joined {
			t.Fatalf("seq %d (query %d) wrongly joined", rec.Seq, rec.QueryID)
		}
	}
}

func TestRecentOrderAndBound(t *testing.T) {
	r := testRecorder(4)
	for i := 1; i <= 10; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{float64(i)}, nil, 0, 0, 0)
	}
	recs := r.Recent(100)
	if len(recs) != 4 {
		t.Fatalf("Recent returned %d, want ring cap 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(7 + i); rec.Seq != want {
			t.Fatalf("recs[%d].Seq = %d, want %d (oldest first)", i, rec.Seq, want)
		}
	}
	if got := r.Recent(2); len(got) != 2 || got[1].Seq != 10 {
		t.Fatalf("Recent(2) = %+v, want newest two", got)
	}
}

func TestUnjoinableAndUnknownJoins(t *testing.T) {
	r := testRecorder(8)
	if seq := r.Record(KindSchedule, -1, "", 0, []float64{1}, []float64{0.1}, -1, 0, 0); seq != 1 {
		t.Fatalf("stop action seq = %d, want 1", seq)
	}
	r.JoinOutcome(KindSchedule, -1, Outcome{}) // must no-op
	r.JoinOutcome(KindSchedule, 999, Outcome{})
	if st := r.Stats(); st.Joined != 0 || st.OpenKeys != 0 {
		t.Fatalf("stats = %+v, want no joins and no open keys", st)
	}
}

func TestNilRecorderNoOps(t *testing.T) {
	var r *Recorder
	if seq := r.Record(KindAdmit, 1, "t", 0, []float64{1}, nil, 0, 0, 0); seq != 0 {
		t.Fatalf("nil Record returned %d", seq)
	}
	r.JoinOutcome(KindAdmit, 1, Outcome{})
	r.SetFeatureNames(KindAdmit, []string{"x"})
	r.SetDrift(KindAdmit, nil)
	r.AttachSink(nil, 0)
	if err := r.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if got := r.Recent(5); got != nil {
		t.Fatalf("nil Recent = %v", got)
	}
	if got := r.ByQuery(KindAdmit, 1); got != nil {
		t.Fatalf("nil ByQuery = %v", got)
	}
	if st := r.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if names := r.FeatureNames(KindAdmit); names != nil {
		t.Fatalf("nil FeatureNames = %v", names)
	}
}

func TestFeatureNamesRoundTrip(t *testing.T) {
	r := testRecorder(8)
	names := []string{"a", "b"}
	r.SetFeatureNames(KindAdmit, names)
	names[0] = "mutated"
	if got := r.FeatureNames(KindAdmit); len(got) != 2 || got[0] != "a" {
		t.Fatalf("FeatureNames = %v, want defensive copy {a b}", got)
	}
}

func TestInstrumentCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	r := testRecorder(8)
	r.Instrument(reg)
	r.Record(KindSchedule, 1, "", 0, []float64{1}, nil, 0, 0, 0)
	r.Record(KindAdmit, 1, "t", 0, []float64{2}, nil, 0, 0, 0)
	r.JoinOutcome(KindAdmit, 1, Outcome{})
	if v := reg.Counter(metrics.LabeledName("provenance_records", "kind", "schedule")).Value(); v != 1 {
		t.Fatalf("schedule records counter = %d", v)
	}
	if v := reg.Counter(metrics.LabeledName("provenance_records", "kind", "admit")).Value(); v != 1 {
		t.Fatalf("admit records counter = %d", v)
	}
	if v := reg.Counter("provenance_joins").Value(); v != 1 {
		t.Fatalf("joins counter = %d", v)
	}
}

// TestRecordSteadyStateAllocs proves the serving fast path is
// allocation-free once the ring's slabs are warm.
func TestRecordSteadyStateAllocs(t *testing.T) {
	r := testRecorder(64)
	feats := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	scores := []float64{0.1, 0.2, 0.3}
	// Warm every slot's slabs and the open map.
	for i := 0; i < 256; i++ {
		r.Record(KindSchedule, int64(i%32), "", 1, feats, scores, 0, 0, 0)
		r.JoinOutcome(KindSchedule, int64(i%32), Outcome{})
	}
	qid := int64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindSchedule, qid%32, "", 1, feats, scores, 0, 0, 0)
		r.JoinOutcome(KindSchedule, qid%32, Outcome{DeadlineMet: true})
		qid++
	})
	if allocs > 0 {
		t.Fatalf("steady-state Record+Join allocates %.1f/op, want 0", allocs)
	}
}

func TestOpenMapSweep(t *testing.T) {
	r := testRecorder(8)
	// Many distinct never-joined queries force the open map past the
	// ring size and trigger the sweep.
	for i := 0; i < 100; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{1}, nil, 0, 0, 0)
	}
	if st := r.Stats(); st.OpenKeys > 8 {
		t.Fatalf("open keys = %d, want <= ring cap 8 after sweep", st.OpenKeys)
	}
}
