package provenance

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSpillRoundTripBitIdentical(t *testing.T) {
	r := testRecorder(32)
	var buf bytes.Buffer
	r.AttachSink(&buf, 16)

	// Feature values chosen to catch any lossy float handling: an
	// irrational, a denormal, a negative zero, and an extreme.
	feats := []float64{math.Pi, 5e-324, math.Copysign(0, -1), 1e308, -17.25}
	scores := []float64{0.125, -3.75, math.Inf(1)}
	r.Record(KindSchedule, 7, "", 4, feats, scores, 2, 1, 0)
	r.Record(KindAdmit, 9, "tenant-a", 2, feats[:3], scores[:1], 0, 0, 0)
	r.JoinOutcome(KindSchedule, 7, Outcome{LatencySecs: 1.0 / 3.0, DeadlineMet: true, DurPredErr: -0.001, MemPredErr: 2.5})
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	want := r.Recent(2)
	if len(got) != len(want) {
		t.Fatalf("reloaded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Seq != w.Seq || g.Kind != w.Kind || g.QueryID != w.QueryID || g.Tenant != w.Tenant ||
			g.PolicyVersion != w.PolicyVersion || g.UnixNanos != w.UnixNanos ||
			g.Action != w.Action || g.ActionArg != w.ActionArg || g.Heuristic != w.Heuristic {
			t.Fatalf("record %d header mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if g.Outcome != w.Outcome {
			t.Fatalf("record %d outcome mismatch: got %+v want %+v", i, g.Outcome, w.Outcome)
		}
		if len(g.Features) != len(w.Features) || len(g.Scores) != len(w.Scores) {
			t.Fatalf("record %d vector lengths differ", i)
		}
		for j := range w.Features {
			if math.Float64bits(g.Features[j]) != math.Float64bits(w.Features[j]) {
				t.Fatalf("record %d feature %d not bit-identical: %x vs %x",
					i, j, math.Float64bits(g.Features[j]), math.Float64bits(w.Features[j]))
			}
		}
		for j := range w.Scores {
			if math.Float64bits(g.Scores[j]) != math.Float64bits(w.Scores[j]) {
				t.Fatalf("record %d score %d not bit-identical", i, j)
			}
		}
	}
	if !got[0].Outcome.Joined || !got[0].Outcome.DeadlineMet {
		t.Fatalf("joined outcome did not survive the round trip: %+v", got[0].Outcome)
	}
}

// TestSpillNodeIDRoundTrip pins the cluster attribution path: a
// recorder stamped with a node identity spills it, and a merged read
// keeps each record's origin.
func TestSpillNodeIDRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for _, node := range []string{"node-0", "node-1"} {
		r := testRecorder(8)
		r.SetNodeID(node)
		r.AttachSink(&buf, 4)
		r.Record(KindSchedule, 5, "", 3, []float64{1, 2}, []float64{0.5}, 1, 0, 1)
		if err := r.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 2 || got[0].NodeID != "node-0" || got[1].NodeID != "node-1" {
		t.Fatalf("merged trace lost node attribution: %+v", got)
	}
}

// TestReadAllDecodesV1Frames pins backward compatibility: traces
// spilled before the node-ID field existed (format version 1) must
// still load, with NodeID empty. The v1 record layout is hand-encoded
// here — it is frozen history, not shared code.
func TestReadAllDecodesV1Frames(t *testing.T) {
	var payload bytes.Buffer
	putU32(&payload, 1) // count
	putU64(&payload, 42)
	payload.WriteByte(byte(KindAdmit))
	putU64(&payload, uint64(int64(9)))
	tenant := "acme"
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(tenant)))
	payload.Write(tl[:])
	payload.WriteString(tenant)
	// No nodeID field in v1.
	putU32(&payload, uint32(int32(3)))  // policyVersion
	putU64(&payload, uint64(int64(17))) // unixNanos
	putU32(&payload, uint32(int32(1)))  // action
	putU32(&payload, uint32(int32(0)))  // actionArg
	putU32(&payload, uint32(int32(1)))  // heuristic
	payload.WriteByte(1 | 2)            // joined, deadlineMet
	putU64(&payload, math.Float64bits(0.25))
	putU64(&payload, math.Float64bits(-0.5))
	putU64(&payload, math.Float64bits(2.0))
	putU32(&payload, 2)
	putU64(&payload, math.Float64bits(1.5))
	putU64(&payload, math.Float64bits(-1.5))
	putU32(&payload, 1)
	putU64(&payload, math.Float64bits(0.75))

	var frame bytes.Buffer
	frame.Write(spillMagic[:])
	frame.WriteByte(spillVersionV1)
	putU32(&frame, uint32(payload.Len()))
	putU32(&frame, crc32.ChecksumIEEE(payload.Bytes()))
	frame.Write(payload.Bytes())

	got, err := ReadAll(bytes.NewReader(frame.Bytes()))
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d records, want 1", len(got))
	}
	r := got[0]
	if r.Seq != 42 || r.Kind != KindAdmit || r.QueryID != 9 || r.Tenant != "acme" ||
		r.NodeID != "" || r.PolicyVersion != 3 || r.UnixNanos != 17 ||
		r.Action != 1 || r.Heuristic != 1 || !r.Outcome.Joined || !r.Outcome.DeadlineMet {
		t.Fatalf("v1 record decoded wrong: %+v", r)
	}
	if len(r.Features) != 2 || len(r.Scores) != 1 || r.Features[0] != 1.5 || r.Scores[0] != 0.75 {
		t.Fatalf("v1 vectors decoded wrong: %+v", r)
	}
}

func TestSpillPeriodicFlush(t *testing.T) {
	r := testRecorder(32)
	var buf bytes.Buffer
	r.AttachSink(&buf, 4)
	for i := 0; i < 10; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{float64(i)}, nil, 0, 0, 0)
	}
	// 10 records with every=4: two automatic frames (8 records) written.
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll mid-stream: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("auto-spilled %d records, want 8", len(got))
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err = ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 10 {
		t.Fatalf("after Flush: %d records (%v), want 10", len(got), err)
	}
	for i, rec := range got {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if st := r.Stats(); st.Spilled != 10 {
		t.Fatalf("stats.Spilled = %d, want 10", st.Spilled)
	}
}

func TestSpillEveryClampedToHalfCapacity(t *testing.T) {
	r := testRecorder(8)
	var buf bytes.Buffer
	r.AttachSink(&buf, 1000) // far past cap/2; must clamp to 4
	for i := 0; i < 6; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{1}, nil, 0, 0, 0)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("clamped sink never flushed; records would be evicted unspilled")
	}
}

func TestReadAllRejectsCorruption(t *testing.T) {
	r := testRecorder(8)
	var buf bytes.Buffer
	r.AttachSink(&buf, 4)
	r.Record(KindSchedule, 1, "t", 0, []float64{1, 2}, []float64{3}, 0, 0, 0)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	clean := append([]byte(nil), buf.Bytes()...)

	// Flip one payload byte: CRC must reject the frame.
	bad := append([]byte(nil), clean...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// Bad magic.
	bad = append([]byte(nil), clean...)
	bad[0] = 'X'
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Unsupported version.
	bad = append([]byte(nil), clean...)
	bad[4] = 99
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}

	// Truncated payload.
	if _, err := ReadAll(bytes.NewReader(clean[:len(clean)-3])); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// The clean stream still reads.
	if recs, err := ReadAll(bytes.NewReader(clean)); err != nil || len(recs) != 1 {
		t.Fatalf("clean stream: %d records, err %v", len(recs), err)
	}
}

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := testRecorder(8)
	r.AttachSink(f, 4)
	r.Record(KindAdmit, 3, "t2", 1, []float64{0.5}, []float64{0.9}, 0, 0, 0)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(recs) != 1 || recs[0].Tenant != "t2" || recs[0].Kind != KindAdmit {
		t.Fatalf("ReadFile = %+v", recs)
	}
}

func TestSpillSkipsEvictedRecords(t *testing.T) {
	// Manually-driven flush after a wrap: evicted records are skipped,
	// not mis-encoded from overwritten slots.
	r := testRecorder(4)
	var buf bytes.Buffer
	r.mu.Lock()
	r.sink = &sinkState{w: &buf, every: 1 << 30} // never auto-flush
	r.mu.Unlock()
	for i := 0; i < 10; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{float64(i)}, nil, 0, 0, 0)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("spilled %d records, want the 4 still ringed", len(got))
	}
	if got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("spilled seqs %d..%d, want 7..10", got[0].Seq, got[3].Seq)
	}
}
