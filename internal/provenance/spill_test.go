package provenance

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSpillRoundTripBitIdentical(t *testing.T) {
	r := testRecorder(32)
	var buf bytes.Buffer
	r.AttachSink(&buf, 16)

	// Feature values chosen to catch any lossy float handling: an
	// irrational, a denormal, a negative zero, and an extreme.
	feats := []float64{math.Pi, 5e-324, math.Copysign(0, -1), 1e308, -17.25}
	scores := []float64{0.125, -3.75, math.Inf(1)}
	r.Record(KindSchedule, 7, "", 4, feats, scores, 2, 1, 0)
	r.Record(KindAdmit, 9, "tenant-a", 2, feats[:3], scores[:1], 0, 0, 0)
	r.JoinOutcome(KindSchedule, 7, Outcome{LatencySecs: 1.0 / 3.0, DeadlineMet: true, DurPredErr: -0.001, MemPredErr: 2.5})
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	want := r.Recent(2)
	if len(got) != len(want) {
		t.Fatalf("reloaded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Seq != w.Seq || g.Kind != w.Kind || g.QueryID != w.QueryID || g.Tenant != w.Tenant ||
			g.PolicyVersion != w.PolicyVersion || g.UnixNanos != w.UnixNanos ||
			g.Action != w.Action || g.ActionArg != w.ActionArg || g.Heuristic != w.Heuristic {
			t.Fatalf("record %d header mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		if g.Outcome != w.Outcome {
			t.Fatalf("record %d outcome mismatch: got %+v want %+v", i, g.Outcome, w.Outcome)
		}
		if len(g.Features) != len(w.Features) || len(g.Scores) != len(w.Scores) {
			t.Fatalf("record %d vector lengths differ", i)
		}
		for j := range w.Features {
			if math.Float64bits(g.Features[j]) != math.Float64bits(w.Features[j]) {
				t.Fatalf("record %d feature %d not bit-identical: %x vs %x",
					i, j, math.Float64bits(g.Features[j]), math.Float64bits(w.Features[j]))
			}
		}
		for j := range w.Scores {
			if math.Float64bits(g.Scores[j]) != math.Float64bits(w.Scores[j]) {
				t.Fatalf("record %d score %d not bit-identical", i, j)
			}
		}
	}
	if !got[0].Outcome.Joined || !got[0].Outcome.DeadlineMet {
		t.Fatalf("joined outcome did not survive the round trip: %+v", got[0].Outcome)
	}
}

func TestSpillPeriodicFlush(t *testing.T) {
	r := testRecorder(32)
	var buf bytes.Buffer
	r.AttachSink(&buf, 4)
	for i := 0; i < 10; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{float64(i)}, nil, 0, 0, 0)
	}
	// 10 records with every=4: two automatic frames (8 records) written.
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll mid-stream: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("auto-spilled %d records, want 8", len(got))
	}
	if err := r.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got, err = ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil || len(got) != 10 {
		t.Fatalf("after Flush: %d records (%v), want 10", len(got), err)
	}
	for i, rec := range got {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if st := r.Stats(); st.Spilled != 10 {
		t.Fatalf("stats.Spilled = %d, want 10", st.Spilled)
	}
}

func TestSpillEveryClampedToHalfCapacity(t *testing.T) {
	r := testRecorder(8)
	var buf bytes.Buffer
	r.AttachSink(&buf, 1000) // far past cap/2; must clamp to 4
	for i := 0; i < 6; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{1}, nil, 0, 0, 0)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("clamped sink never flushed; records would be evicted unspilled")
	}
}

func TestReadAllRejectsCorruption(t *testing.T) {
	r := testRecorder(8)
	var buf bytes.Buffer
	r.AttachSink(&buf, 4)
	r.Record(KindSchedule, 1, "t", 0, []float64{1, 2}, []float64{3}, 0, 0, 0)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	clean := append([]byte(nil), buf.Bytes()...)

	// Flip one payload byte: CRC must reject the frame.
	bad := append([]byte(nil), clean...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// Bad magic.
	bad = append([]byte(nil), clean...)
	bad[0] = 'X'
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Unsupported version.
	bad = append([]byte(nil), clean...)
	bad[4] = 99
	if _, err := ReadAll(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}

	// Truncated payload.
	if _, err := ReadAll(bytes.NewReader(clean[:len(clean)-3])); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// The clean stream still reads.
	if recs, err := ReadAll(bytes.NewReader(clean)); err != nil || len(recs) != 1 {
		t.Fatalf("clean stream: %d records, err %v", len(recs), err)
	}
}

func TestReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	r := testRecorder(8)
	r.AttachSink(f, 4)
	r.Record(KindAdmit, 3, "t2", 1, []float64{0.5}, []float64{0.9}, 0, 0, 0)
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(recs) != 1 || recs[0].Tenant != "t2" || recs[0].Kind != KindAdmit {
		t.Fatalf("ReadFile = %+v", recs)
	}
}

func TestSpillSkipsEvictedRecords(t *testing.T) {
	// Manually-driven flush after a wrap: evicted records are skipped,
	// not mis-encoded from overwritten slots.
	r := testRecorder(4)
	var buf bytes.Buffer
	r.mu.Lock()
	r.sink = &sinkState{w: &buf, every: 1 << 30} // never auto-flush
	r.mu.Unlock()
	for i := 0; i < 10; i++ {
		r.Record(KindSchedule, int64(i), "", 0, []float64{float64(i)}, nil, 0, 0, 0)
	}
	if err := r.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("spilled %d records, want the 4 still ringed", len(got))
	}
	if got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("spilled seqs %d..%d, want 7..10", got[0].Seq, got[3].Seq)
	}
}
