package provenance

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Spill format: a stream of self-delimiting frames, each holding a
// batch of records. Like policystore checkpoints, every frame carries a
// CRC32 (IEEE) over its payload and is verified before any byte of it
// is trusted; floats travel as raw IEEE-754 bits so a reloaded trace is
// bit-identical to what the policy saw. Frame layout (little-endian):
//
//	magic "LSPV" | u8 version | u32 payloadLen | u32 crc32(payload) | payload
//
// payload: u32 count, then per record:
//
//	u64 seq | u8 kind | i64 queryID | u16 tenantLen | tenant bytes |
//	u16 nodeIDLen | nodeID bytes (version >= 2) |
//	i32 policyVersion | i64 unixNanos | i32 action | i32 actionArg |
//	i32 heuristic | u8 outcomeFlags | f64 latency | f64 durPredErr |
//	f64 memPredErr | u32 nFeatures | f64... | u32 nScores | f64...
//
// outcomeFlags bits: 1 joined, 2 deadlineMet, 4 shed, 8 rejected.
//
// Version history: v1 had no nodeID field. The writer emits the
// current version; the reader accepts every version listed here, so
// traces recorded before the cluster work (and traces from mixed-age
// node fleets) keep loading — v1 records decode with NodeID "".

const (
	spillVersion    = 2
	spillVersionV1  = 1 // pre-cluster frames: no nodeID field
	maxFramePayload = 64 << 20
	maxVecLen       = 1 << 20
	maxTenantLen    = 1 << 12
	maxNodeIDLen    = 1 << 8
)

var spillMagic = [4]byte{'L', 'S', 'P', 'V'}

type sinkState struct {
	w       io.Writer
	every   int
	through uint64 // highest sequence already spilled
	buf     bytes.Buffer
	scratch [8]byte
	err     error
}

// AttachSink directs the recorder to spill each batch of `every` new
// records to w as one CRC-framed binary frame. every is clamped to at
// most half the ring capacity so records cannot be evicted before they
// spill. Call Flush before closing the underlying writer.
func (r *Recorder) AttachSink(w io.Writer, every int) {
	if r == nil || w == nil {
		return
	}
	if every <= 0 {
		every = 256
	}
	if max := len(r.ring) / 2; every > max && max > 0 {
		every = max
	}
	r.mu.Lock()
	r.sink = &sinkState{w: w, every: every, through: r.seq}
	r.mu.Unlock()
}

// Flush spills all not-yet-spilled records to the sink (no-op without
// one) and reports the first persistent sink error.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	err := r.flushLocked()
	r.mu.Unlock()
	return err
}

// flushLocked writes one frame covering (sink.through, r.seq]. Caller
// holds r.mu.
func (r *Recorder) flushLocked() error {
	s := r.sink
	if s == nil || s.err != nil {
		if s != nil {
			return s.err
		}
		return nil
	}
	if s.through >= r.seq {
		return nil
	}
	s.buf.Reset()
	count := 0
	mark := s.buf.Len()
	putU32(&s.buf, 0) // count placeholder
	spilledTo := s.through
	for seq := s.through + 1; seq <= r.seq; seq++ {
		slot := &r.ring[seq%uint64(len(r.ring))]
		if slot.Seq != seq {
			spilledTo = seq // evicted before spilling; skip
			continue
		}
		encodeRecord(&s.buf, slot)
		count++
		spilledTo = seq
	}
	if count == 0 {
		s.through = spilledTo
		return nil
	}
	payload := s.buf.Bytes()
	binary.LittleEndian.PutUint32(payload[mark:], uint32(count))

	var hdr [13]byte
	copy(hdr[:4], spillMagic[:])
	hdr[4] = spillVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.ChecksumIEEE(payload))
	if _, err := s.w.Write(hdr[:]); err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(payload); err != nil {
		s.err = err
		return err
	}
	s.through = spilledTo
	if r.mSpilled != nil {
		r.mSpilled.Add(int64(count))
	}
	return nil
}

func putU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

func encodeRecord(b *bytes.Buffer, rec *Record) {
	putU64(b, rec.Seq)
	b.WriteByte(byte(rec.Kind))
	putU64(b, uint64(rec.QueryID))
	if len(rec.Tenant) > maxTenantLen {
		rec.Tenant = rec.Tenant[:maxTenantLen]
	}
	var tl [2]byte
	binary.LittleEndian.PutUint16(tl[:], uint16(len(rec.Tenant)))
	b.Write(tl[:])
	b.WriteString(rec.Tenant)
	if len(rec.NodeID) > maxNodeIDLen {
		rec.NodeID = rec.NodeID[:maxNodeIDLen]
	}
	var nl [2]byte
	binary.LittleEndian.PutUint16(nl[:], uint16(len(rec.NodeID)))
	b.Write(nl[:])
	b.WriteString(rec.NodeID)
	putU32(b, uint32(rec.PolicyVersion))
	putU64(b, uint64(rec.UnixNanos))
	putU32(b, uint32(rec.Action))
	putU32(b, uint32(rec.ActionArg))
	putU32(b, uint32(rec.Heuristic))
	var flags byte
	if rec.Outcome.Joined {
		flags |= 1
	}
	if rec.Outcome.DeadlineMet {
		flags |= 2
	}
	if rec.Outcome.Shed {
		flags |= 4
	}
	if rec.Outcome.Rejected {
		flags |= 8
	}
	b.WriteByte(flags)
	putU64(b, math.Float64bits(rec.Outcome.LatencySecs))
	putU64(b, math.Float64bits(rec.Outcome.DurPredErr))
	putU64(b, math.Float64bits(rec.Outcome.MemPredErr))
	putU32(b, uint32(len(rec.Features)))
	for _, v := range rec.Features {
		putU64(b, math.Float64bits(v))
	}
	putU32(b, uint32(len(rec.Scores)))
	for _, v := range rec.Scores {
		putU64(b, math.Float64bits(v))
	}
}

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) u8() (byte, error) {
	if d.off+1 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := d.buf[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u16() (uint16, error) {
	if d.off+2 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str(n int) (string, error) {
	if d.off+n > len(d.buf) {
		return "", io.ErrUnexpectedEOF
	}
	v := string(d.buf[d.off : d.off+n])
	d.off += n
	return v, nil
}

func (d *decoder) floats(n int) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	out := make([]float64, n)
	for i := range out {
		bits, err := d.u64()
		if err != nil {
			return nil, err
		}
		out[i] = math.Float64frombits(bits)
	}
	return out, nil
}

func decodeRecord(d *decoder, version byte) (Record, error) {
	var rec Record
	var err error
	if rec.Seq, err = d.u64(); err != nil {
		return rec, err
	}
	k, err := d.u8()
	if err != nil {
		return rec, err
	}
	if Kind(k) >= numKinds {
		return rec, fmt.Errorf("provenance: unknown kind %d", k)
	}
	rec.Kind = Kind(k)
	qid, err := d.u64()
	if err != nil {
		return rec, err
	}
	rec.QueryID = int64(qid)
	tl, err := d.u16()
	if err != nil {
		return rec, err
	}
	if rec.Tenant, err = d.str(int(tl)); err != nil {
		return rec, err
	}
	if version >= 2 {
		nl, err := d.u16()
		if err != nil {
			return rec, err
		}
		if rec.NodeID, err = d.str(int(nl)); err != nil {
			return rec, err
		}
	}
	pv, err := d.u32()
	if err != nil {
		return rec, err
	}
	rec.PolicyVersion = int32(pv)
	un, err := d.u64()
	if err != nil {
		return rec, err
	}
	rec.UnixNanos = int64(un)
	a, err := d.u32()
	if err != nil {
		return rec, err
	}
	rec.Action = int32(a)
	if a, err = d.u32(); err != nil {
		return rec, err
	}
	rec.ActionArg = int32(a)
	if a, err = d.u32(); err != nil {
		return rec, err
	}
	rec.Heuristic = int32(a)
	flags, err := d.u8()
	if err != nil {
		return rec, err
	}
	rec.Outcome.Joined = flags&1 != 0
	rec.Outcome.DeadlineMet = flags&2 != 0
	rec.Outcome.Shed = flags&4 != 0
	rec.Outcome.Rejected = flags&8 != 0
	bits, err := d.u64()
	if err != nil {
		return rec, err
	}
	rec.Outcome.LatencySecs = math.Float64frombits(bits)
	if bits, err = d.u64(); err != nil {
		return rec, err
	}
	rec.Outcome.DurPredErr = math.Float64frombits(bits)
	if bits, err = d.u64(); err != nil {
		return rec, err
	}
	rec.Outcome.MemPredErr = math.Float64frombits(bits)
	nf, err := d.u32()
	if err != nil {
		return rec, err
	}
	if nf > maxVecLen {
		return rec, fmt.Errorf("provenance: feature vector length %d exceeds limit", nf)
	}
	if rec.Features, err = d.floats(int(nf)); err != nil {
		return rec, err
	}
	ns, err := d.u32()
	if err != nil {
		return rec, err
	}
	if ns > maxVecLen {
		return rec, fmt.Errorf("provenance: score vector length %d exceeds limit", ns)
	}
	if rec.Scores, err = d.floats(int(ns)); err != nil {
		return rec, err
	}
	return rec, nil
}

// ReadAll decodes every record from a spill stream, validating each
// frame's magic, version, and CRC before decoding its payload. A
// truncated or corrupt frame fails the read — no partially-trusted
// frame leaks into the result.
func ReadAll(r io.Reader) ([]Record, error) {
	var out []Record
	var hdr [13]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("provenance: frame header: %w", err)
		}
		if [4]byte(hdr[:4]) != spillMagic {
			return nil, fmt.Errorf("provenance: bad frame magic %q", hdr[:4])
		}
		if hdr[4] != spillVersion && hdr[4] != spillVersionV1 {
			return nil, fmt.Errorf("provenance: unsupported spill version %d", hdr[4])
		}
		plen := binary.LittleEndian.Uint32(hdr[5:9])
		wantCRC := binary.LittleEndian.Uint32(hdr[9:13])
		if plen > maxFramePayload {
			return nil, fmt.Errorf("provenance: frame payload %d exceeds limit", plen)
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("provenance: frame payload: %w", err)
		}
		if got := crc32.ChecksumIEEE(payload); got != wantCRC {
			return nil, fmt.Errorf("provenance: frame CRC mismatch: got %08x want %08x", got, wantCRC)
		}
		d := &decoder{buf: payload}
		count, err := d.u32()
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < count; i++ {
			rec, err := decodeRecord(d, hdr[4])
			if err != nil {
				return nil, fmt.Errorf("provenance: record %d: %w", i, err)
			}
			out = append(out, rec)
		}
		if d.off != len(payload) {
			return nil, fmt.Errorf("provenance: %d trailing bytes in frame", len(payload)-d.off)
		}
	}
}

// ReadFile loads a recorded trace file (see ReadAll).
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}
