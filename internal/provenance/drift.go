package provenance

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Drift detection compares the live feature distribution (a sliding
// window over recorded decisions) against a training-time reference
// snapshot, per feature, using the Population Stability Index:
//
//	PSI = Σ_bins (pLive − pRef) · ln(pLive / pRef)
//
// with both proportions floored at a small epsilon. The usual reading:
// <0.1 stable, 0.1–0.2 moderate shift, >0.2 action required — the
// default trip threshold. Each feature's PSI exports as a labeled
// gauge (provenance_feature_psi{feature="..."}) so a shifted workload
// is visible per dimension, not just as a scalar alarm.

const psiEps = 1e-4

// FeatureRef is one feature's reference distribution: bin edges from
// training-sample quantiles and the per-bin probabilities.
type FeatureRef struct {
	// Name labels the feature in gauges and /drift.
	Name string `json:"name"`
	// Edges are the interior bin boundaries, ascending; values bin by
	// upper-bound search, so there are len(Edges)+1 bins.
	Edges []float64 `json:"edges"`
	// Probs are the reference per-bin probabilities (floored, sum ~1).
	Probs []float64 `json:"probs"`
}

// Reference is a training-time feature-distribution snapshot.
type Reference struct {
	Features []FeatureRef `json:"features"`
}

// BuildReference builds a reference from training-time sample vectors
// (each of dimension len(names)) using quantile bin edges. Degenerate
// (constant) features collapse to a single bin and contribute zero PSI
// until their live values leave that bin's range entirely.
func BuildReference(names []string, samples [][]float64, bins int) (*Reference, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("provenance: BuildReference needs samples")
	}
	if bins < 2 {
		bins = 10
	}
	dim := len(names)
	for i, s := range samples {
		if len(s) != dim {
			return nil, fmt.Errorf("provenance: sample %d has dim %d, want %d", i, len(s), dim)
		}
	}
	ref := &Reference{Features: make([]FeatureRef, dim)}
	col := make([]float64, len(samples))
	for f := 0; f < dim; f++ {
		for i, s := range samples {
			col[i] = s[f]
		}
		sort.Float64s(col)
		var edges []float64
		for b := 1; b < bins; b++ {
			q := col[(b*len(col))/bins]
			// An edge at the column max would leave a permanently empty
			// top bin (values bin by v <= edge); skipping it collapses a
			// constant feature to a single bin.
			if q >= col[len(col)-1] {
				continue
			}
			if len(edges) == 0 || q > edges[len(edges)-1] {
				edges = append(edges, q)
			}
		}
		counts := make([]float64, len(edges)+1)
		for _, v := range col {
			counts[binIndex(edges, v)]++
		}
		probs := make([]float64, len(counts))
		for i, c := range counts {
			probs[i] = math.Max(c/float64(len(col)), psiEps)
		}
		ref.Features[f] = FeatureRef{Name: names[f], Edges: edges, Probs: probs}
	}
	return ref, nil
}

// binIndex places v by upper-bound search: bin i holds v <= edges[i],
// last bin holds the rest.
func binIndex(edges []float64, v float64) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// DriftConfig configures a DriftDetector.
type DriftConfig struct {
	// Names label the feature dimensions (required).
	Names []string
	// Window is the live sliding-window size (default 512).
	Window int
	// MinSamples gates PSI: below this many live samples every PSI
	// reports 0 (default Window/2 — thinner windows make the PSI
	// estimate noisy enough to false-trip a 0.2 threshold).
	MinSamples int
	// Threshold is the per-feature PSI trip level (default 0.2).
	Threshold float64
	// Bins is the reference bin count for self-calibration (default 10).
	Bins int
	// RefSamples > 0 enables self-calibration: the first RefSamples
	// observations build the reference instead of requiring
	// SetReference — used by CLIs with no training-time snapshot.
	RefSamples int
	// UpdateEvery refreshes gauges every N observations (default 64).
	UpdateEvery int
}

// DriftDetector maintains per-feature live bin counts over a sliding
// window and scores them against the reference. Observe is O(dim ·
// log bins) with zero steady-state allocations; a nil detector no-ops.
type DriftDetector struct {
	mu  sync.Mutex
	cfg DriftConfig
	ref *Reference

	// calib accumulates self-calibration samples until RefSamples.
	calib [][]float64

	// binRing[pos*dim+f] is the bin index feature f's value landed in
	// for window slot pos; counts[f] are the live per-bin tallies.
	binRing []uint16
	counts  [][]float64
	pos     int
	n       int // live samples currently in window
	seen    uint64
	skipped uint64 // vectors whose length mismatched the reference

	psi     []float64
	gauges  []*metrics.Gauge
	gMax    *metrics.Gauge
	gCount  *metrics.Gauge
	mTrips  *metrics.Counter
	tripped []bool
}

// NewDriftDetector builds a detector; call SetReference (or configure
// RefSamples for self-calibration) before observations score.
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	if cfg.Window <= 0 {
		cfg.Window = 512
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = cfg.Window / 2
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = 0.2
	}
	if cfg.Bins < 2 {
		cfg.Bins = 10
	}
	if cfg.UpdateEvery <= 0 {
		cfg.UpdateEvery = 64
	}
	d := &DriftDetector{cfg: cfg}
	dim := len(cfg.Names)
	d.psi = make([]float64, dim)
	d.tripped = make([]bool, dim)
	return d
}

// Instrument attaches per-feature PSI gauges, a max-PSI gauge, a
// drifted-feature count gauge, and an edge-triggered trip counter.
func (d *DriftDetector) Instrument(reg *metrics.Registry) {
	if d == nil || reg == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gauges = make([]*metrics.Gauge, len(d.cfg.Names))
	for i, name := range d.cfg.Names {
		d.gauges[i] = reg.Gauge(metrics.LabeledName("provenance_feature_psi", "feature", name))
	}
	d.gMax = reg.Gauge("provenance_drift_max_psi")
	d.gCount = reg.Gauge("provenance_drift_features")
	d.mTrips = reg.Counter("provenance_drift_trips")
}

// SetReference installs the training-time snapshot; its dimension must
// match the configured names. Resets the live window.
func (d *DriftDetector) SetReference(ref *Reference) error {
	if d == nil {
		return nil
	}
	if len(ref.Features) != len(d.cfg.Names) {
		return fmt.Errorf("provenance: reference has %d features, detector expects %d", len(ref.Features), len(d.cfg.Names))
	}
	for i, fr := range ref.Features {
		if len(fr.Probs) != len(fr.Edges)+1 {
			return fmt.Errorf("provenance: reference feature %d: %d probs for %d edges", i, len(fr.Probs), len(fr.Edges))
		}
	}
	d.mu.Lock()
	d.ref = ref
	d.calib = nil
	dim := len(d.cfg.Names)
	d.binRing = make([]uint16, d.cfg.Window*dim)
	d.counts = make([][]float64, dim)
	for f := range d.counts {
		d.counts[f] = make([]float64, len(ref.Features[f].Probs))
	}
	d.pos, d.n = 0, 0
	for i := range d.psi {
		d.psi[i] = 0
		d.tripped[i] = false
	}
	d.mu.Unlock()
	return nil
}

// Reference returns the installed reference (nil while calibrating).
func (d *DriftDetector) Reference() *Reference {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ref
}

// Observe feeds one live feature vector. Vectors whose length doesn't
// match the detector's dimension are counted and skipped.
func (d *DriftDetector) Observe(vec []float64) {
	if d == nil {
		return
	}
	dim := len(d.cfg.Names)
	d.mu.Lock()
	if len(vec) != dim {
		d.skipped++
		d.mu.Unlock()
		return
	}
	if d.ref == nil {
		if d.cfg.RefSamples <= 0 {
			d.skipped++
			d.mu.Unlock()
			return
		}
		d.calib = append(d.calib, append([]float64(nil), vec...))
		if len(d.calib) < d.cfg.RefSamples {
			d.mu.Unlock()
			return
		}
		ref, err := BuildReference(d.cfg.Names, d.calib, d.cfg.Bins)
		d.mu.Unlock()
		if err != nil {
			return
		}
		d.SetReference(ref) //nolint:errcheck // dims match by construction
		return
	}
	// Evict the slot's previous occupant, then bin and store.
	base := d.pos * dim
	if d.n == d.cfg.Window {
		for f := 0; f < dim; f++ {
			d.counts[f][d.binRing[base+f]]--
		}
	} else {
		d.n++
	}
	for f := 0; f < dim; f++ {
		b := binIndex(d.ref.Features[f].Edges, vec[f])
		d.binRing[base+f] = uint16(b)
		d.counts[f][b]++
	}
	d.pos = (d.pos + 1) % d.cfg.Window
	d.seen++
	refresh := d.seen%uint64(d.cfg.UpdateEvery) == 0
	if refresh {
		d.refreshLocked()
	}
	d.mu.Unlock()
}

// refreshLocked recomputes PSI and pushes gauges. Caller holds d.mu.
func (d *DriftDetector) refreshLocked() {
	if d.n < d.cfg.MinSamples {
		return
	}
	maxPSI, drifted, trips := 0.0, 0, 0
	for f := range d.psi {
		ref := d.ref.Features[f]
		psi := 0.0
		for b, pRef := range ref.Probs {
			pLive := math.Max(d.counts[f][b]/float64(d.n), psiEps)
			psi += (pLive - pRef) * math.Log(pLive/pRef)
		}
		d.psi[f] = psi
		if d.gauges != nil {
			d.gauges[f].Set(psi)
		}
		if psi > maxPSI {
			maxPSI = psi
		}
		over := psi > d.cfg.Threshold
		if over {
			drifted++
			if !d.tripped[f] {
				trips++
			}
		}
		d.tripped[f] = over
	}
	d.gMax.Set(maxPSI)
	d.gCount.Set(float64(drifted))
	if trips > 0 {
		d.mTrips.Add(int64(trips))
	}
}

// FeatureDrift is one feature's drift state in a snapshot.
type FeatureDrift struct {
	Name    string  `json:"name"`
	PSI     float64 `json:"psi"`
	Drifted bool    `json:"drifted"`
}

// DriftStatus is the /drift payload.
type DriftStatus struct {
	// Calibrating reports the self-calibration phase (no reference yet).
	Calibrating bool `json:"calibrating"`
	// Window is the live sliding-window capacity; Samples how full it is.
	Window  int `json:"window"`
	Samples int `json:"samples"`
	// Observed counts vectors fed since the reference was installed;
	// Skipped counts dimension-mismatched (or pre-reference) vectors.
	Observed uint64 `json:"observed"`
	Skipped  uint64 `json:"skipped,omitempty"`
	// Threshold is the per-feature PSI trip level.
	Threshold float64 `json:"threshold"`
	// MaxPSI is the worst per-feature PSI; Features lists all of them.
	MaxPSI   float64        `json:"max_psi"`
	Features []FeatureDrift `json:"features"`
}

// Snapshot returns the current drift state (PSI recomputed fresh).
func (d *DriftDetector) Snapshot() DriftStatus {
	if d == nil {
		return DriftStatus{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DriftStatus{
		Calibrating: d.ref == nil,
		Window:      d.cfg.Window,
		Samples:     d.n,
		Observed:    d.seen,
		Skipped:     d.skipped,
		Threshold:   d.cfg.Threshold,
		Features:    make([]FeatureDrift, len(d.cfg.Names)),
	}
	if d.ref != nil && d.n >= d.cfg.MinSamples {
		d.refreshLocked()
	}
	for f, name := range d.cfg.Names {
		st.Features[f] = FeatureDrift{Name: name, PSI: d.psi[f], Drifted: d.tripped[f]}
		if d.psi[f] > st.MaxPSI {
			st.MaxPSI = d.psi[f]
		}
	}
	return st
}
