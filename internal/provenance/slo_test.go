package provenance

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func TestSLOBurnMath(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{Objective: 0.99, Now: clk.now})
	reg := metrics.NewRegistry()
	tr.Instrument(reg)

	// 99 good + 1 bad = 1% error rate = exactly burn 1.0 at a 99%
	// objective.
	for i := 0; i < 99; i++ {
		tr.Observe("acme", "latency", true)
	}
	tr.Observe("acme", "latency", false)

	st := tr.Snapshot()
	if len(st.Entries) != 1 {
		t.Fatalf("%d entries, want 1", len(st.Entries))
	}
	e := st.Entries[0]
	if e.Tenant != "acme" || e.Class != "latency" || e.Good != 99 || e.Bad != 1 {
		t.Fatalf("entry = %+v", e)
	}
	for _, w := range e.Windows {
		if w.BurnRate < 0.999 || w.BurnRate > 1.001 {
			t.Fatalf("window %s burn = %v, want 1.0", w.Window, w.BurnRate)
		}
		if w.ErrorRate != 0.01 {
			t.Fatalf("window %s error rate = %v", w.Window, w.ErrorRate)
		}
	}
	g := reg.Gauge(metrics.LabeledName("slo_burn_rate",
		"tenant", "acme", "class", "latency", "window", "5m0s"))
	if v := g.Value(); v < 0.999 || v > 1.001 {
		t.Fatalf("short burn gauge = %v", v)
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{Now: clk.now})

	// All-bad burst, then advance past the short window with a clean
	// stream: the short burn must recover while the long window still
	// remembers.
	for i := 0; i < 10; i++ {
		tr.Observe("t", "c", false)
	}
	clk.advance(6 * time.Minute)
	for i := 0; i < 10; i++ {
		tr.Observe("t", "c", true)
	}
	e := tr.Snapshot().Entries[0]
	short, long := e.Windows[0], e.Windows[1]
	if short.Bad != 0 || short.Good != 10 {
		t.Fatalf("short window = %+v, want the burst expired", short)
	}
	if short.BurnRate != 0 {
		t.Fatalf("short burn = %v, want 0", short.BurnRate)
	}
	if long.Bad != 10 || long.Good != 10 {
		t.Fatalf("long window = %+v, want burst retained", long)
	}
	if long.BurnRate <= short.BurnRate {
		t.Fatal("long burn should exceed recovered short burn")
	}

	// Advance past the long window too: everything expires.
	clk.advance(2 * time.Hour)
	tr.Observe("t", "c", true)
	e = tr.Snapshot().Entries[0]
	if e.Windows[1].Bad != 0 || e.Windows[1].Good != 1 {
		t.Fatalf("long window after expiry = %+v", e.Windows[1])
	}
	// Lifetime counters never expire.
	if e.Good != 11 || e.Bad != 10 {
		t.Fatalf("lifetime = %d/%d, want 11/10", e.Good, e.Bad)
	}
}

func TestSLOSnapshotOrdering(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{Now: clk.now})
	tr.Observe("zeta", "latency", true)
	tr.Observe("acme", "throughput", true)
	tr.Observe("acme", "latency", false)
	st := tr.Snapshot()
	want := []struct{ tenant, class string }{
		{"acme", "latency"}, {"acme", "throughput"}, {"zeta", "latency"},
	}
	if len(st.Entries) != len(want) {
		t.Fatalf("%d entries", len(st.Entries))
	}
	for i, w := range want {
		if st.Entries[i].Tenant != w.tenant || st.Entries[i].Class != w.class {
			t.Fatalf("entry %d = %s/%s, want %s/%s",
				i, st.Entries[i].Tenant, st.Entries[i].Class, w.tenant, w.class)
		}
	}
}

func TestSLONilTracker(t *testing.T) {
	var tr *Tracker
	tr.Observe("t", "c", true)
	tr.Instrument(metrics.NewRegistry())
	if st := tr.Snapshot(); len(st.Entries) != 0 {
		t.Fatalf("nil snapshot = %+v", st)
	}
}

func TestSLODefaults(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	if tr.cfg.Objective != 0.99 || tr.cfg.Short != 5*time.Minute || tr.cfg.Long != time.Hour || tr.cfg.Buckets != 60 {
		t.Fatalf("defaults = %+v", tr.cfg)
	}
}
