package experiments

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/workload"
)

// Fig13Overhead reproduces Fig. 13: (a) wall-clock scheduling latency
// per query and (b) number of scheduling actions taken by the learned
// agents, as the streaming TPC-H workload grows.
func Fig13Overhead(l *Lab) ([]*Table, error) {
	scheds, err := evalSet(l, workload.BenchTPCH)
	if err != nil {
		return nil, err
	}
	pool := l.Pool(workload.BenchTPCH)
	counts := scaledCounts(l)

	latency := &Table{
		Title:   "Fig 13(a): avg scheduling latency per query, ms (TPCH streaming)",
		Columns: append([]string{"scheduler"}, intLabels(counts)...),
		Notes: []string{
			"paper shape: learned schedulers (LSched, Decima) pay orders of magnitude more per-decision latency than the heuristics, but the end-to-end savings exceed it ~100x",
		},
	}
	actions := &Table{
		Title:   "Fig 13(b): number of scheduling actions (learned agents)",
		Columns: append([]string{"scheduler"}, intLabels(counts)...),
		Notes: []string{
			"paper shape: action counts grow with the number of queries",
		},
	}
	for _, s := range scheds {
		latRow := []any{s.Name()}
		actRow := []any{s.Name()}
		for _, n := range counts {
			stats, err := l.Evaluate(s, func(rng *rand.Rand) []engine.Arrival {
				return workload.Streaming(pool.Test, n, 0.5, rng)
			}, true)
			if err != nil {
				return nil, err
			}
			latRow = append(latRow, stats.SchedOverheadPerQueryMS)
			actRow = append(actRow, int(stats.SchedActions))
		}
		latency.AddRow(latRow...)
		if s.Name() == "LSched" || s.Name() == "Decima" {
			actions.AddRow(actRow...)
		}
	}
	return []*Table{latency, actions}, nil
}
