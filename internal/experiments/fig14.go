package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/decima"
	"repro/internal/engine"
	"repro/internal/lsched"
	"repro/internal/workload"
)

// Fig14Training reproduces Fig. 14(a): average query duration as a
// function of the training-episode budget, for LSched and Decima. The
// paper's LSched saturates in ~2000 episodes while Decima needs ~5000;
// at lab scale we sweep fractions of the configured budget.
func Fig14Training(l *Lab) (*Table, error) {
	pool := l.Pool(workload.BenchTPCH)
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	budgets := make([]int, len(fracs))
	for i, f := range fracs {
		budgets[i] = int(f * float64(l.Scale.TrainEpisodes))
		if budgets[i] < 1 {
			budgets[i] = 1
		}
	}
	tbl := &Table{
		Title:   "Fig 14(a): avg query duration vs training episodes (TPCH streaming)",
		Columns: append([]string{"scheduler"}, intLabels(budgets)...),
		Notes: []string{
			"paper shape: both improve with episodes; LSched saturates much earlier than Decima (2000 vs 5000 episodes)",
		},
	}
	eval := func(agent *lsched.Agent) (float64, error) {
		agent.SetGreedy(true)
		stats, err := l.Evaluate(agent, func(rng *rand.Rand) []engine.Arrival {
			return workload.Streaming(pool.Test, l.Scale.EvalQueries, 0.5, rng)
		}, false)
		if err != nil {
			return 0, err
		}
		return stats.Mean, nil
	}
	for _, which := range []string{"LSched", "Decima"} {
		row := []any{which}
		// Train an independent agent per budget point; every point gets
		// its own optimizer run and best-checkpoint selection, as a user
		// stopping training at that budget would.
		for _, b := range budgets {
			var agent *lsched.Agent
			var cfg lsched.TrainConfig
			if which == "LSched" {
				agent = lsched.New(lsched.DefaultOptions(l.Seed))
				cfg = l.trainConfig(pool, l.Seed)
			} else {
				agent = decima.New(l.Seed)
				cfg = decima.TrainConfig(l.trainConfig(pool, l.Seed))
			}
			cfg.Episodes = b
			if _, err := lsched.Train(agent, cfg); err != nil {
				return nil, fmt.Errorf("fig14 training %s@%d: %w", which, b, err)
			}
			m, err := eval(agent)
			if err != nil {
				return nil, err
			}
			row = append(row, m)
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// Fig14Transfer reproduces Fig. 14(b): the average training reward per
// episode when training an SSB scheduler from scratch versus
// transfer-initialized from the TPCH model with inner layers frozen.
// Transfer should reach a good reward in roughly half the episodes.
func Fig14Transfer(l *Lab) (*Table, error) {
	tpchAgent, err := l.LSched(workload.BenchTPCH)
	if err != nil {
		return nil, err
	}
	ssbPool := l.Pool(workload.BenchSSB)
	episodes := l.Scale.TrainEpisodes
	marks := []int{episodes / 5, 2 * episodes / 5, 3 * episodes / 5, 4 * episodes / 5, episodes}
	for i := range marks {
		if marks[i] < 1 {
			marks[i] = 1
		}
	}
	tbl := &Table{
		Title:   "Fig 14(b): avg reward vs episodes, SSB from scratch vs transfer from TPCH",
		Columns: append([]string{"variant"}, intLabels(marks)...),
		Notes: []string{
			"paper shape: rewards are negative latency penalties; the transfer curve reaches an effective reward with ~50% fewer episodes",
		},
	}
	runCurve := func(name string, init func(*lsched.Agent) error) error {
		agent := lsched.New(lsched.DefaultOptions(l.Seed + 5))
		if init != nil {
			if err := init(agent); err != nil {
				return err
			}
		}
		var rewards []float64
		cfg := l.trainConfig(ssbPool, l.Seed+5)
		cfg.Episodes = episodes
		cfg.OnEpisode = func(ep int, avgReward, _ float64) {
			rewards = append(rewards, avgReward)
		}
		if _, err := lsched.Train(agent, cfg); err != nil {
			return fmt.Errorf("fig14 transfer curve %s: %w", name, err)
		}
		row := []any{name}
		for _, m := range marks {
			// Smooth with the trailing window up to the mark.
			lo := m - 5
			if lo < 0 {
				lo = 0
			}
			row = append(row, meanOf(rewards[lo:m]))
		}
		tbl.AddRow(row...)
		return nil
	}
	if err := runCurve("LSched w/o TL", nil); err != nil {
		return nil, err
	}
	if err := runCurve("LSched w TL", func(a *lsched.Agent) error {
		return a.TransferFrom(tpchAgent)
	}); err != nil {
		return nil, err
	}
	return tbl, nil
}
