package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/heuristics"
	"repro/internal/workload"
)

// evalSet returns the five competitors of the sensitivity experiments
// (Figs. 11–13: FIFO is excluded after Fig. 8).
func evalSet(l *Lab, b workload.Benchmark) ([]engine.Scheduler, error) {
	ls, err := l.LSched(b)
	if err != nil {
		return nil, err
	}
	dec, err := l.Decima(b)
	if err != nil {
		return nil, err
	}
	st, err := l.SelfTune(b)
	if err != nil {
		return nil, err
	}
	return []engine.Scheduler{ls, dec, heuristics.Quickstep{}, st, heuristics.Fair{}}, nil
}

// Fig11Workers reproduces Fig. 11(a): average TPC-H streaming query
// duration while scaling the worker pool from 20 to 100 threads.
func Fig11Workers(l *Lab) (*Table, error) {
	scheds, err := evalSet(l, workload.BenchTPCH)
	if err != nil {
		return nil, err
	}
	pool := l.Pool(workload.BenchTPCH)
	workers := []int{20, 40, 60, 80, 100}
	tbl := &Table{
		Title:   "Fig 11(a): avg query duration vs worker threads (TPCH streaming)",
		Columns: append([]string{"scheduler"}, intLabels(workers)...),
		Notes: []string{
			"paper shape: all scale with threads; gaps shrink at very high thread counts where fair sharing suffices",
		},
	}
	for _, s := range scheds {
		row := []any{s.Name()}
		for _, w := range workers {
			saved := l.Scale.Threads
			l.Scale.Threads = w
			stats, err := l.Evaluate(s, func(rng *rand.Rand) []engine.Arrival {
				return workload.Streaming(pool.Test, l.Scale.EvalQueries, 0.5, rng)
			}, false)
			l.Scale.Threads = saved
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Mean)
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// Fig11ArrivalRate reproduces Fig. 11(b): average query duration while
// varying the inter-query arrival time from heavy overlap to
// one-query-at-a-time.
func Fig11ArrivalRate(l *Lab) (*Table, error) {
	scheds, err := evalSet(l, workload.BenchTPCH)
	if err != nil {
		return nil, err
	}
	pool := l.Pool(workload.BenchTPCH)
	// The paper's x-axis is the inter-query arrival time knob 10..400
	// (log scale); we map it to the exponential gap's expectation.
	gaps := []float64{10, 50, 100, 200, 400}
	tbl := &Table{
		Title:   "Fig 11(b): avg query duration vs inter-query arrival time (TPCH streaming)",
		Columns: append([]string{"scheduler"}, floatLabels(gaps)...),
		Notes: []string{
			"paper shape: durations drop as arrivals spread out; at 400 the system runs ~one query at a time and schedulers converge",
		},
	}
	for _, s := range scheds {
		row := []any{s.Name()}
		for _, g := range gaps {
			// The knob is the expected inter-arrival gap in engine time
			// units; 10 overlaps heavily, 400 approaches one query at a
			// time (typical query durations are tens to hundreds of
			// units).
			rate := 1.0 / g
			stats, err := l.Evaluate(s, func(rng *rand.Rand) []engine.Arrival {
				return workload.Streaming(pool.Test, l.Scale.EvalQueries, rate, rng)
			}, false)
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Mean)
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

func intLabels(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

func floatLabels(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%g", x)
	}
	return out
}
