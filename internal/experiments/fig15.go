package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/lsched"
	"repro/internal/workload"
)

// Fig15Ablation reproduces Fig. 15: the CDF of average query duration
// for LSched with each key contribution removed — transfer learning,
// pipelining prediction, graph attention, and the triangle (tree)
// convolution.
func Fig15Ablation(l *Lab) (*Table, error) {
	pool := l.Pool(workload.BenchTPCH)
	gen := func(rng *rand.Rand) []engine.Arrival {
		return workload.Streaming(pool.Test, l.Scale.EvalQueries, 0.5, rng)
	}
	tbl := &Table{
		Title:   "Fig 15: LSched ablations (TPCH streaming)",
		Columns: append([]string{"variant", "mean"}, cdfLabels()...),
		Notes: []string{
			"paper shape: removing TCN hurts most (>=2x), then GAT (>=1.5x), then pipelining prediction (+25%), then transfer learning (+10%)",
		},
	}
	addRow := func(name string, s engine.Scheduler) error {
		stats, err := l.Evaluate(s, gen, false)
		if err != nil {
			return fmt.Errorf("fig15 %s: %w", name, err)
		}
		row := []any{name, stats.Mean}
		for _, p := range cdfPoints {
			row = append(row, pct(stats.Durations, p))
		}
		tbl.AddRow(row...)
		return nil
	}

	// The complete variation is trained with transfer learning: warm-
	// start from the SSB model, then train on TPCH with frozen inner
	// layers, as the figure's blue curve prescribes.
	ssbAgent, err := l.LSched(workload.BenchSSB)
	if err != nil {
		return nil, err
	}
	full := lsched.New(lsched.DefaultOptions(l.Seed + 9))
	if err := full.TransferFrom(ssbAgent); err != nil {
		return nil, err
	}
	if _, err := lsched.Train(full, l.trainConfig(pool, l.Seed+9)); err != nil {
		return nil, err
	}
	full.SetGreedy(true)
	if err := addRow("LSched", full); err != nil {
		return nil, err
	}

	noTL, err := l.LSched(workload.BenchTPCH) // trained from scratch
	if err != nil {
		return nil, err
	}
	if err := addRow("LSched w/o Transfer Learning", noTL); err != nil {
		return nil, err
	}

	variants := []struct {
		name string
		mod  func(*lsched.Options)
	}{
		{"LSched w/o Pipelining Prediction", func(o *lsched.Options) { o.DisablePipelining = true }},
		{"LSched w/o Graph Attention", func(o *lsched.Options) { o.UseGAT = false }},
		{"LSched w/o Triangle Convolution", func(o *lsched.Options) { o.UseTCN = false }},
	}
	for _, v := range variants {
		agent, err := l.Variant(workload.BenchTPCH, v.name, v.mod)
		if err != nil {
			return nil, err
		}
		if err := addRow(v.name, agent); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}
