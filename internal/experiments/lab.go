package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/decima"
	"repro/internal/engine"
	"repro/internal/lsched"
	"repro/internal/metrics"
	"repro/internal/provenance"
	"repro/internal/selftune"
	"repro/internal/workload"
)

// Scale trades experiment fidelity for run time. Paper-scale settings
// (5000 training episodes, 100-query sweeps) take hours; the Quick scale
// keeps every experiment's shape while fitting in `go test -bench`.
type Scale struct {
	// TrainEpisodes is the LSched/Decima training budget per benchmark.
	TrainEpisodes int
	// TrainQueries is the per-episode query count during training.
	TrainQueries int
	// EvalQueries is the workload size of evaluation runs (paper: 80).
	EvalQueries int
	// Threads is the worker pool size (paper: 60).
	Threads int
	// Repeats is how many seeds evaluation runs average over.
	Repeats int
	// TuneRounds is the SelfTune hill-climbing budget.
	TuneRounds int
	// Rollouts is the number of training episodes collected concurrently
	// per policy update (lsched.TrainConfig.Rollouts); 0/1 trains
	// sequentially.
	Rollouts int
}

// QuickScale is the default for the CLI's -scale quick runs; it matches
// the root benchmarks' settings.
func QuickScale() Scale {
	return Scale{TrainEpisodes: 120, TrainQueries: 8, EvalQueries: 20, Threads: 20, Repeats: 1, TuneRounds: 6}
}

// PaperScale approaches the paper's settings (long-running; used by
// cmd/lsched-bench -scale paper).
func PaperScale() Scale {
	return Scale{TrainEpisodes: 1000, TrainQueries: 40, EvalQueries: 80, Threads: 60, Repeats: 3, TuneRounds: 40}
}

// Lab owns the shared expensive artifacts — benchmark pools, trained
// LSched/Decima agents, tuned SelfTune schedulers — so the figure
// regenerators can reuse them.
type Lab struct {
	Scale Scale
	Seed  int64

	// Metrics and Trace, when set, are threaded into every evaluation
	// run's SimConfig (training runs stay un-instrumented: they execute
	// thousands of episodes and would drown the trace). The CLI's
	// -metrics flag populates them and prints the export at exit.
	Metrics *metrics.Registry
	Trace   *metrics.Tracer

	// WatchTraining, when set alongside Metrics, threads the registry
	// (but not the trace: thousands of episodes would drown the ring)
	// into training runs too, so a live observer (lsched-bench -listen)
	// sees counters and gauges move during the long training phases of
	// figure regeneration instead of a silent registry.
	WatchTraining bool

	// Provenance, when set, is attached to every LSched-family agent the
	// lab builds or is handed (after training, so only evaluation
	// decisions record), and evaluation sims forward query completions
	// to the agent so records join their outcomes. The CLI's
	// -provenance-out flag populates it and spills the trace at exit.
	Provenance *provenance.Recorder

	pools    map[workload.Benchmark]*workload.Pool
	agents   map[string]*lsched.Agent
	selftune map[workload.Benchmark]*selftune.Scheduler
}

// NewLab builds an empty lab.
func NewLab(scale Scale, seed int64) *Lab {
	return &Lab{
		Scale:    scale,
		Seed:     seed,
		pools:    make(map[workload.Benchmark]*workload.Pool),
		agents:   make(map[string]*lsched.Agent),
		selftune: make(map[workload.Benchmark]*selftune.Scheduler),
	}
}

// Pool returns (and caches) the train/test pool for a benchmark.
func (l *Lab) Pool(b workload.Benchmark) *workload.Pool {
	if p, ok := l.pools[b]; ok {
		return p
	}
	p, err := workload.NewPool(b, l.Seed)
	if err != nil {
		panic(err) // benchmark names are static; this is a programming error
	}
	l.pools[b] = p
	return p
}

// SimConfig returns the evaluation simulator configuration.
func (l *Lab) SimConfig(seed int64) engine.SimConfig {
	return engine.SimConfig{
		Threads: l.Scale.Threads, Seed: seed, NoiseFrac: 0.15,
		Metrics: l.Metrics, Trace: l.Trace,
	}
}

// trainConfig assembles the shared training configuration over a pool.
func (l *Lab) trainConfig(pool *workload.Pool, seed int64) lsched.TrainConfig {
	cfg := lsched.DefaultTrainConfig(seed)
	cfg.Episodes = l.Scale.TrainEpisodes
	cfg.Rollouts = l.Scale.Rollouts
	cfg.SimCfg = engine.SimConfig{Threads: l.Scale.Threads, NoiseFrac: 0.15}
	if l.WatchTraining {
		cfg.SimCfg.Metrics = l.Metrics
	}
	nq := l.Scale.TrainQueries
	// Training cycles a fixed set of workloads (mixing sizes, rates, and
	// batch arrivals as §7.1 prescribes); REINFORCE's baseline is then
	// kept per workload, which keeps the advantage signal meaningful
	// across heterogeneous episodes.
	const groups = 8
	wrng := rand.New(rand.NewSource(seed + 4242))
	fixed := make([][]engine.Arrival, groups)
	for g := range fixed {
		n := nq/2 + wrng.Intn(nq)
		if g%4 == 3 {
			fixed[g] = workload.Batch(pool.Train, n, wrng)
		} else {
			rate := 0.2 + wrng.Float64()*2
			fixed[g] = workload.Streaming(pool.Train, n, rate, wrng)
		}
	}
	cfg.Workload = func(ep int, rng *rand.Rand) []engine.Arrival {
		return cloneArrivals(fixed[ep%groups])
	}
	cfg.BaselineKey = func(ep int) int { return ep % groups }
	// Checkpoint selection: score the greedy policy on a fixed held-out
	// training workload (never the test split).
	evalRNG := rand.New(rand.NewSource(seed + 999))
	evalArrivals := workload.Streaming(pool.Train, nq, 0.5, evalRNG)
	cfg.Eval = func(a *lsched.Agent) float64 {
		sim := engine.NewSim(engine.SimConfig{Threads: l.Scale.Threads, Seed: seed + 999, NoiseFrac: 0.15})
		res, err := sim.Run(a, cloneArrivals(evalArrivals))
		if err != nil {
			return 1e18
		}
		return res.AvgDuration()
	}
	return cfg
}

// cloneArrivals deep-copies an arrival list so repeated evaluation runs
// do not share mutable plan state.
func cloneArrivals(in []engine.Arrival) []engine.Arrival {
	return engine.CloneArrivals(in)
}

// UseAgent installs a pre-built agent as the lab's LSched agent for a
// benchmark, bypassing training. The CLI's -policy flag uses it to run
// the figure regenerators under a checkpoint restored from a policy
// store instead of a freshly trained policy.
func (l *Lab) UseAgent(b workload.Benchmark, a *lsched.Agent) {
	a.SetProvenance(l.Provenance)
	l.agents["lsched/"+string(b)] = a
}

// LSched returns (and caches) a trained LSched agent for the benchmark.
func (l *Lab) LSched(b workload.Benchmark) (*lsched.Agent, error) {
	key := "lsched/" + string(b)
	if a, ok := l.agents[key]; ok {
		return a, nil
	}
	agent := lsched.New(lsched.DefaultOptions(l.Seed))
	if _, err := lsched.Train(agent, l.trainConfig(l.Pool(b), l.Seed)); err != nil {
		return nil, fmt.Errorf("training LSched on %s: %w", b, err)
	}
	agent.SetGreedy(true)
	agent.SetProvenance(l.Provenance)
	l.agents[key] = agent
	return agent, nil
}

// Decima returns (and caches) a trained Decima baseline agent.
func (l *Lab) Decima(b workload.Benchmark) (*lsched.Agent, error) {
	key := "decima/" + string(b)
	if a, ok := l.agents[key]; ok {
		return a, nil
	}
	agent := decima.New(l.Seed)
	cfg := decima.TrainConfig(l.trainConfig(l.Pool(b), l.Seed))
	if _, err := lsched.Train(agent, cfg); err != nil {
		return nil, fmt.Errorf("training Decima on %s: %w", b, err)
	}
	agent.SetGreedy(true)
	agent.SetProvenance(l.Provenance)
	l.agents[key] = agent
	return agent, nil
}

// Variant trains an LSched ablation variant (Fig. 15).
func (l *Lab) Variant(b workload.Benchmark, name string, mod func(*lsched.Options)) (*lsched.Agent, error) {
	key := "variant/" + name + "/" + string(b)
	if a, ok := l.agents[key]; ok {
		return a, nil
	}
	opts := lsched.DefaultOptions(l.Seed)
	opts.Name = name
	mod(&opts)
	agent := lsched.New(opts)
	if _, err := lsched.Train(agent, l.trainConfig(l.Pool(b), l.Seed)); err != nil {
		return nil, fmt.Errorf("training variant %s on %s: %w", name, b, err)
	}
	agent.SetGreedy(true)
	agent.SetProvenance(l.Provenance)
	l.agents[key] = agent
	return agent, nil
}

// SelfTune returns (and caches) the tuned SelfTune scheduler for the
// benchmark, tuned against training workloads as its paper prescribes.
func (l *Lab) SelfTune(b workload.Benchmark) (*selftune.Scheduler, error) {
	if s, ok := l.selftune[b]; ok {
		return s, nil
	}
	pool := l.Pool(b)
	rng := rand.New(rand.NewSource(l.Seed))
	var workloads [][]engine.Arrival
	for i := 0; i < 3; i++ {
		workloads = append(workloads, workload.Streaming(pool.Train, l.Scale.TrainQueries, 0.5, rng))
	}
	s, _, err := selftune.Tune(selftune.TuneConfig{
		Rounds:    l.Scale.TuneRounds,
		Restarts:  2,
		Seed:      l.Seed,
		SimCfg:    engine.SimConfig{Threads: l.Scale.Threads, NoiseFrac: 0.15},
		Workloads: workloads,
	})
	if err != nil {
		return nil, fmt.Errorf("tuning SelfTune on %s: %w", b, err)
	}
	l.selftune[b] = s
	return s, nil
}

// EvalRun executes one workload under one scheduler and returns the
// run's per-query durations.
func (l *Lab) EvalRun(s engine.Scheduler, arrivals []engine.Arrival, seed int64) (*engine.SimResult, error) {
	sim := engine.NewSim(l.SimConfig(seed))
	// Lifecycle-observing schedulers (agents with a flight recorder
	// attached) get completion callbacks so records join their outcomes.
	if o, ok := s.(engine.QueryObserver); ok {
		sim.SetObserver(o)
	}
	return sim.Run(s, arrivals)
}

// EvalStats runs a scheduler over Repeats seeded workloads drawn by gen
// and returns the pooled per-query durations plus summary statistics.
type EvalStats struct {
	Durations []float64
	Mean      float64
	P50       float64
	P90       float64
	// SchedOverheadPerQueryMS is the wall-clock scheduler latency per
	// query in milliseconds (Fig. 13a).
	SchedOverheadPerQueryMS float64
	// SchedActions is the mean number of scheduling actions (Fig. 13b).
	SchedActions float64
}

// Evaluate runs the scheduler on Repeats workloads and pools results.
func (l *Lab) Evaluate(s engine.Scheduler, gen func(rng *rand.Rand) []engine.Arrival, measureOverhead bool) (*EvalStats, error) {
	stats := &EvalStats{}
	totalQueries := 0
	var overheadMS float64
	var actions int
	for r := 0; r < l.Scale.Repeats; r++ {
		rng := rand.New(rand.NewSource(l.Seed + int64(r)*31))
		arrivals := gen(rng)
		cfg := l.SimConfig(l.Seed + int64(r)*17)
		cfg.MeasureOverhead = measureOverhead
		sim := engine.NewSim(cfg)
		// Lifecycle-observing schedulers (agents with a flight recorder
		// attached) get completion callbacks so records join outcomes.
		if o, ok := s.(engine.QueryObserver); ok {
			sim.SetObserver(o)
		}
		res, err := sim.Run(s, arrivals)
		if err != nil {
			return nil, fmt.Errorf("evaluating %s: %w", s.Name(), err)
		}
		for _, d := range res.Durations {
			stats.Durations = append(stats.Durations, d)
		}
		totalQueries += len(res.Durations)
		overheadMS += float64(res.SchedOverhead.Microseconds()) / 1000.0
		actions += res.SchedActions
	}
	sort.Float64s(stats.Durations)
	stats.Mean = meanOf(stats.Durations)
	stats.P50 = pct(stats.Durations, 0.5)
	stats.P90 = pct(stats.Durations, 0.9)
	if totalQueries > 0 {
		stats.SchedOverheadPerQueryMS = overheadMS / float64(totalQueries)
	}
	stats.SchedActions = float64(actions) / float64(l.Scale.Repeats)
	return stats, nil
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}
