// Package experiments contains one regenerator per table and figure in
// the paper's evaluation (§7). Each Fig* function runs the corresponding
// experiment on the simulator substrate and returns a Table whose rows
// mirror the series the paper plots; cmd/lsched-bench and the root
// bench_test.go drive them.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the expected paper shape for EXPERIMENTS.md.
	Notes []string
}

// AddRow appends a formatted row; values may be strings or numbers.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		case int:
			row[i] = fmt.Sprintf("%d", x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString("== " + t.Title + " ==\n")
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}
