package experiments

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/lsched"
	"repro/internal/plan"
)

// fig01Plan builds the intro example's query Q1: five select operators
// and one join, forming two pipelinable chains (o1,o2,o3) and
// (o4,o5,o6-as-join); scheduled on five threads.
func fig01Plan() *plan.Plan {
	b := plan.NewBuilder("fig1-q1")
	o1 := b.Add(&plan.Operator{Type: plan.TableScan, EstBlocks: 5})
	o2 := b.Add(&plan.Operator{Type: plan.Select, EstBlocks: 5})
	b.ConnectAuto(o1, o2)
	o3 := b.Add(&plan.Operator{Type: plan.Select, EstBlocks: 5})
	b.ConnectAuto(o2, o3)
	o4 := b.Add(&plan.Operator{Type: plan.TableScan, EstBlocks: 5})
	o5 := b.Add(&plan.Operator{Type: plan.Select, EstBlocks: 5})
	b.ConnectAuto(o4, o5)
	build := b.Add(&plan.Operator{Type: plan.BuildHash, EstBlocks: 5})
	b.ConnectAuto(o3, build)
	o6 := b.Add(&plan.Operator{Type: plan.ProbeHash, EstBlocks: 5})
	b.Connect(build, o6, false)
	b.Connect(o5, o6, true)
	return b.MustBuild()
}

// fixedDepthSched schedules every root with a fixed pipeline depth and
// all threads — the "aggressive pipelining" (critical path) and
// "no pipelining" (Decima-style) strawmen of Fig. 1.
type fixedDepthSched struct {
	name  string
	depth int
}

func (f fixedDepthSched) Name() string { return f.name }

func (f fixedDepthSched) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	var ds []engine.Decision
	for _, q := range st.Queries {
		for _, root := range q.SchedulableRoots() {
			d := f.depth
			if d < 0 {
				d = q.Plan.LongestPipelinePathFrom(root)
			}
			ds = append(ds, engine.Decision{QueryID: q.ID, RootOpID: root.ID, PipelineDepth: d, Threads: st.TotalThreads()})
		}
	}
	return ds
}

// Fig01IntroExample reproduces the paper's Fig. 1 comparison: one query
// with two pipelinable chains, scheduled on 5 threads by (a) critical-
// path with aggressive pipelining, (b) a Decima-style non-pipelining
// packer, and (c) a learned scheduler that picks the pipeline degree.
// With a constrained buffer pool, aggressive pipelining thrashes, no
// pipelining forfeits the materialization savings, and the learned
// moderate degree wins — the paper reports 20 vs 23 vs 27 time units.
func Fig01IntroExample(l *Lab) (*Table, error) {
	cost := engine.DefaultCostModel()
	// A constrained buffer pool: activating both full pipelines at once
	// over-commits memory and thrashes, while moderate pipelining earns
	// a strong materialization-skipping discount — the intro example's
	// trade-off.
	cost.BufferCapacity = 3
	cost.ThrashFactor = 4
	cost.PipelineDiscount = 0.55
	// Training-time eval runs stay un-instrumented; only the measured
	// table rows carry the lab's metrics registry and tracer.
	run := func(s engine.Scheduler, instrumented bool) (float64, error) {
		cfg := engine.SimConfig{Threads: 5, Seed: l.Seed, Cost: cost}
		if instrumented {
			cfg.Metrics, cfg.Trace = l.Metrics, l.Trace
		}
		sim := engine.NewSim(cfg)
		res, err := sim.Run(s, []engine.Arrival{{Plan: fig01Plan(), At: 0}})
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	// Train a small agent on exactly this scenario so its pipeline
	// degree is learned, not hard-coded. Coordinating the pipeline
	// degree with the thread grant is a hard exploration problem, so we
	// train with a high entropy bonus over a couple of seeds and keep
	// the best greedy policy.
	evalAgent := func(a *lsched.Agent) float64 {
		m, err := run(a, false)
		if err != nil {
			return 1e18
		}
		return m
	}
	var agent *lsched.Agent
	bestScore := 1e18
	for s := int64(0); s < 2; s++ {
		cand := lsched.New(lsched.DefaultOptions(l.Seed + s))
		cfg := lsched.DefaultTrainConfig(l.Seed + s)
		// Episodes are a single tiny query, so a larger budget stays cheap.
		cfg.Episodes = 40 * l.Scale.TrainEpisodes
		if cfg.Episodes < 2500 {
			cfg.Episodes = 2500
		}
		cfg.EntropyWeight = 0.03
		cfg.SimCfg = engine.SimConfig{Threads: 5, Cost: cost}
		cfg.Workload = func(ep int, rng *rand.Rand) []engine.Arrival {
			return []engine.Arrival{{Plan: fig01Plan(), At: 0}}
		}
		cfg.Eval = evalAgent
		if _, err := lsched.Train(cand, cfg); err != nil {
			return nil, err
		}
		cand.SetGreedy(true)
		if score := evalAgent(cand); score < bestScore {
			agent, bestScore = cand, score
		}
	}

	tbl := &Table{
		Title:   "Fig 1: intro example — schedule length of Q1 on 5 threads",
		Columns: []string{"scheduler", "total time"},
		Notes: []string{
			"paper shape: learned scheduling (20) beats critical-path aggressive pipelining (23) and Decima-style no pipelining (27)",
		},
	}
	for _, s := range []engine.Scheduler{
		fixedDepthSched{name: "CriticalPath (aggressive pipelining)", depth: -1},
		fixedDepthSched{name: "Decima-style (no pipelining)", depth: 0},
		agent,
	} {
		m, err := run(s, true)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(s.Name(), m)
	}
	return tbl, nil
}
