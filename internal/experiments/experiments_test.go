package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// tinyScale makes experiment smoke tests fast; policies are barely
// trained, but every figure's machinery runs end to end.
func tinyScale() Scale {
	return Scale{TrainEpisodes: 4, TrainQueries: 4, EvalQueries: 6, Threads: 8, Repeats: 1, TuneRounds: 2}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"name", "value"}}
	tbl.AddRow("a", 1.5)
	tbl.AddRow("bee", 2)
	tbl.Notes = append(tbl.Notes, "hello")
	s := tbl.String()
	for _, want := range []string{"== demo ==", "name", "1.50", "bee", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFiguresRegistryComplete(t *testing.T) {
	figs := Figures()
	want := []string{"1", "8", "9", "10", "11", "12", "13", "14", "15"}
	if len(figs) != len(want) {
		t.Fatalf("registry has %v, want %v", figs, want)
	}
	for i, f := range want {
		if figs[i] != f {
			t.Fatalf("registry order %v, want %v", figs, want)
		}
	}
	if _, err := Run(NewLab(tinyScale(), 1), "99"); err == nil {
		t.Fatal("unknown figure must error")
	}
}

func TestLabCachesAgents(t *testing.T) {
	l := NewLab(tinyScale(), 1)
	a, err := l.LSched(workload.BenchSSB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.LSched(workload.BenchSSB)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("lab retrained instead of caching")
	}
	p1 := l.Pool(workload.BenchTPCH)
	p2 := l.Pool(workload.BenchTPCH)
	if p1 != p2 {
		t.Fatal("lab rebuilt the pool")
	}
}

func TestCompareSchedulersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short")
	}
	l := NewLab(tinyScale(), 1)
	tbl, err := compareSchedulers(l, workload.BenchSSB, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 { // LSched, Decima, Quickstep, SelfTune, Fair, FIFO
		t.Fatalf("%d rows, want 6:\n%s", len(tbl.Rows), tbl)
	}
	for _, row := range tbl.Rows {
		if row[1] == "0.00" {
			t.Fatalf("scheduler %s reported zero mean duration", row[0])
		}
	}
}

func TestFig11And12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short")
	}
	l := NewLab(tinyScale(), 2)
	w, err := Fig11Workers(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Rows) != 5 || len(w.Columns) != 6 {
		t.Fatalf("fig11a shape: %d rows x %d cols", len(w.Rows), len(w.Columns))
	}
	// Thread count is restored after the sweep.
	if l.Scale.Threads != tinyScale().Threads {
		t.Fatalf("Fig11Workers leaked Threads=%d", l.Scale.Threads)
	}
	qs, err := Fig12QueryCount(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatal("fig12 should return streaming and batch tables")
	}
}

func TestFig13OverheadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short")
	}
	l := NewLab(tinyScale(), 3)
	tables, err := Fig13Overhead(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatal("fig13 should return latency and action tables")
	}
	if len(tables[1].Rows) != 2 {
		t.Fatalf("actions table should cover the two learned agents, got %d rows", len(tables[1].Rows))
	}
}

func TestScaledCounts(t *testing.T) {
	l := NewLab(Scale{EvalQueries: 40}, 1)
	counts := scaledCounts(l)
	if len(counts) != 5 {
		t.Fatalf("got %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("counts not increasing: %v", counts)
		}
	}
	if counts[3] != 40 {
		t.Fatalf("fourth sweep point should be EvalQueries, got %v", counts)
	}
}
