package experiments

import (
	"math/rand"

	"repro/internal/engine"
	"repro/internal/workload"
)

// Fig12QueryCount reproduces Fig. 12: average query duration while
// varying the number of (a) streaming and (b) batched TPC-H queries.
func Fig12QueryCount(l *Lab) ([]*Table, error) {
	scheds, err := evalSet(l, workload.BenchTPCH)
	if err != nil {
		return nil, err
	}
	pool := l.Pool(workload.BenchTPCH)
	counts := scaledCounts(l)
	out := make([]*Table, 0, 2)
	for _, batching := range []bool{false, true} {
		mode := "streaming"
		if batching {
			mode = "batched"
		}
		tbl := &Table{
			Title:   "Fig 12: avg query duration vs number of " + mode + " queries (TPCH)",
			Columns: append([]string{"scheduler"}, intLabels(counts)...),
			Notes: []string{
				"paper shape: near-parity at small counts; degradation sets in once queries outnumber threads, LSched degrades most gracefully",
			},
		}
		for _, s := range scheds {
			row := []any{s.Name()}
			for _, n := range counts {
				stats, err := l.Evaluate(s, func(rng *rand.Rand) []engine.Arrival {
					if batching {
						return workload.Batch(pool.Test, n, rng)
					}
					return workload.Streaming(pool.Test, n, 0.5, rng)
				}, false)
				if err != nil {
					return nil, err
				}
				row = append(row, stats.Mean)
			}
			tbl.AddRow(row...)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// scaledCounts maps the paper's 20..100 query sweep onto the lab scale.
func scaledCounts(l *Lab) []int {
	base := []float64{0.25, 0.5, 0.75, 1.0, 1.25}
	counts := make([]int, len(base))
	for i, f := range base {
		counts[i] = int(f * float64(l.Scale.EvalQueries))
		if counts[i] < 2 {
			counts[i] = 2
		}
	}
	return counts
}
