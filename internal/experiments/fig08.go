package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/heuristics"
	"repro/internal/workload"
)

// cdfPoints are the CDF levels the comparison tables report, standing in
// for the paper's CDF curves.
var cdfPoints = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}

// compareSchedulers runs every competitor on the benchmark's *test*
// queries under the given arrival mode and tabulates the CDF of query
// durations — the format of Figs. 8, 9, and 10.
func compareSchedulers(l *Lab, b workload.Benchmark, batching, includeFIFO bool) (*Table, error) {
	ls, err := l.LSched(b)
	if err != nil {
		return nil, err
	}
	dec, err := l.Decima(b)
	if err != nil {
		return nil, err
	}
	st, err := l.SelfTune(b)
	if err != nil {
		return nil, err
	}
	scheds := []engine.Scheduler{ls, dec, heuristics.Quickstep{}, st, heuristics.Fair{}}
	if includeFIFO {
		scheds = append(scheds, heuristics.FIFO{})
	}
	mode := "streaming"
	if batching {
		mode = "batching"
	}
	pool := l.Pool(b)
	gen := func(rng *rand.Rand) []engine.Arrival {
		if batching {
			return workload.Batch(pool.Test, l.Scale.EvalQueries, rng)
		}
		return workload.Streaming(pool.Test, l.Scale.EvalQueries, 0.5, rng)
	}

	tbl := &Table{
		Title:   fmt.Sprintf("%s %s: CDF of query duration (%d queries, %d threads)", b, mode, l.Scale.EvalQueries, l.Scale.Threads),
		Columns: append([]string{"scheduler", "mean"}, cdfLabels()...),
	}
	var decimaMean float64
	means := map[string]float64{}
	for _, s := range scheds {
		stats, err := l.Evaluate(s, gen, false)
		if err != nil {
			return nil, err
		}
		row := []any{s.Name(), stats.Mean}
		for _, p := range cdfPoints {
			row = append(row, pct(stats.Durations, p))
		}
		tbl.AddRow(row...)
		means[s.Name()] = stats.Mean
		if s.Name() == "Decima" {
			decimaMean = stats.Mean
		}
	}
	if decimaMean > 0 {
		imp := (decimaMean - means["LSched"]) / decimaMean * 100
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("LSched improvement over Decima: %.1f%% (paper: >=35%% streaming / >=50%% batching)", imp))
	}
	tbl.Notes = append(tbl.Notes, "paper shape: LSched dominates at every CDF level; FIFO (when shown) is worst by far")
	return tbl, nil
}

// Fig08TPCH reproduces Fig. 8: TPC-H streaming and batching CDFs.
func Fig08TPCH(l *Lab) ([]*Table, error) {
	stream, err := compareSchedulers(l, workload.BenchTPCH, false, true)
	if err != nil {
		return nil, err
	}
	batch, err := compareSchedulers(l, workload.BenchTPCH, true, true)
	if err != nil {
		return nil, err
	}
	return []*Table{stream, batch}, nil
}

// Fig09SSB reproduces Fig. 9: SSB streaming and batching CDFs (FIFO is
// dropped after Fig. 8, as in the paper).
func Fig09SSB(l *Lab) ([]*Table, error) {
	stream, err := compareSchedulers(l, workload.BenchSSB, false, false)
	if err != nil {
		return nil, err
	}
	batch, err := compareSchedulers(l, workload.BenchSSB, true, false)
	if err != nil {
		return nil, err
	}
	return []*Table{stream, batch}, nil
}

// Fig10JOB reproduces Fig. 10: JOB streaming and batching CDFs.
func Fig10JOB(l *Lab) ([]*Table, error) {
	stream, err := compareSchedulers(l, workload.BenchJOB, false, false)
	if err != nil {
		return nil, err
	}
	batch, err := compareSchedulers(l, workload.BenchJOB, true, false)
	if err != nil {
		return nil, err
	}
	return []*Table{stream, batch}, nil
}

func cdfLabels() []string {
	out := make([]string, len(cdfPoints))
	for i, p := range cdfPoints {
		out[i] = fmt.Sprintf("p%.0f", p*100)
	}
	return out
}
