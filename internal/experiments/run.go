package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one figure.
type Runner func(*Lab) ([]*Table, error)

// registry maps figure IDs to regenerators.
var registry = map[string]Runner{
	"1": func(l *Lab) ([]*Table, error) {
		t, err := Fig01IntroExample(l)
		return wrap(t, err)
	},
	"8":  Fig08TPCH,
	"9":  Fig09SSB,
	"10": Fig10JOB,
	"11": func(l *Lab) ([]*Table, error) {
		a, err := Fig11Workers(l)
		if err != nil {
			return nil, err
		}
		b, err := Fig11ArrivalRate(l)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	},
	"12": Fig12QueryCount,
	"13": Fig13Overhead,
	"14": func(l *Lab) ([]*Table, error) {
		a, err := Fig14Training(l)
		if err != nil {
			return nil, err
		}
		b, err := Fig14Transfer(l)
		if err != nil {
			return nil, err
		}
		return []*Table{a, b}, nil
	},
	"15": func(l *Lab) ([]*Table, error) {
		t, err := Fig15Ablation(l)
		return wrap(t, err)
	},
}

func wrap(t *Table, err error) ([]*Table, error) {
	if err != nil {
		return nil, err
	}
	return []*Table{t}, nil
}

// Figures lists the available figure IDs in order.
func Figures() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		return len(out[i]) < len(out[j]) || (len(out[i]) == len(out[j]) && out[i] < out[j])
	})
	return out
}

// Run regenerates the figure with the given ID.
func Run(l *Lab, fig string) ([]*Table, error) {
	r, ok := registry[fig]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", fig, Figures())
	}
	return r(l)
}
