// Package selftune reimplements the SelfTune baseline (Wagner et al.,
// SIGMOD 2021): a fixed priority-based scheduling policy whose
// hyper-parameters are tuned per workload by constrained optimization.
// The paper obtained the authors' executable; we reimplement the
// published idea — the policy shape is fixed, only its knobs adapt to
// the input workload — with a random-restart hill climber as the tuner.
package selftune

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/engine"
)

// Knobs are the tunable hyper-parameters of the fixed policy.
type Knobs struct {
	// WRemaining weights a query's remaining work in its priority
	// (negative values prefer short jobs).
	WRemaining float64
	// WAge weights a query's waiting time (positive values prevent
	// starvation).
	WAge float64
	// WCritical weights the query's critical-path length.
	WCritical float64
	// ShareExponent shapes the thread shares: grant_i ∝ rank_i^-exp.
	ShareExponent float64
	// PipelineDepth is the fixed pipeline degree the policy uses.
	PipelineDepth int
}

// DefaultKnobs is a reasonable untuned starting point.
func DefaultKnobs() Knobs {
	return Knobs{WRemaining: -1, WAge: 0.5, WCritical: 0.2, ShareExponent: 1, PipelineDepth: 1}
}

// Scheduler is the fixed-policy scheduler parameterized by Knobs.
type Scheduler struct {
	K Knobs
}

// Name implements engine.Scheduler.
func (Scheduler) Name() string { return "SelfTune" }

// OnEvent implements engine.Scheduler: queries are ranked by the knobbed
// priority, thread shares decay with rank, and every schedulable root is
// activated with the knobbed pipeline depth.
func (s Scheduler) OnEvent(st *engine.State, _ engine.Event) []engine.Decision {
	n := len(st.Queries)
	if n == 0 {
		return nil
	}
	type ranked struct {
		q    *engine.QueryState
		prio float64
	}
	rs := make([]ranked, n)
	for i, q := range st.Queries {
		age := st.Now - q.Arrival
		rs[i] = ranked{q: q, prio: s.K.WRemaining*float64(q.RemainingWork()) +
			s.K.WAge*age + s.K.WCritical*float64(q.CriticalPathBlocks())}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].prio > rs[j].prio })

	total := float64(st.TotalThreads())
	weights := make([]float64, n)
	wsum := 0.0
	for i := range rs {
		weights[i] = math.Pow(float64(i+1), -math.Max(s.K.ShareExponent, 0.01))
		wsum += weights[i]
	}
	depth := s.K.PipelineDepth
	if depth < 0 {
		depth = 0
	}
	var ds []engine.Decision
	for i, r := range rs {
		share := int(total * weights[i] / wsum)
		if share < 1 {
			share = 1
		}
		roots := r.q.SchedulableRoots()
		if len(roots) == 0 {
			ds = append(ds, engine.Decision{QueryID: r.q.ID, RootOpID: -1, Threads: share})
			continue
		}
		for _, root := range roots {
			ds = append(ds, engine.Decision{
				QueryID:       r.q.ID,
				RootOpID:      root.ID,
				PipelineDepth: depth,
				Threads:       share,
			})
		}
	}
	return ds
}

// TuneConfig configures the hyper-parameter search.
type TuneConfig struct {
	// Rounds is the number of hill-climbing proposals.
	Rounds int
	// Restarts is the number of random restarts.
	Restarts int
	// Seed drives the search.
	Seed int64
	// SimCfg is the evaluation simulator configuration.
	SimCfg engine.SimConfig
	// Workloads are the training workloads the tuner scores against.
	Workloads [][]engine.Arrival
}

// Tune searches for knobs minimizing the mean query duration over the
// training workloads, returning the best scheduler found.
func Tune(cfg TuneConfig) (*Scheduler, float64, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 30
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	score := func(k Knobs) (float64, error) {
		sum := 0.0
		for wi, w := range cfg.Workloads {
			simCfg := cfg.SimCfg
			simCfg.Seed = cfg.Seed + int64(wi)
			sim := engine.NewSim(simCfg)
			res, err := sim.Run(Scheduler{K: k}, w)
			if err != nil {
				return 0, err
			}
			sum += res.AvgDuration()
		}
		return sum / float64(len(cfg.Workloads)), nil
	}
	best := DefaultKnobs()
	bestScore, err := score(best)
	if err != nil {
		return nil, 0, err
	}
	for r := 0; r < cfg.Restarts; r++ {
		cur := randomKnobs(rng)
		curScore, err := score(cur)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i < cfg.Rounds; i++ {
			cand := perturb(cur, rng)
			s, err := score(cand)
			if err != nil {
				return nil, 0, err
			}
			if s < curScore {
				cur, curScore = cand, s
			}
		}
		if curScore < bestScore {
			best, bestScore = cur, curScore
		}
	}
	return &Scheduler{K: best}, bestScore, nil
}

func randomKnobs(rng *rand.Rand) Knobs {
	return Knobs{
		WRemaining:    rng.Float64()*4 - 3, // mostly negative (prefer short)
		WAge:          rng.Float64() * 2,
		WCritical:     rng.Float64()*2 - 1,
		ShareExponent: rng.Float64()*2 + 0.1,
		PipelineDepth: rng.Intn(4),
	}
}

func perturb(k Knobs, rng *rand.Rand) Knobs {
	k.WRemaining += rng.NormFloat64() * 0.3
	k.WAge += rng.NormFloat64() * 0.2
	k.WCritical += rng.NormFloat64() * 0.2
	k.ShareExponent = math.Max(0.05, k.ShareExponent+rng.NormFloat64()*0.2)
	if rng.Float64() < 0.3 {
		k.PipelineDepth += rng.Intn(3) - 1
		if k.PipelineDepth < 0 {
			k.PipelineDepth = 0
		}
		if k.PipelineDepth > 5 {
			k.PipelineDepth = 5
		}
	}
	return k
}
