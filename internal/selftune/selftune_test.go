package selftune

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func trainingWorkloads(t *testing.T, k int) [][]engine.Arrival {
	t.Helper()
	pool, err := workload.NewPool(workload.BenchSSB, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var ws [][]engine.Arrival
	for i := 0; i < k; i++ {
		ws = append(ws, workload.Streaming(pool.Train, 8, 0.5, rng))
	}
	return ws
}

func TestSchedulerCompletesWorkload(t *testing.T) {
	ws := trainingWorkloads(t, 1)
	sim := engine.NewSim(engine.SimConfig{Threads: 6, Seed: 1})
	res, err := sim.Run(Scheduler{K: DefaultKnobs()}, ws[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Durations) != 8 {
		t.Fatalf("completed %d of 8", len(res.Durations))
	}
}

func TestTuneImprovesOverDefault(t *testing.T) {
	ws := trainingWorkloads(t, 2)
	simCfg := engine.SimConfig{Threads: 6, NoiseFrac: 0.1}
	score := func(s *Scheduler) float64 {
		total := 0.0
		for i, w := range ws {
			cfg := simCfg
			cfg.Seed = int64(i)
			sim := engine.NewSim(cfg)
			res, err := sim.Run(s, cloneArrivals(w))
			if err != nil {
				t.Fatal(err)
			}
			total += res.AvgDuration()
		}
		return total
	}
	tuned, tunedScore, err := Tune(TuneConfig{
		Rounds: 10, Restarts: 2, Seed: 1,
		SimCfg: simCfg, Workloads: ws,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tunedScore <= 0 {
		t.Fatalf("tuned score %v", tunedScore)
	}
	def := score(&Scheduler{K: DefaultKnobs()})
	got := score(tuned)
	// The tuner minimizes over its own evaluation; at worst it keeps
	// the default, so the tuned policy must not be meaningfully worse.
	if got > def*1.05 {
		t.Fatalf("tuned policy (%v) worse than default (%v)", got, def)
	}
}

func TestPerturbKeepsKnobsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := DefaultKnobs()
	for i := 0; i < 1000; i++ {
		k = perturb(k, rng)
		if k.PipelineDepth < 0 || k.PipelineDepth > 5 {
			t.Fatalf("pipeline depth out of range: %d", k.PipelineDepth)
		}
		if k.ShareExponent < 0.05 {
			t.Fatalf("share exponent collapsed: %v", k.ShareExponent)
		}
	}
}

func cloneArrivals(in []engine.Arrival) []engine.Arrival {
	out := make([]engine.Arrival, len(in))
	for i, a := range in {
		out[i] = engine.Arrival{Plan: a.Plan.Clone(), At: a.At}
	}
	return out
}
