package nn

import "testing"

// BenchmarkTapeMatVec measures one 64×64 MatVec node in recording vs.
// inference mode — the dominant kernel of the encoder's projections.
func BenchmarkTapeMatVec(b *testing.B) {
	for _, mode := range []struct {
		name  string
		infer bool
	}{{"record", false}, {"infer", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := NewParams(1)
			w := p.Matrix("w", 64, 64)
			x := make([]float64, 64)
			for i := range x {
				x[i] = float64(i) * 0.01
			}
			tp := NewTape()
			tp.SetInference(mode.infer)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp.Reset()
				tp.MatVec(w, tp.Const(x))
			}
		})
	}
}

// BenchmarkTapeForwardInference measures a full small-MLP forward pass
// (the shape of one predictor head apply) per tape mode, with -benchmem
// exposing the Grad-slab and closure savings of inference mode.
func BenchmarkTapeForwardInference(b *testing.B) {
	for _, mode := range []struct {
		name  string
		infer bool
	}{{"record", false}, {"infer", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := NewParams(1)
			m := NewMLP(p, "m", 48, 16, 16, 9)
			x := make([]float64, 48)
			for i := range x {
				x[i] = float64(i%7) * 0.1
			}
			tp := NewTape()
			tp.SetInference(mode.infer)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp.Reset()
				logits := m.Apply(tp, tp.Const(x))
				tp.Softmax(logits)
			}
		})
	}
}
