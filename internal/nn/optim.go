package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and leaves gradients intact (call
	// Params.ZeroGrads afterwards).
	Step(p *Params)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[string][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[string][]float64)}
}

// Step applies one SGD update to all unfrozen parameters.
func (o *SGD) Step(p *Params) {
	p.BumpVersion()
	for _, n := range p.All() {
		if n.Frozen() {
			continue
		}
		if o.Momentum == 0 {
			for i := range n.Val {
				n.Val[i] -= o.LR * n.Grad[i]
			}
			continue
		}
		v, ok := o.vel[n.Name()]
		if !ok {
			v = make([]float64, n.Len())
			o.vel[n.Name()] = v
		}
		for i := range n.Val {
			v[i] = o.Momentum*v[i] + n.Grad[i]
			n.Val[i] -= o.LR * v[i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) — the workhorse for the
// REINFORCE policy updates.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64
	t       int
	m       map[string][]float64
	v       map[string][]float64
}

// NewAdam returns Adam with the usual defaults for unset fields.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8,
		m: make(map[string][]float64), v: make(map[string][]float64),
	}
}

// Step applies one Adam update to all unfrozen parameters.
func (o *Adam) Step(p *Params) {
	p.BumpVersion()
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, n := range p.All() {
		if n.Frozen() {
			continue
		}
		m, ok := o.m[n.Name()]
		if !ok {
			m = make([]float64, n.Len())
			o.m[n.Name()] = m
		}
		v, ok := o.v[n.Name()]
		if !ok {
			v = make([]float64, n.Len())
			o.v[n.Name()] = v
		}
		for i := range n.Val {
			g := n.Grad[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mh := m[i] / bc1
			vh := v[i] / bc2
			n.Val[i] -= o.LR * mh / (math.Sqrt(vh) + o.Epsilon)
		}
	}
}
