package nn

import (
	"math/rand"
	"testing"
)

// buildForward exercises every tape op that the encoder and predictor
// heads use and reduces to one scalar, so recording and inference modes
// can be compared value-for-value.
func buildForward(t *Tape, p *Params) *Node {
	d := NewDense(p, "d", 4, 3)
	m := NewMLP(p, "m", 3, 5, 3)
	a := p.Vector("a", 6)
	x := t.Const([]float64{0.3, -1.2, 0.7, 2.1})
	h := d.ApplyReLU(t, x)
	h2 := m.Apply(t, h)
	had := t.Mul(h, h2)
	cat := t.Concat(h, t.LeakyReLU(h2, 0.2))
	score := t.AttnScore(a, h, had, 0.2)
	ws := t.WeightedSum(t.Softmax(t.Concat(score, t.Sum(cat), t.Mean(had))), []*Node{h, h2, had})
	mo := t.MeanOf([]*Node{ws, t.Tanh(h2), t.Scale(h, 0.5)})
	lp := t.LogProbAt(mo, 1)
	ent := t.Entropy(mo)
	acc := t.MulAdd(t.Zeros(3), [2]*Node{h, h2})
	return t.Add(t.Add(lp, ent), t.Add(t.Slice(acc, 0), t.Sum(t.Sub(mo, ws))))
}

func TestInferenceForwardMatchesRecording(t *testing.T) {
	run := func(infer bool) float64 {
		p := NewParams(42)
		tp := NewTape()
		tp.SetInference(infer)
		return buildForward(tp, p).Val[0]
	}
	rec, inf := run(false), run(true)
	if rec != inf {
		t.Fatalf("inference forward diverged: recording=%v inference=%v", rec, inf)
	}
}

func TestInferenceSkipsGradStorage(t *testing.T) {
	p := NewParams(1)
	tp := NewTape()
	tp.SetInference(true)
	out := buildForward(tp, p)
	if out.Grad != nil {
		t.Fatal("inference-mode node carries Grad storage")
	}
	if !tp.Inference() {
		t.Fatal("Inference() should report true")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward must panic in inference mode")
		}
	}()
	tp.Backward(out)
}

func TestSetInferenceRejectsNonEmptyTape(t *testing.T) {
	tp := NewTape()
	tp.Const([]float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("SetInference on a non-empty tape must panic")
		}
	}()
	tp.SetInference(true)
}

func TestInferenceModeTogglesAcrossResets(t *testing.T) {
	p := NewParams(7)
	tp := NewTape()
	// Recording pass with gradients, then an inference pass, then a
	// recording pass again: values must agree and Backward must work in
	// the recording passes.
	tp.Reset()
	first := buildForward(tp, p)
	v1 := first.Val[0]
	p.ZeroGrads()
	tp.Backward(first)

	tp.Reset()
	tp.SetInference(true)
	v2 := buildForward(tp, p).Val[0]

	tp.Reset()
	tp.SetInference(false)
	third := buildForward(tp, p)
	v3 := third.Val[0]
	tp.Backward(third)

	if v1 != v2 || v2 != v3 {
		t.Fatalf("values diverged across mode toggles: %v %v %v", v1, v2, v3)
	}
}

func TestNodeSliceRecycles(t *testing.T) {
	tp := NewTape()
	s1 := tp.NodeSlice(8)
	if len(s1) != 8 {
		t.Fatalf("NodeSlice length %d", len(s1))
	}
	n := tp.Zeros(1)
	s1[0] = n
	tp.Reset()
	s2 := tp.NodeSlice(8)
	if &s1[0] != &s2[0] {
		t.Fatal("NodeSlice did not recycle its arena after Reset")
	}
	if s2[0] != nil {
		t.Fatal("recycled NodeSlice not zeroed")
	}
	// Oversized requests fall back to plain allocation.
	big := tp.NodeSlice(refSlabSize + 1)
	if len(big) != refSlabSize+1 {
		t.Fatalf("oversized NodeSlice length %d", len(big))
	}
}

func TestParamsVersionBumps(t *testing.T) {
	p := NewParams(3)
	v := p.Vector("w", 4)
	if p.Version() != 0 {
		t.Fatalf("fresh params version %d", p.Version())
	}
	for i := range v.Grad {
		v.Grad[i] = 0.5
	}
	NewAdam(1e-2).Step(p)
	if p.Version() != 1 {
		t.Fatalf("Adam.Step did not bump version: %d", p.Version())
	}
	NewSGD(1e-2, 0.9).Step(p)
	if p.Version() != 2 {
		t.Fatalf("SGD.Step did not bump version: %d", p.Version())
	}
	data, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Load(data); err != nil {
		t.Fatal(err)
	}
	if p.Version() != 3 {
		t.Fatalf("Load did not bump version: %d", p.Version())
	}
}

func TestOwnedVariantsMatchCopying(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mk := func(tp *Tape, n int) *Node {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return tp.Const(v)
	}
	tp := NewTape()
	a, b, c := mk(tp, 3), mk(tp, 3), mk(tp, 3)
	cat := tp.Concat(a, b, c)
	catOwned := tp.ConcatOwned([]*Node{a, b, c})
	for i := range cat.Val {
		if cat.Val[i] != catOwned.Val[i] {
			t.Fatal("ConcatOwned diverged from Concat")
		}
	}
	mo := tp.MeanOf([]*Node{a, b, c})
	moOwned := tp.MeanOfOwned([]*Node{a, b, c})
	for i := range mo.Val {
		if mo.Val[i] != moOwned.Val[i] {
			t.Fatal("MeanOfOwned diverged from MeanOf")
		}
	}
}
