package nn

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// loadTestParams builds a small registry with a couple of parameters.
func loadTestParams(seed int64) *Params {
	p := NewParams(seed)
	p.Matrix("enc.w", 4, 3)
	p.Vector("enc.b", 4)
	return p
}

// snapshotState captures everything Load may mutate.
func snapshotState(t *testing.T, p *Params) ([]byte, uint64, int) {
	t.Helper()
	data, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	return data, p.Version(), len(p.All())
}

// assertUnchanged asserts the registry is bit-identical to a prior
// snapshotState capture.
func assertUnchanged(t *testing.T, p *Params, data []byte, version uint64, nparams int) {
	t.Helper()
	now, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(now, data) {
		t.Fatal("failed Load mutated parameter values")
	}
	if p.Version() != version {
		t.Fatalf("failed Load bumped version %d -> %d", version, p.Version())
	}
	if len(p.All()) != nparams {
		t.Fatalf("failed Load registered new params: %d -> %d", nparams, len(p.All()))
	}
}

// TestParamsLoadTruncated feeds every truncation of a valid snapshot to
// Load: none may panic, and every one that errors must leave the
// receiver untouched.
func TestParamsLoadTruncated(t *testing.T) {
	src := loadTestParams(1)
	good, err := src.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	dst := loadTestParams(2)
	before, version, nparams := snapshotState(t, dst)
	errs := 0
	for cut := 0; cut < len(good); cut++ {
		if err := dst.Load(good[:cut]); err != nil {
			errs++
			assertUnchanged(t, dst, before, version, nparams)
		} else {
			t.Fatalf("truncation to %d of %d bytes loaded cleanly", cut, len(good))
		}
	}
	if errs == 0 {
		t.Fatal("no truncation errored; test is vacuous")
	}
	// The full snapshot still loads after all those failures.
	if err := dst.Load(good); err != nil {
		t.Fatal(err)
	}
	if dst.Version() != version+1 {
		t.Fatalf("successful Load must bump version once: %d -> %d", version, dst.Version())
	}
}

// TestParamsLoadBitFlips flips bytes across a valid snapshot: Load must
// never panic, and whenever it errors the receiver is unchanged.
func TestParamsLoadBitFlips(t *testing.T) {
	src := loadTestParams(1)
	good, err := src.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	dst := loadTestParams(2)
	for i := 0; i < len(good); i++ {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0xff
		before, version, nparams := snapshotState(t, dst)
		if err := dst.Load(bad); err != nil {
			assertUnchanged(t, dst, before, version, nparams)
		}
		// A flip that still decodes validly may legitimately load.
	}
}

// TestParamsLoadGarbage feeds non-gob bytes.
func TestParamsLoadGarbage(t *testing.T) {
	dst := loadTestParams(2)
	before, version, nparams := snapshotState(t, dst)
	for _, bad := range [][]byte{nil, {}, {0xff}, []byte("not a gob stream at all"), bytes.Repeat([]byte{0xab}, 512)} {
		if err := dst.Load(bad); err == nil {
			t.Fatalf("garbage %q loaded cleanly", bad)
		}
		assertUnchanged(t, dst, before, version, nparams)
	}
}

// TestParamsLoadRejectsInconsistentShapes crafts snapshots whose
// declared shapes disagree with their values or with the registry; a
// mid-list mismatch must not partially apply the earlier entries.
func TestParamsLoadRejectsInconsistentShapes(t *testing.T) {
	encode := func(saved []savedParam) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(saved); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	dst := loadTestParams(2)
	before, version, nparams := snapshotState(t, dst)

	// Value slice shorter than the declared shape.
	bad := encode([]savedParam{{Name: "enc.w", Rows: 4, Cols: 3, Val: make([]float64, 5)}})
	if err := dst.Load(bad); err == nil {
		t.Fatal("shape/value mismatch loaded cleanly")
	}
	assertUnchanged(t, dst, before, version, nparams)

	// Nonsense dimensions.
	bad = encode([]savedParam{{Name: "enc.w", Rows: -1, Cols: 3}})
	if err := dst.Load(bad); err == nil {
		t.Fatal("negative shape loaded cleanly")
	}
	assertUnchanged(t, dst, before, version, nparams)

	// First entry valid, second mismatched against the registry: the
	// valid first entry must NOT have been applied.
	bad = encode([]savedParam{
		{Name: "enc.w", Rows: 4, Cols: 3, Val: make([]float64, 12)}, // all zeros: would visibly change enc.w
		{Name: "enc.b", Rows: 7, Cols: 1, Val: make([]float64, 7)},  // registry has 4x1
	})
	if err := dst.Load(bad); err == nil {
		t.Fatal("registry shape mismatch loaded cleanly")
	}
	assertUnchanged(t, dst, before, version, nparams)
}
