package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Params is a registry of named trainable parameters. Parameter nodes
// persist across tape passes; their gradients accumulate during Backward
// and are consumed by an Optimizer.
type Params struct {
	byName map[string]*Node
	order  []string
	rng    *rand.Rand
	// version counts value mutations (optimizer steps, checkpoint
	// loads). Derived caches of forward-pass values — the encoder's
	// per-query encoding cache — key on it to invalidate when the
	// parameters they were computed from change.
	version uint64
}

// Version returns the current parameter-value version. It starts at 0
// and increases on every BumpVersion call.
func (p *Params) Version() uint64 { return p.version }

// BumpVersion marks the parameter values as changed. Optimizers and Load
// call it; call it manually after mutating Val slices directly so that
// value caches keyed on Version are invalidated.
func (p *Params) BumpVersion() { p.version++ }

// NewParams returns an empty registry seeded deterministically.
func NewParams(seed int64) *Params {
	return &Params{byName: make(map[string]*Node), rng: rand.New(rand.NewSource(seed))}
}

// Matrix registers (or returns the existing) rows×cols parameter matrix
// with Glorot-uniform initialization.
func (p *Params) Matrix(name string, rows, cols int) *Node {
	if n, ok := p.byName[name]; ok {
		if n.Rows != rows || n.Cols != cols {
			panic(fmt.Sprintf("nn: param %q re-declared %dx%d, was %dx%d", name, rows, cols, n.Rows, n.Cols))
		}
		return n
	}
	n := &Node{
		Val:   make([]float64, rows*cols),
		Grad:  make([]float64, rows*cols),
		Rows:  rows,
		Cols:  cols,
		param: true,
		name:  name,
	}
	limit := math.Sqrt(6.0 / float64(rows+cols))
	for i := range n.Val {
		n.Val[i] = (2*p.rng.Float64() - 1) * limit
	}
	p.byName[name] = n
	p.order = append(p.order, name)
	return n
}

// Vector registers (or returns) a length-n parameter vector initialized
// near zero.
func (p *Params) Vector(name string, n int) *Node {
	if node, ok := p.byName[name]; ok {
		if node.Len() != n {
			panic(fmt.Sprintf("nn: param %q re-declared len %d, was %d", name, n, node.Len()))
		}
		return node
	}
	node := &Node{
		Val:   make([]float64, n),
		Grad:  make([]float64, n),
		Rows:  n,
		Cols:  1,
		param: true,
		name:  name,
	}
	limit := math.Sqrt(3.0 / float64(n))
	for i := range node.Val {
		node.Val[i] = (2*p.rng.Float64() - 1) * limit * 0.1
	}
	p.byName[name] = node
	p.order = append(p.order, name)
	return node
}

// Get returns a parameter by name.
func (p *Params) Get(name string) (*Node, bool) {
	n, ok := p.byName[name]
	return n, ok
}

// All returns parameters in registration order.
func (p *Params) All() []*Node {
	out := make([]*Node, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, p.byName[name])
	}
	return out
}

// ZeroGrads clears accumulated gradients.
func (p *Params) ZeroGrads() {
	for _, n := range p.byName {
		for i := range n.Grad {
			n.Grad[i] = 0
		}
	}
}

// GradNorm returns the L2 norm of all gradients, for clipping.
func (p *Params) GradNorm() float64 {
	s := 0.0
	for _, n := range p.byName {
		for _, g := range n.Grad {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGrads rescales gradients so their global L2 norm is at most max.
func (p *Params) ClipGrads(max float64) {
	norm := p.GradNorm()
	if norm <= max || norm == 0 {
		return
	}
	scale := max / norm
	for _, n := range p.byName {
		for i := range n.Grad {
			n.Grad[i] *= scale
		}
	}
}

// FreezeMatching marks every parameter whose name contains any of the
// substrings as frozen — the transfer-learning mechanism of §6 (freeze
// inner layers, retrain input/output-adjacent ones). It returns how many
// parameters were frozen.
func (p *Params) FreezeMatching(substrings ...string) int {
	n := 0
	for _, node := range p.byName {
		for _, s := range substrings {
			if strings.Contains(node.name, s) {
				node.SetFrozen(true)
				n++
				break
			}
		}
	}
	return n
}

// Unfreeze clears all freeze marks.
func (p *Params) Unfreeze() {
	for _, node := range p.byName {
		node.SetFrozen(false)
	}
}

// savedParam is the gob wire form of one parameter.
type savedParam struct {
	Name string
	Rows int
	Cols int
	Val  []float64
}

// Serialize encodes all parameter values (not gradients or freeze marks)
// for checkpointing and transfer learning.
func (p *Params) Serialize() ([]byte, error) {
	saved := make([]savedParam, 0, len(p.order))
	names := append([]string(nil), p.order...)
	sort.Strings(names)
	for _, name := range names {
		n := p.byName[name]
		saved = append(saved, savedParam{Name: name, Rows: n.Rows, Cols: n.Cols, Val: append([]float64(nil), n.Val...)})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(saved); err != nil {
		return nil, fmt.Errorf("nn: serialize: %w", err)
	}
	return buf.Bytes(), nil
}

// Load restores parameter values previously produced by Serialize.
// Parameters present in the snapshot but not yet registered are created;
// shape mismatches are errors.
//
// Load is hardened against untrusted bytes (a truncated or corrupted
// checkpoint file): it never panics, and on any error the receiver is
// left exactly as it was — the full snapshot is decoded and validated
// before the first parameter value is touched.
func (p *Params) Load(data []byte) (err error) {
	// gob is not guaranteed panic-free on adversarial input; a corrupt
	// checkpoint must surface as an error, never kill the process.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("nn: load: corrupt snapshot: %v", r)
		}
	}()
	var saved []savedParam
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&saved); err != nil {
		return fmt.Errorf("nn: load: %w", err)
	}
	// Validate everything before mutating anything.
	for _, s := range saved {
		if s.Rows <= 0 || s.Cols <= 0 || len(s.Val) != s.Rows*s.Cols {
			return fmt.Errorf("nn: load: param %q claims shape %dx%d with %d values", s.Name, s.Rows, s.Cols, len(s.Val))
		}
		if n, ok := p.byName[s.Name]; ok && (n.Rows != s.Rows || n.Cols != s.Cols) {
			return fmt.Errorf("nn: load: param %q shape %dx%d, snapshot %dx%d", s.Name, n.Rows, n.Cols, s.Rows, s.Cols)
		}
	}
	for _, s := range saved {
		n, ok := p.byName[s.Name]
		if !ok {
			n = p.Matrix(s.Name, s.Rows, s.Cols)
		}
		copy(n.Val, s.Val)
	}
	p.BumpVersion()
	return nil
}
