package nn

import "fmt"

// Dense is a fully connected layer y = act(W·x + b).
type Dense struct {
	W, B *Node
	In   int
	Out  int
}

// NewDense registers a dense layer's parameters under the given name
// prefix.
func NewDense(p *Params, name string, in, out int) *Dense {
	return &Dense{
		W:   p.Matrix(name+".W", out, in),
		B:   p.Vector(name+".b", out),
		In:  in,
		Out: out,
	}
}

// Apply runs the layer without an activation.
func (d *Dense) Apply(t *Tape, x *Node) *Node {
	if x.Len() != d.In {
		panic(fmt.Sprintf("nn: Dense %v expects %d inputs, got %d", d.W.Name(), d.In, x.Len()))
	}
	return t.Add(t.MatVec(d.W, x), d.B)
}

// ApplyReLU runs the layer with a ReLU activation.
func (d *Dense) ApplyReLU(t *Tape, x *Node) *Node {
	return t.ReLU(d.Apply(t, x))
}

// MLP is a stack of dense layers with ReLU between hidden layers and a
// linear output — the fully-connected blocks of the scheduling predictor
// heads and the PQE/AQE summarizers.
type MLP struct {
	Layers []*Dense
}

// NewMLP registers an MLP with the given layer widths. dims must list at
// least the input and output widths.
func NewMLP(p *Params, name string, dims ...int) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewDense(p, fmt.Sprintf("%s.l%d", name, i), dims[i], dims[i+1]))
	}
	return m
}

// Apply runs the MLP: ReLU after every layer except the last.
func (m *MLP) Apply(t *Tape, x *Node) *Node {
	for i, l := range m.Layers {
		if i+1 < len(m.Layers) {
			x = l.ApplyReLU(t, x)
		} else {
			x = l.Apply(t, x)
		}
	}
	return x
}

// InDim returns the MLP's input width.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim returns the MLP's output width.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }
